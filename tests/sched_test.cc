// Preemptive-scheduler tests: round-robin interleaving under the hardware
// timer, voluntary yield, budget exhaustion with clean resume, and the
// legacy RunProcess path staying intact alongside the scheduler.
#include <gtest/gtest.h>

#include "src/kernel/sched.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

// A program that stamps a host-side log via syscall 232 between spin bursts,
// then exits with its stamp value.
std::string StamperSource(u32 stamp, u32 bursts, u32 burst_len) {
  return R"(
  .global main
main:
  mov $)" + std::to_string(bursts) + R"(, %edi
outer:
  mov $232, %eax
  mov $)" + std::to_string(stamp) + R"(, %ebx
  int $0x80
  mov $)" + std::to_string(burst_len) + R"(, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  dec %edi
  cmp $0, %edi
  jne outer
  mov $SYS_EXIT, %eax
  mov $)" + std::to_string(stamp) + R"(, %ebx
  int $0x80
)";
}

TEST(Sched, RoundRobinInterleavesTwoCpuBoundProcesses) {
  // Pinned to one vCPU: the assertion is uniprocessor time-slicing (on an
  // SMP machine each process gets its own core and nobody is preempted).
  KernelFixture f(/*num_cpus=*/1);
  Scheduler::Config scfg;
  scfg.slice_cycles = 30'000;
  Scheduler sched(f.kernel(), scfg);

  std::vector<u32> log;
  f.kernel().RegisterSyscall(232, [&](Kernel& k, u32 ebx, u32, u32) {
    log.push_back(ebx);
    k.ReturnFromGate(0);
  });

  std::string diag;
  Pid a = f.LoadProgram(StamperSource(1, 40, 4'000), &diag);
  ASSERT_NE(a, 0u) << diag;
  Pid b = f.LoadProgram(StamperSource(2, 40, 4'000), &diag);
  ASSERT_NE(b, 0u) << diag;
  sched.AddProcess(a);
  sched.AddProcess(b);

  auto result = sched.RunAll(1'000'000'000ull);
  EXPECT_EQ(result.exited, 2u);
  EXPECT_EQ(result.killed, 0u);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GT(sched.stats().preemptions, 2u) << "timer preemption must have rotated the queue";

  // Interleaving: the stamp log must switch owners mid-stream (neither
  // process runs to completion before the other starts).
  u32 transitions = 0;
  for (size_t i = 1; i < log.size(); ++i) {
    if (log[i] != log[i - 1]) ++transitions;
  }
  EXPECT_GE(transitions, 3u) << "expected A/B alternation, got a serial run";
  EXPECT_EQ(f.kernel().process(a)->state, ProcessState::kExited);
  EXPECT_EQ(f.kernel().process(b)->state, ProcessState::kExited);
}

TEST(Sched, YieldRotatesWithoutWaitingForSliceExpiry) {
  // Pinned to one vCPU: strict A/B rotation is a uniprocessor property.
  KernelFixture f(/*num_cpus=*/1);
  Scheduler::Config scfg;
  scfg.slice_cycles = 100'000'000;  // slices never expire on their own
  Scheduler sched(f.kernel(), scfg);

  std::vector<u32> log;
  f.kernel().RegisterSyscall(232, [&](Kernel& k, u32 ebx, u32, u32) {
    log.push_back(ebx);
    k.ReturnFromGate(0);
  });

  auto yielder = [](u32 stamp) {
    return R"(
  .global main
main:
  mov $6, %edi
loop:
  mov $232, %eax
  mov $)" + std::to_string(stamp) + R"(, %ebx
  int $0x80
  mov $222, %eax          ; SYS_YIELD
  int $0x80
  dec %edi
  cmp $0, %edi
  jne loop
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $0x80
)";
  };
  std::string diag;
  Pid a = f.LoadProgram(yielder(1), &diag);
  ASSERT_NE(a, 0u) << diag;
  Pid b = f.LoadProgram(yielder(2), &diag);
  ASSERT_NE(b, 0u) << diag;
  sched.AddProcess(a);
  sched.AddProcess(b);
  auto result = sched.RunAll(1'000'000'000ull);
  EXPECT_EQ(result.exited, 2u);
  // Perfect alternation: 1,2,1,2,...
  ASSERT_EQ(log.size(), 12u);
  for (size_t i = 2; i < log.size(); ++i) {
    EXPECT_EQ(log[i], log[i - 2]) << "yield must rotate strictly";
  }
  EXPECT_NE(log[0], log[1]);
}

TEST(Sched, BudgetExhaustionSavesStateAndResumes) {
  KernelFixture f;
  Scheduler sched(f.kernel());
  std::string diag;
  Pid pid = f.LoadProgram(StamperSource(9, 50, 20'000), &diag);
  ASSERT_NE(pid, 0u) << diag;
  sched.AddProcess(pid);

  auto first = sched.RunAll(100'000);
  EXPECT_TRUE(first.budget_exhausted);
  EXPECT_EQ(first.exited, 0u);
  ASSERT_EQ(f.kernel().process(pid)->state, ProcessState::kRunnable);

  auto second = sched.RunAll(~0ull);
  EXPECT_EQ(second.exited, 1u);
  EXPECT_EQ(f.kernel().process(pid)->exit_code, 9);
}

TEST(Sched, RunProcessStillWorksWithSchedulerAttached) {
  // The legacy single-process entry point must coexist with the scheduler
  // machinery (timer IRQs fire, watchdog runs, no preemption happens).
  KernelFixture f;
  Scheduler sched(f.kernel());
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $123456, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  mov $SYS_EXIT, %eax
  mov $5, %ebx
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = f.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_GT(f.kernel().pic().delivered(kIrqTimer), 0u) << "timer IRQs were live";
}

TEST(Sched, CooperativeWatchdogUnchangedWithoutInterrupts) {
  // With no scheduler and no EnableTimerInterrupts, RunProcess must behave
  // exactly as before: kCycleLimit on budget exhaustion, no IRQ machinery.
  KernelFixture f;
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $100000000, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  mov $SYS_EXIT, %eax
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = f.Run(pid, 500'000);
  EXPECT_EQ(r.outcome, RunOutcome::kCycleLimit);
  EXPECT_EQ(f.kernel().pic().delivered(kIrqTimer), 0u);
  EXPECT_EQ(f.kernel().process(pid)->state, ProcessState::kRunnable);
}

}  // namespace
}  // namespace palladium
