// Filter-language tests: parsing, host evaluation, and the property that the
// *compiled* filter — running as a Palladium kernel extension on the
// simulated CPU — agrees with the host reference on random traces.
#include <gtest/gtest.h>

#include "src/core/kernel_ext.h"
#include "src/filter/filter.h"
#include "src/net/packet.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

TEST(FilterParse, ParsesConjunction) {
  std::string err;
  auto expr = ParseFilter("ip.src == 10.0.0.1 && tcp.dport == 80 && ip.proto == 6", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  ASSERT_EQ(expr->terms.size(), 3u);
  EXPECT_EQ(expr->terms[0].field, FilterField::kIpSrc);
  EXPECT_EQ(expr->terms[0].value, 0x0A000001u);
  EXPECT_EQ(expr->terms[1].field, FilterField::kDstPort);
  EXPECT_EQ(expr->terms[1].value, 80u);
  EXPECT_EQ(expr->terms[2].field, FilterField::kIpProto);
}

TEST(FilterParse, ParsesRelationsAndHex) {
  std::string err;
  auto expr = ParseFilter("tcp.sport >= 0x400 && ip.dst != 10.1.2.3", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  EXPECT_EQ(expr->terms[0].rel, FilterRel::kGe);
  EXPECT_EQ(expr->terms[0].value, 0x400u);
  EXPECT_EQ(expr->terms[1].rel, FilterRel::kNe);
}

TEST(FilterParse, EmptyIsMatchAll) {
  std::string err;
  auto expr = ParseFilter("   ", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  EXPECT_TRUE(expr->terms.empty());
  PacketSpec spec;
  auto pkt = BuildPacket(spec);
  EXPECT_TRUE(EvalFilterHost(*expr, pkt.data(), static_cast<u32>(pkt.size())));
}

TEST(FilterParse, RejectsGarbage) {
  std::string err;
  EXPECT_FALSE(ParseFilter("bogus.field == 1", &err).has_value());
  EXPECT_FALSE(ParseFilter("ip.src = 1", &err).has_value());
  EXPECT_FALSE(ParseFilter("ip.src == 1 || ip.dst == 2", &err).has_value());
  EXPECT_FALSE(ParseFilter("ip.src == 10.0.0.999", &err).has_value());
}

TEST(FilterHost, OrderedRelations) {
  std::string err;
  auto expr = ParseFilter("tcp.dport > 1000 && tcp.dport <= 2000", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  PacketSpec spec;
  spec.dst_port = 1500;
  auto mid = BuildPacket(spec);
  EXPECT_TRUE(EvalFilterHost(*expr, mid.data(), static_cast<u32>(mid.size())));
  spec.dst_port = 1000;
  auto low = BuildPacket(spec);
  EXPECT_FALSE(EvalFilterHost(*expr, low.data(), static_cast<u32>(low.size())));
  spec.dst_port = 2000;
  auto edge = BuildPacket(spec);
  EXPECT_TRUE(EvalFilterHost(*expr, edge.data(), static_cast<u32>(edge.size())));
  spec.dst_port = 2001;
  auto high = BuildPacket(spec);
  EXPECT_FALSE(EvalFilterHost(*expr, high.data(), static_cast<u32>(high.size())));
}

// --- Compiled filter as a kernel extension ----------------------------------

class CompiledFilterTest : public ::testing::Test {
 protected:
  CompiledFilterTest() : kernel_(machine_), kext_(kernel_) {}

  // Loads the compiled filter as a kernel extension; returns the EFT id.
  u32 LoadFilter(const FilterExpr& expr, const std::string& name = "filter") {
    AssembleError aerr;
    auto obj = Assemble(CompileFilterToAsm(expr), &aerr);
    EXPECT_TRUE(obj.has_value()) << aerr.ToString();
    std::string diag;
    auto ext = kext_.LoadExtension(name, *obj, &diag);
    EXPECT_TRUE(ext.has_value()) << diag;
    ext_id_ = ext.value_or(0);
    auto fid = kext_.FindFunction(name + ":filter_run");
    EXPECT_TRUE(fid.has_value());
    return fid.value_or(0);
  }

  // Pushes the packet into the shared area and invokes the filter.
  u32 RunFilter(u32 fid, const std::vector<u8>& pkt, bool* ok, u64* cycles = nullptr) {
    u32 len = static_cast<u32>(pkt.size());
    EXPECT_TRUE(kext_.WriteShared(ext_id_, 0, &len, 4));
    EXPECT_TRUE(kext_.WriteShared(ext_id_, 4, pkt.data(), len));
    auto r = kext_.Invoke(fid, len);
    *ok = r.ok;
    if (cycles != nullptr) *cycles = r.cycles;
    return r.value;
  }

  Machine machine_;
  Kernel kernel_;
  KernelExtensionManager kext_;
  u32 ext_id_ = 0;
};

class CompiledFilterProperty : public CompiledFilterTest,
                               public ::testing::WithParamInterface<int> {};

TEST_P(CompiledFilterProperty, CompiledFilterMatchesHostReference) {
  const int terms = GetParam();
  PacketSpec match;
  match.src_ip = 0x0A141E28;
  match.dst_ip = 0x0A141E29;
  match.dst_port = 8080;
  const char* sources[] = {
      "",
      "ip.proto == 6",
      "ip.proto == 6 && ip.src == 10.20.30.40",
      "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41",
      "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41 && tcp.dport == 8080",
  };
  std::string err;
  auto expr = ParseFilter(sources[terms], &err);
  ASSERT_TRUE(expr.has_value()) << err;
  u32 fid = LoadFilter(*expr);

  TraceGenerator gen(99 + terms, match, 0.5);
  for (int i = 0; i < 10; ++i) {
    bool is_match = false;
    auto pkt = BuildPacket(gen.Next(&is_match));
    bool ok = false;
    u32 got = RunFilter(fid, pkt, &ok);
    ASSERT_TRUE(ok);
    u32 expected = EvalFilterHost(*expr, pkt.data(), static_cast<u32>(pkt.size())) ? 1 : 0;
    EXPECT_EQ(got, expected) << "terms=" << terms << " packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TermSweep, CompiledFilterProperty, ::testing::Values(0, 1, 2, 3, 4));

TEST_F(CompiledFilterTest, OrderedTermCompiles) {
  std::string err;
  auto expr = ParseFilter("tcp.dport >= 1024 && tcp.dport < 2048", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  u32 fid = LoadFilter(*expr);
  PacketSpec spec;
  for (u16 port : {80, 1024, 1500, 2047, 2048, 9000}) {
    spec.dst_port = port;
    auto pkt = BuildPacket(spec);
    bool ok = false;
    u32 got = RunFilter(fid, pkt, &ok);
    ASSERT_TRUE(ok) << port;
    u32 expected = EvalFilterHost(*expr, pkt.data(), static_cast<u32>(pkt.size())) ? 1 : 0;
    EXPECT_EQ(got, expected) << "port " << port;
  }
}

TEST_F(CompiledFilterTest, ShortPacketRejectedByLengthGuard) {
  std::string err;
  auto expr = ParseFilter("tcp.dport == 80", &err);
  ASSERT_TRUE(expr.has_value()) << err;
  u32 fid = LoadFilter(*expr);
  std::vector<u8> tiny(8, 0);
  bool ok = false;
  EXPECT_EQ(RunFilter(fid, tiny, &ok), 0u);
  EXPECT_TRUE(ok);
}

TEST_F(CompiledFilterTest, CompiledCostNearlyFlatAcrossTerms) {
  // The Palladium line of Figure 7: a fixed invocation cost plus a very
  // small per-term slope.
  PacketSpec match;
  auto pkt = BuildPacket(match);
  std::string err;
  auto e0 = ParseFilter("", &err);
  auto e4 = ParseFilter(
      "ip.proto == 6 && ip.src == 10.0.0.1 && ip.dst == 10.0.0.2 && tcp.dport == 80", &err);
  ASSERT_TRUE(e0 && e4);
  u32 f0 = LoadFilter(*e0, "f0");
  bool ok = false;
  u64 c0 = 0;
  RunFilter(f0, pkt, &ok, &c0);
  ASSERT_TRUE(ok);

  u32 f4 = LoadFilter(*e4, "f4");  // ext_id_ now tracks the 4-term filter
  u64 c4 = 0;
  RunFilter(f4, pkt, &ok, &c4);
  ASSERT_TRUE(ok);
  EXPECT_LT(c4, c0 + 4 * 40) << "compiled per-term cost must be small";
}

}  // namespace
}  // namespace palladium
