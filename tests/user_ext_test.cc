// User-level extension mechanism tests (paper Sections 4.4–4.5): the full
// Prepare/Transfer/AppCallGate protected call path, SIGSEGV containment of
// corrupting extensions, the read-only GOT, application services through
// call gates, xmalloc, syscall gating, and the extension time limit.
#include <gtest/gtest.h>

#include "src/core/user_ext.h"
#include "src/hw/paging.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

class UserExtFixture : public ::testing::Test {
 protected:
  UserExtFixture() : kernel_(machine_), dl_(kernel_), uext_(kernel_, dl_) {}

  void RegisterExtension(const std::string& name, const std::string& source) {
    AssembleError aerr;
    auto obj = Assemble(AbiPrelude() + source, &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    dl_.RegisterObject(name, *obj);
  }

  Pid LoadApp(const std::string& source, std::string* diag) {
    auto img = AssembleAndLink(AbiPrelude() + source, kUserTextBase, {}, diag);
    if (!img) return 0;
    Pid pid = kernel_.CreateProcess();
    if (pid == 0 || !kernel_.LoadUserImage(pid, *img, "main", diag)) return 0;
    return pid;
  }

  Machine machine_;
  Kernel kernel_;
  DynamicLinker dl_;
  UserExtensionRuntime uext_;
};

// The standard add-one extension used across tests.
constexpr const char* kAddExt = R"(
  .global add_one
add_one:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add $1, %eax
  pop %ebp
  ret
)";

// An application that loads `extname`, resolves `fnname`, calls it with 41
// and exits with the result.
constexpr const char* kCallerApp = R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi          ; handle
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi          ; Prepare pointer
  push $41
  call *%edi
  pop %ecx
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
fnname:
  .asciz "add_one"
)";

TEST_F(UserExtFixture, ProtectedCallReturnsResult) {
  RegisterExtension("ext", kAddExt);
  std::string diag;
  Pid pid = LoadApp(kCallerApp, &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 42);
}

TEST_F(UserExtFixture, ProtectedCallPreservesCallerState) {
  RegisterExtension("ext", kAddExt);
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  ; Seed callee-saved registers and stack, then call.
  mov $0x1111, %ebx
  mov %esp, %edx          ; remember ESP
  push $7
  call *%edi
  pop %ecx
  ; Verify ESP is balanced and EBX survived.
  cmp %edx, %esp
  jne bad
  cmp $0x1111, %ebx
  jne bad
  mov %eax, %ebx          ; 8
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
bad:
  mov $SYS_EXIT, %eax
  mov $0xBAD, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
fnname:
  .asciz "add_one"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 8);
}

TEST_F(UserExtFixture, ExtensionRunsAtSpl3) {
  // The extension reads its CS selector and returns its RPL.
  RegisterExtension("ext", R"(
  .global whoami
whoami:
  mov %cs, %eax
  and $3, %eax
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; 3 == SPL 3
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
fnname:
  .asciz "whoami"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 3);
}

TEST_F(UserExtFixture, CorruptingExtensionGetsSigsegv) {
  // The extension writes into the application's data (PPL 0): paging blocks
  // it, and SIGSEGV is delivered to the extended application (Section 4.5.2).
  RegisterExtension("evil", R"(
  .global corrupt
corrupt:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx        ; address of app data, passed by the app
  sti $0xDEAD, 0(%ebx)
  pop %ebp
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $secret            ; pass the address of our PPL 0 secret
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax     ; not reached: the extension faults
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  ld secret, %ebx         ; prove the secret survived, exit with it
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
secret:
  .long 777
extname:
  .asciz "evil"
fnname:
  .asciz "corrupt"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 777) << "application data must be intact";
  EXPECT_EQ(kernel_.process(pid)->signals.last_signal, kSigSegv);
}

TEST_F(UserExtFixture, ExtensionCannotReadAppData) {
  RegisterExtension("peek", R"(
  .global spy
spy:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx
  ld 0(%ebx), %eax        ; read-protection too: PPL 0 blocks reads
  pop %ebp
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $secret
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  mov $SYS_EXIT, %eax
  mov $202, %ebx
  int $INT_SYSCALL
  .data
secret:
  .long 42
extname:
  .asciz "peek"
fnname:
  .asciz "spy"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 202);
}

TEST_F(UserExtFixture, SharedRangeIsAccessibleToExtension) {
  // set_range exposes a buffer at PPL 1; the extension can then fill it.
  RegisterExtension("filler", R"(
  .global fill
fill:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx
  sti $0x5AFE, 0(%ebx)
  pop %ebp
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_MMAP, %eax     ; a page to share
  mov $0, %ebx
  mov $0x1000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %esi
  sti $0, 0(%esi)         ; materialize (PPL 0 at first)
  mov $SYS_SET_RANGE, %eax
  mov %esi, %ebx
  mov $0x1000, %ecx
  mov $1, %edx
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_SEG_DLSYM, %eax
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push %esi               ; share the buffer address with the extension
  call *%edi
  pop %ecx
  ld 0(%esi), %ebx        ; read what the extension wrote
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "filler"
fnname:
  .asciz "fill"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 0x5AFE);
}

TEST_F(UserExtFixture, ExtensionCannotMakeSyscalls) {
  // taskSPL gating (Section 4.5.2): INT 0x80 from SPL 3 returns EPERM.
  RegisterExtension("sneaky", R"(
  .global sneak
sneak:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  ret                     ; returns the syscall's return value
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; expect -1 (EPERM)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "sneaky"
fnname:
  .asciz "sneak"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, -1);
}

TEST_F(UserExtFixture, NonPalladiumProcessesStillMakeSyscalls) {
  // Regression guard for the paper's compatibility requirement: processes
  // that never call init_PL are unaffected by the gating.
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 10'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_GT(r.exit_code, 0);
}

TEST_F(UserExtFixture, XmallocAllocatesFromExtensionHeap) {
  RegisterExtension("alloc", R"(
  .extern xmalloc
  .global use_heap
use_heap:
  push $64
  call xmalloc
  pop %ecx
  cmp $0, %eax
  je fail
  sti $99, 0(%eax)        ; heap is inside the extension segment: writable
  ld 0(%eax), %eax
  ret
fail:
  mov $0, %eax
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; 99
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "alloc"
fnname:
  .asciz "use_heap"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 99);
}

TEST_F(UserExtFixture, AppServiceCalledThroughGate) {
  // The paper's encapsulation of buffering library functions: the extension
  // calls an application service via lcall through a call gate; the service
  // runs at SPL 2 on the extension's stack.
  RegisterExtension("client", R"(
  .extern gate_double
  .global run
run:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  push %eax
  lcall $gate_double      ; app service: doubles its argument
  pop %ecx
  pop %ebp
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_EXPOSE_SERVICE, %eax
  mov $svcname, %ebx
  mov $double_fn, %ecx
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $21
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; 42
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
double_fn:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add %eax, %eax
  pop %ebp
  ret
  .data
svcname:
  .asciz "double"
extname:
  .asciz "client"
fnname:
  .asciz "run"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 42);
}

TEST_F(UserExtFixture, ExtensionCallsSharedLibraryThroughGot) {
  // A shared library mapped at PPL 1 (the non-buffering libc case); the
  // extension reaches it through its read-only GOT.
  AssembleError aerr;
  auto lib = Assemble(R"(
  .global lib_double
lib_double:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add %eax, %eax
  pop %ebp
  ret
)",
                      &aerr);
  ASSERT_TRUE(lib.has_value()) << aerr.ToString();
  dl_.RegisterObject("libdouble", *lib);

  RegisterExtension("gotclient", R"(
  .extern got_lib_double
  .global run
run:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  push %eax
  ld got_lib_double, %ecx   ; load the target through the GOT slot
  call *%ecx
  pop %ecx
  pop %ebp
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $33
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; 66
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "gotclient"
fnname:
  .asciz "run"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  // Host-level "ld.so": the library must be resident before seg_dlopen.
  ASSERT_TRUE(dl_.LoadLibrary(pid, "libdouble", /*expose_ppl1=*/true, &diag)) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 66);
}

TEST_F(UserExtFixture, GotPageIsWriteProtected) {
  AssembleError aerr;
  auto lib = Assemble(".global lib_fn\nlib_fn:\n  ret\n", &aerr);
  ASSERT_TRUE(lib.has_value());
  dl_.RegisterObject("libtiny", *lib);
  RegisterExtension("gotwriter", R"(
  .extern got_lib_fn
  .global smash
smash:
  mov $got_lib_fn, %ebx
  sti $0xBAD, 0(%ebx)     ; write the read-only GOT page: page fault
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  mov $SYS_EXIT, %eax
  mov $555, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "gotwriter"
fnname:
  .asciz "smash"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid, "libtiny", /*expose_ppl1=*/true, &diag)) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 555);
  EXPECT_EQ(kernel_.process(pid)->signals.last_signal, kSigSegv);
}

TEST_F(UserExtFixture, RuntimeRequiresInitPl) {
  RegisterExtension("ext", kAddExt);
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_SEG_DLOPEN, %eax   ; no init_PL first
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %ebx              ; expect -1 (EPERM)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 10'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, -1);
}

TEST_F(UserExtFixture, TimeLimitedExtensionSignalsApp) {
  // An extension that loops forever: the timer check fires SIGXCPU to the
  // extended application (Section 4.5.2).
  RegisterExtension("looper", R"(
  .global spin
spin:
  jmp spin
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $24, %ebx           ; SIGXCPU
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  mov $SYS_EXIT, %eax
  mov $321, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "looper"
fnname:
  .asciz "spin"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  Kernel::Config cfg;  // default extension limit is 5M cycles; plenty here
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 321);
  EXPECT_EQ(kernel_.process(pid)->signals.last_signal, kSigXcpu);
}

TEST_F(UserExtFixture, SegDlcloseUnmapsExtension) {
  RegisterExtension("ext", kAddExt);
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLCLOSE, %eax
  mov %esi, %ebx
  int $INT_SYSCALL
  mov %eax, %ebx          ; 0 on success
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 0);
  const auto* info = uext_.extension(pid, 1);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->closed);
}

TEST_F(UserExtFixture, UnprotectedDlopenRunsAtSpl2) {
  // The baseline: plain dlopen maps the module as ordinary application code.
  RegisterExtension("ext", R"(
  .global whoami
whoami:
  mov %cs, %eax
  and $3, %eax
  ret
)");
  std::string diag;
  Pid pid = LoadApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_DLOPEN_UNPROT, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi              ; direct call: runs at the app's own SPL
  pop %ecx
  mov %eax, %ebx          ; 2 == SPL 2
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
fnname:
  .asciz "whoami"
)",
                    &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = kernel_.RunProcess(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
}  // namespace palladium
