// Protected-memory service tests (the paper's Section 6 "protected memory
// service" direction): data survives wild writes because no linear mapping
// reaches the region's frames unless a window is explicitly open.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/core/protected_memory.h"
#include "src/kernel/abi.h"

namespace palladium {
namespace {

class ProtectedMemoryTest : public ::testing::Test {
 protected:
  ProtectedMemoryTest() : kernel_(machine_), pmem_(kernel_) {}

  // Runs simulated *kernel* code (flat CPL 0) that stores 0x77 at the given
  // linear address; returns true if the store succeeded.
  bool SimulatedKernelStore(u32 linear) {
    // Place a tiny routine in a scratch kernel page.
    const u32 code_linear = kKernelBase + 0x00200000;
    static bool mapped = false;
    if (!mapped) {
      kernel_.MapKernelPage(code_linear);
      kernel_.MapKernelPage(kKernelBase + 0x00201000);  // stack page
      mapped = true;
    }
    std::string diag;
    auto img = AssembleAndLink(R"(
  .global main
main:
  mov $)" + std::to_string(linear - kKernelBase) +
                                   R"(, %ebx
  sti $0x77, 0(%ebx)
  hlt
)",
                               0x00200000, {}, &diag);
    EXPECT_TRUE(img.has_value()) << diag;
    EXPECT_TRUE(kernel_.WriteKernelVirt(code_linear, img->bytes.data(),
                                        static_cast<u32>(img->bytes.size())));
    Cpu& cpu = kernel_.cpu();
    cpu.LoadCr3(kernel_.kernel_cr3());
    cpu.ForceSegment(SegReg::kCs, kKernelCsSel);
    cpu.ForceSegment(SegReg::kSs, kKernelDsSel);
    cpu.ForceSegment(SegReg::kDs, kKernelDsSel);
    cpu.ForceSegment(SegReg::kEs, kKernelDsSel);
    cpu.set_cpl(0);
    cpu.set_eip(0x00200000);
    cpu.set_reg(Reg::kEsp, 0x00202000);
    StopInfo stop = cpu.Run(cpu.cycles() + 100'000);
    return stop.reason == StopReason::kHalted;
  }

  Machine machine_;
  Kernel kernel_;
  ProtectedMemoryService pmem_;
};

TEST_F(ProtectedMemoryTest, HostAccessorsRoundTrip) {
  auto h = pmem_.CreateRegion(2);
  ASSERT_NE(h, 0u);
  EXPECT_EQ(pmem_.region_pages(h), 2u);
  u32 value = 0xFEEDFACE;
  ASSERT_TRUE(pmem_.Write(h, 100, &value, 4));
  u32 out = 0;
  ASSERT_TRUE(pmem_.Read(h, 100, &out, 4));
  EXPECT_EQ(out, 0xFEEDFACEu);
  // Cross-page access.
  u64 wide = 0x1122334455667788ull;
  ASSERT_TRUE(pmem_.Write(h, kPageSize - 4, &wide, 8));
  u64 wide_out = 0;
  ASSERT_TRUE(pmem_.Read(h, kPageSize - 4, &wide_out, 8));
  EXPECT_EQ(wide_out, wide);
}

TEST_F(ProtectedMemoryTest, OutOfRangeAccessRejected) {
  auto h = pmem_.CreateRegion(1);
  u32 v = 0;
  EXPECT_FALSE(pmem_.Read(h, kPageSize - 2, &v, 4));
  EXPECT_FALSE(pmem_.Write(h, kPageSize, &v, 1));
  EXPECT_FALSE(pmem_.Read(999, 0, &v, 4));
}

TEST_F(ProtectedMemoryTest, WildKernelStoreCannotReachRegion) {
  auto h = pmem_.CreateRegion(1);
  u32 canary = 0xCAFEBABE;
  ASSERT_TRUE(pmem_.Write(h, 0, &canary, 4));

  // The frames were evicted from the direct map: a wild supervisor store to
  // their old direct-mapped address faults instead of corrupting them.
  // (We cannot name the frame directly; probe via the window base while the
  // window is CLOSED — also unmapped.)
  u32 window = *pmem_.WindowBase(h);
  EXPECT_FALSE(SimulatedKernelStore(window)) << "store must fault while window is closed";

  u32 after = 0;
  ASSERT_TRUE(pmem_.Read(h, 0, &after, 4));
  EXPECT_EQ(after, 0xCAFEBABEu);
}

TEST_F(ProtectedMemoryTest, OpenWindowPermitsStores) {
  auto h = pmem_.CreateRegion(1);
  auto sel = pmem_.OpenWindow(h);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(pmem_.IsWindowOpen(h));
  u32 window = *pmem_.WindowBase(h);
  EXPECT_TRUE(SimulatedKernelStore(window));
  u32 out = 0;
  ASSERT_TRUE(pmem_.Read(h, 0, &out, 4));
  EXPECT_EQ(out & 0xFF, 0x77u);

  // Closing the window re-seals the region.
  pmem_.CloseWindow(h);
  EXPECT_FALSE(pmem_.IsWindowOpen(h));
  EXPECT_FALSE(SimulatedKernelStore(window));
}

TEST_F(ProtectedMemoryTest, WindowSegmentCoversExactlyTheRegion) {
  auto h = pmem_.CreateRegion(2);
  auto sel = pmem_.OpenWindow(h);
  ASSERT_TRUE(sel.has_value());
  const SegmentDescriptor* d = kernel_.gdt().Get(Selector(*sel).index());
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->IsData());
  EXPECT_EQ(d->base, *pmem_.WindowBase(h));
  EXPECT_EQ(d->limit, 2 * kPageSize);
  EXPECT_EQ(d->dpl, 0);
  pmem_.CloseWindow(h);
  EXPECT_EQ(kernel_.gdt().Get(Selector(*sel).index())->type, DescriptorType::kNull);
}

TEST_F(ProtectedMemoryTest, DestroyRestoresFramesToPool) {
  u32 before = kernel_.frames().free_frames();
  auto h = pmem_.CreateRegion(8);
  EXPECT_EQ(kernel_.frames().free_frames(), before - 8);
  pmem_.DestroyRegion(h);
  EXPECT_EQ(kernel_.frames().free_frames(), before);
  // Handle is dead afterwards.
  u32 v = 0;
  EXPECT_FALSE(pmem_.Read(h, 0, &v, 4));
}

TEST_F(ProtectedMemoryTest, ReopeningWindowIsIdempotent) {
  auto h = pmem_.CreateRegion(1);
  auto s1 = pmem_.OpenWindow(h);
  auto s2 = pmem_.OpenWindow(h);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(*s1, *s2);
  pmem_.CloseWindow(h);
  pmem_.CloseWindow(h);  // double close is a no-op
  EXPECT_FALSE(pmem_.IsWindowOpen(h));
}

}  // namespace
}  // namespace palladium
