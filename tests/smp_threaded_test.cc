// Threaded-vs-interleaver differential for the host-parallel SMP mode
// (src/hw/smp.h, ThreadedSmp).
//
// The workloads here are *data-race-free by construction*: every vCPU's
// loads, stores and stack traffic are confined to regions no sibling
// touches (the builder's per-iteration ESP reset bounds stack drift to one
// iteration's excursion), and all cross-CPU effects ride the sanctioned
// channels — scripted events and staged remote work, both applied in the
// quiesced barrier window. For such workloads ThreadedSmp promises
// byte-identical final state to the deterministic min-cycle interleaver,
// AND equal per-CPU cycle counters at every epoch barrier. Both promises
// are checked:
//
//  - the threaded run goes first, its barrier hook sampling per-vCPU
//    (cycles, instructions) at every barrier;
//  - the interleaver then replays the same machine *segmented at exactly
//    those barrier cycles* (Run(B_k) stops every live vCPU at its first
//    retire boundary >= B_k — the same state the threaded run quiesced in),
//    sampling at each segment boundary;
//  - final registers, fault streams, cycle/instruction counters, arch-event
//    streams, the full memory image and every per-epoch sample must match.
//
// The hostile page-table modes (read-only / supervisor pages inside each
// window, scripted cross-CPU shootdowns toggling a window page's W bit)
// keep the fault paths and TLB invalidation machinery under test while
// threaded. This binary is also the ThreadSanitizer workload: it drives
// real concurrent epochs through the write-lane fan-out, the atomic
// generation/change counters and the per-track observability sinks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"
#include "src/hw/smp.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "tests/fuzz_util.h"

namespace palladium {
namespace {

constexpr u32 kMem = 8u << 20;
constexpr u32 kCodeBase = 0x10000;
constexpr u32 kCodeStride = 0x8000;  // per-vCPU program base spacing
// Disjoint per-vCPU data windows, 4 pages each. TLB-set geometry (the same
// rule as the interleaver fuzz): windows sit at vpns 512..527 (sets 0..15),
// never sharing a direct-mapped set with the code pages at sets 16/24/32/40.
constexpr u32 kDataBase = 0x200000;
constexpr u32 kDataSpan = 4 * 4096;
// Disjoint per-vCPU stacks. The builder resets ESP every loop iteration, so
// the runtime excursion around each top is bounded by one iteration's
// unbalanced pushes/pops (a few hundred bytes) — 0x4000 of spacing leaves
// >10x margin. Tops at vpns 116..128: sets 51..63/0..1, no code-set overlap.
constexpr u32 kStackTop = 0x80000;
constexpr u32 kStackStride = 0x4000;
constexpr u64 kCycleLimit = 80'000'000;
// Small epochs => many barriers per run, so the per-epoch sample comparison
// actually constrains the schedule (a full run is a few hundred thousand
// cycles).
constexpr u64 kEpochCycles = 1024;

// The builder's anchored addressing (case 12) reaches [disp-8, disp+7] with
// up to 4-byte accesses, where disp < base+span-8 — so vCPU c's accessed
// bytes lie in [base-8, base+span+2). Passing (base+8, span-16) confines
// every access strictly inside the c-th kDataSpan region, which is what the
// data-race-freedom precondition needs.
u32 WindowBase(u32 c) { return kDataBase + c * kDataSpan; }

std::vector<u8> BuildProgram(u64 seed, u32 c) {
  constexpr u32 kIterations = 150;
  constexpr u32 kBodyLen = 160;
  const u64 pseed = seed * 131 + c * 29 + 7;
  return EncodeLoopedFuzzProgram(pseed, kIterations, kBodyLen,
                                 kCodeBase + c * kCodeStride,
                                 WindowBase(c) + 8, kDataSpan - 16,
                                 /*esp_reset=*/kStackTop - c * kStackStride);
}

struct CpuResult {
  StopReason final_reason = StopReason::kHalted;
  std::vector<FaultRecord> faults;
  std::vector<u64> fault_cycles;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
  std::vector<obs::Event> arch_events;
};

// Per-barrier sample: every vCPU's (cycles, instructions) at the quiesce
// point. Barrier cycles are strictly increasing within a run.
struct EpochSample {
  u64 barrier = 0;
  std::vector<u64> cycles;
  std::vector<u64> instructions;

  bool operator==(const EpochSample& o) const {
    return barrier == o.barrier && cycles == o.cycles && instructions == o.instructions;
  }
};

struct DiffRun {
  std::vector<CpuResult> cpus;
  std::vector<EpochSample> samples;
  std::vector<u8> memory;
};

// One machine instance shared by both harness drivers below.
struct Rig {
  BareMachine bm;
  obs::FlightRecorder recorder;
  obs::CycleProfile profiler;
  bool write_protected = false;

  explicit Rig(u32 n) : bm(MakeConfig(n)) {}

  static BareMachineConfig MakeConfig(u32 n) {
    BareMachineConfig cfg;
    cfg.physical_memory_bytes = kMem;
    cfg.num_cpus = n;
    return cfg;
  }
};

void SetUpRig(Rig& rig, const std::vector<std::vector<u8>>& programs, bool hostile, u8 cpl) {
  Machine& m = rig.bm.machine();
  const u32 n = m.num_cpus();
  rig.recorder.Reset(n, 1u << 16);
  rig.profiler.Reset(n, m.cpu(0).cycle_model().tlb_miss_penalty);
  for (u32 c = 0; c < n; ++c) {
    m.cpu(c).set_block_engine_enabled(true);
    m.cpu(c).set_trace_engine_enabled(true);
    m.cpu(c).set_decode_cache_enabled(true);
    m.cpu(c).set_dtlb_enabled(true);
    m.cpu(c).set_recorder(&rig.recorder, c);
    m.cpu(c).set_profiler(&rig.profiler, c);
    ASSERT_TRUE(rig.bm.pm().WriteBlock(kCodeBase + c * kCodeStride, programs[c].data(),
                                       static_cast<u32>(programs[c].size())));
  }
  if (hostile) {
    // Each window gets a read-only page and a supervisor-only page, so every
    // vCPU keeps taking (deterministic, private) faults while threaded.
    PageTableEditor ed(rig.bm.pm(), m.cpu(0).cr3(), [&m, n](u32 linear) {
      for (u32 c = 0; c < n; ++c) m.cpu(c).tlb().FlushPage(linear);
    });
    for (u32 c = 0; c < n; ++c) {
      ASSERT_TRUE(ed.UpdateFlags(WindowBase(c) + kPageSize, 0, kPteWrite));
      ASSERT_TRUE(ed.UpdateFlags(WindowBase(c) + 2 * kPageSize, 0, kPteUser));
    }
  }
  for (u32 c = 0; c < n; ++c) {
    rig.bm.StartCpu(c, kCodeBase + c * kCodeStride, cpl, kStackTop - c * kStackStride);
  }
}

// Scripted cross-CPU shootdowns: toggle the W bit of page 3 of a rotating
// vCPU's window, flushing the page on every core — applied in the quiesced
// serial window (threaded) / at the frontier (interleaver), the sanctioned
// cross-CPU channel either way.
template <typename Harness>
void AddShootdownEvents(Rig& rig, Harness& h, const std::vector<u64>& cycles) {
  Machine& m = rig.bm.machine();
  const u32 n = m.num_cpus();
  u32 i = 0;
  for (u64 cy : cycles) {
    const u32 page = WindowBase(i++ % n) + 3 * kPageSize;
    h.AddEvent(cy, [&rig, &m, n, page] {
      PageTableEditor ed(rig.bm.pm(), m.cpu(0).cr3(), [&m, n](u32 linear) {
        for (u32 c = 0; c < n; ++c) m.cpu(c).tlb().FlushPage(linear);
      });
      if (rig.write_protected) {
        ed.UpdateFlags(page, kPteWrite, 0);
      } else {
        ed.UpdateFlags(page, 0, kPteWrite);
      }
      rig.write_protected = !rig.write_protected;
    });
  }
}

// The hlt slot of vCPU c's program: at cpl 3 hlt is privileged, so the run
// ends in a #GP there instead of kHalted. The handler must PARK on that
// fault, not skip it — skipping would march EIP off the program's end,
// through the zero bytes beyond, and eventually into the next vCPU's code
// region, where two vCPUs executing the same body share a window and the
// workload stops being data-race-free.
u32 HltEip(const std::vector<std::vector<u8>>& programs, u32 c) {
  return kCodeBase + c * kCodeStride + static_cast<u32>(programs[c].size()) - kInsnSize;
}

// Stop handler factory. In the threaded run this executes on the stopping
// vCPU's own thread: it only touches that vCPU's slot and that vCPU's state,
// per the ThreadedSmp contract.
SmpInterleaver::StopHandler MakeStopHandler(Machine& m, std::vector<CpuResult>& cpus,
                                            const std::vector<std::vector<u8>>& programs) {
  std::vector<u32> hlt_eips;
  for (u32 c = 0; c < programs.size(); ++c) hlt_eips.push_back(HltEip(programs, c));
  return [&m, &cpus, hlt_eips](u32 c, const StopInfo& stop) {
    if (stop.reason == StopReason::kFault && m.cpu(c).eip() == hlt_eips[c]) {
      cpus[c].final_reason = stop.reason;  // privileged hlt at cpl 3: done
      return false;
    }
    if (stop.reason == StopReason::kFault && cpus[c].faults.size() < 4096) {
      cpus[c].faults.push_back(FaultRecord{m.cpu(c).eip(), stop.fault.vector,
                                           stop.fault.error_code,
                                           stop.fault.linear_address});
      cpus[c].fault_cycles.push_back(m.cpu(c).cycles());
      m.cpu(c).set_eip(m.cpu(c).eip() + kInsnSize);
      return true;  // keep running past the faulting instruction
    }
    cpus[c].final_reason = stop.reason;
    return false;  // halted (or fault overflow): park this vCPU
  };
}

void Collect(Rig& rig, DiffRun& out) {
  Machine& m = rig.bm.machine();
  for (u32 c = 0; c < m.num_cpus(); ++c) {
    out.cpus[c].ctx = m.cpu(c).SaveContext();
    out.cpus[c].cycles = m.cpu(c).cycles();
    out.cpus[c].instructions = m.cpu(c).instructions_retired();
    out.cpus[c].tlb_hits = m.cpu(c).tlb().stats().hits;
    out.cpus[c].tlb_misses = m.cpu(c).tlb().stats().misses;
    out.cpus[c].arch_events = rig.recorder.ArchEvents(c);
  }
  EXPECT_EQ(rig.recorder.TotalDropped(), 0u) << "ring sized too small to compare streams";
  out.memory.assign(rig.bm.pm().HostData(), rig.bm.pm().HostData() + rig.bm.pm().size());
}

DiffRun RunThreaded(const std::vector<std::vector<u8>>& programs, bool hostile, u8 cpl,
                    const std::vector<u64>& shootdowns) {
  const u32 n = static_cast<u32>(programs.size());
  Rig rig(n);
  SetUpRig(rig, programs, hostile, cpl);
  Machine& m = rig.bm.machine();

  DiffRun out;
  out.cpus.resize(n);
  ThreadedSmp ts(m, kEpochCycles);
  AddShootdownEvents(rig, ts, shootdowns);
  ts.set_barrier_hook([&m, &out, n](u64 barrier) {
    EpochSample s;
    s.barrier = barrier;
    for (u32 c = 0; c < n; ++c) {
      s.cycles.push_back(m.cpu(c).cycles());
      s.instructions.push_back(m.cpu(c).instructions_retired());
    }
    out.samples.push_back(std::move(s));
  });
  ts.Run(kCycleLimit, MakeStopHandler(m, out.cpus, programs));
  Collect(rig, out);
  return out;
}

// Replays the identical machine on the oracle interleaver, segmented at the
// threaded run's barrier cycles: after Run(B) every live vCPU sits at its
// first retire boundary >= B, which is exactly the state the threaded run
// quiesced in at barrier B.
DiffRun RunInterleavedAt(const std::vector<std::vector<u8>>& programs, bool hostile,
                         u8 cpl, const std::vector<u64>& shootdowns,
                         const std::vector<EpochSample>& barriers) {
  const u32 n = static_cast<u32>(programs.size());
  Rig rig(n);
  SetUpRig(rig, programs, hostile, cpl);
  Machine& m = rig.bm.machine();

  DiffRun out;
  out.cpus.resize(n);
  SmpInterleaver il(m);
  AddShootdownEvents(rig, il, shootdowns);
  const SmpInterleaver::StopHandler on_stop = MakeStopHandler(m, out.cpus, programs);
  for (const EpochSample& b : barriers) {
    if (b.barrier > 0) il.Run(b.barrier, on_stop);
    EpochSample s;
    s.barrier = b.barrier;
    for (u32 c = 0; c < n; ++c) {
      s.cycles.push_back(m.cpu(c).cycles());
      s.instructions.push_back(m.cpu(c).instructions_retired());
    }
    out.samples.push_back(std::move(s));
  }
  il.Run(kCycleLimit, on_stop);
  Collect(rig, out);
  return out;
}

void ExpectRunsEqual(const DiffRun& threaded, const DiffRun& oracle) {
  ASSERT_EQ(threaded.cpus.size(), oracle.cpus.size());
  for (u32 c = 0; c < threaded.cpus.size(); ++c) {
    SCOPED_TRACE("vcpu " + std::to_string(c));
    const CpuResult& a = threaded.cpus[c];
    const CpuResult& b = oracle.cpus[c];
    EXPECT_EQ(a.final_reason, b.final_reason);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles) << "cycle model diverged";
    EXPECT_EQ(a.tlb_hits, b.tlb_hits);
    EXPECT_EQ(a.tlb_misses, b.tlb_misses);
    ASSERT_EQ(a.faults.size(), b.faults.size()) << "fault streams differ in length";
    for (size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_TRUE(a.faults[i] == b.faults[i])
          << "fault " << i << " diverged: eip " << std::hex << a.faults[i].eip << " vs "
          << b.faults[i].eip << ", linear " << a.faults[i].linear << " vs "
          << b.faults[i].linear << std::dec << ", at cycle " << a.fault_cycles[i]
          << " vs " << b.fault_cycles[i];
      EXPECT_EQ(a.fault_cycles[i], b.fault_cycles[i]);
    }
    EXPECT_EQ(a.ctx.eip, b.ctx.eip);
    EXPECT_EQ(a.ctx.eflags, b.ctx.eflags);
    EXPECT_EQ(a.ctx.cpl, b.ctx.cpl);
    for (u8 r = 0; r < kNumRegs; ++r) {
      EXPECT_EQ(a.ctx.regs[r], b.ctx.regs[r]) << "reg " << static_cast<int>(r);
    }
    ASSERT_EQ(a.arch_events.size(), b.arch_events.size()) << "arch-event streams differ";
    for (size_t i = 0; i < a.arch_events.size(); ++i) {
      EXPECT_TRUE(a.arch_events[i] == b.arch_events[i]) << "arch event " << i << " diverged";
    }
  }
  ASSERT_EQ(threaded.samples.size(), oracle.samples.size());
  for (size_t k = 0; k < threaded.samples.size(); ++k) {
    EXPECT_TRUE(threaded.samples[k] == oracle.samples[k])
        << "per-epoch sample " << k << " (barrier cycle "
        << threaded.samples[k].barrier << ") diverged";
  }
  ASSERT_EQ(threaded.memory.size(), oracle.memory.size());
  EXPECT_EQ(std::memcmp(threaded.memory.data(), oracle.memory.data(), threaded.memory.size()),
            0)
      << "memory images diverged";
}

TEST(ThreadedSmpDifferential, MatchesInterleaverOnDrfWorkloads) {
  constexpr u32 kSeeds = 6;
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    const bool hostile = (seed % 4) >= 2;
    const u8 cpl = (seed % 2) ? 3 : 0;
    // Scripted shootdown points: pseudo-random global cycles early enough to
    // land inside the run.
    std::vector<u64> shootdowns;
    u64 st = seed * 0x9E3779B97F4A7C15ull + 23;
    u64 t = 1'500;
    for (int i = 0; i < 6; ++i) {
      t += 500 + NextRand(&st) % 5'000;
      shootdowns.push_back(t);
    }
    for (u32 n : {2u, 4u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " n " + std::to_string(n) +
                   (hostile ? " hostile" : " plain") + " cpl " + std::to_string(cpl));
      std::vector<std::vector<u8>> programs;
      for (u32 c = 0; c < n; ++c) programs.push_back(BuildProgram(seed, c));

      DiffRun threaded = RunThreaded(programs, hostile, cpl, shootdowns);
      for (u32 c = 0; c < n; ++c) {
        EXPECT_GE(threaded.cpus[c].instructions, 1'000u)
            << "vCPU " << c << " barely executed — fuzz not meaningful";
      }
      EXPECT_GE(threaded.samples.size(), 8u)
          << "too few epoch barriers for the sample comparison to mean anything";

      DiffRun oracle =
          RunInterleavedAt(programs, hostile, cpl, shootdowns, threaded.samples);
      ExpectRunsEqual(threaded, oracle);
    }
  }
}

// Determinism of the threaded mode itself: two threaded runs of the same DRF
// workload must agree exactly (schedule, samples, final state) — host thread
// timing must not leak into simulated time.
TEST(ThreadedSmpDifferential, ThreadedRunsAreReproducible) {
  std::vector<std::vector<u8>> programs;
  for (u32 c = 0; c < 4; ++c) programs.push_back(BuildProgram(99, c));
  const std::vector<u64> shootdowns = {2'000, 5'500, 9'000};
  DiffRun a = RunThreaded(programs, /*hostile=*/true, /*cpl=*/3, shootdowns);
  DiffRun b = RunThreaded(programs, /*hostile=*/true, /*cpl=*/3, shootdowns);
  ExpectRunsEqual(a, b);
}

// The opt-in switch: RunSmp dispatches to ThreadedSmp when
// PALLADIUM_HOST_THREADS is set to anything but "0" (and the machine is
// SMP), and to the oracle interleaver otherwise. The harness choice is
// observable from the stop handler: the interleaver runs every handler on
// the calling thread, ThreadedSmp runs each vCPU's handler on that vCPU's
// own host thread.
TEST(ThreadedSmpDispatch, HostThreadsEnvSelectsTheHarness) {
  std::vector<std::vector<u8>> programs;
  for (u32 c = 0; c < 2; ++c) programs.push_back(BuildProgram(7, c));

  const auto distinct_stop_threads = [&programs]() {
    Rig rig(2);
    SetUpRig(rig, programs, /*hostile=*/false, /*cpl=*/0);
    Machine& m = rig.bm.machine();
    std::vector<CpuResult> cpus(2);
    const SmpInterleaver::StopHandler inner = MakeStopHandler(m, cpus, programs);
    std::mutex mu;
    std::set<std::thread::id> ids;
    RunSmp(m, kCycleLimit, [&](u32 c, const StopInfo& stop) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      }
      return inner(c, stop);
    });
    for (u32 c = 0; c < 2; ++c) EXPECT_EQ(cpus[c].final_reason, StopReason::kHalted);
    return ids.size();
  };

  ASSERT_EQ(unsetenv("PALLADIUM_HOST_THREADS"), 0);
  EXPECT_EQ(distinct_stop_threads(), 1u) << "default must be the interleaver";
  ASSERT_EQ(setenv("PALLADIUM_HOST_THREADS", "1", 1), 0);
  EXPECT_EQ(distinct_stop_threads(), 2u) << "opt-in must give one host thread per vCPU";
  ASSERT_EQ(setenv("PALLADIUM_HOST_THREADS", "0", 1), 0);
  EXPECT_EQ(distinct_stop_threads(), 1u) << "\"0\" must mean off";
  unsetenv("PALLADIUM_HOST_THREADS");
}

}  // namespace
}  // namespace palladium
