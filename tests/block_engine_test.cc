// Superblock-engine tests: block lifecycle (build, chain, yield), the
// invalidation edges the engine must get exactly right — a self-modifying
// store into the *currently executing* block, cross-page fallthrough into a
// just-remapped page, and an SMP invalidation landing while another vCPU is
// mid-block — and retire-boundary equivalence with the per-instruction
// oracle (PALLADIUM_NO_BLOCKS analogue: Cpu::set_block_engine_enabled).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"
#include "src/hw/smp.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

std::vector<u8> Encode(const std::vector<Insn>& program) {
  std::vector<u8> bytes(program.size() * kInsnSize);
  for (size_t i = 0; i < program.size(); ++i) {
    program[i].EncodeTo(bytes.data() + i * kInsnSize);
  }
  return bytes;
}

Insn MovRI(Reg r, i32 imm) {
  Insn in;
  in.opcode = Opcode::kMovRI;
  in.r1 = static_cast<u8>(r);
  in.imm = imm;
  return in;
}

Insn StoreAbs(Reg r, u32 addr, u8 size = 4) {
  Insn in;
  in.opcode = Opcode::kStore;
  in.r1 = static_cast<u8>(r);
  in.r2 = kNoBaseReg;
  in.size = size;
  in.disp = static_cast<i32>(addr);
  return in;
}

Insn AddRI(Reg r, i32 imm) {
  Insn in;
  in.opcode = Opcode::kAddRI;
  in.r1 = static_cast<u8>(r);
  in.imm = imm;
  return in;
}

Insn Hlt() {
  Insn in;
  in.opcode = Opcode::kHlt;
  return in;
}

struct EngineResult {
  StopInfo stop;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
};

// Runs `bytes` at kCodeBase on a fresh machine with the block engine on or
// off and returns the final architectural state.
EngineResult RunProgram(const std::vector<u8>& bytes, bool blocks,
                        u64 cycle_limit = 1'000'000) {
  BareMachine bm;
  bm.cpu().set_block_engine_enabled(blocks);
  EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase, bytes.data(), static_cast<u32>(bytes.size())));
  bm.Start(kCodeBase, 0, kStackTop);
  EngineResult r;
  r.stop = bm.Run(cycle_limit);
  r.ctx = bm.cpu().SaveContext();
  r.cycles = bm.cpu().cycles();
  r.instructions = bm.cpu().instructions_retired();
  return r;
}

void ExpectSameState(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.stop.reason, b.stop.reason);
  EXPECT_EQ(a.cycles, b.cycles) << "cycle streams diverged";
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ctx.eip, b.ctx.eip);
  EXPECT_EQ(a.ctx.eflags, b.ctx.eflags);
  for (u8 r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(a.ctx.regs[r], b.ctx.regs[r]) << "reg " << static_cast<int>(r);
  }
}

// A store that patches the *next instruction in the currently executing
// block* must take effect before that instruction retires: the engine has to
// finish the store, notice its own page died, and refetch — the
// per-instruction rule, preserved mid-block.
TEST(BlockEngine, SelfModifyingStoreIntoCurrentBlockExecutesNewCode) {
  // Slot 3 is `mov $1, %edi`; slot 2 patches slot 3's imm field (offset 8
  // within the slot) to 2 before it executes. Straight-line, one page, one
  // block.
  const u32 patched_imm_addr = kCodeBase + 3 * kInsnSize + 8;
  std::vector<Insn> program = {
      MovRI(Reg::kEax, 2),
      MovRI(Reg::kEdi, 0),
      StoreAbs(Reg::kEax, patched_imm_addr),
      MovRI(Reg::kEdi, 1),  // imm patched to 2 at runtime
      Hlt(),
  };
  const std::vector<u8> bytes = Encode(program);
  EngineResult block = RunProgram(bytes, /*blocks=*/true);
  EngineResult insn = RunProgram(bytes, /*blocks=*/false);
  EXPECT_EQ(block.stop.reason, StopReason::kHalted);
  EXPECT_EQ(block.ctx.regs[static_cast<u8>(Reg::kEdi)], 2u)
      << "patched instruction must execute its new bytes";
  ExpectSameState(block, insn);
}

// Code falling through a page boundary into a page whose mapping was edited
// mid-run (a scripted host event at a deterministic global cycle) must fetch
// through the *new* translation — the fetch pins revalidate against
// Tlb::change_count on the far side of the boundary.
TEST(BlockEngine, CrossPageFallthroughIntoRemappedPage) {
  constexpr u32 kPageA = kCodeBase;            // 0x10000
  constexpr u32 kPageB = kCodeBase + kPageSize;  // 0x11000, remapped mid-run
  auto run = [&](bool blocks) {
    BareMachine bm;
    Machine& m = bm.machine();
    bm.cpu().set_block_engine_enabled(blocks);

    // Page A: a long straight-line run (eax += 1 each) that falls through
    // into page B.
    std::vector<Insn> page_a;
    for (u32 i = 0; i < DecodeCache::kSlotsPerPage; ++i) page_a.push_back(AddRI(Reg::kEax, 1));
    const std::vector<u8> a_bytes = Encode(page_a);
    EXPECT_TRUE(bm.pm().WriteBlock(kPageA, a_bytes.data(), static_cast<u32>(a_bytes.size())));

    // Page B's original frame: mov $1, %edi; hlt. The replacement frame:
    // mov $2, %edi; hlt.
    const std::vector<u8> b_old = Encode({MovRI(Reg::kEdi, 1), Hlt()});
    EXPECT_TRUE(bm.pm().WriteBlock(kPageB, b_old.data(), static_cast<u32>(b_old.size())));
    const u32 new_frame = bm.AllocFrame();
    const std::vector<u8> b_new = Encode({MovRI(Reg::kEdi, 2), Hlt()});
    EXPECT_TRUE(bm.pm().WriteBlock(new_frame, b_new.data(), static_cast<u32>(b_new.size())));

    bm.Start(kPageA, 0, kStackTop);

    // Remap linear page B onto the replacement frame while page A is still
    // executing (the straight-line run costs 1 cycle/insn; cycle 64 is
    // mid-page). The editor hook flushes the page on the CPU, which bumps
    // the TLB change count the fetch pins validate against.
    SmpInterleaver il(m);
    il.AddEvent(64, [&] {
      PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                         [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
      EXPECT_TRUE(ed.SetPte(kPageB, MakePte(new_frame, kPtePresent | kPteWrite | kPteUser)));
    });
    StopReason final_reason = StopReason::kCycleLimit;
    il.Run(1'000'000, [&](u32, const StopInfo& stop) {
      final_reason = stop.reason;
      return false;
    });
    EngineResult r;
    r.stop.reason = final_reason;
    r.ctx = bm.cpu().SaveContext();
    r.cycles = bm.cpu().cycles();
    r.instructions = bm.cpu().instructions_retired();
    return r;
  };

  EngineResult block = run(/*blocks=*/true);
  EngineResult insn = run(/*blocks=*/false);
  EXPECT_EQ(block.stop.reason, StopReason::kHalted);
  EXPECT_EQ(block.ctx.regs[static_cast<u8>(Reg::kEdi)], 2u)
      << "fallthrough must fetch through the remapped translation";
  EXPECT_EQ(block.ctx.regs[static_cast<u8>(Reg::kEax)], DecodeCache::kSlotsPerPage);
  ExpectSameState(block, insn);
}

// An SMP write invalidating a code page lands (via the physical-memory
// write-observer fan-out) while another vCPU is mid-way through a block of
// that page: the victim finishes the instruction retiring at the
// interleave frontier, then refetches and executes the new bytes. Both
// engines must produce identical per-vCPU state and shared memory.
TEST(BlockEngine, SmpInvalidationMidBlockRefetchesNewCode) {
  constexpr u32 kCpu1Code = kCodeBase + 0x4000;
  // vCPU 0 retires ~1 cycle/insn, so at global cycle 100 it is mid-page,
  // inside a block, and still before the patched tail (slots 128..255).
  constexpr u32 kPatchCycle = 100;
  auto run = [&](bool blocks) {
    BareMachineConfig config;
    config.num_cpus = 2;
    BareMachine bm(config);
    Machine& m = bm.machine();
    for (u32 c = 0; c < 2; ++c) m.cpu(c).set_block_engine_enabled(blocks);

    // vCPU 0: a long straight-line page of `add $1, %eax`, then hlt on the
    // next page. The patch event rewrites the tail of the page (slots
    // 128..255) to `add $100, %eax` while vCPU 0 is executing inside it.
    std::vector<Insn> code0;
    for (u32 i = 0; i < DecodeCache::kSlotsPerPage; ++i) code0.push_back(AddRI(Reg::kEax, 1));
    const std::vector<u8> bytes0 = Encode(code0);
    EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase, bytes0.data(), static_cast<u32>(bytes0.size())));
    const std::vector<u8> tail_hlt = Encode({Hlt()});
    EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase + kPageSize, tail_hlt.data(),
                                   static_cast<u32>(tail_hlt.size())));

    // vCPU 1: its own add loop, far from vCPU 0's code.
    std::vector<Insn> code1;
    for (int i = 0; i < 64; ++i) code1.push_back(AddRI(Reg::kEbx, 3));
    code1.push_back(Hlt());
    const std::vector<u8> bytes1 = Encode(code1);
    EXPECT_TRUE(bm.pm().WriteBlock(kCpu1Code, bytes1.data(), static_cast<u32>(bytes1.size())));

    bm.StartCpu(0, kCodeBase, 0, kStackTop);
    bm.StartCpu(1, kCpu1Code, 0, kStackTop - 0x2000);

    SmpInterleaver il(m);
    il.AddEvent(kPatchCycle, [&] {
      std::vector<Insn> patch;
      for (u32 i = DecodeCache::kSlotsPerPage / 2; i < DecodeCache::kSlotsPerPage; ++i) {
        patch.push_back(AddRI(Reg::kEax, 100));
      }
      const std::vector<u8> pbytes = Encode(patch);
      // Host-side write: fans out to every vCPU's decode cache.
      EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase + (kPageSize / 2), pbytes.data(),
                                     static_cast<u32>(pbytes.size())));
    });
    il.Run(1'000'000, [&](u32, const StopInfo& stop) {
      EXPECT_EQ(stop.reason, StopReason::kHalted);
      return false;
    });

    struct SmpResult {
      CpuContext ctx0, ctx1;
      u64 cycles0, cycles1;
    } r{m.cpu(0).SaveContext(), m.cpu(1).SaveContext(), m.cpu(0).cycles(), m.cpu(1).cycles()};
    return r;
  };

  auto block = run(/*blocks=*/true);
  auto insn = run(/*blocks=*/false);
  // The patch fired at cycle 200 with vCPU 0 inside the page (1 cycle/insn,
  // interleaved with vCPU 1), so the final EAX must mix old (+1) and new
  // (+100) increments: strictly more than 256 plain increments, and the
  // patched tail (128 slots) must all count +100.
  const u32 eax = block.ctx0.regs[static_cast<u8>(Reg::kEax)];
  EXPECT_GT(eax, DecodeCache::kSlotsPerPage) << "patched instructions must have executed";
  EXPECT_EQ((eax - DecodeCache::kSlotsPerPage) % 99u, 0u)
      << "every patched slot adds exactly 99 extra";
  EXPECT_EQ((eax - DecodeCache::kSlotsPerPage) / 99u, DecodeCache::kSlotsPerPage / 2)
      << "the whole patched tail (and nothing before it) must run with new bytes";
  EXPECT_EQ(block.ctx0.regs[static_cast<u8>(Reg::kEax)],
            insn.ctx0.regs[static_cast<u8>(Reg::kEax)]);
  EXPECT_EQ(block.ctx1.regs[static_cast<u8>(Reg::kEbx)],
            insn.ctx1.regs[static_cast<u8>(Reg::kEbx)]);
  EXPECT_EQ(block.cycles0, insn.cycles0);
  EXPECT_EQ(block.cycles1, insn.cycles1);
}

// Retire-boundary equivalence under arbitrary cycle-limit slices: blocks
// must end early at the frontier, so stepping a program in small slices
// lands on exactly the same (cycles, EIP) staircase as the per-instruction
// engine.
TEST(BlockEngine, CycleLimitSlicesLandOnIdenticalBoundaries) {
  std::vector<Insn> program;
  Insn init = MovRI(Reg::kEcx, 50);
  program.push_back(init);
  for (int i = 0; i < 20; ++i) program.push_back(AddRI(Reg::kEax, i + 1));
  Insn dec;
  dec.opcode = Opcode::kDecR;
  dec.r1 = static_cast<u8>(Reg::kEcx);
  program.push_back(dec);
  Insn cmp;
  cmp.opcode = Opcode::kCmpRI;
  cmp.r1 = static_cast<u8>(Reg::kEcx);
  cmp.imm = 0;
  program.push_back(cmp);
  Insn jne;
  jne.opcode = Opcode::kJne;
  jne.imm = static_cast<i32>(kCodeBase + kInsnSize);
  program.push_back(jne);
  program.push_back(Hlt());
  const std::vector<u8> bytes = Encode(program);

  for (u64 slice : {1ull, 7ull, 23ull, 64ull}) {
    BareMachine bm_block, bm_insn;
    bm_block.cpu().set_block_engine_enabled(true);
    bm_insn.cpu().set_block_engine_enabled(false);
    for (BareMachine* bm : {&bm_block, &bm_insn}) {
      ASSERT_TRUE(bm->pm().WriteBlock(kCodeBase, bytes.data(), static_cast<u32>(bytes.size())));
      bm->Start(kCodeBase, 0, kStackTop);
    }
    for (int step = 0; step < 10'000; ++step) {
      const u64 limit = bm_block.cpu().cycles() + slice;
      StopInfo a = bm_block.Run(limit);
      StopInfo b = bm_insn.Run(limit);
      ASSERT_EQ(a.reason, b.reason) << "slice " << slice << " step " << step;
      ASSERT_EQ(bm_block.cpu().cycles(), bm_insn.cpu().cycles())
          << "slice " << slice << " step " << step;
      ASSERT_EQ(bm_block.cpu().eip(), bm_insn.cpu().eip());
      ASSERT_EQ(bm_block.cpu().instructions_retired(), bm_insn.cpu().instructions_retired());
      if (a.reason == StopReason::kHalted) break;
    }
    EXPECT_EQ(bm_block.cpu().reg(Reg::kEax), bm_insn.cpu().reg(Reg::kEax));
  }
}

// Block observability: a tight loop enters block dispatch once and chains
// block-to-block on every taken branch instead of re-entering the outer
// loop, and nearly every instruction retires inside the engine.
TEST(BlockEngine, LoopChainsWithoutLeavingDispatch) {
  BareMachine bm;
  // This test is about the engine itself; override the PALLADIUM_NO_BLOCKS
  // oracle so it still observes block dispatch under the CI oracle matrix,
  // and pin the trace tier off — once the loop goes hot the trace executor
  // iterates in place without chaining, which is exactly what this test
  // must not measure.
  bm.cpu().set_block_engine_enabled(true);
  bm.cpu().set_trace_engine_enabled(false);
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $1000, %ecx
loop:
  add $3, %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(1'000'000).reason, StopReason::kHalted);
  const Cpu::BlockStats& bs = bm.cpu().block_stats();
  EXPECT_GE(bs.chains, 999u) << "taken loop branches must chain in-page";
  EXPECT_LE(bs.entries, 8u) << "a steady loop re-enters block dispatch rarely";
  EXPECT_GE(bs.insns, bm.cpu().instructions_retired() - 8)
      << "nearly all instructions should retire inside block dispatch";
}

// The engine switch really selects the per-instruction path.
TEST(BlockEngine, DisabledEngineRetiresNothingInBlockDispatch) {
  BareMachine bm;
  bm.cpu().set_block_engine_enabled(false);
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $10, %ecx
loop:
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(1'000'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().block_stats().entries, 0u);
  EXPECT_EQ(bm.cpu().block_stats().insns, 0u);
}

}  // namespace
}  // namespace palladium
