// Dynamic-linker tests: library loading, symbol lookup across libraries,
// eager-binding failures, and GOT construction.
#include <gtest/gtest.h>

#include "src/dl/dynamic_linker.h"
#include "src/hw/paging.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

class DlTest : public ::testing::Test {
 protected:
  DlTest() : kernel_(machine_), dl_(kernel_) {
    pid_ = kernel_.CreateProcess();
    std::string diag;
    auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                               kUserTextBase, {}, &diag);
    EXPECT_TRUE(img.has_value()) << diag;
    EXPECT_TRUE(kernel_.LoadUserImage(pid_, *img, "main", &diag)) << diag;
  }

  void Register(const std::string& name, const std::string& src) {
    AssembleError aerr;
    auto obj = Assemble(src, &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    dl_.RegisterObject(name, *obj);
  }

  Machine machine_;
  Kernel kernel_;
  DynamicLinker dl_;
  Pid pid_ = 0;
};

TEST_F(DlTest, LoadsAtSharedLibBase) {
  Register("liba", ".global f\nf:\n  ret\n");
  std::string diag;
  auto base = dl_.LoadLibrary(pid_, "liba", true, &diag);
  ASSERT_TRUE(base.has_value()) << diag;
  EXPECT_EQ(*base, kSharedLibBase);
  auto f = dl_.Lookup(pid_, "f");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, kSharedLibBase);
}

TEST_F(DlTest, SecondLibraryLoadsHigher) {
  Register("liba", ".global fa\nfa:\n  ret\n");
  Register("libb", ".global fb\nfb:\n  ret\n");
  std::string diag;
  auto a = dl_.LoadLibrary(pid_, "liba", true, &diag);
  auto b = dl_.LoadLibrary(pid_, "libb", true, &diag);
  ASSERT_TRUE(a && b);
  EXPECT_GT(*b, *a);
  EXPECT_TRUE(dl_.Lookup(pid_, "fa").has_value());
  EXPECT_TRUE(dl_.Lookup(pid_, "fb").has_value());
}

TEST_F(DlTest, InterLibraryImportsResolveEagerly) {
  Register("liba", ".global helper\nhelper:\n  mov $5, %eax\n  ret\n");
  Register("libb", ".extern helper\n.global wrapper\nwrapper:\n  call helper\n  ret\n");
  std::string diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "liba", true, &diag)) << diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "libb", true, &diag)) << diag;
}

TEST_F(DlTest, MissingImportFailsAtLoadTime) {
  // Eager binding: the error surfaces at dlopen time, not first call.
  Register("libbad", ".extern nowhere\n.global f\nf:\n  call nowhere\n  ret\n");
  std::string diag;
  EXPECT_FALSE(dl_.LoadLibrary(pid_, "libbad", true, &diag).has_value());
  EXPECT_NE(diag.find("nowhere"), std::string::npos);
}

TEST_F(DlTest, UnknownObjectFails) {
  std::string diag;
  EXPECT_FALSE(dl_.LoadLibrary(pid_, "libmissing", true, &diag).has_value());
}

TEST_F(DlTest, GotSlotsHoldResolvedAddresses) {
  Register("liba", ".global target\ntarget:\n  ret\n");
  std::string diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "liba", true, &diag)) << diag;
  Process* proc = kernel_.process(pid_);
  // A page for the GOT.
  u32 got_page = 0x70000000;
  ASSERT_TRUE(kernel_.AddArea(*proc, got_page, got_page + kPageSize, 3, "got"));
  ASSERT_TRUE(kernel_.PopulateRange(*proc, got_page, got_page + kPageSize));
  auto slots = dl_.BuildGot(pid_, got_page, {"target"}, &diag);
  ASSERT_TRUE(slots.has_value()) << diag;
  ASSERT_EQ(slots->count("got_target"), 1u);
  u32 value = 0;
  ASSERT_TRUE(kernel_.CopyFromUser(*proc, slots->at("got_target"), &value, 4));
  EXPECT_EQ(value, *dl_.Lookup(pid_, "target"));
  // Page is read-only now.
  auto pte = kernel_.GetPte(*proc, got_page);
  ASSERT_TRUE(pte.has_value());
  EXPECT_FALSE(*pte & kPteWrite);
}

TEST_F(DlTest, UnloadLibraryRemovesMappingAndSymbols) {
  Register("liba", ".global f\nf:\n  mov $5, %eax\n  ret\n");
  std::string diag;
  auto base = dl_.LoadLibrary(pid_, "liba", false, &diag);
  ASSERT_TRUE(base.has_value()) << diag;
  Process* proc = kernel_.process(pid_);
  u32 word = 0;
  EXPECT_TRUE(kernel_.CopyFromUser(*proc, *base, &word, 4));
  ASSERT_TRUE(dl_.UnloadLibrary(pid_, "liba", &diag)) << diag;
  EXPECT_FALSE(dl_.Lookup(pid_, "f").has_value());
  // The pages are genuinely gone, not just forgotten by the linker.
  EXPECT_FALSE(kernel_.CopyFromUser(*proc, *base, &word, 4));
  EXPECT_EQ(dl_.loads(), 1u);
  EXPECT_EQ(dl_.unloads(), 1u);
  // Double unload fails cleanly.
  EXPECT_FALSE(dl_.UnloadLibrary(pid_, "liba", &diag));
  // The freed range is never reused: a dangling pointer into the old
  // library faults instead of silently hitting the next image.
  Register("libb", ".global g\ng:\n  ret\n");
  auto base2 = dl_.LoadLibrary(pid_, "libb", false, &diag);
  ASSERT_TRUE(base2.has_value()) << diag;
  EXPECT_GT(*base2, *base);
}

// Regression pin for the unload path under the engine matrix: a call into
// an unloaded library must #PF — a stale decode-cache block, trace, or
// (D-)TLB entry surviving Kernel::UnmapArea would instead execute the dead
// image. Runs with the D-TLB fast path on and off; the CI matrix adds the
// block/trace-engine and SMP axes on top.
TEST(DlUnload, StaleCallAfterUnloadFaults) {
  for (bool dtlb : {true, false}) {
    Machine machine;
    Kernel kernel(machine);
    kernel.cpu().set_dtlb_enabled(dtlb);
    DynamicLinker dl(kernel);
    Pid pid = kernel.CreateProcess();
    ASSERT_NE(pid, 0u);
    AssembleError aerr;
    auto obj = Assemble(".global f\nf:\n  mov $7, %eax\n  ret\n", &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    dl.RegisterObject("liba", *obj);
    std::string diag;
    auto base = dl.LoadLibrary(pid, "liba", false, &diag);
    ASSERT_TRUE(base.has_value()) << diag;
    auto faddr = dl.Lookup(pid, "f");
    ASSERT_TRUE(faddr.has_value());

    kernel.RegisterSyscall(233, [&](Kernel& k, u32, u32, u32) {
      std::string d2;
      EXPECT_TRUE(dl.UnloadLibrary(pid, "liba", &d2)) << d2;
      k.ReturnFromGate(0);
    });

    auto img = AssembleAndLink(AbiPrelude() + R"(
  .extern f
  .global main
main:
  call f                ; warm: decode cache + TLB + D-TLB entries
  mov $233, %eax
  int $INT_SYSCALL      ; the kernel unloads the library underneath us
  call f                ; stale: must #PF, never run the dead image
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                               kUserTextBase, {{"f", *faddr}}, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    ASSERT_TRUE(kernel.LoadUserImage(pid, *img, "main", &diag)) << diag;
    RunResult r = kernel.RunProcess(pid);
    EXPECT_EQ(r.outcome, RunOutcome::kKilled) << "dtlb=" << dtlb;
    EXPECT_NE(r.kill_reason.find("#PF"), std::string::npos) << r.kill_reason;
  }
}

TEST_F(DlTest, GotUnresolvedSymbolFails) {
  Process* proc = kernel_.process(pid_);
  u32 got_page = 0x70000000;
  ASSERT_TRUE(kernel_.AddArea(*proc, got_page, got_page + kPageSize, 3, "got"));
  ASSERT_TRUE(kernel_.PopulateRange(*proc, got_page, got_page + kPageSize));
  std::string diag;
  EXPECT_FALSE(dl_.BuildGot(pid_, got_page, {"ghost"}, &diag).has_value());
  EXPECT_NE(diag.find("ghost"), std::string::npos);
}

}  // namespace
}  // namespace palladium
