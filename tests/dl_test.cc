// Dynamic-linker tests: library loading, symbol lookup across libraries,
// eager-binding failures, and GOT construction.
#include <gtest/gtest.h>

#include "src/dl/dynamic_linker.h"
#include "src/hw/paging.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

class DlTest : public ::testing::Test {
 protected:
  DlTest() : kernel_(machine_), dl_(kernel_) {
    pid_ = kernel_.CreateProcess();
    std::string diag;
    auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                               kUserTextBase, {}, &diag);
    EXPECT_TRUE(img.has_value()) << diag;
    EXPECT_TRUE(kernel_.LoadUserImage(pid_, *img, "main", &diag)) << diag;
  }

  void Register(const std::string& name, const std::string& src) {
    AssembleError aerr;
    auto obj = Assemble(src, &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    dl_.RegisterObject(name, *obj);
  }

  Machine machine_;
  Kernel kernel_;
  DynamicLinker dl_;
  Pid pid_ = 0;
};

TEST_F(DlTest, LoadsAtSharedLibBase) {
  Register("liba", ".global f\nf:\n  ret\n");
  std::string diag;
  auto base = dl_.LoadLibrary(pid_, "liba", true, &diag);
  ASSERT_TRUE(base.has_value()) << diag;
  EXPECT_EQ(*base, kSharedLibBase);
  auto f = dl_.Lookup(pid_, "f");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, kSharedLibBase);
}

TEST_F(DlTest, SecondLibraryLoadsHigher) {
  Register("liba", ".global fa\nfa:\n  ret\n");
  Register("libb", ".global fb\nfb:\n  ret\n");
  std::string diag;
  auto a = dl_.LoadLibrary(pid_, "liba", true, &diag);
  auto b = dl_.LoadLibrary(pid_, "libb", true, &diag);
  ASSERT_TRUE(a && b);
  EXPECT_GT(*b, *a);
  EXPECT_TRUE(dl_.Lookup(pid_, "fa").has_value());
  EXPECT_TRUE(dl_.Lookup(pid_, "fb").has_value());
}

TEST_F(DlTest, InterLibraryImportsResolveEagerly) {
  Register("liba", ".global helper\nhelper:\n  mov $5, %eax\n  ret\n");
  Register("libb", ".extern helper\n.global wrapper\nwrapper:\n  call helper\n  ret\n");
  std::string diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "liba", true, &diag)) << diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "libb", true, &diag)) << diag;
}

TEST_F(DlTest, MissingImportFailsAtLoadTime) {
  // Eager binding: the error surfaces at dlopen time, not first call.
  Register("libbad", ".extern nowhere\n.global f\nf:\n  call nowhere\n  ret\n");
  std::string diag;
  EXPECT_FALSE(dl_.LoadLibrary(pid_, "libbad", true, &diag).has_value());
  EXPECT_NE(diag.find("nowhere"), std::string::npos);
}

TEST_F(DlTest, UnknownObjectFails) {
  std::string diag;
  EXPECT_FALSE(dl_.LoadLibrary(pid_, "libmissing", true, &diag).has_value());
}

TEST_F(DlTest, GotSlotsHoldResolvedAddresses) {
  Register("liba", ".global target\ntarget:\n  ret\n");
  std::string diag;
  ASSERT_TRUE(dl_.LoadLibrary(pid_, "liba", true, &diag)) << diag;
  Process* proc = kernel_.process(pid_);
  // A page for the GOT.
  u32 got_page = 0x70000000;
  ASSERT_TRUE(kernel_.AddArea(*proc, got_page, got_page + kPageSize, 3, "got"));
  ASSERT_TRUE(kernel_.PopulateRange(*proc, got_page, got_page + kPageSize));
  auto slots = dl_.BuildGot(pid_, got_page, {"target"}, &diag);
  ASSERT_TRUE(slots.has_value()) << diag;
  ASSERT_EQ(slots->count("got_target"), 1u);
  u32 value = 0;
  ASSERT_TRUE(kernel_.CopyFromUser(*proc, slots->at("got_target"), &value, 4));
  EXPECT_EQ(value, *dl_.Lookup(pid_, "target"));
  // Page is read-only now.
  auto pte = kernel_.GetPte(*proc, got_page);
  ASSERT_TRUE(pte.has_value());
  EXPECT_FALSE(*pte & kPteWrite);
}

TEST_F(DlTest, GotUnresolvedSymbolFails) {
  Process* proc = kernel_.process(pid_);
  u32 got_page = 0x70000000;
  ASSERT_TRUE(kernel_.AddArea(*proc, got_page, got_page + kPageSize, 3, "got"));
  ASSERT_TRUE(kernel_.PopulateRange(*proc, got_page, got_page + kPageSize));
  std::string diag;
  EXPECT_FALSE(dl_.BuildGot(pid_, got_page, {"ghost"}, &diag).has_value());
  EXPECT_NE(diag.find("ghost"), std::string::npos);
}

}  // namespace
}  // namespace palladium
