// SFI rewriter tests: instruction expansion, relocation/symbol remapping,
// semantic preservation for in-sandbox code, and containment of hostile
// out-of-sandbox accesses.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/hw/bare_machine.h"
#include "src/sfi/sfi.h"

namespace palladium {
namespace {

constexpr u32 kSandboxBase = 0x00400000;
constexpr u32 kSandboxBits = 20;  // 1 MB

ObjectFile MustAssemble(const std::string& src) {
  AssembleError err;
  auto obj = Assemble(src, &err);
  EXPECT_TRUE(obj.has_value()) << err.ToString();
  return obj.value_or(ObjectFile{});
}

SfiOptions DefaultOptions() {
  SfiOptions opt;
  opt.sandbox_base = kSandboxBase;
  opt.sandbox_bits = kSandboxBits;
  return opt;
}

TEST(SfiRewrite, ExpandsMemoryOps) {
  ObjectFile obj = MustAssemble(R"(
  mov $1, %eax
  st %eax, 0(%ebx)
  ld 4(%ebx), %ecx
  ret
)");
  SfiStats stats;
  std::string diag;
  auto out = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(out.has_value()) << diag;
  EXPECT_EQ(stats.original_insns, 4u);
  EXPECT_EQ(stats.sandboxed_memory_ops, 2u);
  EXPECT_EQ(stats.rewritten_insns, 4u + 2 * 3);
  EXPECT_GT(stats.Expansion(), 2.0);
}

TEST(SfiRewrite, WriteOnlyModeSkipsLoads) {
  ObjectFile obj = MustAssemble(R"(
  st %eax, 0(%ebx)
  ld 4(%ebx), %ecx
  ret
)");
  SfiOptions opt = DefaultOptions();
  opt.protection = SfiProtection::kWriteOnly;
  SfiStats stats;
  std::string diag;
  auto out = SfiRewrite(obj, opt, &stats, &diag);
  ASSERT_TRUE(out.has_value()) << diag;
  EXPECT_EQ(stats.sandboxed_memory_ops, 1u);
  EXPECT_EQ(stats.rewritten_insns, 3u + 3);
}

TEST(SfiRewrite, RejectsScratchRegisterUse) {
  ObjectFile obj = MustAssemble("  st %edx, 0(%ebx)\n  ret\n");
  SfiStats stats;
  std::string diag;
  auto out = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  EXPECT_FALSE(out.has_value());
  EXPECT_NE(diag.find("scratch"), std::string::npos);
}

TEST(SfiRewrite, RemapsSymbolsAndBranchTargets) {
  ObjectFile obj = MustAssemble(R"(
  .global entry
entry:
  st %eax, 0(%ebx)
loop:
  dec %ecx
  cmp $0, %ecx
  jne loop
  ret
)");
  SfiStats stats;
  std::string diag;
  auto out = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(out.has_value()) << diag;
  // `loop` originally at insn 1; the store before it expanded to 4 insns.
  const Symbol* loop = out->FindSymbol("loop");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->offset, 4 * kInsnSize);
  // The jne's relocation still resolves to `loop` after linking.
  LinkError lerr;
  auto img = LinkImage(*out, kSandboxBase, {}, &lerr);
  ASSERT_TRUE(img.has_value()) << lerr.message;
}

TEST(SfiExecution, InSandboxCodeBehavesIdentically) {
  // Sum an array: run original and rewritten inside the sandbox; results
  // must match (masking is the identity for in-sandbox addresses).
  const std::string src = R"(
  .global main
main:
  mov $data, %ebx
  mov $4, %ecx
  mov $0, %eax
loop:
  ld 0(%ebx), %esi
  add %esi, %eax
  add $4, %ebx
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
  .data
data:
  .long 3, 5, 7, 11
)";
  ObjectFile obj = MustAssemble(src);
  SfiOptions opt = DefaultOptions();
  opt.scratch = Reg::kEdi;  // %esi is used; pick a free scratch
  SfiStats stats;
  std::string diag;
  auto rewritten = SfiRewrite(obj, opt, &stats, &diag);
  ASSERT_TRUE(rewritten.has_value()) << diag;

  auto run = [&](const ObjectFile& o) -> u32 {
    BareMachine bm;
    LinkError lerr;
    auto img = LinkImage(o, kSandboxBase, {}, &lerr);
    EXPECT_TRUE(img.has_value()) << lerr.message;
    EXPECT_TRUE(bm.LoadImage(*img));
    bm.Start(*img->Lookup("main"), 0, kSandboxBase + 0x80000);
    StopInfo stop = bm.Run(1'000'000);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    return bm.cpu().reg(Reg::kEax);
  };
  EXPECT_EQ(run(obj), 26u);
  EXPECT_EQ(run(*rewritten), 26u);
}

TEST(SfiExecution, HostileStoreIsConfined) {
  // The canary lives outside the sandbox; the hostile store targets it, but
  // masking redirects the write into the sandbox.
  const u32 canary_addr = 0x00600000;  // outside [0x400000, 0x500000)
  const std::string src = R"(
  .global main
main:
  mov $0x00600000, %ebx
  sti $0xDEAD, 0(%ebx)
  hlt
)";
  ObjectFile obj = MustAssemble(src);
  SfiStats stats;
  std::string diag;
  auto rewritten = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(rewritten.has_value()) << diag;

  BareMachine bm;
  bm.pm().Write32(canary_addr, 0xCAFED00D);
  LinkError lerr;
  auto img = LinkImage(*rewritten, kSandboxBase, {}, &lerr);
  ASSERT_TRUE(img.has_value()) << lerr.message;
  ASSERT_TRUE(bm.LoadImage(*img));
  bm.Start(*img->Lookup("main"), 0, kSandboxBase + 0x80000);
  StopInfo stop = bm.Run(1'000'000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  u32 canary = 0;
  ASSERT_TRUE(bm.pm().Read32(canary_addr, &canary));
  EXPECT_EQ(canary, 0xCAFED00Du) << "store must not escape the sandbox";
  // The masked address received the value instead.
  u32 redirected = 0;
  ASSERT_TRUE(bm.pm().Read32(kSandboxBase | (canary_addr & ((1u << kSandboxBits) - 1)),
                             &redirected));
  EXPECT_EQ(redirected, 0xDEADu);
}

TEST(SfiExecution, IndirectJumpIsConfined) {
  // An indirect jump whose target has poisoned high bits is masked back
  // inside the sandbox and lands on the intended in-sandbox code.
  ObjectFile obj = MustAssemble(R"(
  .global main
main:
  mov $landing, %eax
  or $0x00700000, %eax    ; poison the high bits
  jmp *%eax
  .global landing
landing:
  mov $1, %esi
  hlt
)");
  SfiStats stats;
  std::string diag;
  auto rewritten = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(rewritten.has_value()) << diag;
  EXPECT_EQ(stats.sandboxed_indirect_jumps, 1u);

  BareMachine bm;
  LinkError lerr;
  auto img = LinkImage(*rewritten, kSandboxBase, {}, &lerr);
  ASSERT_TRUE(img.has_value()) << lerr.message;
  ASSERT_TRUE(bm.LoadImage(*img));
  bm.Start(*img->Lookup("main"), 0, kSandboxBase + 0x80000);
  StopInfo stop = bm.Run(1'000'000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEsi), 1u) << "jump must land on the masked in-sandbox target";
}

TEST(SfiExecution, RewrittenHotLoopPromotesToTraceTier) {
  // A hot sandboxed loop must survive promotion through the block and trace
  // tiers: the masked address computation (lea/and/or) is exactly the kind
  // of straight-line arithmetic the trace tier folds, and a divergence here
  // means the fast tiers execute different semantics than the insn engine.
  const std::string src = R"(
  .global main
main:
  mov $buf, %ebx
  mov $200, %ecx
  mov $0, %esi
loop:
  st %ecx, 0(%ebx)
  ld 0(%ebx), %eax
  add %eax, %esi
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
  .data
buf:
  .long 0
)";
  ObjectFile obj = MustAssemble(src);
  SfiStats stats;
  std::string diag;
  auto rewritten = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(rewritten.has_value()) << diag;
  ASSERT_GT(stats.sandboxed_memory_ops, 0u);

  auto run = [&](bool blocks, bool trace, u64* promotions) -> u32 {
    BareMachine bm;
    bm.cpu().set_block_engine_enabled(blocks);
    bm.cpu().set_trace_engine_enabled(trace);
    LinkError lerr;
    auto img = LinkImage(*rewritten, kSandboxBase, {}, &lerr);
    EXPECT_TRUE(img.has_value()) << lerr.message;
    EXPECT_TRUE(bm.LoadImage(*img));
    bm.Start(*img->Lookup("main"), 0, kSandboxBase + 0x80000);
    StopInfo stop = bm.Run(10'000'000);
    EXPECT_EQ(stop.reason, StopReason::kHalted);
    *promotions = bm.cpu().trace_stats().promotions;
    return bm.cpu().reg(Reg::kEsi);
  };
  u64 oracle_promotions = 0, traced_promotions = 0;
  const u32 oracle = run(false, false, &oracle_promotions);
  const u32 traced = run(true, true, &traced_promotions);
  EXPECT_EQ(oracle, 20100u);  // sum 1..200
  EXPECT_EQ(traced, oracle) << "trace tier diverges on SFI-rewritten code";
  EXPECT_EQ(oracle_promotions, 0u);
  EXPECT_GT(traced_promotions, 0u) << "loop never promoted; test is vacuous";
}

// Regression pin: rewriting an image in place must kill the stale decoded
// blocks of the old code. If the decode cache survived the overwrite, the
// second run would re-execute the unsandboxed v1 store and clobber the
// canary even though the bytes in memory are the confined v2.
TEST(SfiExecution, InPlaceRewriteInvalidatesStaleDecodedCode) {
  const u32 canary_addr = 0x00600000;  // outside [0x400000, 0x500000)
  const std::string src = R"(
  .global main
main:
  mov $0x00600000, %ebx
  sti $0xDEAD, 0(%ebx)
  hlt
)";
  ObjectFile obj = MustAssemble(src);
  SfiStats stats;
  std::string diag;
  auto rewritten = SfiRewrite(obj, DefaultOptions(), &stats, &diag);
  ASSERT_TRUE(rewritten.has_value()) << diag;

  LinkError lerr;
  auto v1 = LinkImage(obj, kSandboxBase, {}, &lerr);
  ASSERT_TRUE(v1.has_value()) << lerr.message;
  auto v2 = LinkImage(*rewritten, kSandboxBase, {}, &lerr);
  ASSERT_TRUE(v2.has_value()) << lerr.message;

  BareMachine bm;
  ASSERT_TRUE(bm.pm().Write32(canary_addr, 0xCAFED00Du));
  ASSERT_TRUE(bm.LoadImage(*v1));
  bm.Start(*v1->Lookup("main"), 0, kSandboxBase + 0x80000);
  StopInfo stop = bm.Run(1'000'000);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  u32 canary = 0;
  ASSERT_TRUE(bm.pm().Read32(canary_addr, &canary));
  ASSERT_EQ(canary, 0xDEADu) << "unprotected v1 must reach the canary";

  // In-place upgrade: the rewritten image lands on the very addresses the
  // CPU just executed, through the same physical-write path loaders use.
  ASSERT_TRUE(bm.pm().Write32(canary_addr, 0xCAFED00Du));
  ASSERT_TRUE(bm.pm().WriteBlock(v2->base, v2->bytes.data(),
                                 static_cast<u32>(v2->bytes.size())));
  bm.Start(*v2->Lookup("main"), 0, kSandboxBase + 0x80000);
  stop = bm.Run(1'000'000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  ASSERT_TRUE(bm.pm().Read32(canary_addr, &canary));
  EXPECT_EQ(canary, 0xCAFED00Du) << "stale decoded v1 code ran after the rewrite";
  u32 redirected = 0;
  ASSERT_TRUE(bm.pm().Read32(
      kSandboxBase | (canary_addr & ((1u << kSandboxBits) - 1)), &redirected));
  EXPECT_EQ(redirected, 0xDEADu) << "v2 must have run, confined";
}

}  // namespace
}  // namespace palladium
