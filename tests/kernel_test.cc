// Kernel-model tests: process lifecycle, syscalls, demand paging, signals,
// fork/exec, and the Palladium syscalls (init_PL / set_range /
// set_call_gate) with their PPL side effects.
#include <gtest/gtest.h>

#include "src/hw/paging.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

TEST(KernelProcess, ExitCodePropagates) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  mov $42, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 42);
}

TEST(KernelProcess, WriteToConsole) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_WRITE, %eax
  mov $msg, %ebx
  mov $5, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
msg:
  .asciz "hello"
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(fx.kernel().console(), "hello");
}

TEST(KernelProcess, GetPidReturnsPid) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.exit_code, static_cast<i32>(pid));
}

TEST(KernelProcess, UnknownSyscallReturnsENOENT) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $9999, %eax
  int $INT_SYSCALL
  mov %eax, %ebx        ; -2 (ENOENT)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.exit_code, -2);
}

TEST(KernelMemory, DemandPagedStack) {
  KernelFixture fx;
  std::string diag;
  // Touch stack pages far below the initial page.
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov %esp, %ebx
  sub $0x8000, %ebx     ; 32 KB below
  sti $77, 0(%ebx)
  ld 0(%ebx), %ecx
  mov $SYS_EXIT, %eax
  mov %ecx, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 77);
}

TEST(KernelMemory, BrkGrowsHeap) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_BRK, %eax
  mov $0, %ebx
  int $INT_SYSCALL      ; current brk
  mov %eax, %esi
  mov %eax, %ebx
  add $0x2000, %ebx
  mov $SYS_BRK, %eax
  int $INT_SYSCALL      ; extend by 8 KB
  sti $123, 0(%esi)     ; write into the new heap
  ld 0(%esi), %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 123);
}

TEST(KernelMemory, MmapAndMunmap) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $0x3000, %ecx
  mov $3, %edx          ; PROT_READ|PROT_WRITE
  int $INT_SYSCALL
  mov %eax, %esi
  sti $55, 0x2FFC(%esi)
  ld 0x2FFC(%esi), %edi
  mov $SYS_MUNMAP, %eax
  mov %esi, %ebx
  mov $0x3000, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov %edi, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 55);
}

TEST(KernelMemory, WildAccessKillsProcess) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $0x70000000, %ebx
  ld 0(%ebx), %eax
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kKilled);
  EXPECT_NE(r.kill_reason.find("#PF"), std::string::npos);
}

TEST(KernelMemory, UserCannotTouchKernelSpace) {
  KernelFixture fx;
  std::string diag;
  // 0xC0000000 is beyond the user segment limit: segment-level #GP.
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $0xC0000000, %ebx
  ld 0(%ebx), %eax
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kKilled);
  EXPECT_NE(r.kill_reason.find("#GP"), std::string::npos);
}

TEST(KernelSignals, HandlerRunsOnSegv) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $0x70000000, %ebx  ; unmapped -> SIGSEGV
  ld 0(%ebx), %eax
  mov $SYS_EXIT, %eax    ; never reached
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  mov $SYS_EXIT, %eax
  mov $99, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 99);
  EXPECT_EQ(fx.kernel().process(pid)->signals.last_signal, kSigSegv);
}

TEST(KernelSignals, SigreturnResumesAfterKill) {
  KernelFixture fx;
  std::string diag;
  // kill(self, N) runs the handler, whose sigreturn resumes after the kill
  // syscall; the handler reads the signal number from its frame.
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $5, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_KILL, %eax
  mov $5, %ebx
  int $INT_SYSCALL
  ; resumed here by sigreturn; %esi was set by the handler
  mov $SYS_EXIT, %eax
  mov %esi, %ebx
  int $INT_SYSCALL
handler:
  ld 4(%esp), %esi      ; signo argument
  ret                   ; into the sigreturn trampoline
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  // The handler's %esi write is lost by sigreturn's context restore, so the
  // exit code is the *saved* %esi (0). What we really assert is that
  // execution resumed cleanly after the kill syscall.
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(fx.kernel().process(pid)->signals.delivered_count, 1u);
  EXPECT_FALSE(fx.kernel().process(pid)->signals.in_handler);
}

TEST(KernelFork, ChildSeesZeroParentSeesPid) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_FORK, %eax
  int $INT_SYSCALL
  cmp $0, %eax
  je child
  ; parent: write "P", exit with child pid
  mov %eax, %esi
  mov $SYS_WRITE, %eax
  mov $pmsg, %ebx
  mov $1, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov %esi, %ebx
  int $INT_SYSCALL
child:
  mov $SYS_WRITE, %eax
  mov $cmsg, %ebx
  mov $1, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
pmsg:
  .asciz "P"
cmsg:
  .asciz "C"
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult parent = fx.Run(pid);
  EXPECT_EQ(parent.outcome, RunOutcome::kExited);
  Pid child_pid = static_cast<Pid>(parent.exit_code);
  ASSERT_NE(child_pid, 0u);
  RunResult child = fx.Run(child_pid);
  EXPECT_EQ(child.outcome, RunOutcome::kExited);
  EXPECT_EQ(child.exit_code, 0);
  EXPECT_EQ(fx.kernel().console(), "PC");
}

TEST(KernelFork, MemoryIsCopiedNotShared) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $counter, %ebx
  sti $10, 0(%ebx)
  mov $SYS_FORK, %eax
  int $INT_SYSCALL
  cmp $0, %eax
  je child
  mov $counter, %ebx    ; parent increments its copy
  ld 0(%ebx), %ecx
  add $1, %ecx
  st %ecx, 0(%ebx)
  mov $SYS_EXIT, %eax
  ld 0(%ebx), %ebx      ; 11
  int $INT_SYSCALL
child:
  mov $counter, %ebx    ; child still sees 10
  mov $SYS_EXIT, %eax
  ld 0(%ebx), %ebx
  int $INT_SYSCALL
  .data
counter:
  .long 0
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult parent = fx.Run(pid);
  ASSERT_EQ(parent.outcome, RunOutcome::kExited);
  EXPECT_EQ(parent.exit_code, 11);
  // Find the child (created after the parent).
  RunResult child = fx.Run(pid + 1);
  ASSERT_EQ(child.outcome, RunOutcome::kExited);
  EXPECT_EQ(child.exit_code, 10);
}

TEST(KernelPalladium, InitPlPromotesToSpl2) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  ; now at SPL 2; prove we can still make syscalls and run.
  mov $SYS_WRITE, %eax
  mov $msg, %ebx
  mov $2, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $7, %ebx
  int $INT_SYSCALL
  .data
msg:
  .asciz "ok"
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 7);
  EXPECT_EQ(fx.kernel().console(), "ok");
  Process* proc = fx.kernel().process(pid);
  EXPECT_EQ(proc->task_spl, 2);
  EXPECT_TRUE(proc->ppl_policy);
  EXPECT_NE(proc->pl2_stack_top, 0u);
}

TEST(KernelPalladium, InitPlMarksWritablePagesPpl0) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $data_page, %ebx
  sti $1, 0(%ebx)        ; materialize the data page (PPL 1 pre-init)
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
data_page:
  .long 0
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  Process* proc = fx.kernel().process(pid);
  RunResult r = fx.Run(pid);
  ASSERT_EQ(r.outcome, RunOutcome::kExited);
  auto data_addr = fx.image(pid).Lookup("data_page");
  ASSERT_TRUE(data_addr.has_value());
  auto pte = fx.kernel().GetPte(*proc, *data_addr);
  ASSERT_TRUE(pte.has_value());
  EXPECT_TRUE(*pte & kPtePresent);
  EXPECT_FALSE(*pte & kPteUser) << "writable page should be PPL 0 after init_PL";
  // Text pages stay PPL 1 (read-only).
  auto text_pte = fx.kernel().GetPte(*proc, kUserTextBase);
  ASSERT_TRUE(text_pte.has_value());
  EXPECT_TRUE(*text_pte & kPteUser);
}

TEST(KernelPalladium, SetRangeExposesPagesAtPpl1) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $0x2000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %esi
  sti $9, 0(%esi)        ; materialize: PPL 0 under the policy
  mov $SYS_SET_RANGE, %eax
  mov %esi, %ebx
  mov $0x1000, %ecx      ; expose only the first page
  mov $1, %edx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov %esi, %ebx         ; exit code = mmap base (for the test to find it)
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  ASSERT_EQ(r.outcome, RunOutcome::kExited);
  u32 base = static_cast<u32>(r.exit_code);
  Process* proc = fx.kernel().process(pid);
  auto pte0 = fx.kernel().GetPte(*proc, base);
  ASSERT_TRUE(pte0.has_value());
  EXPECT_TRUE(*pte0 & kPteUser) << "set_range page must be PPL 1";
  EXPECT_TRUE(proc->ppl1_pages.count(PageNumber(base)));
  EXPECT_FALSE(proc->ppl1_pages.count(PageNumber(base + kPageSize)));
}

TEST(KernelPalladium, SetRangeRejectsUnalignedRange) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SET_RANGE, %eax
  mov $0x08048100, %ebx  ; unaligned
  mov $0x1000, %ecx
  mov $1, %edx
  int $INT_SYSCALL
  mov %eax, %ebx         ; expect -22 (EINVAL)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.exit_code, -22);
}

TEST(KernelPalladium, SetRangeRequiresSpl2) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_SET_RANGE, %eax
  mov $0x08048000, %ebx
  mov $0x1000, %ecx
  mov $1, %edx
  int $INT_SYSCALL
  mov %eax, %ebx         ; expect -1 (EPERM)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.exit_code, -1);
}

TEST(KernelPalladium, SetCallGateAllocatesGate) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SET_CALL_GATE, %eax
  mov $service, %ebx
  int $INT_SYSCALL
  mov %eax, %ebx        ; gate selector
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
service:
  ret
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  ASSERT_EQ(r.outcome, RunOutcome::kExited);
  Selector gate_sel(static_cast<u16>(r.exit_code));
  const SegmentDescriptor* gate = fx.kernel().gdt().Get(gate_sel.index());
  ASSERT_NE(gate, nullptr);
  EXPECT_EQ(gate->type, DescriptorType::kCallGate);
  EXPECT_EQ(gate->dpl, 3);
  EXPECT_EQ(Selector(gate->gate_selector).index(), kGdtAppCs);
}

TEST(KernelPalladium, TaskSplInheritedAcrossForkNotExec) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_FORK, %eax
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  ASSERT_EQ(r.outcome, RunOutcome::kExited);
  Pid child_pid = static_cast<Pid>(r.exit_code);
  ASSERT_NE(child_pid, 0u);
  Process* child = fx.kernel().process(child_pid);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->task_spl, 2) << "taskSPL inherited across fork";
  EXPECT_TRUE(child->ppl_policy);

  // exec resets to SPL 3.
  auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                             kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  ASSERT_TRUE(fx.kernel().ExecImage(child_pid, *img, "main", &diag)) << diag;
  EXPECT_EQ(child->task_spl, 3) << "taskSPL must not survive exec";
  EXPECT_FALSE(child->ppl_policy);
  RunResult r2 = fx.Run(child_pid);
  EXPECT_EQ(r2.outcome, RunOutcome::kExited);
}

TEST(KernelPalladium, Spl2AppCanWriteItsPpl0Pages) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $buf, %ebx
  sti $0x5A, 0(%ebx)     ; write a PPL 0 page at SPL 2
  ld 0(%ebx), %ecx
  mov $SYS_EXIT, %eax
  mov %ecx, %ebx
  int $INT_SYSCALL
  .data
buf:
  .long 0
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 0x5A);
}

TEST(KernelBudget, CycleBudgetPreempts) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
loop:
  jmp loop
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid, 100'000);
  EXPECT_EQ(r.outcome, RunOutcome::kCycleLimit);
  // Resumable.
  RunResult r2 = fx.Run(pid, 100'000);
  EXPECT_EQ(r2.outcome, RunOutcome::kCycleLimit);
}

}  // namespace
}  // namespace palladium
