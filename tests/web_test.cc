// HTTP handling and web-server model tests, including the qualitative
// orderings Table 3 exhibits.
#include <gtest/gtest.h>

#include "src/web/http.h"
#include "src/web/server_sim.h"

namespace palladium {
namespace {

TEST(Http, ParseFormatRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.path = "/cgi-bin/render";
  req.version = "HTTP/1.0";
  req.headers["Host"] = "server";
  req.headers["User-Agent"] = "ab/1.0";
  auto parsed = HttpRequest::Parse(req.Format());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/cgi-bin/render");
  EXPECT_TRUE(parsed->IsCgi());
  EXPECT_EQ(parsed->headers.at("Host"), "server");
}

TEST(Http, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::Parse("").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET\r\n\r\n").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET noslash HTTP/1.0\r\n\r\n").has_value());
  EXPECT_FALSE(HttpRequest::Parse("GET / HTTP/1.0\r\nBadHeader\r\n\r\n").has_value());
}

TEST(Http, StaticPathIsNotCgi) {
  auto req = HttpRequest::Parse("GET /index.html HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->IsCgi());
}

TEST(Http, ResponseHeadIncludesContentLength) {
  HttpResponse resp;
  resp.body_bytes = 1024;
  std::string head = resp.FormatHead();
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 1024"), std::string::npos);
}

class WebModelTest : public ::testing::Test {
 protected:
  double Throughput(CgiModel model, u32 bytes) {
    WebWorkload wl;
    wl.file_bytes = bytes;
    WebRunResult r = SimulateWebServer(model, wl, costs_);
    EXPECT_EQ(r.parsed_requests, wl.total_requests);
    return r.requests_per_sec;
  }
  WebServerCosts costs_;
};

TEST_F(WebModelTest, ModelOrderingAtSmallFiles) {
  // Table 3's qualitative ordering at 28 bytes:
  // static >= LibCGI > protected LibCGI > FastCGI > CGI.
  double st = Throughput(CgiModel::kStatic, 28);
  double lib = Throughput(CgiModel::kLibCgi, 28);
  double prot = Throughput(CgiModel::kLibCgiProtected, 28);
  double fast = Throughput(CgiModel::kFastCgi, 28);
  double cgi = Throughput(CgiModel::kCgi, 28);
  EXPECT_GE(st, lib);
  EXPECT_GT(lib, prot);
  EXPECT_GT(prot, fast);
  EXPECT_GT(fast, cgi);
  // Protected within a few percent of unprotected; at least 2x FastCGI.
  EXPECT_GT(prot / lib, 0.94);
  EXPECT_GT(prot / fast, 2.0);
}

TEST_F(WebModelTest, LargeFilesConvergeAcrossModels) {
  // At 100 KB the per-byte cost dominates: CGI overheads wash out
  // (LibCGI variants and static become indistinguishable, as in Table 3).
  double st = Throughput(CgiModel::kStatic, 100 * 1024);
  double lib = Throughput(CgiModel::kLibCgi, 100 * 1024);
  double prot = Throughput(CgiModel::kLibCgiProtected, 100 * 1024);
  EXPECT_NEAR(lib / st, 1.0, 0.02);
  EXPECT_NEAR(prot / st, 1.0, 0.02);
  double fast = Throughput(CgiModel::kFastCgi, 100 * 1024);
  EXPECT_GT(fast / st, 0.80);
}

TEST_F(WebModelTest, ThroughputDecreasesWithFileSize) {
  double t28 = Throughput(CgiModel::kStatic, 28);
  double t1k = Throughput(CgiModel::kStatic, 1024);
  double t10k = Throughput(CgiModel::kStatic, 10 * 1024);
  double t100k = Throughput(CgiModel::kStatic, 100 * 1024);
  EXPECT_GT(t28, t1k);
  EXPECT_GT(t1k, t10k);
  EXPECT_GT(t10k, t100k);
}

TEST_F(WebModelTest, CalibrationAnchorsNearPaper) {
  // Within ~15% of the paper's absolute numbers for the static bound.
  EXPECT_NEAR(Throughput(CgiModel::kStatic, 28), 460.0, 70.0);
  EXPECT_NEAR(Throughput(CgiModel::kStatic, 100 * 1024), 57.0, 12.0);
  EXPECT_NEAR(Throughput(CgiModel::kCgi, 28), 98.0, 25.0);
  EXPECT_NEAR(Throughput(CgiModel::kFastCgi, 28), 193.0, 45.0);
}

TEST_F(WebModelTest, RequestCpuCyclesComposition) {
  WebServerCosts c;
  u64 st = RequestCpuCycles(CgiModel::kStatic, 1000, c);
  u64 cgi = RequestCpuCycles(CgiModel::kCgi, 1000, c);
  EXPECT_EQ(cgi - st, c.cgi_fork_exec_cycles + c.libcgi_script_cycles);
  u64 prot = RequestCpuCycles(CgiModel::kLibCgiProtected, 1000, c);
  u64 lib = RequestCpuCycles(CgiModel::kLibCgi, 1000, c);
  EXPECT_EQ(prot - lib, c.libcgi_protected_call_cycles - c.libcgi_call_cycles +
                            c.protected_per_request_cycles);
}

}  // namespace
}  // namespace palladium
