// Segment descriptor, selector and descriptor-table tests.
#include <gtest/gtest.h>

#include "src/hw/segment.h"

namespace palladium {
namespace {

TEST(Selector, FieldExtraction) {
  Selector s = Selector::FromIndex(5, 3);
  EXPECT_EQ(s.index(), 5);
  EXPECT_EQ(s.rpl(), 3);
  EXPECT_FALSE(s.local());
  EXPECT_FALSE(s.IsNull());
  EXPECT_EQ(s.raw(), (5u << 3) | 3u);
}

TEST(Selector, NullSelectorIgnoresRpl) {
  // Selector 0..3 are all "null" (index 0, GDT).
  for (u16 rpl = 0; rpl < 4; ++rpl) {
    EXPECT_TRUE(Selector(rpl).IsNull()) << rpl;
  }
  EXPECT_FALSE(Selector::FromIndex(1, 0).IsNull());
}

TEST(SegmentDescriptor, MakeCodeDefaults) {
  SegmentDescriptor d = SegmentDescriptor::MakeCode(0x1000, 0x2000, 2);
  EXPECT_TRUE(d.IsCode());
  EXPECT_FALSE(d.IsData());
  EXPECT_FALSE(d.IsGate());
  EXPECT_TRUE(d.present);
  EXPECT_TRUE(d.readable);
  EXPECT_FALSE(d.conforming);
  EXPECT_EQ(d.base, 0x1000u);
  EXPECT_EQ(d.limit, 0x2000u);
  EXPECT_EQ(d.dpl, 2);
}

TEST(SegmentDescriptor, MakeDataDefaults) {
  SegmentDescriptor d = SegmentDescriptor::MakeData(0, 0xC0000000u, 3);
  EXPECT_TRUE(d.IsData());
  EXPECT_TRUE(d.writable);
  SegmentDescriptor ro = SegmentDescriptor::MakeData(0, 16, 3, /*writable=*/false);
  EXPECT_FALSE(ro.writable);
}

TEST(SegmentDescriptor, MakeGates) {
  SegmentDescriptor cg = SegmentDescriptor::MakeCallGate(0x08, 0x1234, 3, 2);
  EXPECT_TRUE(cg.IsGate());
  EXPECT_EQ(cg.type, DescriptorType::kCallGate);
  EXPECT_EQ(cg.gate_selector, 0x08);
  EXPECT_EQ(cg.gate_offset, 0x1234u);
  EXPECT_EQ(cg.gate_param_count, 2);

  SegmentDescriptor ig = SegmentDescriptor::MakeInterruptGate(0x08, 0x80, 0);
  EXPECT_EQ(ig.type, DescriptorType::kInterruptGate);
}

TEST(DescriptorTable, GetOutOfRangeIsNull) {
  DescriptorTable t(4);
  EXPECT_EQ(t.Get(100), nullptr);
  ASSERT_NE(t.Get(2), nullptr);
  EXPECT_EQ(t.Get(2)->type, DescriptorType::kNull);
}

TEST(DescriptorTable, SetExtendsTable) {
  DescriptorTable t(2);
  t.Set(10, SegmentDescriptor::MakeData(0, 1, 0));
  ASSERT_NE(t.Get(10), nullptr);
  EXPECT_TRUE(t.Get(10)->IsData());
}

TEST(DescriptorTable, AllocateSlotSkipsUsed) {
  DescriptorTable t(8);
  t.Set(1, SegmentDescriptor::MakeData(0, 1, 0));
  t.Set(2, SegmentDescriptor::MakeData(0, 1, 0));
  u16 idx = t.AllocateSlot(1);
  EXPECT_EQ(idx, 3);
  t.Set(idx, SegmentDescriptor::MakeData(0, 1, 0));
  EXPECT_EQ(t.AllocateSlot(1), 4);
}

TEST(DescriptorTable, ClearFreesSlot) {
  DescriptorTable t(8);
  t.Set(3, SegmentDescriptor::MakeData(0, 1, 0));
  t.Clear(3);
  EXPECT_EQ(t.AllocateSlot(3), 3);
}

}  // namespace
}  // namespace palladium
