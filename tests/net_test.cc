// Packet construction and trace-generation tests.
#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace palladium {
namespace {

TEST(Packet, FieldsLandAtDocumentedOffsets) {
  PacketSpec spec;
  spec.src_ip = 0xC0A80101;  // 192.168.1.1
  spec.dst_ip = 0x0A000063;
  spec.src_port = 4242;
  spec.dst_port = 80;
  spec.proto = kIpProtoTcp;
  spec.payload_len = 10;
  std::vector<u8> pkt = BuildPacket(spec);
  ASSERT_GE(pkt.size(), kEthHeaderLen + kIpHeaderLen + kTcpHeaderLen + 10u);
  EXPECT_EQ(ReadBe16(&pkt[kOffEtherType]), kEtherTypeIp);
  EXPECT_EQ(pkt[kOffIpProto], kIpProtoTcp);
  EXPECT_EQ(ReadBe32(&pkt[kOffIpSrc]), 0xC0A80101u);
  EXPECT_EQ(ReadBe32(&pkt[kOffIpDst]), 0x0A000063u);
  EXPECT_EQ(ReadBe16(&pkt[kOffSrcPort]), 4242);
  EXPECT_EQ(ReadBe16(&pkt[kOffDstPort]), 80);
}

TEST(Packet, UdpPacketsAreShorter) {
  PacketSpec tcp;
  tcp.proto = kIpProtoTcp;
  tcp.payload_len = 0;
  PacketSpec udp = tcp;
  udp.proto = kIpProtoUdp;
  EXPECT_EQ(BuildPacket(tcp).size(), BuildPacket(udp).size() + 12);
}

TEST(Packet, BeHelpersRoundTrip) {
  u8 buf[4];
  WriteBe32(buf, 0x12345678);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(ReadBe32(buf), 0x12345678u);
  WriteBe16(buf, 0xBEEF);
  EXPECT_EQ(ReadBe16(buf), 0xBEEF);
}

TEST(TraceGenerator, DeterministicForSameSeed) {
  PacketSpec match;
  TraceGenerator a(42, match, 0.5);
  TraceGenerator b(42, match, 0.5);
  for (int i = 0; i < 100; ++i) {
    bool ma = false, mb = false;
    PacketSpec pa = a.Next(&ma);
    PacketSpec pb = b.Next(&mb);
    EXPECT_EQ(ma, mb);
    EXPECT_EQ(pa.src_ip, pb.src_ip);
    EXPECT_EQ(pa.dst_port, pb.dst_port);
  }
}

TEST(TraceGenerator, MatchFractionApproximatelyHolds) {
  PacketSpec match;
  TraceGenerator gen(7, match, 0.3);
  int matches = 0;
  const int kTotal = 5000;
  for (int i = 0; i < kTotal; ++i) {
    bool m = false;
    gen.Next(&m);
    if (m) ++matches;
  }
  EXPECT_NEAR(static_cast<double>(matches) / kTotal, 0.3, 0.05);
}

TEST(TraceGenerator, NonMatchesDifferFromMatchSpec) {
  PacketSpec match;
  TraceGenerator gen(3, match, 0.0);
  for (int i = 0; i < 200; ++i) {
    bool m = false;
    PacketSpec spec = gen.Next(&m);
    EXPECT_FALSE(m);
    // At least the dst port is always perturbed.
    EXPECT_NE(spec.dst_port, match.dst_port);
  }
}

}  // namespace
}  // namespace palladium
