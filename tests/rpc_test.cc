// Local RPC model tests: marshalling round trips, cycle accounting, and the
// calibration targets from Table 2.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/rpc/rpc.h"

namespace palladium {
namespace {

std::vector<u8> Bytes(const std::string& s) { return std::vector<u8>(s.begin(), s.end()); }

TEST(Rpc, EchoRoundTrip) {
  LocalRpcChannel ch;
  ch.Bind("echo", [](const std::vector<u8>& req) { return req; });
  auto reply = ch.Call("echo", Bytes("hello"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::string(reply->begin(), reply->end()), "hello");
}

TEST(Rpc, ReverseHandlerSeesMarshalledCopy) {
  LocalRpcChannel ch;
  ch.Bind("reverse", [](const std::vector<u8>& req) {
    std::vector<u8> out(req.rbegin(), req.rend());
    return out;
  });
  auto reply = ch.Call("reverse", Bytes("abcd"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::string(reply->begin(), reply->end()), "dcba");
}

TEST(Rpc, UnboundMethodFails) {
  LocalRpcChannel ch;
  EXPECT_FALSE(ch.Call("nope", {}).has_value());
  EXPECT_EQ(ch.cycles(), 0u);
}

TEST(Rpc, CycleCostGrowsWithPayload) {
  LocalRpcChannel ch;
  ch.Bind("echo", [](const std::vector<u8>& req) { return req; });
  ch.Call("echo", std::vector<u8>(32));
  u64 small = ch.cycles();
  ch.ResetCycles();
  ch.Call("echo", std::vector<u8>(256));
  u64 large = ch.cycles();
  EXPECT_GT(large, small);
  EXPECT_EQ(large - small, (256u - 32u) * 2 * ch.costs().per_byte_cycles);
}

TEST(Rpc, CalibrationMatchesTable2Anchors) {
  // 32 B reverse ~ 349 us and 256 B ~ 423 us at 200 MHz (Table 2).
  LocalRpcChannel ch;
  ch.Bind("reverse", [](const std::vector<u8>& req) {
    std::vector<u8> out(req.rbegin(), req.rend());
    return out;
  });
  ch.Call("reverse", std::vector<u8>(32));
  double us32 = static_cast<double>(ch.cycles()) / 200.0;
  ch.ResetCycles();
  ch.Call("reverse", std::vector<u8>(256));
  double us256 = static_cast<double>(ch.cycles()) / 200.0;
  EXPECT_NEAR(us32, 349.19, 15.0);
  EXPECT_NEAR(us256, 423.33, 15.0);
}

}  // namespace
}  // namespace palladium
