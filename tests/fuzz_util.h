// Shared fuzz-program machinery for the differential test binaries
// (tests/cpu_property_test.cc, tests/smp_threaded_test.cc): a deterministic
// operand generator, the fault-stream record, and the looped fuzz-program
// builder. The builder is parameterized by code base and data window so the
// SMP fuzzes can give every vCPU its own program *and* — for the threaded
// data-race-free differential — its own disjoint data window. Generation is
// a pure function of (seed, iterations, body_len, code_base, data_base,
// data_span): identical arguments yield byte-identical programs, which is
// what the differential harnesses rely on.
#ifndef TESTS_FUZZ_UTIL_H_
#define TESTS_FUZZ_UTIL_H_

#include <vector>

#include "src/hw/cpu.h"
#include "src/isa/insn.h"

namespace palladium {

// Deterministic operand generator.
inline u32 NextRand(u64* state) {
  *state ^= *state >> 12;
  *state ^= *state << 25;
  *state ^= *state >> 27;
  return static_cast<u32>((*state * 0x2545F4914F6CDD1Dull) >> 32);
}

struct FaultRecord {
  u32 eip;
  FaultVector vector;
  u32 error_code;
  u32 linear;

  bool operator==(const FaultRecord& o) const {
    return eip == o.eip && vector == o.vector && error_code == o.error_code &&
           linear == o.linear;
  }
};

// Pseudo-random straight-line body of `body_len` instruction slots based at
// `body_base`, with loads/stores confined to [data_base, data_base +
// data_span). ECX is the loop counter and ESP the stack pointer (never a
// random destination, so iterations terminate).
inline std::vector<Insn> BuildFuzzBody(u64* state, u32 body_base, u32 body_len,
                                       u32 data_base, u32 data_span) {
  std::vector<Insn> body;
  body.reserve(body_len);
  // EAX/EBX/EDX/EDI/EBP are fair game; ECX is the loop counter and ESP the
  // stack pointer (never a random destination, so iterations terminate).
  // ESI is reserved as the case-12 anchor register: its only writers are the
  // anchors (and the prologue init), so its value is a window displacement at
  // every instruction boundary — a forward branch that lands *between* an
  // anchor and its memory op still addresses the window, never an arbitrary
  // scratch value. The threaded differential's data-race-freedom rests on
  // this: every access must stay inside the vCPU's private window.
  const Reg scratch[] = {Reg::kEax, Reg::kEbx, Reg::kEdx, Reg::kEdi, Reg::kEbp};
  auto pick_reg = [&] { return static_cast<u8>(scratch[NextRand(state) % 5]); };
  auto window_disp = [&] {
    return static_cast<i32>(data_base + NextRand(state) % (data_span - 8));
  };
  auto pick_size = [&] {
    u32 r = NextRand(state) % 3;
    return static_cast<u8>(r == 0 ? 1 : (r == 1 ? 2 : 4));
  };
  int depth = 0;
  while (body.size() < body_len) {
    const u32 remaining = body_len - static_cast<u32>(body.size());
    // Reserve the tail for draining outstanding pushes (static balance; a
    // forward branch may unbalance at runtime, which is fine — both runs
    // see the identical drift).
    if (remaining <= static_cast<u32>(depth)) {
      Insn pop;
      pop.opcode = Opcode::kPopR;
      pop.r1 = pick_reg();
      body.push_back(pop);
      --depth;
      continue;
    }
    Insn in;
    switch (NextRand(state) % 16) {
      case 0:
        in.opcode = Opcode::kMovRI;
        in.r1 = pick_reg();
        in.imm = static_cast<i32>(NextRand(state));
        break;
      case 1:
        in.opcode = Opcode::kMovRR;
        in.r1 = pick_reg();
        in.r2 = pick_reg();
        break;
      case 2:
      case 3: {  // absolute load
        in.opcode = Opcode::kLoad;
        in.r1 = pick_reg();
        in.r2 = kNoBaseReg;
        in.size = pick_size();
        in.disp = window_disp();
        break;
      }
      case 4:
      case 5: {  // absolute store
        in.opcode = Opcode::kStore;
        in.r1 = pick_reg();
        in.r2 = kNoBaseReg;
        in.size = pick_size();
        in.disp = window_disp();
        break;
      }
      case 6: {  // store immediate
        in.opcode = Opcode::kStoreI;
        in.r2 = kNoBaseReg;
        in.size = pick_size();
        in.imm = static_cast<i32>(NextRand(state));
        in.disp = window_disp();
        break;
      }
      case 7: {  // ALU r,r
        const Opcode ops[] = {Opcode::kAddRR, Opcode::kSubRR, Opcode::kAndRR,
                              Opcode::kOrRR,  Opcode::kXorRR, Opcode::kCmpRR};
        in.opcode = ops[NextRand(state) % 6];
        in.r1 = pick_reg();
        in.r2 = pick_reg();
        break;
      }
      case 8: {  // ALU r,imm
        const Opcode ops[] = {Opcode::kAddRI, Opcode::kSubRI, Opcode::kAndRI,
                              Opcode::kOrRI,  Opcode::kXorRI, Opcode::kCmpRI,
                              Opcode::kTestRI};
        in.opcode = ops[NextRand(state) % 7];
        in.r1 = pick_reg();
        in.imm = static_cast<i32>(NextRand(state));
        break;
      }
      case 9: {
        const Opcode ops[] = {Opcode::kShlRI, Opcode::kShrRI, Opcode::kSarRI};
        in.opcode = ops[NextRand(state) % 3];
        in.r1 = pick_reg();
        in.imm = static_cast<i32>(NextRand(state) % 32);
        break;
      }
      case 10: {
        const Opcode ops[] = {Opcode::kIncR, Opcode::kDecR, Opcode::kNegR, Opcode::kNotR};
        in.opcode = ops[NextRand(state) % 4];
        in.r1 = pick_reg();
        break;
      }
      case 11:  // push (bounded depth)
        if (depth < 24) {
          in.opcode = NextRand(state) % 2 ? Opcode::kPushR : Opcode::kPushI;
          in.r1 = pick_reg();
          in.imm = static_cast<i32>(NextRand(state));
          ++depth;
        } else {
          in.opcode = Opcode::kPopR;
          in.r1 = pick_reg();
          --depth;
        }
        break;
      case 12:  // reg-based memory op through a freshly anchored base
        if (remaining >= static_cast<u32>(depth) + 2) {
          Insn anchor;
          anchor.opcode = Opcode::kMovRI;
          anchor.r1 = static_cast<u8>(Reg::kEsi);
          anchor.imm = window_disp();
          body.push_back(anchor);
          in.opcode = NextRand(state) % 2 ? Opcode::kLoad : Opcode::kStore;
          in.r1 = pick_reg();
          in.r2 = static_cast<u8>(Reg::kEsi);
          in.size = pick_size();
          in.disp = static_cast<i32>(NextRand(state) % 16) - 8;
        } else {
          in.opcode = Opcode::kNop;
        }
        break;
      case 13: {  // conditional forward branch (targets stay inside the body,
                  // before the drain tail, so the loop counter always runs)
        const u32 lo = static_cast<u32>(body.size()) + 1;
        const u32 hi = body_len - static_cast<u32>(depth);
        if (hi <= lo) {
          in.opcode = Opcode::kNop;
          break;
        }
        const Opcode ops[] = {Opcode::kJe, Opcode::kJne, Opcode::kJb,  Opcode::kJae,
                              Opcode::kJl, Opcode::kJge, Opcode::kJs,  Opcode::kJns};
        in.opcode = ops[NextRand(state) % 8];
        in.imm = static_cast<i32>(body_base + (lo + NextRand(state) % (hi - lo)) * kInsnSize);
        break;
      }
      case 14:
        in.opcode = Opcode::kLea;
        in.r1 = pick_reg();
        in.r2 = pick_reg();
        in.scale = 0;
        in.disp = static_cast<i32>(NextRand(state) % 256);
        break;
      default:
        in.opcode = Opcode::kNop;
        break;
    }
    body.push_back(in);
  }
  return body;
}

// Counted loop around a fuzz body: ECX = iterations; body; dec/cmp/jne back
// to the body; hlt. Encoded for loading at `code_base`.
//
// `esp_reset`: when nonzero, the loop head reloads ESP with this value every
// iteration. A runtime-unbalanced body (forward branches skipping pushes or
// pops) drifts ESP by a bounded amount *per iteration*; without the reset
// that drift compounds across iterations and the stack excursion is
// effectively unbounded. The threaded-vs-interleaver differential needs every
// vCPU's stack accesses confined to a private region (data-race freedom is
// its precondition), so it caps the excursion to one iteration's worth. The
// uniprocessor and interleaver-only fuzzes pass 0 (no reset; their drift is
// identical on both sides of each differential, which is all they need).
inline std::vector<u8> EncodeLoopedFuzzProgram(u64 seed, u32 iterations, u32 body_len,
                                               u32 code_base, u32 data_base,
                                               u32 data_span, u32 esp_reset = 0) {
  u64 state = seed * 0x9E3779B97F4A7C15ull + 1;
  std::vector<Insn> program;
  Insn init;
  init.opcode = Opcode::kMovRI;
  init.r1 = static_cast<u8>(Reg::kEcx);
  init.imm = static_cast<i32>(iterations);
  program.push_back(init);
  // ESI starts window-interior so a branch that reaches a case-12 memory op
  // before the first anchor of the run still addresses the window.
  Insn esi_init;
  esi_init.opcode = Opcode::kMovRI;
  esi_init.r1 = static_cast<u8>(Reg::kEsi);
  esi_init.imm = static_cast<i32>(data_base);
  program.push_back(esi_init);
  u32 loop_base = code_base + 2 * kInsnSize;  // after the one-time inits
  if (esp_reset != 0) {
    Insn reset;
    reset.opcode = Opcode::kMovRI;
    reset.r1 = static_cast<u8>(Reg::kEsp);
    reset.imm = static_cast<i32>(esp_reset);
    program.push_back(reset);
  }
  const u32 body_base = code_base + static_cast<u32>(program.size()) * kInsnSize;
  std::vector<Insn> body = BuildFuzzBody(&state, body_base, body_len, data_base, data_span);
  program.insert(program.end(), body.begin(), body.end());
  Insn dec;
  dec.opcode = Opcode::kDecR;
  dec.r1 = static_cast<u8>(Reg::kEcx);
  program.push_back(dec);
  Insn cmp;
  cmp.opcode = Opcode::kCmpRI;
  cmp.r1 = static_cast<u8>(Reg::kEcx);
  cmp.imm = 0;
  program.push_back(cmp);
  Insn jne;
  jne.opcode = Opcode::kJne;
  jne.imm = static_cast<i32>(loop_base);  // re-runs the ESP reset when present
  program.push_back(jne);
  Insn hlt;
  hlt.opcode = Opcode::kHlt;
  program.push_back(hlt);

  std::vector<u8> bytes(program.size() * kInsnSize);
  for (size_t i = 0; i < program.size(); ++i) {
    program[i].EncodeTo(bytes.data() + i * kInsnSize);
  }
  return bytes;
}

}  // namespace palladium

#endif  // TESTS_FUZZ_UTIL_H_
