// Assembler and linker tests: syntax coverage, symbols, relocations,
// sections, and error reporting.
#include <gtest/gtest.h>

#include <cstring>

#include "src/asm/assembler.h"
#include "src/isa/insn.h"

namespace palladium {
namespace {

ObjectFile MustAssemble(const std::string& src) {
  AssembleError err;
  auto obj = Assemble(src, &err);
  EXPECT_TRUE(obj.has_value()) << err.ToString();
  return obj.value_or(ObjectFile{});
}

Insn DecodeAt(const std::vector<u8>& text, u32 index) {
  EXPECT_GE(text.size(), (index + 1) * kInsnSize);
  auto insn = Insn::Decode(text.data() + index * kInsnSize);
  EXPECT_TRUE(insn.has_value());
  return insn.value_or(Insn{});
}

TEST(Assembler, BasicInstructions) {
  ObjectFile obj = MustAssemble(R"(
  mov $5, %eax
  mov %eax, %ebx
  add %ebx, %eax
  nop
)");
  EXPECT_EQ(obj.text.size(), 4 * kInsnSize);
  Insn i0 = DecodeAt(obj.text, 0);
  EXPECT_EQ(i0.opcode, Opcode::kMovRI);
  EXPECT_EQ(i0.imm, 5);
  EXPECT_EQ(static_cast<Reg>(i0.r1), Reg::kEax);
  Insn i1 = DecodeAt(obj.text, 1);
  EXPECT_EQ(i1.opcode, Opcode::kMovRR);
  EXPECT_EQ(static_cast<Reg>(i1.r1), Reg::kEbx);
  EXPECT_EQ(static_cast<Reg>(i1.r2), Reg::kEax);
}

TEST(Assembler, MemoryOperands) {
  ObjectFile obj = MustAssemble(R"(
  ld 8(%ebp), %eax
  ld %es:4(%ebx,%ecx,2), %edx
  st8 %eax, -4(%esp)
  lea 0(%ebx,%ecx,4), %esi
)");
  Insn i0 = DecodeAt(obj.text, 0);
  EXPECT_EQ(i0.opcode, Opcode::kLoad);
  EXPECT_EQ(i0.disp, 8);
  EXPECT_EQ(static_cast<Reg>(i0.r2), Reg::kEbp);
  EXPECT_EQ(i0.size, 4);
  Insn i1 = DecodeAt(obj.text, 1);
  EXPECT_EQ(i1.seg, SegOverride::kEs);
  EXPECT_EQ(i1.scale, 2);
  Insn i2 = DecodeAt(obj.text, 2);
  EXPECT_EQ(i2.opcode, Opcode::kStore);
  EXPECT_EQ(i2.size, 1);
  EXPECT_EQ(i2.disp, -4);
  Insn i3 = DecodeAt(obj.text, 3);
  EXPECT_EQ(i3.opcode, Opcode::kLea);
  EXPECT_EQ(i3.scale, 4);
}

TEST(Assembler, LabelsAndBranches) {
  ObjectFile obj = MustAssemble(R"(
start:
  jmp end
  nop
end:
  ret
)");
  // jmp's imm is reloc'd against `end`.
  ASSERT_EQ(obj.relocations.size(), 1u);
  EXPECT_EQ(obj.relocations[0].symbol, "end");
  EXPECT_EQ(obj.relocations[0].offset, 8u);  // imm field of insn 0
  const Symbol* end = obj.FindSymbol("end");
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(end->offset, 2 * kInsnSize);
}

TEST(Assembler, ForwardAndBackwardReferences) {
  std::string diag;
  auto img = AssembleAndLink(R"(
  .global main
main:
  call fwd
  jmp main
fwd:
  ret
)",
                             0x1000, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Insn call = DecodeAt(img->bytes, 0);
  EXPECT_EQ(static_cast<u32>(call.imm), 0x1000u + 2 * kInsnSize);
  Insn jmp = DecodeAt(img->bytes, 1);
  EXPECT_EQ(static_cast<u32>(jmp.imm), 0x1000u);
}

TEST(Assembler, EquConstantsFold) {
  ObjectFile obj = MustAssemble(R"(
  .equ FOO, 0x40
  .equ BAR, FOO + 8
  mov $BAR, %eax
  lcall $FOO
)");
  EXPECT_TRUE(obj.relocations.empty());
  EXPECT_EQ(DecodeAt(obj.text, 0).imm, 0x48);
  EXPECT_EQ(DecodeAt(obj.text, 1).imm, 0x40);
}

TEST(Assembler, SymbolPlusOffsetExpression) {
  ObjectFile obj = MustAssemble(R"(
  .data
buf:
  .space 16
  .text
  mov $buf+8, %eax
)");
  ASSERT_EQ(obj.relocations.size(), 1u);
  EXPECT_EQ(obj.relocations[0].symbol, "buf");
  EXPECT_EQ(obj.relocations[0].addend, 8);
}

TEST(Assembler, DataDirectives) {
  ObjectFile obj = MustAssemble(R"(
  .data
  .byte 1, 2, 3
  .word 0x1234
  .align 4
  .long 0xDEADBEEF
  .asciz "hi"
  .space 4
)");
  ASSERT_GE(obj.data.size(), 3u + 2 + 3 + 4 + 3 + 4);
  EXPECT_EQ(obj.data[0], 1);
  EXPECT_EQ(obj.data[3], 0x34);
  EXPECT_EQ(obj.data[4], 0x12);
  // .align pads to offset 8 for the .long.
  u32 v = 0;
  std::memcpy(&v, &obj.data[8], 4);
  EXPECT_EQ(v, 0xDEADBEEFu);
  EXPECT_EQ(obj.data[12], 'h');
  EXPECT_EQ(obj.data[14], '\0');
}

TEST(Assembler, BssAccumulatesSpace) {
  ObjectFile obj = MustAssemble(R"(
  .bss
buf1:
  .space 100
buf2:
  .space 28
)");
  EXPECT_EQ(obj.bss_size, 128u);
  const Symbol* b2 = obj.FindSymbol("buf2");
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(b2->section, SectionId::kBss);
  EXPECT_EQ(b2->offset, 100u);
}

TEST(Assembler, ExternEmitsImport) {
  ObjectFile obj = MustAssemble(R"(
  .extern helper
  call helper
)");
  auto undef = obj.UndefinedSymbols();
  ASSERT_EQ(undef.size(), 1u);
  EXPECT_EQ(undef[0], "helper");
}

TEST(Assembler, SegRegisterMoves) {
  ObjectFile obj = MustAssemble(R"(
  mov %eax, %ds
  mov %es, %ebx
  push %ds
  pop %es
)");
  EXPECT_EQ(DecodeAt(obj.text, 0).opcode, Opcode::kMovSegR);
  EXPECT_EQ(DecodeAt(obj.text, 1).opcode, Opcode::kMovRSeg);
  EXPECT_EQ(DecodeAt(obj.text, 2).opcode, Opcode::kPushSeg);
  EXPECT_EQ(DecodeAt(obj.text, 3).opcode, Opcode::kPopSeg);
}

TEST(Assembler, IndirectCallAndJmp) {
  ObjectFile obj = MustAssemble(R"(
  call *%eax
  jmp *%ebx
)");
  EXPECT_EQ(DecodeAt(obj.text, 0).opcode, Opcode::kCallR);
  EXPECT_EQ(DecodeAt(obj.text, 1).opcode, Opcode::kJmpR);
}

TEST(AssemblerErrors, ReportsLineNumbers) {
  AssembleError err;
  auto obj = Assemble("  nop\n  bogus %eax\n", &err);
  EXPECT_FALSE(obj.has_value());
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("bogus"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  AssembleError err;
  auto obj = Assemble("a:\n  nop\na:\n  nop\n", &err);
  EXPECT_FALSE(obj.has_value());
  EXPECT_NE(err.message.find("duplicate"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbolWithoutExtern) {
  AssembleError err;
  auto obj = Assemble("  call nowhere\n", &err);
  EXPECT_FALSE(obj.has_value());
  EXPECT_NE(err.message.find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, InstructionInDataSection) {
  AssembleError err;
  auto obj = Assemble(".data\n  nop\n", &err);
  EXPECT_FALSE(obj.has_value());
}

TEST(AssemblerErrors, BadScale) {
  AssembleError err;
  auto obj = Assemble("  ld 0(%ebx,%ecx,3), %eax\n", &err);
  EXPECT_FALSE(obj.has_value());
}

TEST(Linker, LaysOutSectionsAndResolves) {
  AssembleError err;
  auto obj = Assemble(R"(
  .global main
main:
  mov $value, %eax
  ld 0(%eax), %ebx
  ret
  .data
value:
  .long 77
)",
                      &err);
  ASSERT_TRUE(obj.has_value()) << err.ToString();
  LinkError lerr;
  auto img = LinkImage(*obj, 0x8000, {}, &lerr);
  ASSERT_TRUE(img.has_value()) << lerr.message;
  EXPECT_EQ(img->text_start, 0x8000u);
  EXPECT_EQ(img->data_start % kPageSize, 0u);
  EXPECT_GT(img->data_start, img->text_start);
  auto value_addr = img->Lookup("value");
  ASSERT_TRUE(value_addr.has_value());
  EXPECT_EQ(*value_addr, img->data_start);
}

TEST(Linker, ImportsResolveExterns) {
  AssembleError err;
  auto obj = Assemble(".extern ext_fn\n  call ext_fn\n", &err);
  ASSERT_TRUE(obj.has_value());
  LinkError lerr;
  auto img = LinkImage(*obj, 0, {{"ext_fn", 0xABCD0}}, &lerr);
  ASSERT_TRUE(img.has_value()) << lerr.message;
  auto insn = Insn::Decode(img->bytes.data());
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(static_cast<u32>(insn->imm), 0xABCD0u);
}

TEST(Linker, MissingImportFails) {
  AssembleError err;
  auto obj = Assemble(".extern ext_fn\n  call ext_fn\n", &err);
  ASSERT_TRUE(obj.has_value());
  LinkError lerr;
  auto img = LinkImage(*obj, 0, {}, &lerr);
  EXPECT_FALSE(img.has_value());
  EXPECT_NE(lerr.message.find("ext_fn"), std::string::npos);
}

TEST(Linker, BssSymbolsAddressedAfterData) {
  AssembleError err;
  auto obj = Assemble(R"(
  .data
d:
  .long 1
  .bss
b:
  .space 8
)",
                      &err);
  ASSERT_TRUE(obj.has_value());
  LinkError lerr;
  auto img = LinkImage(*obj, 0x4000, {}, &lerr);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(*img->Lookup("b"), *img->Lookup("d") + 4);
  EXPECT_EQ(img->bss_size, 8u);
}

}  // namespace
}  // namespace palladium
