// Calibration contracts: the cycle model must keep reproducing the paper's
// headline numbers. If a cycle-model edit breaks Table 1's 142/10 totals or
// the Section 5.1 constants, these tests fail before the benchmarks drift.
#include <gtest/gtest.h>

#include "src/hw/cycle_model.h"
#include "src/kernel/abi.h"
#include "src/rpc/rpc.h"

namespace palladium {
namespace {

TEST(Calibration, InterDomainCallIs142Cycles) {
  const CycleModel m = CycleModel::Measured();
  // The Figure-6 sequences, phase by phase (see bench_table1).
  const u32 setup = m.push_imm + m.load + 3 * m.store + 4 * m.push_imm;
  const u32 call = m.lret_inter + m.call_near;
  const u32 ret = m.ret_near + m.lcall_inter;
  const u32 restore = 2 * m.load + m.ret_near;
  EXPECT_EQ(setup, 26u);
  EXPECT_EQ(call, 34u);
  EXPECT_EQ(ret, 75u);
  EXPECT_EQ(restore, 7u);
  EXPECT_EQ(setup + call + ret + restore, 142u) << "the paper's protected-call total";
}

TEST(Calibration, IntraDomainCallIs10Cycles) {
  const CycleModel m = CycleModel::Measured();
  EXPECT_EQ(m.push_reg + m.mov + m.call_near + m.ret_near + m.pop_reg, 10u);
}

TEST(Calibration, SegmentLoadMeasuredVsManual) {
  EXPECT_EQ(CycleModel::Measured().seg_load, 12u);     // paper's measurement
  EXPECT_LE(CycleModel::TheoryPentium().seg_load, 3u); // the manual's claim
}

TEST(Calibration, TheoreticalColumnIsCheaperThanMeasured) {
  const CycleModel meas = CycleModel::Measured();
  const CycleModel theory = CycleModel::TheoryPentium();
  EXPECT_LT(theory.lcall_inter, meas.lcall_inter);
  EXPECT_LT(theory.lret_inter, meas.lret_inter);
  EXPECT_LT(theory.int_gate, meas.int_gate);
}

TEST(Calibration, KernelCostsMatchSection51) {
  KernelCosts costs;
  EXPECT_EQ(costs.ppl_mark_per_page, 45u);  // "45 cycles per page marked"
  EXPECT_GE(costs.ppl_mark_startup, 3000u);
  EXPECT_LE(costs.ppl_mark_startup, 5000u);
  EXPECT_EQ(costs.kext_gp_processing, 1020u);  // "average cost ... is 1,020 cycles"
  // SIGSEGV delivery lands near 3,325 once the in-simulator frame work and
  // fault detection are added (bench_micro verifies the end-to-end span).
  EXPECT_NEAR(static_cast<double>(costs.sigsegv_delivery), 3100.0, 300.0);
}

TEST(Calibration, RpcAnchorsMatchTable2) {
  RpcCosts costs;
  // 32-byte round trip: base + 64 copied bytes.
  double us32 = (costs.base_cycles + 64.0 * costs.per_byte_cycles) / 200.0;
  double us256 = (costs.base_cycles + 512.0 * costs.per_byte_cycles) / 200.0;
  EXPECT_NEAR(us32, 349.19, 12.0);
  EXPECT_NEAR(us256, 423.33, 12.0);
}

TEST(Calibration, BaseCostCoversEveryOpcode) {
  const CycleModel m = CycleModel::Measured();
  for (u16 op = 0; op < static_cast<u16>(Opcode::kCount); ++op) {
    EXPECT_GE(m.BaseCost(static_cast<Opcode>(op), false), 1u) << OpcodeName(static_cast<Opcode>(op));
    EXPECT_GE(m.BaseCost(static_cast<Opcode>(op), true), 1u);
  }
}

}  // namespace
}  // namespace palladium
