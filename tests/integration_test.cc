// Cross-module integration tests: the programmable-router scenario (async
// kernel-extension filtering over a packet trace, as in [22]), extension
// inheritance across fork (Section 4.5.2), and a LibCGI-style application
// composing services, shared libraries and extensions.
#include <gtest/gtest.h>

#include "src/core/kernel_ext.h"
#include "src/core/user_ext.h"
#include "src/filter/filter.h"
#include "src/net/packet.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

TEST(RouterIntegration, AsyncFilterForwardsMatchingPackets) {
  // The router enqueues each arriving packet for asynchronous filtering;
  // the extension forwards matches via the packet-output kernel service.
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);

  std::string err;
  auto expr = ParseFilter("ip.proto == 6 && tcp.dport == 80", &err);
  ASSERT_TRUE(expr.has_value()) << err;

  // Wrap the compiled filter with a forwarding step: if filter_run accepts,
  // call the kKsvcPktOutput kernel service.
  std::string src = CompileFilterToAsm(*expr) + R"(
  .text
  .global filter_and_forward
filter_and_forward:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  push %eax
  call filter_run
  pop %ecx
  cmp $1, %eax
  jne done
  mov $3, %eax          ; KSVC_PKT_OUTPUT
  int $0x81
  mov $1, %eax
done:
  pop %ebp
  ret
)";
  AssembleError aerr;
  auto obj = Assemble(src, &aerr);
  ASSERT_TRUE(obj.has_value()) << aerr.ToString();
  std::string diag;
  auto ext = kext.LoadExtension("router", *obj, &diag);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = kext.FindFunction("router:filter_and_forward");
  ASSERT_TRUE(fid.has_value());

  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 80;
  TraceGenerator gen(555, match, 0.4);
  u32 expected_forwarded = 0;
  const u32 kPackets = 50;
  // The kernel is "busy": packets arrive and are queued (Section 4.3's
  // asynchronous extension model), then the queue drains.
  for (u32 i = 0; i < kPackets; ++i) {
    bool is_match = false;
    auto pkt = BuildPacket(gen.Next(&is_match));
    u32 len = static_cast<u32>(pkt.size());
    // One packet in flight at a time through the shared area; enqueue+drain
    // per packet models interleaved arrival/service.
    ASSERT_TRUE(kext.WriteShared(*ext, 0, &len, 4));
    ASSERT_TRUE(kext.WriteShared(*ext, 4, pkt.data(), len));
    if (EvalFilterHost(*expr, pkt.data(), len)) ++expected_forwarded;
    ASSERT_TRUE(kext.EnqueueAsync(*fid, len));
    EXPECT_TRUE(kext.IsBusy(*ext));
    EXPECT_EQ(kext.DrainAsync(), 1u);
    EXPECT_FALSE(kext.IsBusy(*ext));
  }
  EXPECT_EQ(kext.packets_output(), expected_forwarded);
  EXPECT_GT(expected_forwarded, 10u);  // the trace actually exercised both paths
  EXPECT_LT(expected_forwarded, kPackets);
}

TEST(ForkIntegration, ChildInheritsLoadedExtensions) {
  // Paper, Section 4.5.2: "The forked clone continues to execute at SPL 2
  // and inherit all the loaded extensions."
  Machine machine;
  Kernel kernel(machine);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);

  AssembleError aerr;
  auto obj = Assemble(R"(
  .global add_ten
add_ten:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add $10, %eax
  pop %ebp
  ret
)",
                      &aerr);
  ASSERT_TRUE(obj.has_value()) << aerr.ToString();
  dl.RegisterObject("ext", *obj);

  std::string diag;
  auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  mov $SYS_FORK, %eax
  int $INT_SYSCALL
  cmp $0, %eax
  je child
  ; parent: protected call, exit with result + child pid packed low
  push $1
  call *%edi
  pop %ecx
  mov %eax, %ebx        ; 11
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
child:
  ; the child uses the same "massaged" pointer it inherited
  push $2
  call *%edi
  pop %ecx
  mov %eax, %ebx        ; 12
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
fnname:
  .asciz "add_ten"
)",
                             kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid pid = kernel.CreateProcess();
  ASSERT_TRUE(kernel.LoadUserImage(pid, *img, "main", &diag)) << diag;
  RunResult parent = kernel.RunProcess(pid, 200'000'000);
  EXPECT_EQ(parent.outcome, RunOutcome::kExited) << parent.kill_reason;
  EXPECT_EQ(parent.exit_code, 11);
  RunResult child = kernel.RunProcess(pid + 1, 200'000'000);
  EXPECT_EQ(child.outcome, RunOutcome::kExited) << child.kill_reason;
  EXPECT_EQ(child.exit_code, 12);
}

TEST(LibCgiIntegration, ScriptComposesServicesAndSharedLibrary) {
  // A LibCGI-style flow: the web "server" (application) exposes an emit
  // service (its encapsulated buffering output path); the CGI "script"
  // (extension) calls a shared-library helper through its GOT and emits a
  // rendered response through the service gate.
  Machine machine;
  Kernel kernel(machine);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);

  AssembleError aerr;
  auto lib = Assemble(R"(
  .global lib_square
lib_square:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  imul %eax, %eax
  pop %ebp
  ret
)",
                      &aerr);
  ASSERT_TRUE(lib.has_value());
  dl.RegisterObject("libmath", *lib);

  auto script = Assemble(R"(
  .extern got_lib_square
  .extern gate_emit
  .global render
render:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax      ; request parameter
  push %eax
  ld got_lib_square, %ecx
  call *%ecx            ; shared library via read-only GOT
  pop %ecx
  push %eax
  lcall $gate_emit      ; application service via call gate
  pop %ecx
  pop %ebp
  ret
)",
                         &aerr);
  ASSERT_TRUE(script.has_value()) << aerr.ToString();
  dl.RegisterObject("script", *script);

  std::string diag;
  auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_EXPOSE_SERVICE, %eax
  mov $svcname, %ebx
  mov $emit_fn, %ecx
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $7               ; request: render 7^2
  call *%edi
  pop %ecx
  ld emitted, %ebx      ; 49, captured by the emit service
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
emit_fn:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  st %eax, emitted      ; the app's PPL 0 state: only the service can write it
  pop %ebp
  ret
  .data
emitted:
  .long 0
svcname:
  .asciz "emit"
extname:
  .asciz "script"
fnname:
  .asciz "render"
)",
                             kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid pid = kernel.CreateProcess();
  ASSERT_TRUE(kernel.LoadUserImage(pid, *img, "main", &diag)) << diag;
  ASSERT_TRUE(dl.LoadLibrary(pid, "libmath", /*expose_ppl1=*/true, &diag)) << diag;
  RunResult r = kernel.RunProcess(pid, 200'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 49);
}

TEST(MultiExtensionIntegration, TwoIsolatedUserExtensions) {
  // Two extensions in disjoint segments of the same process: each works,
  // and a corrupting one does not take the healthy one down.
  Machine machine;
  Kernel kernel(machine);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);
  AssembleError aerr;
  auto good = Assemble(R"(
  .global inc
inc:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add $1, %eax
  pop %ebp
  ret
)",
                       &aerr);
  auto evil = Assemble(R"(
  .global smash
smash:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx
  sti $0, 0(%ebx)
  pop %ebp
  ret
)",
                       &aerr);
  dl.RegisterObject("good", *good);
  dl.RegisterObject("evil", *evil);

  std::string diag;
  auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $goodname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLOPEN, %eax
  mov $evilname, %ebx
  int $INT_SYSCALL
  mov %eax, %ebp        ; evil handle
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $incname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi        ; good prepare
  mov $SYS_SEG_DLSYM, %eax
  mov %ebp, %ebx
  mov $smashname, %ecx
  int $INT_SYSCALL
  mov %eax, %esi        ; evil prepare
  push $secret
  call *%esi            ; evil faults -> SIGSEGV -> handler
  pop %ecx
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  push $41              ; the good extension still works after containment
  call *%edi
  pop %ecx
  mov %eax, %ebx        ; 42
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
  .data
secret:
  .long 5
goodname:
  .asciz "good"
evilname:
  .asciz "evil"
incname:
  .asciz "inc"
smashname:
  .asciz "smash"
)",
                             kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid pid = kernel.CreateProcess();
  ASSERT_TRUE(kernel.LoadUserImage(pid, *img, "main", &diag)) << diag;
  RunResult r = kernel.RunProcess(pid, 200'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited) << r.kill_reason;
  EXPECT_EQ(r.exit_code, 42);
}

}  // namespace
}  // namespace palladium
