// Software D-TLB tests: hit/miss/evict accounting, page-boundary-straddling
// accesses, write-to-read-only fault fidelity (error code and faulting
// address, on both the probe-hit and the fill paths), invalidation on PTE
// edit / INVLPG / CR3 load, CPL revalidation on probe, segment-reload
// correctness, host-copy probes, and a protection-domain crossing whose
// call-gate parameter block spans a page boundary.
#include <gtest/gtest.h>

#include <string>

#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

// The fast path is this file's subject: force it on even when the suite
// runs under the PALLADIUM_NO_DTLB oracle switch.
struct DtlbMachine : BareMachine {
  DtlbMachine() { cpu().set_dtlb_enabled(true); }
};

StopInfo RunProgram(BareMachine& bm, const std::string& source, u8 cpl = 0) {
  std::string diag;
  auto img = bm.LoadProgram(source, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  if (!img) return StopInfo{};
  bm.Start(*img->Lookup("main"), cpl, kStackTop);
  return bm.Run(10'000'000);
}

PageTableEditor EditorFor(BareMachine& bm) {
  return PageTableEditor(bm.pm(), bm.cpu().cr3(),
                         [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
}

TEST(DTlb, SteadyStateLoadsHitAfterOneFill) {
  DtlbMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $1000, %ecx
loop:
  ld 0(%ebx), %eax
  st %eax, 4(%ebx)
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  const auto& stats = bm.cpu().dtlb_stats();
  EXPECT_GT(stats.hits, 1900u);          // ~2000 accesses on one page
  EXPECT_LE(stats.fills, 8u);            // data page + stack + dirty upgrade
  EXPECT_GT(stats.hits, stats.misses * 100);
}

TEST(DTlb, ConflictEvictionStaysCorrect) {
  // Two pages 64 pages apart share both the hardware-TLB set and the D-TLB
  // set; alternating accesses must evict each other without ever reading
  // stale data.
  DtlbMachine bm;
  bm.pm().Write32(0x200000, 0x11111111u);
  bm.pm().Write32(0x240000, 0x22222222u);  // 0x40000 = 64 pages later
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x200000, %ebx
  mov $0x240000, %esi
  mov $50, %ecx
loop:
  ld 0(%ebx), %eax
  ld 0(%esi), %edx
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 0x11111111u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0x22222222u);
  EXPECT_GT(bm.cpu().dtlb_stats().evictions, 50u);
}

TEST(DTlb, PageStraddlingAccessRoundTrip) {
  // A 4-byte store two bytes before a page boundary takes the per-byte path
  // and must behave exactly like partial accesses on consecutive pages.
  DtlbMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x20FFE, %ebx
  mov $0xA1B2C3D4, %eax
  st %eax, 0(%ebx)
  ld 0(%ebx), %ecx
  ld8 2(%ebx), %edx     ; first byte of next page: 0xB2
  ld16 1(%ebx), %esi    ; straddles: bytes 0xC3,0xB2 -> 0xB2C3
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEcx), 0xA1B2C3D4u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0xB2u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEsi), 0xB2C3u);
}

TEST(DTlb, StraddlingStorePartialCommitOnFaultMatchesOracle) {
  // A user store straddling into a read-only page commits the writable
  // page's bytes, then faults on the first read-only byte — identically with
  // the fast path on or off.
  for (bool dtlb : {true, false}) {
    BareMachine bm;
    bm.cpu().set_dtlb_enabled(dtlb);
    const u32 ro_page = 0x21000;
    ASSERT_TRUE(EditorFor(bm).UpdateFlags(ro_page, 0, kPteWrite));
    StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x20FFE, %ebx
  mov $0xCCDDEEFF, %eax
  st %eax, 0(%ebx)
  hlt
)",
                               /*cpl=*/3);
    ASSERT_EQ(stop.reason, StopReason::kFault);
    EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
    EXPECT_EQ(stop.fault.linear_address, ro_page) << "dtlb=" << dtlb;
    EXPECT_EQ(stop.fault.error_code, kPfErrPresent | kPfErrWrite | kPfErrUser);
    u8 committed[2] = {0, 0};
    ASSERT_TRUE(bm.pm().ReadBlock(0x20FFE, committed, 2));
    EXPECT_EQ(committed[0], 0xFFu);  // low bytes landed before the fault
    EXPECT_EQ(committed[1], 0xEEu);
    u8 ro_byte = 1;
    ASSERT_TRUE(bm.pm().ReadBlock(ro_page, &ro_byte, 1));
    EXPECT_EQ(ro_byte, 0u);  // read-only page untouched
  }
}

TEST(DTlb, WriteToReadOnlyFaultFidelityOnProbeHit) {
  // The read primes the D-TLB entry; the store hits it and must synthesize
  // the exact architectural fault, not fall through the host pointer.
  DtlbMachine bm;
  const u32 ro_page = 0x22000;
  ASSERT_TRUE(EditorFor(bm).UpdateFlags(ro_page, 0, kPteWrite));
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x22008, %ebx
  ld 0(%ebx), %eax      ; prime the D-TLB entry (reads are legal)
  st %eax, 0(%ebx)      ; fault through the hit path
  hlt
)",
                             /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(stop.fault.linear_address, 0x22008u);
  EXPECT_EQ(stop.fault.error_code, kPfErrPresent | kPfErrWrite | kPfErrUser);
  EXPECT_GE(bm.cpu().dtlb_stats().fills, 1u);
}

TEST(DTlb, WriteToReadOnlyFaultFidelityOnMiss) {
  DtlbMachine bm;
  const u32 ro_page = 0x22000;
  ASSERT_TRUE(EditorFor(bm).UpdateFlags(ro_page, 0, kPteWrite));
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x2200C, %ebx
  sti $7, 0(%ebx)       ; cold store: fault on the fill path
  hlt
)",
                             /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(stop.fault.linear_address, 0x2200Cu);
  EXPECT_EQ(stop.fault.error_code, kPfErrPresent | kPfErrWrite | kPfErrUser);
}

TEST(DTlb, CplRevalidationOnProbe) {
  // An entry primed at CPL 0 for a supervisor page must not serve CPL 3:
  // the probe rechecks the live CPL against the cached PTE flags.
  DtlbMachine bm;
  const u32 sup_page = 0x23000;
  ASSERT_TRUE(EditorFor(bm).UpdateFlags(sup_page, 0, kPteUser));
  bm.Start(kCodeBase, /*cpl=*/0, kStackTop);
  Fault fault;
  u32 v = 0;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, sup_page + 4, 4, &v, &fault));

  bm.Start(kCodeBase, /*cpl=*/3, kStackTop);  // same machine, now user mode
  EXPECT_FALSE(bm.cpu().ReadVirt(SegReg::kDs, sup_page + 4, 4, &v, &fault));
  EXPECT_EQ(fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(fault.linear_address, sup_page + 4);
  EXPECT_EQ(fault.error_code, kPfErrPresent | kPfErrUser);
}

TEST(DTlb, InvalidationOnPteEdit) {
  // Remapping the linear page to a different frame through the editor hook
  // (the kernel's INVLPG analogue) must drop the cached host pointer.
  DtlbMachine bm;
  const u32 linear = 0x24000;
  const u32 alt_frame = 0x30000;
  bm.pm().Write32(linear, 0xAAAAAAAAu);
  bm.pm().Write32(alt_frame, 0xBBBBBBBBu);

  bm.Start(kCodeBase, 0, kStackTop);
  Fault fault;
  u32 v = 0;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  EXPECT_EQ(v, 0xAAAAAAAAu);

  ASSERT_TRUE(EditorFor(bm).SetPte(linear, MakePte(alt_frame, kPtePresent | kPteWrite)));
  const u64 misses_before = bm.cpu().dtlb_stats().misses;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  EXPECT_EQ(v, 0xBBBBBBBBu);
  EXPECT_GT(bm.cpu().dtlb_stats().misses, misses_before);
}

TEST(DTlb, InvalidationOnCr3LoadAndInvlpg) {
  DtlbMachine bm;
  const u32 linear = 0x25000;
  bm.Start(kCodeBase, 0, kStackTop);
  Fault fault;
  u32 v = 0;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  u64 misses = bm.cpu().dtlb_stats().misses;

  bm.cpu().LoadCr3(bm.cpu().cr3());  // task-switch analogue: full flush
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  EXPECT_GT(bm.cpu().dtlb_stats().misses, misses) << "CR3 load must kill the entry";
  misses = bm.cpu().dtlb_stats().misses;

  bm.cpu().tlb().FlushPage(linear);  // INVLPG analogue
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  EXPECT_GT(bm.cpu().dtlb_stats().misses, misses) << "INVLPG must kill the entry";

  // And a warm entry keeps hitting when nothing was invalidated.
  const u64 hits = bm.cpu().dtlb_stats().hits;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  EXPECT_GT(bm.cpu().dtlb_stats().hits, hits);
}

TEST(DTlb, SegmentReloadUsesNewBase) {
  // The D-TLB is keyed on linear addresses: after DS is reloaded with a
  // based descriptor, the same offset must read the shifted location even
  // though the old linear page is still cached.
  DtlbMachine bm;
  bm.pm().Write32(0x26000, 0x01010101u);
  bm.pm().Write32(0x26000 + 0x2000, 0x02020202u);
  bm.Start(kCodeBase, 0, kStackTop);
  Fault fault;
  u32 v = 0;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, 0x26000, 4, &v, &fault));
  EXPECT_EQ(v, 0x01010101u);

  bm.gdt().Set(BareMachine::kFirstFreeIdx,
               SegmentDescriptor::MakeData(0x2000, 0xFFFFFFFFu, 0));
  ASSERT_TRUE(bm.cpu().ForceSegment(
      SegReg::kDs, Selector::FromIndex(BareMachine::kFirstFreeIdx, 0)));
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, 0x26000, 4, &v, &fault));
  EXPECT_EQ(v, 0x02020202u);
}

TEST(DTlb, HostCopyProbesRequireWarmEntry) {
  DtlbMachine bm;
  bm.Start(kCodeBase, 0, kStackTop);
  const u32 linear = 0x27000;
  u32 buf = 0;
  // Cold: the probe-only host path declines and the caller must walk.
  EXPECT_FALSE(bm.cpu().DtlbHostRead(linear, &buf, 4));
  // Warm the page through an architectural access.
  Fault fault;
  u32 v = 0;
  ASSERT_TRUE(bm.cpu().ReadVirt(SegReg::kDs, linear, 4, &v, &fault));
  u32 payload = 0xFEEDFACEu;
  EXPECT_TRUE(bm.cpu().DtlbHostWrite(linear + 8, &payload, 4));
  EXPECT_TRUE(bm.cpu().DtlbHostRead(linear + 8, &buf, 4));
  EXPECT_EQ(buf, 0xFEEDFACEu);
  u32 direct = 0;
  ASSERT_TRUE(bm.pm().Read32(linear + 8, &direct));
  EXPECT_EQ(direct, 0xFEEDFACEu);
  // Spans leaving the page are refused regardless of warmth.
  u8 big[8];
  EXPECT_FALSE(bm.cpu().DtlbHostRead(linear + kPageSize - 4, big, 8));
}

TEST(DTlb, FrameBeyondMemoryFallsBackWithOracleParity) {
  // A present PTE whose frame lies past the end of physical memory cannot be
  // host-mapped: the access must take the byte loop, raise the same bus
  // error, and record the same TLB statistics as the per-byte oracle.
  u64 hits[2], misses[2];
  Fault faults[2];
  for (int pass = 0; pass < 2; ++pass) {
    DtlbMachine bm;
    bm.cpu().set_dtlb_enabled(pass == 0);
    const u32 bad_linear = 0x28000;
    ASSERT_TRUE(EditorFor(bm).SetPte(bad_linear, MakePte(bm.pm().size(), kPtePresent | kPteWrite)));
    bm.Start(kCodeBase, 0, kStackTop);
    u32 v = 0;
    EXPECT_FALSE(bm.cpu().ReadVirt(SegReg::kDs, bad_linear + 4, 4, &v, &faults[pass]));
    hits[pass] = bm.cpu().tlb_stats().hits;
    misses[pass] = bm.cpu().tlb_stats().misses;
  }
  EXPECT_EQ(faults[0].vector, FaultVector::kGeneralProtection);
  EXPECT_EQ(faults[0].vector, faults[1].vector);
  EXPECT_EQ(faults[0].error_code, faults[1].error_code);
  EXPECT_EQ(hits[0], hits[1]) << "fast path recorded extra TLB hits";
  EXPECT_EQ(misses[0], misses[1]);
}

TEST(DTlb, GateParamCopySpanningPageBoundary) {
  // Protection-domain crossing with the parameter block straddling a page
  // boundary: the call gate's per-parameter copy (the trampoline's argument
  // copy) reads the outer stack across two pages and pushes onto the inner
  // stack, all on the data fast path.
  DtlbMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
  .global inner
main:
  mov $0x30FFC, %esp     ; params at 0x30FFC (page A) and 0x31000 (page B)
  sti $0x1111, 0(%esp)
  sti $0x2222, 4(%esp)
  lcall $)" + std::to_string(Selector::FromIndex(BareMachine::kFirstFreeIdx, 3).raw()) +
                                 R"(
inner:
  ld 8(%esp), %eax       ; first copied parameter
  ld 12(%esp), %edx      ; second copied parameter
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.gdt().Set(BareMachine::kFirstFreeIdx,
               SegmentDescriptor::MakeCallGate(BareMachine::CodeSelector(0).raw(),
                                               *img->Lookup("inner"), /*dpl=*/3,
                                               /*param_count=*/2));
  bm.Start(*img->Lookup("main"), /*cpl=*/3, kStackTop);
  StopInfo stop = bm.Run(1'000'000);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 0x1111u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0x2222u);
  EXPECT_EQ(bm.cpu().cpl(), 0u);
}

}  // namespace
}  // namespace palladium
