// Encode/decode round-trip and validation tests for the ISA.
#include <gtest/gtest.h>

#include <cstring>

#include "src/isa/disasm.h"
#include "src/isa/insn.h"

namespace palladium {
namespace {

TEST(InsnEncoding, RoundTripAllFields) {
  Insn in;
  in.opcode = Opcode::kLoad;
  in.seg = SegOverride::kEs;
  in.r1 = static_cast<u8>(Reg::kEdx);
  in.r2 = static_cast<u8>(Reg::kEbx);
  in.r3 = static_cast<u8>(Reg::kEcx);
  in.scale = 4;
  in.size = 2;
  in.imm = -123456;
  in.disp = 0x7FFFFFFF;

  u8 raw[kInsnSize];
  in.EncodeTo(raw);
  auto out = Insn::Decode(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->opcode, in.opcode);
  EXPECT_EQ(out->seg, in.seg);
  EXPECT_EQ(out->r1, in.r1);
  EXPECT_EQ(out->r2, in.r2);
  EXPECT_EQ(out->r3, in.r3);
  EXPECT_EQ(out->scale, in.scale);
  EXPECT_EQ(out->size, in.size);
  EXPECT_EQ(out->imm, in.imm);
  EXPECT_EQ(out->disp, in.disp);
}

TEST(InsnEncoding, RejectsBadOpcode) {
  u8 raw[kInsnSize] = {};
  u16 bad = static_cast<u16>(Opcode::kCount);
  std::memcpy(raw, &bad, 2);
  raw[7] = 4;
  EXPECT_FALSE(Insn::Decode(raw).has_value());
}

TEST(InsnEncoding, RejectsBadScale) {
  Insn in;
  in.opcode = Opcode::kLoad;
  u8 raw[kInsnSize];
  in.EncodeTo(raw);
  raw[6] = 3;  // invalid scale
  EXPECT_FALSE(Insn::Decode(raw).has_value());
}

TEST(InsnEncoding, RejectsBadSize) {
  Insn in;
  in.opcode = Opcode::kStore;
  u8 raw[kInsnSize];
  in.EncodeTo(raw);
  raw[7] = 3;  // invalid width
  EXPECT_FALSE(Insn::Decode(raw).has_value());
}

TEST(InsnEncoding, RejectsBadSegOverride) {
  Insn in;
  in.opcode = Opcode::kLoad;
  u8 raw[kInsnSize];
  in.EncodeTo(raw);
  raw[2] = 9;  // invalid override
  EXPECT_FALSE(Insn::Decode(raw).has_value());
}

class RoundTripAllOpcodes : public ::testing::TestWithParam<u16> {};

TEST_P(RoundTripAllOpcodes, EncodeDecode) {
  Insn in;
  in.opcode = static_cast<Opcode>(GetParam());
  in.imm = 42;
  in.disp = -8;
  u8 raw[kInsnSize];
  in.EncodeTo(raw);
  auto out = Insn::Decode(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->opcode, in.opcode);
  // Every opcode has a printable name and a non-empty disassembly.
  EXPECT_STRNE(OpcodeName(in.opcode), "???");
  EXPECT_FALSE(Disassemble(*out).empty());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTripAllOpcodes,
                         ::testing::Range<u16>(0, static_cast<u16>(Opcode::kCount)));

TEST(Disasm, RendersMemoryOperand) {
  Insn in;
  in.opcode = Opcode::kLoad;
  in.seg = SegOverride::kEs;
  in.r1 = static_cast<u8>(Reg::kEax);
  in.r2 = static_cast<u8>(Reg::kEbx);
  in.r3 = static_cast<u8>(Reg::kEcx);
  in.scale = 2;
  in.size = 4;
  in.disp = 8;
  EXPECT_EQ(Disassemble(in), "ld %es:8(%ebx,%ecx,2), %eax");
}

TEST(Disasm, RangeStopsOnBadBytes) {
  u8 buf[2 * kInsnSize] = {};
  Insn nop;
  nop.EncodeTo(buf);
  u16 bad = 0xFFFF;
  std::memcpy(buf + kInsnSize, &bad, 2);
  std::string text = DisassembleRange(buf, sizeof(buf), 0x1000);
  EXPECT_NE(text.find("nop"), std::string::npos);
  EXPECT_NE(text.find(".bad"), std::string::npos);
}

}  // namespace
}  // namespace palladium
