// Kernel-model hardening tests: inter-process isolation, resource-limit
// behaviour, malformed syscall arguments, and signal edge cases.
#include <gtest/gtest.h>

#include "src/hw/paging.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

TEST(ProcessIsolation, UserCopyRejectsKernelRangePointers) {
  // access_ok: a syscall handed a kernel-range pointer must fail with
  // kErrFault rather than walking the shared kernel PDEs and leaking (or
  // clobbering) kernel memory through copy_from/to_user — identically with
  // the D-TLB fast path on or off.
  for (bool dtlb : {true, false}) {
    KernelFixture fx;
    fx.kernel().cpu().set_dtlb_enabled(dtlb);
    std::string diag;
    Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_WRITE, %eax
  mov $0xC0001000, %ebx  ; kernel direct-map address
  mov $8, %ecx
  int $INT_SYSCALL
  mov %eax, %ebx         ; expect kErrFault (-14)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                             &diag);
    ASSERT_NE(pid, 0u) << diag;
    RunResult r = fx.Run(pid);
    EXPECT_EQ(r.outcome, RunOutcome::kExited) << "dtlb=" << dtlb;
    EXPECT_EQ(r.exit_code, -14) << "dtlb=" << dtlb;
    EXPECT_TRUE(fx.kernel().console().empty()) << "kernel memory leaked to console";
  }
}

TEST(ProcessIsolation, SameVirtualAddressDifferentMemory) {
  KernelFixture fx;
  std::string diag;
  // Two instances of the same program: each bumps a counter at the *same*
  // virtual address and exits with its value. Fork-free isolation check.
  const char* prog = R"(
  .global main
main:
  mov $counter, %ebx
  ld 0(%ebx), %ecx
  add $1, %ecx
  st %ecx, 0(%ebx)
  mov $SYS_EXIT, %eax
  mov %ecx, %ebx
  int $INT_SYSCALL
  .data
counter:
  .long 0
)";
  Pid a = fx.LoadProgram(prog, &diag);
  ASSERT_NE(a, 0u) << diag;
  Pid b = fx.LoadProgram(prog, &diag);
  ASSERT_NE(b, 0u) << diag;
  EXPECT_EQ(fx.Run(a).exit_code, 1);
  EXPECT_EQ(fx.Run(b).exit_code, 1) << "process B must not see A's writes";
}

TEST(ProcessIsolation, PalladiumStateIsPerProcess) {
  KernelFixture fx;
  std::string diag;
  Pid pd = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                          &diag);
  ASSERT_NE(pd, 0u) << diag;
  Pid plain = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                             &diag);
  ASSERT_NE(plain, 0u) << diag;
  EXPECT_EQ(fx.Run(pd).outcome, RunOutcome::kExited);
  EXPECT_EQ(fx.kernel().process(pd)->task_spl, 2);
  // The second process is untouched by the first's promotion.
  EXPECT_EQ(fx.Run(plain).outcome, RunOutcome::kExited);
  EXPECT_EQ(fx.kernel().process(plain)->task_spl, 3);
}

TEST(SyscallHardening, WriteWithBadPointerFails) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_WRITE, %eax
  mov $0x70000000, %ebx   ; unmapped
  mov $16, %ecx
  int $INT_SYSCALL
  mov %eax, %ebx          ; expect -14 (EFAULT)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -14);
}

TEST(SyscallHardening, HugeWriteRejected) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_WRITE, %eax
  mov $0x08048000, %ebx
  mov $0x10000000, %ecx   ; 256 MB
  int $INT_SYSCALL
  mov %eax, %ebx          ; expect -22 (EINVAL)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -22);
}

TEST(SyscallHardening, MmapZeroLengthRejected) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $0, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -22);
}

TEST(SyscallHardening, MmapOverlappingFixedAddressRejected) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_MMAP, %eax
  mov $0x08048000, %ebx   ; overlaps text
  mov $0x1000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebx          ; expect -12 (ENOMEM)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -12);
}

TEST(SyscallHardening, SigactionBadSignalRejected) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $99, %ebx
  mov $0x1000, %ecx
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -22);
}

TEST(SignalEdge, SigreturnOutsideHandlerRejected) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_SIGRETURN, %eax
  int $INT_SYSCALL
  mov %eax, %ebx          ; expect -22 (EINVAL)
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, -22);
}

TEST(SignalEdge, UnhandledSignalKills) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_KILL, %eax
  mov $7, %ebx
  int $INT_SYSCALL
loop:
  jmp loop
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = fx.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kKilled);
  EXPECT_NE(r.kill_reason.find("signal 7"), std::string::npos);
}

TEST(MemoryPressure, BrkCannotCollideWithMmap) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_BRK, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  mov %eax, %esi          ; current brk
  ; place a mapping one page above the heap start
  mov $SYS_MMAP, %eax
  mov %esi, %ebx
  add $0x1000, %ebx
  and $0xFFFFF000, %ebx
  mov $0x1000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  ; now try to extend brk across it
  mov $SYS_BRK, %eax
  mov %esi, %ebx
  add $0x10000, %ebx
  int $INT_SYSCALL
  cmp %esi, %eax          ; brk must be unchanged
  je ok
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
ok:
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  EXPECT_EQ(fx.Run(pid).exit_code, 0);
}

TEST(MemoryPressure, FrameAllocatorRecyclesMunmappedPages) {
  KernelFixture fx;
  std::string diag;
  Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $32, %esi           ; map/touch/unmap cycles
cycle:
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $0x4000, %ecx       ; 4 pages
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebx
  sti $1, 0(%ebx)         ; touch each page
  sti $1, 0x1000(%ebx)
  sti $1, 0x2000(%ebx)
  sti $1, 0x3000(%ebx)
  mov %ebx, %edi
  mov $SYS_MUNMAP, %eax
  mov %edi, %ebx
  mov $0x4000, %ecx
  int $INT_SYSCALL
  dec %esi
  cmp $0, %esi
  jne cycle
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                           &diag);
  ASSERT_NE(pid, 0u) << diag;
  u32 before = fx.kernel().frames().free_frames();
  EXPECT_EQ(fx.Run(pid).outcome, RunOutcome::kExited);
  u32 after = fx.kernel().frames().free_frames();
  // Everything the loop allocated was freed (modulo a few page tables).
  EXPECT_GT(after + 16, before);
}

}  // namespace
}  // namespace palladium
