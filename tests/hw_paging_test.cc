// Page-table walker and editor tests, including the page-privilege (PPL)
// semantics Palladium's user-level mechanism depends on.
#include <gtest/gtest.h>

#include "src/hw/paging.h"
#include "src/hw/physical_memory.h"

namespace palladium {
namespace {

class PagingTest : public ::testing::Test {
 protected:
  PagingTest() : pm_(4u << 20) {
    cr3_ = Alloc();
    next_table_ = 0;
  }

  u32 Alloc() {
    bump_ -= kPageSize;
    pm_.Fill(bump_, 0, kPageSize);
    return bump_;
  }

  // Maps linear -> frame with flags through the editor.
  void Map(u32 linear, u32 frame, u32 flags) {
    PageTableEditor ed(pm_, cr3_);
    ASSERT_TRUE(ed.Map(linear, frame, flags, [&] { return Alloc(); }));
  }

  PhysicalMemory pm_;
  u32 cr3_ = 0;
  u32 bump_ = 4u << 20;
  u32 next_table_ = 0;
};

TEST_F(PagingTest, NotPresentFaults) {
  WalkResult r = WalkPageTable(pm_, cr3_, 0x1000, false, false);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(r.fault.error_code & kPfErrPresent, 0u);
  EXPECT_EQ(r.fault.linear_address, 0x1000u);
}

TEST_F(PagingTest, MapThenWalk) {
  u32 frame = Alloc();
  Map(0x00400000, frame, kPtePresent | kPteWrite | kPteUser);
  WalkResult r = WalkPageTable(pm_, cr3_, 0x00400123, true, true);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.frame, frame);
}

TEST_F(PagingTest, UserCannotTouchSupervisorPage) {
  // This is the paper's core page-level rule: SPL 3 cannot access PPL 0.
  u32 frame = Alloc();
  Map(0x2000, frame, kPtePresent | kPteWrite);  // PPL 0: no U bit
  WalkResult user = WalkPageTable(pm_, cr3_, 0x2000, false, true);
  EXPECT_FALSE(user.ok);
  EXPECT_TRUE(user.fault.error_code & kPfErrPresent);  // protection, not missing
  EXPECT_TRUE(user.fault.error_code & kPfErrUser);

  WalkResult sup = WalkPageTable(pm_, cr3_, 0x2000, false, false);
  EXPECT_TRUE(sup.ok);  // SPL 0..2 are supervisor at page level
}

TEST_F(PagingTest, UserWriteToReadOnlyFaults) {
  u32 frame = Alloc();
  Map(0x3000, frame, kPtePresent | kPteUser);  // read-only user page (the GOT case)
  WalkResult w = WalkPageTable(pm_, cr3_, 0x3000, true, true);
  EXPECT_FALSE(w.ok);
  EXPECT_TRUE(w.fault.error_code & kPfErrWrite);
  WalkResult r = WalkPageTable(pm_, cr3_, 0x3000, false, true);
  EXPECT_TRUE(r.ok);
}

TEST_F(PagingTest, SupervisorWriteIgnoresReadOnly) {
  // No CR0.WP (Linux 2.0 era): the SPL 2 application may write pages that
  // are read-only for its SPL 3 extensions.
  u32 frame = Alloc();
  Map(0x4000, frame, kPtePresent | kPteUser);
  WalkResult w = WalkPageTable(pm_, cr3_, 0x4000, true, false);
  EXPECT_TRUE(w.ok);
}

TEST_F(PagingTest, EffectivePermissionIsAndOfLevels) {
  // Clear the U bit at the PDE level: even a U-bit PTE must then fault for
  // user accesses.
  u32 frame = Alloc();
  Map(0x5000, frame, kPtePresent | kPteWrite | kPteUser);
  u32 pde = 0;
  ASSERT_TRUE(pm_.Read32(cr3_ + PdeIndex(0x5000) * 4, &pde));
  ASSERT_TRUE(pm_.Write32(cr3_ + PdeIndex(0x5000) * 4, pde & ~kPteUser));
  WalkResult r = WalkPageTable(pm_, cr3_, 0x5000, false, true);
  EXPECT_FALSE(r.ok);
}

TEST_F(PagingTest, AccessedDirtyBits) {
  u32 frame = Alloc();
  Map(0x6000, frame, kPtePresent | kPteWrite | kPteUser);
  ASSERT_TRUE(SetAccessedDirty(pm_, cr3_, 0x6000, /*dirty=*/true));
  PageTableEditor ed(pm_, cr3_);
  u32 pte = 0;
  ASSERT_TRUE(ed.GetPte(0x6000, &pte));
  EXPECT_TRUE(pte & kPteAccessed);
  EXPECT_TRUE(pte & kPteDirty);
}

TEST_F(PagingTest, EditorUpdateFlags) {
  // The set_range syscall path: flip the U bit ("PPL") on an existing page.
  u32 frame = Alloc();
  Map(0x7000, frame, kPtePresent | kPteWrite);
  PageTableEditor ed(pm_, cr3_);
  ASSERT_TRUE(ed.UpdateFlags(0x7000, kPteUser, 0));
  WalkResult r = WalkPageTable(pm_, cr3_, 0x7000, false, true);
  EXPECT_TRUE(r.ok);
  ASSERT_TRUE(ed.UpdateFlags(0x7000, 0, kPteUser));
  r = WalkPageTable(pm_, cr3_, 0x7000, false, true);
  EXPECT_FALSE(r.ok);
}

TEST_F(PagingTest, EditorUnmap) {
  u32 frame = Alloc();
  Map(0x8000, frame, kPtePresent | kPteWrite | kPteUser);
  PageTableEditor ed(pm_, cr3_);
  ASSERT_TRUE(ed.Unmap(0x8000));
  WalkResult r = WalkPageTable(pm_, cr3_, 0x8000, false, false);
  EXPECT_FALSE(r.ok);
}

TEST_F(PagingTest, UpdateFlagsOnMissingMappingFails) {
  PageTableEditor ed(pm_, cr3_);
  EXPECT_FALSE(ed.UpdateFlags(0x00900000, kPteUser, 0));
}

TEST_F(PagingTest, DistinctAddressSpaces) {
  u32 other_cr3 = Alloc();
  u32 frame = Alloc();
  Map(0x9000, frame, kPtePresent | kPteWrite | kPteUser);
  // The second address space has no such mapping.
  WalkResult r = WalkPageTable(pm_, other_cr3, 0x9000, false, false);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace palladium
