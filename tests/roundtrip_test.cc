// Assembler/disassembler round-trip property: disassembling a fully linked
// image and re-assembling the text must reproduce the identical bytes.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/core/trampoline.h"
#include "src/isa/disasm.h"

namespace palladium {
namespace {

void ExpectRoundTrip(const std::string& source, u32 base) {
  std::string diag;
  auto img = AssembleAndLink(source, base, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  ASSERT_GE(img->text_size, kInsnSize);

  // Disassemble only the text portion.
  std::string listing;
  for (u32 off = 0; off + kInsnSize <= img->text_size; off += kInsnSize) {
    auto insn = Insn::Decode(img->bytes.data() + off);
    ASSERT_TRUE(insn.has_value()) << "offset " << off;
    std::string line = Disassemble(*insn);
    // The disassembler writes `ld ...` etc. in re-parseable syntax; branch
    // targets come out as absolute hex which the assembler accepts.
    listing += "  " + line + "\n";
  }
  AssembleError aerr;
  auto reobj = Assemble(listing, &aerr);
  ASSERT_TRUE(reobj.has_value()) << aerr.ToString() << "\n" << listing;
  ASSERT_EQ(reobj->text.size(), img->text_size) << listing;
  for (u32 off = 0; off < img->text_size; ++off) {
    ASSERT_EQ(reobj->text[off], img->bytes[off]) << "byte " << off << "\n" << listing;
  }
}

TEST(RoundTrip, ArithmeticKernel) {
  ExpectRoundTrip(R"(
  .global main
main:
  mov $5, %eax
  add $3, %eax
  mov %eax, %ebx
  sub %ebx, %eax
  imul $7, %ebx
  shl $2, %ebx
  shr $1, %ebx
  sar $1, %ebx
  neg %ebx
  not %ebx
  inc %eax
  dec %eax
  ret
)",
                  0x1000);
}

TEST(RoundTrip, MemoryAndControl) {
  ExpectRoundTrip(R"(
  .global main
main:
  ld 8(%ebp), %eax
  ld16 4(%ebx,%ecx,2), %edx
  ld8 0(%esi), %edi
  st %eax, -4(%esp)
  st8 %eax, 1(%ebx)
  sti $9, 0(%ebx)
  lea 12(%ebx,%ecx,4), %eax
  push %eax
  push $77
  pop %ecx
  cmp $0, %ecx
  jne main
  call main
  jmp main
  ret
)",
                  0x2000);
}

TEST(RoundTrip, FarTransfersAndSegments) {
  ExpectRoundTrip(R"(
  .global main
main:
  push %ds
  pop %es
  mov %eax, %ds
  mov %es, %ebx
  lcall $96
  int $0x80
  iret
  lret
  nop
  hlt
)",
                  0x3000);
}

TEST(RoundTrip, GeneratedTrampolines) {
  // The Figure-6 stubs themselves survive the round trip (they use absolute
  // addressing, the form most likely to diverge).
  TrampolineSlots slots{0x5E000000, 0x5E000004};
  ExpectRoundTrip(PrepareStubSource(slots, 0x60FFFFFC, 0x60FFFFFC, 0x1B, 0x23, 0x60010000),
                  0x4000);
  ExpectRoundTrip(AppCallGateSource(slots), 0x5000);
  ExpectRoundTrip(TransferStubSource(0x60000000, 0x9B), 0x6000);
  ExpectRoundTrip(AppServiceStubSource(0x08048100, 0x50001FF0), 0x7000);
}

}  // namespace
}  // namespace palladium
