// Interrupt fabric tests: PIC latch/mask/ack/EOI semantics, timer and NIC
// device models, bare-machine interrupt delivery (including CPL 3 -> CPL 0
// stack switching and IF semantics), and the kernel-level nested-entry
// scenarios: an IRQ arriving inside a syscall, signal delivery during an
// interrupt-gate frame, and the timer watchdog asynchronously killing a
// looping kernel extension with clean TLB/D-TLB/decode-cache state after.
#include <gtest/gtest.h>

#include "src/core/kernel_ext.h"
#include "src/hw/bare_machine.h"
#include "src/hw/nic.h"
#include "src/hw/timer.h"
#include "src/kernel/sched.h"
#include "src/net/packet.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

// --- InterruptController ------------------------------------------------------

TEST(Pic, PriorityMaskAckEoi) {
  InterruptController pic(0x20);
  EXPECT_FALSE(pic.HasDeliverable());
  pic.Raise(5);
  pic.Raise(2);
  ASSERT_TRUE(pic.HasDeliverable());
  // Lowest IRQ number wins.
  EXPECT_EQ(pic.Acknowledge(), 0x22);
  // IRQ 2 in service blocks IRQ 5 (lower priority)...
  EXPECT_FALSE(pic.HasDeliverable());
  pic.Raise(1);
  // ...but not IRQ 1.
  EXPECT_EQ(pic.Acknowledge(), 0x21);
  pic.Eoi();  // retires IRQ 1
  EXPECT_FALSE(pic.HasDeliverable());
  pic.Eoi();  // retires IRQ 2
  EXPECT_EQ(pic.Acknowledge(), 0x25);
  pic.Eoi();

  pic.Raise(3);
  pic.SetMasked(3, true);
  EXPECT_FALSE(pic.HasDeliverable());
  pic.SetMasked(3, false);
  EXPECT_EQ(pic.Acknowledge(), 0x23);
}

TEST(Pic, CoalescesEdgesWhilePending) {
  InterruptController pic;
  pic.Raise(4);
  pic.Raise(4);
  pic.Raise(4);
  EXPECT_EQ(pic.raised(4), 3u);
  EXPECT_EQ(pic.Acknowledge(), 0x24);
  pic.Eoi();
  EXPECT_FALSE(pic.HasDeliverable()) << "three edges -> one delivery";
  EXPECT_EQ(pic.delivered(4), 1u);
}

TEST(Pic, AutoEoiNeverBlocks) {
  InterruptController pic;
  pic.set_auto_eoi(true);
  pic.Raise(7);
  EXPECT_EQ(pic.Acknowledge(), 0x27);
  pic.Raise(7);
  EXPECT_EQ(pic.Acknowledge(), 0x27) << "no in-service bit in auto-EOI mode";
}

// --- Timer -------------------------------------------------------------------

TEST(Timer, PeriodicTicksCoalesceWhileUnserviced) {
  InterruptController pic;
  IrqHub hub(pic);
  IntervalTimer timer(pic, 0);
  hub.AddDevice(&timer);
  EXPECT_EQ(timer.next_event(), IrqDevice::kIdle);
  timer.Program(100, 50);
  EXPECT_EQ(timer.next_event(), 150u);
  timer.Advance(149);
  EXPECT_EQ(timer.ticks(), 0u);
  timer.Advance(150);
  EXPECT_EQ(timer.ticks(), 1u);
  EXPECT_EQ(timer.next_event(), 250u);
  // A long blocked stretch: every elapsed period ticks, edges coalesce.
  timer.Advance(1000);
  EXPECT_EQ(timer.ticks(), 9u);
  EXPECT_TRUE(pic.HasDeliverable());
  pic.Acknowledge();
  pic.Eoi();
  EXPECT_FALSE(pic.HasDeliverable());
}

// --- IrqHub ------------------------------------------------------------------

TEST(Hub, AttentionTracksDeviceEventsAndPendingIrqs) {
  InterruptController pic;
  IrqHub hub(pic);
  IntervalTimer timer(pic, 0);
  hub.AddDevice(&timer);
  timer.Program(1000, 0);
  EXPECT_EQ(hub.Poll(10, true), InterruptController::kNoIrq);
  EXPECT_EQ(hub.attention_cycle(), 1000u);
  // Delivery blocked (IF clear): attention pins to "ask me every boundary".
  EXPECT_EQ(hub.Poll(1000, false), InterruptController::kNoIrq);
  EXPECT_EQ(hub.attention_cycle(), 1000u);
  EXPECT_EQ(hub.Poll(1001, true), 0x20);
  pic.Eoi();
  EXPECT_EQ(hub.Poll(1001, true), InterruptController::kNoIrq);
  EXPECT_EQ(hub.attention_cycle(), 2000u);
}

// --- Bare-machine delivery ----------------------------------------------------

// Loads a counter ISR and a spin loop; returns the machine ready to run.
struct IsrFixture {
  BareMachine bm;
  InterruptController pic;
  IrqHub hub{pic};
  IntervalTimer timer{pic, 0};
  static constexpr u32 kCounterAddr = 0x40000;
  static constexpr u32 kSpinExit = 0x30000;  // ECX countdown bound

  IsrFixture() : timer(pic, 0) {
    pic.set_auto_eoi(true);  // simulated ISRs cannot EOI
    hub.AddDevice(&timer);
  }

  bool Load(u8 cpl, std::string* diag) {
    auto img = bm.LoadProgram(R"(
  .global main
  .global isr
main:
  mov $200000, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  hlt
isr:
  ld 0x40000, %eax
  inc %eax
  st %eax, 0x40000
  iret
)",
                              0x10000, diag);
    if (!img) return false;
    // Hardware IRQ gate: target is CPL 0 code regardless of interrupted CPL.
    bm.idt().Set(0x20, SegmentDescriptor::MakeInterruptGate(
                           BareMachine::CodeSelector(0).raw(), *img->Lookup("isr"), 0));
    bm.Start(*img->Lookup("main"), cpl, 0x80000);
    bm.cpu().set_eflags(kFlagIf);
    bm.cpu().set_irq_hub(&hub);
    return true;
  }
};

TEST(BareIrq, TimerIsrRunsAndReturns) {
  IsrFixture f;
  std::string diag;
  ASSERT_TRUE(f.Load(/*cpl=*/0, &diag)) << diag;
  f.timer.Program(10'000, 0);
  StopInfo stop = f.bm.Run(100'000'000);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  u32 count = 0;
  f.bm.pm().Read32(IsrFixture::kCounterAddr, &count);
  EXPECT_GT(count, 5u) << "timer ISR should have run many times";
  EXPECT_EQ(f.timer.ticks(), count) << "every tick delivered exactly once";
  EXPECT_EQ(f.pic.delivered(0), count);
}

TEST(BareIrq, DeliveryFromCpl3SwitchesToInnerStackAndBack) {
  IsrFixture f;
  std::string diag;
  ASSERT_TRUE(f.Load(/*cpl=*/3, &diag)) << diag;
  f.timer.Program(7'777, 0);
  StopInfo stop = f.bm.Run(100'000'000);
  ASSERT_EQ(stop.reason, StopReason::kFault) << "hlt at CPL 3 faults (after the loop ran)";
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
  u32 count = 0;
  f.bm.pm().Read32(IsrFixture::kCounterAddr, &count);
  EXPECT_GT(count, 5u);
  EXPECT_EQ(f.bm.cpu().cpl(), 3u) << "IRET restored the interrupted privilege level";
}

TEST(BareIrq, IfClearDefersDeliveryUntilSet) {
  IsrFixture f;
  std::string diag;
  ASSERT_TRUE(f.Load(/*cpl=*/0, &diag)) << diag;
  f.bm.cpu().set_eflags(0);  // interrupts off
  f.timer.Program(1'000, 0);
  StopInfo stop = f.bm.Run(100'000'000);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  u32 count = 0;
  f.bm.pm().Read32(IsrFixture::kCounterAddr, &count);
  EXPECT_EQ(count, 0u) << "no delivery while IF is clear";
  EXPECT_GT(f.timer.ticks(), 0u) << "the device kept ticking regardless";
  EXPECT_TRUE(f.pic.pending() != 0) << "the edge stays latched";
}

TEST(BareIrq, IrqTraceRecordsDeliveries) {
  IsrFixture f;
  std::string diag;
  ASSERT_TRUE(f.Load(/*cpl=*/0, &diag)) << diag;
  std::vector<Cpu::IrqEvent> trace;
  f.bm.cpu().set_irq_trace(&trace);
  f.timer.Program(50'000, 0);
  ASSERT_EQ(f.bm.Run(100'000'000).reason, StopReason::kHalted);
  ASSERT_FALSE(trace.empty());
  for (const auto& ev : trace) {
    EXPECT_EQ(ev.vector, 0x20);
    EXPECT_EQ(ev.cpl, 0);
    EXPECT_GE(ev.cycle, 50'000u);
  }
}

// --- NIC ----------------------------------------------------------------------

struct NicFixture {
  BareMachine bm{BareMachineConfig{}};
  InterruptController pic;
  IrqHub hub{pic};
  Nic nic{bm.pm(), pic, 5};
  static constexpr u32 kEntries = 4;

  NicFixture() {
    NicRing rx;
    rx.desc_phys = 0x50000;
    rx.count = kEntries;
    rx.buf_stride = 2048;
    for (u32 i = 0; i < kEntries; ++i) {
      bm.pm().Write32(rx.desc_phys + i * kNicDescBytes + kNicDescStatus, kDescOwn);
      bm.pm().Write32(rx.desc_phys + i * kNicDescBytes + kNicDescBuf, 0x60000 + i * 0x1000);
    }
    nic.ConfigureRx(rx);
    NicRing tx;
    tx.desc_phys = 0x51000;
    tx.count = kEntries;
    tx.buf_stride = 2048;
    for (u32 i = 0; i < kEntries; ++i) {
      bm.pm().Write32(tx.desc_phys + i * kNicDescBytes + kNicDescBuf, 0x70000 + i * 0x1000);
    }
    nic.ConfigureTx(tx);
    hub.AddDevice(&nic);
  }
};

TEST(NicModel, RxDmaWritesRingAndRaisesIrq) {
  NicFixture f;
  PacketSpec spec;
  auto frame = BuildPacket(spec);
  f.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 1000);
  EXPECT_EQ(f.nic.next_event(), 1000u);
  f.nic.Advance(999);
  EXPECT_EQ(f.nic.stats().rx_frames, 0u);
  f.nic.Advance(1000);
  EXPECT_EQ(f.nic.stats().rx_frames, 1u);
  EXPECT_TRUE(f.pic.pending() & (1u << 5));
  u32 status = 0, len = 0, buf = 0;
  f.bm.pm().Read32(0x50000 + kNicDescStatus, &status);
  f.bm.pm().Read32(0x50000 + kNicDescLen, &len);
  f.bm.pm().Read32(0x50000 + kNicDescBuf, &buf);
  EXPECT_EQ(status, kDescDone);
  EXPECT_EQ(len, frame.size());
  std::vector<u8> landed(frame.size());
  f.bm.pm().ReadBlock(buf, landed.data(), static_cast<u32>(landed.size()));
  EXPECT_EQ(landed, frame);
}

TEST(NicModel, RxDropsWhenRingExhausted) {
  NicFixture f;
  PacketSpec spec;
  auto frame = BuildPacket(spec);
  for (u32 i = 0; i < NicFixture::kEntries + 3; ++i) {
    f.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 100 + i);
  }
  f.nic.Advance(10'000);
  EXPECT_EQ(f.nic.stats().rx_frames, NicFixture::kEntries);
  EXPECT_EQ(f.nic.stats().rx_dropped, 3u);
}

TEST(NicModel, TxKickSchedulesDmaAndCompletesOnTheClock) {
  NicFixture f;
  const char* msgs[] = {"alpha", "bravo"};
  for (u32 i = 0; i < 2; ++i) {
    const u32 desc = 0x51000 + i * kNicDescBytes;
    u32 buf = 0;
    f.bm.pm().Read32(desc + kNicDescBuf, &buf);
    f.bm.pm().WriteBlock(buf, msgs[i], 5);
    f.bm.pm().Write32(desc + kNicDescLen, 5);
    f.bm.pm().Write32(desc + kNicDescStatus, kDescOwn);
  }
  // The doorbell only schedules DMA — nothing completes in zero time.
  EXPECT_EQ(f.nic.TxKick(0, 1000), 2u);
  EXPECT_EQ(f.nic.tx_frames().size(), 0u);
  const u64 dma = f.nic.tx_dma_cycles();
  EXPECT_EQ(f.nic.next_event(), 1000 + dma);
  f.nic.Advance(1000 + dma - 1);
  EXPECT_EQ(f.nic.tx_frames().size(), 0u);
  // Descriptors complete tx_dma_cycles apart, in ring order.
  f.nic.Advance(1000 + dma);
  ASSERT_EQ(f.nic.tx_frames().size(), 1u);
  EXPECT_EQ(std::string(f.nic.tx_frames()[0].begin(), f.nic.tx_frames()[0].end()), "alpha");
  EXPECT_TRUE(f.pic.pending() & (1u << 6)) << "TX-completion IRQ raised";
  f.nic.Advance(1000 + 2 * dma);
  ASSERT_EQ(f.nic.tx_frames().size(), 2u);
  EXPECT_EQ(std::string(f.nic.tx_frames()[1].begin(), f.nic.tx_frames()[1].end()), "bravo");
  EXPECT_EQ(f.nic.stats().tx_frames, 2u);
  // Completions landing in one Advance coalesce into one edge; here the two
  // retired in separate Advances, so two edges total.
  EXPECT_EQ(f.nic.stats().tx_completion_irqs, 2u);
  EXPECT_EQ(f.nic.TxKick(0, 5000), 0u) << "descriptors flipped to done";
}

// --- Kernel-level nested entries ---------------------------------------------

// An IRQ raised while the kernel is inside a syscall handler is deferred
// (the gate cleared IF) and delivered right after the IRET re-enables
// interrupts — before the next user instruction makes progress.
TEST(KernelIrq, IrqArrivingInsideSyscallIsDeferredToIret) {
  KernelFixture f;
  f.kernel().EnableTimerInterrupts();
  bool during_syscall_pending = false;
  u64 delivered_at_syscall = 0;
  f.kernel().RegisterSyscall(230, [&](Kernel& k, u32, u32, u32) {
    // Raise the NIC line from kernel context mid-syscall.
    k.pic().Raise(kIrqNic);
    during_syscall_pending = true;
    k.ReturnFromGate(0);
  });
  u64 nic_irq_count = 0;
  f.kernel().RegisterIrqHandler(kIrqNic, [&](Kernel& k) {
    ++nic_irq_count;
    delivered_at_syscall = k.cpu().cycles();
  });
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $230, %eax
  int $0x80
  mov $1, %ebx
  mov $SYS_EXIT, %eax
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = f.Run(pid);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_TRUE(during_syscall_pending);
  EXPECT_EQ(nic_irq_count, 1u) << "the deferred IRQ was delivered exactly once";
}

// Signal delivery during an interrupt-gate entry: a device IRQ handler
// delivers a signal to the interrupted process (exactly how the timer
// watchdog posts SIGXCPU); the handler runs at the process's level and
// sigreturn resumes the interrupted loop where it left off.
TEST(KernelIrq, SignalDeliveredFromInterruptHandlerAndSigreturns) {
  KernelFixture f;
  f.kernel().EnableTimerInterrupts();
  bool signal_sent = false;
  f.kernel().RegisterIrqHandler(kIrqNic, [&](Kernel& k) {
    if (!signal_sent && k.current() != nullptr) {
      signal_sent = true;
      k.DeliverSignal(*k.current(), 10);
    }
  });
  // Syscall 231 latches the NIC line once the handler is registered; the IRQ
  // is delivered at the first post-IRET boundary, mid-spin.
  f.kernel().RegisterSyscall(231, [](Kernel& k, u32, u32, u32) {
    k.pic().Raise(kIrqNic);
    k.ReturnFromGate(0);
  });
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
  .global handler
main:
  mov $SYS_SIGACTION, %eax
  mov $10, %ebx
  mov $handler, %ecx
  int $0x80
  mov $231, %eax
  int $0x80
  mov $40000, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  mov $0xBFFF0000, %ebx    ; flag cell in the (demand-paged) stack area
  ld 0(%ebx), %ebx         ; 77 if the handler ran, demand-zero 0 otherwise
  mov $SYS_EXIT, %eax
  int $0x80
handler:
  mov $0xBFFF0000, %ebx
  mov $77, %eax
  st %eax, 0(%ebx)
  mov $SYS_SIGRETURN, %eax ; resume the interrupted spin
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  RunResult r = f.Run(pid, 100'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 77) << "signal handler ran (delivered off an IRQ) and sigreturned";
  EXPECT_TRUE(signal_sent);
}

// The headline safe-termination property: a deliberately looping kernel
// extension is killed asynchronously by the timer watchdog; afterwards the
// TLB/D-TLB/decode-cache state is clean and other work proceeds unharmed.
TEST(KernelIrq, TimerWatchdogKillsLoopingKextAndMachineStaysClean) {
  Machine machine;
  Kernel kernel(machine);
  kernel.EnableTimerInterrupts();
  KernelExtensionManager kext(kernel);

  AssembleError aerr;
  auto looping = Assemble(R"(
  .global spin_forever
spin_forever:
  mov $1, %eax
forever:
  add $1, %eax
  jmp forever
  .data
  .global pd_shared
pd_shared:
  .space 64
)",
                          &aerr);
  ASSERT_TRUE(looping.has_value()) << aerr.ToString();
  std::string diag;
  KextOptions opts;
  opts.cycle_limit = 300'000;
  auto ext = kext.LoadExtension("runaway", *looping, &diag, opts);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = kext.FindFunction("runaway:spin_forever");
  ASSERT_TRUE(fid.has_value());

  const u64 before = kernel.cpu().cycles();
  auto r = kext.Invoke(*fid, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("timer watchdog"), std::string::npos) << r.error;
  // Detection is asynchronous: within a few timer periods past the limit,
  // far before the 16x cooperative backstop.
  EXPECT_GE(r.cycles, 300'000u);
  EXPECT_LT(r.cycles, 300'000u + 4 * kernel.config().timer_slice_cycles);
  EXPECT_GT(kernel.cpu().cycles(), before);

  // The machine is clean afterwards: a fresh process runs to completion and
  // the fast paths agree with the oracle on its output.
  KernelExtensionManager::InvokeResult again;
  auto good = Assemble(R"(
  .global f
f:
  mov $123, %eax
  ret
  .data
  .global pd_shared
pd_shared:
  .space 64
)",
                       &aerr);
  ASSERT_TRUE(good.has_value());
  auto gext = kext.LoadExtension("good", *good, &diag);
  ASSERT_TRUE(gext.has_value()) << diag;
  auto gfid = kext.FindFunction("good:f");
  again = kext.Invoke(*gfid, 0);
  EXPECT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.value, 123u);
}

}  // namespace
}  // namespace palladium
