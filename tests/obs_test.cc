// Observability-layer tests: the flight recorder's ring semantics (wrap
// drops the *oldest* events and counts every drop explicitly), the
// cycle-attribution profiler's hard invariant (categories sum exactly to
// the retired-cycle total on every vCPU), and tracer determinism — the same
// workload yields a byte-identical event stream on a rerun, and the
// architectural (kArch) stream is invariant across every engine mode
// ({blocks, trace, D-TLB} oracles) at N=1 and N=4. Observation must be free
// in simulated time, so a fully-instrumented run also has to produce the
// same served/cycles numbers as a bare one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/asm/assembler.h"
#include "src/bpf/bpf.h"
#include "src/core/kernel_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc.h"
#include "src/sfi/sfi.h"
#include "src/web/server_sim.h"

namespace palladium {
namespace {

MultiServerConfig SmallConfig(u32 smp) {
  MultiServerConfig cfg;
  cfg.workers = smp > 1 ? 4 : 2;
  cfg.clients = 4;
  cfg.total_requests = 24;
  cfg.smp = smp;
  cfg.queues = smp;  // one NIC queue pair per core
  return cfg;
}

struct ObservedRun {
  MultiServerResult result;
  obs::FlightRecorder recorder;
  obs::CycleProfile profiler;
  obs::MetricsRegistry metrics;
};

// Runs the interrupt-driven server with the full telemetry stack attached.
// The recorder/profiler live in the returned struct so tests can inspect
// streams and buckets after the machine is gone.
void RunObserved(const MultiServerConfig& base, ObservedRun* out) {
  MultiServerConfig cfg = base;
  cfg.recorder = &out->recorder;
  cfg.profiler = &out->profiler;
  cfg.metrics = &out->metrics;
  out->result = RunMultiWorkerServer(cfg);
  ASSERT_TRUE(out->result.ok) << out->result.diag;
  ASSERT_GT(out->result.served, 0u);
}

// --- Ring-buffer semantics ---------------------------------------------------

TEST(FlightRecorder, WrapDropsOldestAndCountsExplicitly) {
  obs::FlightRecorder rec;
  rec.Reset(/*num_tracks=*/1, /*capacity=*/8);
  for (u32 i = 0; i < 20; ++i) {
    rec.Record(0, /*cycle=*/100 + i, obs::EventType::kContextSwitch,
               obs::EventClass::kArch, /*arg0=*/i);
  }
  // 20 recorded, 8 survive, 12 oldest dropped — and the drop is loud.
  EXPECT_EQ(rec.recorded_events(0), 20u);
  EXPECT_EQ(rec.dropped_events(0), 12u);
  EXPECT_EQ(rec.TotalDropped(), 12u);
  std::vector<obs::Event> events = rec.Events(0);
  ASSERT_EQ(events.size(), 8u);
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].cycle, 100u + 12 + i) << "oldest-first order broken at " << i;
    EXPECT_EQ(events[i].arg0, 12 + i);
  }
  // The drop counter is federated into the metrics snapshot, never silent.
  obs::MetricsRegistry registry;
  registry.CollectRecorder(rec);
  ASSERT_EQ(registry.values().count("obs.trace.dropped_events"), 1u);
  EXPECT_EQ(registry.values().at("obs.trace.dropped_events").u, 12u);
}

TEST(FlightRecorder, BelowCapacityDropsNothing) {
  obs::FlightRecorder rec;
  rec.Reset(1, 8);
  for (u32 i = 0; i < 8; ++i) {
    rec.Record(0, i, obs::EventType::kIrqRaise, obs::EventClass::kArch);
  }
  EXPECT_EQ(rec.recorded_events(0), 8u);
  EXPECT_EQ(rec.dropped_events(0), 0u);
  EXPECT_EQ(rec.Events(0).size(), 8u);
}

// --- Profiler sum-exactness (acceptance invariant) ---------------------------

void ExpectProfileSumsExactly(u32 smp) {
  ObservedRun run;
  RunObserved(SmallConfig(smp), &run);
  const obs::CycleProfile& prof = run.profiler;
  ASSERT_TRUE(prof.enabled());
  ASSERT_EQ(prof.num_cpus(), smp);
  u64 grand_total = 0;
  for (u32 c = 0; c < prof.num_cpus(); ++c) {
    u64 sum = 0;
    for (u32 cat = 0; cat < obs::kNumCategories; ++cat) {
      sum += prof.bucket(c, static_cast<obs::Category>(cat));
    }
    // The hard invariant: every retired cycle lands in exactly one bucket.
    EXPECT_EQ(sum, prof.total(c)) << "cycle attribution leaked on vCPU " << c;
    grand_total += prof.total(c);
  }
  EXPECT_EQ(grand_total, prof.TotalAll());
  EXPECT_GT(prof.TotalAll(), 0u);
  // The workload exercises user code, the kernel, and the protected filter,
  // so those buckets must be populated (not everything in one category).
  EXPECT_GT(prof.BucketTotal(obs::Category::kUser), 0u);
  EXPECT_GT(prof.BucketTotal(obs::Category::kKernel), 0u);
  EXPECT_GT(prof.BucketTotal(obs::Category::kFilterBody), 0u);
  EXPECT_GT(prof.BucketTotal(obs::Category::kCrossing), 0u);
  EXPECT_GT(prof.BucketTotal(obs::Category::kIrq), 0u);
}

TEST(CycleProfile, BucketsSumExactlyToTotalUniprocessor) {
  ExpectProfileSumsExactly(1);
}

TEST(CycleProfile, BucketsSumExactlyToTotalSmp4) {
  ExpectProfileSumsExactly(4);
}

// --- Zero perturbation -------------------------------------------------------

// A fully-instrumented run must be indistinguishable, in simulated time,
// from a bare one: same served count, same total cycles, same IRQ counts.
void ExpectObservationIsFree(u32 smp) {
  MultiServerResult bare = RunMultiWorkerServer(SmallConfig(smp));
  ASSERT_TRUE(bare.ok) << bare.diag;
  ObservedRun observed;
  RunObserved(SmallConfig(smp), &observed);
  EXPECT_EQ(observed.result.served, bare.served);
  EXPECT_EQ(observed.result.cycles, bare.cycles);
  EXPECT_EQ(observed.result.nic_irqs, bare.nic_irqs);
  EXPECT_EQ(observed.result.timer_irqs, bare.timer_irqs);
  EXPECT_EQ(observed.result.context_switches, bare.context_switches);
  EXPECT_EQ(observed.result.idle_cycles, bare.idle_cycles);
}

TEST(Observability, ObservationIsFreeUniprocessor) { ExpectObservationIsFree(1); }

TEST(Observability, ObservationIsFreeSmp4) { ExpectObservationIsFree(4); }

// --- Tracer determinism ------------------------------------------------------

// Two identical runs must produce byte-identical event streams — engine
// events included — and identical JSONL exports.
void ExpectRerunIdentical(u32 smp) {
  ObservedRun a;
  ObservedRun b;
  RunObserved(SmallConfig(smp), &a);
  RunObserved(SmallConfig(smp), &b);
  ASSERT_EQ(a.recorder.num_tracks(), b.recorder.num_tracks());
  for (u32 t = 0; t < a.recorder.num_tracks(); ++t) {
    EXPECT_EQ(a.recorder.recorded_events(t), b.recorder.recorded_events(t));
    EXPECT_EQ(a.recorder.dropped_events(t), b.recorder.dropped_events(t));
    EXPECT_EQ(a.recorder.Events(t), b.recorder.Events(t))
        << "event stream diverged on track " << a.recorder.track_name(t);
  }
  EXPECT_EQ(a.recorder.ToJsonl(), b.recorder.ToJsonl());
}

TEST(Observability, RerunByteIdenticalUniprocessor) { ExpectRerunIdentical(1); }

TEST(Observability, RerunByteIdenticalSmp4) { ExpectRerunIdentical(4); }

// The kArch stream is architecturally determined: switching execution
// engines ({blocks, trace, D-TLB} oracles) must not move, add, or drop a
// single architectural event. Engine-class events (trace-tier compiles and
// invalidations) legitimately differ and are excluded by ArchEvents().
void ExpectArchStreamModeInvariant(u32 smp) {
  ObservedRun baseline;
  RunObserved(SmallConfig(smp), &baseline);

  const char* kModes[] = {"PALLADIUM_NO_BLOCKS", "PALLADIUM_NO_TRACE",
                          "PALLADIUM_NO_DTLB"};
  for (const char* mode : kModes) {
    // The engines latch their env switches at machine construction, which
    // happens inside RunMultiWorkerServer — set before, clear after.
    ::setenv(mode, "1", 1);
    ObservedRun oracle;
    RunObserved(SmallConfig(smp), &oracle);
    ::unsetenv(mode);

    ASSERT_EQ(oracle.recorder.num_tracks(), baseline.recorder.num_tracks()) << mode;
    for (u32 t = 0; t < baseline.recorder.num_tracks(); ++t) {
      EXPECT_EQ(oracle.recorder.ArchEvents(t), baseline.recorder.ArchEvents(t))
          << "arch stream diverged under " << mode << " on track "
          << baseline.recorder.track_name(t);
    }
    EXPECT_EQ(oracle.result.served, baseline.result.served) << mode;
    EXPECT_EQ(oracle.result.cycles, baseline.result.cycles) << mode;
  }
}

TEST(Observability, ArchStreamInvariantAcrossEngineModes) {
  ExpectArchStreamModeInvariant(1);
}

TEST(Observability, ArchStreamInvariantAcrossEngineModesSmp4) {
  ExpectArchStreamModeInvariant(4);
}

// --- Metrics federation ------------------------------------------------------

TEST(MetricsRegistry, SnapshotCoversEverySubsystem) {
  ObservedRun run;
  RunObserved(SmallConfig(2), &run);
  const auto& values = run.metrics.values();
  // One spot check per federated subsystem; the naming scheme is
  // <subsystem>[<index>].<group>.<counter> (see README "Observability").
  for (const char* key :
       {"cpu0.cycles", "cpu1.tlb.misses", "sched.idle_cycles",
        "sched.cpu0.context_switches", "nic.rx_frames", "nic.q0.rx_frames",
        "dataplane.delivered", "dataplane.flow_upgrades",
        "kernel.smp.shootdown_ipis", "obs.profile.user", "obs.profile.total_cycles",
        "obs.trace.events", "obs.trace.dropped_events"}) {
    EXPECT_EQ(values.count(key), 1u) << "missing metric " << key;
  }
  const std::string json = run.metrics.SnapshotJson();
  EXPECT_NE(json.find("\"cpu0.cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.profile.user\""), std::string::npos);
}

// The protection-subsystem collectors added for the head-to-head bench:
// each dormant subsystem (kext manager, SFI rewriter, BPF interpreter, RPC
// channel, dynamic linker) federates into the same registry namespace.
TEST(MetricsRegistry, ProtectionCollectorsCoverDormantSubsystems) {
  obs::MetricsRegistry registry;

  // Kext: one load, one invocation, one unload.
  {
    Machine machine;
    Kernel kernel(machine);
    KernelExtensionManager kext(kernel);
    AssembleError aerr;
    auto obj = Assemble(".global f\nf:\n  mov $7, %eax\n  ret\n", &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    std::string diag;
    auto ext = kext.LoadExtension("m", *obj, &diag);
    ASSERT_TRUE(ext.has_value()) << diag;
    auto fid = kext.FindFunction("m:f");
    ASSERT_TRUE(fid.has_value());
    ASSERT_TRUE(kext.Invoke(*fid, 0).ok);
    kext.UnloadExtension(*ext);
    registry.CollectKext(kext);
  }
  // SFI: stats from a real rewrite.
  {
    AssembleError aerr;
    auto obj = Assemble("  st %eax, 0(%ebx)\n  ret\n", &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    SfiOptions opt;
    opt.sandbox_base = 0x00400000;
    opt.sandbox_bits = 20;
    SfiStats stats;
    std::string diag;
    ASSERT_TRUE(SfiRewrite(*obj, opt, &stats, &diag).has_value()) << diag;
    registry.CollectSfi(stats);
  }
  // BPF: one packet through the host interpreter.
  {
    BpfProgram prog({{BpfOp::kRetK, 0, 0, 1}});
    std::string diag;
    ASSERT_TRUE(prog.Validate(&diag)) << diag;
    const u8 pkt[4] = {0, 0, 0, 0};
    BpfHostStats stats;
    BpfInterpretHost(prog, pkt, 4, &stats);
    registry.CollectBpf(stats);
  }
  // RPC: one request-reply transaction.
  {
    LocalRpcChannel rpc;
    rpc.Bind("echo", [](const std::vector<u8>& req) { return req; });
    ASSERT_TRUE(rpc.Call("echo", std::vector<u8>(32, 0xAB)).has_value());
    registry.CollectRpc(rpc);
  }
  // DL: one load, one unload.
  {
    Machine machine;
    Kernel kernel(machine);
    DynamicLinker dl(kernel);
    Pid pid = kernel.CreateProcess();
    ASSERT_NE(pid, 0u);
    AssembleError aerr;
    auto obj = Assemble(".global g\ng:\n  ret\n", &aerr);
    ASSERT_TRUE(obj.has_value()) << aerr.ToString();
    dl.RegisterObject("libg", *obj);
    std::string diag;
    ASSERT_TRUE(dl.LoadLibrary(pid, "libg", false, &diag).has_value()) << diag;
    ASSERT_TRUE(dl.UnloadLibrary(pid, "libg", &diag)) << diag;
    registry.CollectDl(dl);
  }

  const auto& values = registry.values();
  for (const char* key :
       {"kext.loads", "kext.unloads", "kext.invocations", "kext.aborts",
        "kext.invoke_cycles", "sfi.original_insns", "sfi.rewritten_insns",
        "sfi.sandboxed_memory_ops", "sfi.sandboxed_indirect_jumps",
        "sfi.expansion", "bpf.packets", "bpf.insns", "bpf.bad_accesses",
        "rpc.calls", "rpc.bytes_marshalled", "rpc.cycles",
        "rpc.context_switches_per_call", "rpc.domain_crossings_per_call",
        "dl.loads", "dl.unloads"}) {
    EXPECT_EQ(values.count(key), 1u) << "missing metric " << key;
  }
  EXPECT_EQ(values.at("kext.loads").u, 1u);
  EXPECT_EQ(values.at("kext.unloads").u, 1u);
  EXPECT_EQ(values.at("kext.invocations").u, 1u);
  EXPECT_EQ(values.at("kext.aborts").u, 0u);
  EXPECT_GT(values.at("kext.invoke_cycles").u, 0u);
  EXPECT_EQ(values.at("sfi.sandboxed_memory_ops").u, 1u);
  EXPECT_EQ(values.at("bpf.packets").u, 1u);
  EXPECT_EQ(values.at("rpc.calls").u, 1u);
  EXPECT_EQ(values.at("rpc.bytes_marshalled").u, 64u) << "32 B each direction";
  EXPECT_EQ(values.at("dl.loads").u, 1u);
  EXPECT_EQ(values.at("dl.unloads").u, 1u);
}

// Attaching the full telemetry stack must not move a single simulated cycle
// of a protected kext invocation: same return value, same cycle charge.
TEST(Observability, KextInvokeCycleIdenticalWithRecorderAttached) {
  auto run = [](bool observed, u64* invoke_cycles) -> u32 {
    Machine machine;
    Kernel kernel(machine);
    obs::FlightRecorder recorder;
    obs::CycleProfile profiler;
    if (observed) {
      recorder.Reset(machine.num_cpus());
      profiler.Reset(machine.num_cpus(), /*tlb_miss_penalty=*/0);
      kernel.AttachObservability(&recorder, &profiler);
    }
    KernelExtensionManager kext(kernel);
    AssembleError aerr;
    auto obj = Assemble(R"(
  .global f
f:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add $3, %eax
  pop %ebp
  ret
)",
                        &aerr);
    EXPECT_TRUE(obj.has_value()) << aerr.ToString();
    std::string diag;
    auto ext = kext.LoadExtension("m", *obj, &diag);
    EXPECT_TRUE(ext.has_value()) << diag;
    auto fid = kext.FindFunction("m:f");
    EXPECT_TRUE(fid.has_value());
    auto r = kext.Invoke(*fid, 39);
    EXPECT_TRUE(r.ok) << r.error;
    *invoke_cycles = kext.invoke_cycles();
    return r.value;
  };
  u64 bare_cycles = 0, observed_cycles = 0;
  const u32 bare = run(false, &bare_cycles);
  const u32 observed = run(true, &observed_cycles);
  EXPECT_EQ(bare, 42u);
  EXPECT_EQ(observed, bare);
  EXPECT_GT(bare_cycles, 0u);
  EXPECT_EQ(observed_cycles, bare_cycles) << "telemetry perturbed the protected crossing";
}

}  // namespace
}  // namespace palladium
