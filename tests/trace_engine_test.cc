// Hot-trace tier tests: promotion lifecycle (cold -> hot -> lowered ->
// re-promoted after invalidation), the invalidation edges the tier must get
// exactly right — a self-modifying store executing *inside* the hot trace,
// and an SMP remote store retiring the trace's page mid-loop — plus
// lazy-flags exactness at a fault boundary and the engine/env switches.
// Everywhere, the block engine with the tier disabled is the in-binary
// differential oracle: registers, memory, cycles, TLB statistics, fault
// streams must be byte-identical with the tier on or off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/hw/bare_machine.h"
#include "src/hw/smp.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

struct TraceRunResult {
  StopInfo stop;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 tlb_hits = 0;
  u64 dtlb_hits = 0;
  bool dtlb_enabled = false;
  Cpu::TraceStats trace;
};

// Assembles and runs `source` at kCodeBase with the trace tier on or off
// (block engine always on — it is the tier's host) and returns final state.
TraceRunResult RunWithTrace(const std::string& source, bool trace,
                            u64 cycle_limit = 10'000'000) {
  BareMachine bm;
  bm.cpu().set_block_engine_enabled(true);
  bm.cpu().set_trace_engine_enabled(trace);
  std::string diag;
  auto img = bm.LoadProgram(source, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  TraceRunResult r;
  r.stop = bm.Run(cycle_limit);
  r.ctx = bm.cpu().SaveContext();
  r.cycles = bm.cpu().cycles();
  r.instructions = bm.cpu().instructions_retired();
  r.tlb_hits = bm.cpu().tlb_stats().hits;
  r.dtlb_hits = bm.cpu().dtlb_stats().hits;
  r.dtlb_enabled = bm.cpu().dtlb_enabled();
  r.trace = bm.cpu().trace_stats();
  return r;
}

void ExpectSameState(const TraceRunResult& a, const TraceRunResult& b) {
  EXPECT_EQ(a.stop.reason, b.stop.reason);
  EXPECT_EQ(a.cycles, b.cycles) << "cycle model diverged";
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.ctx.eip, b.ctx.eip);
  EXPECT_EQ(a.ctx.eflags, b.ctx.eflags) << "EFLAGS diverged";
  EXPECT_EQ(a.tlb_hits, b.tlb_hits) << "TLB statistics diverged";
  EXPECT_EQ(a.dtlb_hits, b.dtlb_hits) << "D-TLB statistics diverged";
  for (u8 r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(a.ctx.regs[r], b.ctx.regs[r]) << "reg " << static_cast<int>(r);
  }
}

constexpr const char* kHotMemLoop = R"(
  .global main
main:
  mov $1000, %ecx
  mov $0x20000, %ebx
loop:
  st %eax, 0(%ebx)
  ld 0(%ebx), %eax
  push %eax
  pop %edx
  add $3, %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";

// A hot loop is promoted to a micro-op trace, runs nearly all of its
// instructions there, answers its data translations from pins, and keeps
// flags lazy across iterations — while staying byte-identical with the
// block-engine oracle, TLB statistics included.
TEST(TraceEngine, HotLoopPromotesAndElidesProbes) {
  TraceRunResult on = RunWithTrace(kHotMemLoop, /*trace=*/true);
  TraceRunResult off = RunWithTrace(kHotMemLoop, /*trace=*/false);
  EXPECT_EQ(on.stop.reason, StopReason::kHalted);
  ExpectSameState(on, off);

  EXPECT_GE(on.trace.promotions, 1u) << "the loop must have been lowered";
  EXPECT_GE(on.trace.entries, 900u) << "nearly every iteration should enter the trace";
  EXPECT_GT(on.trace.uop_insns, on.instructions / 2)
      << "most instructions should retire as micro-ops";
  // Probe elision rides on D-TLB pins; under the PALLADIUM_NO_DTLB oracle
  // every trace memory access takes the full probe path instead, so the
  // counter must stay at zero there (state and cycles above are already
  // asserted identical either way).
  if (on.dtlb_enabled) {
    EXPECT_GT(on.trace.probes_elided, 3000u)
        << "pinned translations should answer the loop's memory accesses";
  } else {
    EXPECT_EQ(on.trace.probes_elided, 0u)
        << "without the D-TLB there are no pins to elide probes with";
  }
  EXPECT_GE(on.trace.flag_materializations, 1u);
  // Lazy flags: materializations must be rare relative to trace entries —
  // the whole point is NOT computing EFLAGS per iteration.
  EXPECT_LT(on.trace.flag_materializations, on.trace.entries / 4)
      << "flags should stay lazy across in-trace loop iterations";

  EXPECT_EQ(off.trace.promotions, 0u);
  EXPECT_EQ(off.trace.entries, 0u);
  EXPECT_EQ(off.trace.uop_insns, 0u);
  EXPECT_EQ(off.trace.probes_elided, 0u);
}

// Below the hotness threshold nothing is lowered: a short-lived loop runs
// entirely in the block engine.
TEST(TraceEngine, BelowThresholdNeverPromotes) {
  const std::string source = R"(
  .global main
main:
  mov $10, %ecx
loop:
  add $1, %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";
  TraceRunResult on = RunWithTrace(source, /*trace=*/true);
  EXPECT_EQ(on.stop.reason, StopReason::kHalted);
  EXPECT_EQ(on.trace.promotions, 0u) << "10 iterations are below the threshold of 16";
  EXPECT_EQ(on.trace.entries, 0u);
  EXPECT_EQ(on.trace.uop_insns, 0u);
}

// PALLADIUM_NO_TRACE=1 disables the tier at construction, exactly like
// set_trace_engine_enabled(false).
TEST(TraceEngine, EnvSwitchDisablesTraceTier) {
  {
    BareMachine bm;
    EXPECT_TRUE(bm.cpu().trace_engine_enabled()) << "tier defaults to on";
  }
  ::setenv("PALLADIUM_NO_TRACE", "1", 1);
  {
    BareMachine bm;
    EXPECT_FALSE(bm.cpu().trace_engine_enabled());
  }
  ::unsetenv("PALLADIUM_NO_TRACE");
}

// A store executing *inside* the hot trace patches a later instruction of
// the trace's own body. The store must exit the trace at the invalidation
// boundary, the patched bytes must execute on the very same iteration, and
// once the stores move back off the code page the loop must re-heat and be
// promoted a second time.
TEST(TraceEngine, SelfModifyingStoreInsideHotTraceRepromotes) {
  // Body slot `add $1, %ebx` lives at 0x10040; its imm field is at +8.
  const std::string source = R"(
  .global main
main:
  mov $100, %ecx
  mov $0x20000, %esi
  mov $1, %edx
loop:
  st %edx, 0(%esi)
  add $1, %ebx
  dec %ecx
  cmp $25, %ecx
  je fix
  cmp $24, %ecx
  je unfix
  cmp $0, %ecx
  jne loop
  hlt
fix:
  mov $0x10048, %esi
  mov $100, %edx
  jmp loop
unfix:
  mov $0x20000, %esi
  jmp loop
)";
  TraceRunResult on = RunWithTrace(source, /*trace=*/true);
  TraceRunResult off = RunWithTrace(source, /*trace=*/false);
  EXPECT_EQ(on.stop.reason, StopReason::kHalted);
  ExpectSameState(on, off);

  const u32 ebx = on.ctx.regs[static_cast<u8>(Reg::kEbx)];
  EXPECT_GT(ebx, 100u) << "patched +100 increments must have executed";
  EXPECT_EQ((ebx - 100u) % 99u, 0u) << "every patched iteration adds exactly 99 extra";
  EXPECT_GE(on.trace.promotions, 2u)
      << "the loop must re-heat and be lowered again after the self-modify";
}

// An SMP neighbour's store lands on the hot trace's code page mid-loop (via
// the physical-memory write-observer fan-out, since with two vCPUs the
// victim's decode cache is not the sole observer). The victim must pick up
// the new bytes at the same retire boundary as the oracle, preserving the
// deterministic interleave byte-for-byte.
TEST(TraceEngine, SmpRemoteStoreInvalidatesHotTraceMidLoop) {
  constexpr u32 kCpu1Code = kCodeBase + 0x4000;
  auto run = [&](bool trace) {
    BareMachineConfig config;
    config.num_cpus = 2;
    BareMachine bm(config);
    Machine& m = bm.machine();
    for (u32 c = 0; c < 2; ++c) {
      m.cpu(c).set_block_engine_enabled(true);
      m.cpu(c).set_trace_engine_enabled(trace);
    }
    std::string diag;
    // vCPU 0: a hot loop; `add $1, %eax` is slot 1 (0x10010), imm at +8.
    auto img0 = bm.LoadProgram(R"(
  .global main
main:
  mov $1000, %ecx
loop:
  add $1, %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                               kCodeBase, &diag);
    EXPECT_TRUE(img0.has_value()) << diag;
    // vCPU 1: delay long enough for vCPU 0's loop to go hot, then patch
    // vCPU 0's increment from +1 to +7 and halt.
    auto img1 = bm.LoadProgram(R"(
  .global main
main:
  mov $30, %ecx
delay:
  dec %ecx
  cmp $0, %ecx
  jne delay
  mov $7, %edx
  st %edx, 0x10018
  hlt
)",
                               kCpu1Code, &diag);
    EXPECT_TRUE(img1.has_value()) << diag;
    bm.StartCpu(0, *img0->Lookup("main"), 0, kStackTop);
    bm.StartCpu(1, *img1->Lookup("main"), 0, kStackTop - 0x2000);

    SmpInterleaver il(m);
    il.Run(10'000'000, [&](u32, const StopInfo& stop) {
      EXPECT_EQ(stop.reason, StopReason::kHalted);
      return false;
    });
    struct SmpResult {
      CpuContext ctx0, ctx1;
      u64 cycles0, cycles1, insns0;
      Cpu::TraceStats trace0;
    } r{m.cpu(0).SaveContext(), m.cpu(1).SaveContext(), m.cpu(0).cycles(),
        m.cpu(1).cycles(),      m.cpu(0).instructions_retired(),
        m.cpu(0).trace_stats()};
    return r;
  };

  auto on = run(/*trace=*/true);
  auto off = run(/*trace=*/false);
  const u32 eax = on.ctx0.regs[static_cast<u8>(Reg::kEax)];
  EXPECT_GT(eax, 1000u) << "patched +7 increments must have executed";
  EXPECT_EQ((eax - 1000u) % 6u, 0u) << "every patched iteration adds exactly 6 extra";
  EXPECT_GE(on.trace0.promotions, 1u) << "the victim loop must have been hot";
  for (u8 r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(on.ctx0.regs[r], off.ctx0.regs[r]) << "vcpu0 reg " << static_cast<int>(r);
    EXPECT_EQ(on.ctx1.regs[r], off.ctx1.regs[r]) << "vcpu1 reg " << static_cast<int>(r);
  }
  EXPECT_EQ(on.cycles0, off.cycles0) << "interleave diverged";
  EXPECT_EQ(on.cycles1, off.cycles1);
  EXPECT_EQ(on.insns0, off.insns0);
}

// A page fault raised by a memory uop mid-trace must deliver the exact
// architectural EFLAGS even though the flag producers before it executed
// lazily: the trace's fault exit materializes the pending flags cache.
TEST(TraceEngine, LazyFlagsExactAtFaultBoundary) {
  // Stores march toward the end of identity-mapped memory (16 MiB) in a hot
  // loop; iteration ~256 faults on the first unmapped page, long after
  // promotion. The last flag write before the faulting store is the `add`
  // of the same iteration, held lazy in the flags cache.
  const std::string source = R"(
  .global main
main:
  mov $0xFFF000, %esi
  mov $5000, %ecx
loop:
  add $3, %eax
  st %eax, 0(%esi)
  add $16, %esi
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";
  TraceRunResult on = RunWithTrace(source, /*trace=*/true);
  TraceRunResult off = RunWithTrace(source, /*trace=*/false);
  ASSERT_EQ(on.stop.reason, StopReason::kFault);
  ASSERT_EQ(off.stop.reason, StopReason::kFault);
  EXPECT_EQ(on.stop.fault.vector, off.stop.fault.vector);
  EXPECT_EQ(on.stop.fault.error_code, off.stop.fault.error_code);
  EXPECT_EQ(on.stop.fault.linear_address, off.stop.fault.linear_address);
  ExpectSameState(on, off);
  EXPECT_GE(on.trace.promotions, 1u) << "the loop must have faulted while hot";
  EXPECT_GE(on.trace.flag_materializations, 1u)
      << "the fault exit must have materialized lazy flags";
}

}  // namespace
}  // namespace palladium
