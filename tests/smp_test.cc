// SMP machine tests: IPI delivery and priority against device IRQs, the
// exactness of the cross-CPU TLB/D-TLB shootdown protocol (and a negative
// control showing what a *forgotten* shootdown would permit), cross-CPU
// self-modifying-code coherence through the fanned-out write observer,
// work-stealing fairness in the per-CPU scheduler, RSS flow steering, and
// the containment story: a hostile kernel extension invoked from CPU 1 is
// killed by that core's timer watchdog while CPU 0's packet traffic keeps
// flowing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/kernel_ext.h"
#include "src/hw/bare_machine.h"
#include "src/hw/nic.h"
#include "src/hw/paging.h"
#include "src/hw/smp.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

// --- Machine / interleaver basics --------------------------------------------

TEST(Smp, MachineBuildsIndependentVcpusOverSharedMemory) {
  MachineConfig cfg;
  cfg.num_cpus = 4;
  Machine m(cfg);
  ASSERT_EQ(m.num_cpus(), 4u);
  for (u32 c = 0; c < 4; ++c) {
    m.cpu(c).set_reg(Reg::kEax, 100 + c);
  }
  for (u32 c = 0; c < 4; ++c) {
    EXPECT_EQ(m.cpu(c).reg(Reg::kEax), 100 + c) << "per-vCPU register state leaked";
  }
  m.set_current_cpu(2);
  EXPECT_EQ(m.cpu().reg(Reg::kEax), 102u) << "cpu() must follow the current index";
  // Out-of-range switches are ignored, never UB.
  m.set_current_cpu(17);
  EXPECT_EQ(m.current_cpu_index(), 2u);
}

// --- IPI delivery and priority ------------------------------------------------

TEST(Smp, IpiOutranksDeviceIrqAndDeliversOnTargetCore) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  k.EnableTimerInterrupts();

  std::vector<u32> order;
  k.RegisterIrqHandler(kIrqIpiShootdown, [&](Kernel&) { order.push_back(kIrqIpiShootdown); });
  k.RegisterIrqHandler(kIrqNic, [&](Kernel&) { order.push_back(kIrqNic); });

  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $2000, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;

  // Latch a device line and an IPI on CPU 1's local PIC before anything
  // runs there; the IPI (lower line number) must be serviced first.
  k.pic(1).Raise(kIrqNic);
  k.SendIpi(1, kIrqIpiShootdown);
  EXPECT_EQ(k.smp_stats().ipis_received, 0u);

  f.machine().set_current_cpu(1);
  RunResult r = k.RunProcess(pid, 10'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);

  ASSERT_GE(order.size(), 2u) << "both the IPI and the device IRQ must have been serviced";
  EXPECT_EQ(order[0], kIrqIpiShootdown) << "IPIs must outrank device interrupts";
  EXPECT_EQ(order[1], kIrqNic);
  EXPECT_GE(k.smp_stats().ipis_received, 1u);
  EXPECT_GE(k.pic(1).delivered(kIrqIpiShootdown), 1u) << "delivery happened on CPU 1's PIC";
  EXPECT_EQ(k.pic(0).delivered(kIrqIpiShootdown), 0u) << "CPU 0 must not see CPU 1's IPI";
}

// --- Shootdown exactness --------------------------------------------------------

// CPU 1 (CPL 3) stores to a page in a tight loop, priming its TLB and D-TLB;
// at a scripted cycle the host write-protects the page the way the kernel
// editor hook does — flushing the page on EVERY core. The very next store on
// CPU 1 must fault, with an identical fault point whether the D-TLB fast
// path is on or off.
struct ShootdownResult {
  bool faulted = false;
  u32 fault_eip = 0;
  u32 fault_linear = 0;
  u64 fault_cycle = 0;
  u32 final_value = 0;
};

ShootdownResult RunShootdownScenario(bool dtlb, bool flush_remote) {
  constexpr u32 kTarget = 0x300000;
  BareMachineConfig cfg;
  cfg.num_cpus = 2;
  BareMachine bm(cfg);
  Machine& m = bm.machine();
  for (u32 c = 0; c < 2; ++c) m.cpu(c).set_dtlb_enabled(dtlb);

  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $0x300000, %ebx
  mov $0, %eax
loop:
  add $1, %eax
  st %eax, 0(%ebx)
  jmp loop
)",
                            0x10000, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  bm.StartCpu(1, *img->Lookup("main"), /*cpl=*/3, 0x80000);

  SmpInterleaver il(m);
  il.Park(0);  // CPU 0 has no program; CPU 1 is the victim core
  il.AddEvent(3'000, [&] {
    // The kernel's shootdown protocol, by hand: edit the PTE, then INVLPG
    // on the initiator (CPU 0, host-side here) and — iff the protocol is
    // honoured — on the remote core too.
    PageTableEditor ed(bm.pm(), m.cpu(0).cr3(), [&](u32 linear) {
      m.cpu(0).tlb().FlushPage(linear);
      if (flush_remote) m.cpu(1).tlb().FlushPage(linear);
    });
    EXPECT_TRUE(ed.UpdateFlags(kTarget, 0, kPteWrite));
  });

  ShootdownResult out;
  il.Run(40'000, [&](u32 c, const StopInfo& stop) {
    EXPECT_EQ(c, 1u);
    if (stop.reason == StopReason::kFault) {
      out.faulted = true;
      out.fault_eip = m.cpu(1).eip();
      out.fault_linear = stop.fault.linear_address;
      out.fault_cycle = m.cpu(1).cycles();
      return false;  // park: the scenario is over
    }
    return false;
  });
  bm.pm().Read32(kTarget, &out.final_value);
  return out;
}

TEST(Smp, RemotePteEditShootsDownStaleTlbAndDtlb) {
  ShootdownResult fast = RunShootdownScenario(/*dtlb=*/true, /*flush_remote=*/true);
  ShootdownResult slow = RunShootdownScenario(/*dtlb=*/false, /*flush_remote=*/true);
  ASSERT_TRUE(fast.faulted) << "the store after the shootdown must fault";
  ASSERT_TRUE(slow.faulted);
  EXPECT_EQ(fast.fault_eip, slow.fault_eip) << "fast path faulted at a different point";
  EXPECT_EQ(fast.fault_cycle, slow.fault_cycle);
  EXPECT_EQ(fast.fault_linear, 0x300000u);
  // The faulting store is the first one after the event fired at cycle 3000:
  // no stale window where a write still lands.
  EXPECT_LT(fast.fault_cycle, 3'100u) << "the remote core kept a stale entry for a while";
  EXPECT_EQ(fast.final_value, slow.final_value) << "memory image diverged";
}

TEST(Smp, ForgottenShootdownWouldLeaveStaleEntries) {
  // Negative control: flush only the initiating core and the remote CPU
  // keeps writing through its stale TLB/D-TLB entry for the rest of the run
  // — this is exactly the hole the shootdown protocol closes.
  ShootdownResult leaky = RunShootdownScenario(/*dtlb=*/true, /*flush_remote=*/false);
  EXPECT_FALSE(leaky.faulted) << "without a shootdown the stale entry persists";
  EXPECT_GT(leaky.final_value, 100u) << "stores must have kept landing through the stale entry";
}

TEST(Smp, KernelEditorBroadcastsOnlyToCoresOnTheAddressSpace) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  k.EnableTimerInterrupts();
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  Process* proc = k.process(pid);
  ASSERT_NE(proc, nullptr);
  ASSERT_TRUE(k.PopulateRange(*proc, kUserTextBase, kUserTextBase + kPageSize));

  // No core has this CR3 loaded: a user-range PTE edit stays local.
  const u64 pages_before = k.smp_stats().shootdown_pages;
  ASSERT_TRUE(k.SetPageWritable(*proc, kUserTextBase, false));
  EXPECT_EQ(k.smp_stats().shootdown_pages, pages_before)
      << "no remote core could cache this translation";

  // CPU 1 runs the address space: now the same edit must broadcast.
  f.machine().cpu(1).LoadCr3(proc->cr3);
  ASSERT_TRUE(k.SetPageWritable(*proc, kUserTextBase, true));
  EXPECT_EQ(k.smp_stats().shootdown_pages, pages_before + 1);
  EXPECT_GE(k.pic(1).raised(kIrqIpiShootdown), 1u) << "shootdown IPI latched on CPU 1";
  EXPECT_EQ(k.pic(0).raised(kIrqIpiShootdown), 0u);
}

// --- Cross-CPU self-modifying code ---------------------------------------------

// CPU 1 overwrites an instruction in CPU 0's (already decoded) text; the
// write-observer fan-out must kill CPU 0's decoded page so it executes the
// new bytes — identically in all four fast/slow configurations.
TEST(Smp, CrossCpuCodeWriteInvalidatesEveryDecodeCache) {
  constexpr u32 kCpu0Base = 0x10000;
  constexpr u32 kCpu1Base = 0x40000;
  constexpr u32 kAdds = 1000;
  constexpr u32 kPatchIndex = 600;  // instruction slot CPU 1 rewrites to hlt

  u64 ref_cycles0 = 0, ref_cycles1 = 0;
  bool have_ref = false;
  for (bool decode : {true, false}) {
    for (bool dtlb : {true, false}) {
      BareMachineConfig cfg;
      cfg.num_cpus = 2;
      BareMachine bm(cfg);
      Machine& m = bm.machine();
      for (u32 c = 0; c < 2; ++c) {
        m.cpu(c).set_decode_cache_enabled(decode);
        m.cpu(c).set_dtlb_enabled(dtlb);
      }

      // CPU 0: mov ebx,0 ; add ebx,1 x kAdds ; hlt.
      std::vector<Insn> prog0;
      Insn mov;
      mov.opcode = Opcode::kMovRI;
      mov.r1 = static_cast<u8>(Reg::kEbx);
      mov.imm = 0;
      prog0.push_back(mov);
      for (u32 i = 0; i < kAdds; ++i) {
        Insn add;
        add.opcode = Opcode::kAddRI;
        add.r1 = static_cast<u8>(Reg::kEbx);
        add.imm = 1;
        prog0.push_back(add);
      }
      Insn hlt;
      hlt.opcode = Opcode::kHlt;
      prog0.push_back(hlt);
      std::vector<u8> bytes0(prog0.size() * kInsnSize);
      for (size_t i = 0; i < prog0.size(); ++i) prog0[i].EncodeTo(bytes0.data() + i * kInsnSize);
      ASSERT_TRUE(bm.pm().WriteBlock(kCpu0Base, bytes0.data(), static_cast<u32>(bytes0.size())));

      // CPU 1: store the encoding of `hlt` over CPU 0's slot kPatchIndex,
      // then halt itself.
      u8 patch[kInsnSize];
      hlt.EncodeTo(patch);
      std::vector<Insn> prog1;
      for (u32 w = 0; w < kInsnSize / 4; ++w) {
        u32 word = 0;
        std::memcpy(&word, patch + w * 4, 4);
        Insn st;
        st.opcode = Opcode::kStoreI;
        st.r2 = kNoBaseReg;
        st.size = 4;
        st.imm = static_cast<i32>(word);
        st.disp = static_cast<i32>(kCpu0Base + kPatchIndex * kInsnSize + w * 4);
        prog1.push_back(st);
      }
      prog1.push_back(hlt);
      std::vector<u8> bytes1(prog1.size() * kInsnSize);
      for (size_t i = 0; i < prog1.size(); ++i) prog1[i].EncodeTo(bytes1.data() + i * kInsnSize);
      ASSERT_TRUE(bm.pm().WriteBlock(kCpu1Base, bytes1.data(), static_cast<u32>(bytes1.size())));

      bm.StartCpu(0, kCpu0Base, 0, 0x80000);
      bm.StartCpu(1, kCpu1Base, 0, 0x7E000);

      SmpInterleaver il(m);
      il.Run(10'000'000, [&](u32, const StopInfo& stop) {
        EXPECT_EQ(stop.reason, StopReason::kHalted);
        return false;
      });

      SCOPED_TRACE(std::string("decode=") + (decode ? "on" : "off") + " dtlb=" +
                   (dtlb ? "on" : "off"));
      // CPU 1's stores land (deterministically) while CPU 0 is still well
      // below the patched slot, so CPU 0 executes adds 1..kPatchIndex-1 and
      // then the freshly written hlt — never the stale decoded add.
      EXPECT_EQ(m.cpu(0).reg(Reg::kEbx), kPatchIndex - 1)
          << "CPU 0 executed a stale decoded instruction";
      if (!have_ref) {
        have_ref = true;
        ref_cycles0 = m.cpu(0).cycles();
        ref_cycles1 = m.cpu(1).cycles();
      } else {
        EXPECT_EQ(m.cpu(0).cycles(), ref_cycles0) << "cycle model diverged across modes";
        EXPECT_EQ(m.cpu(1).cycles(), ref_cycles1);
      }
    }
  }
}

// --- Work stealing ---------------------------------------------------------------

TEST(Smp, WorkStealingSpreadsAQueueLoadedOnOneCore) {
  KernelFixture f(/*num_cpus=*/4);
  Scheduler::Config scfg;
  scfg.slice_cycles = 50'000;
  Scheduler sched(f.kernel(), scfg);

  std::string diag;
  constexpr u32 kProcs = 8;
  for (u32 i = 0; i < kProcs; ++i) {
    Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $60000, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  mov $SYS_EXIT, %eax
  mov $7, %ebx
  int $0x80
)",
                            &diag);
    ASSERT_NE(pid, 0u) << diag;
    // Everything lands on CPU 0's queue; the other cores must steal.
    sched.AddProcess(pid, /*home_cpu=*/0);
  }

  auto result = sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, kProcs);
  EXPECT_EQ(result.killed, 0u);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GE(sched.stats().steals, 3u) << "idle cores must have stolen from CPU 0";
  u32 cores_used = 0;
  for (u32 c = 0; c < 4; ++c) {
    if (sched.cpu_stats(c).context_switches > 0) ++cores_used;
  }
  EXPECT_GE(cores_used, 3u) << "the load stayed on too few cores";
  // Parallelism: 8 CPU-bound processes of ~240k cycles each must finish in
  // well under the serial sum on 4 cores.
  EXPECT_LT(result.cycles, 8u * 240'000u) << "no wall-clock (simulated) speedup";
}

// --- RSS flow steering -----------------------------------------------------------

TEST(Smp, FlowHashIsStableAndSpreadsClients) {
  auto frame_for = [](u32 client) {
    PacketSpec spec;
    spec.proto = kIpProtoTcp;
    spec.src_ip = 0x0A000100u + client;
    spec.src_port = static_cast<u16>(1024 + client);
    spec.dst_ip = 0x0A000001u;
    spec.dst_port = 80;
    return BuildPacket(spec);
  };
  std::vector<u32> hit(4, 0);
  for (u32 client = 0; client < 16; ++client) {
    const u32 h1 = PacketDataplane::FlowHash(frame_for(client));
    const u32 h2 = PacketDataplane::FlowHash(frame_for(client));
    EXPECT_EQ(h1, h2) << "a flow's hash must be stable (frames of one flow stick together)";
    ++hit[h1 % 4];
  }
  u32 used = 0;
  for (u32 n : hit) used += n > 0 ? 1 : 0;
  EXPECT_GE(used, 3u) << "16 clients must spread across (nearly) all of 4 workers";
}

// --- RPS: deferred classification in worker context -------------------------------

// With Config::rps the NIC IRQ only queues raw frames; the protected filter
// runs inside the consuming workers' pkt_recv — on *their* vCPUs. Every
// frame must still be classified exactly once, delivered, echoed, and the
// shutdown flush must account for whatever is still sitting in the backlog.
TEST(Smp, RpsClassifiesInWorkerContextAndLosesNothing) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  Scheduler sched(k);
  KernelExtensionManager kext(k);

  std::string diag;
  auto img = AssembleAndLink(kPktEchoWorkerSource, kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  std::vector<Pid> workers;
  for (u32 w = 0; w < 2; ++w) {
    Pid pid = k.CreateProcess();
    ASSERT_NE(pid, 0u);
    ASSERT_TRUE(k.LoadUserImage(pid, *img, "main", &diag)) << diag;
    workers.push_back(pid);
    sched.AddProcess(pid, /*home_cpu=*/w);
  }

  Nic nic(f.machine().pm(), k.pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.rps = true;
  PacketDataplane dataplane(k, kext, nic, dcfg);
  ASSERT_TRUE(dataplane.AddFlow("tcp", "ip.proto == 6", workers, &diag)) << diag;

  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.payload_len = 32;
  auto frame = BuildPacket(spec);
  constexpr u32 kTotal = 40;
  u64 at = 4'000;
  for (u32 i = 0; i < kTotal; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 3'000;
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&] {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  auto result = sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 2u);
  EXPECT_EQ(dataplane.stats().rx_frames, kTotal);
  EXPECT_EQ(dataplane.stats().filter_invocations, kTotal) << "every frame classified once";
  EXPECT_GT(dataplane.stats().rps_deferred, 0u) << "classification must have been deferred";
  EXPECT_EQ(dataplane.stats().rps_deferred, kTotal)
      << "in RPS mode no frame is classified in IRQ context";
  EXPECT_EQ(dataplane.stats().tx_frames, kTotal) << "every frame echoed";
  EXPECT_EQ(dataplane.stats().dropped_backlog_full, 0u);
  u64 served = 0;
  for (Pid pid : workers) served += static_cast<u64>(k.process(pid)->exit_code);
  EXPECT_EQ(served, static_cast<u64>(kTotal));
}

TEST(Smp, RpsBacklogOverflowDropsCheaplyWithoutStalling) {
  // A backlog cap of 4 against a burst of frames: the overflow is dropped
  // *before* any filter runs (cheap), everything that fit is still served,
  // and the machine drains cleanly.
  KernelFixture f(/*num_cpus=*/1);
  Kernel& k = f.kernel();
  Scheduler sched(k);
  KernelExtensionManager kext(k);

  std::string diag;
  auto img = AssembleAndLink(kPktEchoWorkerSource, kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid worker = k.CreateProcess();
  ASSERT_NE(worker, 0u);
  ASSERT_TRUE(k.LoadUserImage(worker, *img, "main", &diag)) << diag;
  sched.AddProcess(worker);

  Nic nic(f.machine().pm(), k.pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.rps = true;
  dcfg.backlog_limit = 4;
  PacketDataplane dataplane(k, kext, nic, dcfg);
  ASSERT_TRUE(dataplane.AddFlow("tcp", "ip.proto == 6", {worker}, &diag)) << diag;

  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.payload_len = 16;
  auto frame = BuildPacket(spec);
  constexpr u32 kTotal = 16;
  for (u32 i = 0; i < kTotal; ++i) {
    // One burst: all frames hit the ring (and then the backlog) before the
    // worker gets to run.
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), 4'000 + i);
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&] {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  auto result = sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);
  const auto& stats = dataplane.stats();
  EXPECT_GT(stats.dropped_backlog_full, 0u) << "the burst must have overflowed the cap";
  EXPECT_EQ(stats.filter_frames + stats.dropped_backlog_full, kTotal)
      << "dropped frames never reached a filter; the rest were classified once";
  EXPECT_EQ(stats.tx_frames, stats.filter_frames) << "everything classified was served";
}

// --- Hostile kext on CPU 1, traffic on CPU 0 -------------------------------------

TEST(Smp, HostileKextOnCpu1DiesWhileCpu0TrafficContinues) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  Scheduler::Config scfg;
  scfg.slice_cycles = 60'000;
  Scheduler sched(k, scfg);
  KernelExtensionManager kext(k);

  // The hostile extension: loops forever; its per-invocation CPU-time cap
  // makes the *local* (CPU 1) timer watchdog the kill mechanism.
  AssembleError aerr;
  auto hostile_obj = Assemble(R"(
  .global spin
spin:
  mov $0, %eax
forever:
  add $1, %eax
  jmp forever
  .data
  .global pd_shared
pd_shared:
  .space 64
)",
                              &aerr);
  ASSERT_TRUE(hostile_obj.has_value()) << aerr.ToString();
  std::string diag;
  KextOptions opts;
  opts.cycle_limit = 400'000;
  auto ext = kext.LoadExtension("hostile", *hostile_obj, &diag, opts);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = kext.FindFunction("hostile:spin");
  ASSERT_TRUE(fid.has_value());

  // Worker echoing packets (home CPU 0), invoker of the hostile extension
  // (home CPU 1).
  auto img = AssembleAndLink(kPktEchoWorkerSource, kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid worker = k.CreateProcess();
  ASSERT_NE(worker, 0u);
  ASSERT_TRUE(k.LoadUserImage(worker, *img, "main", &diag)) << diag;
  sched.AddProcess(worker, /*home_cpu=*/0);

  Pid hostile = f.LoadProgram(R"(
  .global main
main:
  mov $SYS_INVOKE_KEXT, %eax
  mov $)" + std::to_string(*fid) +
                                  R"(, %ebx
  mov $0, %ecx
  int $0x80
  mov %eax, %ebx          ; exit code = invoke result (kErrFault on abort)
  mov $SYS_EXIT, %eax
  int $0x80
)",
                              &diag);
  ASSERT_NE(hostile, 0u) << diag;
  sched.AddProcess(hostile, /*home_cpu=*/1);

  Nic nic(f.machine().pm(), k.pic(), kIrqNic);
  PacketDataplane dataplane(k, kext, nic);
  ASSERT_TRUE(dataplane.AddFlow("tcp", "ip.proto == 6", {worker}, &diag)) << diag;

  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.payload_len = 32;
  auto frame = BuildPacket(spec);
  constexpr u32 kTotal = 24;
  u64 at = 4'000;
  for (u32 i = 0; i < kTotal; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 60'000;  // the stream spans the hostile invocation's whole lifetime
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&] {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  auto result = sched.RunAll(4'000'000'000ull);
  EXPECT_EQ(result.exited, 2u) << "both processes must finish";
  EXPECT_EQ(result.killed, 0u);

  // The hostile invocation died under the watchdog and its caller saw the
  // error, while every frame crossed CPU 0's dataplane.
  const auto* est = kext.extension(*ext);
  ASSERT_NE(est, nullptr);
  EXPECT_TRUE(est->aborted) << "the watchdog must have aborted the looping extension";
  EXPECT_EQ(k.process(hostile)->exit_code, static_cast<i32>(kErrFault));
  EXPECT_EQ(dataplane.stats().tx_frames, kTotal) << "CPU 0's traffic must not have stalled";
  EXPECT_EQ(static_cast<u64>(k.process(worker)->exit_code), static_cast<u64>(kTotal));
}

// --- Threaded SMP: staged cross-CPU delivery -----------------------------------

// Mid-epoch staged TLB shootdown: work staged from one vCPU's thread while
// the epoch is in flight must be applied to the sibling no later than the
// next epoch barrier — the delivery contract ThreadedSmp promises.
TEST(ThreadedSmp, MidEpochStagedShootdownLandsByNextBarrier) {
  constexpr u32 kTarget = 0x301000;
  BareMachineConfig cfg;
  cfg.num_cpus = 2;
  BareMachine bm(cfg);
  Machine& m = bm.machine();

  std::string diag;
  // CPU 1: endless store loop on kTarget, priming its TLB entry every epoch.
  auto img1 = bm.LoadProgram(R"(
  .global main
main:
  mov $0x301000, %ebx
  mov $0, %eax
loop:
  add $1, %eax
  st %eax, 0(%ebx)
  jmp loop
)",
                             0x40000, &diag);
  ASSERT_TRUE(img1.has_value()) << diag;
  bm.StartCpu(1, *img1->Lookup("main"), /*cpl=*/3, 0x80000);

  // CPU 0: a short spin that halts mid-first-epoch — its stop handler runs
  // on CPU 0's own host thread while CPU 1 is still executing its epoch.
  auto img0 = bm.LoadProgram(R"(
  .global main
main:
  mov $40, %ecx
spin:
  dec %ecx
  cmp $0, %ecx
  jne spin
  hlt
)",
                             0x10000, &diag);
  ASSERT_TRUE(img0.has_value()) << diag;
  bm.StartCpu(0, *img0->Lookup("main"), /*cpl=*/0, 0x7C000);

  ThreadedSmp ts(m, /*epoch_cycles=*/4096);
  std::atomic<bool> staged{false};
  std::atomic<bool> delivered{false};
  std::atomic<bool> checked{false};
  std::atomic<u64> count_at_stage{0};
  ts.set_barrier_hook([&](u64) {
    if (!staged.load() || checked.load()) return;
    // First barrier after the mid-epoch stage. The drain precedes the hook
    // in the serial window, so the flush must already have been applied:
    // "delivered no later than the next barrier".
    EXPECT_TRUE(delivered.load()) << "staged work not drained by the next barrier";
    EXPECT_GT(m.cpu(1).tlb().change_count(), count_at_stage.load())
        << "victim's invalidation counter must have advanced";
    u32 frame = 0, flags = 0;
    EXPECT_FALSE(m.cpu(1).tlb().Lookup(kTarget, &frame, &flags))
        << "victim still holds the shot-down translation";
    checked.store(true);
  });
  ts.Run(120'000, [&](u32 c, const StopInfo& stop) {
    if (c == 0 && stop.reason == StopReason::kHalted && !staged.load()) {
      // Mid-epoch, on CPU 0's thread: sibling TLB entries must NOT be
      // touched from here — stage the invalidation instead. Polling the
      // sibling's atomic change counter is the one sanctioned cross-thread
      // read (src/hw/tlb.h).
      count_at_stage.store(m.cpu(1).tlb().change_count());
      ts.StageRemoteWork(1, [&](Cpu& target) {
        u32 frame = 0, flags = 0;
        EXPECT_TRUE(target.tlb().Lookup(kTarget, &frame, &flags))
            << "victim TLB was never primed — the scenario is vacuous";
        target.tlb().FlushPage(kTarget);
        delivered.store(true);
      });
      staged.store(true);
    }
    return false;  // park on any stop (CPU 1 just runs out the cycle limit)
  });
  EXPECT_TRUE(staged.load()) << "CPU 0 never reached its halt";
  EXPECT_TRUE(checked.load()) << "no barrier followed the staged work";
}

// Kernel-level staging (Kernel::set_stage_remote_ops): with staging on, the
// remote half of a shootdown — sibling TLB flush and the shootdown IPI — is
// queued per target instead of applied synchronously, and DrainRemoteOps
// applies it as-if on the target core. Local effects stay synchronous.
TEST(ThreadedSmp, KernelStagesRemoteShootdownAndIpiUntilDrain) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  k.EnableTimerInterrupts();
  Machine& m = f.machine();
  m.set_current_cpu(0);

  k.set_stage_remote_ops(true);
  const u64 cc0 = m.cpu(0).tlb().change_count();
  const u64 cc1 = m.cpu(1).tlb().change_count();
  // Kernel-range page: every remote core can cache the translation.
  k.ShootdownPage(m.cpu(0).cr3(), kKernelBase + 0x5000);

  EXPECT_EQ(m.cpu(0).tlb().change_count(), cc0 + 1)
      << "the initiator's own INVLPG stays synchronous";
  EXPECT_EQ(m.cpu(1).tlb().change_count(), cc1)
      << "the sibling must not be touched mid-epoch";
  EXPECT_EQ(k.staged_remote_ops(1), 2u) << "flush + IPI staged for CPU 1";
  EXPECT_EQ(k.pic(1).raised(kIrqIpiShootdown), 0u) << "IPI must not be latched yet";

  // The quiesced barrier window drains the target's queue.
  EXPECT_EQ(k.DrainRemoteOps(1), 2u);
  EXPECT_EQ(m.cpu(1).tlb().change_count(), cc1 + 1);
  EXPECT_GE(k.pic(1).raised(kIrqIpiShootdown), 1u) << "IPI latched on the target's PIC";
  EXPECT_EQ(k.staged_remote_ops(1), 0u);
  EXPECT_EQ(k.DrainRemoteOps(1), 0u) << "drain must be idempotent";
}

// Cross-queue scheduler wakeups stage the same way: OnWake from a foreign
// vCPU queues a kWake op (deduping repeats) and the drain enqueues the
// process on its home CPU, which then runs it normally.
TEST(ThreadedSmp, StagedCrossCpuWakeEnqueuesOnDrain) {
  KernelFixture f(/*num_cpus=*/2);
  Kernel& k = f.kernel();
  Scheduler::Config scfg;
  scfg.work_stealing = false;  // keep the wakee on its home queue so the
                               // "ran on CPU 1" assertion below is meaningful
  Scheduler sched(k, scfg);
  std::string diag;
  Pid pid = f.LoadProgram(R"(
  .global main
main:
  mov $SYS_EXIT, %eax
  mov $7, %ebx
  int $0x80
)",
                          &diag);
  ASSERT_NE(pid, 0u) << diag;
  Process* proc = k.process(pid);
  ASSERT_NE(proc, nullptr);
  proc->home_cpu = 1;

  k.set_stage_remote_ops(true);
  f.machine().set_current_cpu(0);
  sched.OnWake(pid);  // cross-CPU wake from CPU 0 toward home CPU 1
  EXPECT_EQ(k.staged_remote_ops(1), 1u);
  EXPECT_TRUE(proc->sched_queued) << "staged wake must mark the process queued";
  sched.OnWake(pid);  // repeat wakes dedupe against sched_queued
  EXPECT_EQ(k.staged_remote_ops(1), 1u);

  EXPECT_EQ(k.DrainRemoteOps(1), 1u);
  k.set_stage_remote_ops(false);
  auto result = sched.RunAll(50'000'000);
  EXPECT_EQ(result.exited, 1u) << "the drained wake must have made the process runnable";
  EXPECT_EQ(k.process(pid)->exit_code, 7);
  EXPECT_GE(sched.cpu_stats(1).context_switches, 1u) << "it must have run on its home CPU";
}

}  // namespace
}  // namespace palladium
