// Kernel-extension mechanism tests (paper Section 4.3): loading into SPL 1
// segments, protected invocation, confinement by segment limits and DPL
// checks, kernel services, shared data areas, multi-module segments, and
// asynchronous extensions.
#include <gtest/gtest.h>

#include "src/core/kernel_ext.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

class KextFixture : public ::testing::Test {
 protected:
  KextFixture() : kernel_(machine_), kext_(kernel_) {}

  u32 MustLoad(const std::string& name, const std::string& source,
               KextOptions options = KextOptions{}) {
    AssembleError aerr;
    auto obj = Assemble(AbiPrelude() + source, &aerr);
    EXPECT_TRUE(obj.has_value()) << aerr.ToString();
    std::string diag;
    auto id = kext_.LoadExtension(name, *obj, &diag, options);
    EXPECT_TRUE(id.has_value()) << diag;
    return id.value_or(0);
  }

  u32 Fn(const std::string& name) {
    auto id = kext_.FindFunction(name);
    EXPECT_TRUE(id.has_value()) << "no EFT entry: " << name;
    return id.value_or(0);
  }

  Machine machine_;
  Kernel kernel_;
  KernelExtensionManager kext_;
};

TEST_F(KextFixture, InvokeReturnsValue) {
  MustLoad("add", R"(
  .global add1
add1:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add $1, %eax
  pop %ebp
  ret
)");
  auto r = kext_.Invoke(Fn("add:add1"), 41);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 42u);
  EXPECT_GT(r.cycles, 0u);
}

TEST_F(KextFixture, ExtensionUsesItsOwnData) {
  MustLoad("stateful", R"(
  .global bump
bump:
  ld counter, %eax
  add $1, %eax
  st %eax, counter
  ret
  .data
counter:
  .long 100
)");
  u32 f = Fn("bump");
  EXPECT_EQ(kext_.Invoke(f, 0).value, 101u);
  EXPECT_EQ(kext_.Invoke(f, 0).value, 102u);
  EXPECT_EQ(kext_.Invoke(f, 0).value, 103u);
}

TEST_F(KextFixture, SegmentLimitConfinesExtension) {
  // The segment is 1 MB; an access beyond the limit must fault and abort the
  // extension while the kernel survives (the paper's core safety claim).
  MustLoad("bad", R"(
  .global escape
escape:
  mov $0x00200000, %ebx    ; 2 MB: outside the 1 MB segment
  ld 0(%ebx), %eax
  ret
)");
  auto r = kext_.Invoke(Fn("escape"), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("#GP"), std::string::npos);
  EXPECT_TRUE(kext_.extension(1)->aborted);
  // Subsequent invocations of the aborted extension are refused.
  auto r2 = kext_.Invoke(Fn("escape"), 0);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("aborted"), std::string::npos);
}

TEST_F(KextFixture, JumpBeyondLimitFaults) {
  MustLoad("jmp_out", R"(
  .global jump_away
jump_away:
  mov $0x00300000, %eax
  jmp *%eax
)");
  auto r = kext_.Invoke(Fn("jump_away"), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("#GP"), std::string::npos);
}

TEST_F(KextFixture, CannotLoadKernelSegment) {
  // SPL 1 code loading the DPL 0 kernel data segment must #GP.
  MustLoad("seg_thief", R"(
  .global steal
steal:
  mov $16, %eax        ; kernel DS selector (index 2, RPL 0)
  mov %eax, %ds
  ret
)");
  auto r = kext_.Invoke(Fn("steal"), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("#GP"), std::string::npos);
}

TEST_F(KextFixture, SyscallFromExtensionAborts) {
  MustLoad("sneaky", R"(
  .global sneak
sneak:
  mov $SYS_WRITE, %eax
  int $INT_SYSCALL
  ret
)");
  auto r = kext_.Invoke(Fn("sneak"), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("system call"), std::string::npos);
}

TEST_F(KextFixture, InfiniteLoopHitsTimeLimit) {
  KextOptions opts;
  opts.cycle_limit = 50'000;
  MustLoad("looper", R"(
  .global spin
spin:
  jmp spin
)",
           opts);
  auto r = kext_.Invoke(Fn("spin"), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("time limit"), std::string::npos);
  EXPECT_GE(r.cycles, 50'000u);
}

TEST_F(KextFixture, PrintkServiceWorks) {
  MustLoad("hello", R"(
  .global say
say:
  mov $1, %eax          ; KSVC_PRINTK
  mov $msg, %ebx
  mov $5, %ecx
  int $INT_KSERVICE
  mov $77, %eax
  ret
  .data
msg:
  .asciz "hello"
)");
  auto r = kext_.Invoke(Fn("say"), 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 77u);
  EXPECT_EQ(kext_.printk_output(), "hello");
}

TEST_F(KextFixture, SharedDataAreaRoundTrip) {
  // Kernel writes input into pd_shared; extension transforms it in place;
  // kernel reads the result back — no copying through gates (Section 4.3).
  MustLoad("sharer", R"(
  .global sum_shared
sum_shared:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ecx      ; element count
  mov $pd_shared, %ebx
  mov $0, %eax
sum_loop:
  cmp $0, %ecx
  je sum_done
  ld 0(%ebx), %edx
  add %edx, %eax
  add $4, %ebx
  dec %ecx
  jmp sum_loop
sum_done:
  st %eax, pd_shared    ; result goes back through the shared area
  pop %ebp
  ret
  .data
  .global pd_shared
pd_shared:
  .space 256
)");
  u32 values[4] = {10, 20, 30, 40};
  ASSERT_TRUE(kext_.WriteShared(1, 0, values, sizeof(values)));
  auto r = kext_.Invoke(Fn("sum_shared"), 4);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 100u);
  u32 result = 0;
  ASSERT_TRUE(kext_.ReadShared(1, 0, &result, 4));
  EXPECT_EQ(result, 100u);
}

TEST_F(KextFixture, ModulesInSameSegmentShareSymbols) {
  u32 seg = MustLoad("base_mod", R"(
  .global shared_value
  .global get_value
get_value:
  ld shared_value, %eax
  ret
  .data
shared_value:
  .long 5
)");
  KextOptions opts;
  opts.into_segment = seg;
  MustLoad("second_mod", R"(
  .extern shared_value
  .global set_value
set_value:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  st %eax, shared_value
  pop %ebp
  ret
)",
           opts);
  ASSERT_TRUE(kext_.Invoke(Fn("set_value"), 1234).ok);
  auto r = kext_.Invoke(Fn("get_value"), 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 1234u);
}

TEST_F(KextFixture, SeparateSegmentsAreDisjoint) {
  // Two extensions in separate segments: all addresses are segment-relative,
  // so extension B dereferencing the numeric offset of A's secret reads its
  // *own* memory, never A's (disjoint linear ranges + limit checks).
  MustLoad("victim", R"(
  .global victim_get
victim_get:
  ld secret, %eax
  ret
  .data
  .global secret
secret:
  .long 0xCAFEBABE
)");
  const KernelExtensionManager::ExtensionState* victim = kext_.extension(1);
  ASSERT_NE(victim, nullptr);
  u32 secret_off = victim->symbols.at("secret");

  MustLoad("snoop", R"(
  .global snoop_read
snoop_read:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx      ; offset to probe
  ld 0(%ebx), %eax
  pop %ebp
  ret
  .data
pad:
  .long 0
)");
  auto r = kext_.Invoke(Fn("snoop_read"), secret_off);
  ASSERT_TRUE(r.ok) << r.error;  // within snoop's own limit: reads own memory
  EXPECT_NE(r.value, 0xCAFEBABEu);
  // And the victim still sees its secret intact.
  auto v = kext_.Invoke(Fn("victim_get"), 0);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.value, 0xCAFEBABEu);
}

TEST_F(KextFixture, AsyncQueueRunsToCompletion) {
  MustLoad("counter", R"(
  .global tally
tally:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  ld total, %ecx
  add %eax, %ecx
  st %ecx, total
  mov %ecx, %eax
  pop %ebp
  ret
  .data
  .global total
total:
  .long 0
)");
  u32 f = Fn("tally");
  EXPECT_TRUE(kext_.EnqueueAsync(f, 5));
  EXPECT_TRUE(kext_.EnqueueAsync(f, 7));
  EXPECT_TRUE(kext_.EnqueueAsync(f, 8));
  EXPECT_TRUE(kext_.IsBusy(1));
  EXPECT_EQ(kext_.DrainAsync(), 3u);
  EXPECT_FALSE(kext_.IsBusy(1));
  auto r = kext_.Invoke(f, 0);
  EXPECT_EQ(r.value, 20u);
}

TEST_F(KextFixture, FindFunctionQualifiedAndUnqualified) {
  MustLoad("alpha", ".global fn_a\nfn_a:\n  ret\n");
  MustLoad("beta", ".global fn_b\nfn_b:\n  ret\n");
  EXPECT_TRUE(kext_.FindFunction("alpha:fn_a").has_value());
  EXPECT_TRUE(kext_.FindFunction("fn_b").has_value());
  EXPECT_FALSE(kext_.FindFunction("fn_c").has_value());
  // Ambiguity: same function name in two extensions.
  MustLoad("gamma", ".global fn_a\nfn_a:\n  ret\n");
  EXPECT_FALSE(kext_.FindFunction("fn_a").has_value());
  EXPECT_TRUE(kext_.FindFunction("alpha:fn_a").has_value());
  EXPECT_TRUE(kext_.FindFunction("gamma:fn_a").has_value());
}

TEST_F(KextFixture, UnloadRemovesFunctions) {
  u32 id = MustLoad("temp", ".global f\nf:\n  ret\n");
  EXPECT_TRUE(kext_.FindFunction("f").has_value());
  kext_.UnloadExtension(id);
  EXPECT_FALSE(kext_.FindFunction("f").has_value());
  EXPECT_EQ(kext_.extension(id), nullptr);
}

TEST_F(KextFixture, InvokeFromUserProcessViaSyscall) {
  // The full Figure 4 path: user process -> INT 0x80 -> kernel -> extension
  // at SPL 1 -> kernel -> user process.
  MustLoad("svc", R"(
  .global triple
triple:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  mov %eax, %ecx
  add %ecx, %eax
  add %ecx, %eax
  pop %ebp
  ret
)");
  u32 fid = Fn("triple");
  std::string diag;
  auto img = AssembleAndLink(AbiPrelude() + R"(
  .global main
main:
  mov $SYS_INVOKE_KEXT, %eax
  mov $)" + std::to_string(fid) +
                                 R"(, %ebx
  mov $14, %ecx
  int $INT_SYSCALL
  mov %eax, %ebx
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
)",
                             kUserTextBase, {}, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  Pid pid = kernel_.CreateProcess();
  ASSERT_TRUE(kernel_.LoadUserImage(pid, *img, "main", &diag)) << diag;
  RunResult r = kernel_.RunProcess(pid, 50'000'000);
  EXPECT_EQ(r.outcome, RunOutcome::kExited);
  EXPECT_EQ(r.exit_code, 42);
}

TEST_F(KextFixture, SharedArgsSpanningPageBoundary) {
  // Protection-domain crossing under the data fast path: the kernel stages
  // an 8-byte argument pair positioned to straddle a page boundary of the
  // extension segment (WriteShared chunks the copy at the boundary), and the
  // SPL 1 extension reads it back across the same boundary through its
  // segment-relative addressing.
  MustLoad("spanner", R"(
  .global sum_pair
sum_pair:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx      ; byte offset of the pair within pd_shared
  mov $pd_shared, %esi
  add %esi, %ebx
  ld 0(%ebx), %eax
  ld 4(%ebx), %edx
  add %edx, %eax
  pop %ebp
  ret
  .data
  .global pd_shared
pd_shared:
  .space 8192
)");
  const KernelExtensionManager::ExtensionState* ext = kext_.extension(1);
  ASSERT_NE(ext, nullptr);
  ASSERT_TRUE(ext->shared_offset.has_value());
  const u32 shared_lin = ext->linear_base + *ext->shared_offset;
  // Place the pair so its two words sit on different pages.
  const u32 to_boundary = kPageSize - (shared_lin & kPageMask);
  const u32 off = to_boundary >= 4 ? to_boundary - 4 : to_boundary + kPageSize - 4;
  ASSERT_LT(off + 8, 8192u);
  const u32 pair[2] = {40, 2};
  ASSERT_TRUE(kext_.WriteShared(1, off, pair, sizeof(pair)));
  auto r = kext_.Invoke(Fn("sum_pair"), off);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 42u);
  // And the kernel reads the straddling block back unchanged.
  u32 readback[2] = {0, 0};
  ASSERT_TRUE(kext_.ReadShared(1, off, readback, sizeof(readback)));
  EXPECT_EQ(readback[0], 40u);
  EXPECT_EQ(readback[1], 2u);
}

TEST(DtlbRevocation, StoreThroughStaleEntryAfterKernelRevokesPage) {
  // The kernel revoking a page (munmap: PTE cleared through the editor hook,
  // frame freed) must invalidate any D-TLB entry for it: the process's next
  // store has to raise a page fault, never write the freed frame through a
  // stale host pointer. Identical with the fast path on or off.
  for (bool dtlb : {true, false}) {
    KernelFixture fx;
    fx.kernel().cpu().set_dtlb_enabled(dtlb);
    std::string diag;
    Pid pid = fx.LoadProgram(R"(
  .global main
main:
  mov $SYS_MMAP, %eax
  mov $0x500000, %ebx
  mov $4096, %ecx
  mov $3, %edx          ; PROT_READ | PROT_WRITE
  int $INT_SYSCALL
  mov %eax, %edi        ; mapped address
  sti $0x1234, 0(%edi)  ; demand-map and warm the D-TLB entry
  ld 0(%edi), %esi
  mov $SYS_MUNMAP, %eax
  mov %edi, %ebx
  mov $4096, %ecx
  int $INT_SYSCALL
  sti $0x5678, 0(%edi)  ; stale store: the page was revoked
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)",
                             &diag);
    ASSERT_NE(pid, 0u) << diag;
    RunResult r = fx.Run(pid);
    EXPECT_EQ(r.outcome, RunOutcome::kKilled) << "dtlb=" << dtlb;
    EXPECT_NE(r.kill_reason.find("#PF"), std::string::npos) << r.kill_reason;
  }
}

TEST_F(KextFixture, AbortedExtensionDoesNotCorruptKernelState) {
  MustLoad("ok_ext", ".global good\ngood:\n  mov $1, %eax\n  ret\n");
  MustLoad("bad_ext", R"(
  .global bad
bad:
  mov $0x00F00000, %ebx
  sti $0xDEAD, 0(%ebx)
  ret
)");
  EXPECT_FALSE(kext_.Invoke(Fn("bad"), 0).ok);
  // The healthy extension still works after the abort.
  auto r = kext_.Invoke(Fn("good"), 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 1u);
}

// Regression: UnloadExtension used to erase its EFT entries, silently
// shifting every later function id onto the wrong function — fatal for any
// live caller holding ids (the dataplane's FlowInfo does exactly that).
TEST_F(KextFixture, FunctionIdsSurviveEarlierUnload) {
  u32 a = MustLoad("first", ".global fa\nfa:\n  mov $11, %eax\n  ret\n");
  MustLoad("second", ".global fb\nfb:\n  mov $22, %eax\n  ret\n");
  const u32 fa = Fn("first:fa");
  const u32 fb = Fn("second:fb");
  kext_.UnloadExtension(a);
  // The surviving extension keeps its id and its binding.
  EXPECT_EQ(Fn("second:fb"), fb);
  auto r = kext_.Invoke(fb, 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 22u);
  // The dead extension's id is a tombstone: refused, never rebound.
  EXPECT_FALSE(kext_.FindFunction("first:fa").has_value());
  auto dead = kext_.Invoke(fa, 0);
  EXPECT_FALSE(dead.ok);
  EXPECT_NE(dead.error.find("no such extension function"), std::string::npos);
}

// Regression: UnloadExtension used to leak every mapped page and frame of
// the segment and never reclaim its slice of the kext region, so repeated
// load/unload cycles exhausted physical memory (64 MB / 1 MB segments).
TEST_F(KextFixture, RepeatedLoadUnloadReclaimsFramesAndRegion) {
  const u32 free_before = kernel_.frames().free_frames();
  u32 base0 = 0;
  for (int i = 0; i < 80; ++i) {
    const std::string name = "cycle" + std::to_string(i);
    u32 id = MustLoad(name, ".global f\nf:\n  mov $7, %eax\n  ret\n");
    const auto* st = kext_.extension(id);
    ASSERT_NE(st, nullptr);
    if (i == 0) {
      base0 = st->linear_base;
    } else {
      // First-fit reuse of the freed region, not fresh address space.
      EXPECT_EQ(st->linear_base, base0);
    }
    auto r = kext_.Invoke(Fn(name + ":f"), 0);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value, 7u);
    kext_.UnloadExtension(id);
    ASSERT_EQ(kernel_.frames().free_frames(), free_before) << "iteration " << i;
  }
  // The unmapped segment is genuinely gone from the kernel address space.
  u32 tmp = 0;
  EXPECT_FALSE(kernel_.ReadKernelVirt(base0, &tmp, 4));
}

// Regression: reloading at a reused linear base must run the *new* image —
// a stale decode-cache or trace-tier entry from the unloaded extension would
// execute v1 code under v2's name. UnmapKernelPage's EvictFrameEverywhere +
// kernel-range shootdown pin this under every engine/D-TLB/SMP combination.
TEST_F(KextFixture, ReloadAtReusedBaseRunsNewCode) {
  u32 v1 = MustLoad("imgv1", ".global f1\nf1:\n  mov $1, %eax\n  ret\n");
  const u32 base = kext_.extension(v1)->linear_base;
  // Decode and run v1 (warm twice so the block engine caches it).
  EXPECT_EQ(kext_.Invoke(Fn("imgv1:f1"), 0).value, 1u);
  EXPECT_EQ(kext_.Invoke(Fn("imgv1:f1"), 0).value, 1u);
  kext_.UnloadExtension(v1);
  u32 v2 = MustLoad("imgv2", ".global f1\nf1:\n  mov $2, %eax\n  ret\n");
  ASSERT_EQ(kext_.extension(v2)->linear_base, base);
  auto r = kext_.Invoke(Fn("imgv2:f1"), 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, 2u);
}

}  // namespace
}  // namespace palladium
