// CPU execution tests: ALU semantics, memory protection at segment and page
// level, far control transfers through call gates, interrupt gates, and the
// TSS stack switch — the hardware behaviours Palladium builds on.
#include <gtest/gtest.h>

#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

// Assembles and runs `source` at CPL `cpl`, returning the stop info.
StopInfo RunProgram(BareMachine& bm, const std::string& source, u8 cpl = 0,
                    const char* entry = "main") {
  std::string diag;
  auto img = bm.LoadProgram(source, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  if (!img) return StopInfo{};
  auto addr = img->Lookup(entry);
  EXPECT_TRUE(addr.has_value()) << "no symbol " << entry;
  bm.Start(*addr, cpl, kStackTop);
  return bm.Run(10'000'000);
}

// CPL>0 cannot HLT, so non-kernel programs park on an endless jmp which the
// test detects via a register value and a cycle limit.
TEST(CpuAlu, ArithmeticAndFlags) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $7, %eax
  add $35, %eax        ; 42
  mov $10, %ebx
  sub %ebx, %eax       ; 32
  shl $2, %eax         ; 128
  shr $1, %eax         ; 64
  xor $0xF, %eax       ; 79
  mov $3, %ecx
  imul %ecx, %eax      ; 237
  mov $10, %edx
  udiv %edx, %eax      ; 23
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 23u);
}

TEST(CpuAlu, CmpSetsFlagsForSignedAndUnsigned) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0, %edi
  mov $5, %eax
  cmp $7, %eax
  jb below             ; unsigned 5 < 7
  jmp done
below:
  or $1, %edi
  mov $0xFFFFFFFF, %eax  ; -1 signed
  cmp $1, %eax
  jl less              ; signed -1 < 1
  jmp done
less:
  or $2, %edi
  ja above             ; unsigned 0xFFFFFFFF > 1
  jmp done
above:
  or $4, %edi
done:
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 7u);
}

TEST(CpuAlu, DivideByZeroFaults) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $5, %eax
  mov $0, %ebx
  udiv %ebx, %eax
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kDivideError);
}

TEST(CpuMemory, LoadStoreWidths) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x20000, %ebx
  sti $0x11223344, 0(%ebx)
  ld8 0(%ebx), %eax       ; 0x44
  ld16 1(%ebx), %ecx      ; 0x2233
  st8 %eax, 4(%ebx)
  ld 4(%ebx), %edx        ; 0x00000044
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 0x44u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEcx), 0x2233u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0x44u);
}

TEST(CpuMemory, IndexedAddressing) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .data
table:
  .long 10, 20, 30, 40
  .global main
  .text
main:
  mov $table, %ebx
  mov $2, %ecx
  ld 0(%ebx,%ecx,4), %eax   ; table[2] == 30
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 30u);
}

TEST(CpuMemory, PushPopCallRet) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $5, %eax
  push %eax
  call double_it
  pop %ecx          ; discard arg
  hlt
double_it:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax
  add %eax, %eax
  pop %ebp
  ret
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 10u);
}

TEST(CpuProtection, SegmentLimitViolationIsGp) {
  BareMachine bm;
  // A data segment with a 16-byte limit; access offset 16 must #GP.
  bm.gdt().Set(20, SegmentDescriptor::MakeData(0x20000, 16, 0));
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0xA3, %eax       ; selector: index 20, RPL 3? no — use RPL 0: 20<<3 = 160
  mov $160, %eax
  mov %eax, %es
  mov $0, %ebx
  ld %es:12(%ebx), %ecx   ; 12+4 <= 16: ok
  ld %es:16(%ebx), %ecx   ; out of limit
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuProtection, DataSegmentLoadChecksDpl) {
  BareMachine bm;
  // CPL 3 code loading a DPL 0 data segment must #GP: this is exactly what
  // stops extensions from loading more privileged segments.
  StopInfo stop = RunProgram(bm,
                             R"(
  .global main
main:
  mov $16, %eax       ; kData0 selector (index 2, RPL 0)
  mov %eax, %es
  jmp main
)",
                             /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuProtection, RplWeakensPrivilege) {
  BareMachine bm;
  // Even CPL 0 code using an RPL 3 selector for a DPL 0 segment faults
  // (max(CPL,RPL) > DPL).
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $19, %eax       ; index 2 (kData0), RPL 3
  mov %eax, %es
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuProtection, WriteToCodeSegmentFaults) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x10000, %ebx
  sti $0, %cs:0(%ebx)
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuProtection, UserAccessToSupervisorPageIsPageFault) {
  BareMachine bm;
  // Clear the U bit on one identity-mapped page, then touch it from CPL 3.
  PageTableEditor ed(bm.pm(), bm.cpu().cr3());
  ASSERT_TRUE(ed.UpdateFlags(0x30000, 0, kPteUser));
  bm.cpu().tlb().Flush();
  StopInfo stop = RunProgram(bm,
                             R"(
  .global main
main:
  mov $0x30000, %ebx
  ld 0(%ebx), %eax
  jmp main
)",
                             /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(stop.fault.linear_address, 0x30000u);
  EXPECT_TRUE(stop.fault.error_code & kPfErrUser);
  EXPECT_TRUE(stop.fault.error_code & kPfErrPresent);
}

TEST(CpuProtection, SupervisorCplTwoPassesUserBitCheck) {
  BareMachine bm;
  PageTableEditor ed(bm.pm(), bm.cpu().cr3());
  ASSERT_TRUE(ed.UpdateFlags(0x30000, 0, kPteUser));
  bm.cpu().tlb().Flush();
  // CPL 2 (the paper's extensible application) is supervisor at page level.
  StopInfo stop = RunProgram(bm,
                             R"(
  .global main
main:
  mov $0x30000, %ebx
  ld 0(%ebx), %eax
  mov $1, %edi
stop:
  jmp stop
)",
                             /*cpl=*/2);
  EXPECT_EQ(stop.reason, StopReason::kCycleLimit);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 1u);
}

TEST(CpuProtection, HltRequiresCplZero) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, ".global main\nmain:\n  hlt\n", /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

// --- Far transfers ---------------------------------------------------------

TEST(CpuFarTransfer, CallGateWithPrivilegeChange) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global user_main
  .global kernel_entry
user_main:
  mov $0x1234, %ebx
  lcall $96            ; gate selector: index 12, RPL 0
  mov $1, %edi
spin:
  jmp spin
kernel_entry:
  mov $0xBEEF, %eax
  lret
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  // Gate at GDT index 12 -> kernel code (DPL 0), callable from CPL 3.
  bm.gdt().Set(12, SegmentDescriptor::MakeCallGate(BareMachine::CodeSelector(0).raw(),
                                                   *img->Lookup("kernel_entry"), 3));
  bm.Start(*img->Lookup("user_main"), 3, kStackTop);
  StopInfo stop = bm.Run(100'000);
  EXPECT_EQ(stop.reason, StopReason::kCycleLimit);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 0xBEEFu);  // set at CPL 0
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 1u);       // returned to CPL 3
  EXPECT_EQ(bm.cpu().cpl(), 3);
  EXPECT_EQ(bm.cpu().reg(Reg::kEbx), 0x1234u);  // registers preserved
  EXPECT_EQ(bm.cpu().reg(Reg::kEsp), kStackTop);
}

TEST(CpuFarTransfer, GateDplBlocksUnprivilegedCaller) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global user_main
  .global kernel_entry
user_main:
  lcall $96
spin:
  jmp spin
kernel_entry:
  lret
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  // Gate DPL 1: CPL 3 callers must #GP. This is how kernel-service gates are
  // reserved for kernel extensions in Palladium.
  bm.gdt().Set(12, SegmentDescriptor::MakeCallGate(BareMachine::CodeSelector(0).raw(),
                                                   *img->Lookup("kernel_entry"), 1));
  bm.Start(*img->Lookup("user_main"), 3, kStackTop);
  StopInfo stop = bm.Run(100'000);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuFarTransfer, LcallToNonGateFaults) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  lcall $8            ; kCode0 selector, not a gate
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuFarTransfer, LretToInnerLevelFaults) {
  BareMachine bm;
  // CPL 3 forging a far-return frame to CPL 0 code must #GP.
  StopInfo stop = RunProgram(bm,
                             R"(
  .global main
main:
  push $8             ; kCode0 selector (RPL 0 < CPL)
  push $0x10000
  lret
spin:
  jmp spin
)",
                             /*cpl=*/3);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuFarTransfer, LretToOuterLevelSwitchesStack) {
  // The Prepare->Transfer transition of Figure 6: a privileged caller uses
  // lret with a synthesized frame to enter less-privileged code.
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .equ EXT_CS, 27      ; index 3 (kCode3), RPL 3
  .equ EXT_SS, 35      ; index 4 (kData3), RPL 3
  .global main
  .global ext_entry
main:
  push $EXT_SS
  push $0x70000        ; extension stack pointer
  push $EXT_CS
  push $ext_entry
  lret
ext_entry:
  mov $0xCAFE, %eax
spin:
  jmp spin
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 2, kStackTop);
  StopInfo stop = bm.Run(100'000);
  EXPECT_EQ(stop.reason, StopReason::kCycleLimit);
  EXPECT_EQ(bm.cpu().cpl(), 3);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 0xCAFEu);
  EXPECT_EQ(bm.cpu().reg(Reg::kEsp), 0x70000u);
}

TEST(CpuFarTransfer, InterruptGateStackSwitchAndIret) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
  .global isr
main:
  mov $7, %ebx
  int $0x40
  mov $1, %edi
spin:
  jmp spin
isr:
  mov %ebx, %eax
  add $1, %eax
  iret
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.idt().Set(0x40, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          *img->Lookup("isr"), 3));
  bm.Start(*img->Lookup("main"), 3, kStackTop);
  StopInfo stop = bm.Run(100'000);
  EXPECT_EQ(stop.reason, StopReason::kCycleLimit);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 8u);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 1u);
  EXPECT_EQ(bm.cpu().cpl(), 3);
  EXPECT_EQ(bm.cpu().reg(Reg::kEsp), kStackTop);
}

TEST(CpuFarTransfer, SoftwareIntToProtectedVectorFaults) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
  .global isr
main:
  int $0x41
spin:
  jmp spin
isr:
  iret
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  // Gate DPL 0: user INT must fault.
  bm.idt().Set(0x41, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          *img->Lookup("isr"), 0));
  bm.Start(*img->Lookup("main"), 3, kStackTop);
  StopInfo stop = bm.Run(100'000);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kGeneralProtection);
}

TEST(CpuFarTransfer, HostCallRangeStopsExecution) {
  BareMachine bm;
  bm.cpu().SetHostCallRange(0xF0000, 0x1000);
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  int $0x42
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  // Vector 0x42 -> host entry id 3 (offset 3*16 into the host range).
  bm.idt().Set(0x42, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          0xF0000 + 3 * kInsnSize, 3));
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  StopInfo stop = bm.Run(100'000);
  ASSERT_EQ(stop.reason, StopReason::kHostCall);
  EXPECT_EQ(stop.host_call_id, 3u);
}

TEST(CpuCycles, FaultingEipPointsAtFaultingInstruction) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $1, %eax
bad:
  sti $0, %cs:0(%ebx)
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  StopInfo stop = bm.Run(100'000);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(bm.cpu().eip(), *img->Lookup("bad"));
}

TEST(CpuCycles, TlbCachesTranslations) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $100, %ecx
loop:
  ld 0(%ebx), %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  const auto& stats = bm.cpu().tlb_stats();
  EXPECT_GT(stats.hits, stats.misses * 10);
}

TEST(CpuCycles, ContextSaveRestoreRoundTrip) {
  BareMachine bm;
  RunProgram(bm, ".global main\nmain:\n  mov $99, %esi\n  hlt\n");
  CpuContext ctx = bm.cpu().SaveContext();
  bm.cpu().set_reg(Reg::kEsi, 0);
  bm.cpu().set_eip(0xDEAD);
  bm.cpu().RestoreContext(ctx);
  EXPECT_EQ(bm.cpu().reg(Reg::kEsi), 99u);
  EXPECT_NE(bm.cpu().eip(), 0xDEADu);
}

}  // namespace
}  // namespace palladium
