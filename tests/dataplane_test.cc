// Dataplane tests: NIC RX interrupt -> protected filter extension ->
// per-process queue -> blocking pkt_recv -> pkt_send TX, cross-checked
// against host-side filter evaluation; queue overflow accounting; a runaway
// filter asynchronously killed by the timer watchdog while traffic keeps
// flowing on other flows; and the interrupt-driven multi-worker web server.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/asm/assembler.h"
#include "src/core/kernel_ext.h"
#include "src/filter/filter.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/web/server_sim.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

struct DataplaneFixture {
  KernelFixture f;
  Scheduler sched;
  KernelExtensionManager kext;
  Nic nic;
  PacketDataplane dataplane;
  bool shutdown_issued = false;

  DataplaneFixture()
      : sched(f.kernel()),
        kext(f.kernel()),
        nic(f.machine().pm(), f.kernel().pic(), kIrqNic),
        dataplane(f.kernel(), kext, nic) {
    sched.set_idle_hook([this]() {
      if (shutdown_issued) return false;
      shutdown_issued = true;
      dataplane.Shutdown();
      return true;
    });
  }

  // The canonical echo worker from dataplane.h — shared with bench_dataplane.
  Pid SpawnEchoWorker(std::string* diag) {
    Pid pid = f.LoadProgram(kPktEchoWorkerSource, diag);
    if (pid != 0) sched.AddProcess(pid);
    return pid;
  }
};

TEST(Dataplane, EndToEndFilteredDeliveryMatchesHostGroundTruth) {
  DataplaneFixture fx;
  std::string diag;
  Pid w1 = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w1, 0u) << diag;
  Pid w2 = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w2, 0u) << diag;

  const std::string filter_text = "ip.proto == 6 && tcp.dport == 7777";
  ASSERT_TRUE(fx.dataplane.AddFlow("f7777", filter_text, {w1, w2}, &diag)) << diag;
  auto expr = ParseFilter(filter_text, &diag);
  ASSERT_TRUE(expr.has_value());

  // A deterministic mixed trace; count host-side ground truth as we inject.
  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(99, match, 0.4);
  u32 expected_matches = 0;
  const u32 kTotal = 40;
  u64 at = 5'000;
  for (u32 i = 0; i < kTotal; ++i) {
    bool unused = false;
    auto frame = BuildPacket(gen.Next(&unused));
    if (EvalFilterHost(*expr, frame.data(), static_cast<u32>(frame.size()))) {
      ++expected_matches;
    }
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 3'000;
  }
  ASSERT_GT(expected_matches, 0u);
  ASSERT_LT(expected_matches, kTotal);

  auto result = fx.sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 2u) << "both workers must drain and exit";

  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.rx_frames, kTotal);
  EXPECT_EQ(stats.matched, expected_matches) << "protected filter agrees with host eval";
  EXPECT_EQ(stats.delivered, expected_matches);
  EXPECT_EQ(stats.dropped_no_match, kTotal - expected_matches);
  EXPECT_EQ(stats.tx_frames, expected_matches) << "every delivered frame was echoed to TX";
  EXPECT_EQ(fx.nic.tx_frames().size(), expected_matches);

  // Round-robin across workers: both served some share.
  const i32 s1 = fx.f.kernel().process(w1)->exit_code;
  const i32 s2 = fx.f.kernel().process(w2)->exit_code;
  EXPECT_EQ(static_cast<u32>(s1 + s2), expected_matches);
  EXPECT_GT(s1, 0);
  EXPECT_GT(s2, 0);
  EXPECT_GT(fx.f.kernel().pic().delivered(kIrqNic), 0u);
}

TEST(Dataplane, QueueOverflowDropsAndAccounts) {
  DataplaneFixture fx;
  std::string diag;
  Pid w = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w, 0u) << diag;
  fx.f.kernel().process(w)->pkt_queue_limit = 2;
  ASSERT_TRUE(fx.dataplane.AddFlow("all", "ether.type == 0x0800", {w}, &diag)) << diag;

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  // A burst landing in one ServiceRx drain: only queue_limit fit.
  for (u32 i = 0; i < 8; ++i) {
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 1'000);
  }
  auto result = fx.sched.RunAll(1'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);
  const auto& stats = fx.dataplane.stats();
  // Backpressure: once the only destination saturates (queue_limit = 2, the
  // worker can't run mid-drain), the remaining frames drop *before* paying a
  // protected crossing — they are never counted matched.
  EXPECT_EQ(stats.matched, 2u);
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.dropped_queue_full, 6u);
  EXPECT_EQ(stats.filter_calls_avoided, 6u);
  EXPECT_EQ(fx.f.kernel().process(w)->pkts_dropped, stats.dropped_queue_full);
  EXPECT_EQ(static_cast<u64>(fx.f.kernel().process(w)->exit_code), stats.delivered);
}

// The acceptance demo: a deliberately looping filter extension on flow 0 is
// asynchronously killed by the timer watchdog; the flow dies, classification
// falls through to the healthy flow, and the workers keep serving traffic.
TEST(Dataplane, RunawayFilterKilledByWatchdogWhileTrafficContinues) {
  DataplaneFixture fx;
  std::string diag;
  Pid w = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w, 0u) << diag;

  AssembleError aerr;
  auto runaway = Assemble(R"(
  .global filter_run
filter_run:
  mov $1, %eax
forever:
  add $1, %eax
  jmp forever
  .data
  .global pd_shared
pd_shared:
  .space 2064
)",
                          &aerr);
  ASSERT_TRUE(runaway.has_value()) << aerr.ToString();
  KextOptions opts;
  opts.cycle_limit = 150'000;
  auto ext = fx.kext.LoadExtension("runaway", *runaway, &diag, opts);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = fx.kext.FindFunction("runaway:filter_run");
  ASSERT_TRUE(fid.has_value());
  ASSERT_TRUE(fx.dataplane.AddFlowFunction("runaway", *ext, *fid, {w}));
  ASSERT_TRUE(fx.dataplane.AddFlow("all", "ether.type == 0x0800", {w}, &diag)) << diag;

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  const u32 kTotal = 6;
  for (u32 i = 0; i < kTotal; ++i) {
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 2'000 + i * 2'000);
  }
  auto result = fx.sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);

  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.filter_aborts, 1u) << "the runaway filter died exactly once";
  ASSERT_EQ(fx.dataplane.flows().size(), 2u);
  EXPECT_TRUE(fx.dataplane.flows()[0].dead);
  EXPECT_FALSE(fx.dataplane.flows()[1].dead);
  EXPECT_EQ(stats.delivered, kTotal) << "every frame reached the worker via the healthy flow";
  EXPECT_EQ(static_cast<u32>(fx.f.kernel().process(w)->exit_code), kTotal);
  // The kext manager recorded the watchdog abort.
  EXPECT_TRUE(fx.kext.extension(*ext)->aborted);
}

// Regression: an IRQ latched in the PIC right before the last runnable
// process blocks is a wakeup source — the scheduler's idle path must service
// it (host-side) instead of declaring deadlock.
TEST(Dataplane, LatchedIrqBeforeBlockIsNotADeadlock) {
  DataplaneFixture fx;
  std::string diag;
  // Syscall 234: on first entry it latches the NIC line *and blocks in the
  // same gate entry* (so the IRQ can never be delivered to a running
  // context — only the scheduler's idle path can service it); the restarted
  // call returns 42.
  Pid w = fx.f.LoadProgram(R"(
  .global main
main:
  mov $234, %eax
  int $0x80
  mov %eax, %ebx          ; exit code = syscall result (42 after the wake)
  mov $SYS_EXIT, %eax
  int $0x80
)",
                           &diag);
  ASSERT_NE(w, 0u) << diag;
  fx.sched.AddProcess(w);
  bool raised_once = false;
  fx.f.kernel().RegisterSyscall(234, [&](Kernel& k, u32, u32, u32) {
    if (!raised_once) {
      raised_once = true;
      k.pic().Raise(kIrqNic);
      k.BlockCurrentForRestart();
      return;
    }
    k.ReturnFromGate(42);
  });
  // Replace the dataplane's NIC handler: wake the blocked worker.
  bool handler_ran = false;
  fx.f.kernel().RegisterIrqHandler(kIrqNic, [&](Kernel& k) {
    handler_ran = true;
    Process* proc = k.process(w);
    if (proc != nullptr && proc->state == ProcessState::kBlocked) k.WakeProcess(*proc);
  });
  auto result = fx.sched.RunAll(1'000'000'000ull);
  EXPECT_TRUE(handler_ran) << "the latched IRQ must be serviced from the idle path";
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.exited, 1u);
  EXPECT_EQ(fx.f.kernel().process(w)->exit_code, 42);
}

TEST(Dataplane, MultiWorkerWebServerServesAllClients) {
  MultiServerConfig cfg;
  cfg.workers = 3;
  cfg.clients = 5;
  cfg.total_requests = 30;
  MultiServerResult r = RunMultiWorkerServer(cfg);
  EXPECT_TRUE(r.ok) << r.diag;
  EXPECT_EQ(r.served, cfg.total_requests);
  EXPECT_EQ(r.parsed_requests, cfg.total_requests) << "every request went through HTTP parse";
  EXPECT_EQ(r.filter_invocations, cfg.total_requests);
  EXPECT_GT(r.nic_irqs, 0u);
  EXPECT_GT(r.timer_irqs, 0u);
  EXPECT_GT(r.requests_per_sec, 0.0);
  ASSERT_EQ(r.per_worker_served.size(), cfg.workers);
  i64 sum = 0;
  for (i32 s : r.per_worker_served) {
    EXPECT_GE(s, 0) << "every worker exited cleanly";
    sum += s;
  }
  EXPECT_EQ(static_cast<u64>(sum), r.served);
}

// ---------------------------------------------------------------------------
// Differential tests: the NAPI/batched fast path against the per-frame oracle.

// Runs a complete echo scenario under an explicit dataplane config on a fresh
// 1-vCPU machine and returns the accounting. Both modes use the same batched
// worker so the only variable is the dataplane pipeline itself.
struct ScenarioOutcome {
  PacketDataplane::Stats stats;
  std::vector<i32> exit_codes;  // per worker, spawn order
  u64 wire_tx = 0;              // frames that completed TX DMA
  u32 exited = 0;
};

ScenarioOutcome RunEchoScenario(const PacketDataplane::Config& dcfg, u32 workers,
                                u32 total_frames, u64 inter_arrival, u32 queue_limit) {
  ScenarioOutcome out;
  KernelFixture f(1);
  Scheduler sched(f.kernel());
  KernelExtensionManager kext(f.kernel());
  Nic nic(f.machine().pm(), f.kernel().pic(), kIrqNic);
  PacketDataplane dp(f.kernel(), kext, nic, dcfg);
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dp.Shutdown();
    return true;
  });
  std::string diag;
  std::vector<Pid> pids;
  for (u32 i = 0; i < workers; ++i) {
    Pid pid = f.LoadProgram(kPktEchoMWorkerSource, &diag);
    EXPECT_NE(pid, 0u) << diag;
    if (pid == 0) return out;
    if (queue_limit != 0) f.kernel().process(pid)->pkt_queue_limit = queue_limit;
    sched.AddProcess(pid);
    pids.push_back(pid);
  }
  EXPECT_TRUE(dp.AddFlow("f7777", "ip.proto == 6 && tcp.dport == 7777", pids, &diag)) << diag;

  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(2026, match, 0.6);
  u64 at = 5'000;
  for (u32 i = 0; i < total_frames; ++i) {
    bool unused = false;
    auto frame = BuildPacket(gen.Next(&unused));
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += inter_arrival;
  }
  auto result = sched.RunAll(4'000'000'000ull);
  out.exited = result.exited;
  nic.FlushTx();  // retire in-flight TX DMA so the wire log is complete
  out.stats = dp.stats();
  out.wire_tx = nic.tx_frames().size();
  for (Pid pid : pids) out.exit_codes.push_back(f.kernel().process(pid)->exit_code);
  return out;
}

PacketDataplane::Config FastPathConfig() {
  PacketDataplane::Config cfg;
  cfg.napi = true;
  cfg.filter_batch = 32;
  cfg.rx_irq_moderation = 8'000;
  return cfg;
}

PacketDataplane::Config OracleConfig() {
  PacketDataplane::Config cfg;
  cfg.napi = false;
  cfg.filter_batch = 1;
  cfg.queues = 1;
  cfg.rx_irq_moderation = 0;
  return cfg;
}

TEST(Dataplane, NapiBatchedPathMatchesOracleAccounting) {
  auto fast = RunEchoScenario(FastPathConfig(), 2, 60, 900, 0);
  auto oracle = RunEchoScenario(OracleConfig(), 2, 60, 900, 0);
  EXPECT_EQ(fast.exited, 2u);
  EXPECT_EQ(oracle.exited, 2u);

  // Byte-identical served/dropped/match accounting (the modes may differ in
  // crossings and interrupts — that is the point — but never in outcomes).
  EXPECT_EQ(fast.stats.rx_frames, oracle.stats.rx_frames);
  EXPECT_EQ(fast.stats.filter_frames, oracle.stats.filter_frames);
  EXPECT_EQ(fast.stats.matched, oracle.stats.matched);
  EXPECT_EQ(fast.stats.delivered, oracle.stats.delivered);
  EXPECT_EQ(fast.stats.dropped_no_match, oracle.stats.dropped_no_match);
  EXPECT_EQ(fast.stats.dropped_queue_full, oracle.stats.dropped_queue_full);
  EXPECT_EQ(fast.stats.dropped_dead_dest, oracle.stats.dropped_dead_dest);
  EXPECT_EQ(fast.stats.tx_frames, oracle.stats.tx_frames);
  EXPECT_EQ(fast.wire_tx, oracle.wire_tx);
  // Same per-worker delivery sequence, not just the same totals.
  EXPECT_EQ(fast.exit_codes, oracle.exit_codes);
  EXPECT_EQ(fast.stats.rx_frames, 60u);
  EXPECT_EQ(fast.stats.dropped_queue_full, 0u);

  if (std::getenv("PALLADIUM_NO_NAPI") == nullptr) {
    // And the fast path actually ran fast: batched crossings, fewer IRQs.
    EXPECT_GT(fast.stats.filter_batches, 0u);
    EXPECT_LT(fast.stats.filter_invocations, oracle.stats.filter_invocations);
    EXPECT_LT(fast.stats.nic_irqs, oracle.stats.nic_irqs);
    EXPECT_EQ(oracle.stats.filter_invocations, oracle.stats.filter_frames)
        << "the oracle pays one protected crossing per frame";
  }
}

TEST(Dataplane, OverflowAccountingMatchesOracleUnderBurst) {
  // A same-cycle burst into a 3-deep queue: both modes must agree exactly on
  // what was matched, delivered, and dropped. (filter_frames may differ: the
  // batch mode classifies the whole burst before discovering saturation,
  // while the oracle's entry check avoids those crossings — but the outcome
  // accounting runs the identical per-frame state machine.)
  auto fast = RunEchoScenario(FastPathConfig(), 1, 10, 0, 3);
  auto oracle = RunEchoScenario(OracleConfig(), 1, 10, 0, 3);
  EXPECT_EQ(fast.exited, 1u);
  EXPECT_EQ(oracle.exited, 1u);
  EXPECT_EQ(fast.stats.rx_frames, 10u);
  EXPECT_EQ(oracle.stats.rx_frames, 10u);
  EXPECT_EQ(fast.stats.matched, oracle.stats.matched);
  EXPECT_EQ(fast.stats.delivered, oracle.stats.delivered);
  EXPECT_EQ(fast.stats.dropped_no_match, oracle.stats.dropped_no_match);
  EXPECT_EQ(fast.stats.dropped_queue_full, oracle.stats.dropped_queue_full);
  EXPECT_EQ(fast.stats.filter_calls_avoided, oracle.stats.filter_calls_avoided);
  EXPECT_EQ(fast.stats.tx_frames, oracle.stats.tx_frames);
  EXPECT_EQ(fast.exit_codes, oracle.exit_codes);
  EXPECT_GT(fast.stats.dropped_queue_full, 0u) << "the burst must actually overflow";
  EXPECT_GE(fast.stats.filter_frames, oracle.stats.filter_frames);
}

// Multi-queue RSS: on a 4-vCPU machine with 4 RX queues, the hardware hash
// spreads wire flows across queues and every queue interrupts its own core's
// local PIC — no core is a dataplane bottleneck or bystander.
TEST(Dataplane, MultiQueueRssSpreadsIrqsAcrossCores) {
  if (std::getenv("PALLADIUM_NO_NAPI") != nullptr) {
    GTEST_SKIP() << "oracle mode forces a single queue";
  }
  KernelFixture f(4);
  Scheduler sched(f.kernel());
  KernelExtensionManager kext(f.kernel());
  Nic nic(f.machine().pm(), f.kernel().pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.queues = 4;
  dcfg.napi = true;
  dcfg.filter_batch = 8;
  dcfg.steering = FlowSteering::kFlowHash;
  PacketDataplane dp(f.kernel(), kext, nic, dcfg);
  ASSERT_EQ(dp.config().queues, 4u);
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dp.Shutdown();
    return true;
  });
  std::string diag;
  std::vector<Pid> pids;
  for (u32 i = 0; i < 4; ++i) {
    Pid pid = f.LoadProgram(kPktEchoMWorkerSource, &diag);
    ASSERT_NE(pid, 0u) << diag;
    sched.AddProcess(pid);  // round-robin homes: worker i on vCPU i
    pids.push_back(pid);
  }
  ASSERT_TRUE(dp.AddFlow("f7777", "ip.proto == 6 && tcp.dport == 7777", pids, &diag)) << diag;

  const u32 kTotal = 64;
  for (u32 i = 0; i < kTotal; ++i) {
    PacketSpec spec;
    spec.proto = kIpProtoTcp;
    spec.dst_port = 7777;
    spec.src_port = static_cast<u16>(1024 + i * 7);
    spec.src_ip = 0x0A000001 + (i % 13);
    auto frame = BuildPacket(spec);
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), 5'000 + i * 1'500);
  }
  auto result = sched.RunAll(4'000'000'000ull);
  EXPECT_EQ(result.exited, 4u);

  const auto& stats = dp.stats();
  EXPECT_EQ(stats.rx_frames, kTotal);
  EXPECT_EQ(stats.matched, kTotal);
  EXPECT_EQ(stats.delivered, kTotal);
  EXPECT_EQ(stats.dropped_queue_full, 0u);
  EXPECT_EQ(stats.dropped_dead_dest, 0u);
  // Every core took RX interrupts from its own queue — the RSS hash spread
  // the 64 distinct 5-tuples across all four queue/core pairs.
  for (u32 c = 0; c < 4; ++c) {
    EXPECT_GT(f.kernel().pic(c).delivered(kIrqNic), 0u) << "core " << c;
  }
  i64 sum = 0;
  for (Pid pid : pids) {
    const i32 served = f.kernel().process(pid)->exit_code;
    EXPECT_GE(served, 0);
    sum += served;
  }
  EXPECT_EQ(static_cast<u64>(sum), stats.delivered);
}

// RPS backlog overflow: a burst beyond backlog_limit is dropped *before*
// classification — cheap drops, no protected crossings paid for them.
TEST(Dataplane, RpsBacklogOverflowDropsBeforeClassification) {
  KernelFixture f(1);
  Scheduler sched(f.kernel());
  KernelExtensionManager kext(f.kernel());
  Nic nic(f.machine().pm(), f.kernel().pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.rps = true;
  dcfg.backlog_limit = 4;
  PacketDataplane dp(f.kernel(), kext, nic, dcfg);
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dp.Shutdown();
    return true;
  });
  std::string diag;
  Pid w = f.LoadProgram(kPktEchoWorkerSource, &diag);
  ASSERT_NE(w, 0u) << diag;
  sched.AddProcess(w);
  ASSERT_TRUE(dp.AddFlow("all", "ether.type == 0x0800", {w}, &diag)) << diag;

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  const u32 kTotal = 12;
  for (u32 i = 0; i < kTotal; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), 1'000);
  }
  auto result = sched.RunAll(1'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);

  const auto& stats = dp.stats();
  EXPECT_EQ(stats.rx_frames, kTotal);
  EXPECT_EQ(stats.dropped_backlog_full, kTotal - dcfg.backlog_limit);
  // Only the backlogged frames ever reached a filter, and they were
  // classified in worker context (RPS) with batched crossings.
  EXPECT_EQ(stats.rps_deferred, static_cast<u64>(dcfg.backlog_limit));
  EXPECT_EQ(stats.filter_frames, static_cast<u64>(dcfg.backlog_limit));
  EXPECT_EQ(stats.delivered, static_cast<u64>(dcfg.backlog_limit));
  EXPECT_EQ(static_cast<u64>(f.kernel().process(w)->exit_code), stats.delivered);
}

// The in_classify_ re-entrancy guard: a filter extension invokes a kernel
// service (INT 0x81) whose host side calls Shutdown() — which flushes the
// RPS backlog via DrainBacklog — *while DrainBacklog is already mid-batch on
// the stack*. The guard must make the nested drain a no-op (a re-entrant
// ClassifyFrames would nest a protected Invoke inside the running one);
// every frame still gets classified exactly once by the outer loop.
TEST(Dataplane, ShutdownFromFilterContextCannotReenterClassification) {
  KernelFixture f(1);
  Scheduler sched(f.kernel());
  KernelExtensionManager kext(f.kernel());
  Nic nic(f.machine().pm(), f.kernel().pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.rps = true;
  dcfg.backlog_limit = 64;
  dcfg.filter_batch = 2;  // keep frames in the backlog while classifying
  PacketDataplane dp(f.kernel(), kext, nic, dcfg);
  std::string diag;
  Pid w = f.LoadProgram(kPktEchoWorkerSource, &diag);
  ASSERT_NE(w, 0u) << diag;
  sched.AddProcess(w);

  u32 service_calls = 0;
  kext.RegisterService(500, [&](Kernel&, u32, u32, u32) -> u32 {
    ++service_calls;
    dp.Shutdown();  // nested DrainBacklog attempt from filter context
    return 0;
  });
  AssembleError aerr;
  auto kill_switch = Assemble(R"(
  .global filter_run
filter_run:
  mov $500, %eax
  int $0x81
  mov $1, %eax
  ret
  .data
  .global pd_shared
pd_shared:
  .space 2064
)",
                              &aerr);
  ASSERT_TRUE(kill_switch.has_value()) << aerr.ToString();
  auto ext = kext.LoadExtension("killswitch", *kill_switch, &diag);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = kext.FindFunction("killswitch:filter_run");
  ASSERT_TRUE(fid.has_value());
  ASSERT_TRUE(dp.AddFlowFunction("killswitch", *ext, *fid, {w}));

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  const u32 kTotal = 6;
  for (u32 i = 0; i < kTotal; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), 1'000);
  }
  auto result = sched.RunAll(1'000'000'000ull);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.exited, 1u);

  EXPECT_GT(service_calls, 0u) << "the filter reached the kernel service";
  EXPECT_TRUE(dp.shutdown());
  const auto& stats = dp.stats();
  EXPECT_EQ(stats.filter_aborts, 0u) << "the service call is legal, not a violation";
  EXPECT_EQ(stats.rps_deferred, kTotal) << "each frame classified exactly once";
  EXPECT_EQ(stats.filter_frames, kTotal);
  EXPECT_EQ(stats.delivered, kTotal);
  EXPECT_EQ(static_cast<u64>(f.kernel().process(w)->exit_code), kTotal);
}

// The batched filter entry point is generated code: cross-check its match
// bitmap, record by record, against both the host evaluator and the
// single-frame entry point over a mixed trace staged directly in pd_shared.
TEST(Dataplane, BatchFilterCodegenMatchesHostEval) {
  KernelFixture f(1);
  KernelExtensionManager kext(f.kernel());
  std::string diag;
  const std::string filter_text = "ip.proto == 6 && tcp.dport == 7777";
  auto expr = ParseFilter(filter_text, &diag);
  ASSERT_TRUE(expr.has_value()) << diag;

  // The same layout AddFlow programs: records every stride bytes from +16.
  const u32 buf_stride = 2048;
  const u32 stride = 4 + ((buf_stride + 3) & ~3u);
  const u32 capacity = std::max(buf_stride + 16, kFilterBatchBase + kMaxFilterBatch * stride);
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr, capacity, stride), &aerr);
  ASSERT_TRUE(obj.has_value()) << aerr.ToString();
  auto ext = kext.LoadExtension("bf", *obj, &diag);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto single = kext.FindFunction("bf:filter_run");
  auto batch = kext.FindFunction("bf:filter_run_batch");
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(batch.has_value()) << "compiled filters must export the batch entry";

  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(7, match, 0.5);
  const u32 kBatch = 12;
  std::vector<std::vector<u8>> frames;
  u32 expected_bitmap = 0;
  for (u32 j = 0; j < kBatch; ++j) {
    bool unused = false;
    frames.push_back(BuildPacket(gen.Next(&unused)));
    if (EvalFilterHost(*expr, frames[j].data(), static_cast<u32>(frames[j].size()))) {
      expected_bitmap |= 1u << j;
    }
  }
  ASSERT_NE(expected_bitmap, 0u);
  ASSERT_NE(expected_bitmap, (1u << kBatch) - 1);

  // Batch ABI: count at +0, [u32 len][bytes] records at +16 + j * stride.
  ASSERT_TRUE(kext.WriteShared(*ext, 0, &kBatch, 4));
  for (u32 j = 0; j < kBatch; ++j) {
    const u32 len = static_cast<u32>(frames[j].size());
    const u32 base = kFilterBatchBase + j * stride;
    ASSERT_TRUE(kext.WriteShared(*ext, base, &len, 4));
    ASSERT_TRUE(kext.WriteShared(*ext, base + 4, frames[j].data(), len));
  }
  auto r = kext.Invoke(*batch, kBatch);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, expected_bitmap);

  // And frame by frame through the single-frame entry, same verdicts.
  for (u32 j = 0; j < kBatch; ++j) {
    const u32 len = static_cast<u32>(frames[j].size());
    ASSERT_TRUE(kext.WriteShared(*ext, 0, &len, 4));
    ASSERT_TRUE(kext.WriteShared(*ext, 4, frames[j].data(), len));
    auto s = kext.Invoke(*single, len);
    ASSERT_TRUE(s.ok) << s.error;
    EXPECT_EQ(s.value, (expected_bitmap >> j) & 1u) << "frame " << j;
  }
}

// ---------------------------------------------------------------------------
// Live filter upgrade under traffic.

// An echo worker that, after serving its 3rd frame, issues syscall 235 — the
// test wires that to PacketDataplane::UpgradeFlow, so the upgrade lands in
// the middle of the packet stream, between protected filter invocations.
constexpr char kUpgradingEchoWorkerSource[] = R"(
  .global main
main:
  mov $90, %eax           ; SYS_MMAP
  mov $0, %ebx
  mov $4096, %ecx
  mov $3, %edx
  int $0x80
  mov %eax, %esi          ; packet buffer
  mov $0, %edi            ; served counter
loop:
  mov $220, %eax          ; SYS_PKT_RECV
  mov %esi, %ebx
  mov $2048, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done
  mov %eax, %ecx
  mov $221, %eax          ; SYS_PKT_SEND
  mov %esi, %ebx
  int $0x80
  inc %edi
  cmp $3, %edi
  jne loop
  mov $235, %eax          ; 3rd frame served: request the filter upgrade
  int $0x80
  jmp loop
done:
  mov $1, %eax            ; SYS_EXIT
  mov %edi, %ebx
  int $0x80
)";

// One echo run over a fixed mixed trace where the worker's syscall 235
// either live-upgrades flow f7777 (to an identical-semantics v2) or is a
// no-op. Everything else — trace, worker, timing — is held constant.
ScenarioOutcome RunLiveUpgradeScenario(bool upgrade, u64* flow_upgrades) {
  ScenarioOutcome out;
  KernelFixture f(1);
  Scheduler sched(f.kernel());
  KernelExtensionManager kext(f.kernel());
  Nic nic(f.machine().pm(), f.kernel().pic(), kIrqNic);
  PacketDataplane dp(f.kernel(), kext, nic);
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dp.Shutdown();
    return true;
  });
  std::string diag;
  Pid w = f.LoadProgram(kUpgradingEchoWorkerSource, &diag);
  EXPECT_NE(w, 0u) << diag;
  if (w == 0) return out;
  sched.AddProcess(w);
  const std::string filter_text = "ip.proto == 6 && tcp.dport == 7777";
  f.kernel().RegisterSyscall(235, [&](Kernel& k, u32, u32, u32) {
    if (upgrade) {
      std::string d2;
      EXPECT_TRUE(dp.UpgradeFlow("f7777", filter_text, &d2)) << d2;
    }
    k.ReturnFromGate(0);
  });
  EXPECT_TRUE(dp.AddFlow("f7777", filter_text, {w}, &diag)) << diag;

  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(424242, match, 0.5);
  u64 at = 5'000;
  for (u32 i = 0; i < 40; ++i) {
    bool unused = false;
    auto frame = BuildPacket(gen.Next(&unused));
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 3'000;
  }
  auto result = sched.RunAll(2'000'000'000ull);
  out.exited = result.exited;
  nic.FlushTx();
  out.stats = dp.stats();
  out.wire_tx = nic.tx_frames().size();
  out.exit_codes.push_back(f.kernel().process(w)->exit_code);
  *flow_upgrades = dp.stats().flow_upgrades;
  return out;
}

// The tentpole scenario: v2 of the filter is loaded, atomically switched in,
// and v1 unloaded — all while frames keep arriving. Zero frames may be lost
// to the upgrade, and the accounting must be byte-identical to a control run
// that never upgrades.
TEST(DataplaneUpgrade, LiveUpgradeUnderTrafficZeroDropsMatchesControl) {
  u64 upgraded_count = 0, control_count = 0;
  auto upgraded = RunLiveUpgradeScenario(true, &upgraded_count);
  auto control = RunLiveUpgradeScenario(false, &control_count);
  EXPECT_EQ(upgraded.exited, 1u);
  EXPECT_EQ(control.exited, 1u);
  EXPECT_EQ(upgraded_count, 1u) << "the upgrade must actually have happened";
  EXPECT_EQ(control_count, 0u);

  EXPECT_EQ(upgraded.stats.rx_frames, 40u);
  EXPECT_EQ(upgraded.stats.rx_frames, control.stats.rx_frames);
  EXPECT_EQ(upgraded.stats.matched, control.stats.matched);
  EXPECT_EQ(upgraded.stats.delivered, control.stats.delivered);
  EXPECT_EQ(upgraded.stats.dropped_no_match, control.stats.dropped_no_match);
  EXPECT_EQ(upgraded.stats.dropped_queue_full, 0u);
  EXPECT_EQ(control.stats.dropped_queue_full, 0u);
  EXPECT_EQ(upgraded.stats.dropped_dead_dest, 0u);
  EXPECT_EQ(upgraded.stats.tx_frames, control.stats.tx_frames);
  EXPECT_EQ(upgraded.wire_tx, control.wire_tx);
  EXPECT_EQ(upgraded.exit_codes, control.exit_codes);
  EXPECT_GT(upgraded.stats.delivered, 3u) << "the upgrade fired mid-stream";
  EXPECT_EQ(upgraded.stats.filter_aborts, 0u);
}

// Upgrade to *different* semantics, twice, in drained phases so each wave's
// verdict is attributable to exactly one filter version. The second upgrade
// lands v3 at v1's reclaimed kext region — the regression pin: a stale
// decoded block, trace, or D-TLB entry from the v1 image at that linear base
// would classify wave C with v1's (or garbage) semantics.
TEST(DataplaneUpgrade, UpgradeChangesVerdictsAndReusedRegionRunsNewCode) {
  DataplaneFixture fx;
  std::string diag;
  Pid w = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w, 0u) << diag;
  ASSERT_TRUE(fx.dataplane.AddFlow("f", "ip.proto == 6 && tcp.dport == 7777", {w}, &diag))
      << diag;
  const u32 v1_base = fx.kext.extension(fx.dataplane.flows()[0].ext_id)->linear_base;

  auto inject_wave = [&]() {
    for (u16 port : {7777, 8888, 9999}) {
      PacketSpec spec;
      spec.proto = kIpProtoTcp;
      spec.dst_port = port;
      auto frame = BuildPacket(spec);
      for (u32 i = 0; i < 4; ++i) {
        fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 0);
      }
    }
  };
  u32 v3_base = 0;
  u32 phase = 0;
  fx.sched.set_idle_hook([&]() {
    ++phase;
    std::string d2;
    if (phase == 1) {  // wave A fully classified by v1
      EXPECT_TRUE(fx.dataplane.UpgradeFlow("f", "ip.proto == 6 && tcp.dport == 8888", &d2))
          << d2;
      inject_wave();
      return true;
    }
    if (phase == 2) {  // wave B fully classified by v2
      EXPECT_TRUE(fx.dataplane.UpgradeFlow("f", "ip.proto == 6 && tcp.dport == 9999", &d2))
          << d2;
      v3_base = fx.kext.extension(fx.dataplane.flows()[0].ext_id)->linear_base;
      inject_wave();
      return true;
    }
    if (phase == 3) {
      fx.dataplane.Shutdown();
      return true;
    }
    return false;
  });

  inject_wave();  // wave A
  auto result = fx.sched.RunAll(4'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);
  EXPECT_FALSE(result.deadlocked);

  // v1 was unloaded when v2 arrived, so v3's first-fit allocation reclaims
  // v1's region: the new code runs at the very addresses the machine spent
  // wave A executing v1 from.
  EXPECT_EQ(v3_base, v1_base) << "expected the upgrade to reuse the freed kext region";

  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.flow_upgrades, 2u);
  EXPECT_EQ(stats.rx_frames, 36u);
  EXPECT_EQ(stats.matched, 12u) << "each wave matched exactly its version's port";
  EXPECT_EQ(stats.delivered, 12u);
  EXPECT_EQ(stats.dropped_no_match, 24u);
  EXPECT_EQ(stats.dropped_queue_full, 0u);
  EXPECT_EQ(stats.filter_aborts, 0u);
  EXPECT_EQ(static_cast<u32>(fx.f.kernel().process(w)->exit_code), 12u);
}

}  // namespace
}  // namespace palladium
