// Dataplane tests: NIC RX interrupt -> protected filter extension ->
// per-process queue -> blocking pkt_recv -> pkt_send TX, cross-checked
// against host-side filter evaluation; queue overflow accounting; a runaway
// filter asynchronously killed by the timer watchdog while traffic keeps
// flowing on other flows; and the interrupt-driven multi-worker web server.
#include <gtest/gtest.h>

#include "src/core/kernel_ext.h"
#include "src/filter/filter.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/web/server_sim.h"
#include "tests/kernel_test_util.h"

namespace palladium {
namespace {

struct DataplaneFixture {
  KernelFixture f;
  Scheduler sched;
  KernelExtensionManager kext;
  Nic nic;
  PacketDataplane dataplane;
  bool shutdown_issued = false;

  DataplaneFixture()
      : sched(f.kernel()),
        kext(f.kernel()),
        nic(f.machine().pm(), f.kernel().pic(), kIrqNic),
        dataplane(f.kernel(), kext, nic) {
    sched.set_idle_hook([this]() {
      if (shutdown_issued) return false;
      shutdown_issued = true;
      dataplane.Shutdown();
      return true;
    });
  }

  // The canonical echo worker from dataplane.h — shared with bench_dataplane.
  Pid SpawnEchoWorker(std::string* diag) {
    Pid pid = f.LoadProgram(kPktEchoWorkerSource, diag);
    if (pid != 0) sched.AddProcess(pid);
    return pid;
  }
};

TEST(Dataplane, EndToEndFilteredDeliveryMatchesHostGroundTruth) {
  DataplaneFixture fx;
  std::string diag;
  Pid w1 = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w1, 0u) << diag;
  Pid w2 = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w2, 0u) << diag;

  const std::string filter_text = "ip.proto == 6 && tcp.dport == 7777";
  ASSERT_TRUE(fx.dataplane.AddFlow("f7777", filter_text, {w1, w2}, &diag)) << diag;
  auto expr = ParseFilter(filter_text, &diag);
  ASSERT_TRUE(expr.has_value());

  // A deterministic mixed trace; count host-side ground truth as we inject.
  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(99, match, 0.4);
  u32 expected_matches = 0;
  const u32 kTotal = 40;
  u64 at = 5'000;
  for (u32 i = 0; i < kTotal; ++i) {
    bool unused = false;
    auto frame = BuildPacket(gen.Next(&unused));
    if (EvalFilterHost(*expr, frame.data(), static_cast<u32>(frame.size()))) {
      ++expected_matches;
    }
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 3'000;
  }
  ASSERT_GT(expected_matches, 0u);
  ASSERT_LT(expected_matches, kTotal);

  auto result = fx.sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 2u) << "both workers must drain and exit";

  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.rx_frames, kTotal);
  EXPECT_EQ(stats.matched, expected_matches) << "protected filter agrees with host eval";
  EXPECT_EQ(stats.delivered, expected_matches);
  EXPECT_EQ(stats.dropped_no_match, kTotal - expected_matches);
  EXPECT_EQ(stats.tx_frames, expected_matches) << "every delivered frame was echoed to TX";
  EXPECT_EQ(fx.nic.tx_frames().size(), expected_matches);

  // Round-robin across workers: both served some share.
  const i32 s1 = fx.f.kernel().process(w1)->exit_code;
  const i32 s2 = fx.f.kernel().process(w2)->exit_code;
  EXPECT_EQ(static_cast<u32>(s1 + s2), expected_matches);
  EXPECT_GT(s1, 0);
  EXPECT_GT(s2, 0);
  EXPECT_GT(fx.f.kernel().pic().delivered(kIrqNic), 0u);
}

TEST(Dataplane, QueueOverflowDropsAndAccounts) {
  DataplaneFixture fx;
  std::string diag;
  Pid w = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w, 0u) << diag;
  fx.f.kernel().process(w)->pkt_queue_limit = 2;
  ASSERT_TRUE(fx.dataplane.AddFlow("all", "ether.type == 0x0800", {w}, &diag)) << diag;

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  // A burst landing in one ServiceRx drain: only queue_limit fit.
  for (u32 i = 0; i < 8; ++i) {
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 1'000);
  }
  auto result = fx.sched.RunAll(1'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);
  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.matched, 8u);
  EXPECT_EQ(stats.delivered + stats.dropped_queue_full, 8u);
  EXPECT_GT(stats.dropped_queue_full, 0u);
  EXPECT_EQ(fx.f.kernel().process(w)->pkts_dropped, stats.dropped_queue_full);
  EXPECT_EQ(static_cast<u64>(fx.f.kernel().process(w)->exit_code), stats.delivered);
}

// The acceptance demo: a deliberately looping filter extension on flow 0 is
// asynchronously killed by the timer watchdog; the flow dies, classification
// falls through to the healthy flow, and the workers keep serving traffic.
TEST(Dataplane, RunawayFilterKilledByWatchdogWhileTrafficContinues) {
  DataplaneFixture fx;
  std::string diag;
  Pid w = fx.SpawnEchoWorker(&diag);
  ASSERT_NE(w, 0u) << diag;

  AssembleError aerr;
  auto runaway = Assemble(R"(
  .global filter_run
filter_run:
  mov $1, %eax
forever:
  add $1, %eax
  jmp forever
  .data
  .global pd_shared
pd_shared:
  .space 2064
)",
                          &aerr);
  ASSERT_TRUE(runaway.has_value()) << aerr.ToString();
  KextOptions opts;
  opts.cycle_limit = 150'000;
  auto ext = fx.kext.LoadExtension("runaway", *runaway, &diag, opts);
  ASSERT_TRUE(ext.has_value()) << diag;
  auto fid = fx.kext.FindFunction("runaway:filter_run");
  ASSERT_TRUE(fid.has_value());
  ASSERT_TRUE(fx.dataplane.AddFlowFunction("runaway", *ext, *fid, {w}));
  ASSERT_TRUE(fx.dataplane.AddFlow("all", "ether.type == 0x0800", {w}, &diag)) << diag;

  PacketSpec spec;
  auto frame = BuildPacket(spec);
  const u32 kTotal = 6;
  for (u32 i = 0; i < kTotal; ++i) {
    fx.nic.Inject(frame.data(), static_cast<u32>(frame.size()), 2'000 + i * 2'000);
  }
  auto result = fx.sched.RunAll(2'000'000'000ull);
  EXPECT_EQ(result.exited, 1u);

  const auto& stats = fx.dataplane.stats();
  EXPECT_EQ(stats.filter_aborts, 1u) << "the runaway filter died exactly once";
  ASSERT_EQ(fx.dataplane.flows().size(), 2u);
  EXPECT_TRUE(fx.dataplane.flows()[0].dead);
  EXPECT_FALSE(fx.dataplane.flows()[1].dead);
  EXPECT_EQ(stats.delivered, kTotal) << "every frame reached the worker via the healthy flow";
  EXPECT_EQ(static_cast<u32>(fx.f.kernel().process(w)->exit_code), kTotal);
  // The kext manager recorded the watchdog abort.
  EXPECT_TRUE(fx.kext.extension(*ext)->aborted);
}

// Regression: an IRQ latched in the PIC right before the last runnable
// process blocks is a wakeup source — the scheduler's idle path must service
// it (host-side) instead of declaring deadlock.
TEST(Dataplane, LatchedIrqBeforeBlockIsNotADeadlock) {
  DataplaneFixture fx;
  std::string diag;
  // Syscall 234: on first entry it latches the NIC line *and blocks in the
  // same gate entry* (so the IRQ can never be delivered to a running
  // context — only the scheduler's idle path can service it); the restarted
  // call returns 42.
  Pid w = fx.f.LoadProgram(R"(
  .global main
main:
  mov $234, %eax
  int $0x80
  mov %eax, %ebx          ; exit code = syscall result (42 after the wake)
  mov $SYS_EXIT, %eax
  int $0x80
)",
                           &diag);
  ASSERT_NE(w, 0u) << diag;
  fx.sched.AddProcess(w);
  bool raised_once = false;
  fx.f.kernel().RegisterSyscall(234, [&](Kernel& k, u32, u32, u32) {
    if (!raised_once) {
      raised_once = true;
      k.pic().Raise(kIrqNic);
      k.BlockCurrentForRestart();
      return;
    }
    k.ReturnFromGate(42);
  });
  // Replace the dataplane's NIC handler: wake the blocked worker.
  bool handler_ran = false;
  fx.f.kernel().RegisterIrqHandler(kIrqNic, [&](Kernel& k) {
    handler_ran = true;
    Process* proc = k.process(w);
    if (proc != nullptr && proc->state == ProcessState::kBlocked) k.WakeProcess(*proc);
  });
  auto result = fx.sched.RunAll(1'000'000'000ull);
  EXPECT_TRUE(handler_ran) << "the latched IRQ must be serviced from the idle path";
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.exited, 1u);
  EXPECT_EQ(fx.f.kernel().process(w)->exit_code, 42);
}

TEST(Dataplane, MultiWorkerWebServerServesAllClients) {
  MultiServerConfig cfg;
  cfg.workers = 3;
  cfg.clients = 5;
  cfg.total_requests = 30;
  MultiServerResult r = RunMultiWorkerServer(cfg);
  EXPECT_TRUE(r.ok) << r.diag;
  EXPECT_EQ(r.served, cfg.total_requests);
  EXPECT_EQ(r.parsed_requests, cfg.total_requests) << "every request went through HTTP parse";
  EXPECT_EQ(r.filter_invocations, cfg.total_requests);
  EXPECT_GT(r.nic_irqs, 0u);
  EXPECT_GT(r.timer_irqs, 0u);
  EXPECT_GT(r.requests_per_sec, 0.0);
  ASSERT_EQ(r.per_worker_served.size(), cfg.workers);
  i64 sum = 0;
  for (i32 s : r.per_worker_served) {
    EXPECT_GE(s, 0) << "every worker exited cleanly";
    sum += s;
  }
  EXPECT_EQ(static_cast<u64>(sum), r.served);
}

}  // namespace
}  // namespace palladium
