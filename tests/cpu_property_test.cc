// Property tests for CPU semantics: ALU results and flags must agree with
// host-side 32-bit arithmetic across pseudo-random operand sweeps, and
// memory round-trips must hold for every width and addressing form.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"
#include "src/hw/smp.h"
#include "src/hw/timer.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "tests/fuzz_util.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

// NextRand / FaultRecord / the fuzz-program builder live in
// tests/fuzz_util.h, shared with the threaded-SMP differential
// (tests/smp_threaded_test.cc).

// Runs `op a, b` with a in EAX, b in EBX and returns EAX plus the flags.
struct AluResult {
  u32 value;
  bool cf, zf, sf, of;
};

AluResult RunAlu(const std::string& mnemonic, u32 a, u32 b) {
  BareMachine bm;
  std::string diag;
  std::string src = R"(
  .global main
main:
  mov $)" + std::to_string(a) + R"(, %eax
  mov $)" + std::to_string(b) + R"(, %ebx
  )" + mnemonic + R"( %ebx, %eax
  hlt
)";
  auto img = bm.LoadProgram(src, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  StopInfo stop = bm.Run(10'000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  u32 fl = bm.cpu().eflags();
  return AluResult{bm.cpu().reg(Reg::kEax), (fl & kFlagCf) != 0, (fl & kFlagZf) != 0,
                   (fl & kFlagSf) != 0, (fl & kFlagOf) != 0};
}

class AluProperty : public ::testing::TestWithParam<u64> {};

TEST_P(AluProperty, AddMatchesHostSemantics) {
  u64 state = GetParam();
  for (int i = 0; i < 8; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    AluResult r = RunAlu("add", a, b);
    u32 expected = a + b;
    EXPECT_EQ(r.value, expected) << a << "+" << b;
    EXPECT_EQ(r.cf, expected < a);
    EXPECT_EQ(r.zf, expected == 0);
    EXPECT_EQ(r.sf, (expected >> 31) != 0);
    bool of = ((~(a ^ b)) & (a ^ expected) & 0x80000000u) != 0;
    EXPECT_EQ(r.of, of);
  }
}

TEST_P(AluProperty, SubMatchesHostSemantics) {
  u64 state = GetParam() * 3 + 1;
  for (int i = 0; i < 8; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    AluResult r = RunAlu("sub", a, b);
    u32 expected = a - b;
    EXPECT_EQ(r.value, expected);
    EXPECT_EQ(r.cf, a < b);
    EXPECT_EQ(r.zf, expected == 0);
    EXPECT_EQ(r.sf, (expected >> 31) != 0);
  }
}

TEST_P(AluProperty, LogicOpsMatchHostSemantics) {
  u64 state = GetParam() * 7 + 5;
  for (int i = 0; i < 5; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    EXPECT_EQ(RunAlu("and", a, b).value, a & b);
    EXPECT_EQ(RunAlu("or", a, b).value, a | b);
    EXPECT_EQ(RunAlu("xor", a, b).value, a ^ b);
    AluResult r = RunAlu("and", a, b);
    EXPECT_FALSE(r.cf);
    EXPECT_FALSE(r.of);
    EXPECT_EQ(r.zf, (a & b) == 0);
  }
}

TEST_P(AluProperty, MulDivMatchHostSemantics) {
  u64 state = GetParam() * 13 + 11;
  for (int i = 0; i < 5; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    EXPECT_EQ(RunAlu("imul", a, b).value,
              static_cast<u32>(static_cast<i64>(static_cast<i32>(a)) *
                               static_cast<i32>(b)));
    if (b != 0) {
      EXPECT_EQ(RunAlu("udiv", a, b).value, a / b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluProperty, ::testing::Values(1u, 42u, 0xDEADBEEFu, 7777u));

class ShiftProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShiftProperty, ShiftsMatchHostSemantics) {
  const int amount = GetParam();
  u64 state = 1000 + amount;
  for (int i = 0; i < 4; ++i) {
    u32 a = NextRand(&state);
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $)" + std::to_string(a) + R"(, %eax
  mov %eax, %ebx
  mov %eax, %ecx
  shl $)" + std::to_string(amount) + R"(, %eax
  shr $)" + std::to_string(amount) + R"(, %ebx
  sar $)" + std::to_string(amount) + R"(, %ecx
  hlt
)";
    auto img = bm.LoadProgram(src, kCodeBase, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEax), a << amount);
    EXPECT_EQ(bm.cpu().reg(Reg::kEbx), a >> amount);
    EXPECT_EQ(bm.cpu().reg(Reg::kEcx), static_cast<u32>(static_cast<i32>(a) >> amount));
  }
}

INSTANTIATE_TEST_SUITE_P(Amounts, ShiftProperty, ::testing::Values(0, 1, 7, 16, 31));

class MemWidthProperty : public ::testing::TestWithParam<int> {};

TEST_P(MemWidthProperty, StoreLoadRoundTrip) {
  const int width = GetParam();
  const char* st = width == 1 ? "st8" : (width == 2 ? "st16" : "st");
  const char* ld = width == 1 ? "ld8" : (width == 2 ? "ld16" : "ld");
  u64 state = 99 + width;
  for (int i = 0; i < 6; ++i) {
    u32 v = NextRand(&state);
    u32 mask = width == 1 ? 0xFFu : (width == 2 ? 0xFFFFu : 0xFFFFFFFFu);
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $)" + std::to_string(v) + R"(, %eax
  )" + st + R"( %eax, 0(%ebx)
  mov $0, %eax
  )" + ld + R"( 0(%ebx), %eax
  hlt
)";
    auto img = bm.LoadProgram(src, kCodeBase, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEax), v & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MemWidthProperty, ::testing::Values(1, 2, 4));

TEST(MemAddressing, PageCrossingAccess) {
  // A 4-byte store straddling a page boundary must behave like two partial
  // accesses on consecutive pages.
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $0x20FFE, %ebx     ; 2 bytes before a page boundary
  mov $0xAABBCCDD, %eax
  st %eax, 0(%ebx)
  ld 0(%ebx), %ecx
  ld8 2(%ebx), %edx      ; first byte of the next page: 0xBB
  hlt
)",
                            0x10000, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEcx), 0xAABBCCDDu);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0xBBu);
}

TEST(MemAddressing, ScaledIndexSweep) {
  for (u32 scale : {1u, 2u, 4u, 8u}) {
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $3, %ecx
  mov $0x77, %eax
  st %eax, 0(%ebx,%ecx,)" + std::to_string(scale) +
                      R"()
  ld )" + std::to_string(3 * scale) +
                      R"((%ebx), %edx
  hlt
)";
    auto img = bm.LoadProgram(src, 0x10000, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0x77u) << "scale " << scale;
  }
}

// --- Fast/slow differential fuzz ---------------------------------------------
// Randomized instruction sequences executed twice — D-TLB fast path on vs the
// per-byte oracle — must produce identical architectural state, memory
// images, cycle counts, TLB statistics and fault streams. Faulting
// instructions are skipped and recorded so hostile page setups yield long
// fault streams instead of stopping at the first one.

struct DiffRun {
  StopReason final_reason = StopReason::kHalted;
  std::vector<FaultRecord> faults;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
  std::vector<u8> memory;
};

constexpr u32 kFuzzDataBase = 0x200000;
constexpr u32 kFuzzDataSpan = 4 * 4096;
constexpr u32 kFuzzMem = 8u << 20;

// Hostile-page setups rotated across seeds: none, a read-only page and a
// supervisor (PPL 0) page inside the data window.
enum class FuzzMode : int { kPlainCpl0 = 0, kPlainCpl3, kHostileCpl3, kHostileCpl0, kCount };

std::vector<u8> EncodeFuzzProgram(u64 seed, u32 iterations, u32 body_len) {
  return EncodeLoopedFuzzProgram(seed, iterations, body_len, kCodeBase, kFuzzDataBase,
                                 kFuzzDataSpan);
}

DiffRun RunDifferential(const std::vector<u8>& program, FuzzMode mode, bool dtlb) {
  BareMachineConfig config;
  config.physical_memory_bytes = kFuzzMem;
  BareMachine bm(config);
  bm.cpu().set_dtlb_enabled(dtlb);
  EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase, program.data(),
                                 static_cast<u32>(program.size())));
  const bool hostile = mode == FuzzMode::kHostileCpl3 || mode == FuzzMode::kHostileCpl0;
  if (hostile) {
    PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                       [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + kPageSize, 0, kPteWrite));   // read-only
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + 2 * kPageSize, 0, kPteUser));  // PPL 0
  }
  const u8 cpl =
      (mode == FuzzMode::kPlainCpl3 || mode == FuzzMode::kHostileCpl3) ? 3 : 0;
  bm.Start(kCodeBase, cpl, kStackTop);

  DiffRun out;
  for (;;) {
    StopInfo stop = bm.Run(50'000'000);
    if (stop.reason == StopReason::kFault && out.faults.size() < 4096) {
      out.faults.push_back(FaultRecord{bm.cpu().eip(), stop.fault.vector,
                                       stop.fault.error_code, stop.fault.linear_address});
      // Skip the faulting instruction and keep going — the hostile pages
      // produce a long fault stream, which both paths must reproduce.
      bm.cpu().set_eip(bm.cpu().eip() + kInsnSize);
      continue;
    }
    out.final_reason = stop.reason;
    break;
  }
  out.ctx = bm.cpu().SaveContext();
  out.cycles = bm.cpu().cycles();
  out.instructions = bm.cpu().instructions_retired();
  out.tlb_hits = bm.cpu().tlb_stats().hits;
  out.tlb_misses = bm.cpu().tlb_stats().misses;
  out.memory.assign(bm.pm().HostData(), bm.pm().HostData() + bm.pm().size());
  return out;
}

TEST(DtlbDifferential, FastAndSlowPathsAgreeOnRandomPrograms) {
  constexpr u32 kSeeds = 52;
  constexpr u32 kIterations = 400;
  constexpr u32 kBodyLen = 224;  // > 10k executed instructions per seed
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    const FuzzMode mode = static_cast<FuzzMode>(seed % static_cast<u64>(FuzzMode::kCount));
    const std::vector<u8> program = EncodeFuzzProgram(seed, kIterations, kBodyLen);
    DiffRun fast = RunDifferential(program, mode, /*dtlb=*/true);
    DiffRun slow = RunDifferential(program, mode, /*dtlb=*/false);

    SCOPED_TRACE("seed " + std::to_string(seed) + " mode " +
                 std::to_string(static_cast<int>(mode)));
    EXPECT_EQ(fast.final_reason, slow.final_reason);
    EXPECT_GE(fast.instructions, 10'000u) << "fuzz body too small to be meaningful";
    EXPECT_EQ(fast.instructions, slow.instructions);
    EXPECT_EQ(fast.cycles, slow.cycles) << "cycle model diverged";
    EXPECT_EQ(fast.tlb_hits, slow.tlb_hits) << "TLB hit accounting diverged";
    EXPECT_EQ(fast.tlb_misses, slow.tlb_misses);

    ASSERT_EQ(fast.faults.size(), slow.faults.size()) << "fault streams differ in length";
    for (size_t i = 0; i < fast.faults.size(); ++i) {
      EXPECT_TRUE(fast.faults[i] == slow.faults[i]) << "fault " << i << " diverged";
    }

    EXPECT_EQ(fast.ctx.eip, slow.ctx.eip);
    EXPECT_EQ(fast.ctx.eflags, slow.ctx.eflags);
    EXPECT_EQ(fast.ctx.cpl, slow.ctx.cpl);
    for (u8 r = 0; r < kNumRegs; ++r) {
      EXPECT_EQ(fast.ctx.regs[r], slow.ctx.regs[r]) << "reg " << static_cast<int>(r);
    }
    for (u8 s = 0; s < kNumSegRegs; ++s) {
      EXPECT_EQ(fast.ctx.segs[s].selector.raw(), slow.ctx.segs[s].selector.raw());
    }
    ASSERT_EQ(fast.memory.size(), slow.memory.size());
    EXPECT_EQ(std::memcmp(fast.memory.data(), slow.memory.data(), fast.memory.size()), 0)
        << "memory images diverged";
  }
}

// --- Async-interrupt differential fuzz ----------------------------------------
// The same random-program harness with a hardware timer and a scripted
// second device injecting IRQs at pseudo-random cycle counts. Delivery is
// keyed off the cycle counter at retire boundaries, so ALL architectural
// effects — registers, memory (ISR counters, interrupt frames), cycles,
// fault stream AND interrupt stream — must be identical in the eight
// engine configurations: (block engine on/off) x (decode cache on/off) x
// (D-TLB on/off). (Blocks require the decode cache; the blocks-on/decode-off
// configs degenerate to the per-instruction path and pin that the switch
// interplay stays exact.)

class ScriptedIrqDevice : public IrqDevice {
 public:
  ScriptedIrqDevice(InterruptController& pic, u32 irq, std::vector<u64> times)
      : pic_(pic), irq_(irq), times_(std::move(times)) {}
  u64 next_event() const override { return next_ < times_.size() ? times_[next_] : kIdle; }
  void Advance(u64 now) override {
    while (next_ < times_.size() && times_[next_] <= now) {
      pic_.Raise(irq_);
      ++next_;
    }
  }

 private:
  InterruptController& pic_;
  u32 irq_;
  std::vector<u64> times_;
  size_t next_ = 0;
};

constexpr u32 kIsrBase = 0x8000;       // one ISR per IRQ, 0x100 apart
constexpr u32 kIsrCounters = 0x9000;   // ISR hit counters (outside the fuzz window)

// push %eax ; eax <- [counter] ; inc ; [counter] <- eax ; pop %eax ; iret
std::vector<u8> EncodeCounterIsr(u32 counter_addr) {
  std::vector<Insn> insns(6);
  insns[0].opcode = Opcode::kPushR;
  insns[0].r1 = static_cast<u8>(Reg::kEax);
  insns[1].opcode = Opcode::kLoad;
  insns[1].r1 = static_cast<u8>(Reg::kEax);
  insns[1].r2 = kNoBaseReg;
  insns[1].size = 4;
  insns[1].disp = static_cast<i32>(counter_addr);
  insns[2].opcode = Opcode::kIncR;
  insns[2].r1 = static_cast<u8>(Reg::kEax);
  insns[3].opcode = Opcode::kStore;
  insns[3].r1 = static_cast<u8>(Reg::kEax);
  insns[3].r2 = kNoBaseReg;
  insns[3].size = 4;
  insns[3].disp = static_cast<i32>(counter_addr);
  insns[4].opcode = Opcode::kPopR;
  insns[4].r1 = static_cast<u8>(Reg::kEax);
  insns[5].opcode = Opcode::kIret;
  std::vector<u8> bytes(insns.size() * kInsnSize);
  for (size_t i = 0; i < insns.size(); ++i) insns[i].EncodeTo(bytes.data() + i * kInsnSize);
  return bytes;
}

struct IrqDiffRun {
  StopReason final_reason = StopReason::kHalted;
  std::vector<FaultRecord> faults;
  std::vector<Cpu::IrqEvent> irqs;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 tlb_hits = 0;
  u64 tlb_misses = 0;
  std::vector<u8> memory;
  // Architectural flight-recorder stream: tracing+profiling run fully
  // enabled in every mode, and the kArch events must be byte-identical.
  std::vector<obs::Event> arch_events;
};

IrqDiffRun RunDifferentialIrq(const std::vector<u8>& program, FuzzMode mode, bool blocks,
                              bool trace, bool decode_cache, bool dtlb, u64 timer_period,
                              const std::vector<u64>& nic_times) {
  BareMachineConfig config;
  config.physical_memory_bytes = kFuzzMem;
  BareMachine bm(config);
  bm.cpu().set_block_engine_enabled(blocks);
  bm.cpu().set_trace_engine_enabled(trace);
  bm.cpu().set_decode_cache_enabled(decode_cache);
  bm.cpu().set_dtlb_enabled(dtlb);
  // Telemetry fully on: observation must be free in simulated time, so the
  // differential assertions below hold with the recorder and profiler
  // attached. Capacity is sized so nothing wraps (engine-event counts differ
  // across modes and would otherwise evict different arch events).
  obs::FlightRecorder recorder;
  recorder.Reset(1, 1u << 16);
  obs::CycleProfile profiler;
  profiler.Reset(1, bm.cpu().cycle_model().tlb_miss_penalty);
  bm.cpu().set_recorder(&recorder, 0);
  bm.cpu().set_profiler(&profiler, 0);
  EXPECT_TRUE(bm.pm().WriteBlock(kCodeBase, program.data(), static_cast<u32>(program.size())));
  auto isr0 = EncodeCounterIsr(kIsrCounters + 0);
  auto isr5 = EncodeCounterIsr(kIsrCounters + 4);
  EXPECT_TRUE(bm.pm().WriteBlock(kIsrBase, isr0.data(), static_cast<u32>(isr0.size())));
  EXPECT_TRUE(bm.pm().WriteBlock(kIsrBase + 0x100, isr5.data(), static_cast<u32>(isr5.size())));
  bm.idt().Set(0x20, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          kIsrBase, 0));
  bm.idt().Set(0x25, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          kIsrBase + 0x100, 0));

  const bool hostile = mode == FuzzMode::kHostileCpl3 || mode == FuzzMode::kHostileCpl0;
  if (hostile) {
    PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                       [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + kPageSize, 0, kPteWrite));
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + 2 * kPageSize, 0, kPteUser));
  }
  const u8 cpl = (mode == FuzzMode::kPlainCpl3 || mode == FuzzMode::kHostileCpl3) ? 3 : 0;
  bm.Start(kCodeBase, cpl, kStackTop);
  bm.cpu().set_eflags(kFlagIf);

  InterruptController pic;
  pic.set_auto_eoi(true);  // simulated ISRs have no EOI channel
  IrqHub hub(pic);
  IntervalTimer timer(pic, 0);
  ScriptedIrqDevice nic(pic, 5, nic_times);
  hub.AddDevice(&timer);
  hub.AddDevice(&nic);
  timer.Program(timer_period, 0);
  bm.cpu().set_irq_hub(&hub);

  IrqDiffRun out;
  bm.cpu().set_irq_trace(&out.irqs);
  for (;;) {
    StopInfo stop = bm.Run(30'000'000);
    if (stop.reason == StopReason::kFault && out.faults.size() < 4096) {
      out.faults.push_back(FaultRecord{bm.cpu().eip(), stop.fault.vector,
                                       stop.fault.error_code, stop.fault.linear_address});
      bm.cpu().set_eip(bm.cpu().eip() + kInsnSize);
      continue;
    }
    out.final_reason = stop.reason;
    break;
  }
  bm.cpu().set_irq_trace(nullptr);
  out.ctx = bm.cpu().SaveContext();
  out.cycles = bm.cpu().cycles();
  out.instructions = bm.cpu().instructions_retired();
  out.tlb_hits = bm.cpu().tlb_stats().hits;
  out.tlb_misses = bm.cpu().tlb_stats().misses;
  out.memory.assign(bm.pm().HostData(), bm.pm().HostData() + bm.pm().size());
  EXPECT_EQ(recorder.TotalDropped(), 0u) << "fuzz ring sized too small to compare streams";
  out.arch_events = recorder.ArchEvents(0);
  return out;
}

TEST(IrqDifferential, AllSixteenModesAgreeUnderRandomInterrupts) {
  constexpr u32 kSeeds = 16;
  constexpr u32 kIterations = 300;
  constexpr u32 kBodyLen = 160;
  u64 total_irqs = 0;
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    const FuzzMode mode = static_cast<FuzzMode>(seed % static_cast<u64>(FuzzMode::kCount));
    const std::vector<u8> program = EncodeFuzzProgram(seed * 31 + 7, kIterations, kBodyLen);
    const u64 timer_period = 2'000 + (seed * 977) % 9'000;
    // Scripted second device: IRQ 5 at pseudo-random cycle counts.
    std::vector<u64> nic_times;
    u64 st = seed * 0xA24BAED4963EE407ull + 3;
    u64 t = 1'000;
    for (int i = 0; i < 40; ++i) {
      t += 500 + NextRand(&st) % 120'000;
      nic_times.push_back(t);
    }

    struct ModeSpec {
      bool blocks, trace, decode, dtlb;
      const char* name;
    };
    // Full 16-mode cross: engine (block/insn) x trace tier (hot/off) x
    // decode cache x D-TLB. The trace axis is inert without the block
    // engine and decode cache (the tier is entered from RunBlock over a
    // decoded page), but the inert combinations still pin down that merely
    // enabling the tier changes nothing.
    const ModeSpec specs[] = {{true, true, true, true, "block+trace/fast/fast"},
                              {true, true, true, false, "block+trace/fast/oracle"},
                              {true, true, false, true, "block+trace/oracle/fast"},
                              {true, true, false, false, "block+trace/oracle/oracle"},
                              {true, false, true, true, "block/fast/fast"},
                              {true, false, true, false, "block/fast/oracle"},
                              {true, false, false, true, "block/oracle/fast"},
                              {true, false, false, false, "block/oracle/oracle"},
                              {false, true, true, true, "insn+trace/fast/fast"},
                              {false, true, true, false, "insn+trace/fast/oracle"},
                              {false, true, false, true, "insn+trace/oracle/fast"},
                              {false, true, false, false, "insn+trace/oracle/oracle"},
                              {false, false, true, true, "insn/fast/fast"},
                              {false, false, true, false, "insn/fast/oracle"},
                              {false, false, false, true, "insn/oracle/fast"},
                              {false, false, false, false, "insn/oracle/oracle"}};
    IrqDiffRun ref;
    for (int s = 0; s < 16; ++s) {
      IrqDiffRun run = RunDifferentialIrq(program, mode, specs[s].blocks, specs[s].trace,
                                          specs[s].decode, specs[s].dtlb, timer_period,
                                          nic_times);
      SCOPED_TRACE("seed " + std::to_string(seed) + " config " + specs[s].name);
      if (s == 0) {
        ref = std::move(run);
        // Forward branches can shorten a seed's run; at least one delivery
        // per seed plus a healthy aggregate (checked below) keeps the fuzz
        // honest about interrupts actually firing.
        EXPECT_GE(ref.irqs.size(), 1u) << "interrupts must actually have fired";
        total_irqs += ref.irqs.size();
        continue;
      }
      EXPECT_EQ(run.final_reason, ref.final_reason);
      EXPECT_EQ(run.instructions, ref.instructions);
      EXPECT_EQ(run.cycles, ref.cycles) << "cycle model diverged";
      ASSERT_EQ(run.faults.size(), ref.faults.size());
      for (size_t i = 0; i < run.faults.size(); ++i) {
        EXPECT_TRUE(run.faults[i] == ref.faults[i]) << "fault " << i << " diverged";
      }
      ASSERT_EQ(run.irqs.size(), ref.irqs.size()) << "interrupt streams differ in length";
      for (size_t i = 0; i < run.irqs.size(); ++i) {
        EXPECT_TRUE(run.irqs[i] == ref.irqs[i])
            << "irq " << i << " diverged: vector " << static_cast<int>(run.irqs[i].vector)
            << " at cycle " << run.irqs[i].cycle << " vs " << ref.irqs[i].cycle;
      }
      ASSERT_EQ(run.arch_events.size(), ref.arch_events.size())
          << "flight-recorder arch streams differ in length";
      for (size_t i = 0; i < run.arch_events.size(); ++i) {
        EXPECT_TRUE(run.arch_events[i] == ref.arch_events[i])
            << "arch event " << i << " (" << EventTypeName(run.arch_events[i].type)
            << ") diverged at cycle " << run.arch_events[i].cycle << " vs "
            << ref.arch_events[i].cycle;
      }
      EXPECT_EQ(run.ctx.eip, ref.ctx.eip);
      EXPECT_EQ(run.ctx.eflags, ref.ctx.eflags);
      EXPECT_EQ(run.ctx.cpl, ref.ctx.cpl);
      for (u8 r = 0; r < kNumRegs; ++r) {
        EXPECT_EQ(run.ctx.regs[r], ref.ctx.regs[r]) << "reg " << static_cast<int>(r);
      }
      // TLB statistics are an implementation counter of the *fetch* path:
      // they match whenever the decode-cache setting matches (the D-TLB
      // keeps them exact by construction); across decode settings only the
      // miss count is comparable.
      if (specs[s].decode == specs[0].decode) {
        EXPECT_EQ(run.tlb_hits, ref.tlb_hits);
      }
      EXPECT_EQ(run.tlb_misses, ref.tlb_misses);
      ASSERT_EQ(run.memory.size(), ref.memory.size());
      EXPECT_EQ(std::memcmp(run.memory.data(), ref.memory.data(), run.memory.size()), 0)
          << "memory images diverged";
    }
  }
  EXPECT_GT(total_irqs, 60u) << "the interrupt fuzz barely interrupted anything";
}

// --- SMP differential fuzz -----------------------------------------------------
// N vCPUs share physical memory, the identity page tables and the fuzz data
// window; the deterministic min-cycle interleaver (src/hw/smp.h) steps them
// at instruction-retire boundaries, and scripted cross-CPU shootdowns flip a
// window page's W bit at pseudo-random global cycles, flushing the page on
// every core (the kernel shootdown protocol, driven by hand). Because per-CPU
// cycle counters are byte-identical with the fast paths on or off, the whole
// interleave — and therefore every per-vCPU register file, fault stream,
// cycle count and the shared memory image — must be identical in all four
// (decode cache × D-TLB) configurations, for N ∈ {1, 2, 4}.

constexpr u32 kSmpCodeStride = 0x8000;  // per-vCPU program base spacing
// Per-vCPU stacks, one page each. Geometry rule: no page a *data* access
// can touch may share a direct-mapped TLB set with a code page (sets
// 16/24/32/40 here). The decoded-page fetch path performs fewer TLB
// lookups than the per-byte oracle (that is what makes it fast), so a
// code/data set conflict would make TLB miss counts — and thus cycle
// counts — legitimately mode-dependent. Note the "data" set includes pages
// *above* each stack top: a runtime-unbalanced forward branch can pop more
// than was pushed, reading past the initial ESP. The uniprocessor fuzz
// obeys the same rule implicitly (stack pages land in sets 63/0).
constexpr u32 kSmpStackTop = 0x80000;
constexpr u32 kSmpStackStride = 0x2000;

struct SmpCpuResult {
  StopReason final_reason = StopReason::kHalted;
  std::vector<FaultRecord> faults;
  std::vector<u64> fault_cycles;
  CpuContext ctx;
  u64 cycles = 0;
  u64 instructions = 0;
  std::vector<obs::Event> arch_events;
};

struct SmpDiffRun {
  std::vector<SmpCpuResult> cpus;
  std::vector<u8> memory;
};

SmpDiffRun RunSmpDifferential(const std::vector<std::vector<u8>>& programs, FuzzMode mode,
                              bool blocks, bool trace, bool decode_cache, bool dtlb,
                              const std::vector<u64>& shootdown_cycles) {
  const u32 n = static_cast<u32>(programs.size());
  BareMachineConfig config;
  config.physical_memory_bytes = kFuzzMem;
  config.num_cpus = n;
  BareMachine bm(config);
  Machine& m = bm.machine();
  EXPECT_EQ(m.num_cpus(), n);
  // Telemetry fully on (one recorder track and one profiler slot per vCPU);
  // the per-vCPU differential assertions below must hold regardless.
  obs::FlightRecorder recorder;
  recorder.Reset(n, 1u << 16);
  obs::CycleProfile profiler;
  profiler.Reset(n, m.cpu(0).cycle_model().tlb_miss_penalty);
  for (u32 c = 0; c < n; ++c) {
    m.cpu(c).set_block_engine_enabled(blocks);
    m.cpu(c).set_trace_engine_enabled(trace);
    m.cpu(c).set_decode_cache_enabled(decode_cache);
    m.cpu(c).set_dtlb_enabled(dtlb);
    m.cpu(c).set_recorder(&recorder, c);
    m.cpu(c).set_profiler(&profiler, c);
  }
  for (u32 c = 0; c < n; ++c) {
    const u32 base = kCodeBase + c * kSmpCodeStride;
    EXPECT_TRUE(bm.pm().WriteBlock(base, programs[c].data(),
                                   static_cast<u32>(programs[c].size())));
  }
  const bool hostile = mode == FuzzMode::kHostileCpl3 || mode == FuzzMode::kHostileCpl0;
  const u32 cr3 = m.cpu(0).cr3();
  auto flush_all = [&m, n](u32 linear) {
    for (u32 c = 0; c < n; ++c) m.cpu(c).tlb().FlushPage(linear);
  };
  if (hostile) {
    PageTableEditor ed(bm.pm(), cr3, flush_all);
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + kPageSize, 0, kPteWrite));   // read-only
    EXPECT_TRUE(ed.UpdateFlags(kFuzzDataBase + 2 * kPageSize, 0, kPteUser));  // PPL 0
  }
  const u8 cpl = (mode == FuzzMode::kPlainCpl3 || mode == FuzzMode::kHostileCpl3) ? 3 : 0;
  for (u32 c = 0; c < n; ++c) {
    bm.StartCpu(c, kCodeBase + c * kSmpCodeStride, cpl, kSmpStackTop - c * kSmpStackStride);
  }

  SmpInterleaver il(m);
  // Scripted cross-CPU shootdowns: toggle the W bit of window page 3 at the
  // given global cycles, flushing the page on every core exactly as the
  // kernel's editor-hook shootdown would.
  bool write_protected = false;
  for (u64 cy : shootdown_cycles) {
    il.AddEvent(cy, [&bm, &m, cr3, &flush_all, &write_protected] {
      PageTableEditor ed(bm.pm(), cr3, flush_all);
      if (write_protected) {
        ed.UpdateFlags(kFuzzDataBase + 3 * kPageSize, kPteWrite, 0);
      } else {
        ed.UpdateFlags(kFuzzDataBase + 3 * kPageSize, 0, kPteWrite);
      }
      write_protected = !write_protected;
      (void)m;
    });
  }

  SmpDiffRun out;
  out.cpus.resize(n);
  il.Run(80'000'000, [&](u32 c, const StopInfo& stop) {
    if (stop.reason == StopReason::kFault && out.cpus[c].faults.size() < 4096) {
      out.cpus[c].faults.push_back(FaultRecord{m.cpu(c).eip(), stop.fault.vector,
                                               stop.fault.error_code,
                                               stop.fault.linear_address});
      out.cpus[c].fault_cycles.push_back(m.cpu(c).cycles());
      m.cpu(c).set_eip(m.cpu(c).eip() + kInsnSize);
      return true;  // keep running past the faulting instruction
    }
    out.cpus[c].final_reason = stop.reason;
    return false;  // halted (or fault overflow): park this vCPU
  });
  for (u32 c = 0; c < n; ++c) {
    out.cpus[c].ctx = m.cpu(c).SaveContext();
    out.cpus[c].cycles = m.cpu(c).cycles();
    out.cpus[c].instructions = m.cpu(c).instructions_retired();
    out.cpus[c].arch_events = recorder.ArchEvents(c);
  }
  EXPECT_EQ(recorder.TotalDropped(), 0u) << "fuzz ring sized too small to compare streams";
  out.memory.assign(bm.pm().HostData(), bm.pm().HostData() + bm.pm().size());
  return out;
}

TEST(SmpDifferential, AllModesAgreePerVcpuUnderSharedMemoryAndShootdowns) {
  constexpr u32 kSeeds = 6;
  constexpr u32 kIterations = 150;
  constexpr u32 kBodyLen = 160;
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    const FuzzMode mode = static_cast<FuzzMode>(seed % static_cast<u64>(FuzzMode::kCount));
    // Scripted shootdown points: pseudo-random global cycles early enough to
    // land inside the run.
    std::vector<u64> shootdowns;
    u64 st = seed * 0x9E3779B97F4A7C15ull + 11;
    u64 t = 1'200;
    for (int i = 0; i < 6; ++i) {
      t += 400 + NextRand(&st) % 4'000;
      shootdowns.push_back(t);
    }
    for (u32 n : {1u, 2u, 4u}) {
      std::vector<std::vector<u8>> programs;
      for (u32 c = 0; c < n; ++c) {
        // Each vCPU gets its own random body, branch targets rebased to its
        // code window. (Shared builder: tests/fuzz_util.h.)
        const u64 pseed = seed * 101 + c * 17 + 3;
        programs.push_back(EncodeLoopedFuzzProgram(pseed, kIterations, kBodyLen,
                                                   kCodeBase + c * kSmpCodeStride,
                                                   kFuzzDataBase, kFuzzDataSpan));
      }

      struct ModeSpec {
        bool blocks, trace, decode, dtlb;
        const char* name;
      };
      // Full 16-mode cross at N=1; the block-engine and trace-tier
      // dimensions are spot-checked against the per-instruction and
      // full-oracle configurations at N=2/4 (each extra SMP mode multiplies
      // the interleaved run count).
      const ModeSpec uni_specs[] = {
          {true, true, true, true, "block+trace/fast/fast"},
          {true, true, true, false, "block+trace/fast/oracle"},
          {true, true, false, true, "block+trace/oracle/fast"},
          {true, true, false, false, "block+trace/oracle/oracle"},
          {true, false, true, true, "block/fast/fast"},
          {true, false, true, false, "block/fast/oracle"},
          {true, false, false, true, "block/oracle/fast"},
          {true, false, false, false, "block/oracle/oracle"},
          {false, true, true, true, "insn+trace/fast/fast"},
          {false, true, true, false, "insn+trace/fast/oracle"},
          {false, true, false, true, "insn+trace/oracle/fast"},
          {false, true, false, false, "insn+trace/oracle/oracle"},
          {false, false, true, true, "insn/fast/fast"},
          {false, false, true, false, "insn/fast/oracle"},
          {false, false, false, true, "insn/oracle/fast"},
          {false, false, false, false, "insn/oracle/oracle"}};
      const ModeSpec smp_specs[] = {
          {true, true, true, true, "block+trace/fast/fast"},
          {true, true, true, false, "block+trace/fast/oracle"},
          {true, false, true, true, "block/fast/fast"},
          {true, false, true, false, "block/fast/oracle"},
          {false, true, true, true, "insn+trace/fast/fast"},
          {false, false, true, true, "insn/fast/fast"},
          {false, false, false, false, "insn/oracle/oracle"}};
      const ModeSpec* specs = n == 1 ? uni_specs : smp_specs;
      const int num_specs = n == 1 ? 16 : 7;
      SmpDiffRun ref;
      for (int s = 0; s < num_specs; ++s) {
        SmpDiffRun run = RunSmpDifferential(programs, mode, specs[s].blocks, specs[s].trace,
                                            specs[s].decode, specs[s].dtlb, shootdowns);
        SCOPED_TRACE("seed " + std::to_string(seed) + " n " + std::to_string(n) +
                     " config " + specs[s].name);
        if (s == 0) {
          ref = std::move(run);
          for (u32 c = 0; c < n; ++c) {
            EXPECT_GE(ref.cpus[c].instructions, 1'000u)
                << "vCPU " << c << " barely executed — fuzz not meaningful";
          }
          continue;
        }
        ASSERT_EQ(run.cpus.size(), ref.cpus.size());
        for (u32 c = 0; c < n; ++c) {
          SCOPED_TRACE("vcpu " + std::to_string(c));
          const SmpCpuResult& a = run.cpus[c];
          const SmpCpuResult& b = ref.cpus[c];
          EXPECT_EQ(a.final_reason, b.final_reason);
          EXPECT_EQ(a.instructions, b.instructions);
          EXPECT_EQ(a.cycles, b.cycles) << "cycle model diverged";
          ASSERT_EQ(a.faults.size(), b.faults.size()) << "fault streams differ in length";
          for (size_t i = 0; i < a.faults.size(); ++i) {
            EXPECT_TRUE(a.faults[i] == b.faults[i])
                << "fault " << i << " diverged: eip " << std::hex << a.faults[i].eip
                << " vs " << b.faults[i].eip << ", err " << a.faults[i].error_code << " vs "
                << b.faults[i].error_code << ", linear " << a.faults[i].linear << " vs "
                << b.faults[i].linear << std::dec << ", vector "
                << static_cast<int>(a.faults[i].vector) << " vs "
                << static_cast<int>(b.faults[i].vector) << ", at cycle "
                << a.fault_cycles[i] << " vs " << b.fault_cycles[i];
          }
          EXPECT_EQ(a.ctx.eip, b.ctx.eip);
          EXPECT_EQ(a.ctx.eflags, b.ctx.eflags);
          EXPECT_EQ(a.ctx.cpl, b.ctx.cpl);
          for (u8 r = 0; r < kNumRegs; ++r) {
            EXPECT_EQ(a.ctx.regs[r], b.ctx.regs[r]) << "reg " << static_cast<int>(r);
          }
          ASSERT_EQ(a.arch_events.size(), b.arch_events.size())
              << "flight-recorder arch streams differ in length";
          for (size_t i = 0; i < a.arch_events.size(); ++i) {
            EXPECT_TRUE(a.arch_events[i] == b.arch_events[i])
                << "arch event " << i << " diverged";
          }
        }
        ASSERT_EQ(run.memory.size(), ref.memory.size());
        EXPECT_EQ(std::memcmp(run.memory.data(), ref.memory.data(), run.memory.size()), 0)
            << "shared memory images diverged";
      }
    }
  }
}

TEST(Flags, EflagsSurviveInterruptRoundTrip) {
  // Flags are pushed/popped by int/iret; a comparison result must survive a
  // software interrupt.
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
  .global isr
main:
  mov $5, %eax
  cmp $5, %eax          ; ZF := 1
  int $0x40
  je good               ; ZF must still be set
  mov $0, %edi
  hlt
good:
  mov $1, %edi
  hlt
isr:
  mov $7, %eax
  cmp $9, %eax          ; clobber flags inside the handler
  iret
)",
                            0x10000, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.idt().Set(0x40, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          *img->Lookup("isr"), 0));
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(100'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 1u);
}

}  // namespace
}  // namespace palladium
