// Property tests for CPU semantics: ALU results and flags must agree with
// host-side 32-bit arithmetic across pseudo-random operand sweeps, and
// memory round-trips must hold for every width and addressing form.
#include <gtest/gtest.h>

#include "src/hw/bare_machine.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

// Deterministic operand generator.
u32 NextRand(u64* state) {
  *state ^= *state >> 12;
  *state ^= *state << 25;
  *state ^= *state >> 27;
  return static_cast<u32>((*state * 0x2545F4914F6CDD1Dull) >> 32);
}

// Runs `op a, b` with a in EAX, b in EBX and returns EAX plus the flags.
struct AluResult {
  u32 value;
  bool cf, zf, sf, of;
};

AluResult RunAlu(const std::string& mnemonic, u32 a, u32 b) {
  BareMachine bm;
  std::string diag;
  std::string src = R"(
  .global main
main:
  mov $)" + std::to_string(a) + R"(, %eax
  mov $)" + std::to_string(b) + R"(, %ebx
  )" + mnemonic + R"( %ebx, %eax
  hlt
)";
  auto img = bm.LoadProgram(src, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  StopInfo stop = bm.Run(10'000);
  EXPECT_EQ(stop.reason, StopReason::kHalted);
  u32 fl = bm.cpu().eflags();
  return AluResult{bm.cpu().reg(Reg::kEax), (fl & kFlagCf) != 0, (fl & kFlagZf) != 0,
                   (fl & kFlagSf) != 0, (fl & kFlagOf) != 0};
}

class AluProperty : public ::testing::TestWithParam<u64> {};

TEST_P(AluProperty, AddMatchesHostSemantics) {
  u64 state = GetParam();
  for (int i = 0; i < 8; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    AluResult r = RunAlu("add", a, b);
    u32 expected = a + b;
    EXPECT_EQ(r.value, expected) << a << "+" << b;
    EXPECT_EQ(r.cf, expected < a);
    EXPECT_EQ(r.zf, expected == 0);
    EXPECT_EQ(r.sf, (expected >> 31) != 0);
    bool of = ((~(a ^ b)) & (a ^ expected) & 0x80000000u) != 0;
    EXPECT_EQ(r.of, of);
  }
}

TEST_P(AluProperty, SubMatchesHostSemantics) {
  u64 state = GetParam() * 3 + 1;
  for (int i = 0; i < 8; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    AluResult r = RunAlu("sub", a, b);
    u32 expected = a - b;
    EXPECT_EQ(r.value, expected);
    EXPECT_EQ(r.cf, a < b);
    EXPECT_EQ(r.zf, expected == 0);
    EXPECT_EQ(r.sf, (expected >> 31) != 0);
  }
}

TEST_P(AluProperty, LogicOpsMatchHostSemantics) {
  u64 state = GetParam() * 7 + 5;
  for (int i = 0; i < 5; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    EXPECT_EQ(RunAlu("and", a, b).value, a & b);
    EXPECT_EQ(RunAlu("or", a, b).value, a | b);
    EXPECT_EQ(RunAlu("xor", a, b).value, a ^ b);
    AluResult r = RunAlu("and", a, b);
    EXPECT_FALSE(r.cf);
    EXPECT_FALSE(r.of);
    EXPECT_EQ(r.zf, (a & b) == 0);
  }
}

TEST_P(AluProperty, MulDivMatchHostSemantics) {
  u64 state = GetParam() * 13 + 11;
  for (int i = 0; i < 5; ++i) {
    u32 a = NextRand(&state), b = NextRand(&state);
    EXPECT_EQ(RunAlu("imul", a, b).value,
              static_cast<u32>(static_cast<i64>(static_cast<i32>(a)) *
                               static_cast<i32>(b)));
    if (b != 0) {
      EXPECT_EQ(RunAlu("udiv", a, b).value, a / b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluProperty, ::testing::Values(1u, 42u, 0xDEADBEEFu, 7777u));

class ShiftProperty : public ::testing::TestWithParam<int> {};

TEST_P(ShiftProperty, ShiftsMatchHostSemantics) {
  const int amount = GetParam();
  u64 state = 1000 + amount;
  for (int i = 0; i < 4; ++i) {
    u32 a = NextRand(&state);
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $)" + std::to_string(a) + R"(, %eax
  mov %eax, %ebx
  mov %eax, %ecx
  shl $)" + std::to_string(amount) + R"(, %eax
  shr $)" + std::to_string(amount) + R"(, %ebx
  sar $)" + std::to_string(amount) + R"(, %ecx
  hlt
)";
    auto img = bm.LoadProgram(src, kCodeBase, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEax), a << amount);
    EXPECT_EQ(bm.cpu().reg(Reg::kEbx), a >> amount);
    EXPECT_EQ(bm.cpu().reg(Reg::kEcx), static_cast<u32>(static_cast<i32>(a) >> amount));
  }
}

INSTANTIATE_TEST_SUITE_P(Amounts, ShiftProperty, ::testing::Values(0, 1, 7, 16, 31));

class MemWidthProperty : public ::testing::TestWithParam<int> {};

TEST_P(MemWidthProperty, StoreLoadRoundTrip) {
  const int width = GetParam();
  const char* st = width == 1 ? "st8" : (width == 2 ? "st16" : "st");
  const char* ld = width == 1 ? "ld8" : (width == 2 ? "ld16" : "ld");
  u64 state = 99 + width;
  for (int i = 0; i < 6; ++i) {
    u32 v = NextRand(&state);
    u32 mask = width == 1 ? 0xFFu : (width == 2 ? 0xFFFFu : 0xFFFFFFFFu);
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $)" + std::to_string(v) + R"(, %eax
  )" + st + R"( %eax, 0(%ebx)
  mov $0, %eax
  )" + ld + R"( 0(%ebx), %eax
  hlt
)";
    auto img = bm.LoadProgram(src, kCodeBase, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEax), v & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MemWidthProperty, ::testing::Values(1, 2, 4));

TEST(MemAddressing, PageCrossingAccess) {
  // A 4-byte store straddling a page boundary must behave like two partial
  // accesses on consecutive pages.
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $0x20FFE, %ebx     ; 2 bytes before a page boundary
  mov $0xAABBCCDD, %eax
  st %eax, 0(%ebx)
  ld 0(%ebx), %ecx
  ld8 2(%ebx), %edx      ; first byte of the next page: 0xBB
  hlt
)",
                            0x10000, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEcx), 0xAABBCCDDu);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0xBBu);
}

TEST(MemAddressing, ScaledIndexSweep) {
  for (u32 scale : {1u, 2u, 4u, 8u}) {
    BareMachine bm;
    std::string diag;
    std::string src = R"(
  .global main
main:
  mov $0x20000, %ebx
  mov $3, %ecx
  mov $0x77, %eax
  st %eax, 0(%ebx,%ecx,)" + std::to_string(scale) +
                      R"()
  ld )" + std::to_string(3 * scale) +
                      R"((%ebx), %edx
  hlt
)";
    auto img = bm.LoadProgram(src, 0x10000, &diag);
    ASSERT_TRUE(img.has_value()) << diag;
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    ASSERT_EQ(bm.Run(10'000).reason, StopReason::kHalted);
    EXPECT_EQ(bm.cpu().reg(Reg::kEdx), 0x77u) << "scale " << scale;
  }
}

TEST(Flags, EflagsSurviveInterruptRoundTrip) {
  // Flags are pushed/popped by int/iret; a comparison result must survive a
  // software interrupt.
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
  .global isr
main:
  mov $5, %eax
  cmp $5, %eax          ; ZF := 1
  int $0x40
  je good               ; ZF must still be set
  mov $0, %edi
  hlt
good:
  mov $1, %edi
  hlt
isr:
  mov $7, %eax
  cmp $9, %eax          ; clobber flags inside the handler
  iret
)",
                            0x10000, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  bm.idt().Set(0x40, SegmentDescriptor::MakeInterruptGate(BareMachine::CodeSelector(0).raw(),
                                                          *img->Lookup("isr"), 0));
  bm.Start(*img->Lookup("main"), 0, kStackTop);
  ASSERT_EQ(bm.Run(100'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEdi), 1u);
}

}  // namespace
}  // namespace palladium
