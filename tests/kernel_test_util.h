// Shared helpers for kernel-level tests: the ABI constants as an assembly
// prelude, and a fixture that assembles, loads and runs user programs.
#ifndef TESTS_KERNEL_TEST_UTIL_H_
#define TESTS_KERNEL_TEST_UTIL_H_

#include <string>

#include "src/asm/assembler.h"
#include "src/hw/machine.h"
#include "src/kernel/kernel.h"

namespace palladium {

// .equ block exposing the kernel ABI to assembly programs.
inline std::string AbiPrelude() {
  return R"(
  .equ SYS_EXIT, 1
  .equ SYS_FORK, 2
  .equ SYS_WRITE, 4
  .equ SYS_GETPID, 20
  .equ SYS_KILL, 37
  .equ SYS_BRK, 45
  .equ SYS_SIGACTION, 67
  .equ SYS_MMAP, 90
  .equ SYS_MUNMAP, 91
  .equ SYS_SIGRETURN, 119
  .equ SYS_MPROTECT, 125
  .equ SYS_INIT_PL, 200
  .equ SYS_SET_RANGE, 201
  .equ SYS_SET_CALL_GATE, 202
  .equ SYS_INVOKE_KEXT, 210
  .equ SYS_SEG_DLOPEN, 212
  .equ SYS_SEG_DLSYM, 213
  .equ SYS_DLSYM, 214
  .equ SYS_SEG_DLCLOSE, 215
  .equ SYS_DLOPEN_UNPROT, 216
  .equ SYS_EXPOSE_SERVICE, 217
  .equ INT_SYSCALL, 0x80
  .equ INT_KSERVICE, 0x81
  .equ KERNEL_RETURN_GATE, 57   ; selector: index 7, RPL 1
)";
}

class KernelFixture {
 public:
  // Default: vCPU count from PALLADIUM_SMP (1 when unset) — the CI matrix
  // runs the whole suite SMP this way. Tests pinning *uniprocessor*
  // scheduling order pass an explicit 1; SMP-specific tests pass 2/4.
  KernelFixture() : KernelFixture(0) {}
  explicit KernelFixture(u32 num_cpus)
      : machine_(MachineConfig{64u << 20, CycleModel::Measured(), num_cpus}),
        kernel_(machine_) {}

  // Assembles `source` (with the ABI prelude prepended), loads it into a new
  // process, and returns the pid (0 on failure, with *diag set).
  Pid LoadProgram(const std::string& source, std::string* diag,
                  const std::string& entry = "main") {
    auto img = AssembleAndLink(AbiPrelude() + source, kUserTextBase, {}, diag);
    if (!img) return 0;
    Pid pid = kernel_.CreateProcess();
    if (pid == 0) {
      *diag = "CreateProcess failed";
      return 0;
    }
    if (!kernel_.LoadUserImage(pid, *img, entry, diag)) return 0;
    images_[pid] = *img;
    return pid;
  }

  RunResult Run(Pid pid, u64 budget = 50'000'000) { return kernel_.RunProcess(pid, budget); }

  Machine& machine() { return machine_; }
  Kernel& kernel() { return kernel_; }
  const LinkedImage& image(Pid pid) { return images_[pid]; }

 private:
  Machine machine_;
  Kernel kernel_;
  std::map<Pid, LinkedImage> images_;
};

}  // namespace palladium

#endif  // TESTS_KERNEL_TEST_UTIL_H_
