// BPF VM tests: validation, host interpretation, serialization, and the
// property that the *simulated* interpreter agrees with the host reference
// on random packets — the Figure-7 baseline must be semantically sound.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/bpf/bpf.h"
#include "src/core/kernel_ext.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/net/packet.h"

namespace palladium {
namespace {

BpfProgram AcceptTcpPort80() {
  // ldb [23]; jeq 6 ? +0 : reject; ldh [36]; jeq 80 ? accept : reject
  BpfProgram p;
  p.Append({BpfOp::kLdBAbs, 0, 0, kOffIpProto});
  p.Append({BpfOp::kJmpJeqK, 0, 3, 6});
  p.Append({BpfOp::kLdHAbs, 0, 0, kOffDstPort});
  p.Append({BpfOp::kJmpJeqK, 0, 1, 80});
  p.Append({BpfOp::kRetK, 0, 0, 1});
  p.Append({BpfOp::kRetK, 0, 0, 0});
  return p;
}

TEST(BpfValidate, AcceptsWellFormed) {
  std::string err;
  EXPECT_TRUE(AcceptTcpPort80().Validate(&err)) << err;
}

TEST(BpfValidate, RejectsEmpty) {
  BpfProgram p;
  std::string err;
  EXPECT_FALSE(p.Validate(&err));
}

TEST(BpfValidate, RejectsOutOfRangeJump) {
  BpfProgram p;
  p.Append({BpfOp::kJmpJeqK, 10, 0, 1});
  p.Append({BpfOp::kRetK, 0, 0, 0});
  std::string err;
  EXPECT_FALSE(p.Validate(&err));
  EXPECT_NE(err.find("target"), std::string::npos);
}

TEST(BpfValidate, RejectsFallOffEnd) {
  BpfProgram p;
  p.Append({BpfOp::kLdImm, 0, 0, 1});
  std::string err;
  EXPECT_FALSE(p.Validate(&err));
}

// Regression: `i + 1 + k` was computed in 32 bits, so a huge k wrapped the
// "forward" target back into range — validation passed and the interpreters
// looped forever (a wrapped forward jump is a backward jump).
TEST(BpfValidate, RejectsWrappingJaTarget) {
  BpfProgram p;
  p.Append({BpfOp::kJmpJa, 0, 0, 0xFFFFFFFFu});  // pc += 1 + k wraps to pc
  p.Append({BpfOp::kRetK, 0, 0, 1});
  std::string err;
  EXPECT_FALSE(p.Validate(&err));
  EXPECT_NE(err.find("target"), std::string::npos);

  BpfProgram q;
  q.Append({BpfOp::kJmpJa, 0, 0, 0xFFFFFFFEu});  // wraps to pc - 1
  q.Append({BpfOp::kRetK, 0, 0, 1});
  EXPECT_FALSE(q.Validate(&err));
}

TEST(BpfHost, MatchesAndRejects) {
  BpfProgram p = AcceptTcpPort80();
  PacketSpec hit;
  hit.proto = kIpProtoTcp;
  hit.dst_port = 80;
  auto pkt = BuildPacket(hit);
  EXPECT_EQ(BpfInterpretHost(p, pkt.data(), static_cast<u32>(pkt.size())), 1u);

  PacketSpec miss = hit;
  miss.dst_port = 443;
  auto pkt2 = BuildPacket(miss);
  EXPECT_EQ(BpfInterpretHost(p, pkt2.data(), static_cast<u32>(pkt2.size())), 0u);

  PacketSpec udp = hit;
  udp.proto = kIpProtoUdp;
  auto pkt3 = BuildPacket(udp);
  EXPECT_EQ(BpfInterpretHost(p, pkt3.data(), static_cast<u32>(pkt3.size())), 0u);
}

TEST(BpfHost, ShortPacketRejected) {
  BpfProgram p = AcceptTcpPort80();
  u8 tiny[4] = {0, 0, 0, 0};
  EXPECT_EQ(BpfInterpretHost(p, tiny, 4), 0u);
}

// Regression: the load bounds check `k + 4 > len` wrapped at 2^32, so a
// near-UINT32_MAX offset passed the check and read out of bounds of the
// host packet buffer (ASan-visible heap overflow).
TEST(BpfHost, HugeLoadOffsetRejectedNotWrapped) {
  BpfProgram w;
  w.Append({BpfOp::kLdWAbs, 0, 0, 0xFFFFFFFEu});  // k + 4 wraps to 2
  w.Append({BpfOp::kRetK, 0, 0, 1});
  std::string err;
  ASSERT_TRUE(w.Validate(&err)) << err;
  std::vector<u8> pkt(64, 0xAB);
  BpfHostStats stats;
  EXPECT_EQ(BpfInterpretHost(w, pkt.data(), static_cast<u32>(pkt.size()), &stats), 0u);
  EXPECT_EQ(stats.bad_accesses, 1u);

  BpfProgram h;
  h.Append({BpfOp::kLdHAbs, 0, 0, 0xFFFFFFFFu});  // k + 2 wraps to 1
  h.Append({BpfOp::kRetK, 0, 0, 1});
  ASSERT_TRUE(h.Validate(&err)) << err;
  EXPECT_EQ(BpfInterpretHost(h, pkt.data(), static_cast<u32>(pkt.size())), 0u);
}

TEST(BpfHost, AluAndJsetWork) {
  BpfProgram p;
  p.Append({BpfOp::kLdImm, 0, 0, 0xF0});
  p.Append({BpfOp::kAluAndK, 0, 0, 0x30});
  p.Append({BpfOp::kAluAddK, 0, 0, 2});
  p.Append({BpfOp::kJmpJsetK, 0, 1, 0x02});
  p.Append({BpfOp::kRetA, 0, 0, 0});
  p.Append({BpfOp::kRetK, 0, 0, 99});
  u8 dummy[1] = {0};
  EXPECT_EQ(BpfInterpretHost(p, dummy, 1), 0x32u);
}

TEST(BpfSerialize, LayoutIsEightBytesPerInsn) {
  BpfProgram p = AcceptTcpPort80();
  auto bytes = p.Serialize();
  EXPECT_EQ(bytes.size(), p.size() * 8);
  // First insn: ldb, k = kOffIpProto.
  EXPECT_EQ(bytes[0], 0x30);
  u32 k = 0;
  std::memcpy(&k, &bytes[4], 4);
  EXPECT_EQ(k, kOffIpProto);
}

// --- Simulated interpreter vs host reference --------------------------------

class BpfSimTest : public ::testing::Test {
 protected:
  static constexpr u32 kProgAddr = 0x40000;
  static constexpr u32 kPktAddr = 0x48000;
  static constexpr u32 kCodeBase = 0x10000;
  static constexpr u32 kStackTop = 0x80000;

  // Runs the simulated interpreter over (prog, pkt) and returns EAX.
  u32 RunSim(const BpfProgram& prog, const std::vector<u8>& pkt, bool* ok,
             u64* cycles = nullptr) {
    BareMachine bm;
    std::string diag;
    std::string src = BpfInterpreterAsmSource(kProgAddr, kPktAddr) + R"(
  .global main
main:
  push $)" + std::to_string(pkt.size()) +
                      R"(
  call bpf_run
  pop %ecx
  hlt
)";
    auto img = bm.LoadProgram(src, kCodeBase, &diag);
    EXPECT_TRUE(img.has_value()) << diag;
    if (!img) {
      *ok = false;
      return 0;
    }
    auto ser = prog.Serialize();
    bm.pm().WriteBlock(kProgAddr, ser.data(), static_cast<u32>(ser.size()));
    bm.pm().WriteBlock(kPktAddr, pkt.data(), static_cast<u32>(pkt.size()));
    bm.Start(*img->Lookup("main"), 0, kStackTop);
    u64 before = bm.cpu().cycles();
    StopInfo stop = bm.Run(5'000'000);
    *ok = stop.reason == StopReason::kHalted;
    if (cycles != nullptr) *cycles = bm.cpu().cycles() - before;
    return bm.cpu().reg(Reg::kEax);
  }
};

TEST_F(BpfSimTest, AgreesWithHostOnHandWrittenProgram) {
  BpfProgram p = AcceptTcpPort80();
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.dst_port = 80;
  auto pkt = BuildPacket(spec);
  bool ok = false;
  EXPECT_EQ(RunSim(p, pkt, &ok), BpfInterpretHost(p, pkt.data(), static_cast<u32>(pkt.size())));
  EXPECT_TRUE(ok);
}

class BpfSimProperty : public BpfSimTest, public ::testing::WithParamInterface<int> {};

TEST_P(BpfSimProperty, SimulatedInterpreterMatchesHostReference) {
  // Random filters of GetParam() terms over random packet traces: the
  // simulated interpreter and the host reference must agree exactly.
  const int terms = GetParam();
  PacketSpec match;
  match.src_ip = 0x0A141E28;
  match.dst_port = 8080;
  FilterExpr expr;
  const FilterField fields[] = {FilterField::kIpProto, FilterField::kIpSrc,
                                FilterField::kIpDst, FilterField::kSrcPort,
                                FilterField::kDstPort};
  for (int i = 0; i < terms; ++i) {
    FilterTerm t;
    t.field = fields[i % 5];
    t.rel = FilterRel::kEq;
    switch (t.field) {
      case FilterField::kIpProto: t.value = match.proto; break;
      case FilterField::kIpSrc: t.value = match.src_ip; break;
      case FilterField::kIpDst: t.value = match.dst_ip; break;
      case FilterField::kSrcPort: t.value = match.src_port; break;
      case FilterField::kDstPort: t.value = match.dst_port; break;
      default: break;
    }
    expr.terms.push_back(t);
  }
  BpfProgram prog = CompileFilterToBpf(expr);
  std::string verr;
  ASSERT_TRUE(prog.Validate(&verr)) << verr;

  TraceGenerator gen(1234 + terms, match, 0.5);
  for (int i = 0; i < 6; ++i) {
    bool is_match = false;
    auto pkt = BuildPacket(gen.Next(&is_match));
    bool ok = false;
    u32 sim = RunSim(prog, pkt, &ok);
    ASSERT_TRUE(ok);
    u32 host = BpfInterpretHost(prog, pkt.data(), static_cast<u32>(pkt.size()));
    EXPECT_EQ(sim, host) << "terms=" << terms << " packet " << i;
    u32 expected = EvalFilterHost(expr, pkt.data(), static_cast<u32>(pkt.size())) ? 1 : 0;
    EXPECT_EQ(host, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(TermSweep, BpfSimProperty, ::testing::Values(0, 1, 2, 3, 4));

TEST_F(BpfSimTest, InterpretationCostGrowsWithTerms) {
  // The Figure-7 effect in miniature: per-term interpretation cost.
  PacketSpec match;
  auto pkt = BuildPacket(match);
  u64 cost1 = 0, cost4 = 0;
  FilterExpr e1, e4;
  FilterTerm t;
  t.field = FilterField::kIpProto;
  t.value = match.proto;
  e1.terms = {t};
  e4.terms = {t, t, t, t};
  bool ok = false;
  RunSim(CompileFilterToBpf(e1), pkt, &ok, &cost1);
  ASSERT_TRUE(ok);
  RunSim(CompileFilterToBpf(e4), pkt, &ok, &cost4);
  ASSERT_TRUE(ok);
  EXPECT_GT(cost4, cost1 + 3 * 35) << "each extra term should cost >~35 cycles interpreted";
}

// Regression: the simulated interpreter's op_ldw/op_ldh bounds check
// computed k+4 in a 32-bit register, so a huge k wrapped below len and the
// load went through — reading whatever sits at (PKT + k) mod 2^32 instead
// of rejecting the access.
TEST_F(BpfSimTest, HugeLoadOffsetRejectedInSimToo) {
  BpfProgram w;
  w.Append({BpfOp::kLdWAbs, 0, 0, 0xFFFFFFFEu});
  w.Append({BpfOp::kRetK, 0, 0, 1});
  std::string err;
  ASSERT_TRUE(w.Validate(&err)) << err;
  std::vector<u8> pkt(64, 0xAB);
  bool ok = false;
  EXPECT_EQ(RunSim(w, pkt, &ok), 0u);
  EXPECT_TRUE(ok);

  BpfProgram h;
  h.Append({BpfOp::kLdHAbs, 0, 0, 0xFFFFFFFFu});
  h.Append({BpfOp::kRetK, 0, 0, 1});
  ASSERT_TRUE(h.Validate(&err)) << err;
  EXPECT_EQ(RunSim(h, pkt, &ok), 0u);
  EXPECT_TRUE(ok);
}

// The interpreter must bound accesses by the *actual* frame length passed
// per call, not any constant baked in at build time: the same interpreter
// image accepts a full-size frame and rejects a truncated copy of it.
TEST_F(BpfSimTest, TruncatedFrameRejectedByActualLength) {
  BpfProgram p = AcceptTcpPort80();
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.dst_port = 80;
  auto pkt = BuildPacket(spec);
  bool ok = false;
  EXPECT_EQ(RunSim(p, pkt, &ok), 1u);
  EXPECT_TRUE(ok);
  // Same bytes, truncated before the TCP header: the dport load must be
  // rejected by the length check, exactly as the host reference does.
  std::vector<u8> truncated(pkt.begin(), pkt.begin() + kOffDstPort);
  EXPECT_EQ(RunSim(p, truncated, &ok), 0u);
  EXPECT_TRUE(ok);
  EXPECT_EQ(BpfInterpretHost(p, truncated.data(), static_cast<u32>(truncated.size())), 0u);
}

// Satellite hardening claim: a hostile BPF program that loops forever must
// be terminated by the existing extension watchdog accounting when the
// interpreter is deployed as a protected kernel extension — not hang the
// harness. The program is corrupted *after* validation (patched in memory),
// modeling a filter image overwritten at runtime.
TEST(BpfKext, HostileLoopingProgramKilledByWatchdog) {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  constexpr u32 kProgOff = 0x40000;
  constexpr u32 kPktOff = 0x48000;
  AssembleError aerr;
  auto obj = Assemble(BpfInterpreterAsmSource(kProgOff, kPktOff), &aerr);
  ASSERT_TRUE(obj.has_value()) << aerr.ToString();
  KextOptions opt;
  opt.cycle_limit = 50'000;
  std::string diag;
  auto id = kext.LoadExtension("bpfint", *obj, &diag, opt);
  ASSERT_TRUE(id.has_value()) << diag;
  auto fid = kext.FindFunction("bpfint:bpf_run");
  ASSERT_TRUE(fid.has_value());

  BpfProgram p;
  p.Append({BpfOp::kJmpJa, 0, 0, 0});  // patched below
  p.Append({BpfOp::kRetK, 0, 0, 1});
  std::string err;
  ASSERT_TRUE(p.Validate(&err)) << err;
  auto ser = p.Serialize();
  // Corrupt insn 0's k to 0xFFFFFFFF: pc += 1 + k leaves pc in place — an
  // unconditional self-loop the validator could never have admitted.
  const u32 evil_k = 0xFFFFFFFFu;
  std::memcpy(&ser[4], &evil_k, 4);
  const u32 base = kext.extension(*id)->linear_base;
  ASSERT_TRUE(kernel.WriteKernelVirt(base + kProgOff, ser.data(), static_cast<u32>(ser.size())));

  auto r = kext.Invoke(*fid, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("time limit"), std::string::npos) << r.error;
  EXPECT_TRUE(kext.extension(*id)->aborted);
}

}  // namespace
}  // namespace palladium
