// Decoded-instruction cache tests: self-modifying code through simulated
// stores and host writes, kernel-style page remaps, fetch-fault fidelity,
// and cache reuse. These pin down the invalidation contract of the fetch
// fast path: stale decodes must never execute, and fetch faults must carry
// the exact faulting linear address.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/asm/assembler.h"
#include "src/hw/bare_machine.h"
#include "src/hw/paging.h"

namespace palladium {
namespace {

constexpr u32 kCodeBase = 0x10000;
constexpr u32 kStackTop = 0x80000;

StopInfo RunProgram(BareMachine& bm, const std::string& source, u8 cpl = 0,
                    const char* entry = "main") {
  std::string diag;
  auto img = bm.LoadProgram(source, kCodeBase, &diag);
  EXPECT_TRUE(img.has_value()) << diag;
  if (!img) return StopInfo{};
  auto addr = img->Lookup(entry);
  EXPECT_TRUE(addr.has_value()) << "no symbol " << entry;
  bm.Start(*addr, cpl, kStackTop);
  return bm.Run(10'000'000);
}

// The four 32-bit little-endian words of an encoded instruction, as `sti`
// immediates a simulated program can use to patch its own code.
std::array<u32, 4> InsnWords(const Insn& insn) {
  u8 raw[kInsnSize];
  insn.EncodeTo(raw);
  std::array<u32, 4> words{};
  std::memcpy(words.data(), raw, kInsnSize);
  return words;
}

// A program that executes its page (decoding it whole), then overwrites the
// instruction at `target` with `mov $42, %eax` via plain data stores, then
// falls through into the patched instruction. With a stale decode the run
// ends with EAX = 1; with correct invalidation it ends with EAX = 42.
TEST(DecodeCache, SelfModifyingStoreExecutesNewCode) {
  Insn patch;
  patch.opcode = Opcode::kMovRI;
  patch.r1 = static_cast<u8>(Reg::kEax);
  patch.imm = 42;
  const auto w = InsnWords(patch);
  // Layout: slots 0-4 are mov+4 stores, so `target` sits at slot 5.
  const u32 target = kCodeBase + 5 * kInsnSize;
  char src[512];
  std::snprintf(src, sizeof(src), R"(
  .global main
main:
  mov $0x%x, %%ebx
  sti $0x%x, 0(%%ebx)
  sti $0x%x, 4(%%ebx)
  sti $0x%x, 8(%%ebx)
  sti $0x%x, 12(%%ebx)
target:
  mov $1, %%eax
  hlt
)",
                target, w[0], w[1], w[2], w[3]);

  BareMachine bm;
  StopInfo stop = RunProgram(bm, src);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 42u);
  const auto& stats = bm.cpu().decode_cache().stats();
  EXPECT_GE(stats.write_invalidations, 1u);  // the stores killed the page
  EXPECT_GE(stats.builds, 2u);               // ... and it was re-decoded
}

// Self-modifying store through the D-TLB fast path: the first store warms
// the D-TLB entry for the code page, so the patch stores execute on the
// inline hit path (host-pointer memcpy + direct decode-cache notification).
// The write observer must fire there too, or the stale decode of `target`
// would execute. This is the regression test for the fast-path/decode-cache
// coupling.
TEST(DecodeCache, DtlbFastPathStoreInvalidatesDecodedPage) {
  Insn patch;
  patch.opcode = Opcode::kMovRI;
  patch.r1 = static_cast<u8>(Reg::kEax);
  patch.imm = 42;
  const auto w = InsnWords(patch);
  // Layout: slot 0 = mov, slot 1 = warm-up store, slots 2-5 = patch stores,
  // so `target` sits at slot 6.
  const u32 target = kCodeBase + 6 * kInsnSize;
  char src[640];
  std::snprintf(src, sizeof(src), R"(
  .global main
main:
  mov $0x%x, %%ebx
  sti $0, 0x700(%%ebx)   ; same code page: warms the D-TLB (and kills decode)
  sti $0x%x, 0(%%ebx)
  sti $0x%x, 4(%%ebx)
  sti $0x%x, 8(%%ebx)
  sti $0x%x, 12(%%ebx)
target:
  mov $1, %%eax
  hlt
)",
                target, w[0], w[1], w[2], w[3]);

  BareMachine bm;
  bm.cpu().set_dtlb_enabled(true);  // the fast path is the subject here
  StopInfo stop = RunProgram(bm, src);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 42u);
  // The patch stores must have hit the warm D-TLB entry...
  EXPECT_GE(bm.cpu().dtlb_stats().hits, 4u);
  // ...and every one of them still killed the decoded page.
  const auto& stats = bm.cpu().decode_cache().stats();
  EXPECT_GE(stats.write_invalidations, 2u);
  EXPECT_GE(stats.builds, 2u);
}

// Host-side writes (kernel copy-in, loaders) must invalidate too.
TEST(DecodeCache, HostWriteInvalidatesDecodedPage) {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $1, %eax
  hlt
)",
                            kCodeBase, &diag);
  ASSERT_TRUE(img.has_value()) << diag;
  const u32 main_addr = *img->Lookup("main");

  bm.Start(main_addr, 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 1u);

  Insn patch;
  patch.opcode = Opcode::kMovRI;
  patch.r1 = static_cast<u8>(Reg::kEax);
  patch.imm = 2;
  u8 raw[kInsnSize];
  patch.EncodeTo(raw);
  ASSERT_TRUE(bm.pm().WriteBlock(main_addr, raw, kInsnSize));

  bm.Start(main_addr, 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 2u);
}

// Kernel-style page remap: the same linear page is re-pointed at a different
// physical frame holding different code. The PTE edit (through the editor's
// invalidation hook, the kernel's INVLPG analogue) must drop the pinned
// fetch mapping; the decode of the *new* frame takes over.
TEST(DecodeCache, KernelRemapExecutesNewCode) {
  BareMachine bm;
  StopInfo stop = RunProgram(bm, R"(
  .global main
main:
  mov $1, %eax
  hlt
)");
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 1u);

  // Build the replacement code, linked for linear kCodeBase but living in a
  // different physical frame.
  const u32 alt_frame = 0x30000;
  std::string diag;
  auto alt = AssembleAndLink(R"(
  .global main
main:
  mov $2, %eax
  hlt
)",
                             kCodeBase, {}, &diag);
  ASSERT_TRUE(alt.has_value()) << diag;
  ASSERT_TRUE(bm.pm().WriteBlock(alt_frame, alt->bytes.data(),
                                 static_cast<u32>(alt->bytes.size())));

  PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                     [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
  ASSERT_TRUE(ed.SetPte(kCodeBase, MakePte(alt_frame, kPtePresent | kPteWrite | kPteUser)));

  bm.Start(kCodeBase, 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().reg(Reg::kEax), 2u);
}

// A present PTE pointing past the end of physical memory: the fetch must
// surface a page fault carrying the instruction's linear address and the
// fetch (I/D) bit — not a detail-free #GP.
TEST(DecodeCache, FetchBeyondPhysicalMemoryIsFaithfulFault) {
  BareMachine bm;
  const u32 bad_linear = 0x700000;
  PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                     [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
  ASSERT_TRUE(ed.SetPte(bad_linear, MakePte(bm.pm().size(), kPtePresent | kPteWrite)));

  bm.Start(bad_linear, 0, kStackTop);
  StopInfo stop = bm.Run(1000);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(stop.fault.linear_address, bad_linear);
  EXPECT_TRUE(stop.fault.error_code & kPfErrFetch);
  EXPECT_TRUE(stop.fault.error_code & kPfErrPresent);
}

// A fetch that crosses into an unmapped page (possible with an unaligned CS
// base) must report the first unmapped byte as the faulting address.
TEST(DecodeCache, CrossPageFetchFaultReportsFaultingByte) {
  BareMachine bm;
  const u32 boundary = 0x601000;  // first byte of the unmapped page
  PageTableEditor ed(bm.pm(), bm.cpu().cr3(),
                     [&](u32 linear) { bm.cpu().tlb().FlushPage(linear); });
  ASSERT_TRUE(ed.Unmap(boundary));

  // CS with base 8: linear fetches are misaligned, so the instruction at
  // EIP = boundary - 16 spans [boundary - 8, boundary + 8).
  bm.Start(0, 0, kStackTop);
  bm.gdt().Set(BareMachine::kFirstFreeIdx, SegmentDescriptor::MakeCode(8, 0xFFFFFFFFu, 0));
  ASSERT_TRUE(bm.cpu().ForceSegment(
      SegReg::kCs, Selector::FromIndex(BareMachine::kFirstFreeIdx, 0)));
  bm.cpu().set_eip(boundary - 16);

  StopInfo stop = bm.Run(1000);
  ASSERT_EQ(stop.reason, StopReason::kFault);
  EXPECT_EQ(stop.fault.vector, FaultVector::kPageFault);
  EXPECT_EQ(stop.fault.linear_address, boundary);
  EXPECT_FALSE(stop.fault.error_code & kPfErrPresent);
  EXPECT_TRUE(stop.fault.error_code & kPfErrFetch);  // I/D bit on walk faults too
}

// Steady-state execution decodes each text page exactly once.
TEST(DecodeCache, DecodedPageReusedAcrossRuns) {
  BareMachine bm;
  const std::string src = R"(
  .global main
main:
  mov $1000, %ecx
loop:
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";
  StopInfo stop = RunProgram(bm, src);
  ASSERT_EQ(stop.reason, StopReason::kHalted);
  const u64 builds_after_first = bm.cpu().decode_cache().stats().builds;
  EXPECT_GE(builds_after_first, 1u);

  bm.Start(kCodeBase, 0, kStackTop);
  ASSERT_EQ(bm.Run(10'000'000).reason, StopReason::kHalted);
  EXPECT_EQ(bm.cpu().decode_cache().stats().builds, builds_after_first);
}

}  // namespace
}  // namespace palladium
