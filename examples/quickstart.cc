// Quickstart: the smallest end-to-end Palladium user-level extension.
//
// An "extensible application" promotes itself to SPL 2 (init_PL), loads a
// to-upper extension into an SPL 3 / PPL 1 extension segment (seg_dlopen),
// resolves a protected entry point (seg_dlsym), and calls it like a normal
// function. The extension transforms a buffer the application explicitly
// shared with set_range — and cannot touch anything else.
#include <cstdio>
#include <string>

#include "src/asm/assembler.h"
#include "src/core/user_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/kernel/kernel.h"

using namespace palladium;

namespace {

// The extension: uppercases a NUL-terminated string in the shared buffer.
constexpr const char* kUpperExt = R"(
  .global to_upper
to_upper:
  push %ebp
  mov %esp, %ebp
  push %ebx
  ld 8(%ebp), %ebx       ; shared buffer address (argument)
upper_loop:
  ld8 0(%ebx), %eax
  cmp $0, %eax
  je upper_done
  cmp $97, %eax          ; 'a'
  jb upper_next
  cmp $122, %eax         ; 'z'
  ja upper_next
  sub $32, %eax
  st8 %eax, 0(%ebx)
upper_next:
  inc %ebx
  jmp upper_loop
upper_done:
  pop %ebx
  pop %ebp
  ret
)";

// The extensible application, written against the Palladium syscall API.
constexpr const char* kApp = R"(
  .equ SYS_EXIT, 1
  .equ SYS_WRITE, 4
  .equ SYS_MMAP, 90
  .equ SYS_INIT_PL, 200
  .equ SYS_SET_RANGE, 201
  .equ SYS_SEG_DLOPEN, 212
  .equ SYS_SEG_DLSYM, 213
  .equ INT_SYSCALL, 0x80
  .global main
main:
  mov $SYS_INIT_PL, %eax       ; become a Palladium application (SPL 2)
  int $INT_SYSCALL

  mov $SYS_MMAP, %eax          ; one page to share with the extension
  mov $0, %ebx
  mov $0x1000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebp
  ; copy "hello, palladium!" into the buffer
  mov $msg, %esi
  mov %ebp, %edi
copy:
  ld8 0(%esi), %eax
  st8 %eax, 0(%edi)
  cmp $0, %eax
  je copied
  inc %esi
  inc %edi
  jmp copy
copied:
  mov $SYS_SET_RANGE, %eax     ; expose the page at PPL 1
  mov %ebp, %ebx
  mov $0x1000, %ecx
  mov $1, %edx
  int $INT_SYSCALL

  mov $SYS_SEG_DLOPEN, %eax    ; load the extension segment
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax     ; protected entry point ("massaged" pointer)
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi

  push %ebp                    ; call the extension like a plain function
  call *%edi
  pop %ecx

  ; print the transformed buffer
  mov $SYS_WRITE, %eax
  mov %ebp, %ebx
  mov $17, %ecx
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
msg:
  .asciz "hello, palladium!"
extname:
  .asciz "upper"
fnname:
  .asciz "to_upper"
)";

}  // namespace

int main() {
  Machine machine;
  Kernel kernel(machine);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);

  // "Install" the extension object (what a .so file would be on disk).
  AssembleError aerr;
  auto ext_obj = Assemble(kUpperExt, &aerr);
  if (!ext_obj) {
    std::fprintf(stderr, "extension: %s\n", aerr.ToString().c_str());
    return 1;
  }
  dl.RegisterObject("upper", *ext_obj);

  // Load and run the application.
  std::string diag;
  auto app = AssembleAndLink(kApp, kUserTextBase, {}, &diag);
  if (!app) {
    std::fprintf(stderr, "app: %s\n", diag.c_str());
    return 1;
  }
  Pid pid = kernel.CreateProcess();
  if (!kernel.LoadUserImage(pid, *app, "main", &diag)) {
    std::fprintf(stderr, "load: %s\n", diag.c_str());
    return 1;
  }
  RunResult r = kernel.RunProcess(pid, 100'000'000);

  std::printf("application exited: %s (code %d)\n",
              r.outcome == RunOutcome::kExited ? "cleanly" : r.kill_reason.c_str(),
              r.exit_code);
  std::printf("console output:     %s\n", kernel.console().c_str());
  std::printf("simulated cycles:   %llu (%.2f ms at 200 MHz)\n",
              static_cast<unsigned long long>(machine.cpu().cycles()),
              static_cast<double>(machine.cpu().cycles()) / 200e3);
  std::printf("\nThe extension ran at SPL 3 in its own segment: it could read and\n");
  std::printf("write only its own pages and the one page shared via set_range.\n");
  return r.outcome == RunOutcome::kExited && kernel.console() == "HELLO, PALLADIUM!" ? 0 : 1;
}
