// Kernel-extension example: a compiled packet filter running safely inside
// the kernel at SPL 1 (the paper's second demo application, Section 5.2).
//
//  1. Compile a filter expression to native (simulated) code.
//  2. Load it as a kernel extension with a shared data area.
//  3. Stream a synthetic trace through it and through the interpreted BPF
//     baseline; cross-check the decisions and compare cycle costs.
//  4. Load a *buggy* filter that dereferences a wild pointer: the segment
//     limit catches it and the kernel aborts the extension, unharmed.
#include <cstdio>
#include <string>

#include "src/asm/assembler.h"
#include "src/bpf/bpf.h"
#include "src/core/kernel_ext.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/net/packet.h"

using namespace palladium;

int main() {
  const std::string filter_text =
      "ip.proto == 6 && ip.src == 10.20.30.40 && tcp.dport == 8080";
  std::printf("filter: %s\n\n", filter_text.c_str());

  std::string err;
  auto expr = ParseFilter(filter_text, &err);
  if (!expr) {
    std::fprintf(stderr, "parse: %s\n", err.c_str());
    return 1;
  }

  // --- Compiled filter as a kernel extension --------------------------------
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);

  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr), &aerr);
  if (!obj) {
    std::fprintf(stderr, "compile: %s\n", aerr.ToString().c_str());
    return 1;
  }
  std::string diag;
  auto ext = kext.LoadExtension("filter", *obj, &diag);
  if (!ext) {
    std::fprintf(stderr, "insmod: %s\n", diag.c_str());
    return 1;
  }
  auto fid = kext.FindFunction("filter:filter_run");

  // --- Stream a trace --------------------------------------------------------
  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.src_ip = 0x0A141E28;  // 10.20.30.40
  match.dst_port = 8080;
  TraceGenerator gen(2026, match, 0.25);
  BpfProgram bpf = CompileFilterToBpf(*expr);

  u32 accepted = 0, total = 200, disagreements = 0;
  u64 compiled_cycles = 0;
  for (u32 i = 0; i < total; ++i) {
    bool expect_match = false;
    auto pkt = BuildPacket(gen.Next(&expect_match));
    u32 len = static_cast<u32>(pkt.size());
    kext.WriteShared(*ext, 0, &len, 4);
    kext.WriteShared(*ext, 4, pkt.data(), len);
    auto r = kext.Invoke(*fid, len);
    if (!r.ok) {
      std::fprintf(stderr, "invoke failed: %s\n", r.error.c_str());
      return 1;
    }
    compiled_cycles += r.cycles;
    u32 bpf_verdict = BpfInterpretHost(bpf, pkt.data(), len);
    if (bpf_verdict != r.value) ++disagreements;
    if (r.value == 1) ++accepted;
  }
  std::printf("trace: %u packets, %u accepted, %u compiled/BPF disagreements\n", total,
              accepted, disagreements);
  std::printf("compiled filter: %.1f cycles/packet (protected SPL 1 invocation included)\n\n",
              static_cast<double>(compiled_cycles) / total);

  // --- A buggy filter cannot hurt the kernel --------------------------------
  auto bad_obj = Assemble(R"(
  .global filter_run
filter_run:
  mov $0x00F00000, %ebx    ; far outside the 1 MB extension segment
  ld 0(%ebx), %eax         ; segment-limit #GP
  ret
  .data
  .global pd_shared
pd_shared:
  .space 64
)",
                          &aerr);
  auto bad = kext.LoadExtension("buggy", *bad_obj, &diag);
  auto bad_fid = kext.FindFunction("buggy:filter_run");
  auto bad_result = kext.Invoke(*bad_fid, 0);
  std::printf("buggy filter invocation: %s\n",
              bad_result.ok ? "SUCCEEDED (bad!)" : bad_result.error.c_str());

  // The good filter (and the kernel) are unaffected.
  auto again = kext.Invoke(*fid, 64);
  std::printf("original filter still runs: %s\n", again.ok ? "yes" : "no");
  std::printf("\nThe buggy module was confined by its segment limit, aborted, and the\n");
  std::printf("rest of the kernel kept working — the paper's core safety property.\n");
  return (disagreements == 0 && !bad_result.ok && again.ok) ? 0 : 1;
}
