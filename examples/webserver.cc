// Web-server example: the LibCGI scenario of Section 5.2 — a web server
// invoking CGI scripts as protected local function calls instead of forked
// processes. Sweeps response sizes across the five execution models and
// reports throughput, CPU and link utilization.
#include <cstdio>

#include "src/web/server_sim.h"

using namespace palladium;

int main(int argc, char** argv) {
  WebWorkload workload;
  if (argc > 1) workload.total_requests = static_cast<u32>(std::atoi(argv[1]));
  WebServerCosts costs;

  std::printf("Web server model: %u requests, concurrency %u, %.0f Mbps link,\n",
              workload.total_requests, workload.concurrency, costs.link_mbps);
  std::printf("%.0f MHz CPU.\n\n", costs.cpu_mhz);

  const CgiModel models[] = {CgiModel::kStatic, CgiModel::kLibCgi,
                             CgiModel::kLibCgiProtected, CgiModel::kFastCgi, CgiModel::kCgi};
  for (u32 size : {28u, 1024u, 10u * 1024u, 100u * 1024u}) {
    workload.file_bytes = size;
    std::printf("--- response size %u bytes ---\n", size);
    std::printf("%-20s %10s %8s %8s\n", "model", "req/s", "cpu%", "link%");
    for (CgiModel model : models) {
      WebRunResult r = SimulateWebServer(model, workload, costs);
      std::printf("%-20s %10.1f %7.1f%% %7.1f%%\n", CgiModelName(model), r.requests_per_sec,
                  100.0 * r.cpu_utilization, 100.0 * r.link_utilization);
    }
    std::printf("\n");
  }
  std::printf("Reading: protected LibCGI stays within a few percent of the\n");
  std::printf("unprotected variant; both nearly match the static-file bound, while\n");
  std::printf("process-based CGI pays fork+exec on every request.\n");
  return 0;
}
