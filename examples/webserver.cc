// Web-server example, two halves:
//
//  1. The Table-3 closed-form model (Section 5.2): CGI execution models
//     compared on throughput/CPU/link utilization.
//
//  2. The interrupt-driven machine: many simulated clients' HTTP requests
//     arrive as NIC frames, pass through a *protected* packet-filter kernel
//     extension, land in per-worker delivery queues, and a preemptive
//     round-robin scheduler multiplexes the worker processes that serve
//     them. A deliberately runaway filter is loaded first to show the timer
//     watchdog killing it asynchronously while service continues.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/asm/assembler.h"
#include "src/core/kernel_ext.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/web/server_sim.h"

using namespace palladium;

namespace {

void RunClosedFormModel(u32 total_requests) {
  WebWorkload workload;
  workload.total_requests = total_requests;
  WebServerCosts costs;

  std::printf("Web server model: %u requests, concurrency %u, %.0f Mbps link,\n",
              workload.total_requests, workload.concurrency, costs.link_mbps);
  std::printf("%.0f MHz CPU.\n\n", costs.cpu_mhz);

  const CgiModel models[] = {CgiModel::kStatic, CgiModel::kLibCgi,
                             CgiModel::kLibCgiProtected, CgiModel::kFastCgi, CgiModel::kCgi};
  for (u32 size : {28u, 1024u, 10u * 1024u, 100u * 1024u}) {
    workload.file_bytes = size;
    std::printf("--- response size %u bytes ---\n", size);
    std::printf("%-20s %10s %8s %8s\n", "model", "req/s", "cpu%", "link%");
    for (CgiModel model : models) {
      WebRunResult r = SimulateWebServer(model, workload, costs);
      std::printf("%-20s %10.1f %7.1f%% %7.1f%%\n", CgiModelName(model), r.requests_per_sec,
                  100.0 * r.cpu_utilization, 100.0 * r.link_utilization);
    }
    std::printf("\n");
  }
  std::printf("Reading: protected LibCGI stays within a few percent of the\n");
  std::printf("unprotected variant; both nearly match the static-file bound, while\n");
  std::printf("process-based CGI pays fork+exec on every request.\n\n");
}

// A looping "filter" that the timer watchdog must kill asynchronously.
bool DemoWatchdogKill() {
  Machine machine;
  Kernel kernel(machine);
  kernel.EnableTimerInterrupts();
  KernelExtensionManager kext(kernel);

  AssembleError aerr;
  auto runaway = Assemble(R"(
  .global filter_run
filter_run:
  mov $0, %eax
forever:
  add $1, %eax
  jmp forever
  .data
  .global pd_shared
pd_shared:
  .space 64
)",
                          &aerr);
  if (!runaway) {
    std::fprintf(stderr, "assemble runaway: %s\n", aerr.ToString().c_str());
    return false;
  }
  std::string diag;
  KextOptions opts;
  opts.cycle_limit = 500'000;
  auto ext = kext.LoadExtension("runaway", *runaway, &diag, opts);
  auto fid = ext ? kext.FindFunction("runaway:filter_run") : std::nullopt;
  if (!ext || !fid) {
    std::fprintf(stderr, "load runaway: %s\n", diag.c_str());
    return false;
  }
  std::printf("--- timer watchdog vs a runaway kernel extension ---\n");
  auto r = kext.Invoke(*fid, 0);
  std::printf("invoke result: %s (after %llu cycles)\n",
              r.ok ? "returned?!" : r.error.c_str(),
              static_cast<unsigned long long>(r.cycles));
  const bool killed_async = !r.ok && r.error.find("timer watchdog") != std::string::npos;
  std::printf("asynchronously detected and killed by the timer interrupt: %s\n\n",
              killed_async ? "yes" : "NO");
  return killed_async;
}

}  // namespace

int main(int argc, char** argv) {
  u32 total_requests = 1000;
  u32 smp = 0;       // 0 = PALLADIUM_SMP env (default 1)
  u32 queues = 0;    // 0 = one RX/TX queue pair per vCPU
  u32 batch = 32;    // frames per protected filter crossing
  u32 moderation = 0;  // NIC ITR window in cycles (0 = IRQ per DMA burst)
  bool napi = true;
  bool profile = false;
  const char* trace_path = nullptr;
  const char* usage =
      "usage: %s [requests] [--smp N] [--queues N] [--batch N] [--moderation CYCLES] "
      "[--no-napi] [--profile] [--trace FILE]\n";
  auto flag_value = [&](int& i) -> u32 {
    if (i + 1 >= argc || std::atoi(argv[i + 1]) <= 0) return 0;
    return static_cast<u32>(std::atoi(argv[++i]));
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smp") == 0) {
      if ((smp = flag_value(i)) == 0) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--queues") == 0) {
      if ((queues = flag_value(i)) == 0) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if ((batch = flag_value(i)) == 0) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--moderation") == 0) {
      if ((moderation = flag_value(i)) == 0) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-napi") == 0) {
      napi = false;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, usage, argv[0]);
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::atoi(argv[i]) > 0) {
      total_requests = static_cast<u32>(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'; ", argv[i]);
      std::fprintf(stderr, usage, argv[0]);
      return 2;
    }
  }

  RunClosedFormModel(total_requests);

  if (!DemoWatchdogKill()) return 1;

  // The interrupt-driven machine serving many concurrent clients.
  MultiServerConfig cfg;
  cfg.workers = 4;
  cfg.clients = 16;
  cfg.total_requests = 128;
  cfg.smp = smp;
  // Under SMP — whether from --smp or PALLADIUM_SMP — RSS flow steering
  // pins each client's flow to one worker (and so to one core); on one
  // vCPU keep the PR 3 balanced round-robin.
  if (ResolveNumCpus(smp) > 1) cfg.steering = FlowSteering::kFlowHash;
  // Dataplane fast-path knobs: one RX/TX queue pair per vCPU unless pinned.
  cfg.queues = queues != 0 ? queues : ResolveNumCpus(smp);
  cfg.napi = napi;
  cfg.filter_batch = batch;
  cfg.rx_irq_moderation = moderation;
  obs::FlightRecorder recorder;
  obs::CycleProfile profiler;
  obs::MetricsRegistry metrics;
  if (trace_path != nullptr) cfg.recorder = &recorder;
  if (profile) {
    cfg.profiler = &profiler;
    cfg.metrics = &metrics;
  }
  std::printf("--- interrupt-driven multi-worker server ---\n");
  std::printf("%u clients, %u requests, %u worker processes, timer slice %llu cycles\n",
              cfg.clients, cfg.total_requests, cfg.workers,
              static_cast<unsigned long long>(cfg.slice_cycles));
  std::printf("dataplane: %u NIC queue(s), NAPI %s, filter batch %u, ITR %u cycles\n",
              cfg.queues, cfg.napi ? "on" : "off", cfg.filter_batch, cfg.rx_irq_moderation);
  MultiServerResult r = RunMultiWorkerServer(cfg);
  if (!r.ok) {
    std::fprintf(stderr, "multi-worker server failed: %s\n", r.diag.c_str());
    return 1;
  }
  std::printf("served %llu requests (%llu parsed by the HTTP layer) in %llu cycles on %u vCPU(s)\n",
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.parsed_requests),
              static_cast<unsigned long long>(r.cycles), r.cpus);
  if (r.cpus > 1) {
    std::printf("SMP: %llu work steals, %llu shootdown IPIs\n",
                static_cast<unsigned long long>(r.steals),
                static_cast<unsigned long long>(r.shootdown_ipis));
  }
  std::printf("throughput: %.0f req/s at 200 MHz\n", r.requests_per_sec);
  std::printf("IRQs: %llu NIC, %llu timer; %llu context switches (%llu preemptions)\n",
              static_cast<unsigned long long>(r.nic_irqs),
              static_cast<unsigned long long>(r.timer_irqs),
              static_cast<unsigned long long>(r.context_switches),
              static_cast<unsigned long long>(r.preemptions));
  std::printf("protected filter invocations: %llu\n",
              static_cast<unsigned long long>(r.filter_invocations));
  std::printf("connections: %llu (%llu keep-alive reuses); latency p50/p99: %llu/%llu cycles\n",
              static_cast<unsigned long long>(r.connections),
              static_cast<unsigned long long>(r.keepalive_reuses),
              static_cast<unsigned long long>(r.latency_p50_cycles),
              static_cast<unsigned long long>(r.latency_p99_cycles));
  std::printf("per-worker requests served:");
  for (i32 s : r.per_worker_served) std::printf(" %d", s);
  std::printf("\n");
  if (profile) {
    // The paper's Table 1-3 style: where did every retired cycle go?
    profiler.PrintBreakdown(stdout, r.served, "req");
  }
  if (trace_path != nullptr) {
    if (recorder.WriteJsonl(trace_path)) {
      u64 events = 0;
      for (u32 t = 0; t < recorder.num_tracks(); ++t) {
        events += recorder.recorded_events(t);
      }
      std::printf("flight-recorder trace: %llu events (%llu dropped) -> %s\n",
                  static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(recorder.TotalDropped()),
                  trace_path);
      std::printf("convert with tools/trace2chrome.py for Perfetto/chrome://tracing\n");
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
      return 1;
    }
  }
  std::printf("\nEvery request crossed the NIC ring, a protected SPL 1 filter, a\n");
  std::printf("per-process queue and two syscalls, under preemptive scheduling —\n");
  std::printf("the asynchronous half of the paper's machine.\n");
  return 0;
}
