// Mobile-code example — the paper's first "on-going work" direction
// (Section 6): running *untrusted, compiled* applets safely inside a host
// application, with all I/O funneled through restricted application
// services.
//
// The host exposes exactly two services to applets: `put_pixel` (bounded
// writes into a canvas) and `log` (one integer to the console). An applet
// downloaded "from the network" draws into the canvas; a malicious applet
// tries to scribble over the host's memory and is contained.
#include <cstdio>
#include <string>

#include "src/asm/assembler.h"
#include "src/core/user_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/kernel/kernel.h"

using namespace palladium;

namespace {

// A well-behaved applet: draws a diagonal through the 16x16 canvas using
// only the put_pixel service.
constexpr const char* kGoodApplet = R"(
  .extern gate_put_pixel
  .global applet_main
applet_main:
  push %ebp
  mov %esp, %ebp
  push %ebx
  mov $0, %ebx
draw:
  cmp $16, %ebx
  jae drawn
  mov %ebx, %eax
  imul $17, %eax        ; (x == y) diagonal: index = y*16 + x = 17*i
  push %eax
  lcall $gate_put_pixel
  pop %ecx
  inc %ebx
  jmp draw
drawn:
  mov $1, %eax
  pop %ebx
  pop %ebp
  ret
)";

// A hostile applet: ignores the services and writes wherever it pleases.
constexpr const char* kEvilApplet = R"(
  .global applet_main
applet_main:
  push %ebp
  mov %esp, %ebp
  mov $0x08049000, %ebx  ; somewhere in the host's image
scribble:
  sti $0x41414141, 0(%ebx)
  add $4, %ebx
  jmp scribble
)";

constexpr const char* kHostApp = R"(
  .equ SYS_EXIT, 1
  .equ SYS_WRITE, 4
  .equ SYS_SIGACTION, 67
  .equ SYS_INIT_PL, 200
  .equ SYS_SEG_DLOPEN, 212
  .equ SYS_SEG_DLSYM, 213
  .equ SYS_EXPOSE_SERVICE, 217
  .equ INT_SYSCALL, 0x80
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $containment, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_EXPOSE_SERVICE, %eax
  mov $svc_name, %ebx
  mov $put_pixel, %ecx
  int $INT_SYSCALL

  ; run the well-behaved applet
  mov $SYS_SEG_DLOPEN, %eax
  mov $good_name, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $entry_name, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx

  ; count the pixels it set
  mov $0, %ebx
  mov $0, %ecx
count:
  cmp $256, %ecx
  jae counted
  mov $canvas, %edx
  ld8 0(%edx,%ecx,1), %eax
  cmp $0, %eax
  je next
  inc %ebx
next:
  inc %ecx
  jmp count
counted:
  st %ebx, pixels_set

  ; now run the hostile applet; its fault lands in `containment`
  mov $SYS_SEG_DLOPEN, %eax
  mov $evil_name, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $entry_name, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax    ; not reached
  mov $1, %ebx
  int $INT_SYSCALL

containment:
  ld pixels_set, %ebx    ; exit code: pixels drawn by the good applet
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL

put_pixel:               ; service: bounded write into the canvas
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax       ; pixel index
  cmp $256, %eax
  jae put_done           ; out-of-range indexes are ignored
  mov $canvas, %ecx
  mov $1, %edx
  st8 %edx, 0(%ecx,%eax,1)
put_done:
  pop %ebp
  ret
  .data
canvas:
  .space 256
pixels_set:
  .long 0
svc_name:
  .asciz "put_pixel"
good_name:
  .asciz "good_applet"
evil_name:
  .asciz "evil_applet"
entry_name:
  .asciz "applet_main"
)";

}  // namespace

int main() {
  Machine machine;
  Kernel::Config cfg;
  cfg.extension_cycle_limit = 300'000;  // hostile applets also get a time cap
  Kernel kernel(machine, cfg);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);

  AssembleError aerr;
  auto good = Assemble(kGoodApplet, &aerr);
  if (!good) {
    std::fprintf(stderr, "good applet: %s\n", aerr.ToString().c_str());
    return 1;
  }
  auto evil = Assemble(kEvilApplet, &aerr);
  dl.RegisterObject("good_applet", *good);
  dl.RegisterObject("evil_applet", *evil);

  std::string diag;
  auto app = AssembleAndLink(kHostApp, kUserTextBase, {}, &diag);
  if (!app) {
    std::fprintf(stderr, "host: %s\n", diag.c_str());
    return 1;
  }
  Pid pid = kernel.CreateProcess();
  if (!kernel.LoadUserImage(pid, *app, "main", &diag)) {
    std::fprintf(stderr, "load: %s\n", diag.c_str());
    return 1;
  }
  RunResult r = kernel.RunProcess(pid, 500'000'000);

  std::printf("mobile-code host exited %s with code %d\n",
              r.outcome == RunOutcome::kExited ? "cleanly" : "ABNORMALLY", r.exit_code);
  std::printf("  good applet drew %d pixels through the put_pixel service\n", r.exit_code);
  std::printf("  hostile applet was contained (signal %u delivered to the host)\n",
              kernel.process(pid)->signals.last_signal);
  std::printf("\nCompiled, untrusted code ran at native simulated speed; its only\n");
  std::printf("window into the host was the service gate — Section 6's mobile-code\n");
  std::printf("sketch, realized.\n");
  return r.outcome == RunOutcome::kExited && r.exit_code == 16 ? 0 : 1;
}
