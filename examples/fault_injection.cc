// Fault-injection tour: every containment path Palladium provides, exercised
// deliberately —
//   1. a user extension writing the application's PPL 0 data  -> SIGSEGV
//   2. a user extension attempting a direct system call        -> EPERM
//   3. a user extension spinning forever                       -> SIGXCPU
//   4. a kernel extension escaping its segment                 -> abort (#GP)
//   5. a kernel extension attempting a system call             -> abort
#include <cstdio>
#include <string>

#include "src/asm/assembler.h"
#include "src/core/kernel_ext.h"
#include "src/core/user_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/kernel/kernel.h"

using namespace palladium;

namespace {

constexpr const char* kAbi = R"(
  .equ SYS_EXIT, 1
  .equ SYS_WRITE, 4
  .equ SYS_GETPID, 20
  .equ SYS_SIGACTION, 67
  .equ SYS_INIT_PL, 200
  .equ SYS_SEG_DLOPEN, 212
  .equ SYS_SEG_DLSYM, 213
  .equ INT_SYSCALL, 0x80
)";

// Loads an app that installs handlers, loads extension `name`, calls `fn`
// with `arg_expr`, and exits with a code describing what happened:
//   exit  0: call returned normally (eax in console)
//   exit 11: SIGSEGV handler ran
//   exit 24: SIGXCPU handler ran
i32 RunScenario(const std::string& ext_name, const std::string& ext_src,
                const std::string& fn, Kernel::Config cfg = Kernel::Config{}) {
  Machine machine;
  Kernel kernel(machine, cfg);
  DynamicLinker dl(kernel);
  UserExtensionRuntime uext(kernel, dl);
  AssembleError aerr;
  auto obj = Assemble(kAbi + ext_src, &aerr);
  if (!obj) {
    std::fprintf(stderr, "ext %s: %s\n", ext_name.c_str(), aerr.ToString().c_str());
    return -100;
  }
  dl.RegisterObject(ext_name, *obj);

  std::string app = kAbi + std::string(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $segv_handler, %ecx
  int $INT_SYSCALL
  mov $SYS_SIGACTION, %eax
  mov $24, %ebx
  mov $xcpu_handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $secret
  call *%edi
  pop %ecx
  mov %eax, %ebx          ; extension's return value
  mov $SYS_EXIT, %eax
  int $INT_SYSCALL
segv_handler:
  mov $SYS_EXIT, %eax
  mov $11, %ebx
  int $INT_SYSCALL
xcpu_handler:
  mov $SYS_EXIT, %eax
  mov $24, %ebx
  int $INT_SYSCALL
  .data
  .global secret
secret:
  .long 0x5EC4E7
extname:
  .asciz ")") + ext_name + R"("
fnname:
  .asciz ")" + fn + R"("
)";
  std::string diag;
  auto img = AssembleAndLink(app, kUserTextBase, {}, &diag);
  if (!img) {
    std::fprintf(stderr, "app: %s\n", diag.c_str());
    return -100;
  }
  Pid pid = kernel.CreateProcess();
  if (!kernel.LoadUserImage(pid, *img, "main", &diag)) {
    std::fprintf(stderr, "load: %s\n", diag.c_str());
    return -100;
  }
  RunResult r = kernel.RunProcess(pid, 500'000'000);
  if (r.outcome != RunOutcome::kExited) {
    std::fprintf(stderr, "  (killed: %s)\n", r.kill_reason.c_str());
    return -1;
  }
  return r.exit_code;
}

}  // namespace

int main() {
  std::printf("Palladium fault-injection tour\n");
  std::printf("==============================\n\n");
  int failures = 0;

  std::printf("1. Extension writes the application's PPL 0 secret:\n");
  i32 r = RunScenario("writer", R"(
  .global attack
attack:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx
  sti $0xDEAD, 0(%ebx)
  pop %ebp
  ret
)",
                      "attack");
  std::printf("   -> %s\n\n", r == 11 ? "SIGSEGV delivered to the application" : "UNEXPECTED");
  failures += r != 11;

  std::printf("2. Extension tries a direct system call (getpid):\n");
  r = RunScenario("caller", R"(
  .global attack
attack:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  ret
)",
                  "attack");
  std::printf("   -> returned %d (%s)\n\n", r,
              r == -1 ? "EPERM: taskSPL gating rejected it" : "UNEXPECTED");
  failures += r != -1;

  std::printf("3. Extension loops forever:\n");
  Kernel::Config tight;
  tight.extension_cycle_limit = 200'000;
  r = RunScenario("looper", ".global attack\nattack:\n  jmp attack\n", "attack", tight);
  std::printf("   -> %s\n\n", r == 24 ? "SIGXCPU after the CPU-time limit" : "UNEXPECTED");
  failures += r != 24;

  std::printf("4. Kernel extension escapes its segment:\n");
  {
    Machine machine;
    Kernel kernel(machine);
    KernelExtensionManager kext(kernel);
    AssembleError aerr;
    auto obj = Assemble(R"(
  .global escape
escape:
  mov $0x00F00000, %ebx
  sti $1, 0(%ebx)
  ret
)",
                        &aerr);
    std::string diag;
    kext.LoadExtension("rogue", *obj, &diag);
    auto res = kext.Invoke(*kext.FindFunction("escape"), 0);
    std::printf("   -> %s\n\n", res.ok ? "UNEXPECTED" : res.error.c_str());
    failures += res.ok;
  }

  std::printf("5. Kernel extension attempts a system call:\n");
  {
    Machine machine;
    Kernel kernel(machine);
    KernelExtensionManager kext(kernel);
    AssembleError aerr;
    auto obj = Assemble(kAbi + std::string(R"(
  .global sneak
sneak:
  mov $SYS_GETPID, %eax
  int $INT_SYSCALL
  ret
)"),
                        &aerr);
    std::string diag;
    kext.LoadExtension("sneaky", *obj, &diag);
    auto res = kext.Invoke(*kext.FindFunction("sneak"), 0);
    std::printf("   -> %s\n\n", res.ok ? "UNEXPECTED" : res.error.c_str());
    failures += res.ok;
  }

  std::printf(failures == 0 ? "All five containment paths held.\n"
                            : "SOME CONTAINMENT PATHS FAILED!\n");
  return failures;
}
