#!/usr/bin/env python3
"""Convert a Palladium flight-recorder JSONL trace to Chrome trace-event JSON.

The simulator's FlightRecorder (src/obs/trace.h) writes one JSON object per
line:

  {"meta":"track","track":0,"name":"cpu0","events":123,"dropped":0}   # header
  {"track":0,"cycle":400,"type":"irq_deliver","cls":"arch","arg0":33,"arg1":0}

This tool emits the Chrome trace-event format (the "JSON Array Format"),
loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing. Each
recorder track becomes one thread row; crossing_enter/crossing_exit pairs
become duration ("B"/"E") slices and every other event an instant ("i").
Timestamps are simulated cycles converted to microseconds at 200 MHz (the
paper's Pentium-200), so slice widths read directly as simulated time.

Usage:
  tools/trace2chrome.py TRACE.jsonl [-o TRACE.json]
  tools/trace2chrome.py --validate TRACE.jsonl

--validate lints the JSONL instead of converting: every line must parse, use
a known event type, and carry the required keys; every referenced track needs
a meta header; and cpu* tracks must be cycle-monotone (device tracks such as
nic.q0 are event-time stamped by their owning core's clock domain, which is
not globally monotone under SMP, so they are exempt).
"""

import argparse
import json
import sys

CPU_MHZ = 200.0  # simulated Pentium-200; cycles / CPU_MHZ = microseconds

KNOWN_TYPES = {
    "irq_raise",
    "irq_deliver",
    "irq_eoi",
    "crossing_enter",
    "crossing_exit",
    "context_switch",
    "tlb_shootdown",
    "trace_compile",
    "trace_invalidate",
    "napi_poll",
    "frame_dma",
    "frame_classify",
    "frame_enqueue",
    "frame_recv",
    "frame_tx",
}

EVENT_KEYS = {"track", "cycle", "type", "cls", "arg0", "arg1"}
META_KEYS = {"meta", "track", "name", "events", "dropped"}


def parse_lines(path):
    """Yields (line_number, parsed object) for every non-empty line."""
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            yield lineno, json.loads(line)


def validate(path):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    track_names = {}
    last_cycle = {}
    referenced = set()

    try:
        entries = list(parse_lines(path))
    except (OSError, json.JSONDecodeError) as exc:
        return ["%s: %s" % (path, exc)]

    for lineno, obj in entries:
        if obj.get("meta") == "track":
            missing = META_KEYS - obj.keys()
            if missing:
                errors.append("line %d: meta line missing keys %s" % (lineno, sorted(missing)))
                continue
            track_names[obj["track"]] = obj["name"]
            continue
        missing = EVENT_KEYS - obj.keys()
        if missing:
            errors.append("line %d: event missing keys %s" % (lineno, sorted(missing)))
            continue
        if obj["type"] not in KNOWN_TYPES:
            errors.append("line %d: unknown event type %r" % (lineno, obj["type"]))
        if obj["cls"] not in ("arch", "engine"):
            errors.append("line %d: unknown event class %r" % (lineno, obj["cls"]))
        track = obj["track"]
        referenced.add(track)
        name = track_names.get(track, "")
        if name.startswith("cpu"):
            prev = last_cycle.get(track)
            if prev is not None and obj["cycle"] < prev:
                errors.append(
                    "line %d: track %s cycle %d < previous %d (cpu tracks must be monotone)"
                    % (lineno, name, obj["cycle"], prev)
                )
            last_cycle[track] = obj["cycle"]

    for track in sorted(referenced):
        if track not in track_names:
            errors.append("track %d has events but no meta header line" % track)
    return errors


def convert(path):
    """Returns the Chrome trace-event document as a dict."""
    trace_events = []
    open_crossings = {}  # track -> depth, to balance B/E pairs defensively

    for _, obj in parse_lines(path):
        if obj.get("meta") == "track":
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": obj["track"],
                    "args": {"name": obj["name"]},
                }
            )
            continue
        track = obj["track"]
        ts = obj["cycle"] / CPU_MHZ
        base = {"pid": 0, "tid": track, "ts": ts, "cat": obj["cls"]}
        etype = obj["type"]
        if etype == "crossing_enter":
            trace_events.append(
                dict(base, name="crossing", ph="B",
                     args={"function_id": obj["arg0"], "arg": obj["arg1"]})
            )
            open_crossings[track] = open_crossings.get(track, 0) + 1
        elif etype == "crossing_exit":
            if open_crossings.get(track, 0) > 0:
                open_crossings[track] -= 1
                trace_events.append(
                    dict(base, name="crossing", ph="E",
                         args={"function_id": obj["arg0"], "ok": obj["arg1"]})
                )
            else:
                # Enter was evicted by ring wrap; degrade to an instant so the
                # track stays well-formed.
                trace_events.append(
                    dict(base, name="crossing_exit", ph="i", s="t",
                         args={"function_id": obj["arg0"], "ok": obj["arg1"]})
                )
        else:
            trace_events.append(
                dict(base, name=etype, ph="i", s="t",
                     args={"arg0": obj["arg0"], "arg1": obj["arg1"]})
            )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="flight-recorder JSONL trace")
    parser.add_argument("-o", "--output", help="output path (default: INPUT with .json)")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="lint the JSONL instead of converting; exit 1 on any error",
    )
    args = parser.parse_args(argv)

    if args.validate:
        errors = validate(args.input)
        for err in errors:
            print("trace2chrome: %s" % err, file=sys.stderr)
        if errors:
            return 1
        print("trace2chrome: %s OK" % args.input)
        return 0

    doc = convert(args.input)
    out_path = args.output
    if out_path is None:
        out_path = (
            args.input[: -len(".jsonl")] if args.input.endswith(".jsonl") else args.input
        ) + ".json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print("wrote %s (%d events); open in https://ui.perfetto.dev" % (out_path, len(doc["traceEvents"])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
