#!/usr/bin/env python3
"""Bench-smoke gate: fail if a gated benchmark metric regressed.

Usage: check_bench_regression.py BASELINE.json FRESH.json [tolerance]

The JSON format is auto-detected by content:

google-benchmark JSON (bench_simspeed output, a "benchmarks" list). For
every gated throughput benchmark — block engine (name ending in `_block`),
hot-trace tier (name ending in `_trace`), and host-parallel SMP (name
ending in `_threaded`) — the gate checks:

 1. absolute sim-MIPS against the committed baseline, with `tolerance`
    slack (default 0.20 = 20%, env PALLADIUM_BENCH_MIPS_TOLERANCE);
 2. if the absolute check fails, the *paired in-binary ratio* from the same
    JSON — block/insn for `_block` names, trace/block for `_trace` names,
    threaded/interleaved for `_threaded` names —
    against the baseline's ratio. A runner that is uniformly slower than
    the machine that produced the baseline moves both engines together and
    keeps the ratio, so only a genuine engine regression (ratio collapse)
    fails the gate.

Aggregate entries (`_median` etc.) are preferred when present so
`--benchmark_repetitions` runs gate on the median.

BenchJson dataplane output (a "metrics" object carrying
"dataplane_packets_per_sec" or "requests_per_sec"): the gate checks the
simulated packet/request rate against the committed baseline with
`tolerance` slack (default 0.10, env PALLADIUM_BENCH_PPS_TOLERANCE) —
the rate is simulated cycles per packet, so it is machine-independent and
the tolerance only absorbs scheduling nondeterminism — and requires
"queue_full_drops" to be no worse than the baseline's.

BenchJson protection output (a "metrics" object carrying
"palladium_cycles_per_invocation"): the gate checks the protection
overhead *ratio* — Palladium cycles/invocation over unprotected
cycles/invocation, both simulated and machine-independent — against the
committed baseline with `tolerance` slack (default 0.10, env
PALLADIUM_BENCH_PROT_TOLERANCE), and requires the live-upgrade scenario
to have dropped zero frames ("upgrade_dropped_frames" == 0).
"""
import json
import os
import sys


def load_json(path):
    with open(path) as f:
        return json.load(f)


def is_metrics_format(data):
    return isinstance(data, dict) and isinstance(data.get("metrics"), dict)


# Throughput keys a BenchJson dataplane file may carry, in gate preference
# order (the plain bench emits packets/sec, the soak emits requests/sec).
DATAPLANE_RATE_KEYS = ("dataplane_packets_per_sec", "requests_per_sec")


def check_dataplane(baseline_data, fresh_data, argv_tolerance):
    tolerance = float(
        argv_tolerance if argv_tolerance is not None
        else os.environ.get("PALLADIUM_BENCH_PPS_TOLERANCE", "0.10"))
    base_m = baseline_data["metrics"]
    fresh_m = fresh_data["metrics"]
    name = baseline_data.get("bench", "dataplane")
    failed = False

    rate_key = next((k for k in DATAPLANE_RATE_KEYS if k in base_m), None)
    if rate_key is None:
        print(f"FAIL: {name}: baseline has none of {DATAPLANE_RATE_KEYS}")
        return 1
    base_rate = float(base_m[rate_key])
    if rate_key not in fresh_m:
        print(f"FAIL: {name}: fresh run is missing {rate_key}")
        failed = True
    else:
        fresh_rate = float(fresh_m[rate_key])
        ratio = fresh_rate / base_rate if base_rate else float("inf")
        line = (f"{name} {rate_key}: baseline {base_rate:.0f} -> "
                f"fresh {fresh_rate:.0f} ({ratio:.2f}x)")
        if fresh_rate >= base_rate * (1.0 - tolerance):
            print(f"{line} ok")
        else:
            print(f"{line} FAIL (more than {tolerance:.0%} below baseline; "
                  f"the rate is in simulated cycles, so this is a real "
                  f"dataplane regression, not runner noise)")
            failed = True

    # Metrics present in the fresh snapshot but absent from the committed
    # baseline are new telemetry (e.g. the federated "obs." registry
    # counters), not regressions: report them so the baseline refresh is a
    # conscious step, and gate only on the keys both sides carry.
    report_fresh_only(name, base_m, fresh_m)

    base_drops = base_m.get("queue_full_drops")
    fresh_drops = fresh_m.get("queue_full_drops")
    if base_drops is not None:
        if fresh_drops is None:
            print(f"FAIL: {name}: fresh run is missing queue_full_drops")
            failed = True
        elif float(fresh_drops) > float(base_drops):
            print(f"{name} queue_full_drops: baseline {float(base_drops):.0f} "
                  f"-> fresh {float(fresh_drops):.0f} FAIL (drops regressed)")
            failed = True
        else:
            print(f"{name} queue_full_drops: baseline {float(base_drops):.0f} "
                  f"-> fresh {float(fresh_drops):.0f} ok")
    return 1 if failed else 0


def report_fresh_only(name, base_m, fresh_m):
    fresh_only = sorted(set(fresh_m) - set(base_m))
    if fresh_only:
        preview = ", ".join(fresh_only[:5])
        more = f", ... ({len(fresh_only)} total)" if len(fresh_only) > 5 else ""
        print(f"note: {name}: {len(fresh_only)} fresh metrics have no committed "
              f"baseline yet (not gated): {preview}{more}")


def check_protection(baseline_data, fresh_data, argv_tolerance):
    tolerance = float(
        argv_tolerance if argv_tolerance is not None
        else os.environ.get("PALLADIUM_BENCH_PROT_TOLERANCE", "0.10"))
    base_m = baseline_data["metrics"]
    fresh_m = fresh_data["metrics"]
    name = baseline_data.get("bench", "protection")
    failed = False

    def overhead_ratio(m, where):
        pd = m.get("palladium_cycles_per_invocation")
        un = m.get("unprotected_cycles_per_invocation")
        if pd is None or un is None or not float(un):
            print(f"FAIL: {name}: {where} is missing palladium/unprotected "
                  f"cycles_per_invocation")
            return None
        return float(pd) / float(un)

    base_ratio = overhead_ratio(base_m, "baseline")
    fresh_ratio = overhead_ratio(fresh_m, "fresh run")
    if base_ratio is None or fresh_ratio is None:
        failed = True
    else:
        line = (f"{name} palladium/unprotected cycles ratio: baseline "
                f"{base_ratio:.2f}x -> fresh {fresh_ratio:.2f}x")
        if fresh_ratio <= base_ratio * (1.0 + tolerance):
            print(f"{line} ok")
        else:
            print(f"{line} FAIL (protected crossing got more than "
                  f"{tolerance:.0%} more expensive relative to the "
                  f"unprotected run — both are simulated cycles, so this is "
                  f"a real protection regression)")
            failed = True

    drops = fresh_m.get("upgrade_dropped_frames")
    if drops is None:
        print(f"FAIL: {name}: fresh run is missing upgrade_dropped_frames")
        failed = True
    elif float(drops) != 0:
        print(f"{name} upgrade_dropped_frames: {float(drops):.0f} FAIL "
              f"(the live filter upgrade must not lose frames)")
        failed = True
    else:
        print(f"{name} upgrade_dropped_frames: 0 ok")

    report_fresh_only(name, base_m, fresh_m)
    return 1 if failed else 0


def sim_mips(path):
    with open(path) as f:
        data = json.load(f)
    plain = {}
    median = {}
    for bench in data.get("benchmarks", []):
        # The SMP rows run with UseRealTime, which suffixes the name with
        # "/real_time"; strip it so the `_threaded`/`_interleaved` suffix
        # matching and baseline keys stay clock-agnostic.
        name = bench.get("name", "").replace("/real_time", "")
        if "sim_mips" not in bench:
            continue
        if name.endswith("_median"):
            median[name[: -len("_median")]] = float(bench["sim_mips"])
        elif "_" in name:
            plain[name] = float(bench["sim_mips"])
    # Median aggregates win over per-repetition entries.
    plain.update(median)
    return plain


# Gated suffix -> the in-binary reference its ratio is paired with. The SMP
# rows gate the threaded harness against the interleaver on the same machine
# and JSON: a runner with fewer/slower host cores moves both rows together,
# so only a genuine loss of host-parallel speedup (ratio collapse) fails.
PAIRED_REFERENCE = {"_block": "_insn", "_trace": "_block",
                    "_threaded": "_interleaved"}


def gated_suffix(name):
    for suffix in PAIRED_REFERENCE:
        if name.endswith(suffix):
            return suffix
    return None


def engine_ratio(mips, name):
    suffix = gated_suffix(name)
    ref_name = name[: -len(suffix)] + PAIRED_REFERENCE[suffix]
    gated = mips.get(name)
    ref = mips.get(ref_name)
    if gated is None or not ref:
        return None
    return gated / ref


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline_path, fresh_path = sys.argv[1], sys.argv[2]
    baseline_data = load_json(baseline_path)
    fresh_data = load_json(fresh_path)
    if is_metrics_format(baseline_data) or is_metrics_format(fresh_data):
        if not (is_metrics_format(baseline_data) and is_metrics_format(fresh_data)):
            print(f"FAIL: {baseline_path} and {fresh_path} are different "
                  f"bench JSON formats (one has a 'metrics' object, the "
                  f"other does not)")
            return 1
        argv_tol = sys.argv[3] if len(sys.argv) > 3 else None
        if "palladium_cycles_per_invocation" in baseline_data["metrics"]:
            return check_protection(baseline_data, fresh_data, argv_tol)
        return check_dataplane(baseline_data, fresh_data, argv_tol)
    tolerance = float(
        sys.argv[3] if len(sys.argv) > 3
        else os.environ.get("PALLADIUM_BENCH_MIPS_TOLERANCE", "0.20"))
    baseline = sim_mips(baseline_path)
    fresh = sim_mips(fresh_path)
    gated_names = sorted(n for n in baseline if gated_suffix(n))
    if not gated_names:
        print(f"FAIL: no block- or trace-engine benchmarks in baseline "
              f"{baseline_path}")
        return 1
    if not any(n.endswith("_trace") for n in gated_names):
        print(f"note: baseline {baseline_path} has no trace-tier benchmarks; "
              f"gating block engine only")
    failed = False
    for name in gated_names:
        engine = gated_suffix(name).lstrip("_")
        base = baseline[name]
        got = fresh.get(name)
        if got is None:
            print(f"FAIL: {name}: {engine}-engine benchmark present in "
                  f"baseline but missing from fresh run (did bench_simspeed "
                  f"drop the --engine {engine} spec?)")
            failed = True
            continue
        abs_ratio = got / base if base else float("inf")
        line = f"{name}: baseline {base:.1f} -> fresh {got:.1f} sim-MIPS ({abs_ratio:.2f}x)"
        if got >= base * (1.0 - tolerance):
            print(f"{line} ok")
            continue
        # Absolute check failed; arbitrate with the machine-independent
        # paired engine ratio.
        ref = PAIRED_REFERENCE[gated_suffix(name)].lstrip("_")
        pair = f"{engine}/{ref}"
        base_er = engine_ratio(baseline, name)
        fresh_er = engine_ratio(fresh, name)
        if base_er is None or fresh_er is None:
            print(f"{line} FAIL (more than {tolerance:.0%} below baseline; "
                  f"no {ref}-engine pair to normalize against)")
            failed = True
        elif fresh_er >= base_er * (1.0 - tolerance):
            print(f"{line} ok (absolute below baseline, but {pair} ratio "
                  f"held: {base_er:.2f}x -> {fresh_er:.2f}x — slower machine, "
                  f"not a regression)")
        else:
            print(f"{line} FAIL ({pair} ratio collapsed: "
                  f"{base_er:.2f}x -> {fresh_er:.2f}x)")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
