#include "src/dl/dynamic_linker.h"

namespace palladium {

std::optional<u32> DynamicLinker::LoadLibrary(Pid pid, const std::string& name,
                                              bool expose_ppl1, std::string* diag) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) {
    if (diag != nullptr) *diag = "no such process";
    return std::nullopt;
  }
  const ObjectFile* obj = FindObject(name);
  if (obj == nullptr) {
    if (diag != nullptr) *diag = "no such object: " + name;
    return std::nullopt;
  }
  u32 base = kSharedLibBase;
  auto nb = next_base_.find(pid);
  if (nb != next_base_.end()) base = nb->second;

  // Imports resolve against libraries already loaded in this process
  // (eager binding: unresolved imports fail the load).
  LinkError lerr;
  auto img = LinkImage(*obj, base, ExportedSymbols(pid), &lerr);
  if (!img) {
    if (diag != nullptr) *diag = "link " + name + ": " + lerr.message;
    return std::nullopt;
  }
  const u32 end = PageAlignUp(base + img->TotalSpan());
  if (!kernel_.AddArea(*proc, base, end, kProtRead | kProtWrite | kProtExec, "shlib")) {
    if (diag != nullptr) *diag = "library area overlaps";
    return std::nullopt;
  }
  if (expose_ppl1) proc->areas.back().shared_ppl1 = true;
  if (!kernel_.PopulateRange(*proc, base, end) ||
      !kernel_.CopyToUser(*proc, base, img->bytes.data(), static_cast<u32>(img->bytes.size()))) {
    if (diag != nullptr) *diag = "cannot materialize library";
    return std::nullopt;
  }
  next_base_[pid] = end + kPageSize;
  loaded_[pid].push_back(Library{name, *img, expose_ppl1});
  ++loads_;
  return base;
}

bool DynamicLinker::UnloadLibrary(Pid pid, const std::string& name, std::string* diag) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) {
    if (diag != nullptr) *diag = "no such process";
    return false;
  }
  auto it = loaded_.find(pid);
  if (it == loaded_.end()) {
    if (diag != nullptr) *diag = "no libraries loaded";
    return false;
  }
  for (auto lit = it->second.begin(); lit != it->second.end(); ++lit) {
    if (lit->name != name) continue;
    const u32 base = lit->image.base;
    const u32 end = PageAlignUp(base + lit->image.TotalSpan());
    if (!kernel_.UnmapArea(*proc, base, end)) {
      if (diag != nullptr) *diag = "cannot unmap library area";
      return false;
    }
    it->second.erase(lit);
    ++unloads_;
    return true;
  }
  if (diag != nullptr) *diag = "library not loaded: " + name;
  return false;
}

std::optional<u32> DynamicLinker::Lookup(Pid pid, const std::string& symbol) const {
  auto it = loaded_.find(pid);
  if (it == loaded_.end()) return std::nullopt;
  for (const Library& lib : it->second) {
    auto addr = lib.image.Lookup(symbol);
    if (addr) return addr;
  }
  return std::nullopt;
}

std::map<std::string, u32> DynamicLinker::ExportedSymbols(Pid pid) const {
  std::map<std::string, u32> out;
  auto it = loaded_.find(pid);
  if (it == loaded_.end()) return out;
  for (const Library& lib : it->second) {
    for (const auto& [sym, addr] : lib.image.symbols) out.emplace(sym, addr);
  }
  return out;
}

std::optional<std::map<std::string, u32>> DynamicLinker::BuildGot(
    Pid pid, u32 got_page, const std::vector<std::string>& symbols, std::string* diag) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr || (got_page & kPageMask) != 0) {
    if (diag != nullptr) *diag = "GOT page must be page-aligned in a live process";
    return std::nullopt;
  }
  if (symbols.size() * 4 > kPageSize) {
    if (diag != nullptr) *diag = "too many GOT entries for one page";
    return std::nullopt;
  }
  std::map<std::string, u32> slots;
  u32 slot = got_page;
  for (const std::string& sym : symbols) {
    auto addr = Lookup(pid, sym);
    if (!addr) {
      if (diag != nullptr) *diag = "GOT symbol unresolved: " + sym;
      return std::nullopt;
    }
    u32 value = *addr;
    if (!kernel_.CopyToUser(*proc, slot, &value, 4)) {
      if (diag != nullptr) *diag = "cannot write GOT";
      return std::nullopt;
    }
    slots["got_" + sym] = slot;
    slot += 4;
  }
  // All modifications happen at load time; the page then becomes read-only
  // (Section 4.4.2: eager resolution + write-protected GOT).
  if (!kernel_.SetPageWritable(*proc, got_page, false)) {
    if (diag != nullptr) *diag = "cannot write-protect GOT page";
    return std::nullopt;
  }
  return slots;
}

}  // namespace palladium
