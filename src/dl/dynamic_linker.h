// Dynamic loader substrate: shared libraries mapped into the middle of the
// user address space (Figure 2), eager symbol binding, and read-only
// page-aligned GOTs — the design points Section 4.4.2 of the paper builds on.
//
// The loader logic itself runs as host code (standing in for ld.so); every
// protection-relevant artifact — mapped pages, PPL bits, the read-only GOT
// page — is real simulated-machine state enforced by the simulated MMU.
#ifndef SRC_DL_DYNAMIC_LINKER_H_
#define SRC_DL_DYNAMIC_LINKER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/asm/object_file.h"
#include "src/kernel/kernel.h"

namespace palladium {

class DynamicLinker {
 public:
  explicit DynamicLinker(Kernel& kernel) : kernel_(kernel) {}

  // Registers an object "on disk" under `name`.
  void RegisterObject(const std::string& name, const ObjectFile& obj) {
    registry_[name] = obj;
  }
  const ObjectFile* FindObject(const std::string& name) const {
    auto it = registry_.find(name);
    return it == registry_.end() ? nullptr : &it->second;
  }

  struct Library {
    std::string name;
    LinkedImage image;
    bool shared_ppl1 = false;
  };

  // Maps a registered object into the process at the next shared-library
  // base. If `expose_ppl1`, the pages stay at PPL 1 (readable/executable by
  // extensions) even after init_PL. Returns the image base.
  std::optional<u32> LoadLibrary(Pid pid, const std::string& name, bool expose_ppl1,
                                 std::string* diag);

  // Unmaps a loaded library: frees its pages (Kernel::UnmapArea evicts every
  // frame from every vCPU's decode cache and shoots down the TLBs/D-TLBs) and
  // drops its symbols from the process. The library's address range is NOT
  // reused by later loads (next_base_ only grows), so dangling pointers fault
  // instead of silently hitting a new image.
  bool UnloadLibrary(Pid pid, const std::string& name, std::string* diag);

  // Looks a symbol up across all libraries loaded in the process.
  std::optional<u32> Lookup(Pid pid, const std::string& symbol) const;

  // All (symbol, address) pairs exported by the process's libraries; used to
  // resolve extension imports eagerly (the paper's "eagerly, not lazily").
  std::map<std::string, u32> ExportedSymbols(Pid pid) const;

  // Builds a GOT at `got_page` (page-aligned, caller-mapped): one 4-byte
  // slot per symbol, filled with the resolved address, then the page is
  // marked read-only so extensions cannot corrupt it. Returns slot addresses
  // keyed by "got_<symbol>".
  std::optional<std::map<std::string, u32>> BuildGot(Pid pid, u32 got_page,
                                                     const std::vector<std::string>& symbols,
                                                     std::string* diag);

  const std::vector<Library>* libraries(Pid pid) const {
    auto it = loaded_.find(pid);
    return it == loaded_.end() ? nullptr : &it->second;
  }

  // Counters for the obs layer.
  u64 loads() const { return loads_; }
  u64 unloads() const { return unloads_; }

 private:
  Kernel& kernel_;
  std::map<std::string, ObjectFile> registry_;
  std::map<Pid, std::vector<Library>> loaded_;
  std::map<Pid, u32> next_base_;
  u64 loads_ = 0;
  u64 unloads_ = 0;
};

}  // namespace palladium

#endif  // SRC_DL_DYNAMIC_LINKER_H_
