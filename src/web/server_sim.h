// The web-server model behind Table 3: a closed-loop discrete-event
// simulation of an Apache-style server on a 200 MHz machine with a 100 Mbps
// link, serving a fixed file through five execution models — static file,
// process-per-request CGI, FastCGI (persistent process + socket IPC), LibCGI
// (in-process function call), and protected LibCGI (Palladium user-level
// extension call).
//
// Every request is actually parsed/formatted through src/web/http; time is
// charged from the calibrated cycle costs below. The two LibCGI invocation
// costs are intended to be *measured from the simulator* by the benchmark
// (bench_table3 overrides the defaults with live measurements).
// The interrupt-driven variant (RunMultiWorkerServer below) replaces the
// closed-form model with the real machine: NIC RX interrupts feed client
// requests through a protected packet-filter extension into per-process
// queues, a preemptive round-robin scheduler multiplexes worker processes,
// and responses leave through the NIC TX ring.
#ifndef SRC_WEB_SERVER_SIM_H_
#define SRC_WEB_SERVER_SIM_H_

#include <string>
#include <vector>

#include "src/hw/types.h"
#include "src/net/dataplane.h"

namespace palladium {

namespace obs {
class FlightRecorder;
class CycleProfile;
class MetricsRegistry;
}  // namespace obs

enum class CgiModel : u8 {
  kStatic,           // server serves the file directly (upper bound)
  kCgi,              // fork + exec per request
  kFastCgi,          // persistent CGI process, socket round trip
  kLibCgi,           // dlopen'd script invoked as an unprotected call
  kLibCgiProtected,  // Palladium protected extension call
};

const char* CgiModelName(CgiModel model);

struct WebServerCosts {
  double cpu_mhz = 200.0;
  double link_mbps = 100.0;
  // Server-side CPU per request, independent of the execution model:
  // accept/parse/open/log/close. Calibrated so the static 28-byte case
  // lands near the paper's 460 req/s bound.
  u64 request_base_cycles = 420'000;
  // Per body byte: read + copy + send path (~30 cycles/byte on a P200).
  u64 per_body_byte_cycles = 27;
  // Execution-model overheads per request:
  u64 cgi_fork_exec_cycles = 1'620'000;    // fork+exec+wait of the CGI binary
  u64 fastcgi_ipc_cycles = 580'000;        // socket round trip + 2 switches
  u64 libcgi_call_cycles = 20;             // plain function call (measured)
  u64 libcgi_protected_call_cycles = 150;  // Palladium call (measured)
  u64 libcgi_script_cycles = 11'000;       // script work beyond the static path
  // Protected LibCGI per-request upkeep: argument-buffer sharing and checks
  // (keeps protected within ~4% of unprotected, as in the paper).
  u64 protected_per_request_cycles = 10'000;
  // Per-response network bytes beyond the body (headers).
  u32 response_header_bytes = 128;
};

struct WebWorkload {
  u32 file_bytes = 28;
  u32 total_requests = 1000;
  u32 concurrency = 30;
};

struct WebRunResult {
  double requests_per_sec = 0;
  double elapsed_seconds = 0;
  double cpu_utilization = 0;
  double link_utilization = 0;
  u64 parsed_requests = 0;  // sanity: every request went through the parser
};

// Cycle cost of one request's CPU service under `model`.
u64 RequestCpuCycles(CgiModel model, u32 file_bytes, const WebServerCosts& costs);

WebRunResult SimulateWebServer(CgiModel model, const WebWorkload& workload,
                               const WebServerCosts& costs);

// --- Interrupt-driven multi-worker server ------------------------------------

struct MultiServerConfig {
  u32 workers = 4;
  u32 clients = 8;             // distinct simulated clients (src IP/port)
  u32 total_requests = 64;
  u32 response_body_bytes = 256;
  u64 inter_arrival_cycles = 4'000;  // wire gap between client requests
  u64 first_arrival_cycle = 10'000;
  u64 timer_period_cycles = 20'000;  // hardware timer (scheduler + watchdog)
  u64 slice_cycles = 60'000;         // round-robin quantum
  u64 cycle_budget = 2'000'000'000ull;
  // HTTP work charged per request on the send path (parse + format).
  u64 http_service_cycles = 2'000;
  // vCPUs for the machine (0 = PALLADIUM_SMP env, default 1). Workers are
  // homed round-robin across cores; NIC RX and filter classification run on
  // vCPU 0; queues drain wherever their worker runs (the `--smp N` mode).
  u32 smp = 0;
  // RSS-style flow steering pins each client's flow to one worker (and so,
  // under SMP, to one core). Round-robin keeps the PR 3 balanced-load
  // behavior that the example and tests assert.
  FlowSteering steering = FlowSteering::kRoundRobin;
  // Dataplane fast-path knobs, forwarded to PacketDataplane::Config (the
  // soak scenario turns these up; PALLADIUM_NO_NAPI still forces the oracle).
  u32 queues = 1;              // per-core NIC queue pairs (clamped to vCPUs)
  bool napi = true;            // NAPI poll loop vs IRQ-per-frame
  u32 filter_batch = 32;       // frames per protected filter crossing
  u32 rx_irq_moderation = 0;   // NIC ITR window in cycles (0 = off)
  // Observability (optional; all pure observers of the simulated clock).
  // An attached recorder is Reset to one track per vCPU plus one per NIC
  // queue; a profiler is Reset for the run's vCPU count; a registry is
  // populated with the full metric snapshot after the run.
  obs::FlightRecorder* recorder = nullptr;
  obs::CycleProfile* profiler = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct MultiServerResult {
  bool ok = false;
  std::string diag;
  u64 served = 0;            // responses that reached the wire
  u64 parsed_requests = 0;   // requests parsed by the HTTP layer
  u64 cycles = 0;            // simulated cycles for the whole run
  double requests_per_sec = 0;  // at the paper's 200 MHz
  u64 timer_irqs = 0;        // summed over every vCPU's local timer
  u64 nic_irqs = 0;
  u64 preemptions = 0;
  u64 context_switches = 0;
  u64 filter_invocations = 0;
  u64 idle_cycles = 0;
  u32 cpus = 1;              // vCPUs the machine actually ran with
  u64 steals = 0;            // scheduler work-steals
  u64 shootdown_ipis = 0;    // cross-CPU TLB shootdown IPIs
  u64 queue_full_drops = 0;  // requests dropped at saturated worker queues
  // Keep-alive connection table (host side, keyed by the client 5-tuple):
  // how many distinct connections the run saw and how many requests rode an
  // already-open connection instead of paying a fresh-flow setup.
  u64 connections = 0;
  u64 keepalive_reuses = 0;
  // Request latency (inject on the wire -> response formatted onto the TX
  // ring), in simulated cycles; zeros when nothing was served.
  u64 latency_p50_cycles = 0;
  u64 latency_p90_cycles = 0;
  u64 latency_p99_cycles = 0;
  u64 latency_max_cycles = 0;
  std::vector<i32> per_worker_served;  // worker exit codes
};

// Serves `total_requests` HTTP requests from `clients` simulated clients
// across `workers` worker processes: NIC RX IRQ -> protected filter kext ->
// per-worker queues -> pkt_recv; workers checksum the request bytes in
// simulated code and send the response via pkt_send, where the HTTP layer
// parses the request and formats the reply onto the TX ring.
MultiServerResult RunMultiWorkerServer(const MultiServerConfig& config);

}  // namespace palladium

#endif  // SRC_WEB_SERVER_SIM_H_
