// The web-server model behind Table 3: a closed-loop discrete-event
// simulation of an Apache-style server on a 200 MHz machine with a 100 Mbps
// link, serving a fixed file through five execution models — static file,
// process-per-request CGI, FastCGI (persistent process + socket IPC), LibCGI
// (in-process function call), and protected LibCGI (Palladium user-level
// extension call).
//
// Every request is actually parsed/formatted through src/web/http; time is
// charged from the calibrated cycle costs below. The two LibCGI invocation
// costs are intended to be *measured from the simulator* by the benchmark
// (bench_table3 overrides the defaults with live measurements).
#ifndef SRC_WEB_SERVER_SIM_H_
#define SRC_WEB_SERVER_SIM_H_

#include <string>

#include "src/hw/types.h"

namespace palladium {

enum class CgiModel : u8 {
  kStatic,           // server serves the file directly (upper bound)
  kCgi,              // fork + exec per request
  kFastCgi,          // persistent CGI process, socket round trip
  kLibCgi,           // dlopen'd script invoked as an unprotected call
  kLibCgiProtected,  // Palladium protected extension call
};

const char* CgiModelName(CgiModel model);

struct WebServerCosts {
  double cpu_mhz = 200.0;
  double link_mbps = 100.0;
  // Server-side CPU per request, independent of the execution model:
  // accept/parse/open/log/close. Calibrated so the static 28-byte case
  // lands near the paper's 460 req/s bound.
  u64 request_base_cycles = 420'000;
  // Per body byte: read + copy + send path (~30 cycles/byte on a P200).
  u64 per_body_byte_cycles = 27;
  // Execution-model overheads per request:
  u64 cgi_fork_exec_cycles = 1'620'000;    // fork+exec+wait of the CGI binary
  u64 fastcgi_ipc_cycles = 580'000;        // socket round trip + 2 switches
  u64 libcgi_call_cycles = 20;             // plain function call (measured)
  u64 libcgi_protected_call_cycles = 150;  // Palladium call (measured)
  u64 libcgi_script_cycles = 11'000;       // script work beyond the static path
  // Protected LibCGI per-request upkeep: argument-buffer sharing and checks
  // (keeps protected within ~4% of unprotected, as in the paper).
  u64 protected_per_request_cycles = 10'000;
  // Per-response network bytes beyond the body (headers).
  u32 response_header_bytes = 128;
};

struct WebWorkload {
  u32 file_bytes = 28;
  u32 total_requests = 1000;
  u32 concurrency = 30;
};

struct WebRunResult {
  double requests_per_sec = 0;
  double elapsed_seconds = 0;
  double cpu_utilization = 0;
  double link_utilization = 0;
  u64 parsed_requests = 0;  // sanity: every request went through the parser
};

// Cycle cost of one request's CPU service under `model`.
u64 RequestCpuCycles(CgiModel model, u32 file_bytes, const WebServerCosts& costs);

WebRunResult SimulateWebServer(CgiModel model, const WebWorkload& workload,
                               const WebServerCosts& costs);

}  // namespace palladium

#endif  // SRC_WEB_SERVER_SIM_H_
