#include "src/web/http.h"

#include <sstream>

namespace palladium {

std::optional<HttpRequest> HttpRequest::Parse(const std::string& text) {
  std::istringstream is(text);
  HttpRequest req;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::istringstream first(line);
  if (!(first >> req.method >> req.path >> req.version)) return std::nullopt;
  if (req.method.empty() || req.path.empty() || req.path[0] != '/') return std::nullopt;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    std::string key = line.substr(0, colon);
    size_t vstart = line.find_first_not_of(' ', colon + 1);
    req.headers[key] = vstart == std::string::npos ? "" : line.substr(vstart);
  }
  return req;
}

std::string HttpRequest::Format() const {
  std::ostringstream os;
  os << method << " " << path << " " << version << "\r\n";
  for (const auto& [k, v] : headers) os << k << ": " << v << "\r\n";
  os << "\r\n";
  return os.str();
}

std::string HttpResponse::FormatHead() const {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << " " << reason << "\r\n";
  for (const auto& [k, v] : headers) os << k << ": " << v << "\r\n";
  os << "Content-Length: " << body_bytes << "\r\n\r\n";
  return os.str();
}

}  // namespace palladium
