#include "src/web/server_sim.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/asm/assembler.h"
#include "src/core/kernel_ext.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/web/http.h"

namespace palladium {

const char* CgiModelName(CgiModel model) {
  switch (model) {
    case CgiModel::kStatic: return "static";
    case CgiModel::kCgi: return "CGI";
    case CgiModel::kFastCgi: return "FastCGI";
    case CgiModel::kLibCgi: return "LibCGI";
    case CgiModel::kLibCgiProtected: return "LibCGI (protected)";
  }
  return "?";
}

u64 RequestCpuCycles(CgiModel model, u32 file_bytes, const WebServerCosts& costs) {
  u64 cycles = costs.request_base_cycles +
               static_cast<u64>(file_bytes) * costs.per_body_byte_cycles;
  switch (model) {
    case CgiModel::kStatic:
      break;
    case CgiModel::kCgi:
      cycles += costs.cgi_fork_exec_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kFastCgi:
      cycles += costs.fastcgi_ipc_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kLibCgi:
      cycles += costs.libcgi_call_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kLibCgiProtected:
      cycles += costs.libcgi_protected_call_cycles + costs.libcgi_script_cycles +
                costs.protected_per_request_cycles;
      break;
  }
  return cycles;
}

WebRunResult SimulateWebServer(CgiModel model, const WebWorkload& workload,
                               const WebServerCosts& costs) {
  WebRunResult result;
  const double hz = costs.cpu_mhz * 1e6;
  const double link_bytes_per_sec = costs.link_mbps * 1e6 / 8.0;

  const std::string target =
      model == CgiModel::kStatic ? "/index.html" : "/cgi-bin/render";
  HttpRequest request_template;
  request_template.method = "GET";
  request_template.path = target;
  request_template.version = "HTTP/1.0";
  request_template.headers["Host"] = "server";
  const std::string wire_request = request_template.Format();

  // Closed-loop clients: each issues its next request as soon as the
  // previous one completes (ApacheBench's -c behaviour).
  using Event = std::pair<double, u32>;  // (issue time, client)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> clients;
  for (u32 c = 0; c < workload.concurrency && c < workload.total_requests; ++c) {
    clients.emplace(0.0, c);
  }

  double cpu_free = 0, link_free = 0;
  double cpu_busy = 0, link_busy = 0;
  double last_completion = 0;
  u32 issued = 0;

  while (!clients.empty()) {
    auto [arrival, client] = clients.top();
    clients.pop();
    ++issued;

    // The request really flows through the HTTP layer.
    auto parsed = HttpRequest::Parse(wire_request);
    if (parsed.has_value()) ++result.parsed_requests;
    HttpResponse resp;
    resp.body_bytes = workload.file_bytes;
    (void)resp.FormatHead();

    const double cpu_time = RequestCpuCycles(model, workload.file_bytes, costs) / hz;
    const double net_time =
        (workload.file_bytes + costs.response_header_bytes) / link_bytes_per_sec;

    const double cpu_start = std::max(arrival, cpu_free);
    cpu_free = cpu_start + cpu_time;
    cpu_busy += cpu_time;
    const double link_start = std::max(cpu_free, link_free);
    link_free = link_start + net_time;
    link_busy += net_time;
    last_completion = link_free;

    if (issued + clients.size() < workload.total_requests) {
      clients.emplace(link_free, client);
    }
  }

  result.elapsed_seconds = last_completion;
  result.requests_per_sec =
      last_completion > 0 ? workload.total_requests / last_completion : 0;
  result.cpu_utilization = last_completion > 0 ? cpu_busy / last_completion : 0;
  result.link_utilization = last_completion > 0 ? link_busy / last_completion : 0;
  return result;
}

// --- Interrupt-driven multi-worker server ------------------------------------

namespace {

// The worker process: receive a request frame, touch every byte of it in
// simulated code (the request "read" work), send the response, repeat until
// the dataplane shuts down; exit code = requests served.
constexpr char kWorkerSource[] = R"(
  .equ SYS_EXIT, 1
  .equ SYS_MMAP, 90
  .equ SYS_PKT_RECV, 220
  .equ SYS_PKT_SEND, 221
  .global main
main:
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $4096, %ecx
  mov $3, %edx            ; PROT_READ|PROT_WRITE
  int $0x80
  mov %eax, %esi          ; packet buffer
  mov $0, %edi            ; served counter
loop:
  mov $SYS_PKT_RECV, %eax
  mov %esi, %ebx
  mov $2048, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done                 ; negative => dataplane shut down
  push %eax               ; save frame length
  mov %eax, %ecx
  mov %esi, %ebp
  mov $0, %edx
csum:
  cmp $0, %ecx
  je send
  ld8 0(%ebp), %eax
  add %eax, %edx
  add $1, %ebp
  dec %ecx
  jmp csum
send:
  mov $SYS_PKT_SEND, %eax
  mov %esi, %ebx
  pop %ecx                ; frame length
  int $0x80
  inc %edi
  jmp loop
done:
  mov $SYS_EXIT, %eax
  mov %edi, %ebx
  int $0x80
)";

}  // namespace

MultiServerResult RunMultiWorkerServer(const MultiServerConfig& config) {
  MultiServerResult result;

  MachineConfig mcfg;
  mcfg.num_cpus = config.smp;
  Machine machine(mcfg);
  Kernel::Config kcfg;
  kcfg.timer_period_cycles = config.timer_period_cycles;
  Kernel kernel(machine, kcfg);
  KernelExtensionManager kext(kernel);
  Scheduler::Config scfg;
  scfg.slice_cycles = config.slice_cycles;
  Scheduler sched(kernel, scfg);

  std::string diag;
  auto img = AssembleAndLink(kWorkerSource, kUserTextBase, {}, &diag);
  if (!img) {
    result.diag = "assemble worker: " + diag;
    return result;
  }
  std::vector<Pid> workers;
  for (u32 w = 0; w < config.workers; ++w) {
    Pid pid = kernel.CreateProcess();
    if (pid == 0 || !kernel.LoadUserImage(pid, *img, "main", &diag)) {
      result.diag = "load worker: " + diag;
      return result;
    }
    workers.push_back(pid);
    sched.AddProcess(pid);
  }

  Nic nic(machine.pm(), kernel.pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.steering = config.steering;
  dcfg.queues = config.queues;
  dcfg.napi = config.napi;
  dcfg.filter_batch = config.filter_batch;
  dcfg.rx_irq_moderation = config.rx_irq_moderation;
  PacketDataplane dataplane(kernel, kext, nic, dcfg);
  if (!dataplane.AddFlow("http", "ip.proto == 6 && tcp.dport == 80", workers, &diag)) {
    result.diag = "flow: " + diag;
    return result;
  }

  // Optional telemetry: one trace track per vCPU plus one per NIC queue;
  // the profiler accounts every retired cycle per vCPU. Both are pure
  // observers — attaching them cannot change the simulated run.
  if (config.recorder != nullptr) {
    config.recorder->Reset(machine.num_cpus() + nic.num_queues());
    for (u32 q = 0; q < nic.num_queues(); ++q) {
      config.recorder->SetTrackName(machine.num_cpus() + q,
                                    "nic.q" + std::to_string(q));
    }
    nic.set_recorder(config.recorder, machine.num_cpus());
  }
  if (config.profiler != nullptr) {
    config.profiler->Reset(machine.num_cpus(),
                           machine.cpu(0).cycle_model().tlb_miss_penalty);
  }
  kernel.AttachObservability(config.recorder, config.profiler);

  // The send path runs the request through the real HTTP layer and formats
  // the response onto the wire, charged to the sending worker.
  u64 parsed = 0;
  // Keep-alive connection table: one entry per client 5-tuple the server has
  // seen; a request on a known tuple is a keep-alive reuse. Request latency
  // is wire-arrival -> response formatted, looked up by the /doc-<i> id.
  std::unordered_map<u64, u32> connections;
  u64 keepalive_reuses = 0;
  std::vector<u64> inject_cycles(config.total_requests, 0);
  std::vector<u64> latencies;
  latencies.reserve(config.total_requests);
  dataplane.set_tx_hook([&](Kernel& k, Process&, const std::vector<u8>& frame) {
    k.Charge(config.http_service_cycles);
    std::vector<u8> payload;
    const u32 off = PayloadOffset(kIpProtoTcp);
    HttpResponse resp;
    resp.body_bytes = config.response_body_bytes;
    if (frame.size() > off) {
      auto req = HttpRequest::Parse(
          std::string(frame.begin() + off, frame.end()));
      if (req.has_value()) {
        ++parsed;
        const u64 conn_key = (static_cast<u64>(ReadBe32(&frame[kOffIpSrc])) << 16) |
                             ReadBe16(&frame[kOffSrcPort]);
        if (!connections.emplace(conn_key, 1).second) ++keepalive_reuses;
        if (req->path.size() > 5 && req->path.compare(0, 5, "/doc-") == 0) {
          const u64 id = std::strtoull(req->path.c_str() + 5, nullptr, 10);
          if (id < inject_cycles.size() && inject_cycles[id] != 0) {
            const u64 now = k.machine().cpu().cycles();
            latencies.push_back(now > inject_cycles[id] ? now - inject_cycles[id] : 0);
          }
        }
      } else {
        resp.status = 400;
        resp.reason = "Bad Request";
        resp.body_bytes = 0;
      }
    }
    const std::string head = resp.FormatHead();
    // Response frame: ports/addresses swapped, header text as payload (the
    // body is synthetic bulk accounted by body_bytes).
    PacketSpec out;
    out.src_port = 80;
    out.dst_port = frame.size() > kOffSrcPort + 1 ? ReadBe16(&frame[kOffSrcPort]) : 0;
    out.src_ip = frame.size() > kOffIpDst + 3 ? ReadBe32(&frame[kOffIpDst]) : 0;
    out.dst_ip = frame.size() > kOffIpSrc + 3 ? ReadBe32(&frame[kOffIpSrc]) : 0;
    return BuildPacketWithPayload(out, head.data(), static_cast<u32>(head.size()));
  });

  // Inject the client request stream: `clients` distinct sources issuing
  // requests at a fixed wire cadence.
  u64 at = config.first_arrival_cycle;
  for (u32 i = 0; i < config.total_requests; ++i) {
    const u32 client = i % std::max(1u, config.clients);
    PacketSpec spec;
    spec.proto = kIpProtoTcp;
    // Split the client id across ip and port so the soak's 100k+ clients map
    // to 100k+ *distinct* 5-tuples (a 16-bit port alone wraps at 64k):
    // 10.1.<x>.<y> with 1024 ports per address.
    spec.src_ip = 0x0A010000u + (client >> 10);
    spec.src_port = static_cast<u16>(1024 + (client & 1023));
    spec.dst_ip = 0x0A000001u;
    spec.dst_port = 80;
    const std::string req = "GET /doc-" + std::to_string(i) +
                            " HTTP/1.0\r\nHost: palladium-sim\r\nUser-Agent: client-" +
                            std::to_string(client) + "\r\n\r\n";
    auto frame = BuildPacketWithPayload(spec, req.data(), static_cast<u32>(req.size()));
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    inject_cycles[i] = at;
    at += config.inter_arrival_cycles;
  }

  // When everything sleeps and the wire has gone quiet, declare the source
  // drained: sleepers wake with kErrShutdown and exit.
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  const Scheduler::RunAllResult run = sched.RunAll(config.cycle_budget);

  result.served = dataplane.stats().tx_frames;
  result.parsed_requests = parsed;
  result.cycles = run.cycles;
  // Throughput over the busy period only (idle fast-forward is the machine
  // waiting for the wire, not work) — obs::BusyCycles is the one shared
  // definition, also used by bench_dataplane and the profiler's report.
  const u64 busy_cycles =
      obs::BusyCycles(machine.num_cpus(), run.cycles, sched.stats().idle_cycles);
  result.requests_per_sec =
      busy_cycles > 0 ? static_cast<double>(result.served) * 200e6 / busy_cycles : 0;
  result.cpus = machine.num_cpus();
  for (u32 c = 0; c < machine.num_cpus(); ++c) {
    result.timer_irqs += kernel.pic(c).delivered(kIrqTimer);
    // Multi-queue: each RX queue interrupts its own core's local PIC.
    result.nic_irqs += kernel.pic(c).delivered(kIrqNic);
  }
  result.preemptions = sched.stats().preemptions;
  result.context_switches = sched.stats().context_switches;
  result.filter_invocations = dataplane.stats().filter_invocations;
  result.idle_cycles = sched.stats().idle_cycles;
  result.steals = sched.stats().steals;
  result.shootdown_ipis = kernel.smp_stats().shootdown_ipis;
  result.queue_full_drops = dataplane.stats().dropped_queue_full;
  result.connections = connections.size();
  result.keepalive_reuses = keepalive_reuses;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](u32 p) {
      const size_t idx = std::min(latencies.size() - 1,
                                  static_cast<size_t>(latencies.size()) * p / 100);
      return latencies[idx];
    };
    result.latency_p50_cycles = pct(50);
    result.latency_p90_cycles = pct(90);
    result.latency_p99_cycles = pct(99);
    result.latency_max_cycles = latencies.back();
  }
  if (config.metrics != nullptr) {
    config.metrics->CollectMachine(kernel, &sched);
    config.metrics->CollectNic(nic);
    config.metrics->CollectDataplane(dataplane);
    if (config.profiler != nullptr) config.metrics->CollectProfile(*config.profiler);
    if (config.recorder != nullptr) config.metrics->CollectRecorder(*config.recorder);
  }
  u64 worker_total = 0;
  for (Pid pid : workers) {
    Process* proc = kernel.process(pid);
    const bool exited = proc != nullptr && proc->state == ProcessState::kExited;
    result.per_worker_served.push_back(exited ? proc->exit_code : -1);
    if (exited) worker_total += static_cast<u64>(proc->exit_code);
  }
  result.ok = run.exited == config.workers && worker_total == result.served &&
              result.served == config.total_requests;
  if (!result.ok && result.diag.empty()) {
    result.diag = "served " + std::to_string(result.served) + "/" +
                  std::to_string(config.total_requests) + ", " + std::to_string(run.exited) +
                  "/" + std::to_string(config.workers) + " workers exited";
  }
  return result;
}

}  // namespace palladium

