#include "src/web/server_sim.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/web/http.h"

namespace palladium {

const char* CgiModelName(CgiModel model) {
  switch (model) {
    case CgiModel::kStatic: return "static";
    case CgiModel::kCgi: return "CGI";
    case CgiModel::kFastCgi: return "FastCGI";
    case CgiModel::kLibCgi: return "LibCGI";
    case CgiModel::kLibCgiProtected: return "LibCGI (protected)";
  }
  return "?";
}

u64 RequestCpuCycles(CgiModel model, u32 file_bytes, const WebServerCosts& costs) {
  u64 cycles = costs.request_base_cycles +
               static_cast<u64>(file_bytes) * costs.per_body_byte_cycles;
  switch (model) {
    case CgiModel::kStatic:
      break;
    case CgiModel::kCgi:
      cycles += costs.cgi_fork_exec_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kFastCgi:
      cycles += costs.fastcgi_ipc_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kLibCgi:
      cycles += costs.libcgi_call_cycles + costs.libcgi_script_cycles;
      break;
    case CgiModel::kLibCgiProtected:
      cycles += costs.libcgi_protected_call_cycles + costs.libcgi_script_cycles +
                costs.protected_per_request_cycles;
      break;
  }
  return cycles;
}

WebRunResult SimulateWebServer(CgiModel model, const WebWorkload& workload,
                               const WebServerCosts& costs) {
  WebRunResult result;
  const double hz = costs.cpu_mhz * 1e6;
  const double link_bytes_per_sec = costs.link_mbps * 1e6 / 8.0;

  const std::string target =
      model == CgiModel::kStatic ? "/index.html" : "/cgi-bin/render";
  HttpRequest request_template;
  request_template.method = "GET";
  request_template.path = target;
  request_template.version = "HTTP/1.0";
  request_template.headers["Host"] = "server";
  const std::string wire_request = request_template.Format();

  // Closed-loop clients: each issues its next request as soon as the
  // previous one completes (ApacheBench's -c behaviour).
  using Event = std::pair<double, u32>;  // (issue time, client)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> clients;
  for (u32 c = 0; c < workload.concurrency && c < workload.total_requests; ++c) {
    clients.emplace(0.0, c);
  }

  double cpu_free = 0, link_free = 0;
  double cpu_busy = 0, link_busy = 0;
  double last_completion = 0;
  u32 issued = 0;

  while (!clients.empty()) {
    auto [arrival, client] = clients.top();
    clients.pop();
    ++issued;

    // The request really flows through the HTTP layer.
    auto parsed = HttpRequest::Parse(wire_request);
    if (parsed.has_value()) ++result.parsed_requests;
    HttpResponse resp;
    resp.body_bytes = workload.file_bytes;
    (void)resp.FormatHead();

    const double cpu_time = RequestCpuCycles(model, workload.file_bytes, costs) / hz;
    const double net_time =
        (workload.file_bytes + costs.response_header_bytes) / link_bytes_per_sec;

    const double cpu_start = std::max(arrival, cpu_free);
    cpu_free = cpu_start + cpu_time;
    cpu_busy += cpu_time;
    const double link_start = std::max(cpu_free, link_free);
    link_free = link_start + net_time;
    link_busy += net_time;
    last_completion = link_free;

    if (issued + clients.size() < workload.total_requests) {
      clients.emplace(link_free, client);
    }
  }

  result.elapsed_seconds = last_completion;
  result.requests_per_sec =
      last_completion > 0 ? workload.total_requests / last_completion : 0;
  result.cpu_utilization = last_completion > 0 ? cpu_busy / last_completion : 0;
  result.link_utilization = last_completion > 0 ? link_busy / last_completion : 0;
  return result;
}

}  // namespace palladium
