// Minimal HTTP/1.0 message handling for the web-server workload (Table 3).
// Real parsing/formatting code — the server model runs every request through
// it, so the workload exercises genuine request handling, while time is
// accounted in simulated cycles.
#ifndef SRC_WEB_HTTP_H_
#define SRC_WEB_HTTP_H_

#include <map>
#include <optional>
#include <string>

#include "src/hw/types.h"

namespace palladium {

struct HttpRequest {
  std::string method;
  std::string path;
  std::string version;
  std::map<std::string, std::string> headers;

  static std::optional<HttpRequest> Parse(const std::string& text);
  std::string Format() const;

  // CGI requests address scripts under /cgi-bin/.
  bool IsCgi() const { return path.rfind("/cgi-bin/", 0) == 0; }
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  u32 body_bytes = 0;

  // Formats the status line + headers (the body is synthetic bulk).
  std::string FormatHead() const;
};

}  // namespace palladium

#endif  // SRC_WEB_HTTP_H_
