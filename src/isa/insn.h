// The simulated instruction set: a compact 32-bit x86-flavoured ISA with a
// fixed 16-byte encoding. It keeps exactly the x86 features Palladium's
// mechanisms depend on — segment-relative addressing with overrides, near
// call/ret, far lcall/lret through call gates, int/iret, push/pop of segment
// registers — while staying simple enough to assemble and decode directly.
#ifndef SRC_ISA_INSN_H_
#define SRC_ISA_INSN_H_

#include <optional>

#include "src/hw/types.h"

namespace palladium {

// General-purpose registers. ESP/EBP have their usual stack roles.
enum class Reg : u8 { kEax = 0, kEbx, kEcx, kEdx, kEsi, kEdi, kEbp, kEsp };
inline constexpr u8 kNumRegs = 8;

// Sentinel in the r2 (base) field of a memory operand: absolute addressing
// (effective address = disp [+ index*scale]), as in x86's `movl %esp, SP2`.
inline constexpr u8 kNoBaseReg = 0xFF;

// Segment registers.
enum class SegReg : u8 { kCs = 0, kSs, kDs, kEs };
inline constexpr u8 kNumSegRegs = 4;

// Segment override encoding inside an instruction (0 = default rule:
// SS for ESP/EBP-based addressing and stack ops, DS otherwise).
enum class SegOverride : u8 { kNone = 0, kCs, kSs, kDs, kEs };

enum class Opcode : u16 {
  kNop = 0,
  kHlt,

  // Data movement.
  kMovRR,    // r1 <- r2
  kMovRI,    // r1 <- imm
  kLoad,     // r1 <- [seg: r2 + r3*scale + disp]  (size bytes, zero-extended)
  kStore,    // [seg: r2 + r3*scale + disp] <- r1  (low `size` bytes)
  kStoreI,   // [seg: r2 + r3*scale + disp] <- imm
  kLea,      // r1 <- r2 + r3*scale + disp

  // Stack.
  kPushR,    // push r1
  kPushI,    // push imm
  kPopR,     // pop r1
  kPushSeg,  // push segment register (r1 = SegReg)
  kPopSeg,   // pop into segment register (r1 = SegReg) — privilege-checked
  kMovSegR,  // seg(r1) <- r2                        — privilege-checked
  kMovRSeg,  // r1 <- seg(r2) selector value

  // ALU (RR: r1 op= r2; RI: r1 op= imm). Flags: ZF, SF, CF, OF.
  kAddRR, kAddRI,
  kSubRR, kSubRI,
  kAndRR, kAndRI,
  kOrRR, kOrRI,
  kXorRR, kXorRI,
  kShlRI, kShrRI, kSarRI,
  kImulRR, kImulRI,
  kUdivRR,   // r1 <- r1 / r2 (unsigned); #DE on zero divisor
  kCmpRR, kCmpRI,
  kTestRR, kTestRI,
  kNegR, kNotR, kIncR, kDecR,

  // Control transfer. Targets are absolute offsets within CS (in imm).
  kJmp,
  kJe, kJne, kJb, kJae, kJbe, kJa, kJl, kJge, kJle, kJg, kJs, kJns,
  kCall,     // near call, target in imm
  kCallR,    // near indirect call through r1
  kRet,      // near return
  kRetN,     // near return, pop imm extra bytes
  kJmpR,     // near indirect jump through r1

  // Far control transfer (the heart of Palladium's protected calls).
  kLcall,    // through the call gate named by selector `imm`
  kLret,     // far return: pops EIP, CS [, ESP, SS on privilege change]
  kInt,      // software interrupt, vector in imm
  kIret,     // interrupt return

  kCount,
};

// Fixed-size instruction encoding (16 bytes in simulated memory):
//   [0..1]  opcode      [2] seg override  [3] r1  [4] r2 (base)  [5] r3 (index)
//   [6]     scale (0 = no index; else 1/2/4/8)    [7] size (mem op width 1/2/4)
//   [8..11] imm (i32)   [12..15] disp (i32)
inline constexpr u32 kInsnSize = 16;

struct Insn {
  Opcode opcode = Opcode::kNop;
  SegOverride seg = SegOverride::kNone;
  u8 r1 = 0;
  u8 r2 = 0;
  u8 r3 = 0;
  u8 scale = 0;
  u8 size = 4;
  i32 imm = 0;
  i32 disp = 0;

  void EncodeTo(u8 out[kInsnSize]) const;
  static std::optional<Insn> Decode(const u8 in[kInsnSize]);
};

// Every opcode, in enum order. The execution engine expands this once into
// the per-opcode handler table and once into the interpreter switch, so both
// dispatch paths share a single semantic implementation per opcode
// (src/hw/cpu.cc). Order is checked against the enum by a static_assert next
// to the table; adding an opcode means adding it to the enum AND here.
#define PALLADIUM_FOR_EACH_OPCODE(X)                                          \
  X(kNop) X(kHlt)                                                             \
  X(kMovRR) X(kMovRI) X(kLoad) X(kStore) X(kStoreI) X(kLea)                   \
  X(kPushR) X(kPushI) X(kPopR) X(kPushSeg) X(kPopSeg) X(kMovSegR) X(kMovRSeg) \
  X(kAddRR) X(kAddRI) X(kSubRR) X(kSubRI) X(kAndRR) X(kAndRI)                 \
  X(kOrRR) X(kOrRI) X(kXorRR) X(kXorRI) X(kShlRI) X(kShrRI) X(kSarRI)         \
  X(kImulRR) X(kImulRI) X(kUdivRR) X(kCmpRR) X(kCmpRI) X(kTestRR) X(kTestRI)  \
  X(kNegR) X(kNotR) X(kIncR) X(kDecR)                                         \
  X(kJmp) X(kJe) X(kJne) X(kJb) X(kJae) X(kJbe) X(kJa) X(kJl) X(kJge)         \
  X(kJle) X(kJg) X(kJs) X(kJns)                                               \
  X(kCall) X(kCallR) X(kRet) X(kRetN) X(kJmpR)                                \
  X(kLcall) X(kLret) X(kInt) X(kIret)

inline constexpr u16 kNumOpcodes = static_cast<u16>(Opcode::kCount);

const char* OpcodeName(Opcode op);
const char* RegName(Reg r);
const char* SegRegName(SegReg s);

// True for opcodes whose only memory traffic is the instruction fetch.
bool IsBranch(Opcode op);

}  // namespace palladium

#endif  // SRC_ISA_INSN_H_
