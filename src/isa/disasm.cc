#include "src/isa/disasm.h"

#include <cstdio>
#include <sstream>

namespace palladium {

namespace {

std::string MemOperand(const Insn& in) {
  std::ostringstream os;
  switch (in.seg) {
    case SegOverride::kCs: os << "%cs:"; break;
    case SegOverride::kSs: os << "%ss:"; break;
    case SegOverride::kDs: os << "%ds:"; break;
    case SegOverride::kEs: os << "%es:"; break;
    case SegOverride::kNone: break;
  }
  if (in.r2 == kNoBaseReg) {
    // Absolute addressing: just the displacement (optionally indexed).
    os << in.disp;
    if (in.scale != 0) {
      os << "(" << RegName(static_cast<Reg>(in.r3)) << "," << static_cast<int>(in.scale)
         << ")";
    }
    return os.str();
  }
  if (in.disp != 0) os << in.disp;
  os << "(" << RegName(static_cast<Reg>(in.r2));
  if (in.scale != 0) {
    os << "," << RegName(static_cast<Reg>(in.r3)) << "," << static_cast<int>(in.scale);
  }
  os << ")";
  return os.str();
}

std::string Hex(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

// Mnemonic in the assembler's *input* syntax: RI forms share the RR
// mnemonic (the `$imm` operand disambiguates), `retn` is written `ret $n`,
// and pushes of immediates are plain `push`.
const char* SyntaxName(Opcode op) {
  switch (op) {
    case Opcode::kMovRI: return "mov";
    case Opcode::kAddRI: return "add";
    case Opcode::kSubRI: return "sub";
    case Opcode::kAndRI: return "and";
    case Opcode::kOrRI: return "or";
    case Opcode::kXorRI: return "xor";
    case Opcode::kImulRI: return "imul";
    case Opcode::kCmpRI: return "cmp";
    case Opcode::kTestRI: return "test";
    case Opcode::kPushI: return "push";
    case Opcode::kRetN: return "ret";
    default: return OpcodeName(op);
  }
}

std::string Disassemble(const Insn& in) {
  std::ostringstream os;
  const char* name = SyntaxName(in.opcode);
  auto r1 = [&] { return RegName(static_cast<Reg>(in.r1)); };
  auto r2 = [&] { return RegName(static_cast<Reg>(in.r2)); };
  auto sz = [&]() -> std::string {
    return in.size == 4 ? "" : (in.size == 2 ? "16" : "8");
  };
  switch (in.opcode) {
    case Opcode::kNop:
    case Opcode::kHlt:
    case Opcode::kRet:
    case Opcode::kIret:
      os << name;
      break;
    case Opcode::kLret:
      os << name;
      if (in.imm != 0) os << " $" << Hex(static_cast<u32>(in.imm));
      break;
    case Opcode::kMovRR:
      os << name << " " << r2() << ", " << r1();
      break;
    case Opcode::kMovRI:
      os << name << " $" << Hex(static_cast<u32>(in.imm)) << ", " << r1();
      break;
    case Opcode::kLoad:
      os << "ld" << sz() << " " << MemOperand(in) << ", " << r1();
      break;
    case Opcode::kStore:
      os << "st" << sz() << " " << r1() << ", " << MemOperand(in);
      break;
    case Opcode::kStoreI:
      os << "sti" << sz() << " $" << Hex(static_cast<u32>(in.imm)) << ", " << MemOperand(in);
      break;
    case Opcode::kLea:
      os << name << " " << MemOperand(in) << ", " << r1();
      break;
    case Opcode::kPushR:
    case Opcode::kPopR:
    case Opcode::kNegR:
    case Opcode::kNotR:
    case Opcode::kIncR:
    case Opcode::kDecR:
      os << name << " " << r1();
      break;
    case Opcode::kCallR:
      os << "call *" << r1();
      break;
    case Opcode::kJmpR:
      os << "jmp *" << r1();
      break;
    case Opcode::kPushSeg:
      os << "push " << SegRegName(static_cast<SegReg>(in.r1));
      break;
    case Opcode::kPopSeg:
      os << "pop " << SegRegName(static_cast<SegReg>(in.r1));
      break;
    case Opcode::kMovSegR:
      os << "mov " << r2() << ", " << SegRegName(static_cast<SegReg>(in.r1));
      break;
    case Opcode::kMovRSeg:
      os << "mov " << SegRegName(static_cast<SegReg>(in.r2)) << ", " << r1();
      break;
    case Opcode::kPushI:
    case Opcode::kInt:
    case Opcode::kRetN:
      os << name << " $" << Hex(static_cast<u32>(in.imm));
      break;
    case Opcode::kAddRR:
    case Opcode::kSubRR:
    case Opcode::kAndRR:
    case Opcode::kOrRR:
    case Opcode::kXorRR:
    case Opcode::kImulRR:
    case Opcode::kUdivRR:
    case Opcode::kCmpRR:
    case Opcode::kTestRR:
      os << name << " " << r2() << ", " << r1();
      break;
    case Opcode::kAddRI:
    case Opcode::kSubRI:
    case Opcode::kAndRI:
    case Opcode::kOrRI:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kSarRI:
    case Opcode::kImulRI:
    case Opcode::kCmpRI:
    case Opcode::kTestRI:
      os << name << " $" << Hex(static_cast<u32>(in.imm)) << ", " << r1();
      break;
    case Opcode::kJmp:
    case Opcode::kJe: case Opcode::kJne: case Opcode::kJb: case Opcode::kJae:
    case Opcode::kJbe: case Opcode::kJa: case Opcode::kJl: case Opcode::kJge:
    case Opcode::kJle: case Opcode::kJg: case Opcode::kJs: case Opcode::kJns:
    case Opcode::kCall:
      os << name << " " << Hex(static_cast<u32>(in.imm));
      break;
    case Opcode::kLcall:
      os << name << " $" << Hex(static_cast<u32>(in.imm));
      break;
    case Opcode::kCount:
      os << ".bad";
      break;
  }
  return os.str();
}

std::string DisassembleRange(const u8* bytes, u32 len, u32 base_addr) {
  std::ostringstream os;
  for (u32 off = 0; off + kInsnSize <= len; off += kInsnSize) {
    os << Hex(base_addr + off) << ":  ";
    auto insn = Insn::Decode(bytes + off);
    if (!insn) {
      os << ".bad\n";
      break;
    }
    os << Disassemble(*insn) << "\n";
  }
  return os.str();
}

}  // namespace palladium
