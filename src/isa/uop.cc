// Lowering from decoded basic-block runs to the micro-op IR (see uop.h for
// the tier's contract). The pass is purely syntactic: it folds
// add/sub-immediate chains, assigns each memory uop a pin slot, computes the
// prefix sums the executor needs to reconstruct exact eip/cycles/instruction
// counts at any early exit, and runs the backward flags-liveness scan that
// decides which ALU uops must record their operands.
#include "src/isa/uop.h"

#include "src/isa/decode_cache.h"

namespace palladium {

namespace {

bool WritesFlags(UopKind k) {
  switch (k) {
    case UopKind::kAdd:
    case UopKind::kSub:
    case UopKind::kCmp:
    case UopKind::kAnd:
    case UopKind::kTest:
    case UopKind::kOr:
    case UopKind::kXor:
    case UopKind::kShl:
    case UopKind::kShr:
    case UopKind::kSar:
    case UopKind::kImul:
    case UopKind::kNeg:
    case UopKind::kInc:
    case UopKind::kDec:
    case UopKind::kFold:
      return true;
    default:
      return false;
  }
}

// Uops at which the trace can exit with flags observable: a fault hands the
// current EFLAGS to the handler, so the latest flag write before any of
// these must have been recorded.
bool IsFaultCapable(UopKind k) {
  return k == UopKind::kLoad || k == UopKind::kStore || k == UopKind::kStoreI ||
         k == UopKind::kExec;
}

// Register-only ALU ops with a direct uop kind; b_imm tells the executor
// where operand b lives.
bool AluKindFor(Opcode op, UopKind* kind, bool* b_imm) {
  switch (op) {
    case Opcode::kAddRR: *kind = UopKind::kAdd; *b_imm = false; return true;
    case Opcode::kAddRI: *kind = UopKind::kAdd; *b_imm = true; return true;
    case Opcode::kSubRR: *kind = UopKind::kSub; *b_imm = false; return true;
    case Opcode::kSubRI: *kind = UopKind::kSub; *b_imm = true; return true;
    case Opcode::kCmpRR: *kind = UopKind::kCmp; *b_imm = false; return true;
    case Opcode::kCmpRI: *kind = UopKind::kCmp; *b_imm = true; return true;
    case Opcode::kAndRR: *kind = UopKind::kAnd; *b_imm = false; return true;
    case Opcode::kAndRI: *kind = UopKind::kAnd; *b_imm = true; return true;
    case Opcode::kTestRR: *kind = UopKind::kTest; *b_imm = false; return true;
    case Opcode::kTestRI: *kind = UopKind::kTest; *b_imm = true; return true;
    case Opcode::kOrRR: *kind = UopKind::kOr; *b_imm = false; return true;
    case Opcode::kOrRI: *kind = UopKind::kOr; *b_imm = true; return true;
    case Opcode::kXorRR: *kind = UopKind::kXor; *b_imm = false; return true;
    case Opcode::kXorRI: *kind = UopKind::kXor; *b_imm = true; return true;
    case Opcode::kShlRI: *kind = UopKind::kShl; *b_imm = true; return true;
    case Opcode::kShrRI: *kind = UopKind::kShr; *b_imm = true; return true;
    case Opcode::kSarRI: *kind = UopKind::kSar; *b_imm = true; return true;
    case Opcode::kImulRR: *kind = UopKind::kImul; *b_imm = false; return true;
    case Opcode::kImulRI: *kind = UopKind::kImul; *b_imm = true; return true;
    case Opcode::kNegR: *kind = UopKind::kNeg; *b_imm = false; return true;
    case Opcode::kNotR: *kind = UopKind::kNot; *b_imm = false; return true;
    case Opcode::kIncR: *kind = UopKind::kInc; *b_imm = false; return true;
    case Opcode::kDecR: *kind = UopKind::kDec; *b_imm = false; return true;
    default:
      return false;
  }
}

bool IsFoldable(Opcode op) {
  return op == Opcode::kAddRI || op == Opcode::kSubRI;
}

}  // namespace

std::unique_ptr<Trace> LowerRun(const DecodedInsn* slots, u32 entry_slot, u32 run_len) {
  if (run_len < 2) return nullptr;
  auto t = std::make_unique<Trace>();
  t->entry_slot = static_cast<u16>(entry_slot);
  t->run_len = static_cast<u8>(run_len);

  u32 insn_before = 0;
  u32 cost_before = 0;
  u32 num_pins = 0;
  u32 s = entry_slot;
  const u32 body_end = entry_slot + run_len - 1;  // final slot excluded
  while (s < body_end) {
    const DecodedInsn& d = slots[s];
    // Interior run members are decoded non-terminators by construction of
    // run_len; bail rather than trust a violated invariant.
    if (d.state != DecodedInsn::State::kDecoded) return nullptr;
    const Insn& in = d.insn;
    Uop u;
    u.slot = static_cast<u16>(s);
    u.insn_before = static_cast<u16>(insn_before);
    u.cost_before = cost_before;
    u.cost = d.cost;

    UopKind alu_kind;
    bool alu_b_imm;
    if (IsFoldable(in.opcode)) {
      // Constant folding: a run of add/sub-immediate on one register
      // collapses into a single uop. The recorded flags must be those of the
      // chain's *last* op applied to the true intermediate value, so keep
      // the delta accumulated before it and its own immediate.
      u32 total = 0;
      u32 pre_last = 0;
      u32 chain_cost = 0;
      u32 len = 0;
      u32 j = s;
      while (j < body_end && slots[j].state == DecodedInsn::State::kDecoded &&
             IsFoldable(slots[j].insn.opcode) && slots[j].insn.r1 == in.r1) {
        pre_last = total;
        const u32 delta = static_cast<u32>(slots[j].insn.imm);
        total += slots[j].insn.opcode == Opcode::kAddRI ? delta : 0u - delta;
        chain_cost += slots[j].cost;
        ++len;
        ++j;
      }
      if (len >= 2) {
        const Insn& last = slots[j - 1].insn;
        u.kind = UopKind::kFold;
        u.r1 = in.r1;
        u.imm = static_cast<i32>(total);
        u.imm2 = static_cast<i32>(pre_last);
        u.disp = last.imm;
        u.fold_last_is_sub = last.opcode == Opcode::kSubRI;
        u.span = static_cast<u8>(len);
        u.cost = chain_cost;
      } else {
        u.kind = in.opcode == Opcode::kAddRI ? UopKind::kAdd : UopKind::kSub;
        u.b_imm = true;
        u.r1 = in.r1;
        u.imm = in.imm;
      }
    } else if (AluKindFor(in.opcode, &alu_kind, &alu_b_imm)) {
      u.kind = alu_kind;
      u.b_imm = alu_b_imm;
      u.r1 = in.r1;
      u.r2 = in.r2;
      u.imm = in.imm;
    } else {
      switch (in.opcode) {
        case Opcode::kNop:
          u.kind = UopKind::kNop;
          break;
        case Opcode::kMovRR:
          u.kind = UopKind::kMovRR;
          u.r1 = in.r1;
          u.r2 = in.r2;
          break;
        case Opcode::kMovRI:
          u.kind = UopKind::kMovRI;
          u.r1 = in.r1;
          u.imm = in.imm;
          break;
        case Opcode::kLea:
          u.kind = UopKind::kLea;
          u.r1 = in.r1;
          u.r2 = in.r2;
          u.r3 = in.r3;
          u.scale = in.scale;
          u.disp = in.disp;
          break;
        case Opcode::kLoad:
        case Opcode::kStore:
        case Opcode::kStoreI:
          u.kind = in.opcode == Opcode::kLoad    ? UopKind::kLoad
                   : in.opcode == Opcode::kStore ? UopKind::kStore
                                                 : UopKind::kStoreI;
          u.r1 = in.r1;
          u.r2 = in.r2;
          u.r3 = in.r3;
          u.scale = in.scale;
          u.size = in.size;
          u.seg_idx = d.seg_idx;
          u.is_stack = d.is_stack;
          u.imm = in.imm;
          u.disp = in.disp;
          u.pin = static_cast<u8>(num_pins++);
          break;
        // Push/pop are fixed-shape stack accesses (Cpu::Push32/Pop32): a
        // 4-byte store at SS:ESP-4 / load at SS:ESP, with the ESP move
        // committed only on success. Lowering them to pinned memory uops
        // (instead of kExec) puts the hottest stack page behind a pin.
        case Opcode::kPushR:
        case Opcode::kPushI:
          u.kind = in.opcode == Opcode::kPushR ? UopKind::kStore : UopKind::kStoreI;
          u.r1 = in.r1;
          u.r2 = static_cast<u8>(Reg::kEsp);
          u.scale = 0;
          u.size = 4;
          u.seg_idx = 1;  // SS, unconditionally (no override applies)
          u.is_stack = true;
          u.imm = in.imm;
          u.disp = -4;
          u.esp_post = -4;
          u.pin = static_cast<u8>(num_pins++);
          break;
        case Opcode::kPopR:
          u.kind = UopKind::kLoad;
          u.r1 = in.r1;
          u.r2 = static_cast<u8>(Reg::kEsp);
          u.scale = 0;
          u.size = 4;
          u.seg_idx = 1;
          u.is_stack = true;
          u.disp = 0;
          u.esp_post = 4;
          u.pin = static_cast<u8>(num_pins++);
          break;
        default:
          // Everything else (segment moves, udiv) runs through the shared
          // per-opcode execution core. None of these write flags.
          u.kind = UopKind::kExec;
          break;
      }
    }

    t->uops.push_back(u);
    insn_before += u.span;
    cost_before += u.cost;
    s += u.span;
  }

  t->pins.resize(num_pins);
  t->body_insns = insn_before;
  t->body_cost = cost_before;

  // A conditional-branch terminator lowers into the trace as well (body_insns
  // and body_cost stay body-only; the kJcc uop does its own accounting). This
  // is what lets a hot loop whose backward edge targets this run's entry
  // iterate entirely inside the uop executor.
  const DecodedInsn& term = slots[body_end];
  if (term.state == DecodedInsn::State::kDecoded && IsJcc(term.insn.opcode)) {
    const u8 cond = static_cast<u8>(static_cast<int>(term.insn.opcode) -
                                    static_cast<int>(Opcode::kJe));
    if (!t->uops.empty() && t->uops.back().kind == UopKind::kCmp) {
      // The body's last instruction is the compare feeding the terminator:
      // fuse them. The merged uop keeps the compare's operands and prefix
      // sums, retires both instructions, and evaluates the condition without
      // going through the lazy-flag cache.
      Uop& u = t->uops.back();
      u.kind = UopKind::kCmpJcc;
      u.target = nullptr;
      u.imm2 = u.imm;  // the compare's immediate; `imm` becomes the target
      u.imm = term.insn.imm;
      u.r3 = cond;
      u.cost2 = term.cost;
      u.span = 2;
      // Un-count the compare from the body: the fused uop accounts for both
      // instructions itself, like the standalone terminator does.
      t->body_insns = u.insn_before;
      t->body_cost = u.cost_before;
    } else {
      Uop u;
      u.kind = UopKind::kJcc;
      u.r1 = cond;
      u.imm = term.insn.imm;
      u.slot = static_cast<u16>(body_end);
      u.insn_before = static_cast<u16>(insn_before);
      u.cost_before = cost_before;
      u.cost = term.cost;
      t->uops.push_back(u);
    }
  }

  // Backward flags liveness. At the body's end flags are observable (the
  // run's final slot — often a Jcc — and the retire boundary both read
  // them); a fault-capable uop makes the flags before it observable (the
  // fault handler sees EFLAGS); INC/DEC propagate observability to the
  // preceding producer only when they themselves record, because they
  // capture its CF at record time. A producer whose result is dead records
  // nothing — static dead-flag elimination.
  bool observable = true;
  for (size_t i = t->uops.size(); i-- > 0;) {
    Uop& u = t->uops[i];
    if (u.kind == UopKind::kCmpJcc) {
      // Always records (every exit materializes the compare's flags) and
      // fully overwrites the lazy cache, so earlier flag writes are dead.
      u.record = true;
      observable = false;
    } else if (WritesFlags(u.kind)) {
      u.record = observable;
      observable =
          (u.kind == UopKind::kInc || u.kind == UopKind::kDec) && u.record;
    } else if (IsFaultCapable(u.kind)) {
      observable = true;
    }
  }

  return t;
}

}  // namespace palladium
