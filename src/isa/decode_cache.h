// Decoded-instruction cache: decode once per physical page, execute many
// times. This is the standard ISS fast path (libriscv's decoder cache,
// riscv-vp++'s DBB cache): instead of re-walking the page tables for all 16
// instruction bytes and re-running Insn::Decode on every step, the CPU
// translates CS:EIP once per page and indexes into a pre-decoded image of
// that *physical* page.
//
// Keying by physical page means entries stay valid across CR3 switches (all
// processes mapping the same text frame share one decoded image) and that
// correctness reduces to one rule: whenever the bytes of a physical page
// change, its decoded image dies. The cache learns about byte changes by
// registering as the PhysicalMemory write observer, which covers simulated
// stores (self-modifying code), kernel copy-in, loaders, and frame zeroing
// on reallocation. Linear-mapping changes (PTE edits, CR3 loads) are the
// TLB's problem; the CPU revalidates its fetch TLB against Tlb::change_count.
#ifndef SRC_ISA_DECODE_CACHE_H_
#define SRC_ISA_DECODE_CACHE_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/physical_memory.h"
#include "src/hw/types.h"
#include "src/isa/insn.h"

namespace palladium {

// One fetch-aligned 16-byte slot of a decoded page.
struct DecodedInsn {
  enum class State : u8 {
    kDecoded,      // insn holds the decoded instruction
    kUndecodable,  // bytes do not decode; executing here is #UD
    kBusError,     // slot extends past physical memory; fault_offset is the
                   // offset of the first out-of-range byte within the slot
  };
  State state = State::kUndecodable;
  u8 fault_offset = 0;
  Insn insn;
};

class DecodeCache : public PhysicalMemory::WriteObserver {
 public:
  static constexpr u32 kSlotsPerPage = kPageSize / kInsnSize;
  // Above this many cached pages the whole cache is retired; a runaway
  // working set (pathological for a 32-bit guest) cannot exhaust host memory.
  static constexpr u32 kMaxPages = 1024;

  struct Page {
    std::array<DecodedInsn, kSlotsPerPage> slots;
  };

  struct Stats {
    u64 builds = 0;              // pages decoded
    u64 write_invalidations = 0; // pages killed by a write to their bytes
    u64 evictions = 0;           // pages dropped by the capacity cap
  };

  // Returns the decoded image of the page at physical `frame` (page-aligned),
  // building it on first use. The pointer stays valid until the *next* call
  // to GetOrBuild — invalidated pages are retired, not freed, so an
  // instruction that modifies its own page keeps a live decode of itself
  // until the CPU fetches again.
  const Page* GetOrBuild(const PhysicalMemory& pm, u32 frame);

  // PhysicalMemory::WriteObserver: kills the decoded image of every page the
  // write touches. O(1) per untracked page (a bitmap probe); inline so the
  // CPU's store fast path pays only the probe, not a call, per store.
  void OnPhysicalWrite(u32 addr, u32 len) override {
    if (len == 0) return;
    const u32 first = PageNumber(addr);
    const u32 last = PageNumber(addr + len - 1);
    for (u32 pfn = first; pfn <= last; ++pfn) {
      if (pfn < has_code_.size() && has_code_[pfn] != 0) Retire(pfn);
    }
  }

  // Explicit eviction for a frame being repurposed (e.g. freed back to the
  // kernel's frame allocator).
  void EvictFrame(u32 frame);

  // Bumped whenever any cached page dies; consumers holding a Page* compare
  // generations before dereferencing.
  u64 generation() const { return generation_; }

  const Stats& stats() const { return stats_; }

 private:
  void Retire(u32 pfn);

  std::unordered_map<u32, std::unique_ptr<Page>> pages_;  // keyed by pfn
  std::vector<std::unique_ptr<Page>> retired_;  // freed on next GetOrBuild
  std::vector<u8> has_code_;                    // pfn -> has a live entry
  u64 generation_ = 0;
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_ISA_DECODE_CACHE_H_
