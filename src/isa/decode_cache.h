// Decoded-instruction cache: decode once per physical page, execute many
// times. This is the standard ISS fast path (libriscv's decoder cache,
// riscv-vp++'s DBB cache): instead of re-walking the page tables for all 16
// instruction bytes and re-running Insn::Decode on every step, the CPU
// translates CS:EIP once per page and indexes into a pre-decoded image of
// that *physical* page.
//
// Since the superblock engine (PR 5) a decoded page is more than an array of
// instructions: each slot carries the precomputed execution info the
// threaded dispatch loop (Cpu::RunBlock) needs — the dispatch index, the
// resolved memory segment, the base retire cost from the CPU's cycle model —
// and the page's slots are linked into *basic-block runs*: `run_len` is the
// number of straight-line slots executable from here before the engine must
// re-decide (a control transfer, a non-decodable slot, the page end, or the
// kMaxBlockInsns cap), and `run_cost_max` is a pre-summed upper bound on the
// cycles those slots can charge, which lets the engine prove an entire block
// retires below the cycle-limit/IRQ frontier and skip the per-retire
// boundary checks inside it.
//
// Keying by physical page means entries stay valid across CR3 switches (all
// processes mapping the same text frame share one decoded image) and that
// correctness reduces to one rule: whenever the bytes of a physical page
// change, its decoded image dies. The cache learns about byte changes by
// registering as the PhysicalMemory write observer, which covers simulated
// stores (self-modifying code), kernel copy-in, loaders, and frame zeroing
// on reallocation. Linear-mapping changes (PTE edits, CR3 loads) are the
// TLB's problem; the CPU revalidates its fetch TLB against Tlb::change_count.
#ifndef SRC_ISA_DECODE_CACHE_H_
#define SRC_ISA_DECODE_CACHE_H_

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/cycle_model.h"
#include "src/hw/physical_memory.h"
#include "src/hw/types.h"
#include "src/isa/insn.h"
#include "src/isa/uop.h"

namespace palladium {

// Dispatch indices for the execution engine's handler table: one per opcode
// (the opcode's own value), plus sentinels for slots that cannot execute.
// Opcode::kCount doubles as the undecodable sentinel — Insn::Decode never
// yields it, so the index is free.
inline constexpr u16 kDispatchUndecodable = kNumOpcodes;
inline constexpr u16 kDispatchBusError = kNumOpcodes + 1;
inline constexpr u16 kNumDispatch = kNumOpcodes + 2;

// Instruction classification shared by the decoder-side pre-summer and the
// execution engine. Constexpr so the per-opcode handler templates can
// specialize on it.
constexpr bool IsJcc(Opcode op) {
  return op >= Opcode::kJe && op <= Opcode::kJns;
}
// Near transfers whose target stays in the current code segment; the block
// engine may chain directly to a same-page target.
constexpr bool IsNearJump(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kJmpR || op == Opcode::kCall ||
         op == Opcode::kCallR || op == Opcode::kRet || op == Opcode::kRetN;
}
// Far transfers can change CS/CPL/EFLAGS.IF; the block engine always yields
// to the outer dispatch loop after one.
constexpr bool IsFarTransfer(Opcode op) {
  return op == Opcode::kLcall || op == Opcode::kLret || op == Opcode::kInt ||
         op == Opcode::kIret;
}
// Any instruction after which straight-line execution cannot blindly
// continue: control transfers and HLT end a basic-block run.
constexpr bool IsBlockTerminator(Opcode op) {
  return IsJcc(op) || IsNearJump(op) || IsFarTransfer(op) || op == Opcode::kHlt;
}
// Sequential (non-terminator) instructions that touch simulated memory. A
// memory access can retire code bytes — a store into a decoded page, or even
// a load whose page-table walk sets A/D bits inside one — so the block
// engine re-checks the cache generation after each of these and the
// pre-summer charges them the TLB-miss bound.
constexpr bool TouchesMemSeq(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore || op == Opcode::kStoreI ||
         op == Opcode::kPushR || op == Opcode::kPushI || op == Opcode::kPopR ||
         op == Opcode::kPushSeg || op == Opcode::kPopSeg;
}

// One fetch-aligned 16-byte slot of a decoded page, annotated with the
// precomputed execution info described above.
struct DecodedInsn {
  enum class State : u8 {
    kDecoded,      // insn holds the decoded instruction
    kUndecodable,  // bytes do not decode; executing here is #UD
    kBusError,     // slot extends past physical memory; fault_offset is the
                   // offset of the first out-of-range byte within the slot
  };
  State state = State::kUndecodable;
  u8 fault_offset = 0;
  // --- Precomputed operand info (valid when state == kDecoded) --------------
  u8 seg_idx = 2;       // resolved data-segment register index (override rule)
  bool is_stack = false;  // resolved segment is SS (stack-fault semantics)
  // --- Threaded dispatch / superblock metadata ------------------------------
  u16 dispatch = kDispatchUndecodable;  // handler index for Cpu::RunBlock
  u8 run_len = 1;       // straight-line slots executable from here (>= 1)
  u32 cost = 1;         // base retire cost from the CPU's cost table
  u32 run_cost_max = 0; // pre-summed cycle upper bound for the whole run
  // --- Hot-trace tier (mutated by the CPU, reset with the page) -------------
  u16 hot = 0;          // run-head executions seen; promotion counter
  u16 trace = kTraceNone;  // index into Page::traces, or a kTrace* sentinel
  Insn insn;
};

// Fills the precomputed per-instruction execution info of a *decoded* slot
// (dispatch index, resolved segment, retire cost). Shared by the page
// builder and the CPU's slow fetch path, so the scratch instruction a
// non-aligned fetch decodes carries exactly the same annotations as a
// cached slot.
void FillExecInfo(DecodedInsn& d, const CycleModel::CostTable& costs);

class DecodeCache : public PhysicalMemory::WriteObserver {
 public:
  static constexpr u32 kSlotsPerPage = kPageSize / kInsnSize;
  // Above this many cached pages the whole cache is retired; a runaway
  // working set (pathological for a 32-bit guest) cannot exhaust host memory.
  static constexpr u32 kMaxPages = 1024;
  // Cap on instructions per basic-block run. Bounds the worst-case latency
  // between two boundary checks in the block engine and keeps the pre-summed
  // cost a tight bound.
  static constexpr u32 kMaxBlockInsns = 64;

  struct Page {
    std::array<DecodedInsn, kSlotsPerPage> slots;
    // Lowered hot-run traces, indexed by DecodedInsn::trace of the run's
    // head slot. Owned by the page: every invalidation source (write
    // observer, frame eviction, capacity retirement, cost-model rebuild)
    // demotes the page's traces by killing the page itself. Like the page,
    // a trace stays allocated until the next GetOrBuild, so a store that
    // retires the currently-executing trace cannot free it mid-run.
    std::vector<std::unique_ptr<Trace>> traces;
  };

  struct Stats {
    u64 builds = 0;              // pages decoded
    u64 write_invalidations = 0; // pages killed by a write to their bytes
    u64 evictions = 0;           // pages dropped by the capacity cap
  };

  // The cost table used to annotate decoded slots (the CPU's, rebuilt on
  // set_cycle_model). Must be set before GetOrBuild; the pointee must
  // outlive the cache's pages — call InvalidateAll when it is rebuilt.
  void set_cost_table(const CycleModel::CostTable* costs) { costs_ = costs; }

  // Returns the decoded image of the page at physical `frame` (page-aligned),
  // building it on first use. The pointer stays valid until the *next* call
  // to GetOrBuild — invalidated pages are retired, not freed, so an
  // instruction that modifies its own page keeps a live decode of itself
  // until the CPU fetches again. Non-const: the CPU's trace tier bumps
  // per-slot hotness counters and attaches lowered traces in place.
  Page* GetOrBuild(const PhysicalMemory& pm, u32 frame);

  // PhysicalMemory::WriteObserver: kills the decoded image of every page the
  // write touches. O(1) per untracked page (a bitmap probe); inline so the
  // CPU's store fast path pays only the probe, not a call, per store.
  void OnPhysicalWrite(u32 addr, u32 len) override {
    if (len == 0) return;
    const u32 first = PageNumber(addr);
    const u32 last = PageNumber(addr + len - 1);
    for (u32 pfn = first; pfn <= last; ++pfn) {
      if (pfn < has_code_.size() && has_code_[pfn] != 0) Retire(pfn);
    }
  }

  // Explicit eviction for a frame being repurposed (e.g. freed back to the
  // kernel's frame allocator).
  void EvictFrame(u32 frame);

  // Retires every cached page (cost-model change: the per-slot cost
  // annotations are stale).
  void InvalidateAll();

  // Bumped whenever any cached page dies; consumers holding a Page* compare
  // generations before dereferencing. Atomic for the threaded SMP mode:
  // the owning vCPU's thread is the only *writer* (bumps ride its own
  // OnPhysicalWrite, or the quiesced barrier window for cross-CPU replays
  // and kernel evictions), but sibling threads may read the counter through
  // staged shootdown checks. Release on the bump / acquire on the read
  // orders the retire itself before any observed generation change.
  u64 generation() const { return generation_.load(std::memory_order_acquire); }

  // Direct view of the has-code bitmap for the trace executor's store fast
  // path: a zero byte proves OnPhysicalWrite would be a no-op for that page,
  // so the post-store generation re-check can be skipped entirely. The
  // pointer is stable across a trace body — only Populate (instruction
  // fetch, never inside a body) grows the vector.
  const u8* has_code_data() const { return has_code_.data(); }
  u32 has_code_pages() const { return static_cast<u32>(has_code_.size()); }

  const Stats& stats() const { return stats_; }

 private:
  void Retire(u32 pfn);

  const CycleModel::CostTable* costs_ = nullptr;
  std::unordered_map<u32, std::unique_ptr<Page>> pages_;  // keyed by pfn
  std::vector<std::unique_ptr<Page>> retired_;  // freed on next GetOrBuild
  // Plain bytes on purpose: probed only by the owning vCPU's thread or
  // inside the quiesced barrier window (see WriteLane in physical_memory.h).
  std::vector<u8> has_code_;                    // pfn -> has a live entry
  std::atomic<u64> generation_{0};
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_ISA_DECODE_CACHE_H_
