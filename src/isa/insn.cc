#include "src/isa/insn.h"

#include <cstring>

namespace palladium {

void Insn::EncodeTo(u8 out[kInsnSize]) const {
  u16 op = static_cast<u16>(opcode);
  std::memcpy(out + 0, &op, 2);
  out[2] = static_cast<u8>(seg);
  out[3] = r1;
  out[4] = r2;
  out[5] = r3;
  out[6] = scale;
  out[7] = size;
  std::memcpy(out + 8, &imm, 4);
  std::memcpy(out + 12, &disp, 4);
}

std::optional<Insn> Insn::Decode(const u8 in[kInsnSize]) {
  u16 op = 0;
  std::memcpy(&op, in + 0, 2);
  if (op >= static_cast<u16>(Opcode::kCount)) return std::nullopt;
  Insn insn;
  insn.opcode = static_cast<Opcode>(op);
  if (in[2] > static_cast<u8>(SegOverride::kEs)) return std::nullopt;
  insn.seg = static_cast<SegOverride>(in[2]);
  insn.r1 = in[3];
  insn.r2 = in[4];
  insn.r3 = in[5];
  insn.scale = in[6];
  insn.size = in[7];
  if (insn.scale != 0 && insn.scale != 1 && insn.scale != 2 && insn.scale != 4 &&
      insn.scale != 8) {
    return std::nullopt;
  }
  if (insn.size != 1 && insn.size != 2 && insn.size != 4) return std::nullopt;
  std::memcpy(&insn.imm, in + 8, 4);
  std::memcpy(&insn.disp, in + 12, 4);
  return insn;
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHlt: return "hlt";
    case Opcode::kMovRR: return "mov";
    case Opcode::kMovRI: return "movi";
    case Opcode::kLoad: return "ld";
    case Opcode::kStore: return "st";
    case Opcode::kStoreI: return "sti";
    case Opcode::kLea: return "lea";
    case Opcode::kPushR: return "push";
    case Opcode::kPushI: return "pushi";
    case Opcode::kPopR: return "pop";
    case Opcode::kPushSeg: return "pushseg";
    case Opcode::kPopSeg: return "popseg";
    case Opcode::kMovSegR: return "movseg";
    case Opcode::kMovRSeg: return "movrseg";
    case Opcode::kAddRR: return "add";
    case Opcode::kAddRI: return "addi";
    case Opcode::kSubRR: return "sub";
    case Opcode::kSubRI: return "subi";
    case Opcode::kAndRR: return "and";
    case Opcode::kAndRI: return "andi";
    case Opcode::kOrRR: return "or";
    case Opcode::kOrRI: return "ori";
    case Opcode::kXorRR: return "xor";
    case Opcode::kXorRI: return "xori";
    case Opcode::kShlRI: return "shl";
    case Opcode::kShrRI: return "shr";
    case Opcode::kSarRI: return "sar";
    case Opcode::kImulRR: return "imul";
    case Opcode::kImulRI: return "imuli";
    case Opcode::kUdivRR: return "udiv";
    case Opcode::kCmpRR: return "cmp";
    case Opcode::kCmpRI: return "cmpi";
    case Opcode::kTestRR: return "test";
    case Opcode::kTestRI: return "testi";
    case Opcode::kNegR: return "neg";
    case Opcode::kNotR: return "not";
    case Opcode::kIncR: return "inc";
    case Opcode::kDecR: return "dec";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJe: return "je";
    case Opcode::kJne: return "jne";
    case Opcode::kJb: return "jb";
    case Opcode::kJae: return "jae";
    case Opcode::kJbe: return "jbe";
    case Opcode::kJa: return "ja";
    case Opcode::kJl: return "jl";
    case Opcode::kJge: return "jge";
    case Opcode::kJle: return "jle";
    case Opcode::kJg: return "jg";
    case Opcode::kJs: return "js";
    case Opcode::kJns: return "jns";
    case Opcode::kCall: return "call";
    case Opcode::kCallR: return "callr";
    case Opcode::kRet: return "ret";
    case Opcode::kRetN: return "retn";
    case Opcode::kJmpR: return "jmpr";
    case Opcode::kLcall: return "lcall";
    case Opcode::kLret: return "lret";
    case Opcode::kInt: return "int";
    case Opcode::kIret: return "iret";
    case Opcode::kCount: break;
  }
  return "???";
}

const char* RegName(Reg r) {
  switch (r) {
    case Reg::kEax: return "%eax";
    case Reg::kEbx: return "%ebx";
    case Reg::kEcx: return "%ecx";
    case Reg::kEdx: return "%edx";
    case Reg::kEsi: return "%esi";
    case Reg::kEdi: return "%edi";
    case Reg::kEbp: return "%ebp";
    case Reg::kEsp: return "%esp";
  }
  return "%???";
}

const char* SegRegName(SegReg s) {
  switch (s) {
    case SegReg::kCs: return "%cs";
    case SegReg::kSs: return "%ss";
    case SegReg::kDs: return "%ds";
    case SegReg::kEs: return "%es";
  }
  return "%??";
}

bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJb:
    case Opcode::kJae:
    case Opcode::kJbe:
    case Opcode::kJa:
    case Opcode::kJl:
    case Opcode::kJge:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJs:
    case Opcode::kJns:
    case Opcode::kJmpR:
      return true;
    default:
      return false;
  }
}

}  // namespace palladium
