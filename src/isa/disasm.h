// Disassembler for the simulated ISA — used by diagnostics, the SFI
// rewriter's verifier, and tests.
#ifndef SRC_ISA_DISASM_H_
#define SRC_ISA_DISASM_H_

#include <string>

#include "src/isa/insn.h"

namespace palladium {

// Renders one instruction in the assembler's input syntax.
std::string Disassemble(const Insn& insn);

// Disassembles `count` instructions from raw bytes; stops early on a
// decode failure (rendered as ".bad").
std::string DisassembleRange(const u8* bytes, u32 len, u32 base_addr);

}  // namespace palladium

#endif  // SRC_ISA_DISASM_H_
