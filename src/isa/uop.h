// Micro-op IR for the hot-trace translation tier (the third execution tier,
// above the superblock engine). When a basic-block run crosses the hotness
// threshold, Cpu::RunBlock lowers the run's straight-line *body* — every slot
// but the last, i.e. exactly the slots whose retire boundaries the pre-summed
// run_cost_max already proves unchecked — into a compact uop vector and
// executes that instead. The run's final slot (terminator or last member)
// still dispatches through the block engine's own handler, so chaining,
// far-transfer and halt semantics stay in one place.
//
// The lowering pass performs the three optimisations of this tier:
//
//  * Lazy flags: ALU uops do not compute EFLAGS. They record the operands of
//    the last flag-producing op in a FlagsCache, and the flags are
//    materialized — with formulas bit-for-bit identical to Cpu::ExecOp's —
//    only when something can observe them: a fault (the handler must see
//    exact EFLAGS), or any trace exit (the terminator may be a Jcc; retire
//    boundaries are architectural). A static liveness pass additionally
//    marks flag writes that are provably overwritten before any observer so
//    they record nothing at all.
//  * Redundant-translation elimination: each memory uop carries a persistent
//    pin of its last translation (host pointer + PTE flags), revalidated by
//    three counter compares instead of the D-TLB probe-and-permission walk.
//    The pin is provably the live D-TLB entry (no TLB change, no fill or
//    eviction since pin time), so cycles and TLB statistics are charged
//    exactly as the oracle's hit path would charge them.
//  * Constant folding: chains of add/sub-immediate on one register collapse
//    into a single uop that retires the whole chain's instructions and
//    cycles at once and records the *last* op's operands for the flags.
//
// Invalidation needs no machinery of its own: traces are owned by the
// decoded page they were lowered from, so every existing invalidation source
// (write observer, frame eviction, capacity retirement, cost-model rebuild)
// kills them with the page, and the block engine's generation re-check after
// every memory-touching uop bounds how long a dead trace can keep running —
// to exactly the one instruction the per-instruction rule allows.
#ifndef SRC_ISA_UOP_H_
#define SRC_ISA_UOP_H_

#include <memory>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

struct DecodedInsn;  // src/isa/decode_cache.h (includes this header)

// EFLAGS bit positions (x86 layout for the flags we model). Defined here —
// next to the lazy-flags machinery that reconstructs them — and re-exported
// through cpu.h's include chain.
inline constexpr u32 kFlagCf = 1u << 0;
inline constexpr u32 kFlagZf = 1u << 6;
inline constexpr u32 kFlagSf = 1u << 7;
inline constexpr u32 kFlagIf = 1u << 9;  // hardware-interrupt enable
inline constexpr u32 kFlagOf = 1u << 11;

// Sentinels for DecodedInsn::trace (a slot's lowered-trace index within its
// page). Values below kTraceUntraceable index Page::traces.
inline constexpr u16 kTraceNone = 0xFFFF;         // not (yet) lowered
inline constexpr u16 kTraceUntraceable = 0xFFFE;  // lowering declined; stay on blocks

// The last flag-producing operation, recorded instead of executed. One entry
// suffices: every producer either overwrites all four flags from (a, b), or
// — INC/DEC, which preserve CF — captures the carry it inherited as `b` at
// record time, so the cache never needs to reach further back than one op.
struct FlagsCache {
  enum class Op : u8 {
    kEager,  // eflags is architecturally current; nothing pending
    kAdd,    // r = a + b
    kSub,    // r = a - b (also CMP)
    kLogic,  // a = result; CF = OF = 0
    kImul,   // a = low-32 result, b = overflow bit (CF = OF = b)
    kNeg,    // r = -a
    kInc,    // r = a + 1, CF preserved in b
    kDec,    // r = a - 1, CF preserved in b
  };
  Op op = Op::kEager;
  u32 a = 0;
  u32 b = 0;
};

// Single-flag reads against the lazy cache, for consumers that need one or
// two bits (INC/DEC capturing CF; the in-trace Jcc terminator evaluating its
// condition) without paying a full materialization. Each case is the
// corresponding MaterializeFlags branch restricted to one flag.
inline bool LazyCf(const FlagsCache& fc, u32 eflags) {
  switch (fc.op) {
    case FlagsCache::Op::kEager:
      return (eflags & kFlagCf) != 0;
    case FlagsCache::Op::kAdd:
      return fc.a + fc.b < fc.a;
    case FlagsCache::Op::kSub:
      return fc.a < fc.b;
    case FlagsCache::Op::kLogic:
      return false;
    case FlagsCache::Op::kImul:
      return fc.b != 0;
    case FlagsCache::Op::kNeg:
      return fc.a != 0;
    case FlagsCache::Op::kInc:
    case FlagsCache::Op::kDec:
      return fc.b != 0;
  }
  return false;
}

inline bool LazyZf(const FlagsCache& fc, u32 eflags) {
  switch (fc.op) {
    case FlagsCache::Op::kEager:
      return (eflags & kFlagZf) != 0;
    case FlagsCache::Op::kAdd:
      return fc.a + fc.b == 0;
    case FlagsCache::Op::kSub:
      return fc.a == fc.b;
    case FlagsCache::Op::kLogic:
    case FlagsCache::Op::kImul:
    case FlagsCache::Op::kNeg:
      return fc.a == 0;
    case FlagsCache::Op::kInc:
      return fc.a + 1 == 0;
    case FlagsCache::Op::kDec:
      return fc.a == 1;
  }
  return false;
}

inline bool LazySf(const FlagsCache& fc, u32 eflags) {
  switch (fc.op) {
    case FlagsCache::Op::kEager:
      return (eflags & kFlagSf) != 0;
    case FlagsCache::Op::kAdd:
      return ((fc.a + fc.b) >> 31) != 0;
    case FlagsCache::Op::kSub:
      return ((fc.a - fc.b) >> 31) != 0;
    case FlagsCache::Op::kLogic:
    case FlagsCache::Op::kImul:
      return (fc.a >> 31) != 0;
    case FlagsCache::Op::kNeg:
      return ((0 - fc.a) >> 31) != 0;
    case FlagsCache::Op::kInc:
      return ((fc.a + 1) >> 31) != 0;
    case FlagsCache::Op::kDec:
      return ((fc.a - 1) >> 31) != 0;
  }
  return false;
}

inline bool LazyOf(const FlagsCache& fc, u32 eflags) {
  switch (fc.op) {
    case FlagsCache::Op::kEager:
      return (eflags & kFlagOf) != 0;
    case FlagsCache::Op::kAdd:
      return ((~(fc.a ^ fc.b)) & (fc.a ^ (fc.a + fc.b)) & 0x80000000u) != 0;
    case FlagsCache::Op::kSub:
      return (((fc.a ^ fc.b) & (fc.a ^ (fc.a - fc.b))) & 0x80000000u) != 0;
    case FlagsCache::Op::kLogic:
      return false;
    case FlagsCache::Op::kImul:
      return fc.b != 0;
    case FlagsCache::Op::kNeg:
      return fc.a == 0x80000000u;
    case FlagsCache::Op::kInc:
      return fc.a == 0x7FFFFFFFu;
    case FlagsCache::Op::kDec:
      return fc.a == 0x80000000u;
  }
  return false;
}

// Returns `eflags` with CF/ZF/SF/OF replaced by the recorded op's results.
// Each branch is the corresponding Cpu::ExecOp SetFlags call, bit for bit —
// the differential fuzz holds this function to the interpreter's output.
inline u32 MaterializeFlags(const FlagsCache& fc, u32 eflags) {
  bool cf = false, zf = false, sf = false, of = false;
  switch (fc.op) {
    case FlagsCache::Op::kEager:
      return eflags;
    case FlagsCache::Op::kAdd: {
      const u32 r = fc.a + fc.b;
      cf = r < fc.a;
      zf = r == 0;
      sf = (r >> 31) & 1;
      of = ((~(fc.a ^ fc.b)) & (fc.a ^ r) & 0x80000000u) != 0;
      break;
    }
    case FlagsCache::Op::kSub: {
      const u32 r = fc.a - fc.b;
      cf = fc.a < fc.b;
      zf = r == 0;
      sf = (r >> 31) & 1;
      of = (((fc.a ^ fc.b) & (fc.a ^ r)) & 0x80000000u) != 0;
      break;
    }
    case FlagsCache::Op::kLogic:
      zf = fc.a == 0;
      sf = (fc.a >> 31) & 1;
      break;
    case FlagsCache::Op::kImul:
      cf = of = fc.b != 0;
      zf = fc.a == 0;
      sf = (fc.a >> 31) & 1;
      break;
    case FlagsCache::Op::kNeg: {
      const u32 r = 0 - fc.a;
      cf = fc.a != 0;
      zf = r == 0;
      sf = (r >> 31) & 1;
      of = fc.a == 0x80000000u;
      break;
    }
    case FlagsCache::Op::kInc: {
      const u32 r = fc.a + 1;
      cf = fc.b != 0;
      zf = r == 0;
      sf = (r >> 31) & 1;
      of = fc.a == 0x7FFFFFFFu;
      break;
    }
    case FlagsCache::Op::kDec: {
      const u32 r = fc.a - 1;
      cf = fc.b != 0;
      zf = r == 0;
      sf = (r >> 31) & 1;
      of = fc.a == 0x80000000u;
      break;
    }
  }
  return (eflags & ~(kFlagCf | kFlagZf | kFlagSf | kFlagOf)) | (cf ? kFlagCf : 0) |
         (zf ? kFlagZf : 0) | (sf ? kFlagSf : 0) | (of ? kFlagOf : 0);
}

enum class UopKind : u8 {
  kNop,    // retire accounting only
  kMovRR,  // r1 <- r2
  kMovRI,  // r1 <- imm
  kLea,    // r1 <- effective address
  // ALU; operand b is regs[r2] or imm (b_imm). `record` marks observable
  // flag results (the static-liveness output).
  kAdd, kSub, kCmp, kAnd, kTest, kOr, kXor,
  kShl, kShr, kSar, kImul, kNeg, kNot, kInc, kDec,
  // Folded add/sub-immediate chain: r1 += imm (the summed delta), retiring
  // `span` instructions; flags are the last op's (imm2 = delta before the
  // last op, disp = the last op's immediate, fold_last_is_sub its kind).
  kFold,
  // Memory; pin indexes Trace::pins. Push/pop lower to these kinds too:
  // PUSH r/i is a store at SS:ESP-4 and POP r a load at SS:ESP, with
  // esp_post applying the stack-pointer move after a successful access
  // (the fault path leaves ESP untouched, exactly like Push32/Pop32).
  kLoad,    // r1 <- [seg: ea], `size` bytes zero-extended
  kStore,   // [seg: ea] <- r1
  kStoreI,  // [seg: ea] <- imm
  // Fallback: dispatch the source slot through the shared per-opcode
  // execution core (segment moves, udiv). Never writes flags (no such
  // non-terminator opcode does), may fault or touch memory.
  kExec,
  // Terminator: the run's final slot when it is a conditional branch.
  // r1 = condition (Opcode - kJe), imm = taken target, cost = the slot's
  // not-taken cost (taken charges the model's taken-branch cost). Evaluated
  // from the lazy cache one flag at a time; when taken straight back to the
  // run's own entry under the frontier the block engine would re-check, the
  // executor loops in place — a hot loop iterates entirely inside the trace
  // and the per-entry overhead amortizes over the whole loop.
  kJcc,
  // Fused compare-and-branch: a kCmp that immediately precedes the kJcc
  // terminator merges into it. r1/r2/b_imm/imm2 are the compare's operands
  // (imm2 because `imm` holds the branch target), r3 = condition, cost = the
  // compare's base cost, cost2 = the branch's not-taken cost, span = 2. The
  // condition evaluates directly from the compare operands (jb == a < b,
  // jl == signed a < b, ... — the standard sub-flag identities), skipping a
  // dispatch and the lazy-flag round-trip on the hottest edge in any loop:
  // its own backward branch. The operands are still recorded into the flags
  // cache so every exit materializes the compare's EFLAGS exactly.
  kCmpJcc,
};

struct Uop {
  UopKind kind = UopKind::kNop;
  // Direct-threading cache: the executor's label address for `kind`, filled
  // in by the executor on the trace's first run (labels are function-local,
  // so the lowering pass cannot know them). One dependent load per dispatch
  // instead of two (kind, then table[kind]).
  const void* target = nullptr;
  u8 r1 = 0, r2 = 0, r3 = 0;
  u8 scale = 0;
  u8 size = 4;
  u8 seg_idx = 2;
  bool is_stack = false;
  bool b_imm = false;             // ALU operand b is `imm`, not regs[r2]
  bool record = false;            // flag result observable: record it
  bool fold_last_is_sub = false;  // kFold: last op of the chain was SubRI
  i8 esp_post = 0;                // push/pop: ESP += this after a successful access
  u8 pin = 0;                     // memory uops: index into Trace::pins
  u8 span = 1;                    // instructions this uop retires (folds > 1)
  u16 slot = 0;                   // source slot in the decoded page
  u16 insn_before = 0;            // instructions retired by earlier uops
  u32 cost = 0;                   // base retire cost (summed over a fold)
  u32 cost_before = 0;            // prefix base-cost sum of earlier uops
  i32 imm = 0;                    // immediate / fold total delta
  i32 disp = 0;                   // displacement / fold last-op immediate
  i32 imm2 = 0;                   // fold delta before the last op
  u32 cost2 = 0;                  // kCmpJcc: the branch's not-taken cost
};

// A pinned translation: one memory uop's last successful D-TLB entry. Live
// iff nothing that could have killed or replaced the entry happened since —
// the TLB change counter (CR3 loads, INVLPG, PTE edits) and the D-TLB
// mutation counter (fills, conflict evictions) both still match. Liveness
// implies the oracle's probe would hit this same entry, so the pinned path
// may skip the probe while charging identical statistics.
struct TracePin {
  u64 tlb_change = ~0ull;
  u64 dtlb_gen = ~0ull;
  u32 vpn = 0;
  u32 frame = 0;
  u32 flags = 0;
  u8* host = nullptr;
};

// A lowered run body. Owned by the decoded page it was built from (see
// DecodeCache::Page::traces); dies with the page on any invalidation.
struct Trace {
  std::vector<Uop> uops;
  bool threaded = false;  // uop targets filled in by the executor
  std::vector<TracePin> pins;
  u32 body_insns = 0;  // instructions the body retires (== run_len - 1)
  u32 body_cost = 0;   // summed base costs of the body
  u16 entry_slot = 0;
  u8 run_len = 0;
};

// Lowers the body of the run starting at `slots[entry_slot]` (run_len from
// the slot's own annotation). Returns nullptr when the run has no body worth
// lowering. Pure ISA-side: no CPU state is consulted — register indices,
// segments and costs are all taken from the decoded slots.
std::unique_ptr<Trace> LowerRun(const DecodedInsn* slots, u32 entry_slot, u32 run_len);

}  // namespace palladium

#endif  // SRC_ISA_UOP_H_
