#include "src/isa/decode_cache.h"

#include <algorithm>

namespace palladium {

const DecodeCache::Page* DecodeCache::GetOrBuild(const PhysicalMemory& pm, u32 frame) {
  // Safe point: no decoded instruction is mid-execution while the CPU is
  // fetching, so pages retired by earlier invalidations can really be freed.
  retired_.clear();

  const u32 pfn = PageNumber(frame);
  auto it = pages_.find(pfn);
  if (it != pages_.end()) return it->second.get();

  if (pages_.size() >= kMaxPages) {
    for (auto& entry : pages_) {
      retired_.push_back(std::move(entry.second));
      ++stats_.evictions;
    }
    pages_.clear();
    std::fill(has_code_.begin(), has_code_.end(), 0);
    ++generation_;
  }

  auto page = std::make_unique<Page>();
  for (u32 slot = 0; slot < kSlotsPerPage; ++slot) {
    DecodedInsn& d = page->slots[slot];
    const u32 phys = frame + slot * kInsnSize;
    if (!pm.Contains(phys, kInsnSize)) {
      d.state = DecodedInsn::State::kBusError;
      d.fault_offset = static_cast<u8>(pm.size() > phys ? pm.size() - phys : 0);
      continue;
    }
    u8 raw[kInsnSize];
    pm.ReadBlock(phys, raw, kInsnSize);
    auto decoded = Insn::Decode(raw);
    if (decoded) {
      d.state = DecodedInsn::State::kDecoded;
      d.insn = *decoded;
    } else {
      d.state = DecodedInsn::State::kUndecodable;
    }
  }
  ++stats_.builds;
  if (has_code_.size() <= pfn) has_code_.resize(pfn + 1, 0);
  has_code_[pfn] = 1;
  const Page* raw_page = page.get();
  pages_.emplace(pfn, std::move(page));
  return raw_page;
}

void DecodeCache::Retire(u32 pfn) {
  auto it = pages_.find(pfn);
  if (it == pages_.end()) return;
  retired_.push_back(std::move(it->second));
  pages_.erase(it);
  has_code_[pfn] = 0;
  ++generation_;
  ++stats_.write_invalidations;
}

void DecodeCache::EvictFrame(u32 frame) {
  const u32 pfn = PageNumber(frame);
  if (pfn < has_code_.size() && has_code_[pfn] != 0) Retire(pfn);
}

}  // namespace palladium
