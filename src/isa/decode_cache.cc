#include "src/isa/decode_cache.h"

#include <algorithm>
#include <cassert>

namespace palladium {

namespace {

// The segment-override rule, resolved at decode time: an explicit override
// wins; the default picks SS for ESP/EBP-based addressing and DS otherwise.
// The returned value indexes the CPU's segment-register file, so it must
// follow SegReg's enum order.
static_assert(static_cast<u8>(SegReg::kCs) == 0 && static_cast<u8>(SegReg::kSs) == 1 &&
                  static_cast<u8>(SegReg::kDs) == 2 && static_cast<u8>(SegReg::kEs) == 3,
              "ResolveSegIdx and DecodedInsn::seg_idx bake in SegReg enum order");
u8 ResolveSegIdx(const Insn& insn) {
  switch (insn.seg) {
    case SegOverride::kCs:
      return 0;
    case SegOverride::kSs:
      return 1;
    case SegOverride::kDs:
      return 2;
    case SegOverride::kEs:
      return 3;
    case SegOverride::kNone:
      break;
  }
  const bool stackish = insn.r2 != kNoBaseReg &&
                        (static_cast<Reg>(insn.r2) == Reg::kEsp ||
                         static_cast<Reg>(insn.r2) == Reg::kEbp);
  return stackish ? 1 : 2;
}

}  // namespace

void FillExecInfo(DecodedInsn& d, const CycleModel::CostTable& costs) {
  const u16 op = static_cast<u16>(d.insn.opcode);
  d.dispatch = op;
  d.seg_idx = ResolveSegIdx(d.insn);
  d.is_stack = d.seg_idx == 1;
  d.cost = costs.base[op];
}

DecodeCache::Page* DecodeCache::GetOrBuild(const PhysicalMemory& pm, u32 frame) {
  // Safe point: no decoded instruction is mid-execution while the CPU is
  // fetching, so pages retired by earlier invalidations can really be freed.
  retired_.clear();

  const u32 pfn = PageNumber(frame);
  auto it = pages_.find(pfn);
  if (it != pages_.end()) return it->second.get();

  if (pages_.size() >= kMaxPages) {
    for (auto& entry : pages_) {
      retired_.push_back(std::move(entry.second));
      ++stats_.evictions;
    }
    pages_.clear();
    std::fill(has_code_.begin(), has_code_.end(), 0);
    generation_.fetch_add(1, std::memory_order_release);
  }

  assert(costs_ != nullptr && "DecodeCache::set_cost_table must be called first");
  auto page = std::make_unique<Page>();
  for (u32 slot = 0; slot < kSlotsPerPage; ++slot) {
    DecodedInsn& d = page->slots[slot];
    const u32 phys = frame + slot * kInsnSize;
    if (!pm.Contains(phys, kInsnSize)) {
      d.state = DecodedInsn::State::kBusError;
      d.dispatch = kDispatchBusError;
      d.fault_offset = static_cast<u8>(pm.size() > phys ? pm.size() - phys : 0);
      continue;
    }
    u8 raw[kInsnSize];
    pm.ReadBlock(phys, raw, kInsnSize);
    auto decoded = Insn::Decode(raw);
    if (decoded) {
      d.state = DecodedInsn::State::kDecoded;
      d.insn = *decoded;
      FillExecInfo(d, *costs_);
    } else {
      d.state = DecodedInsn::State::kUndecodable;
      d.dispatch = kDispatchUndecodable;
    }
  }

  // Backward pass: link slots into basic-block runs. A run is the maximal
  // straight-line slot sequence the block engine may execute before
  // re-deciding; it ends at (and includes) a terminator, ends *before*
  // nothing — non-decodable slots simply start their own length-1 "run"
  // whose dispatch raises the architectural fault. run_cost_max sums the
  // worst-case cycle charge of every *non-terminator, non-final* member:
  // the boundary after the run's last slot is always checked by the engine
  // (terminators yield or chain through a checked edge, completed runs hit
  // the checked run boundary), so only the interior boundaries need the
  // pre-proved bound. The windowed sum (suffix-sum difference) keeps the
  // bound tight for runs clamped at kMaxBlockInsns — an inflated bound
  // would only cost performance (needless one-instruction careful mode near
  // a frontier), never correctness.
  // Worst-case per-slot charge: base cost plus the two-TLB-miss bound for
  // memory traffic; terminators and non-decodable slots charge 0 here
  // because the boundary after them is always checked.
  std::array<u32, kSlotsPerPage + 1> suffix_worst{};
  for (int s = static_cast<int>(kSlotsPerPage) - 1; s >= 0; --s) {
    const DecodedInsn& d = page->slots[s];
    u32 worst = 0;
    if (d.state == DecodedInsn::State::kDecoded && !IsBlockTerminator(d.insn.opcode)) {
      worst = d.cost + (TouchesMemSeq(d.insn.opcode) ? costs_->mem_extra_bound : 0);
    }
    suffix_worst[s] = worst + suffix_worst[s + 1];
  }
  u32 run = 0;
  for (int s = static_cast<int>(kSlotsPerPage) - 1; s >= 0; --s) {
    DecodedInsn& d = page->slots[s];
    if (d.state != DecodedInsn::State::kDecoded || IsBlockTerminator(d.insn.opcode) ||
        s == static_cast<int>(kSlotsPerPage) - 1) {
      run = 1;
    } else {
      run = std::min(run + 1, kMaxBlockInsns);
    }
    d.run_len = static_cast<u8>(run);
    // Interior members are slots s .. s+run-2; their worst-case sum is the
    // suffix difference (the run's last slot contributes nothing).
    d.run_cost_max = suffix_worst[s] - suffix_worst[s + run - 1];
  }

  ++stats_.builds;
  if (has_code_.size() <= pfn) has_code_.resize(pfn + 1, 0);
  has_code_[pfn] = 1;
  Page* raw_page = page.get();
  pages_.emplace(pfn, std::move(page));
  return raw_page;
}

void DecodeCache::Retire(u32 pfn) {
  auto it = pages_.find(pfn);
  if (it == pages_.end()) return;
  retired_.push_back(std::move(it->second));
  pages_.erase(it);
  has_code_[pfn] = 0;
  generation_.fetch_add(1, std::memory_order_release);
  ++stats_.write_invalidations;
}

void DecodeCache::EvictFrame(u32 frame) {
  const u32 pfn = PageNumber(frame);
  if (pfn < has_code_.size() && has_code_[pfn] != 0) Retire(pfn);
}

void DecodeCache::InvalidateAll() {
  if (pages_.empty()) return;
  for (auto& entry : pages_) retired_.push_back(std::move(entry.second));
  pages_.clear();
  std::fill(has_code_.begin(), has_code_.end(), 0);
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace palladium
