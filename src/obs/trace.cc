#include "src/obs/trace.h"

#include <fstream>
#include <sstream>

namespace palladium {
namespace obs {

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kIrqRaise:
      return "irq_raise";
    case EventType::kIrqDeliver:
      return "irq_deliver";
    case EventType::kIrqEoi:
      return "irq_eoi";
    case EventType::kCrossingEnter:
      return "crossing_enter";
    case EventType::kCrossingExit:
      return "crossing_exit";
    case EventType::kContextSwitch:
      return "context_switch";
    case EventType::kTlbShootdown:
      return "tlb_shootdown";
    case EventType::kTraceCompile:
      return "trace_compile";
    case EventType::kTraceInvalidate:
      return "trace_invalidate";
    case EventType::kNapiPoll:
      return "napi_poll";
    case EventType::kFrameDma:
      return "frame_dma";
    case EventType::kFrameClassify:
      return "frame_classify";
    case EventType::kFrameEnqueue:
      return "frame_enqueue";
    case EventType::kFrameRecv:
      return "frame_recv";
    case EventType::kFrameTx:
      return "frame_tx";
  }
  return "?";
}

void FlightRecorder::Reset(u32 num_tracks, u32 capacity) {
  tracks_.assign(num_tracks, Track{});
  capacity_ = capacity != 0 ? capacity : 1;
  for (Track& t : tracks_) t.ring.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void FlightRecorder::SetTrackName(u32 track, std::string name) {
  tracks_[track].name = std::move(name);
}

std::vector<Event> FlightRecorder::Events(u32 track) const {
  const Track& t = tracks_[track];
  std::vector<Event> out;
  out.reserve(t.ring.size());
  for (size_t i = 0; i < t.ring.size(); ++i) {
    out.push_back(t.ring[(t.head + i) % t.ring.size()]);
  }
  return out;
}

std::vector<Event> FlightRecorder::ArchEvents(u32 track) const {
  std::vector<Event> out;
  for (const Event& e : Events(track)) {
    if (e.cls == EventClass::kArch) out.push_back(e);
  }
  return out;
}

u64 FlightRecorder::TotalDropped() const {
  u64 sum = 0;
  for (const Track& t : tracks_) sum += t.dropped;
  return sum;
}

std::string FlightRecorder::ToJsonl() const {
  std::ostringstream out;
  for (u32 i = 0; i < num_tracks(); ++i) {
    const Track& t = tracks_[i];
    out << "{\"meta\":\"track\",\"track\":" << i << ",\"name\":\""
        << (t.name.empty() ? "track" + std::to_string(i) : t.name)
        << "\",\"events\":" << t.total << ",\"dropped\":" << t.dropped
        << "}\n";
  }
  for (u32 i = 0; i < num_tracks(); ++i) {
    for (const Event& e : Events(i)) {
      out << "{\"track\":" << i << ",\"cycle\":" << e.cycle << ",\"type\":\""
          << EventTypeName(e.type) << "\",\"cls\":\""
          << (e.cls == EventClass::kArch ? "arch" : "engine")
          << "\",\"arg0\":" << e.arg0 << ",\"arg1\":" << e.arg1 << "}\n";
    }
  }
  return out.str();
}

bool FlightRecorder::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJsonl();
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace palladium
