// Cycle-attribution profiler: hierarchical accounting of every retired
// simulated cycle into {user, kernel, filter body, crossing overhead, IRQ,
// TLB-miss penalty, idle}, the paper's Table 1-3 cost-breakdown style from
// live runs.
//
// The profiler is a pure observer of the simulated clock: hooks hand it the
// current (cycle, TLB-miss) counters at category transitions and it
// attributes the elapsed span to the *previous* category. It never charges
// cycles, so attaching it cannot perturb a run ("observation is free in
// simulated time") — the differential fuzz runs with it attached in every
// mode and stays byte-identical.
//
// TLB-miss carve-out: `Tlb::Stats::misses` increments only in
// `Cpu::Translate`, which always charges exactly `CycleModel::
// tlb_miss_penalty` alongside it — so within any span, miss-penalty cycles
// are (miss delta) x penalty *exactly*, and the profiler can peel them out
// of the enclosing category into kTlbMiss with zero hot-path
// instrumentation.
#ifndef SRC_OBS_PROFILE_H_
#define SRC_OBS_PROFILE_H_

#include <array>
#include <cstdio>
#include <vector>

#include "src/hw/types.h"

namespace palladium {
namespace obs {

enum class Category : u8 {
  kUser = 0,     // simulated code at CPL 3 (and guest ISR bodies)
  kKernel,       // host-side kernel work (syscalls, dispatch, services)
  kFilterBody,   // protected extension code executing at SPL 1
  kCrossing,     // protection-crossing overhead around a filter invocation
  kIrq,          // interrupt delivery + host-side IRQ handling
  kTlbMiss,      // TLB-miss penalty cycles carved out of any span
  kIdle,         // parked vCPU fast-forwarded to the next device event
};
inline constexpr u32 kNumCategories = 7;

const char* CategoryName(Category c);

// The one shared definition of "busy" for an N-vCPU run: every core's clock
// advances to the global frontier, so busy = vCPUs x wall - idle (clamped).
// Consumed by server_sim, bench_dataplane and the profiler's report.
inline u64 BusyCycles(u32 num_cpus, u64 wall_cycles, u64 idle_cycles) {
  const u64 cpu_cycles = static_cast<u64>(num_cpus) * wall_cycles;
  return cpu_cycles - (idle_cycles < cpu_cycles ? idle_cycles : cpu_cycles);
}

class CycleProfile {
 public:
  CycleProfile() = default;

  // (Re)arms the profiler for `num_cpus` vCPUs. `tlb_miss_penalty` is
  // CycleModel::tlb_miss_penalty of the profiled machine.
  void Reset(u32 num_cpus, u32 tlb_miss_penalty);

  bool enabled() const { return !per_cpu_.empty(); }
  u32 num_cpus() const { return static_cast<u32>(per_cpu_.size()); }

  // Thread-safety contract (threaded SMP mode): every mutable field lives in
  // the per-vCPU PerCpu slot and each vCPU only touches its own index, so
  // concurrent epochs are race-free without locks. Reset and whole-profile
  // readers are setup/teardown-time only.
  // Opens accounting on vCPU `c` at (cycle, misses) in `cat`.
  void Begin(u32 c, u64 cycle, u64 misses, Category cat);
  // Flushes the open span to its category and opens a new one in `cat`.
  void Set(u32 c, u64 cycle, u64 misses, Category cat);
  // The currently open category (so nested hooks can restore their caller's).
  Category Current(u32 c) const { return per_cpu_[c].cat; }
  // Flushes the final span and closes accounting on vCPU `c`.
  void Finish(u32 c, u64 cycle, u64 misses);

  u64 bucket(u32 c, Category cat) const {
    return per_cpu_[c].buckets[static_cast<u32>(cat)];
  }
  // Summed over every vCPU.
  u64 BucketTotal(Category cat) const;
  // Cycles between Begin and Finish on vCPU `c`; the invariant — asserted in
  // tests/obs_test.cc — is that the seven buckets sum to exactly this.
  u64 total(u32 c) const { return per_cpu_[c].end_cycle - per_cpu_[c].begin_cycle; }
  u64 TotalAll() const;

  // Prints the paper-style breakdown table: per-category cycles, share of
  // total, and (when per_unit > 0) cycles per unit (request, packet, ...).
  void PrintBreakdown(std::FILE* out, u64 per_unit, const char* unit_name) const;

 private:
  struct PerCpu {
    std::array<u64, kNumCategories> buckets{};
    u64 span_cycle = 0;    // open span's start cycle
    u64 span_misses = 0;   // TLB misses at span start
    u64 begin_cycle = 0;
    u64 end_cycle = 0;
    Category cat = Category::kKernel;
    bool open = false;
    bool begun = false;  // has ever seen a Begin (survives Finish)
  };

  void Flush(PerCpu& p, u64 cycle, u64 misses);

  std::vector<PerCpu> per_cpu_;
  u32 tlb_miss_penalty_ = 0;
};

}  // namespace obs
}  // namespace palladium

#endif  // SRC_OBS_PROFILE_H_
