// MetricsRegistry: one process-wide registry of named counters/gauges that
// federates the per-subsystem stats structs scattered across the machine —
// CPU cycle/retire/TLB/D-TLB counters, decode-cache generations, block- and
// trace-engine counters, per-CPU scheduler stats, NIC per-queue ring/IRQ
// stats, dataplane crossing/drop accounting, SMP shootdown counters — behind
// one flat, sorted name -> value map and one `SnapshotJson()`.
//
// Naming scheme: `<subsystem>[<index>].<group>.<counter>`, e.g.
//   cpu0.tlb.misses, cpu0.trace.promotions, sched.preemptions,
//   sched.cpu1.steals, nic.q0.rx_frames, dataplane.filter_batches,
//   kernel.smp.shootdown_ipis, obs.trace.dropped_events.
// Benches emit the snapshot into their BENCH_*.json metrics object with an
// `obs.` prefix, so trend tooling sees every subsystem counter per run.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <map>
#include <string>

#include "src/hw/types.h"

namespace palladium {

class Cpu;
class DynamicLinker;
class Kernel;
class KernelExtensionManager;
class LocalRpcChannel;
class Nic;
class PacketDataplane;
class Scheduler;
struct BpfHostStats;
struct SfiStats;

namespace obs {

class CycleProfile;
class FlightRecorder;

struct MetricValue {
  bool integral = true;
  u64 u = 0;
  double d = 0.0;
};

class MetricsRegistry {
 public:
  void Counter(const std::string& name, u64 value) {
    values_[name] = MetricValue{true, value, 0.0};
  }
  void Gauge(const std::string& name, double value) {
    values_[name] = MetricValue{false, 0, value};
  }

  // Federation: pull a subsystem's stats struct in under its prefix.
  void CollectCpu(const Cpu& cpu, u32 index);
  void CollectSched(const Scheduler& sched, u32 num_cpus);
  void CollectNic(const Nic& nic);
  void CollectDataplane(const PacketDataplane& dp);
  void CollectKernel(const Kernel& kernel);  // SMP shootdown counters
  void CollectProfile(const CycleProfile& profile);
  void CollectRecorder(const FlightRecorder& recorder);
  // Protection-subsystem counters (the Figure-7 ablation modes).
  void CollectKext(const KernelExtensionManager& kext);
  void CollectSfi(const SfiStats& stats);
  void CollectBpf(const BpfHostStats& stats);
  void CollectRpc(const LocalRpcChannel& rpc);
  void CollectDl(const DynamicLinker& dl);
  // Every CPU + scheduler + SMP counter of a kernel machine in one call.
  void CollectMachine(const Kernel& kernel, const Scheduler* sched);

  const std::map<std::string, MetricValue>& values() const { return values_; }
  bool empty() const { return values_.empty(); }

  // Flat sorted JSON object {"name": value, ...}.
  std::string SnapshotJson() const;

 private:
  std::map<std::string, MetricValue> values_;
};

}  // namespace obs
}  // namespace palladium

#endif  // SRC_OBS_METRICS_H_
