#include "src/obs/profile.h"

#include <string>

namespace palladium {
namespace obs {

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kUser:
      return "user";
    case Category::kKernel:
      return "kernel";
    case Category::kFilterBody:
      return "filter_body";
    case Category::kCrossing:
      return "crossing";
    case Category::kIrq:
      return "irq";
    case Category::kTlbMiss:
      return "tlb_miss";
    case Category::kIdle:
      return "idle";
  }
  return "?";
}

void CycleProfile::Reset(u32 num_cpus, u32 tlb_miss_penalty) {
  per_cpu_.assign(num_cpus, PerCpu{});
  tlb_miss_penalty_ = tlb_miss_penalty;
}

void CycleProfile::Flush(PerCpu& p, u64 cycle, u64 misses) {
  if (!p.open || cycle <= p.span_cycle) return;
  const u64 span = cycle - p.span_cycle;
  u64 penalty = (misses - p.span_misses) * tlb_miss_penalty_;
  if (penalty > span) penalty = span;  // defensive; cannot happen by model
  p.buckets[static_cast<u32>(p.cat)] += span - penalty;
  p.buckets[static_cast<u32>(Category::kTlbMiss)] += penalty;
}

void CycleProfile::Begin(u32 c, u64 cycle, u64 misses, Category cat) {
  PerCpu& p = per_cpu_[c];
  if (p.begun) {
    // Re-arm after a Finish (drivers may call RunAll repeatedly). Cycles
    // charged between the runs land in the resuming category so the
    // sum-equals-total invariant holds across Begin/Finish pairs.
    p.open = true;
    p.cat = cat;
    Flush(p, cycle, misses);
    p.span_cycle = cycle;
    p.span_misses = misses;
    p.end_cycle = cycle;
    return;
  }
  p.begun = true;
  p.begin_cycle = p.end_cycle = cycle;
  p.span_cycle = cycle;
  p.span_misses = misses;
  p.cat = cat;
  p.open = true;
}

void CycleProfile::Set(u32 c, u64 cycle, u64 misses, Category cat) {
  PerCpu& p = per_cpu_[c];
  Flush(p, cycle, misses);
  p.span_cycle = cycle;
  p.span_misses = misses;
  p.cat = cat;
}

void CycleProfile::Finish(u32 c, u64 cycle, u64 misses) {
  PerCpu& p = per_cpu_[c];
  Flush(p, cycle, misses);
  p.span_cycle = cycle;
  p.span_misses = misses;
  p.end_cycle = cycle;
  p.open = false;
}

u64 CycleProfile::BucketTotal(Category cat) const {
  u64 sum = 0;
  for (const PerCpu& p : per_cpu_) sum += p.buckets[static_cast<u32>(cat)];
  return sum;
}

u64 CycleProfile::TotalAll() const {
  u64 sum = 0;
  for (const PerCpu& p : per_cpu_) sum += p.end_cycle - p.begin_cycle;
  return sum;
}

void CycleProfile::PrintBreakdown(std::FILE* out, u64 per_unit,
                                  const char* unit_name) const {
  const u64 total = TotalAll();
  std::fprintf(out, "--- cycle attribution (%u vCPU%s, %llu cycles) ---\n",
               num_cpus(), num_cpus() == 1 ? "" : "s",
               static_cast<unsigned long long>(total));
  if (per_unit > 0) {
    std::fprintf(out, "%-14s %14s %7s %14s\n", "category", "cycles", "share",
                 (std::string("cyc/") + unit_name).c_str());
  } else {
    std::fprintf(out, "%-14s %14s %7s\n", "category", "cycles", "share");
  }
  for (u32 i = 0; i < kNumCategories; ++i) {
    const Category cat = static_cast<Category>(i);
    const u64 cycles = BucketTotal(cat);
    const double share = total != 0 ? 100.0 * static_cast<double>(cycles) /
                                          static_cast<double>(total)
                                    : 0.0;
    if (per_unit > 0) {
      std::fprintf(out, "%-14s %14llu %6.2f%% %14.1f\n", CategoryName(cat),
                   static_cast<unsigned long long>(cycles), share,
                   static_cast<double>(cycles) / static_cast<double>(per_unit));
    } else {
      std::fprintf(out, "%-14s %14llu %6.2f%%\n", CategoryName(cat),
                   static_cast<unsigned long long>(cycles), share);
    }
  }
}

}  // namespace obs
}  // namespace palladium
