// Flight-recorder tracer: fixed-size per-track ring buffers of typed events
// stamped with simulated cycles — one track per vCPU plus device tracks
// (the NIC). When a ring wraps, the oldest events are dropped and counted
// in an explicit per-track `dropped_events` counter, never silently.
//
// Events carry a class bit:
//   kArch   — architecturally determined: for the same program and seed the
//             stream is byte-identical across every engine mode
//             ({blocks, trace, D-TLB} on/off) — asserted by the differential
//             fuzz and tests/obs_test.cc.
//   kEngine — describes the execution machinery itself (trace-tier
//             compiles/invalidations) and legitimately differs across modes.
//
// Recording never touches the simulated clock, so an attached recorder is
// invisible to the machine ("observation is free in simulated time").
//
// Export: raw JSONL (`WriteJsonl`), converted to Chrome trace-event JSON by
// tools/trace2chrome.py for viewing in Perfetto.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <string>
#include <vector>

#include "src/hw/types.h"

namespace palladium {
namespace obs {

enum class EventType : u8 {
  kIrqRaise = 0,    // device asserted an IRQ line        {irq, queue}
  kIrqDeliver,      // CPU took an interrupt gate         {vector, cpl}
  kIrqEoi,          // kernel EOI'd the in-service IRQ    {irq, 0}
  kCrossingEnter,   // SPL protection crossing into a kext {function_id, arg}
  kCrossingExit,    // crossing returned/aborted          {function_id, ok}
  kContextSwitch,   // scheduler dispatched a process     {pid, 0}
  kTlbShootdown,    // cross-CPU TLB shootdown            {page, remote_cpus}
  kTraceCompile,    // hot run lowered to a uop trace     {eip, run_len}
  kTraceInvalidate, // hot trace died to a code write     {eip, 0}
  kNapiPoll,        // NAPI poll batch drained            {queue, frames}
  kFrameDma,        // NIC DMA'd a frame into the ring    {queue, bytes}
  kFrameClassify,   // filter classified a frame batch    {frames, matched}
  kFrameEnqueue,    // frame delivered to a worker queue  {queue_owner, depth}
  kFrameRecv,       // worker picked the frame up (pkt_recv) {pid, bytes}
  kFrameTx,         // response hit the TX ring           {queue, bytes}
};
inline constexpr u32 kNumEventTypes = 15;

const char* EventTypeName(EventType t);

enum class EventClass : u8 { kArch = 0, kEngine };

struct Event {
  u64 cycle = 0;
  u32 arg0 = 0;
  u32 arg1 = 0;
  EventType type = EventType::kIrqRaise;
  EventClass cls = EventClass::kArch;

  bool operator==(const Event& o) const {
    return cycle == o.cycle && arg0 == o.arg0 && arg1 == o.arg1 &&
           type == o.type && cls == o.cls;
  }
  bool operator!=(const Event& o) const { return !(*this == o); }
};

class FlightRecorder {
 public:
  static constexpr u32 kDefaultCapacity = 8192;

  FlightRecorder() = default;

  // (Re)arms the recorder with `num_tracks` rings of `capacity` events each.
  void Reset(u32 num_tracks, u32 capacity = kDefaultCapacity);

  bool enabled() const { return !tracks_.empty(); }
  u32 num_tracks() const { return static_cast<u32>(tracks_.size()); }

  void SetTrackName(u32 track, std::string name);
  const std::string& track_name(u32 track) const { return tracks_[track].name; }

  // Thread-safety contract (threaded SMP mode): all mutable state — ring,
  // head, total, dropped — is per-Track, and a vCPU only ever records to its
  // own track, so concurrent epochs are race-free without locks as long as
  // that ownership holds. Reset/SetTrackName and cross-track readers
  // (Events, TotalDropped, ToJsonl) are setup/teardown-time only.
  void Record(u32 track, u64 cycle, EventType type, EventClass cls,
              u32 arg0 = 0, u32 arg1 = 0) {
    Track& t = tracks_[track];
    ++t.total;
    if (t.ring.size() < capacity_) {
      t.ring.push_back(Event{cycle, arg0, arg1, type, cls});
      return;
    }
    t.ring[t.head] = Event{cycle, arg0, arg1, type, cls};
    t.head = (t.head + 1) % capacity_;
    ++t.dropped;
  }

  // Events on `track` in record order (oldest surviving first).
  std::vector<Event> Events(u32 track) const;
  // Only the architecturally-determined (mode-invariant) events.
  std::vector<Event> ArchEvents(u32 track) const;

  u64 dropped_events(u32 track) const { return tracks_[track].dropped; }
  u64 recorded_events(u32 track) const { return tracks_[track].total; }
  u64 TotalDropped() const;

  // One JSON object per line: a meta line per track (name, totals, drops)
  // followed by every surviving event.
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path) const;

 private:
  struct Track {
    std::vector<Event> ring;
    std::string name;
    u32 head = 0;     // oldest element once the ring is full
    u64 total = 0;    // events ever recorded
    u64 dropped = 0;  // oldest events overwritten on wrap
  };

  std::vector<Track> tracks_;
  u32 capacity_ = 0;
};

}  // namespace obs
}  // namespace palladium

#endif  // SRC_OBS_TRACE_H_
