#include "src/obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "src/bpf/bpf.h"
#include "src/core/kernel_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/hw/cpu.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc.h"
#include "src/sfi/sfi.h"

namespace palladium {
namespace obs {

void MetricsRegistry::CollectCpu(const Cpu& cpu, u32 index) {
  const std::string p = "cpu" + std::to_string(index) + ".";
  Counter(p + "cycles", cpu.cycles());
  Counter(p + "instructions_retired", cpu.instructions_retired());
  Counter(p + "tlb.hits", cpu.tlb_stats().hits);
  Counter(p + "tlb.misses", cpu.tlb_stats().misses);
  Counter(p + "dtlb.hits", cpu.dtlb_stats().hits);
  Counter(p + "dtlb.misses", cpu.dtlb_stats().misses);
  Counter(p + "decode.builds", cpu.decode_cache().stats().builds);
  Counter(p + "decode.write_invalidations",
          cpu.decode_cache().stats().write_invalidations);
  Counter(p + "decode.evictions", cpu.decode_cache().stats().evictions);
  Counter(p + "decode.generation", cpu.decode_cache().generation());
  Counter(p + "block.entries", cpu.block_stats().entries);
  Counter(p + "block.insns", cpu.block_stats().insns);
  Counter(p + "block.chains", cpu.block_stats().chains);
  Counter(p + "trace.promotions", cpu.trace_stats().promotions);
  Counter(p + "trace.entries", cpu.trace_stats().entries);
  Counter(p + "trace.uop_insns", cpu.trace_stats().uop_insns);
  Counter(p + "trace.flag_materializations",
          cpu.trace_stats().flag_materializations);
  Counter(p + "trace.probes_elided", cpu.trace_stats().probes_elided);
}

void MetricsRegistry::CollectSched(const Scheduler& sched, u32 num_cpus) {
  const Scheduler::Stats& s = sched.stats();
  Counter("sched.context_switches", s.context_switches);
  Counter("sched.preemptions", s.preemptions);
  Counter("sched.yields_or_blocks", s.yields_or_blocks);
  Counter("sched.timer_ticks", s.timer_ticks);
  Counter("sched.idle_jumps", s.idle_jumps);
  Counter("sched.idle_cycles", s.idle_cycles);
  Counter("sched.steals", s.steals);
  for (u32 c = 0; c < num_cpus; ++c) {
    const Scheduler::CpuStats& cs = sched.cpu_stats(c);
    const std::string p = "sched.cpu" + std::to_string(c) + ".";
    Counter(p + "context_switches", cs.context_switches);
    Counter(p + "preemptions", cs.preemptions);
    Counter(p + "steals", cs.steals);
  }
}

void MetricsRegistry::CollectNic(const Nic& nic) {
  const Nic::Stats& s = nic.stats();
  Counter("nic.rx_frames", s.rx_frames);
  Counter("nic.rx_dropped", s.rx_dropped);
  Counter("nic.rx_bytes", s.rx_bytes);
  Counter("nic.tx_frames", s.tx_frames);
  Counter("nic.tx_bytes", s.tx_bytes);
  Counter("nic.rx_irqs_deferred", s.rx_irqs_deferred);
  Counter("nic.tx_completion_irqs", s.tx_completion_irqs);
  Counter("nic.tx_irqs_suppressed", s.tx_irqs_suppressed);
  for (u32 q = 0; q < nic.num_queues(); ++q) {
    Counter("nic.q" + std::to_string(q) + ".rx_frames",
            nic.rx_frames_on_queue(q));
  }
}

void MetricsRegistry::CollectDataplane(const PacketDataplane& dp) {
  const PacketDataplane::Stats& s = dp.stats();
  Counter("dataplane.rx_frames", s.rx_frames);
  Counter("dataplane.filter_invocations", s.filter_invocations);
  Counter("dataplane.filter_frames", s.filter_frames);
  Counter("dataplane.filter_batches", s.filter_batches);
  Counter("dataplane.filter_aborts", s.filter_aborts);
  Counter("dataplane.filter_calls_avoided", s.filter_calls_avoided);
  Counter("dataplane.matched", s.matched);
  Counter("dataplane.delivered", s.delivered);
  Counter("dataplane.dropped_no_match", s.dropped_no_match);
  Counter("dataplane.dropped_queue_full", s.dropped_queue_full);
  Counter("dataplane.dropped_dead_dest", s.dropped_dead_dest);
  Counter("dataplane.dropped_backlog_full", s.dropped_backlog_full);
  Counter("dataplane.rps_deferred", s.rps_deferred);
  Counter("dataplane.tx_frames", s.tx_frames);
  Counter("dataplane.nic_irqs", s.nic_irqs);
  Counter("dataplane.tx_completion_irqs", s.tx_completion_irqs);
  Counter("dataplane.napi_polls", s.napi_polls);
  Counter("dataplane.napi_frames", s.napi_frames);
  Counter("dataplane.flow_upgrades", s.flow_upgrades);
}

void MetricsRegistry::CollectKernel(const Kernel& kernel) {
  const Kernel::SmpStats& s = kernel.smp_stats();
  Counter("kernel.smp.shootdown_pages", s.shootdown_pages);
  Counter("kernel.smp.shootdown_ipis", s.shootdown_ipis);
  Counter("kernel.smp.full_flushes", s.full_flushes);
  Counter("kernel.smp.ipis_received", s.ipis_received);
}

void MetricsRegistry::CollectProfile(const CycleProfile& profile) {
  if (!profile.enabled()) return;
  for (u32 i = 0; i < kNumCategories; ++i) {
    const Category cat = static_cast<Category>(i);
    Counter(std::string("obs.profile.") + CategoryName(cat),
            profile.BucketTotal(cat));
  }
  Counter("obs.profile.total_cycles", profile.TotalAll());
}

void MetricsRegistry::CollectRecorder(const FlightRecorder& recorder) {
  if (!recorder.enabled()) return;
  u64 total = 0;
  for (u32 t = 0; t < recorder.num_tracks(); ++t) total += recorder.recorded_events(t);
  Counter("obs.trace.events", total);
  Counter("obs.trace.dropped_events", recorder.TotalDropped());
}

void MetricsRegistry::CollectKext(const KernelExtensionManager& kext) {
  Counter("kext.loads", kext.loads());
  Counter("kext.unloads", kext.unloads());
  Counter("kext.invocations", kext.invocations());
  Counter("kext.aborts", kext.aborts());
  Counter("kext.invoke_cycles", kext.invoke_cycles());
}

void MetricsRegistry::CollectSfi(const SfiStats& stats) {
  Counter("sfi.original_insns", stats.original_insns);
  Counter("sfi.rewritten_insns", stats.rewritten_insns);
  Counter("sfi.sandboxed_memory_ops", stats.sandboxed_memory_ops);
  Counter("sfi.sandboxed_indirect_jumps", stats.sandboxed_indirect_jumps);
  Gauge("sfi.expansion", stats.Expansion());
}

void MetricsRegistry::CollectBpf(const BpfHostStats& stats) {
  Counter("bpf.packets", stats.packets);
  Counter("bpf.insns", stats.insns);
  Counter("bpf.bad_accesses", stats.bad_accesses);
}

void MetricsRegistry::CollectRpc(const LocalRpcChannel& rpc) {
  Counter("rpc.calls", rpc.calls());
  Counter("rpc.bytes_marshalled", rpc.bytes_marshalled());
  Counter("rpc.cycles", rpc.cycles());
  Counter("rpc.context_switches_per_call", rpc.costs().context_switches);
  Counter("rpc.domain_crossings_per_call", rpc.costs().domain_crossings);
}

void MetricsRegistry::CollectDl(const DynamicLinker& dl) {
  Counter("dl.loads", dl.loads());
  Counter("dl.unloads", dl.unloads());
}

void MetricsRegistry::CollectMachine(const Kernel& kernel, const Scheduler* sched) {
  const Machine& m = kernel.machine();
  for (u32 c = 0; c < m.num_cpus(); ++c) CollectCpu(m.cpu(c), c);
  if (sched != nullptr) CollectSched(*sched, m.num_cpus());
  CollectKernel(kernel);
}

std::string MetricsRegistry::SnapshotJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, v] : values_) {
    out << (first ? "" : ",") << "\n  \"" << name << "\": ";
    if (v.integral) {
      out << v.u;
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v.d);
      out << buf;
    }
    first = false;
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace palladium
