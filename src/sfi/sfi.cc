#include "src/sfi/sfi.h"

#include <map>
#include <vector>

namespace palladium {

namespace {

bool IsMemoryOp(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore || op == Opcode::kStoreI;
}

bool IsIndirectTransfer(Opcode op) { return op == Opcode::kCallR || op == Opcode::kJmpR; }

}  // namespace

std::optional<ObjectFile> SfiRewrite(const ObjectFile& obj, const SfiOptions& options,
                                     SfiStats* stats, std::string* diag) {
  const u32 mask = (1u << options.sandbox_bits) - 1;
  if ((options.sandbox_base & mask) != 0) {
    if (diag != nullptr) *diag = "sandbox base not aligned to its size";
    return std::nullopt;
  }
  if (obj.text.size() % kInsnSize != 0) {
    if (diag != nullptr) *diag = "text section is not instruction-aligned";
    return std::nullopt;
  }
  const u8 scratch = static_cast<u8>(options.scratch);
  const u32 n = static_cast<u32>(obj.text.size() / kInsnSize);

  SfiStats local_stats;
  local_stats.original_insns = n;

  // First pass: decode and compute the new offset of every original insn.
  std::vector<Insn> insns(n);
  std::vector<u32> new_index(n + 1, 0);  // in instructions
  u32 out_count = 0;
  for (u32 i = 0; i < n; ++i) {
    auto decoded = Insn::Decode(obj.text.data() + i * kInsnSize);
    if (!decoded) {
      if (diag != nullptr) *diag = "undecodable instruction at text offset " +
                                   std::to_string(i * kInsnSize);
      return std::nullopt;
    }
    insns[i] = *decoded;
    new_index[i] = out_count;
    const Insn& in = insns[i];
    const bool sandbox_this =
        (IsMemoryOp(in.opcode) &&
         (options.protection == SfiProtection::kReadWrite || in.opcode != Opcode::kLoad)) ||
        IsIndirectTransfer(in.opcode);
    if (sandbox_this && IsMemoryOp(in.opcode)) {
      // lea; and; or; op
      if (in.r1 == scratch || (in.r2 != kNoBaseReg && in.r2 == scratch) ||
          (in.scale != 0 && in.r3 == scratch)) {
        if (diag != nullptr) {
          *diag = "code uses the SFI scratch register at instruction " + std::to_string(i);
        }
        return std::nullopt;
      }
      out_count += 4;
      ++local_stats.sandboxed_memory_ops;
    } else if (sandbox_this) {
      // and; or; op  (indirect target masking mutates the target register,
      // as in classic SFI)
      out_count += 3;
      ++local_stats.sandboxed_indirect_jumps;
    } else {
      out_count += 1;
    }
  }
  new_index[n] = out_count;
  local_stats.rewritten_insns = out_count;

  // Second pass: emit.
  ObjectFile out;
  out.data = obj.data;
  out.bss_size = obj.bss_size;
  out.text.resize(out_count * kInsnSize);
  // Field-offset remapping for relocations: old byte offset -> new.
  std::map<u32, u32> field_map;

  u32 emit_at = 0;
  auto emit = [&](const Insn& insn) {
    insn.EncodeTo(out.text.data() + emit_at * kInsnSize);
    ++emit_at;
  };
  for (u32 i = 0; i < n; ++i) {
    const Insn& in = insns[i];
    const u32 old_base = i * kInsnSize;
    const bool sandbox_this =
        (IsMemoryOp(in.opcode) &&
         (options.protection == SfiProtection::kReadWrite || in.opcode != Opcode::kLoad)) ||
        IsIndirectTransfer(in.opcode);
    if (sandbox_this && IsMemoryOp(in.opcode)) {
      // lea <mem>, %scratch
      Insn lea;
      lea.opcode = Opcode::kLea;
      lea.r1 = scratch;
      lea.r2 = in.r2;
      lea.r3 = in.r3;
      lea.scale = in.scale;
      lea.disp = in.disp;
      // A disp relocation on the original lands on the lea.
      field_map[old_base + 12] = emit_at * kInsnSize + 12;
      emit(lea);
      Insn mask_insn;
      mask_insn.opcode = Opcode::kAndRI;
      mask_insn.r1 = scratch;
      mask_insn.imm = static_cast<i32>(mask);
      emit(mask_insn);
      Insn or_insn;
      or_insn.opcode = Opcode::kOrRI;
      or_insn.r1 = scratch;
      or_insn.imm = static_cast<i32>(options.sandbox_base);
      emit(or_insn);
      Insn op = in;
      op.r2 = scratch;
      op.r3 = 0;
      op.scale = 0;
      op.disp = 0;
      // An imm relocation (StoreI) lands on the final op.
      field_map[old_base + 8] = emit_at * kInsnSize + 8;
      emit(op);
    } else if (sandbox_this) {
      Insn mask_insn;
      mask_insn.opcode = Opcode::kAndRI;
      mask_insn.r1 = in.r1;
      mask_insn.imm = static_cast<i32>(mask);
      emit(mask_insn);
      Insn or_insn;
      or_insn.opcode = Opcode::kOrRI;
      or_insn.r1 = in.r1;
      or_insn.imm = static_cast<i32>(options.sandbox_base);
      emit(or_insn);
      field_map[old_base + 8] = emit_at * kInsnSize + 8;
      emit(in);
    } else {
      field_map[old_base + 8] = emit_at * kInsnSize + 8;
      field_map[old_base + 12] = emit_at * kInsnSize + 12;
      emit(in);
    }
  }

  // Remap symbols and relocations.
  for (Symbol sym : obj.symbols) {
    if (sym.defined && sym.section == SectionId::kText) {
      if (sym.offset % kInsnSize != 0 || sym.offset / kInsnSize > n) {
        if (diag != nullptr) *diag = "text symbol not instruction-aligned: " + sym.name;
        return std::nullopt;
      }
      sym.offset = new_index[sym.offset / kInsnSize] * kInsnSize;
    }
    out.symbols.push_back(std::move(sym));
  }
  for (Relocation rel : obj.relocations) {
    if (rel.section == SectionId::kText) {
      auto it = field_map.find(rel.offset);
      if (it == field_map.end()) {
        if (diag != nullptr) {
          *diag = "text relocation at unexpected offset " + std::to_string(rel.offset);
        }
        return std::nullopt;
      }
      rel.offset = it->second;
    }
    out.relocations.push_back(std::move(rel));
  }

  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace palladium
