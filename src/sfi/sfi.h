// Software Fault Isolation (Wahbe et al. '93): the software-only baseline the
// paper compares against in Section 2. A binary-rewriting pass over object
// files that forces every (write, or all) memory access and every indirect
// control transfer into a 2^k-aligned sandbox region by masking effective
// addresses through a dedicated scratch register.
#ifndef SRC_SFI_SFI_H_
#define SRC_SFI_SFI_H_

#include <optional>
#include <string>

#include "src/asm/object_file.h"
#include "src/isa/insn.h"

namespace palladium {

enum class SfiProtection : u8 {
  kWriteOnly,  // sandbox stores + indirect jumps (the cheap variant)
  kReadWrite,  // sandbox loads too (full fault isolation)
};

struct SfiOptions {
  u32 sandbox_base = 0x00400000;  // must be 2^bits aligned
  u32 sandbox_bits = 20;          // 1 MB sandbox
  SfiProtection protection = SfiProtection::kReadWrite;
  Reg scratch = Reg::kEdx;        // dedicated register (must be free in the code)
};

struct SfiStats {
  u32 original_insns = 0;
  u32 rewritten_insns = 0;
  u32 sandboxed_memory_ops = 0;
  u32 sandboxed_indirect_jumps = 0;

  double Expansion() const {
    return original_insns == 0
               ? 1.0
               : static_cast<double>(rewritten_insns) / static_cast<double>(original_insns);
  }
};

// Rewrites `obj`'s text section, remapping symbols and relocations. Fails if
// the code uses the scratch register in a way the transform would clobber,
// or if text symbols/relocations are not instruction-aligned.
std::optional<ObjectFile> SfiRewrite(const ObjectFile& obj, const SfiOptions& options,
                                     SfiStats* stats, std::string* diag);

}  // namespace palladium

#endif  // SRC_SFI_SFI_H_
