#include "src/core/trampoline.h"

#include <sstream>

namespace palladium {

std::string PrepareStubSource(const TrampolineSlots& slots, u32 ext_arg_slot,
                              u32 ext_stack_ptr, u16 ext_cs_selector, u16 ext_ss_selector,
                              u32 transfer_addr) {
  std::ostringstream os;
  os << "  .global prepare\n"
     << "prepare:\n"
     // pushl 0x4(%esp); popl ExtensionStack — copy the argument word. This
     // and the phantom-frame pushes below are ordinary data accesses, so the
     // protection-domain crossing executes on the CPU's D-TLB fast path; the
     // cost of the crossing is the lret privilege transition, not paging.
     << "  ld 4(%esp), %eax\n"
     << "  st %eax, " << ext_arg_slot << "\n"
     // movl %esp, SP2 ; movl %ebp, BP2
     << "  st %esp, " << slots.sp2_slot << "\n"
     << "  st %ebp, " << slots.bp2_slot << "\n"
     // Phantom activation record for lret: SS, ESP, CS, EIP.
     << "  push $" << ext_ss_selector << "\n"
     << "  push $" << ext_stack_ptr << "\n"
     << "  push $" << ext_cs_selector << "\n"
     << "  push $" << transfer_addr << "\n"
     << "  lret\n";
  return os.str();
}

std::string TransferStubSource(u32 ext_function_addr, u16 app_gate_selector) {
  std::ostringstream os;
  os << "  .global transfer\n"
     << "transfer:\n"
     << "  call " << ext_function_addr << "\n"
     << "  lcall $" << app_gate_selector << "\n";
  return os.str();
}

std::string AppCallGateSource(const TrampolineSlots& slots) {
  std::ostringstream os;
  os << "  .global app_call_gate\n"
     << "app_call_gate:\n"
     << "  ld " << slots.sp2_slot << ", %esp\n"
     << "  ld " << slots.bp2_slot << ", %ebp\n"
     << "  ret\n";
  return os.str();
}

std::string AppServiceStubSource(u32 service_function_addr, u32 gate_frame_addr) {
  std::ostringstream os;
  // Gate-entry stack (after the 3->2 lcall): [EIP][CS][old ESP][old SS],
  // always built at the same place (the TSS PL2 stack), so the stub can
  // rematerialize it as a constant after the service returns — no register
  // survives the service call, which follows the standard ABI.
  os << "  .global service_stub\n"
     << "service_stub:\n"
     << "  ld 8(%esp), %esp\n"      // switch to the extension's own stack
     << "  call " << service_function_addr << "\n"
     << "  mov $" << gate_frame_addr << ", %esp\n"  // back to the gate frame
     << "  lret\n";
  return os.str();
}

std::string LibxSource() {
  return R"(
  .extern pd_heap_base
  .extern pd_heap_limit
  .global xmalloc
  .global xfree
; u32 xmalloc(u32 size): 8-byte-aligned bump allocation from the extension
; segment's heap; returns 0 on exhaustion.
xmalloc:
  ld 4(%esp), %ecx
  add $7, %ecx
  and $0xFFFFFFF8, %ecx
  ld xheap_ptr, %eax
  mov %eax, %edx
  add %ecx, %edx
  ld xheap_limit, %ecx
  cmp %ecx, %edx
  ja xmalloc_fail
  st %edx, xheap_ptr
  ret
xmalloc_fail:
  mov $0, %eax
  ret
; xfree is a no-op for the bump allocator.
xfree:
  ret
  .data
  .global xheap_ptr
xheap_ptr:
  .long pd_heap_base
xheap_limit:
  .long pd_heap_limit
)";
}

std::string KextTransferStubSource(u32 function_offset, u16 kernel_return_gate_selector) {
  std::ostringstream os;
  os << "  .global kext_transfer\n"
     << "kext_transfer:\n"
     << "  call " << function_offset << "\n"
     << "  lcall $" << kernel_return_gate_selector << "\n";
  return os.str();
}

}  // namespace palladium
