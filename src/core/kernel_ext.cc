#include "src/core/kernel_ext.h"

#include "src/asm/assembler.h"
#include "src/core/trampoline.h"
#include "src/hw/paging.h"
#include "src/obs/trace.h"

namespace palladium {

KernelExtensionManager::KernelExtensionManager(Kernel& kernel) : kernel_(kernel) {
  // Idle kernel stack for invocations made outside any process context (the
  // paper: such extensions execute in the stack of the idle process).
  u32 frame = kernel_.frames().Alloc();
  idle_stack_top_ = frame + kPageSize;  // kernel-segment offset == phys

  // INT 0x81 — the kernel-service dispatcher.
  kernel_.RegisterHostCall(kHostEntryKernelService,
                           [this](Kernel&) { HandleKernelService(); });
  // kSysInvokeKext: user processes trigger extension services through the
  // kernel (Figure 4, steps 4-5-9).
  kernel_.SetKextInvoker([this](Kernel&, u32 function_id, u32 arg, bool* ok) {
    InvokeResult r = Invoke(function_id, arg);
    *ok = r.ok;
    return r.value;
  });

  // Pre-registered core kernel services.
  RegisterService(kKsvcPrintk, [this](Kernel& k, u32 ptr, u32 len, u32) -> u32 {
    // `ptr` is segment-relative within the *current* extension segment; the
    // dispatcher stores it in service_ext_ before calling us.
    const ExtensionState* ext = extension(service_ext_);
    if (ext == nullptr || len > 4096 || ptr + len > ext->span) return kErrFault;
    std::string buf(len, '\0');
    if (!k.ReadKernelVirt(ext->linear_base + ptr, buf.data(), len)) return kErrFault;
    printk_output_ += buf;
    return len;
  });
  RegisterService(kKsvcGetCycles, [](Kernel& k, u32, u32, u32) -> u32 {
    return static_cast<u32>(k.cpu().cycles());
  });
  RegisterService(kKsvcPktOutput, [this](Kernel&, u32, u32, u32) -> u32 {
    ++packets_output_;
    return 0;
  });
}

std::optional<u32> KernelExtensionManager::LoadExtension(const std::string& name,
                                                         const ObjectFile& obj,
                                                         std::string* diag,
                                                         const KextOptions& options) {
  ExtensionState* seg = nullptr;
  u32 ext_id = 0;
  if (options.into_segment != 0) {
    auto it = extensions_.find(options.into_segment);
    if (it == extensions_.end()) {
      if (diag != nullptr) *diag = "no such extension segment";
      return std::nullopt;
    }
    // Modules sharing a segment share its stack and can link against each
    // other's symbols (Section 4.3).
    seg = &it->second;
    ext_id = options.into_segment;
  } else {
    // First-fit from the free list (regions returned by UnloadExtension), so
    // repeated load/unload cycles reuse addresses instead of exhausting the
    // kext region — and so stale-translation bugs at a reused base would show.
    u32 region_offset = 0;
    bool reused = false;
    for (auto rit = free_regions_.begin(); rit != free_regions_.end(); ++rit) {
      if (rit->second >= options.segment_span) {
        region_offset = rit->first;
        if (rit->second > options.segment_span) {
          rit->first += options.segment_span;
          rit->second -= options.segment_span;
        } else {
          free_regions_.erase(rit);
        }
        reused = true;
        break;
      }
    }
    if (!reused) {
      if (next_region_offset_ + options.segment_span > kKextRegionSpan) {
        if (diag != nullptr) *diag = "kernel extension region exhausted";
        return std::nullopt;
      }
      region_offset = next_region_offset_;
      next_region_offset_ += options.segment_span;
    }
    ext_id = next_ext_id_++;
    ExtensionState st;
    st.name = name;
    st.linear_base = kKextRegionBase + region_offset;
    st.span = options.segment_span;
    st.cycle_limit = options.cycle_limit;
    // Stack at the top of the segment; stubs right below it.
    st.stack_top = st.span;
    st.stub_bump = st.span - options.stack_bytes - kPageSize;
    st.link_bump = 0;

    // GDT: one code and one data descriptor, both DPL 1, confined to the
    // segment (Figure 3).
    u16 cs_slot = kernel_.gdt().AllocateSlot(kGdtFirstDynamic);
    kernel_.gdt().Set(cs_slot, SegmentDescriptor::MakeCode(st.linear_base, st.span, kSpl1));
    u16 ds_slot = kernel_.gdt().AllocateSlot(kGdtFirstDynamic);
    kernel_.gdt().Set(ds_slot, SegmentDescriptor::MakeData(st.linear_base, st.span, kSpl1));
    st.code_selector = Selector::FromIndex(cs_slot, 1).raw();
    st.data_selector = Selector::FromIndex(ds_slot, 1).raw();

    // Map the whole segment in kernel space (present supervisor pages; the
    // confinement is purely segment-level, as in the paper).
    for (u32 off = 0; off < st.span; off += kPageSize) {
      if (kernel_.MapKernelPage(st.linear_base + off) == 0) {
        if (diag != nullptr) *diag = "out of frames for extension segment";
        return std::nullopt;
      }
    }
    seg = &extensions_.emplace(ext_id, std::move(st)).first->second;
  }

  // Link the module segment-relative at the segment's bump pointer; imports
  // resolve against modules already in this segment.
  std::map<std::string, u32> imports = seg->symbols;
  LinkError lerr;
  auto img = LinkImage(obj, seg->link_bump, imports, &lerr);
  if (!img) {
    if (diag != nullptr) *diag = "link: " + lerr.message;
    return std::nullopt;
  }
  if (img->TotalSpan() + seg->link_bump > seg->stub_bump) {
    if (diag != nullptr) *diag = "module does not fit in extension segment";
    return std::nullopt;
  }
  if (!kernel_.WriteKernelVirt(seg->linear_base + seg->link_bump + (img->text_start - img->base),
                               img->bytes.data(), static_cast<u32>(img->bytes.size()))) {
    if (diag != nullptr) *diag = "cannot write extension segment";
    return std::nullopt;
  }
  seg->link_bump = PageAlignUp(seg->link_bump + img->TotalSpan());

  // Register every global text symbol of this module as an extension service
  // entry point (the module's registration step in Section 4.3).
  for (const Symbol& sym : obj.symbols) {
    if (!sym.defined) continue;
    auto addr = img->Lookup(sym.name);
    if (!addr) continue;
    seg->symbols[sym.name] = *addr;
    if (sym.name == "pd_shared") seg->shared_offset = *addr;
    if (!sym.global || sym.section != SectionId::kText) continue;
    // Transfer stub: call f ; lcall kernel-return-gate.
    std::string stub_diag;
    auto stub = AssembleAndLink(KextTransferStubSource(*addr, kKernelReturnGateSel.raw()),
                                seg->stub_bump, {}, &stub_diag);
    if (!stub || !kernel_.WriteKernelVirt(seg->linear_base + seg->stub_bump,
                                          stub->bytes.data(),
                                          static_cast<u32>(stub->bytes.size()))) {
      if (diag != nullptr) *diag = "cannot emit transfer stub: " + stub_diag;
      return std::nullopt;
    }
    FunctionEntry entry;
    entry.ext_id = ext_id;
    entry.name = seg->name + ":" + sym.name;
    entry.transfer_offset = seg->stub_bump;
    eft_.push_back(std::move(entry));
    seg->stub_bump += 2 * kInsnSize;
  }
  ++loads_;
  return ext_id;
}

void KernelExtensionManager::UnloadExtension(u32 ext_id) {
  auto it = extensions_.find(ext_id);
  if (it == extensions_.end()) return;
  ExtensionState& ext = it->second;
  kernel_.gdt().Clear(Selector(ext.code_selector).index());
  kernel_.gdt().Clear(Selector(ext.data_selector).index());
  // Tombstone (never erase) this extension's EFT entries: function ids are
  // indices held by live callers (e.g. dataplane flows), so erasing entries
  // would silently rebind every later id to the wrong function.
  for (FunctionEntry& e : eft_) {
    if (e.ext_id == ext_id) {
      e.ext_id = 0;
      e.name.clear();
      e.transfer_offset = 0;
    }
  }
  // Queued async requests against the dead extension must not run.
  for (auto qit = async_queue_.begin(); qit != async_queue_.end();) {
    if (eft_[qit->first].ext_id == 0) {
      qit = async_queue_.erase(qit);
    } else {
      ++qit;
    }
  }
  // Unmap and free every page of the segment. UnmapKernelPage evicts each
  // frame from every vCPU's decode cache (and trace tier) and the kernel-
  // range PTE shootdown flushes all TLBs/D-TLBs, so no stale translation of
  // the dead image survives a reload at the same linear base.
  for (u32 off = 0; off < ext.span; off += kPageSize) {
    kernel_.UnmapKernelPage(ext.linear_base + off);
  }
  // Return the region for first-fit reuse by the next LoadExtension.
  free_regions_.emplace_back(ext.linear_base - kKextRegionBase, ext.span);
  ++unloads_;
  extensions_.erase(it);
}

std::optional<u32> KernelExtensionManager::FindFunction(const std::string& name) const {
  std::optional<u32> match;
  for (u32 i = 0; i < eft_.size(); ++i) {
    const FunctionEntry& e = eft_[i];
    if (e.ext_id == 0) continue;  // tombstone of an unloaded extension
    if (e.name == name) return i;
    // Suffix match on ":<fn>" for the unqualified form.
    if (e.name.size() > name.size() &&
        e.name.compare(e.name.size() - name.size() - 1, name.size() + 1, ":" + name) == 0) {
      if (match) return std::nullopt;  // ambiguous
      match = i;
    }
  }
  return match;
}

const KernelExtensionManager::ExtensionState* KernelExtensionManager::extension(
    u32 ext_id) const {
  auto it = extensions_.find(ext_id);
  return it == extensions_.end() ? nullptr : &it->second;
}

KernelExtensionManager::InvokeResult KernelExtensionManager::Abort(ExtensionState& ext,
                                                                   const std::string& reason,
                                                                   u32 charge) {
  // The paper: ~1,020 cycles of exception processing, then the kernel aborts
  // the offending extension without further cleanup.
  kernel_.Charge(charge);
  ext.aborted = true;
  ++aborts_;
  InvokeResult r;
  r.ok = false;
  r.error = reason;
  return r;
}

KernelExtensionManager::InvokeResult KernelExtensionManager::Invoke(u32 function_id, u32 arg) {
  InvokeResult result;
  if (function_id >= eft_.size() || eft_[function_id].ext_id == 0) {
    result.error = "no such extension function";
    return result;
  }
  const FunctionEntry& fn = eft_[function_id];
  ExtensionState& ext = extensions_.at(fn.ext_id);
  if (ext.aborted) {
    result.error = "extension was aborted";
    return result;
  }
  ++invocations_;

  Cpu& cpu = kernel_.cpu();
  const CpuContext saved = cpu.SaveContext();
  const u32 saved_cr3 = cpu.cr3();
  Tss saved_tss = cpu.tss();
  const u64 start_cycles = cpu.cycles();

  // Observability: the whole invocation is crossing overhead except the spans
  // the extension itself retires (kFilterBody, set around each inner Run).
  const u32 obs_cpu = kernel_.machine().current_cpu_index();
  const obs::Category prev_cat = kernel_.ProfileSet(obs::Category::kCrossing);
  obs::FlightRecorder* rec = kernel_.recorder();
  if (rec != nullptr) {
    rec->Record(obs_cpu, cpu.cycles(), obs::EventType::kCrossingEnter,
                obs::EventClass::kArch, function_id, arg);
  }

  // Ensure a kernel-capable address space and a safe inner PL0 stack for the
  // return gate (nested entries must not trample an in-progress syscall
  // frame on the per-process kernel stack).
  if (saved_cr3 == 0) cpu.LoadCr3(kernel_.kernel_cr3());
  cpu.tss().ss[0] = kKernelDsSel.raw();
  if (cpu.cpl() == 0 && cpu.seg(SegReg::kSs).valid) {
    cpu.tss().esp[0] = cpu.reg(Reg::kEsp) - 64;
  } else if (kernel_.current() != nullptr) {
    cpu.tss().esp[0] = kernel_.current()->esp0 - 256;
  } else {
    cpu.tss().esp[0] = idle_stack_top_;
  }

  auto restore = [&] {
    invoke_cycles_ += cpu.cycles() - start_cycles;
    cpu.RestoreContext(saved);
    if (saved_cr3 != cpu.cr3() && saved_cr3 != 0) cpu.LoadCr3(saved_cr3);
    cpu.tss() = saved_tss;
    if (rec != nullptr) {
      rec->Record(obs_cpu, cpu.cycles(), obs::EventType::kCrossingExit,
                  obs::EventClass::kArch, function_id, result.ok ? 1u : 0u);
    }
    kernel_.ProfileRestore(prev_cat);
  };

  // Kernel-side Prepare: enter the extension segment at SPL 1 with the
  // argument on the extension stack (Figure 4, step 5).
  cpu.ForceSegment(SegReg::kCs, Selector(ext.code_selector));
  cpu.ForceSegment(SegReg::kSs, Selector(ext.data_selector));
  cpu.ForceSegment(SegReg::kDs, Selector(ext.data_selector));
  cpu.ForceSegment(SegReg::kEs, Selector(ext.data_selector));
  cpu.set_cpl(kSpl1);
  // Extensions run with interrupts open (when the machine has a live timer):
  // a runaway extension is detected and killed *asynchronously* by the timer
  // watchdog — the paper's safe-termination claim — instead of by the
  // cooperative run-loop deadline below.
  if (kernel_.interrupts_enabled()) cpu.set_eflags(cpu.eflags() | kFlagIf);
  cpu.set_reg(Reg::kEsp, ext.stack_top - 4);
  u32 arg_le = arg;
  kernel_.WriteKernelVirt(ext.linear_base + ext.stack_top - 4, &arg_le, 4);
  cpu.set_eip(eft_[function_id].transfer_offset);
  // Model the kernel-side sequence that stages the call (mirrors Prepare).
  kernel_.Charge(26);

  // Cooperative deadline: the exact limit when the timer cannot interrupt,
  // a generous backstop (timer granularity is the real detector) otherwise.
  const u64 deadline = cpu.cycles() + (kernel_.interrupts_enabled() ? ext.cycle_limit * 16
                                                                    : ext.cycle_limit);
  for (;;) {
    kernel_.ProfileSet(obs::Category::kFilterBody);
    StopInfo stop = cpu.Run(deadline);
    kernel_.ProfileSet(obs::Category::kCrossing);
    switch (stop.reason) {
      case StopReason::kHostCall:
        if (stop.host_call_id >= kHostEntryIrqBase &&
            stop.host_call_id < kHostEntryIrqBase + kNumIrqVectors) {
          const u32 irq = stop.host_call_id - kHostEntryIrqBase;
          // Kernel context is not preemptible: service the device, then
          // apply the extension watchdog on the timer line.
          kernel_.HandleIrqFromGate(irq, /*in_kernel_context=*/true);
          if (irq == kIrqTimer && cpu.cycles() - start_cycles > ext.cycle_limit) {
            result = Abort(ext, "extension exceeded its CPU-time limit (timer watchdog)",
                           kernel_.costs().kext_gp_processing);
            result.cycles = cpu.cycles() - start_cycles;
            restore();
            return result;
          }
          continue;
        }
        if (stop.host_call_id == kHostEntryKextReturn) {
          result.ok = true;
          result.value = cpu.reg(Reg::kEax);
          result.cycles = cpu.cycles() - start_cycles;
          restore();
          return result;
        }
        if (stop.host_call_id == kHostEntryKernelService) {
          service_ext_ = fn.ext_id;
          HandleKernelService();
          continue;
        }
        if (stop.host_call_id == kHostEntrySyscall) {
          // Kernel extensions cannot make arbitrary system calls (Section
          // 4.1): treat as a protection violation and abort.
          result = Abort(ext, "extension attempted a system call",
                         kernel_.costs().kext_gp_processing);
          result.cycles = cpu.cycles() - start_cycles;
          restore();
          return result;
        }
        result = Abort(ext, "extension reached an unknown kernel entry",
                       kernel_.costs().kext_gp_processing);
        result.cycles = cpu.cycles() - start_cycles;
        restore();
        return result;
      case StopReason::kFault:
        result = Abort(ext, "extension fault: " + FaultToString(stop.fault),
                       kernel_.costs().kext_gp_processing);
        result.cycles = cpu.cycles() - start_cycles;
        restore();
        return result;
      case StopReason::kCycleLimit:
        result = Abort(ext, "extension exceeded its CPU-time limit",
                       kernel_.costs().kext_gp_processing);
        result.cycles = cpu.cycles() - start_cycles;
        restore();
        return result;
      case StopReason::kHalted:
        result = Abort(ext, "extension executed hlt", kernel_.costs().kext_gp_processing);
        result.cycles = cpu.cycles() - start_cycles;
        restore();
        return result;
    }
  }
}

void KernelExtensionManager::HandleKernelService() {
  Cpu& cpu = kernel_.cpu();
  const u32 nr = cpu.reg(Reg::kEax);
  const u32 ebx = cpu.reg(Reg::kEbx);
  const u32 ecx = cpu.reg(Reg::kEcx);
  const u32 edx = cpu.reg(Reg::kEdx);
  u32 result = kErrNoEnt;
  auto it = services_.find(nr);
  if (it != services_.end()) result = it->second(kernel_, ebx, ecx, edx);
  kernel_.ReturnFromGate(result);
}

void KernelExtensionManager::RegisterService(u32 number, ServiceFn fn) {
  services_[number] = std::move(fn);
}

bool KernelExtensionManager::EnqueueAsync(u32 function_id, u32 arg) {
  if (function_id >= eft_.size() || eft_[function_id].ext_id == 0) return false;
  ExtensionState& ext = extensions_.at(eft_[function_id].ext_id);
  if (ext.aborted) return false;
  ext.busy = true;
  async_queue_.emplace_back(function_id, arg);
  return true;
}

u32 KernelExtensionManager::DrainAsync() {
  u32 executed = 0;
  while (!async_queue_.empty()) {
    auto [fid, arg] = async_queue_.front();
    async_queue_.pop_front();
    Invoke(fid, arg);
    ++executed;
    auto eit = extensions_.find(eft_[fid].ext_id);
    if (eit == extensions_.end()) continue;  // unloaded while draining
    bool more = false;
    for (const auto& [qfid, _] : async_queue_) {
      if (eft_[qfid].ext_id == eft_[fid].ext_id) more = true;
    }
    eit->second.busy = more;
  }
  return executed;
}

bool KernelExtensionManager::IsBusy(u32 ext_id) const {
  auto it = extensions_.find(ext_id);
  return it != extensions_.end() && it->second.busy;
}

std::optional<u32> KernelExtensionManager::SharedAreaOffset(u32 ext_id) const {
  auto it = extensions_.find(ext_id);
  if (it == extensions_.end()) return std::nullopt;
  return it->second.shared_offset;
}

bool KernelExtensionManager::WriteShared(u32 ext_id, u32 offset, const void* src, u32 len) {
  const ExtensionState* ext = extension(ext_id);
  if (ext == nullptr || !ext->shared_offset || *ext->shared_offset + offset + len > ext->span) {
    return false;
  }
  return kernel_.WriteKernelVirt(ext->linear_base + *ext->shared_offset + offset, src, len);
}

bool KernelExtensionManager::ReadShared(u32 ext_id, u32 offset, void* dst, u32 len) {
  const ExtensionState* ext = extension(ext_id);
  if (ext == nullptr || !ext->shared_offset || *ext->shared_offset + offset + len > ext->span) {
    return false;
  }
  return kernel_.ReadKernelVirt(ext->linear_base + *ext->shared_offset + offset, dst, len);
}

}  // namespace palladium
