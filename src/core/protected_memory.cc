#include "src/core/protected_memory.h"

#include "src/hw/paging.h"

namespace palladium {

namespace {
// Windows live above the kernel-extension region.
constexpr u32 kWindowRegionBase = 0xD8000000;
}  // namespace

ProtectedMemoryService::ProtectedMemoryService(Kernel& kernel)
    : kernel_(kernel), next_window_base_(kWindowRegionBase) {}

ProtectedMemoryService::Handle ProtectedMemoryService::CreateRegion(u32 pages) {
  if (pages == 0) return 0;
  Region region;
  region.frames.reserve(pages);
  for (u32 i = 0; i < pages; ++i) {
    u32 frame = kernel_.frames().Alloc();
    if (frame == 0) {
      for (u32 f : region.frames) kernel_.frames().Free(f);
      return 0;
    }
    region.frames.push_back(frame);
    // Evict the frame from the kernel direct map: after this, *no* linear
    // address in any address space reaches it.
    PageTableEditor ed(kernel_.machine().pm(), kernel_.kernel_cr3());
    ed.Unmap(kKernelBase + frame);
    kernel_.cpu().tlb().FlushPage(kKernelBase + frame);
  }
  region.window_base = next_window_base_;
  next_window_base_ += PageAlignUp(pages * kPageSize) + kPageSize;  // guard gap
  Handle handle = next_handle_++;
  regions_[handle] = std::move(region);
  return handle;
}

void ProtectedMemoryService::DestroyRegion(Handle handle) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return;
  CloseWindow(handle);
  for (u32 f : it->second.frames) {
    // Restore the direct mapping before returning the frame to the pool.
    PageTableEditor ed(kernel_.machine().pm(), kernel_.kernel_cr3());
    ed.Map(kKernelBase + f, f, kPtePresent | kPteWrite, [] { return 0u; });
    kernel_.frames().Free(f);
  }
  regions_.erase(it);
}

bool ProtectedMemoryService::Read(Handle handle, u32 offset, void* dst, u32 len) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return false;
  const Region& region = it->second;
  if (offset + len < offset || offset + len > region.frames.size() * kPageSize) return false;
  u8* out = static_cast<u8*>(dst);
  while (len > 0) {
    u32 page = offset / kPageSize, in_page = offset % kPageSize;
    u32 chunk = std::min(len, kPageSize - in_page);
    if (!kernel_.machine().pm().ReadBlock(region.frames[page] + in_page, out, chunk)) {
      return false;
    }
    offset += chunk;
    out += chunk;
    len -= chunk;
  }
  return true;
}

bool ProtectedMemoryService::Write(Handle handle, u32 offset, const void* src, u32 len) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return false;
  const Region& region = it->second;
  if (offset + len < offset || offset + len > region.frames.size() * kPageSize) return false;
  const u8* in = static_cast<const u8*>(src);
  while (len > 0) {
    u32 page = offset / kPageSize, in_page = offset % kPageSize;
    u32 chunk = std::min(len, kPageSize - in_page);
    if (!kernel_.machine().pm().WriteBlock(region.frames[page] + in_page, in, chunk)) {
      return false;
    }
    offset += chunk;
    in += chunk;
    len -= chunk;
  }
  return true;
}

std::optional<u16> ProtectedMemoryService::OpenWindow(Handle handle) {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return std::nullopt;
  Region& region = it->second;
  if (region.open) return Selector::FromIndex(region.gdt_slot, 0).raw();
  PageTableEditor ed(kernel_.machine().pm(), kernel_.kernel_cr3());
  for (u32 i = 0; i < region.frames.size(); ++i) {
    if (!ed.Map(region.window_base + i * kPageSize, region.frames[i],
                kPtePresent | kPteWrite, [] { return 0u; })) {
      return std::nullopt;
    }
    kernel_.cpu().tlb().FlushPage(region.window_base + i * kPageSize);
  }
  // A segment covering exactly the window: trusted code may load it and gets
  // limit-checked access; everything else still has no mapping to the frames
  // except through this window range.
  region.gdt_slot = kernel_.gdt().AllocateSlot(kGdtFirstDynamic);
  kernel_.gdt().Set(region.gdt_slot,
                    SegmentDescriptor::MakeData(
                        region.window_base,
                        static_cast<u32>(region.frames.size()) * kPageSize, /*dpl=*/0));
  region.open = true;
  return Selector::FromIndex(region.gdt_slot, 0).raw();
}

void ProtectedMemoryService::CloseWindow(Handle handle) {
  auto it = regions_.find(handle);
  if (it == regions_.end() || !it->second.open) return;
  Region& region = it->second;
  PageTableEditor ed(kernel_.machine().pm(), kernel_.kernel_cr3());
  for (u32 i = 0; i < region.frames.size(); ++i) {
    ed.Unmap(region.window_base + i * kPageSize);
    kernel_.cpu().tlb().FlushPage(region.window_base + i * kPageSize);
  }
  kernel_.gdt().Clear(region.gdt_slot);
  region.open = false;
}

bool ProtectedMemoryService::IsWindowOpen(Handle handle) const {
  auto it = regions_.find(handle);
  return it != regions_.end() && it->second.open;
}

std::optional<u32> ProtectedMemoryService::WindowBase(Handle handle) const {
  auto it = regions_.find(handle);
  if (it == regions_.end()) return std::nullopt;
  return it->second.window_base;
}

u32 ProtectedMemoryService::region_pages(Handle handle) const {
  auto it = regions_.find(handle);
  return it == regions_.end() ? 0 : static_cast<u32>(it->second.frames.size());
}

}  // namespace palladium
