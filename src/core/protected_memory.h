// Protected memory service — the paper's second "on-going work" direction
// (Section 6): using the protection hardware to keep wild pointers and
// random software errors away from specific physical memory regions.
//
// Mechanism: a protected region's frames are evicted from the kernel direct
// map, so no linear address reaches them — not even from supervisor code.
// Access happens either through host-side accessors (the "protected
// procedure" interface) or through an explicitly opened *window*: the region
// is temporarily mapped at a dedicated linear range guarded by its own
// segment descriptor, and unmapped again when the window closes.
#ifndef SRC_CORE_PROTECTED_MEMORY_H_
#define SRC_CORE_PROTECTED_MEMORY_H_

#include <map>
#include <optional>
#include <vector>

#include "src/kernel/kernel.h"

namespace palladium {

class ProtectedMemoryService {
 public:
  using Handle = u32;

  explicit ProtectedMemoryService(Kernel& kernel);

  // Allocates a region of `pages` frames and removes them from every
  // address space. Returns 0 on exhaustion.
  Handle CreateRegion(u32 pages);
  void DestroyRegion(Handle handle);

  // Host-side accessors (always legal; they go straight to physical memory,
  // standing in for the service's protected procedures).
  bool Read(Handle handle, u32 offset, void* dst, u32 len);
  bool Write(Handle handle, u32 offset, const void* src, u32 len);

  // Opens an access window: maps the region at its reserved kernel linear
  // range and installs a DPL 0 data segment covering exactly the region.
  // Returns the segment selector trusted simulated code should load.
  std::optional<u16> OpenWindow(Handle handle);
  void CloseWindow(Handle handle);
  bool IsWindowOpen(Handle handle) const;

  // The linear base a region occupies while its window is open (for
  // simulated code that addresses it via the flat kernel segment).
  std::optional<u32> WindowBase(Handle handle) const;

  u32 region_pages(Handle handle) const;

 private:
  struct Region {
    std::vector<u32> frames;
    u32 window_base = 0;   // reserved linear range (fixed per region)
    u16 gdt_slot = 0;      // segment descriptor slot while open
    bool open = false;
  };

  Kernel& kernel_;
  std::map<Handle, Region> regions_;
  Handle next_handle_ = 1;
  u32 next_window_base_;
};

}  // namespace palladium

#endif  // SRC_CORE_PROTECTED_MEMORY_H_
