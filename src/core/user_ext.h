// Palladium's user-level extension mechanism (paper Sections 4.4 and 4.5):
// extension segments that span the same 0–3 GB range as the application but
// at SPL 3 / PPL 1, the seg_dlopen / seg_dlsym / seg_dlclose loading family,
// per-function Prepare/Transfer stubs with a per-application AppCallGate,
// application services exposed through call gates, and the xmalloc runtime.
//
// The loader/bookkeeping logic runs as host code (standing in for a
// user-level runtime library); all protection-relevant state — stubs, gates,
// PPL bits, the read-only GOT — is simulated-machine state enforced by the
// simulated segmentation and paging hardware.
#ifndef SRC_CORE_USER_EXT_H_
#define SRC_CORE_USER_EXT_H_

#include <map>
#include <optional>
#include <string>

#include "src/core/trampoline.h"
#include "src/dl/dynamic_linker.h"
#include "src/kernel/kernel.h"

namespace palladium {

class UserExtensionRuntime {
 public:
  struct CostModel {
    u32 dlopen_cycles = 80'000;      // ~400 us at 200 MHz (paper Section 5.1)
    u32 seg_dlopen_extra = 600;      // PPL-marking startup beyond plain dlopen
    u32 stub_generation = 400;       // per seg_dlsym stub pair
  };

  // Region layout (user VAS).
  static constexpr u32 kRuntimeBase = 0x5E000000;   // Prepare stubs + slots (PPL 0)
  static constexpr u32 kRuntimeSpan = 0x10000;
  static constexpr u32 kFirstExtensionBase = 0x60000000;
  static constexpr u32 kExtensionStride = 0x01000000;
  static constexpr u32 kExtensionStackPages = 16;
  static constexpr u32 kExtensionHeapPages = 64;

  UserExtensionRuntime(Kernel& kernel, DynamicLinker& dl);

  // --- The seg_dl* API (host-level; also reachable via syscalls 212–217) ----
  // Returns a handle (> 0) or a negative errno-style value.
  i64 SegDlopen(Pid pid, const std::string& name, std::string* diag);
  // Returns the address of the generated Prepare stub — the "massaged"
  // function pointer of Section 4.5.1 — or a negative value.
  i64 SegDlsym(Pid pid, u32 handle, const std::string& function);
  // Raw symbol address (for data pointers; paper: use dlsym, not seg_dlsym).
  i64 Dlsym(Pid pid, u32 handle, const std::string& symbol);
  bool SegDlclose(Pid pid, u32 handle);
  // The unprotected baseline: maps the same object as ordinary application
  // code (PPL 0 under the policy); Dlsym then yields directly callable
  // pointers. Used by the paper's "unprotected function call" comparisons.
  i64 DlopenUnprotected(Pid pid, const std::string& name, std::string* diag);

  // Exposes an application function to extensions through a call gate
  // (Section 4.5.1). Extensions import it as `gate_<name>` and invoke it
  // with `lcall`. Must be called before loading extensions that use it.
  i64 ExposeAppService(Pid pid, const std::string& name, u32 function_addr);

  struct ExtensionInfo {
    std::string name;
    bool isolated = false;  // true for seg_dlopen, false for the baseline
    bool closed = false;
    u32 base = 0, end = 0;
    u32 stack_top = 0;
    u32 arg_slot = 0;
    u32 heap_base = 0, heap_limit = 0;
    u32 got_page = 0;
    u32 transfer_page = 0;
    std::map<std::string, u32> symbols;
    std::map<std::string, u32> prepare_stubs;  // function -> Prepare address
  };
  const ExtensionInfo* extension(Pid pid, u32 handle) const;
  // The per-application runtime slots (for tests and benches).
  std::optional<TrampolineSlots> slots(Pid pid) const;
  std::optional<u16> app_gate_selector(Pid pid) const;

  CostModel& costs() { return costs_; }

 private:
  struct PerProcess {
    bool ready = false;
    u32 rt_bump = 0;
    TrampolineSlots slots;
    u32 app_gate_addr = 0;
    u16 app_gate_selector = 0;
    std::map<u32, ExtensionInfo> extensions;
    u32 next_handle = 1;
    std::map<std::string, u16> services;  // name -> gate selector
  };

  bool EnsureRuntime(Pid pid, Process& proc, std::string* diag);
  // Assembles `source` at `addr` inside the process and copies it in.
  bool PlaceStub(Process& proc, u32 addr, const std::string& source,
                 const std::map<std::string, u32>& imports, std::string* diag);
  void RegisterSyscalls();

  Kernel& kernel_;
  DynamicLinker& dl_;
  CostModel costs_;
  std::map<Pid, PerProcess> per_process_;
};

}  // namespace palladium

#endif  // SRC_CORE_USER_EXT_H_
