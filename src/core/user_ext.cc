#include "src/core/user_ext.h"

#include "src/asm/assembler.h"

namespace palladium {

namespace {

constexpr i64 kFailPerm = -1;
constexpr i64 kFailNoEnt = -2;
constexpr i64 kFailFault = -14;
constexpr i64 kFailNoMem = -12;

}  // namespace

UserExtensionRuntime::UserExtensionRuntime(Kernel& kernel, DynamicLinker& dl)
    : kernel_(kernel), dl_(dl) {
  RegisterSyscalls();
}

bool UserExtensionRuntime::PlaceStub(Process& proc, u32 addr, const std::string& source,
                                     const std::map<std::string, u32>& imports,
                                     std::string* diag) {
  auto img = AssembleAndLink(source, addr, imports, diag);
  if (!img) return false;
  return kernel_.CopyToUser(proc, addr, img->bytes.data(),
                            static_cast<u32>(img->bytes.size()));
}

bool UserExtensionRuntime::EnsureRuntime(Pid pid, Process& proc, std::string* diag) {
  PerProcess& pp = per_process_[pid];
  if (pp.ready) return true;
  if (proc.task_spl != 2) {
    if (diag != nullptr) *diag = "application must call init_PL before loading extensions";
    return false;
  }
  if (!kernel_.AddArea(proc, kRuntimeBase, kRuntimeBase + kRuntimeSpan,
                       kProtRead | kProtWrite | kProtExec, "pd-runtime") ||
      !kernel_.PopulateRange(proc, kRuntimeBase, kRuntimeBase + kRuntimeSpan)) {
    if (diag != nullptr) *diag = "cannot allocate runtime area";
    return false;
  }
  // Slot words first, stubs after. The area is writable => PPL 0 under the
  // policy, so extensions can neither read nor corrupt the saved pointers.
  pp.slots.sp2_slot = kRuntimeBase;
  pp.slots.bp2_slot = kRuntimeBase + 4;
  pp.rt_bump = kRuntimeBase + 64;

  pp.app_gate_addr = pp.rt_bump;
  if (!PlaceStub(proc, pp.app_gate_addr, AppCallGateSource(pp.slots), {}, diag)) return false;
  pp.rt_bump += 4 * kInsnSize;

  u16 slot = kernel_.gdt().AllocateSlot(kGdtFirstDynamic);
  kernel_.gdt().Set(slot, SegmentDescriptor::MakeCallGate(kAppCsSel.raw(), pp.app_gate_addr,
                                                          /*dpl=*/3));
  pp.app_gate_selector = Selector::FromIndex(slot, 3).raw();
  pp.ready = true;
  return true;
}

i64 UserExtensionRuntime::SegDlopen(Pid pid, const std::string& name, std::string* diag) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) return kFailNoEnt;
  if (!EnsureRuntime(pid, *proc, diag)) return kFailPerm;
  PerProcess& pp = per_process_[pid];
  const ObjectFile* obj = dl_.FindObject(name);
  if (obj == nullptr) {
    if (diag != nullptr) *diag = "no such extension object: " + name;
    return kFailNoEnt;
  }

  const u32 handle = pp.next_handle++;
  const u32 base = kFirstExtensionBase + (handle - 1) * kExtensionStride;

  // Layout: [image][libx][GOT page][transfer page][heap][stack]. The image
  // span is computed from section sizes (conservatively page-rounded).
  LinkError lerr;
  const u32 image_span =
      (PageAlignUp(base + static_cast<u32>(obj->text.size())) - base) +
      PageAlignUp(static_cast<u32>(obj->data.size()) + obj->bss_size);
  const u32 libx_base = PageAlignUp(base + image_span);

  AssembleError aerr;
  auto libx_obj = Assemble(LibxSource(), &aerr);
  if (!libx_obj) {
    if (diag != nullptr) *diag = "libx: " + aerr.ToString();
    return kFailFault;
  }
  // libx span: text + one data page.
  const u32 libx_span = PageAlignUp(static_cast<u32>(libx_obj->text.size())) + kPageSize;
  const u32 got_page = libx_base + libx_span;
  const u32 transfer_page = got_page + kPageSize;
  const u32 heap_base = transfer_page + kPageSize;
  const u32 heap_limit = heap_base + kExtensionHeapPages * kPageSize;
  const u32 stack_base = heap_limit;
  const u32 stack_top = stack_base + kExtensionStackPages * kPageSize;
  const u32 end = stack_top;

  auto libx_img = LinkImage(*libx_obj, libx_base,
                            {{"pd_heap_base", heap_base}, {"pd_heap_limit", heap_limit}}, &lerr);
  if (!libx_img) {
    if (diag != nullptr) *diag = "libx link: " + lerr.message;
    return kFailFault;
  }

  // Build the import map: libx exports, shared-library exports, GOT slots
  // (got_*), and application-service gate selectors (gate_*).
  std::map<std::string, u32> imports;
  for (const auto& [sym, addr] : libx_img->symbols) imports[sym] = addr;
  for (const auto& [sym, addr] : dl_.ExportedSymbols(pid)) imports.emplace(sym, addr);
  std::vector<std::string> got_symbols;
  for (const std::string& undef : obj->UndefinedSymbols()) {
    if (undef.rfind("got_", 0) == 0) {
      imports[undef] = got_page + 4 * static_cast<u32>(got_symbols.size());
      got_symbols.push_back(undef.substr(4));
    } else if (undef.rfind("gate_", 0) == 0) {
      auto it = pp.services.find(undef.substr(5));
      if (it == pp.services.end()) {
        if (diag != nullptr) *diag = "extension imports unknown app service: " + undef;
        return kFailNoEnt;
      }
      imports[undef] = it->second;
    }
  }
  auto img = LinkImage(*obj, base, imports, &lerr);
  if (!img) {
    if (diag != nullptr) *diag = "extension link: " + lerr.message;
    return kFailFault;
  }

  // Materialize the segment: every page PPL 1 (the area is marked shared so
  // the PPL-0 policy skips it), spanning the same 0–3 GB address range as
  // the application.
  if (!kernel_.AddArea(*proc, base, end, kProtRead | kProtWrite | kProtExec, "extension")) {
    if (diag != nullptr) *diag = "extension area overlaps";
    return kFailNoMem;
  }
  proc->areas.back().shared_ppl1 = true;
  if (!kernel_.PopulateRange(*proc, base, end) ||
      !kernel_.CopyToUser(*proc, base, img->bytes.data(), static_cast<u32>(img->bytes.size())) ||
      !kernel_.CopyToUser(*proc, libx_base, libx_img->bytes.data(),
                          static_cast<u32>(libx_img->bytes.size()))) {
    if (diag != nullptr) *diag = "cannot materialize extension";
    return kFailNoMem;
  }
  if (!got_symbols.empty()) {
    auto slots = dl_.BuildGot(pid, got_page, got_symbols, diag);
    if (!slots) return kFailFault;
  }

  ExtensionInfo info;
  info.name = name;
  info.isolated = true;
  info.base = base;
  info.end = end;
  info.stack_top = stack_top;
  info.arg_slot = stack_top - 4;
  info.heap_base = heap_base;
  info.heap_limit = heap_limit;
  info.got_page = got_page;
  info.transfer_page = transfer_page;
  info.symbols = img->symbols;
  for (const auto& [sym, addr] : libx_img->symbols) info.symbols.emplace(sym, addr);
  pp.extensions[handle] = std::move(info);

  // Loading cost: dlopen plus the PPL-marking pass that makes seg_dlopen
  // ~20 us slower than dlopen (Section 5.1).
  const u32 pages = (end - base) / kPageSize;
  kernel_.Charge(costs_.dlopen_cycles + costs_.seg_dlopen_extra +
                 pages * kernel_.costs().ppl_mark_per_page);
  return handle;
}

i64 UserExtensionRuntime::DlopenUnprotected(Pid pid, const std::string& name,
                                            std::string* diag) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) return kFailNoEnt;
  PerProcess& pp = per_process_[pid];
  const ObjectFile* obj = dl_.FindObject(name);
  if (obj == nullptr) {
    if (diag != nullptr) *diag = "no such extension object: " + name;
    return kFailNoEnt;
  }
  const u32 handle = pp.next_handle++;
  const u32 base = kFirstExtensionBase + (handle - 1) * kExtensionStride;
  const u32 image_span =
      (PageAlignUp(base + static_cast<u32>(obj->text.size())) - base) +
      PageAlignUp(static_cast<u32>(obj->data.size()) + obj->bss_size);
  const u32 heap_base = PageAlignUp(base + image_span);
  const u32 heap_limit = heap_base + kExtensionHeapPages * kPageSize;

  std::map<std::string, u32> imports;
  for (const auto& [sym, addr] : dl_.ExportedSymbols(pid)) imports.emplace(sym, addr);
  // Unprotected extensions get a private bump heap too, for API parity.
  AssembleError aerr;
  auto libx_obj = Assemble(LibxSource(), &aerr);
  LinkError lerr;
  const u32 libx_base = heap_limit;
  auto libx_img = LinkImage(*libx_obj, libx_base,
                            {{"pd_heap_base", heap_base}, {"pd_heap_limit", heap_limit}}, &lerr);
  if (!libx_img) {
    if (diag != nullptr) *diag = "libx link: " + lerr.message;
    return kFailFault;
  }
  for (const auto& [sym, addr] : libx_img->symbols) imports.emplace(sym, addr);
  auto img = LinkImage(*obj, base, imports, &lerr);
  if (!img) {
    if (diag != nullptr) *diag = "extension link: " + lerr.message;
    return kFailFault;
  }
  const u32 end = libx_base + PageAlignUp(static_cast<u32>(libx_img->bytes.size())) + kPageSize;
  if (!kernel_.AddArea(*proc, base, end, kProtRead | kProtWrite | kProtExec, "dlopen") ||
      !kernel_.PopulateRange(*proc, base, end) ||
      !kernel_.CopyToUser(*proc, base, img->bytes.data(), static_cast<u32>(img->bytes.size())) ||
      !kernel_.CopyToUser(*proc, libx_base, libx_img->bytes.data(),
                          static_cast<u32>(libx_img->bytes.size()))) {
    if (diag != nullptr) *diag = "cannot materialize module";
    return kFailNoMem;
  }

  ExtensionInfo info;
  info.name = name;
  info.isolated = false;
  info.base = base;
  info.end = end;
  info.heap_base = heap_base;
  info.heap_limit = heap_limit;
  info.symbols = img->symbols;
  for (const auto& [sym, addr] : libx_img->symbols) info.symbols.emplace(sym, addr);
  pp.extensions[handle] = std::move(info);
  kernel_.Charge(costs_.dlopen_cycles);
  return handle;
}

i64 UserExtensionRuntime::SegDlsym(Pid pid, u32 handle, const std::string& function) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) return kFailNoEnt;
  PerProcess& pp = per_process_[pid];
  auto it = pp.extensions.find(handle);
  if (it == pp.extensions.end() || it->second.closed) return kFailNoEnt;
  ExtensionInfo& ext = it->second;
  if (!ext.isolated) {
    // Plain dlopen handle: seg_dlsym degenerates to dlsym.
    return Dlsym(pid, handle, function);
  }
  auto cached = ext.prepare_stubs.find(function);
  if (cached != ext.prepare_stubs.end()) return cached->second;
  auto fn = ext.symbols.find(function);
  if (fn == ext.symbols.end()) return kFailNoEnt;

  std::string diag;
  // Transfer stub in the extension segment (SPL 3 code).
  const u32 transfer_addr =
      ext.transfer_page + static_cast<u32>(ext.prepare_stubs.size()) * 2 * kInsnSize;
  if (transfer_addr + 2 * kInsnSize > ext.transfer_page + kPageSize) return kFailNoMem;
  if (!PlaceStub(*proc, transfer_addr,
                 TransferStubSource(fn->second, pp.app_gate_selector), {}, &diag)) {
    return kFailFault;
  }
  // Prepare stub in the application's runtime area (SPL 2 code).
  const u32 prepare_addr = pp.rt_bump;
  const std::string prepare_src =
      PrepareStubSource(pp.slots, ext.arg_slot, ext.stack_top - 4, kUserCsSel.raw(),
                        kUserDsSel.raw(), transfer_addr);
  if (!PlaceStub(*proc, prepare_addr, prepare_src, {}, &diag)) return kFailFault;
  pp.rt_bump += 10 * kInsnSize;

  ext.prepare_stubs[function] = prepare_addr;
  kernel_.Charge(costs_.stub_generation);
  return prepare_addr;
}

i64 UserExtensionRuntime::Dlsym(Pid pid, u32 handle, const std::string& symbol) {
  PerProcess& pp = per_process_[pid];
  auto it = pp.extensions.find(handle);
  if (it == pp.extensions.end() || it->second.closed) return kFailNoEnt;
  auto sym = it->second.symbols.find(symbol);
  if (sym == it->second.symbols.end()) return kFailNoEnt;
  return sym->second;
}

bool UserExtensionRuntime::SegDlclose(Pid pid, u32 handle) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) return false;
  PerProcess& pp = per_process_[pid];
  auto it = pp.extensions.find(handle);
  if (it == pp.extensions.end() || it->second.closed) return false;
  kernel_.UnmapArea(*proc, it->second.base, it->second.end);
  it->second.closed = true;
  return true;
}

i64 UserExtensionRuntime::ExposeAppService(Pid pid, const std::string& name,
                                           u32 function_addr) {
  Process* proc = kernel_.process(pid);
  if (proc == nullptr) return kFailNoEnt;
  std::string diag;
  if (!EnsureRuntime(pid, *proc, &diag)) return kFailPerm;
  PerProcess& pp = per_process_[pid];
  const u32 stub_addr = pp.rt_bump;
  const u32 gate_frame = proc->pl2_stack_top - 16;
  if (!PlaceStub(*proc, stub_addr, AppServiceStubSource(function_addr, gate_frame), {},
                 &diag)) {
    return kFailFault;
  }
  pp.rt_bump += 6 * kInsnSize;
  u16 slot = kernel_.gdt().AllocateSlot(kGdtFirstDynamic);
  kernel_.gdt().Set(slot,
                    SegmentDescriptor::MakeCallGate(kAppCsSel.raw(), stub_addr, /*dpl=*/3));
  u16 sel = Selector::FromIndex(slot, 3).raw();
  pp.services[name] = sel;
  return sel;
}

const UserExtensionRuntime::ExtensionInfo* UserExtensionRuntime::extension(Pid pid,
                                                                           u32 handle) const {
  auto pit = per_process_.find(pid);
  if (pit == per_process_.end()) return nullptr;
  auto it = pit->second.extensions.find(handle);
  return it == pit->second.extensions.end() ? nullptr : &it->second;
}

std::optional<TrampolineSlots> UserExtensionRuntime::slots(Pid pid) const {
  auto pit = per_process_.find(pid);
  if (pit == per_process_.end() || !pit->second.ready) return std::nullopt;
  return pit->second.slots;
}

std::optional<u16> UserExtensionRuntime::app_gate_selector(Pid pid) const {
  auto pit = per_process_.find(pid);
  if (pit == per_process_.end() || !pit->second.ready) return std::nullopt;
  return pit->second.app_gate_selector;
}

void UserExtensionRuntime::RegisterSyscalls() {
  auto with_string = [this](u32 ptr, std::string* out) {
    Process* proc = kernel_.current();
    if (proc == nullptr) return false;
    auto s = kernel_.ReadUserString(*proc, ptr);
    if (!s) return false;
    *out = *s;
    return true;
  };

  kernel_.RegisterSyscall(kSysSegDlopen, [this, with_string](Kernel& k, u32 ebx, u32, u32) {
    std::string name, diag;
    if (!with_string(ebx, &name)) {
      k.ReturnFromGate(kErrFault);
      return;
    }
    k.ReturnFromGate(static_cast<u32>(SegDlopen(k.current()->pid, name, &diag)));
  });
  kernel_.RegisterSyscall(kSysDlopenUnprot, [this, with_string](Kernel& k, u32 ebx, u32, u32) {
    std::string name, diag;
    if (!with_string(ebx, &name)) {
      k.ReturnFromGate(kErrFault);
      return;
    }
    k.ReturnFromGate(static_cast<u32>(DlopenUnprotected(k.current()->pid, name, &diag)));
  });
  kernel_.RegisterSyscall(kSysSegDlsym, [this, with_string](Kernel& k, u32 ebx, u32 ecx, u32) {
    std::string fn;
    if (!with_string(ecx, &fn)) {
      k.ReturnFromGate(kErrFault);
      return;
    }
    k.ReturnFromGate(static_cast<u32>(SegDlsym(k.current()->pid, ebx, fn)));
  });
  kernel_.RegisterSyscall(kSysDlsym, [this, with_string](Kernel& k, u32 ebx, u32 ecx, u32) {
    std::string sym;
    if (!with_string(ecx, &sym)) {
      k.ReturnFromGate(kErrFault);
      return;
    }
    k.ReturnFromGate(static_cast<u32>(Dlsym(k.current()->pid, ebx, sym)));
  });
  kernel_.RegisterSyscall(kSysSegDlclose, [this](Kernel& k, u32 ebx, u32, u32) {
    k.ReturnFromGate(SegDlclose(k.current()->pid, ebx) ? 0 : kErrNoEnt);
  });
  kernel_.RegisterSyscall(kSysExposeService, [this, with_string](Kernel& k, u32 ebx, u32 ecx,
                                                                 u32) {
    std::string name;
    if (!with_string(ebx, &name)) {
      k.ReturnFromGate(kErrFault);
      return;
    }
    k.ReturnFromGate(static_cast<u32>(ExposeAppService(k.current()->pid, name, ecx)));
  });
}

}  // namespace palladium
