// Generators for the control-transfer stubs of Figure 6 in the paper:
// Prepare (SPL 2), Transfer (SPL 3), AppCallGate (SPL 2), the application-
// service stub, the per-extension xmalloc runtime, and the kernel-extension
// Transfer stub. Each returns assembly text; the runtimes assemble and place
// them at their final addresses.
//
// A logical call from a more-privileged to a less-privileged domain is
// implemented as two intra-domain calls plus an inter-domain lret; the
// logical return is two intra-domain rets plus an inter-domain lcall.
#ifndef SRC_CORE_TRAMPOLINE_H_
#define SRC_CORE_TRAMPOLINE_H_

#include <string>

#include "src/hw/types.h"

namespace palladium {

// Layout of the per-application trampoline slots (inside the PPL 0 runtime
// area, so extensions can neither read nor corrupt the saved pointers).
struct TrampolineSlots {
  u32 sp2_slot = 0;  // saved application ESP
  u32 bp2_slot = 0;  // saved application EBP
};

// Prepare (runs at SPL 2, called like a normal function by the application):
// copies the 4-byte argument to the extension stack, saves ESP/EBP, builds
// the phantom activation record, and lret's into Transfer at SPL 3.
std::string PrepareStubSource(const TrampolineSlots& slots, u32 ext_arg_slot,
                              u32 ext_stack_ptr, u16 ext_cs_selector, u16 ext_ss_selector,
                              u32 transfer_addr);

// Transfer (runs at SPL 3, inside the extension segment): local call to the
// extension function, then inter-domain lcall through the AppCallGate.
std::string TransferStubSource(u32 ext_function_addr, u16 app_gate_selector);

// AppCallGate (runs at SPL 2; the call-gate target): restores the saved
// stack/base pointers and returns to the original caller.
std::string AppCallGateSource(const TrampolineSlots& slots);

// Application-service stub (SPL 2; target of a service call gate): switches
// to the *extension's* stack so standard parameter passing works (Section
// 4.5.1), calls the real service, and lrets back to the extension.
// `gate_frame_addr` is where the hardware builds the 4-word entry frame
// (PL2 stack top - 16); the stub returns there for the lret. One gate entry
// may be outstanding at a time (extensions run to completion).
std::string AppServiceStubSource(u32 service_function_addr, u32 gate_frame_addr);

// The extension-side allocation runtime (xmalloc/xfree of Section 4.4.2):
// a bump allocator over the extension segment's heap. Linked into every
// extension with pd_heap_base / pd_heap_limit resolved by the loader.
std::string LibxSource();

// Kernel-extension Transfer stub (runs at SPL 1): local call to the
// extension function, then lcall through the kernel return gate.
std::string KextTransferStubSource(u32 function_offset, u16 kernel_return_gate_selector);

}  // namespace palladium

#endif  // SRC_CORE_TRAMPOLINE_H_
