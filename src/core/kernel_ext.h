// Palladium's kernel extension mechanism (paper Section 4.3): extension
// segments at SPL 1 carved out of the kernel address space, the modified-
// insmod loader, the Extension Function Table, synchronous and asynchronous
// invocation, shared data areas, and the kernel-service gate (INT 0x81).
#ifndef SRC_CORE_KERNEL_EXT_H_
#define SRC_CORE_KERNEL_EXT_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/asm/object_file.h"
#include "src/kernel/kernel.h"

namespace palladium {

struct KextOptions {
  u32 segment_span = 1u << 20;   // 1 MB extension segment
  u32 stack_bytes = 16 * 1024;   // one stack per segment (paper)
  u64 cycle_limit = 2'000'000;   // per-invocation CPU-time cap
  u32 into_segment = 0;          // 0 = new segment; else an existing ext id
};

class KernelExtensionManager {
 public:
  using Options = KextOptions;

  struct InvokeResult {
    bool ok = false;
    u32 value = 0;
    u64 cycles = 0;  // cycles consumed by the invocation
    std::string error;
  };

  using ServiceFn = std::function<u32(Kernel&, u32 ebx, u32 ecx, u32 edx)>;

  explicit KernelExtensionManager(Kernel& kernel);

  // The modified-insmod path: links `obj` segment-relative, maps an SPL 1
  // extension segment in kernel space, installs code/data/stack, generates a
  // Transfer stub per global text symbol, and registers those functions in
  // the Extension Function Table. Returns the extension id.
  std::optional<u32> LoadExtension(const std::string& name, const ObjectFile& obj,
                                   std::string* diag, const KextOptions& options = KextOptions{});

  void UnloadExtension(u32 ext_id);

  // Extension Function Table lookup: "<ext-name>:<function>" or, if
  // unambiguous, just "<function>". Returns the function id.
  std::optional<u32> FindFunction(const std::string& name) const;

  // Synchronous protected invocation at SPL 1, from kernel context. `arg` is
  // the single 4-byte argument of the extension call model.
  InvokeResult Invoke(u32 function_id, u32 arg);

  // Asynchronous extensions: the kernel enqueues a request, marks the module
  // busy, and returns; queued requests run to completion later.
  bool EnqueueAsync(u32 function_id, u32 arg);
  u32 DrainAsync();  // runs all pending requests; returns the count executed
  bool IsBusy(u32 ext_id) const;

  // Shared data area: the module's exported `pd_shared` symbol (Section
  // 4.3); kernel and extension exchange bulk data (e.g. packet headers)
  // through it without copying through syscall boundaries.
  std::optional<u32> SharedAreaOffset(u32 ext_id) const;  // segment-relative
  bool WriteShared(u32 ext_id, u32 offset, const void* src, u32 len);
  bool ReadShared(u32 ext_id, u32 offset, void* dst, u32 len);

  // Kernel services callable from extensions via INT 0x81 (EAX = number).
  // printk / get-cycles / packet-output are pre-registered.
  void RegisterService(u32 number, ServiceFn fn);
  u64 packets_output() const { return packets_output_; }
  const std::string& printk_output() const { return printk_output_; }
  void ClearPrintk() { printk_output_.clear(); }

  struct ExtensionState {
    std::string name;
    u32 linear_base = 0;  // kernel-linear base of the segment
    u32 span = 0;
    u16 code_selector = 0;
    u16 data_selector = 0;
    u32 stack_top = 0;    // segment-relative
    u32 link_bump = 0;    // next free segment-relative offset for modules
    u32 stub_bump = 0;    // transfer-stub allocation (segment-relative)
    u64 cycle_limit = 0;
    bool aborted = false;
    bool busy = false;
    std::map<std::string, u32> symbols;  // segment-relative
    std::optional<u32> shared_offset;
  };
  const ExtensionState* extension(u32 ext_id) const;

  struct FunctionEntry {
    u32 ext_id = 0;  // 0 = tombstone (extension unloaded; id stays reserved)
    std::string name;
    u32 transfer_offset = 0;  // segment-relative entry for Invoke
  };
  const std::vector<FunctionEntry>& function_table() const { return eft_; }

  // Lifetime / invocation counters for the obs layer.
  u64 loads() const { return loads_; }
  u64 unloads() const { return unloads_; }
  u64 invocations() const { return invocations_; }
  u64 aborts() const { return aborts_; }
  u64 invoke_cycles() const { return invoke_cycles_; }

 private:
  void HandleKernelService();
  InvokeResult Abort(ExtensionState& ext, const std::string& reason, u32 charge);

  Kernel& kernel_;
  std::map<u32, ExtensionState> extensions_;
  u32 next_ext_id_ = 1;
  u32 next_region_offset_ = 0;  // within [kKextRegionBase, +kKextRegionSpan)
  // Regions returned by UnloadExtension, as (region offset, span) pairs;
  // LoadExtension reuses them first-fit before bumping next_region_offset_.
  std::vector<std::pair<u32, u32>> free_regions_;
  std::vector<FunctionEntry> eft_;
  std::map<u32, ServiceFn> services_;
  std::deque<std::pair<u32, u32>> async_queue_;  // (function id, arg)
  u32 idle_stack_top_ = 0;  // kernel-segment offset for no-process invocations
  u64 packets_output_ = 0;
  u32 service_ext_ = 0;  // extension id whose service call is being handled
  std::string printk_output_;
  u64 loads_ = 0;
  u64 unloads_ = 0;
  u64 invocations_ = 0;
  u64 aborts_ = 0;
  u64 invoke_cycles_ = 0;  // total cycles spent inside Invoke (incl. crossing)
};

}  // namespace palladium

#endif  // SRC_CORE_KERNEL_EXT_H_
