#include "src/rpc/rpc.h"

namespace palladium {

std::optional<std::vector<u8>> LocalRpcChannel::Call(const std::string& method,
                                                     const std::vector<u8>& request) {
  auto it = handlers_.find(method);
  if (it == handlers_.end()) return std::nullopt;
  // Request marshalling: client -> socket buffer -> server. The copies are
  // real; the surrounding syscall/scheduling cost is modeled.
  socket_buffer_.assign(request.begin(), request.end());
  cycles_ += costs_.per_byte_cycles * request.size();
  std::vector<u8> server_view(socket_buffer_.begin(), socket_buffer_.end());

  std::vector<u8> reply = it->second(server_view);

  // Reply marshalling: server -> socket buffer -> client.
  socket_buffer_.assign(reply.begin(), reply.end());
  cycles_ += costs_.per_byte_cycles * reply.size();
  std::vector<u8> client_view(socket_buffer_.begin(), socket_buffer_.end());

  cycles_ += costs_.base_cycles;
  ++calls_;
  bytes_marshalled_ += request.size() + reply.size();
  return client_view;
}

}  // namespace palladium
