// Local (same-machine, socket-based) RPC: the baseline of Table 2. Linux's
// RPC facility is socket-based and not optimized for intra-machine calls;
// this model performs real marshalling (byte copies through a simulated
// socket buffer) and charges a calibrated cycle cost for the syscall,
// scheduling, and protocol path that dominates the paper's ~350 us figure.
#ifndef SRC_RPC_RPC_H_
#define SRC_RPC_RPC_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

struct RpcCosts {
  // Calibrated to Table 2: 349.19 us at 32 B and 423.33 us at 256 B on a
  // 200 MHz machine -> ~67,700 base cycles + ~33 cycles/byte/direction.
  u64 base_cycles = 67'700;
  u64 per_byte_cycles = 33;  // per direction (request and reply both copied)
  // Context switches and protection-domain crossings of a request-reply
  // transaction (2 switches, 4 crossings — Section 2.2), already folded into
  // base_cycles; kept separately for reporting.
  u32 context_switches = 2;
  u32 domain_crossings = 4;
};

class LocalRpcChannel {
 public:
  using Handler = std::function<std::vector<u8>(const std::vector<u8>&)>;

  explicit LocalRpcChannel(const RpcCosts& costs = RpcCosts{}) : costs_(costs) {}

  void Bind(const std::string& method, Handler handler) {
    handlers_[method] = std::move(handler);
  }

  // Client call: marshals the request into the socket buffer, "switches" to
  // the server, runs the handler, marshals the reply back. Returns the reply
  // or nullopt for an unbound method. Cycle cost accumulates in cycles().
  std::optional<std::vector<u8>> Call(const std::string& method,
                                      const std::vector<u8>& request);

  u64 cycles() const { return cycles_; }
  void ResetCycles() { cycles_ = 0; }
  const RpcCosts& costs() const { return costs_; }
  // Counters for the obs layer: completed request-reply transactions and
  // bytes marshalled (both directions).
  u64 calls() const { return calls_; }
  u64 bytes_marshalled() const { return bytes_marshalled_; }

 private:
  RpcCosts costs_;
  std::map<std::string, Handler> handlers_;
  std::vector<u8> socket_buffer_;
  u64 cycles_ = 0;
  u64 calls_ = 0;
  u64 bytes_marshalled_ = 0;
};

}  // namespace palladium

#endif  // SRC_RPC_RPC_H_
