#include "src/net/dataplane.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/asm/assembler.h"
#include "src/filter/filter.h"
#include "src/net/packet.h"
#include "src/obs/trace.h"

namespace palladium {

// The NIC computes its RSS hash over hard-coded wire offsets (the hw layer
// does not include net headers); pin them to the net layer's view here.
static_assert(kOffIpProto == 23, "NIC RSS hash offset drifted from packet.h");
static_assert(kOffIpSrc == 26, "NIC RSS hash offset drifted from packet.h");
static_assert(kOffSrcPort == 34, "NIC RSS hash offset drifted from packet.h");

u32 PacketDataplane::FlowHash(const std::vector<u8>& frame) {
  // One hash for hardware queue placement and software worker steering:
  // with workers round-robin homed across vCPUs (worker w on cpu w % N) and
  // the worker count a multiple of the queue count, a frame's RSS queue and
  // its steered worker land on the same core.
  return Nic::RssHash(frame.data(), static_cast<u32>(frame.size()));
}

PacketDataplane::PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic)
    : PacketDataplane(kernel, kext, nic, Config{}) {}

PacketDataplane::PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic,
                                 const Config& config)
    : kernel_(kernel), kext_(kext), nic_(nic), config_(config) {
  if (std::getenv("PALLADIUM_NO_NAPI") != nullptr) {
    // The switchable oracle: single queue, one IRQ per DMA'd frame, one
    // protected crossing per frame — the pipeline this PR replaced.
    // Differential tests assert identical served/dropped/match accounting
    // against the fast path.
    config_.napi = false;
    config_.filter_batch = 1;
    config_.queues = 1;
    config_.rx_irq_moderation = 0;
  }
  config_.queues = std::max(1u, std::min({config_.queues, kernel_.num_cpus(), kNicMaxQueues}));
  config_.filter_batch = std::max(1u, std::min(config_.filter_batch, kMaxFilterBatch));
  if (config_.napi_poll_budget == 0) config_.napi_poll_budget = 1;
  rx_consume_.assign(config_.queues, 0);
  tx_produce_.assign(config_.queues, 0);

  // Rings: one descriptor page per direction per queue, one buffer frame per
  // descriptor (frames need not be contiguous — descriptors carry their
  // buffer's physical address, as on real hardware).
  PhysicalMemory& pm = kernel_.machine().pm();
  auto build_ring = [&](u32 entries, bool hw_owned) {
    NicRing ring;
    ring.desc_phys = kernel_.frames().Alloc();
    if (ring.desc_phys == 0) return ring;  // out of frames: empty ring, NIC drops
    ring.count = std::min(entries, kPageSize / kNicDescBytes);
    ring.buf_stride = std::min(config_.buf_stride, kPageSize);
    for (u32 i = 0; i < ring.count; ++i) {
      const u32 buf = kernel_.frames().Alloc();
      if (buf == 0) {
        // Frame exhaustion mid-build: truncate to the descriptors that got
        // real buffers rather than DMA-ing into physical page 0.
        ring.count = i;
        break;
      }
      const u32 desc = ring.desc_phys + i * kNicDescBytes;
      pm.Write32(desc + kNicDescStatus, hw_owned ? kDescOwn : 0);
      pm.Write32(desc + kNicDescLen, 0);
      pm.Write32(desc + kNicDescBuf, buf);
    }
    return ring;
  };
  nic_.SetQueueCount(config_.queues);
  nic_.set_rx_irq_moderation(config_.rx_irq_moderation);
  for (u32 q = 0; q < config_.queues; ++q) {
    // Queue q interrupts core q's local PIC and is advanced by core q's IRQ
    // hub: each core owns exactly its queue's ring, IRQs and poll loop.
    nic_.WireQueue(q, &kernel_.pic(q), kIrqNic, kIrqNicTx);
    nic_.ConfigureRx(q, build_ring(config_.rx_ring_entries, /*hw_owned=*/true));
    nic_.ConfigureTx(q, build_ring(config_.tx_ring_entries, /*hw_owned=*/false));
    // NAPI drivers reclaim completed TX descriptors in the xmit path
    // (Transmit reuses kDescDone slots directly), so the TX-completion line
    // stays off — one less dispatch per completion batch. The oracle keeps
    // it on and pays the interrupt, as the old pipeline did implicitly by
    // completing the ring synchronously.
    nic_.SetTxIrqEnabled(q, !config_.napi);
    kernel_.irq_hub(q).AddDevice(nic_.queue_device(q));
  }
  kernel_.RegisterIrqHandler(kIrqNic, [this](Kernel&) { ServiceRx(); });
  kernel_.RegisterIrqHandler(kIrqNicTx, [this](Kernel&) { OnTxComplete(); });
  kernel_.RegisterSyscall(kSysPktRecv, [this](Kernel&, u32 ebx, u32 ecx, u32 edx) {
    SysPktRecv(ebx, ecx, edx);
  });
  kernel_.RegisterSyscall(kSysPktSend, [this](Kernel&, u32 ebx, u32 ecx, u32) {
    SysPktSend(ebx, ecx);
  });
  kernel_.RegisterSyscall(kSysPktRecvM, [this](Kernel&, u32 ebx, u32 ecx, u32 edx) {
    SysPktRecvM(ebx, ecx, edx);
  });
  kernel_.RegisterSyscall(kSysPktSendM, [this](Kernel&, u32 ebx, u32 ecx, u32) {
    SysPktSendM(ebx, ecx);
  });
}

PacketDataplane::~PacketDataplane() {
  kernel_.UnregisterIrqHandler(kIrqNic);
  kernel_.UnregisterIrqHandler(kIrqNicTx);
  kernel_.UnregisterSyscall(kSysPktRecv);
  kernel_.UnregisterSyscall(kSysPktSend);
  kernel_.UnregisterSyscall(kSysPktRecvM);
  kernel_.UnregisterSyscall(kSysPktSendM);
  for (u32 q = 0; q < config_.queues; ++q) {
    kernel_.irq_hub(q).RemoveDevice(nic_.queue_device(q));
  }
}

std::optional<PacketDataplane::CompiledFilter> PacketDataplane::LoadFilterExtension(
    const std::string& kext_name, const std::string& filter_text, std::string* diag) {
  std::string err;
  auto expr = ParseFilter(filter_text, &err);
  if (!expr) {
    if (diag != nullptr) *diag = "parse: " + err;
    return std::nullopt;
  }
  // Shared area: the single-frame image at +0/+4 and the batch records at
  // +16 overlap in use, never in time; capacity covers the larger layout.
  const u32 stride = 4 + ((config_.buf_stride + 3) & ~3u);
  const u32 capacity =
      std::max(config_.buf_stride + 16, kFilterBatchBase + kMaxFilterBatch * stride);
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr, capacity, stride), &aerr);
  if (!obj) {
    if (diag != nullptr) *diag = "assemble: " + aerr.ToString();
    return std::nullopt;
  }
  auto ext = kext_.LoadExtension(kext_name, *obj, diag);
  if (!ext) return std::nullopt;
  auto fid = kext_.FindFunction(kext_name + ":filter_run");
  if (!fid) {
    if (diag != nullptr) *diag = "compiled filter exports no filter_run";
    kext_.UnloadExtension(*ext);
    return std::nullopt;
  }
  CompiledFilter out;
  out.ext_id = *ext;
  out.function_id = *fid;
  auto bfid = kext_.FindFunction(kext_name + ":filter_run_batch");
  if (bfid) {
    out.has_batch = true;
    out.batch_function_id = *bfid;
    out.batch_stride = stride;
  }
  return out;
}

bool PacketDataplane::AddFlow(const std::string& name, const std::string& filter_text,
                              std::vector<Pid> dests, std::string* diag) {
  auto cf = LoadFilterExtension(name, filter_text, diag);
  if (!cf) return false;
  if (!AddFlowFunction(name, cf->ext_id, cf->function_id, std::move(dests))) return false;
  flows_.back().batch_function_id = cf->batch_function_id;
  flows_.back().has_batch = cf->has_batch;
  flows_.back().batch_stride = cf->batch_stride;
  return true;
}

bool PacketDataplane::UpgradeFlow(const std::string& name, const std::string& filter_text,
                                  std::string* diag) {
  FlowInfo* flow = nullptr;
  for (FlowInfo& f : flows_) {
    if (f.name == name) {
      flow = &f;
      break;
    }
  }
  if (flow == nullptr || flow->dead) {
    if (diag != nullptr) *diag = "no such live flow: " + name;
    return false;
  }
  // Load v2 under a versioned extension name so both images coexist across
  // the swap (the old EFT entries stay live until the flow points away).
  const std::string vname = name + "#v" + std::to_string(++upgrade_seq_);
  auto cf = LoadFilterExtension(vname, filter_text, diag);
  if (!cf) return false;
  const u32 old_ext = flow->ext_id;
  // The swap: host code between classification runs, so every frame is
  // classified by exactly the old or exactly the new image — never dropped.
  flow->ext_id = cf->ext_id;
  flow->function_id = cf->function_id;
  flow->batch_function_id = cf->batch_function_id;
  flow->has_batch = cf->has_batch;
  flow->batch_stride = cf->batch_stride;
  // Retire the old image: pages unmapped and freed, decode/trace entries
  // evicted on every vCPU, TLBs/D-TLBs shot down, region reusable.
  kext_.UnloadExtension(old_ext);
  ++stats_.flow_upgrades;
  return true;
}

bool PacketDataplane::AddFlowFunction(const std::string& name, u32 ext_id, u32 function_id,
                                      std::vector<Pid> dests) {
  FlowInfo flow;
  flow.name = name;
  flow.ext_id = ext_id;
  flow.function_id = function_id;
  flow.dests = std::move(dests);
  flows_.push_back(std::move(flow));
  for (Pid pid : flows_.back().dests) all_dests_.push_back(pid);
  return true;
}

bool PacketDataplane::AllDestsSaturated(Process** blocker) {
  bool any_live = false;
  Process* first_full = nullptr;
  for (const FlowInfo& flow : flows_) {
    if (flow.dead) continue;
    for (Pid pid : flow.dests) {
      Process* proc = kernel_.process(pid);
      if (proc == nullptr ||
          (proc->state != ProcessState::kRunnable && proc->state != ProcessState::kBlocked)) {
        continue;
      }
      any_live = true;
      if (proc->pkt_queue.size() < proc->pkt_queue_limit) return false;
      if (first_full == nullptr) first_full = proc;
    }
  }
  // No live destination at all is the dead-dest case, not backpressure —
  // classification still runs and Deliver accounts dropped_dead_dest.
  if (!any_live) return false;
  *blocker = first_full;
  return true;
}

bool PacketDataplane::Deliver(FlowInfo& flow, const std::vector<u8>& frame) {
  Process* first_full = nullptr;
  // RSS steering anchors the probe sequence at the flow-hash slot so a wire
  // flow sticks to one worker; round-robin rotates the anchor every frame.
  if (config_.steering == FlowSteering::kFlowHash && !flow.dests.empty()) {
    flow.next_dest = FlowHash(frame) % static_cast<u32>(flow.dests.size());
  }
  for (u32 attempt = 0; attempt < flow.dests.size(); ++attempt) {
    const Pid pid = flow.dests[flow.next_dest];
    flow.next_dest = (flow.next_dest + 1) % static_cast<u32>(flow.dests.size());
    Process* proc = kernel_.process(pid);
    if (proc == nullptr ||
        (proc->state != ProcessState::kRunnable && proc->state != ProcessState::kBlocked)) {
      continue;  // round-robin past dead workers
    }
    if (proc->pkt_queue.size() >= proc->pkt_queue_limit) {
      // A stalled worker must not sink the frame while siblings have room:
      // keep probing; the drop is charged only if every destination is full.
      if (first_full == nullptr) first_full = proc;
      continue;
    }
    proc->pkt_queue.push_back(frame);
    ++proc->pkts_delivered;
    ++stats_.delivered;
    if (obs::FlightRecorder* rec = kernel_.recorder()) {
      rec->Record(kernel_.machine().current_cpu_index(),
                  kernel_.machine().cpu().cycles(), obs::EventType::kFrameEnqueue,
                  obs::EventClass::kArch, pid,
                  static_cast<u32>(proc->pkt_queue.size()));
    }
    if (proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
    }
    return true;
  }
  if (first_full != nullptr) {
    ++stats_.dropped_queue_full;
    ++first_full->pkts_dropped;
  } else {
    ++stats_.dropped_dead_dest;
  }
  return false;
}

void PacketDataplane::ClassifyFrames(std::vector<std::vector<u8>>& frames) {
  const u32 n = static_cast<u32>(frames.size());
  if (n == 0) return;
  // Backpressure: every live destination is already saturated, so every
  // frame in this batch would be dropped after classification anyway — skip
  // the protected crossings entirely. (In the per-frame oracle this is
  // exactly the "check occupancy before paying the gate" fast-out.)
  {
    Process* blocker = nullptr;
    if (config_.backpressure && AllDestsSaturated(&blocker)) {
      for (u32 i = 0; i < n; ++i) {
        ++stats_.dropped_queue_full;
        ++stats_.filter_calls_avoided;
        if (blocker != nullptr) ++blocker->pkts_dropped;
      }
      return;
    }
  }
  // Phase 1, flow-major: compute each frame's first matching flow. Flows are
  // still consulted in registration order per frame (a frame matched by an
  // earlier flow is never offered to a later one); only the crossings are
  // batched. Filters are pure functions of the staged frame, so flow-major
  // invocation order cannot change any verdict.
  std::vector<i32> first_match(n, -1);
  std::vector<u32> idxs;
  for (u32 fi = 0; fi < flows_.size(); ++fi) {
    FlowInfo& flow = flows_[fi];
    if (flow.dead) continue;
    idxs.clear();
    for (u32 i = 0; i < n; ++i) {
      if (first_match[i] < 0) idxs.push_back(i);
    }
    if (idxs.empty()) break;
    u32 pos = 0;
    while (pos < static_cast<u32>(idxs.size()) && !flow.dead) {
      const u32 chunk =
          std::min<u32>(config_.filter_batch, static_cast<u32>(idxs.size()) - pos);
      if (chunk == 1 || !flow.has_batch) {
        // Single-frame ABI — also the oracle path (filter_batch == 1).
        const std::vector<u8>& frame = frames[idxs[pos]];
        const u32 len = static_cast<u32>(frame.size());
        if (!kext_.WriteShared(flow.ext_id, 0, &len, 4) ||
            !kext_.WriteShared(flow.ext_id, 4, frame.data(), len)) {
          flow.dead = true;
          break;
        }
        ++stats_.filter_invocations;
        ++stats_.filter_frames;
        auto r = kext_.Invoke(flow.function_id, len);
        if (!r.ok) {
          ++stats_.filter_aborts;
          flow.dead = true;  // aborted extensions stay dead; the flow is disabled
          break;
        }
        if (r.value == 1) first_match[idxs[pos]] = static_cast<i32>(fi);
        ++pos;
      } else {
        // Batched ABI: count at +0, [u32 len][bytes] records every
        // batch_stride bytes from +16; the filter returns a match bitmap.
        bool staged = kext_.WriteShared(flow.ext_id, 0, &chunk, 4);
        for (u32 j = 0; staged && j < chunk; ++j) {
          const std::vector<u8>& frame = frames[idxs[pos + j]];
          const u32 len = static_cast<u32>(frame.size());
          const u32 base = kFilterBatchBase + j * flow.batch_stride;
          staged = kext_.WriteShared(flow.ext_id, base, &len, 4) &&
                   kext_.WriteShared(flow.ext_id, base + 4, frame.data(), len);
        }
        if (!staged) {
          flow.dead = true;
          break;
        }
        ++stats_.filter_invocations;
        ++stats_.filter_batches;
        stats_.filter_frames += chunk;
        auto r = kext_.Invoke(flow.batch_function_id, chunk);
        if (!r.ok) {
          ++stats_.filter_aborts;
          flow.dead = true;
          break;
        }
        for (u32 j = 0; j < chunk; ++j) {
          if ((r.value >> j) & 1u) first_match[idxs[pos + j]] = static_cast<i32>(fi);
        }
        pos += chunk;
      }
    }
  }
  // Phase 2, strict frame order: the same accounting state machine the
  // per-frame oracle runs, so batch and oracle modes agree byte-for-byte on
  // matched/delivered/dropped counters. Saturation is re-checked per frame:
  // this batch's own deliveries can fill the last queue mid-batch.
  if (obs::FlightRecorder* rec = kernel_.recorder()) {
    u32 matched = 0;
    for (u32 i = 0; i < n; ++i) {
      if (first_match[i] >= 0) ++matched;
    }
    rec->Record(kernel_.machine().current_cpu_index(),
                kernel_.machine().cpu().cycles(), obs::EventType::kFrameClassify,
                obs::EventClass::kArch, n, matched);
  }
  for (u32 i = 0; i < n; ++i) {
    Process* blocker = nullptr;
    if (config_.backpressure && AllDestsSaturated(&blocker)) {
      ++stats_.dropped_queue_full;
      ++stats_.filter_calls_avoided;
      if (blocker != nullptr) ++blocker->pkts_dropped;
      continue;
    }
    if (first_match[i] < 0) {
      ++stats_.dropped_no_match;
      continue;
    }
    FlowInfo& flow = flows_[static_cast<u32>(first_match[i])];
    ++stats_.matched;
    ++flow.matched;
    Deliver(flow, frames[i]);
  }
}

void PacketDataplane::WakeOneWaiter() {
  // Round-robin over every registered destination: wake one worker blocked
  // in pkt_recv so somebody comes and classifies the backlog.
  if (all_dests_.empty()) return;
  for (u32 attempt = 0; attempt < all_dests_.size(); ++attempt) {
    const Pid pid = all_dests_[wake_cursor_];
    wake_cursor_ = (wake_cursor_ + 1) % static_cast<u32>(all_dests_.size());
    Process* proc = kernel_.process(pid);
    if (proc != nullptr && proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
      return;
    }
  }
}

u32 PacketDataplane::QueueForCurrentCpu() const {
  if (config_.queues <= 1) return 0;
  return kernel_.machine().current_cpu_index() % config_.queues;
}

void PacketDataplane::CollectRx(u32 q, u32 budget, std::vector<std::vector<u8>>* out) {
  PhysicalMemory& pm = kernel_.machine().pm();
  const NicRing& ring = nic_.rx_ring(q);
  if (ring.count == 0) return;
  while (static_cast<u32>(out->size()) < budget) {
    const u32 desc = ring.desc_phys + rx_consume_[q] * kNicDescBytes;
    u32 status = 0, len = 0, buf = 0;
    if (!pm.Read32(desc + kNicDescStatus, &status) || status != kDescDone) break;
    pm.Read32(desc + kNicDescLen, &len);
    pm.Read32(desc + kNicDescBuf, &buf);
    len = std::min(len, ring.buf_stride);
    std::vector<u8> frame(len);
    pm.ReadBlock(buf, frame.data(), len);
    // Return the descriptor to the hardware before classifying so a burst
    // arriving mid-filter still finds room.
    pm.Write32(desc + kNicDescStatus, kDescOwn);
    rx_consume_[q] = (rx_consume_[q] + 1) % ring.count;
    ++stats_.rx_frames;
    out->push_back(std::move(frame));
  }
}

void PacketDataplane::PollQueue(u32 q) {
  const u32 cpu = kernel_.machine().current_cpu_index();
  std::vector<std::vector<u8>> batch;
  for (;;) {
    batch.clear();
    CollectRx(q, config_.napi_poll_budget, &batch);
    if (batch.empty()) break;
    ++stats_.napi_polls;
    stats_.napi_frames += batch.size();
    kernel_.Charge(kernel_.costs().napi_poll +
                   static_cast<u32>(batch.size()) * kernel_.costs().napi_per_frame);
    if (obs::FlightRecorder* rec = kernel_.recorder()) {
      rec->Record(cpu, kernel_.machine().cpu().cycles(), obs::EventType::kNapiPoll,
                  obs::EventClass::kArch, q, static_cast<u32>(batch.size()));
    }
    if (config_.rps) {
      for (std::vector<u8>& frame : batch) {
        if (backlog_.size() >= config_.backlog_limit) {
          ++stats_.dropped_backlog_full;
        } else {
          backlog_.push_back(std::move(frame));
          WakeOneWaiter();
        }
      }
    } else {
      ClassifyFrames(batch);
    }
    // Let the wire catch up to the cycles classification consumed: frames
    // that arrived mid-poll DMA now (IRQ still masked) and are drained by
    // this same loop instead of raising fresh interrupts — the mechanism
    // that turns an IRQ per packet into an IRQ per burst.
    kernel_.irq_hub(cpu).AdvanceDevices(kernel_.machine().cpu().cycles());
  }
}

void PacketDataplane::ServiceQueue(u32 q) {
  if (config_.napi) {
    nic_.SetRxIrqEnabled(q, false);
    PollQueue(q);
    // Re-enable: the NIC re-raises only if DMA-complete descriptors are
    // still sitting in the ring (the driver's post-unmask race check).
    nic_.SetRxIrqEnabled(q, true);
    return;
  }
  // Legacy IRQ-per-frame drain (the oracle): one frame at a time, each
  // classified through a per-frame protected crossing.
  std::vector<std::vector<u8>> one;
  for (;;) {
    one.clear();
    CollectRx(q, 1, &one);
    if (one.empty()) break;
    if (config_.rps) {
      // RPS: the interrupt core only queues the raw frame; a worker's
      // pkt_recv runs the protected filter on its own vCPU.
      if (backlog_.size() >= config_.backlog_limit) {
        ++stats_.dropped_backlog_full;
      } else {
        backlog_.push_back(std::move(one.front()));
        WakeOneWaiter();
      }
    } else {
      ClassifyFrames(one);
    }
  }
}

void PacketDataplane::ServiceRx() {
  ++stats_.nic_irqs;
  if (in_service_) return;  // nested NIC IRQ during a filter run: outer loop drains
  in_service_ = true;
  ServiceQueue(QueueForCurrentCpu());
  in_service_ = false;
}

void PacketDataplane::OnTxComplete() {
  // Completion work (descriptor reclaim) is already done by the NIC's
  // Advance; the driver half only accounts the interrupt. Transmit reuses
  // kDescDone descriptors directly.
  ++stats_.tx_completion_irqs;
}

void PacketDataplane::DrainBacklog(bool drain_all) {
  if (in_classify_) return;  // a nested pkt_recv from filter context must not recurse
  in_classify_ = true;
  // Classify on the calling vCPU until the caller's queue has a frame (the
  // caller is always kernel_.current()) or the backlog runs dry. Deliveries
  // to other workers wake them; they drain their own share on their cores.
  // `drain_all` (shutdown) classifies everything regardless of the caller.
  Process* me = kernel_.current();
  std::vector<std::vector<u8>> batch;
  while (!backlog_.empty() && (drain_all || me == nullptr || me->pkt_queue.empty())) {
    batch.clear();
    const u32 k = std::min<u32>(config_.filter_batch, static_cast<u32>(backlog_.size()));
    for (u32 i = 0; i < k; ++i) {
      batch.push_back(std::move(backlog_.front()));
      backlog_.pop_front();
    }
    stats_.rps_deferred += k;
    ClassifyFrames(batch);
  }
  in_classify_ = false;
}

bool PacketDataplane::Transmit(const std::vector<u8>& frame) {
  const u32 q = QueueForCurrentCpu();
  PhysicalMemory& pm = kernel_.machine().pm();
  const NicRing& ring = nic_.tx_ring(q);
  if (ring.count == 0) return false;
  const u32 desc = ring.desc_phys + tx_produce_[q] * kNicDescBytes;
  u32 status = 0, buf = 0;
  pm.Read32(desc + kNicDescStatus, &status);
  if (status == kDescOwn) {
    // Ring full. The oldest pending completion frees exactly this slot
    // (full ring => completion head == produce cursor), so the driver spins
    // on the doorbell until it retires — honest backpressure, charged to
    // the sending vCPU. Zero-time ring completion was the old bug.
    const u64 at = nic_.NextTxCompletion(q);
    if (at == IrqDevice::kIdle) return false;  // full with nothing pending: misprogrammed
    Cpu& cpu = kernel_.machine().cpu();
    if (at > cpu.cycles()) kernel_.Charge(static_cast<u32>(at - cpu.cycles()));
    nic_.queue_device(q)->Advance(cpu.cycles());
    pm.Read32(desc + kNicDescStatus, &status);
    if (status == kDescOwn) return false;
  }
  pm.Read32(desc + kNicDescBuf, &buf);
  const u32 len = std::min<u32>(static_cast<u32>(frame.size()), ring.buf_stride);
  pm.WriteBlock(buf, frame.data(), len);
  pm.Write32(desc + kNicDescLen, len);
  pm.Write32(desc + kNicDescStatus, kDescOwn);
  tx_produce_[q] = (tx_produce_[q] + 1) % ring.count;
  // The doorbell only schedules descriptor DMA; completions land
  // tx_dma_cycles() apart and raise the TX-completion IRQ from Advance.
  nic_.TxKick(q, kernel_.machine().cpu().cycles());
  ++stats_.tx_frames;
  return true;
}

void PacketDataplane::SysPktRecv(u32 buf, u32 cap, u32 flags) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  // RPS: raw frames queued by the interrupt core get classified here, on
  // the consuming worker's vCPU — the filter cost lands on this core.
  if (config_.rps && proc.pkt_queue.empty() && !backlog_.empty()) DrainBacklog();
  if (proc.pkt_queue.empty()) {
    if (shutdown_) {
      kernel_.ReturnFromGate(kErrShutdown);
      return;
    }
    if (flags & 1) {
      kernel_.ReturnFromGate(kErrAgain);
      return;
    }
    proc.waiting_packet = true;
    kernel_.BlockCurrentForRestart();
    return;
  }
  const std::vector<u8>& pkt = proc.pkt_queue.front();
  const u32 n = std::min(cap, static_cast<u32>(pkt.size()));
  if (!kernel_.CopyToUser(proc, buf, pkt.data(), n)) {
    proc.pkt_queue.pop_front();
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  kernel_.Charge(n * kernel_.costs().pkt_copy_per_byte);
  proc.pkt_queue.pop_front();
  if (obs::FlightRecorder* rec = kernel_.recorder()) {
    rec->Record(kernel_.machine().current_cpu_index(),
                kernel_.machine().cpu().cycles(), obs::EventType::kFrameRecv,
                obs::EventClass::kArch, proc.pid, n);
  }
  kernel_.ReturnFromGate(n);
}

void PacketDataplane::SysPktSend(u32 buf, u32 len) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  if (len == 0 || len > nic_.tx_ring(QueueForCurrentCpu()).buf_stride) {
    kernel_.ReturnFromGate(kErrInval);
    return;
  }
  std::vector<u8> frame(len);
  if (!kernel_.CopyFromUser(proc, buf, frame.data(), len)) {
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  kernel_.Charge(len * kernel_.costs().pkt_copy_per_byte);
  if (tx_hook_) frame = tx_hook_(kernel_, proc, frame);
  if (!Transmit(frame)) {
    kernel_.ReturnFromGate(kErrAgain);
    return;
  }
  kernel_.ReturnFromGate(len);
}

void PacketDataplane::SysPktRecvM(u32 buf, u32 cap, u32 flags) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  if (config_.rps && proc.pkt_queue.empty() && !backlog_.empty()) DrainBacklog();
  if (proc.pkt_queue.empty()) {
    if (shutdown_) {
      kernel_.ReturnFromGate(kErrShutdown);
      return;
    }
    if (flags & 1) {
      kernel_.ReturnFromGate(kErrAgain);
      return;
    }
    proc.waiting_packet = true;
    kernel_.BlockCurrentForRestart();
    return;
  }
  // Assemble as many queued frames as fit into the caller's buffer as
  // [u32 len][bytes] records (4-byte aligned), then copy out once: the
  // recvmmsg idea — the gate + dispatch + base cost is paid once per batch,
  // only the per-frame copy and a small header cost scale with frames.
  std::vector<u8> out;
  u32 frames = 0;
  while (!proc.pkt_queue.empty()) {
    const std::vector<u8>& pkt = proc.pkt_queue.front();
    const u32 len = static_cast<u32>(pkt.size());
    const u32 rec = 4 + ((len + 3) & ~3u);
    if (static_cast<u32>(out.size()) + rec > cap) break;
    const size_t at = out.size();
    out.resize(at + rec, 0);
    std::memcpy(out.data() + at, &len, 4);
    std::memcpy(out.data() + at + 4, pkt.data(), len);
    kernel_.Charge(kernel_.costs().pkt_msg_overhead + len * kernel_.costs().pkt_copy_per_byte);
    proc.pkt_queue.pop_front();
    ++frames;
  }
  if (frames == 0) {
    kernel_.ReturnFromGate(kErrInval);  // buffer too small for even one frame
    return;
  }
  if (!kernel_.CopyToUser(proc, buf, out.data(), static_cast<u32>(out.size()))) {
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  kernel_.ReturnFromGate(static_cast<u32>(out.size()));
}

void PacketDataplane::SysPktSendM(u32 buf, u32 total) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  constexpr u32 kMaxBatchBytes = 65536;
  if (total < 8 || total > kMaxBatchBytes) {  // at least one header + one byte
    kernel_.ReturnFromGate(kErrInval);
    return;
  }
  std::vector<u8> data(total);
  if (!kernel_.CopyFromUser(proc, buf, data.data(), total)) {
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  const u32 stride_cap = nic_.tx_ring(QueueForCurrentCpu()).buf_stride;
  u32 off = 0;
  u32 sent = 0;
  while (off + 4 <= total) {
    u32 len = 0;
    std::memcpy(&len, data.data() + off, 4);
    if (len == 0) break;  // zero header terminates a partially-used buffer
    if (len > stride_cap || off + 4 + len > total) {
      if (sent == 0) {
        kernel_.ReturnFromGate(kErrInval);
        return;
      }
      break;
    }
    std::vector<u8> frame(data.begin() + off + 4, data.begin() + off + 4 + len);
    kernel_.Charge(kernel_.costs().pkt_msg_overhead + len * kernel_.costs().pkt_copy_per_byte);
    if (tx_hook_) frame = tx_hook_(kernel_, proc, frame);
    if (!Transmit(frame)) break;
    ++sent;
    off += 4 + ((len + 3) & ~3u);
  }
  kernel_.ReturnFromGate(sent);
}

void PacketDataplane::Shutdown() {
  shutdown_ = true;
  // RPS: flush the raw backlog (classified on the vCPU declaring shutdown)
  // so every frame that reached the host is accounted for before sleepers
  // are released.
  DrainBacklog(/*drain_all=*/true);
  for (Pid pid : all_dests_) {
    Process* proc = kernel_.process(pid);
    if (proc != nullptr && proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
    }
  }
}

}  // namespace palladium
