#include "src/net/dataplane.h"

#include <algorithm>

#include "src/asm/assembler.h"
#include "src/filter/filter.h"
#include "src/net/packet.h"

namespace palladium {

u32 PacketDataplane::FlowHash(const std::vector<u8>& frame) {
  // FNV-1a over the 5-tuple fields that exist; frames too short for a field
  // simply skip it (hash stays a pure function of the bytes present).
  u32 h = 2166136261u;
  auto mix = [&h](const u8* p, u32 len) {
    for (u32 i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 16777619u;
    }
  };
  if (frame.size() >= kOffIpSrc + 8) mix(&frame[kOffIpSrc], 8);  // src+dst ip
  if (frame.size() > kOffIpProto) mix(&frame[kOffIpProto], 1);
  if (frame.size() >= kOffSrcPort + 4) mix(&frame[kOffSrcPort], 4);  // both ports
  // Final avalanche (murmur3 fmix32): adjacent tuples (client n, port
  // 1024+n) must not collapse onto the same residue class mod small worker
  // counts.
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

PacketDataplane::PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic)
    : PacketDataplane(kernel, kext, nic, Config{}) {}

PacketDataplane::PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic,
                                 const Config& config)
    : kernel_(kernel), kext_(kext), nic_(nic), config_(config) {
  // Rings: one descriptor page per direction, one buffer frame per
  // descriptor (frames need not be contiguous — descriptors carry their
  // buffer's physical address, as on real hardware).
  PhysicalMemory& pm = kernel_.machine().pm();
  auto build_ring = [&](u32 entries, bool hw_owned) {
    NicRing ring;
    ring.desc_phys = kernel_.frames().Alloc();
    if (ring.desc_phys == 0) return ring;  // out of frames: empty ring, NIC drops
    ring.count = std::min(entries, kPageSize / kNicDescBytes);
    ring.buf_stride = std::min(config_.buf_stride, kPageSize);
    for (u32 i = 0; i < ring.count; ++i) {
      const u32 buf = kernel_.frames().Alloc();
      if (buf == 0) {
        // Frame exhaustion mid-build: truncate to the descriptors that got
        // real buffers rather than DMA-ing into physical page 0.
        ring.count = i;
        break;
      }
      const u32 desc = ring.desc_phys + i * kNicDescBytes;
      pm.Write32(desc + kNicDescStatus, hw_owned ? kDescOwn : 0);
      pm.Write32(desc + kNicDescLen, 0);
      pm.Write32(desc + kNicDescBuf, buf);
    }
    return ring;
  };
  nic_.ConfigureRx(build_ring(config_.rx_ring_entries, /*hw_owned=*/true));
  nic_.ConfigureTx(build_ring(config_.tx_ring_entries, /*hw_owned=*/false));

  kernel_.irq_hub().AddDevice(&nic_);
  kernel_.RegisterIrqHandler(nic_.irq(), [this](Kernel&) { ServiceRx(); });
  kernel_.RegisterSyscall(kSysPktRecv, [this](Kernel&, u32 ebx, u32 ecx, u32 edx) {
    SysPktRecv(ebx, ecx, edx);
  });
  kernel_.RegisterSyscall(kSysPktSend, [this](Kernel&, u32 ebx, u32 ecx, u32) {
    SysPktSend(ebx, ecx);
  });
}

PacketDataplane::~PacketDataplane() {
  kernel_.UnregisterIrqHandler(nic_.irq());
  kernel_.UnregisterSyscall(kSysPktRecv);
  kernel_.UnregisterSyscall(kSysPktSend);
  kernel_.irq_hub().RemoveDevice(&nic_);
}

bool PacketDataplane::AddFlow(const std::string& name, const std::string& filter_text,
                              std::vector<Pid> dests, std::string* diag) {
  std::string err;
  auto expr = ParseFilter(filter_text, &err);
  if (!expr) {
    if (diag != nullptr) *diag = "parse: " + err;
    return false;
  }
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr, config_.buf_stride + 16), &aerr);
  if (!obj) {
    if (diag != nullptr) *diag = "assemble: " + aerr.ToString();
    return false;
  }
  auto ext = kext_.LoadExtension(name, *obj, diag);
  if (!ext) return false;
  auto fid = kext_.FindFunction(name + ":filter_run");
  if (!fid) {
    if (diag != nullptr) *diag = "compiled filter exports no filter_run";
    return false;
  }
  return AddFlowFunction(name, *ext, *fid, std::move(dests));
}

bool PacketDataplane::AddFlowFunction(const std::string& name, u32 ext_id, u32 function_id,
                                      std::vector<Pid> dests) {
  FlowInfo flow;
  flow.name = name;
  flow.ext_id = ext_id;
  flow.function_id = function_id;
  flow.dests = std::move(dests);
  flows_.push_back(std::move(flow));
  for (Pid pid : flows_.back().dests) all_dests_.push_back(pid);
  return true;
}

bool PacketDataplane::Deliver(FlowInfo& flow, const std::vector<u8>& frame) {
  Process* first_full = nullptr;
  // RSS steering anchors the probe sequence at the flow-hash slot so a wire
  // flow sticks to one worker; round-robin rotates the anchor every frame.
  if (config_.steering == FlowSteering::kFlowHash && !flow.dests.empty()) {
    flow.next_dest = FlowHash(frame) % static_cast<u32>(flow.dests.size());
  }
  for (u32 attempt = 0; attempt < flow.dests.size(); ++attempt) {
    const Pid pid = flow.dests[flow.next_dest];
    flow.next_dest = (flow.next_dest + 1) % static_cast<u32>(flow.dests.size());
    Process* proc = kernel_.process(pid);
    if (proc == nullptr ||
        (proc->state != ProcessState::kRunnable && proc->state != ProcessState::kBlocked)) {
      continue;  // round-robin past dead workers
    }
    if (proc->pkt_queue.size() >= proc->pkt_queue_limit) {
      // A stalled worker must not sink the frame while siblings have room:
      // keep probing; the drop is charged only if every destination is full.
      if (first_full == nullptr) first_full = proc;
      continue;
    }
    proc->pkt_queue.push_back(frame);
    ++proc->pkts_delivered;
    ++stats_.delivered;
    if (proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
    }
    return true;
  }
  if (first_full != nullptr) {
    ++stats_.dropped_queue_full;
    ++first_full->pkts_dropped;
  } else {
    ++stats_.dropped_dead_dest;
  }
  return false;
}

void PacketDataplane::Classify(const std::vector<u8>& frame) {
  const u32 len = static_cast<u32>(frame.size());
  for (FlowInfo& flow : flows_) {
    if (flow.dead) continue;
    // Stage the frame in the filter's shared area (Section 4.3's pd_shared
    // exchange: no copy through a syscall boundary) and invoke the protected
    // filter. The filter runs at SPL 1 behind its segment limit; the timer
    // watchdog bounds its CPU time.
    if (!kext_.WriteShared(flow.ext_id, 0, &len, 4) ||
        !kext_.WriteShared(flow.ext_id, 4, frame.data(), len)) {
      flow.dead = true;
      continue;
    }
    ++stats_.filter_invocations;
    auto r = kext_.Invoke(flow.function_id, len);
    if (!r.ok) {
      ++stats_.filter_aborts;
      flow.dead = true;  // aborted extensions stay dead; the flow is disabled
      continue;
    }
    if (r.value == 1) {
      ++stats_.matched;
      ++flow.matched;
      Deliver(flow, frame);
      return;
    }
  }
  ++stats_.dropped_no_match;
}

void PacketDataplane::WakeOneWaiter() {
  // Round-robin over every registered destination: wake one worker blocked
  // in pkt_recv so somebody comes and classifies the backlog.
  if (all_dests_.empty()) return;
  for (u32 attempt = 0; attempt < all_dests_.size(); ++attempt) {
    const Pid pid = all_dests_[wake_cursor_];
    wake_cursor_ = (wake_cursor_ + 1) % static_cast<u32>(all_dests_.size());
    Process* proc = kernel_.process(pid);
    if (proc != nullptr && proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
      return;
    }
  }
}

void PacketDataplane::ServiceRx() {
  ++stats_.nic_irqs;
  if (in_service_) return;  // nested NIC IRQ during a filter run: outer loop drains
  in_service_ = true;
  PhysicalMemory& pm = kernel_.machine().pm();
  const NicRing& ring = nic_.rx_ring();
  for (;;) {
    const u32 desc = ring.desc_phys + rx_consume_ * kNicDescBytes;
    u32 status = 0, len = 0, buf = 0;
    if (!pm.Read32(desc + kNicDescStatus, &status) || status != kDescDone) break;
    pm.Read32(desc + kNicDescLen, &len);
    pm.Read32(desc + kNicDescBuf, &buf);
    len = std::min(len, ring.buf_stride);
    std::vector<u8> frame(len);
    pm.ReadBlock(buf, frame.data(), len);
    // Return the descriptor to the hardware before classifying so a burst
    // arriving mid-filter still finds room.
    pm.Write32(desc + kNicDescStatus, kDescOwn);
    rx_consume_ = (rx_consume_ + 1) % ring.count;
    ++stats_.rx_frames;
    if (config_.rps) {
      // RPS: the interrupt core only queues the raw frame; a worker's
      // pkt_recv runs the protected filter on its own vCPU.
      if (backlog_.size() >= config_.backlog_limit) {
        ++stats_.dropped_backlog_full;
      } else {
        backlog_.push_back(std::move(frame));
        WakeOneWaiter();
      }
    } else {
      Classify(frame);
    }
  }
  in_service_ = false;
}

void PacketDataplane::DrainBacklog(bool drain_all) {
  if (in_classify_) return;  // a nested pkt_recv from filter context must not recurse
  in_classify_ = true;
  // Classify on the calling vCPU until the caller's queue has a frame (the
  // caller is always kernel_.current()) or the backlog runs dry. Deliveries
  // to other workers wake them; they drain their own share on their cores.
  // `drain_all` (shutdown) classifies everything regardless of the caller.
  Process* me = kernel_.current();
  while (!backlog_.empty() && (drain_all || me == nullptr || me->pkt_queue.empty())) {
    std::vector<u8> frame = std::move(backlog_.front());
    backlog_.pop_front();
    ++stats_.rps_deferred;
    Classify(frame);
  }
  in_classify_ = false;
}

bool PacketDataplane::Transmit(const std::vector<u8>& frame) {
  PhysicalMemory& pm = kernel_.machine().pm();
  const NicRing& ring = nic_.tx_ring();
  if (ring.count == 0) return false;
  const u32 desc = ring.desc_phys + tx_produce_ * kNicDescBytes;
  u32 status = 0, buf = 0;
  pm.Read32(desc + kNicDescStatus, &status);
  if (status == kDescOwn) return false;  // ring full
  pm.Read32(desc + kNicDescBuf, &buf);
  const u32 len = std::min<u32>(static_cast<u32>(frame.size()), ring.buf_stride);
  pm.WriteBlock(buf, frame.data(), len);
  pm.Write32(desc + kNicDescLen, len);
  pm.Write32(desc + kNicDescStatus, kDescOwn);
  tx_produce_ = (tx_produce_ + 1) % ring.count;
  nic_.TxKick();
  ++stats_.tx_frames;
  return true;
}

void PacketDataplane::SysPktRecv(u32 buf, u32 cap, u32 flags) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  // RPS: raw frames queued by the interrupt core get classified here, on
  // the consuming worker's vCPU — the filter cost lands on this core.
  if (config_.rps && proc.pkt_queue.empty() && !backlog_.empty()) DrainBacklog();
  if (proc.pkt_queue.empty()) {
    if (shutdown_) {
      kernel_.ReturnFromGate(kErrShutdown);
      return;
    }
    if (flags & 1) {
      kernel_.ReturnFromGate(kErrAgain);
      return;
    }
    proc.waiting_packet = true;
    kernel_.BlockCurrentForRestart();
    return;
  }
  const std::vector<u8>& pkt = proc.pkt_queue.front();
  const u32 n = std::min(cap, static_cast<u32>(pkt.size()));
  if (!kernel_.CopyToUser(proc, buf, pkt.data(), n)) {
    proc.pkt_queue.pop_front();
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  kernel_.Charge(n * kernel_.costs().pkt_copy_per_byte);
  proc.pkt_queue.pop_front();
  kernel_.ReturnFromGate(n);
}

void PacketDataplane::SysPktSend(u32 buf, u32 len) {
  Process& proc = *kernel_.current();
  kernel_.Charge(kernel_.costs().pkt_syscall_base);
  if (len == 0 || len > nic_.tx_ring().buf_stride) {
    kernel_.ReturnFromGate(kErrInval);
    return;
  }
  std::vector<u8> frame(len);
  if (!kernel_.CopyFromUser(proc, buf, frame.data(), len)) {
    kernel_.ReturnFromGate(kErrFault);
    return;
  }
  kernel_.Charge(len * kernel_.costs().pkt_copy_per_byte);
  if (tx_hook_) frame = tx_hook_(kernel_, proc, frame);
  if (!Transmit(frame)) {
    kernel_.ReturnFromGate(kErrAgain);
    return;
  }
  kernel_.ReturnFromGate(len);
}

void PacketDataplane::Shutdown() {
  shutdown_ = true;
  // RPS: flush the raw backlog (classified on the vCPU declaring shutdown)
  // so every frame that reached the host is accounted for before sleepers
  // are released.
  DrainBacklog(/*drain_all=*/true);
  for (Pid pid : all_dests_) {
    Process* proc = kernel_.process(pid);
    if (proc != nullptr && proc->state == ProcessState::kBlocked && proc->waiting_packet) {
      kernel_.WakeProcess(*proc);
    }
  }
}

}  // namespace palladium
