// The protected-extension packet dataplane: NIC RX interrupts feed frames
// through packet filters running as Palladium kernel extensions (SPL 1,
// segment-confined — the paper's "compiled packet filter" deployed for
// real), and matching frames land in per-process delivery queues drained by
// the pkt_recv/pkt_recvm syscalls. TX goes back out through the NIC's
// descriptor rings.
//
// The kernel driver half (ring management, classify loop, queue delivery)
// is host code, like the rest of the kernel model; every filter decision is
// made by simulated code behind the simulated protection hardware, so a
// buggy or hostile filter can stall or crash only itself — the timer
// watchdog aborts it and the dataplane keeps forwarding on other flows.
//
// Fast path (default): per-core NIC queues with hardware RSS, NAPI-style
// interrupt mitigation (the RX IRQ masks itself and arms a poll loop that
// drains the ring in budget-bounded batches), and batched filter invocation
// (a vector of frames per protected SPL 1 crossing). The PR 3
// IRQ-per-packet / crossing-per-frame pipeline remains as the switchable
// oracle: PALLADIUM_NO_NAPI=1 (or Config{napi=false, filter_batch=1,
// queues=1}) must produce byte-identical served/dropped/match accounting.
#ifndef SRC_NET_DATAPLANE_H_
#define SRC_NET_DATAPLANE_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/core/kernel_ext.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"

namespace palladium {

// The canonical packet-echo worker (simulated assembly, numeric syscall
// numbers so it composes with any prelude): mmap a buffer, then
// pkt_recv -> pkt_send until the dataplane shuts down; exit code = frames
// served. Shared by benches and tests so the worker and the syscall ABI
// cannot drift apart.
inline constexpr char kPktEchoWorkerSource[] = R"(
  .global main
main:
  mov $90, %eax           ; SYS_MMAP
  mov $0, %ebx
  mov $4096, %ecx
  mov $3, %edx            ; PROT_READ|PROT_WRITE
  int $0x80
  mov %eax, %esi          ; packet buffer
  mov $0, %edi            ; served counter
loop:
  mov $220, %eax          ; SYS_PKT_RECV
  mov %esi, %ebx
  mov $2048, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done                 ; negative => dataplane shut down
  mov %eax, %ecx
  mov $221, %eax          ; SYS_PKT_SEND
  mov %esi, %ebx
  int $0x80
  inc %edi
  jmp loop
done:
  mov $1, %eax            ; SYS_EXIT
  mov %edi, %ebx
  int $0x80
)";

// The batched echo worker: pkt_recvm drains a vector of frames per gate
// crossing ([u32 len][bytes] records, 4-byte aligned), pkt_sendm sends the
// same buffer back — the recvmmsg/sendmmsg idea, amortizing the
// gate + dispatch + syscall-base cost across the batch. Exit code = frames
// served (the sum of pkt_sendm return values).
inline constexpr char kPktEchoMWorkerSource[] = R"(
  .global main
main:
  mov $90, %eax           ; SYS_MMAP
  mov $0, %ebx
  mov $8192, %ecx
  mov $3, %edx            ; PROT_READ|PROT_WRITE
  int $0x80
  mov %eax, %esi          ; batch buffer
  mov $0, %edi            ; served counter
loop:
  mov $223, %eax          ; SYS_PKT_RECVM
  mov %esi, %ebx
  mov $8192, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done                 ; negative => dataplane shut down
  mov %eax, %ecx          ; total bytes received
  mov $224, %eax          ; SYS_PKT_SENDM
  mov %esi, %ebx
  int $0x80
  cmp $0, %eax
  jl done
  add %eax, %edi          ; frames sent this batch
  jmp loop
done:
  mov $1, %eax            ; SYS_EXIT
  mov %edi, %ebx
  int $0x80
)";

// How a flow spreads matched frames across its destination processes.
enum class FlowSteering : u8 {
  kRoundRobin,  // strict rotation (uniform load, no affinity)
  // RSS-style: hash the frame's 5-tuple and pick dests[hash % n], so every
  // wire flow sticks to one worker — and, with workers homed on different
  // vCPUs by the SMP scheduler, to one core. Full queues/dead workers fall
  // back to probing the remaining dests round-robin.
  kFlowHash,
};

class PacketDataplane {
 public:
  struct Config {
    u32 rx_ring_entries = 32;  // per queue
    u32 tx_ring_entries = 32;  // per queue
    u32 buf_stride = 2048;  // one frame per buffer; must be <= kPageSize
    FlowSteering steering = FlowSteering::kRoundRobin;
    // Receive packet steering (the Linux RPS idea, adapted): when set, the
    // NIC IRQ core only drains descriptors into a raw backlog and wakes a
    // sleeping worker; the protected-filter classification runs later,
    // inside the consuming worker's pkt_recv — i.e. on the worker's own
    // vCPU, charged to its cycle counter. Superseded by multi-queue RSS
    // (queues > 1) for spreading load, but kept as an alternative policy.
    bool rps = false;
    u32 backlog_limit = 512;  // raw frames queued ahead of classification
    // RX/TX queue pairs with hardware RSS; clamped to the machine's vCPU
    // count. Queue q is wired to vCPU q's local PIC and advanced by vCPU
    // q's IRQ hub, so each core services exactly its own queue.
    u32 queues = 1;
    // NAPI-style interrupt mitigation: the RX IRQ handler masks the queue's
    // line and polls the ring in napi_poll_budget-frame batches until it
    // runs dry, then re-enables the IRQ. Off: one IRQ (and one drain) per
    // DMA'd frame, the PR 3 behavior.
    bool napi = true;
    u32 napi_poll_budget = 32;
    // NIC ITR window (cycles): at most one RX interrupt per window per
    // queue; frames landing while the timer is armed share the interrupt
    // and are drained by the same NAPI poll. 0 = interrupt per DMA. Must
    // stay well under rx_ring_entries * inter-arrival or the ring overflows
    // while the timer holds the line.
    u32 rx_irq_moderation = 0;
    // Frames classified per protected filter crossing (the batch entry
    // point compiled alongside every filter). 1 = one crossing per frame,
    // the oracle behavior. Clamped to kMaxFilterBatch.
    u32 filter_batch = 32;
    // Check destination queue occupancy BEFORE paying the protected filter
    // crossing: when every live destination is saturated the frame is
    // dropped pre-filter and the crossing is counted as avoided.
    bool backpressure = true;
  };

  struct Stats {
    u64 rx_frames = 0;           // consumed off the RX rings
    u64 filter_invocations = 0;  // protected kext calls made (crossings)
    u64 filter_frames = 0;       // frames evaluated across those crossings
    u64 filter_batches = 0;      // crossings that used the batch entry point
    u64 filter_aborts = 0;       // filters killed (fault or watchdog)
    u64 filter_calls_avoided = 0;  // backpressure: crossings not paid
    u64 matched = 0;
    u64 delivered = 0;           // enqueued to a process
    u64 dropped_no_match = 0;
    u64 dropped_queue_full = 0;
    u64 dropped_dead_dest = 0;   // destination exited/was killed
    u64 dropped_backlog_full = 0;  // RPS backlog overflow (cheap drop)
    u64 rps_deferred = 0;        // frames classified in worker context
    u64 tx_frames = 0;           // frames enqueued to a TX ring
    u64 nic_irqs = 0;            // RX ServiceRx activations
    u64 tx_completion_irqs = 0;  // TX-completion handler activations
    u64 napi_polls = 0;          // non-empty poll batches
    u64 napi_frames = 0;         // frames collected by the poll loop
    u64 flow_upgrades = 0;       // live filter replacements (UpgradeFlow)
  };

  struct FlowInfo {
    std::string name;
    u32 ext_id = 0;
    u32 function_id = 0;
    u32 batch_function_id = 0;  // valid iff has_batch
    bool has_batch = false;
    u32 batch_stride = 0;
    bool dead = false;  // filter aborted; flow no longer matches
    std::vector<Pid> dests;
    u32 next_dest = 0;  // round-robin cursor
    u64 matched = 0;
  };

  // Builds the per-queue rings (frames from the kernel allocator), wires
  // each NIC queue to its owning core's PIC and IRQ hub, and registers the
  // pkt_recv/pkt_send/pkt_recvm/pkt_sendm syscalls and the NIC RX +
  // TX-completion IRQ handlers.
  PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic);
  PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic, const Config& config);
  // Unhooks everything registered in the constructor (IRQ handlers,
  // syscalls, the NIC queues' hub memberships) so a dataplane — and the
  // caller-owned NIC — may die before the kernel without leaving dangling
  // callbacks behind.
  ~PacketDataplane();

  // Compiles `filter_text` (src/filter syntax) to simulated code — both the
  // per-frame and the batched entry points — loads it as a protected kernel
  // extension named `name`, and routes matching frames across `dests`.
  // Flows are evaluated in registration order; the first match consumes the
  // frame.
  bool AddFlow(const std::string& name, const std::string& filter_text, std::vector<Pid> dests,
               std::string* diag);

  // Live filter upgrade (the paper's dynamically-replaceable extension
  // story): compiles `filter_text`, loads it as a *new* kernel extension
  // (versioned name, so both images coexist for the swap), atomically points
  // the flow's classification at the new function ids, then unloads the old
  // image — whose pages are unmapped, decode-cache/trace entries evicted and
  // TLB/D-TLB entries shot down. In-flight frames are never dropped: the
  // swap happens between classification runs (host code), so every frame is
  // classified by exactly one version. Must not be called from inside a
  // filter invocation. Only valid for flows created by AddFlow (which own
  // their extension segment).
  bool UpgradeFlow(const std::string& name, const std::string& filter_text, std::string* diag);

  // Registers a flow classified by an arbitrary Extension Function Table
  // entry (any loaded kext exporting the filter_run/pd_shared convention) —
  // the hook for hand-written or deliberately hostile filters. Such flows
  // are always invoked per-frame (no batch entry point).
  bool AddFlowFunction(const std::string& name, u32 ext_id, u32 function_id,
                       std::vector<Pid> dests);

  // NIC RX IRQ handler body for the current vCPU's queue. NAPI mode masks
  // the queue's IRQ and polls the ring dry in budget-bounded batches;
  // otherwise each DMA'd frame is drained and classified individually.
  // Re-entrancy safe (a nested NIC IRQ during a filter invocation defers to
  // the outer drain loop).
  void ServiceRx();

  // Declares the packet source drained: every sleeper in pkt_recv wakes and
  // gets kErrShutdown, now and on any later call.
  void Shutdown();
  bool shutdown() const { return shutdown_; }

  // Optional transform applied to frames a process sends with pkt_send; the
  // returned bytes are what actually enters the TX ring (the web server uses
  // this to run request parsing/response formatting on the way out).
  using TxHook = std::function<std::vector<u8>(Kernel&, Process&, const std::vector<u8>&)>;
  void set_tx_hook(TxHook hook) { tx_hook_ = std::move(hook); }

  // Sends a frame from kernel context through the current vCPU's TX ring
  // (also the backend of pkt_send). The doorbell only schedules descriptor
  // DMA; when the ring is full the driver spins until the oldest pending
  // completion retires (charged to the sending vCPU). Returns false only
  // when the ring is unusable.
  bool Transmit(const std::vector<u8>& frame);

  // The RSS hash: a stable function of (src ip, dst ip, proto, src port,
  // dst port) — the same hash the NIC uses for queue placement. Exposed so
  // tests can predict kFlowHash placement.
  static u32 FlowHash(const std::vector<u8>& frame);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  const std::vector<FlowInfo>& flows() const { return flows_; }
  Nic& nic() { return nic_; }

 private:
  // Compiled-filter deployment shared by AddFlow and UpgradeFlow: compiles
  // `filter_text` (per-frame + batch entry points), loads it as extension
  // `kext_name`, and resolves the function ids.
  struct CompiledFilter {
    u32 ext_id = 0;
    u32 function_id = 0;
    bool has_batch = false;
    u32 batch_function_id = 0;
    u32 batch_stride = 0;
  };
  std::optional<CompiledFilter> LoadFilterExtension(const std::string& kext_name,
                                                    const std::string& filter_text,
                                                    std::string* diag);
  void SysPktRecv(u32 buf, u32 cap, u32 flags);
  void SysPktSend(u32 buf, u32 len);
  void SysPktRecvM(u32 buf, u32 cap, u32 flags);
  void SysPktSendM(u32 buf, u32 total);
  void OnTxComplete();
  // Classifies `frames` (in arrival order) through the flows and delivers:
  // match bits are computed flow-major with batched crossings where
  // available; delivery and drop accounting then run in strict frame order,
  // the same state machine as the per-frame oracle.
  void ClassifyFrames(std::vector<std::vector<u8>>& frames);
  // True when every live destination of every live flow has a full queue
  // (then *blocker = the first full destination, for drop attribution).
  bool AllDestsSaturated(Process** blocker);
  bool Deliver(FlowInfo& flow, const std::vector<u8>& frame);
  void WakeOneWaiter();
  // Pops up to `budget` DMA-completed frames off queue q's RX ring,
  // returning the descriptors to the hardware.
  void CollectRx(u32 q, u32 budget, std::vector<std::vector<u8>>* out);
  // NAPI poll loop for queue q: classify in batches, advancing the wire
  // between batches so frames arriving mid-poll are drained by this same
  // loop instead of raising fresh IRQs.
  void PollQueue(u32 q);
  void ServiceQueue(u32 q);
  u32 QueueForCurrentCpu() const;
  // Classifies queued raw frames on the current vCPU; stops once the
  // calling process has a frame unless `drain_all` (shutdown flush).
  void DrainBacklog(bool drain_all = false);

  Kernel& kernel_;
  KernelExtensionManager& kext_;
  Nic& nic_;
  Config config_;
  Stats stats_;
  std::vector<FlowInfo> flows_;
  std::vector<Pid> all_dests_;
  TxHook tx_hook_;
  std::vector<u32> rx_consume_;  // per queue: next RX descriptor to inspect
  std::vector<u32> tx_produce_;  // per queue: next TX descriptor to fill
  bool in_service_ = false;
  bool shutdown_ = false;
  std::deque<std::vector<u8>> backlog_;  // RPS: raw frames awaiting classification
  u32 wake_cursor_ = 0;                  // round-robin over all_dests_ for RPS wakes
  bool in_classify_ = false;             // guards re-entrant backlog draining
  u32 upgrade_seq_ = 0;                  // versions UpgradeFlow kext names
};

}  // namespace palladium

#endif  // SRC_NET_DATAPLANE_H_
