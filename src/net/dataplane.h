// The protected-extension packet dataplane: NIC RX interrupts feed frames
// through packet filters running as Palladium kernel extensions (SPL 1,
// segment-confined — the paper's "compiled packet filter" deployed for
// real), and matching frames land in per-process delivery queues drained by
// the pkt_recv syscall. TX goes back out through the NIC's descriptor ring.
//
// The kernel driver half (ring management, classify loop, queue delivery)
// is host code, like the rest of the kernel model; every filter decision is
// made by simulated code behind the simulated protection hardware, so a
// buggy or hostile filter can stall or crash only itself — the timer
// watchdog aborts it and the dataplane keeps forwarding on other flows.
#ifndef SRC_NET_DATAPLANE_H_
#define SRC_NET_DATAPLANE_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/core/kernel_ext.h"
#include "src/hw/nic.h"
#include "src/kernel/kernel.h"

namespace palladium {

// The canonical packet-echo worker (simulated assembly, numeric syscall
// numbers so it composes with any prelude): mmap a buffer, then
// pkt_recv -> pkt_send until the dataplane shuts down; exit code = frames
// served. Shared by benches and tests so the worker and the syscall ABI
// cannot drift apart.
inline constexpr char kPktEchoWorkerSource[] = R"(
  .global main
main:
  mov $90, %eax           ; SYS_MMAP
  mov $0, %ebx
  mov $4096, %ecx
  mov $3, %edx            ; PROT_READ|PROT_WRITE
  int $0x80
  mov %eax, %esi          ; packet buffer
  mov $0, %edi            ; served counter
loop:
  mov $220, %eax          ; SYS_PKT_RECV
  mov %esi, %ebx
  mov $2048, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done                 ; negative => dataplane shut down
  mov %eax, %ecx
  mov $221, %eax          ; SYS_PKT_SEND
  mov %esi, %ebx
  int $0x80
  inc %edi
  jmp loop
done:
  mov $1, %eax            ; SYS_EXIT
  mov %edi, %ebx
  int $0x80
)";

// How a flow spreads matched frames across its destination processes.
enum class FlowSteering : u8 {
  kRoundRobin,  // strict rotation (uniform load, no affinity)
  // RSS-style: hash the frame's 5-tuple and pick dests[hash % n], so every
  // wire flow sticks to one worker — and, with workers homed on different
  // vCPUs by the SMP scheduler, to one core. Full queues/dead workers fall
  // back to probing the remaining dests round-robin.
  kFlowHash,
};

class PacketDataplane {
 public:
  struct Config {
    u32 rx_ring_entries = 32;
    u32 tx_ring_entries = 32;
    u32 buf_stride = 2048;  // one frame per buffer; must be <= kPageSize
    FlowSteering steering = FlowSteering::kRoundRobin;
    // Receive packet steering (the Linux RPS idea, adapted): when set, the
    // NIC IRQ on vCPU 0 only drains descriptors into a raw backlog and
    // wakes a sleeping worker; the protected-filter classification runs
    // later, inside the consuming worker's pkt_recv — i.e. on the worker's
    // own vCPU, charged to its cycle counter. That takes the filter off the
    // interrupt core's critical path, so classification and queue draining
    // scale across cores instead of serializing on vCPU 0. Off by default:
    // classification then happens in the IRQ handler exactly as before.
    bool rps = false;
    u32 backlog_limit = 512;  // raw frames queued ahead of classification
  };

  struct Stats {
    u64 rx_frames = 0;           // consumed off the RX ring
    u64 filter_invocations = 0;  // protected kext calls made
    u64 filter_aborts = 0;       // filters killed (fault or watchdog)
    u64 matched = 0;
    u64 delivered = 0;           // enqueued to a process
    u64 dropped_no_match = 0;
    u64 dropped_queue_full = 0;
    u64 dropped_dead_dest = 0;   // destination exited/was killed
    u64 dropped_backlog_full = 0;  // RPS backlog overflow (cheap drop)
    u64 rps_deferred = 0;        // frames classified in worker context
    u64 tx_frames = 0;
    u64 nic_irqs = 0;            // ServiceRx activations
  };

  struct FlowInfo {
    std::string name;
    u32 ext_id = 0;
    u32 function_id = 0;
    bool dead = false;  // filter aborted; flow no longer matches
    std::vector<Pid> dests;
    u32 next_dest = 0;  // round-robin cursor
    u64 matched = 0;
  };

  // Builds the rings (frames from the kernel allocator), attaches the NIC to
  // the kernel's IRQ hub, and registers the pkt_recv/pkt_send syscalls and
  // the NIC IRQ handler.
  PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic);
  PacketDataplane(Kernel& kernel, KernelExtensionManager& kext, Nic& nic, const Config& config);
  // Unhooks everything registered in the constructor (IRQ handler, syscalls,
  // the NIC's hub membership) so a dataplane — and the caller-owned NIC —
  // may die before the kernel without leaving dangling callbacks behind.
  ~PacketDataplane();

  // Compiles `filter_text` (src/filter syntax) to simulated code, loads it
  // as a protected kernel extension named `name`, and routes matching frames
  // round-robin across `dests`. Flows are evaluated in registration order;
  // the first match consumes the frame.
  bool AddFlow(const std::string& name, const std::string& filter_text, std::vector<Pid> dests,
               std::string* diag);

  // Registers a flow classified by an arbitrary Extension Function Table
  // entry (any loaded kext exporting the filter_run/pd_shared convention) —
  // the hook for hand-written or deliberately hostile filters.
  bool AddFlowFunction(const std::string& name, u32 ext_id, u32 function_id,
                       std::vector<Pid> dests);

  // NIC IRQ handler body: drain the RX ring, classify each frame through the
  // protected filters, deliver + wake. Re-entrancy safe (a nested NIC IRQ
  // during a filter invocation defers to the outer drain loop).
  void ServiceRx();

  // Declares the packet source drained: every sleeper in pkt_recv wakes and
  // gets kErrShutdown, now and on any later call.
  void Shutdown();
  bool shutdown() const { return shutdown_; }

  // Optional transform applied to frames a process sends with pkt_send; the
  // returned bytes are what actually enters the TX ring (the web server uses
  // this to run request parsing/response formatting on the way out).
  using TxHook = std::function<std::vector<u8>(Kernel&, Process&, const std::vector<u8>&)>;
  void set_tx_hook(TxHook hook) { tx_hook_ = std::move(hook); }

  // Sends a frame from kernel context through the TX ring (also the backend
  // of pkt_send). Returns false when the ring is full.
  bool Transmit(const std::vector<u8>& frame);

  // The RSS hash: a stable function of (src ip, dst ip, proto, src port,
  // dst port). Exposed so tests can predict kFlowHash placement.
  static u32 FlowHash(const std::vector<u8>& frame);

  const Stats& stats() const { return stats_; }
  const std::vector<FlowInfo>& flows() const { return flows_; }
  Nic& nic() { return nic_; }

 private:
  void SysPktRecv(u32 buf, u32 cap, u32 flags);
  void SysPktSend(u32 buf, u32 len);
  void Classify(const std::vector<u8>& frame);
  bool Deliver(FlowInfo& flow, const std::vector<u8>& frame);
  void WakeOneWaiter();
  // Classifies queued raw frames on the current vCPU; stops once the
  // calling process has a frame unless `drain_all` (shutdown flush).
  void DrainBacklog(bool drain_all = false);

  Kernel& kernel_;
  KernelExtensionManager& kext_;
  Nic& nic_;
  Config config_;
  Stats stats_;
  std::vector<FlowInfo> flows_;
  std::vector<Pid> all_dests_;
  TxHook tx_hook_;
  u32 rx_consume_ = 0;  // next RX descriptor to inspect
  u32 tx_produce_ = 0;  // next TX descriptor to fill
  bool in_service_ = false;
  bool shutdown_ = false;
  std::deque<std::vector<u8>> backlog_;  // RPS: raw frames awaiting classification
  u32 wake_cursor_ = 0;                  // round-robin over all_dests_ for RPS wakes
  bool in_classify_ = false;             // guards re-entrant backlog draining
};

}  // namespace palladium

#endif  // SRC_NET_DATAPLANE_H_
