// Packet formats and synthetic trace generation: Ethernet/IPv4/TCP/UDP
// headers in wire (big-endian) byte order, used by the packet-filter
// workloads of Section 5.2 (Figure 7).
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <vector>

#include "src/hw/types.h"

namespace palladium {

// Header geometry (no VLANs, no IP options).
inline constexpr u32 kEthHeaderLen = 14;
inline constexpr u32 kIpHeaderLen = 20;
inline constexpr u32 kTcpHeaderLen = 20;
inline constexpr u32 kUdpHeaderLen = 8;
inline constexpr u16 kEtherTypeIp = 0x0800;
inline constexpr u8 kIpProtoTcp = 6;
inline constexpr u8 kIpProtoUdp = 17;

// Byte offsets from the start of the frame (the offsets BPF programs and the
// compiled filters both use).
inline constexpr u32 kOffEtherType = 12;
inline constexpr u32 kOffIpProto = kEthHeaderLen + 9;
inline constexpr u32 kOffIpSrc = kEthHeaderLen + 12;
inline constexpr u32 kOffIpDst = kEthHeaderLen + 16;
inline constexpr u32 kOffSrcPort = kEthHeaderLen + kIpHeaderLen + 0;
inline constexpr u32 kOffDstPort = kEthHeaderLen + kIpHeaderLen + 2;

struct PacketSpec {
  u32 src_ip = 0x0A000001;  // 10.0.0.1
  u32 dst_ip = 0x0A000002;
  u16 src_port = 1234;
  u16 dst_port = 80;
  u8 proto = kIpProtoTcp;
  u16 payload_len = 64;
};

// Builds a wire-format frame (headers big-endian, zeroed payload).
std::vector<u8> BuildPacket(const PacketSpec& spec);

// Same, with an explicit payload (spec.payload_len is ignored; the payload
// length comes from `len`). Used by the web dataplane to carry HTTP request
// text inside TCP frames.
std::vector<u8> BuildPacketWithPayload(const PacketSpec& spec, const void* payload, u32 len);

// Offset of the L4 payload within a frame built from `spec`.
u32 PayloadOffset(u8 proto);

// Wire-order field accessors.
u16 ReadBe16(const u8* p);
u32 ReadBe32(const u8* p);
void WriteBe16(u8* p, u16 v);
void WriteBe32(u8* p, u32 v);

// Deterministic synthetic trace generator (xorshift-based); `match_fraction`
// of packets are forced to match `match_spec` exactly.
class TraceGenerator {
 public:
  TraceGenerator(u64 seed, const PacketSpec& match_spec, double match_fraction);

  PacketSpec Next(bool* is_match);

 private:
  u32 NextRand();
  u64 state_;
  PacketSpec match_spec_;
  u32 match_threshold_;  // in 2^32 units
};

}  // namespace palladium

#endif  // SRC_NET_PACKET_H_
