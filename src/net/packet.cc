#include "src/net/packet.h"

#include <cstring>

namespace palladium {

u16 ReadBe16(const u8* p) { return static_cast<u16>((p[0] << 8) | p[1]); }

u32 ReadBe32(const u8* p) {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | p[3];
}

void WriteBe16(u8* p, u16 v) {
  p[0] = static_cast<u8>(v >> 8);
  p[1] = static_cast<u8>(v);
}

void WriteBe32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

u32 PayloadOffset(u8 proto) {
  return kEthHeaderLen + kIpHeaderLen + (proto == kIpProtoTcp ? kTcpHeaderLen : kUdpHeaderLen);
}

std::vector<u8> BuildPacketWithPayload(const PacketSpec& spec, const void* payload, u32 len) {
  PacketSpec s = spec;
  s.payload_len = static_cast<u16>(len);
  std::vector<u8> pkt = BuildPacket(s);
  if (len != 0) {
    std::memcpy(pkt.data() + PayloadOffset(spec.proto), payload, len);
  }
  return pkt;
}

std::vector<u8> BuildPacket(const PacketSpec& spec) {
  const u32 l4_len = spec.proto == kIpProtoTcp ? kTcpHeaderLen : kUdpHeaderLen;
  std::vector<u8> pkt(kEthHeaderLen + kIpHeaderLen + l4_len + spec.payload_len, 0);
  // Ethernet: dst/src MACs zero, ethertype IPv4.
  WriteBe16(&pkt[kOffEtherType], kEtherTypeIp);
  // IPv4.
  pkt[kEthHeaderLen + 0] = 0x45;  // version 4, IHL 5
  WriteBe16(&pkt[kEthHeaderLen + 2],
            static_cast<u16>(kIpHeaderLen + l4_len + spec.payload_len));
  pkt[kEthHeaderLen + 8] = 64;  // TTL
  pkt[kOffIpProto] = spec.proto;
  WriteBe32(&pkt[kOffIpSrc], spec.src_ip);
  WriteBe32(&pkt[kOffIpDst], spec.dst_ip);
  // TCP/UDP ports.
  WriteBe16(&pkt[kOffSrcPort], spec.src_port);
  WriteBe16(&pkt[kOffDstPort], spec.dst_port);
  return pkt;
}

TraceGenerator::TraceGenerator(u64 seed, const PacketSpec& match_spec, double match_fraction)
    : state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed),
      match_spec_(match_spec),
      match_threshold_(static_cast<u32>(match_fraction * 4294967295.0)) {}

u32 TraceGenerator::NextRand() {
  // xorshift64*.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return static_cast<u32>((state_ * 0x2545F4914F6CDD1Dull) >> 32);
}

PacketSpec TraceGenerator::Next(bool* is_match) {
  if (NextRand() <= match_threshold_) {
    *is_match = true;
    return match_spec_;
  }
  *is_match = false;
  PacketSpec spec = match_spec_;
  // Perturb one field so the packet fails the filter (and vary the rest).
  u32 r = NextRand();
  spec.src_ip = match_spec_.src_ip ^ (1u + (r & 0xFFFF));
  spec.dst_ip = match_spec_.dst_ip ^ (NextRand() & 0xFFFF);
  spec.src_port = static_cast<u16>(NextRand());
  spec.dst_port = static_cast<u16>(match_spec_.dst_port ^ (1 + (NextRand() & 0xFF)));
  spec.proto = (NextRand() & 1) ? kIpProtoTcp : kIpProtoUdp;
  spec.payload_len = static_cast<u16>(NextRand() % 512);
  return spec;
}

}  // namespace palladium
