// The packet-filter expression language of Section 5.2: a conjunction of
// header-field comparison terms, with two compilation targets —
//   * simulated ISA code, loaded as a Palladium kernel extension (the
//     "compiled packet filter" of [22]); and
//   * classic BPF bytecode, run by the interpreter (the tcpdump baseline).
#ifndef SRC_FILTER_FILTER_H_
#define SRC_FILTER_FILTER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/bpf/bpf.h"
#include "src/hw/types.h"

namespace palladium {

enum class FilterField : u8 {
  kEtherType,  // be16 at offset 12
  kIpProto,    // byte at 23
  kIpSrc,      // be32 at 26
  kIpDst,      // be32 at 30
  kSrcPort,    // be16 at 34
  kDstPort,    // be16 at 36
};

enum class FilterRel : u8 { kEq, kNe, kGt, kGe, kLt, kLe };

struct FilterTerm {
  FilterField field = FilterField::kIpSrc;
  FilterRel rel = FilterRel::kEq;
  u32 value = 0;
};

// A conjunction: the packet matches iff every term holds.
struct FilterExpr {
  std::vector<FilterTerm> terms;
};

// Field metadata.
u32 FilterFieldOffset(FilterField field);
u32 FilterFieldWidth(FilterField field);  // 1, 2 or 4 bytes
const char* FilterFieldName(FilterField field);

// Parses e.g. "ip.src == 10.0.0.1 && tcp.dport == 80 && ip.proto == 6".
// Fields: ether.type ip.proto ip.src ip.dst tcp.sport tcp.dport
// (udp.sport/udp.dport accepted as aliases). Values: decimal, 0x hex, or
// dotted quads. Relations: == != > >= < <=.
std::optional<FilterExpr> ParseFilter(const std::string& text, std::string* error);

// Host reference evaluation (ground truth for property tests).
bool EvalFilterHost(const FilterExpr& expr, const u8* pkt, u32 len);

// Upper bound on frames per batched filter call: the batch entry point
// returns its verdicts as a 32-bit match bitmap.
inline constexpr u32 kMaxFilterBatch = 32;

// Offset of the first batch record inside pd_shared (after the u32 frame
// count and pad); each record is [u32 len][frame bytes], `batch_stride`
// bytes apart.
inline constexpr u32 kFilterBatchBase = 16;

// Compiles to simulated assembly. The generated function `filter_run`
// expects the packet image at the module's exported `pd_shared` area:
//   pd_shared+0: u32 packet length, pd_shared+4: packet bytes.
// Returns 1 for match, 0 otherwise. Equality terms compare the raw
// little-endian load against a byte-swapped constant (no per-packet swap);
// ordered terms byte-swap the loaded value first.
//
// When `batch_stride` is nonzero a second entry point `filter_run_batch` is
// emitted for amortized classification: pd_shared+0 holds a u32 frame
// count (at most kMaxFilterBatch), records start at pd_shared+16, each
// `batch_stride` bytes apart as [u32 len][frame bytes]. The return value is
// a bitmap — bit i set iff record i matches. The caller must size
// `shared_capacity` to cover kFilterBatchBase + count * batch_stride.
std::string CompileFilterToAsm(const FilterExpr& expr, u32 shared_capacity = 2048,
                               u32 batch_stride = 0);

// Compiles to BPF bytecode for the interpreted baseline.
BpfProgram CompileFilterToBpf(const FilterExpr& expr);

}  // namespace palladium

#endif  // SRC_FILTER_FILTER_H_
