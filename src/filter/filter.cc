#include "src/filter/filter.h"

#include <cctype>
#include <functional>
#include <sstream>

#include "src/net/packet.h"

namespace palladium {

u32 FilterFieldOffset(FilterField field) {
  switch (field) {
    case FilterField::kEtherType: return kOffEtherType;
    case FilterField::kIpProto: return kOffIpProto;
    case FilterField::kIpSrc: return kOffIpSrc;
    case FilterField::kIpDst: return kOffIpDst;
    case FilterField::kSrcPort: return kOffSrcPort;
    case FilterField::kDstPort: return kOffDstPort;
  }
  return 0;
}

u32 FilterFieldWidth(FilterField field) {
  switch (field) {
    case FilterField::kEtherType:
    case FilterField::kSrcPort:
    case FilterField::kDstPort:
      return 2;
    case FilterField::kIpProto:
      return 1;
    case FilterField::kIpSrc:
    case FilterField::kIpDst:
      return 4;
  }
  return 4;
}

const char* FilterFieldName(FilterField field) {
  switch (field) {
    case FilterField::kEtherType: return "ether.type";
    case FilterField::kIpProto: return "ip.proto";
    case FilterField::kIpSrc: return "ip.src";
    case FilterField::kIpDst: return "ip.dst";
    case FilterField::kSrcPort: return "tcp.sport";
    case FilterField::kDstPort: return "tcp.dport";
  }
  return "?";
}

namespace {

void SkipSpace(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) ++(*i);
}

bool ParseIdent(const std::string& s, size_t* i, std::string* out) {
  SkipSpace(s, i);
  size_t start = *i;
  while (*i < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[*i])) || s[*i] == '.' || s[*i] == '_')) {
    ++(*i);
  }
  if (*i == start) return false;
  *out = s.substr(start, *i - start);
  return true;
}

bool ParseValue(const std::string& tok, u32* out) {
  // Dotted quad?
  int dots = 0;
  for (char c : tok) {
    if (c == '.') ++dots;
  }
  if (dots == 3) {
    u32 parts[4] = {0, 0, 0, 0};
    size_t pos = 0;
    for (int p = 0; p < 4; ++p) {
      size_t dot = tok.find('.', pos);
      std::string part = tok.substr(pos, dot == std::string::npos ? std::string::npos : dot - pos);
      if (part.empty()) return false;
      parts[p] = static_cast<u32>(std::strtoul(part.c_str(), nullptr, 10));
      if (parts[p] > 255) return false;
      pos = dot == std::string::npos ? tok.size() : dot + 1;
    }
    *out = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
    return true;
  }
  char* end = nullptr;
  *out = static_cast<u32>(std::strtoul(tok.c_str(), &end, 0));
  return end != nullptr && *end == '\0';
}

u32 ByteSwap(u32 v, u32 width) {
  switch (width) {
    case 1:
      return v & 0xFF;
    case 2:
      return ((v & 0xFF) << 8) | ((v >> 8) & 0xFF);
    default:
      return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) | ((v >> 24) & 0xFF);
  }
}

}  // namespace

std::optional<FilterExpr> ParseFilter(const std::string& text, std::string* error) {
  FilterExpr expr;
  size_t i = 0;
  SkipSpace(text, &i);
  if (i >= text.size()) return expr;  // empty conjunction: match-all
  for (;;) {
    std::string field_name;
    if (!ParseIdent(text, &i, &field_name)) {
      if (error != nullptr) *error = "expected field name";
      return std::nullopt;
    }
    FilterTerm term;
    if (field_name == "ether.type") term.field = FilterField::kEtherType;
    else if (field_name == "ip.proto") term.field = FilterField::kIpProto;
    else if (field_name == "ip.src") term.field = FilterField::kIpSrc;
    else if (field_name == "ip.dst") term.field = FilterField::kIpDst;
    else if (field_name == "tcp.sport" || field_name == "udp.sport") term.field = FilterField::kSrcPort;
    else if (field_name == "tcp.dport" || field_name == "udp.dport") term.field = FilterField::kDstPort;
    else {
      if (error != nullptr) *error = "unknown field: " + field_name;
      return std::nullopt;
    }
    SkipSpace(text, &i);
    if (i + 1 < text.size() && text[i] == '=' && text[i + 1] == '=') {
      term.rel = FilterRel::kEq;
      i += 2;
    } else if (i + 1 < text.size() && text[i] == '!' && text[i + 1] == '=') {
      term.rel = FilterRel::kNe;
      i += 2;
    } else if (i + 1 < text.size() && text[i] == '>' && text[i + 1] == '=') {
      term.rel = FilterRel::kGe;
      i += 2;
    } else if (i + 1 < text.size() && text[i] == '<' && text[i + 1] == '=') {
      term.rel = FilterRel::kLe;
      i += 2;
    } else if (i < text.size() && text[i] == '>') {
      term.rel = FilterRel::kGt;
      i += 1;
    } else if (i < text.size() && text[i] == '<') {
      term.rel = FilterRel::kLt;
      i += 1;
    } else {
      if (error != nullptr) *error = "expected relation after " + field_name;
      return std::nullopt;
    }
    std::string value_tok;
    if (!ParseIdent(text, &i, &value_tok) || !ParseValue(value_tok, &term.value)) {
      if (error != nullptr) *error = "bad value for " + field_name;
      return std::nullopt;
    }
    expr.terms.push_back(term);
    SkipSpace(text, &i);
    if (i >= text.size()) break;
    if (i + 1 < text.size() && text[i] == '&' && text[i + 1] == '&') {
      i += 2;
      continue;
    }
    if (error != nullptr) *error = "expected && between terms";
    return std::nullopt;
  }
  return expr;
}

bool EvalFilterHost(const FilterExpr& expr, const u8* pkt, u32 len) {
  for (const FilterTerm& t : expr.terms) {
    const u32 off = FilterFieldOffset(t.field);
    const u32 width = FilterFieldWidth(t.field);
    if (off + width > len) return false;
    u32 v = 0;
    switch (width) {
      case 1: v = pkt[off]; break;
      case 2: v = ReadBe16(pkt + off); break;
      default: v = ReadBe32(pkt + off); break;
    }
    bool ok = false;
    switch (t.rel) {
      case FilterRel::kEq: ok = v == t.value; break;
      case FilterRel::kNe: ok = v != t.value; break;
      case FilterRel::kGt: ok = v > t.value; break;
      case FilterRel::kGe: ok = v >= t.value; break;
      case FilterRel::kLt: ok = v < t.value; break;
      case FilterRel::kLe: ok = v <= t.value; break;
    }
    if (!ok) return false;
  }
  return true;
}

namespace {

// Emits the per-packet term checks. `at(off)` names the operand for byte
// offset `off` into the [u32 len][frame bytes] record — an absolute
// pd_shared reference for the single-frame entry, an %esi-relative one for
// the batch entry (DS-relative either way; EBP/ESP bases would resolve to
// SS). Clobbers %eax/%ecx/%edx. Length is expected in %ecx on entry when
// `min_len` > 0.
void EmitTermChecks(std::ostringstream& os, const FilterExpr& expr, u32 min_len,
                    const std::function<std::string(u32)>& at, const std::string& reject) {
  if (min_len > 0) {
    os << "  cmp $" << min_len << ", %ecx\n"
       << "  jb " << reject << "\n";
  }
  for (const FilterTerm& t : expr.terms) {
    const u32 off = 4 + FilterFieldOffset(t.field);  // +4 skips the length word
    const u32 width = FilterFieldWidth(t.field);
    const char* ld = width == 1 ? "ld8" : (width == 2 ? "ld16" : "ld");
    os << "  " << ld << " " << at(off) << ", %eax\n";
    if (t.rel == FilterRel::kEq || t.rel == FilterRel::kNe) {
      // Compare the raw little-endian load against the byte-swapped
      // constant: zero per-packet swap cost (constant folded at compile
      // time) — this is what keeps the compiled filter's slope small.
      os << "  cmp $" << ByteSwap(t.value, width) << ", %eax\n";
      os << (t.rel == FilterRel::kEq ? "  jne " : "  je ") << reject << "\n";
    } else {
      // Ordered comparison: normalize to host order first.
      if (width == 2) {
        os << "  mov %eax, %edx\n"
           << "  shr $8, %eax\n"
           << "  and $0xFF, %edx\n"
           << "  shl $8, %edx\n"
           << "  or %edx, %eax\n";
      } else if (width == 4) {
        os << "  mov %eax, %edx\n"
           << "  shr $24, %eax\n"
           << "  mov %edx, %ecx\n"
           << "  shr $8, %ecx\n"
           << "  and $0xFF00, %ecx\n"
           << "  or %ecx, %eax\n"
           << "  mov %edx, %ecx\n"
           << "  shl $8, %ecx\n"
           << "  and $0xFF0000, %ecx\n"
           << "  or %ecx, %eax\n"
           << "  shl $24, %edx\n"
           << "  or %edx, %eax\n";
      }
      os << "  cmp $" << t.value << ", %eax\n";
      switch (t.rel) {
        case FilterRel::kGt: os << "  jbe " << reject << "\n"; break;
        case FilterRel::kGe: os << "  jb " << reject << "\n"; break;
        case FilterRel::kLt: os << "  jae " << reject << "\n"; break;
        case FilterRel::kLe: os << "  ja " << reject << "\n"; break;
        default: break;
      }
    }
  }
}

}  // namespace

std::string CompileFilterToAsm(const FilterExpr& expr, u32 shared_capacity, u32 batch_stride) {
  std::ostringstream os;
  // Bounds: reject short packets once, up front, instead of per term.
  u32 min_len = 0;
  for (const FilterTerm& t : expr.terms) {
    min_len = std::max(min_len, FilterFieldOffset(t.field) + FilterFieldWidth(t.field));
  }

  os << "  .global filter_run\n"
     << "filter_run:\n";
  if (min_len > 0) os << "  ld pd_shared, %ecx\n";
  EmitTermChecks(os, expr, min_len,
                 [](u32 off) { return "pd_shared+" + std::to_string(off); }, "filter_reject");
  os << "  mov $1, %eax\n"
     << "  ret\n"
     << "filter_reject:\n"
     << "  mov $0, %eax\n"
     << "  ret\n";

  if (batch_stride >= 8) {
    // Batched entry: pd_shared+0 = u32 frame count, records (same layout as
    // the single-frame area) every batch_stride bytes from pd_shared+16.
    // Returns the match bitmap in %eax. Register plan: %esi record cursor
    // (DS-relative), %ebp remaining count (pure data register — EBP as a
    // *base* would select SS, whose segment differs inside an extension),
    // %ebx current record's bit, %edi accumulated bitmap; %eax/%ecx/%edx
    // are the term scratch registers.
    os << "  .global filter_run_batch\n"
       << "filter_run_batch:\n"
       << "  ld pd_shared, %ebp\n"
       << "  lea pd_shared+" << kFilterBatchBase << ", %esi\n"
       << "  mov $1, %ebx\n"
       << "  mov $0, %edi\n"
       << "fb_next:\n"
       << "  cmp $0, %ebp\n"
       << "  je fb_done\n";
    if (min_len > 0) os << "  ld 0(%esi), %ecx\n";
    EmitTermChecks(os, expr, min_len,
                   [](u32 off) { return std::to_string(off) + "(%esi)"; }, "fb_rej");
    os << "  or %ebx, %edi\n"
       << "fb_rej:\n"
       << "  add $" << batch_stride << ", %esi\n"
       << "  shl $1, %ebx\n"
       << "  dec %ebp\n"
       << "  jmp fb_next\n"
       << "fb_done:\n"
       << "  mov %edi, %eax\n"
       << "  ret\n";
  }

  os << "  .data\n"
     << "  .global pd_shared\n"
     << "pd_shared:\n"
     << "  .space " << shared_capacity << "\n";
  return os.str();
}

BpfProgram CompileFilterToBpf(const FilterExpr& expr) {
  // Structure mirrors tcpdump's output: load field, conditional jump to the
  // next term or to reject, final accept/reject returns.
  BpfProgram prog;
  const u32 n = static_cast<u32>(expr.terms.size());
  // Each term compiles to (load, jump); accept is at index 2n, reject 2n+1.
  for (u32 i = 0; i < n; ++i) {
    const FilterTerm& t = expr.terms[i];
    const u32 width = FilterFieldWidth(t.field);
    BpfInsn ld;
    ld.code = width == 1 ? BpfOp::kLdBAbs : (width == 2 ? BpfOp::kLdHAbs : BpfOp::kLdWAbs);
    ld.k = FilterFieldOffset(t.field);
    prog.Append(ld);

    const u32 pc = 2 * i + 1;          // index of this jump
    const u32 next = pc + 1;           // next term's load
    const u32 accept = 2 * n;
    const u32 reject = 2 * n + 1;
    const u32 on_true_pass = i + 1 == n ? accept : next;
    BpfInsn j;
    j.k = t.value;
    auto set_targets = [&](bool invert) {
      u32 t_true = invert ? reject : on_true_pass;
      u32 t_false = invert ? on_true_pass : reject;
      j.jt = static_cast<u8>(t_true - pc - 1);
      j.jf = static_cast<u8>(t_false - pc - 1);
    };
    switch (t.rel) {
      case FilterRel::kEq: j.code = BpfOp::kJmpJeqK; set_targets(false); break;
      case FilterRel::kNe: j.code = BpfOp::kJmpJeqK; set_targets(true); break;
      case FilterRel::kGt: j.code = BpfOp::kJmpJgtK; set_targets(false); break;
      case FilterRel::kGe: j.code = BpfOp::kJmpJgeK; set_targets(false); break;
      case FilterRel::kLt: j.code = BpfOp::kJmpJgeK; set_targets(true); break;
      case FilterRel::kLe: j.code = BpfOp::kJmpJgtK; set_targets(true); break;
    }
    prog.Append(j);
  }
  BpfInsn accept;
  accept.code = BpfOp::kRetK;
  accept.k = 1;
  prog.Append(accept);
  BpfInsn reject;
  reject.code = BpfOp::kRetK;
  reject.k = 0;
  prog.Append(reject);
  return prog;
}

}  // namespace palladium
