// The simulated CPU: fetch/decode/execute with full segment-level and
// page-level protection checks on every memory access, call gates with TSS
// stack switching, far returns to outer privilege levels, and software
// interrupts — i.e. exactly the IA-32 machinery of Section 3 of the paper.
//
// The kernel model is host C++ code; control enters it whenever the CPU
// would fetch from the "host entry" linear range (interrupt-gate and
// call-gate targets for kernel services point there). Faults likewise stop
// execution and surface to the host, which is the fault handler.
#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <array>
#include <vector>

#include "src/hw/cycle_model.h"
#include "src/hw/dtlb.h"
#include "src/hw/fault.h"
#include "src/hw/physical_memory.h"
#include "src/hw/segment.h"
#include "src/hw/tlb.h"
#include "src/hw/types.h"
#include "src/isa/decode_cache.h"
#include "src/isa/insn.h"

namespace palladium {

// Why Run()/Step() stopped.
enum class StopReason : u8 {
  kHalted,      // HLT executed
  kFault,       // processor exception; see StopInfo::fault
  kHostCall,    // control reached a host entry point (gate into kernel C++)
  kCycleLimit,  // cycle budget exhausted (the kernel's timer-limit hook)
};

struct StopInfo {
  StopReason reason = StopReason::kHalted;
  Fault fault;
  u32 host_call_id = 0;  // valid when reason == kHostCall
};

// Task State Segment (the parts Palladium uses): one stack pointer per
// privilege level 0..2. Level 3's stack needs no TSS slot (Section 3.2).
struct Tss {
  std::array<u16, 3> ss{};
  std::array<u32, 3> esp{};
};

// A loaded segment register: selector plus the descriptor shadow copy, as on
// real hardware (later GDT edits do not affect already-loaded registers).
struct LoadedSegment {
  Selector selector;
  SegmentDescriptor cache;
  bool valid = false;
};

// Full architectural register state, for host-side context switching.
struct CpuContext {
  std::array<u32, kNumRegs> regs{};
  u32 eip = 0;
  u32 eflags = 0;
  u8 cpl = 0;
  std::array<LoadedSegment, kNumSegRegs> segs{};
};

// The EFLAGS bit constants (kFlagCf, kFlagZf, kFlagSf, kFlagIf, kFlagOf)
// live in src/isa/uop.h — next to the lazy-flags materialization that
// reconstructs them — and arrive here through decode_cache.h.

class IrqHub;

namespace obs {
class CycleProfile;
class FlightRecorder;
}  // namespace obs

class Cpu {
 public:
  Cpu(PhysicalMemory& pm, DescriptorTable& gdt, DescriptorTable& idt,
      CycleModel model = CycleModel::Measured());

  // --- Architectural state -------------------------------------------------
  u32 reg(Reg r) const { return regs_[static_cast<u8>(r)]; }
  void set_reg(Reg r, u32 v) { regs_[static_cast<u8>(r)] = v; }
  u32 eip() const { return eip_; }
  void set_eip(u32 v) { eip_ = v; }
  u8 cpl() const { return cpl_; }
  u32 eflags() const { return eflags_; }
  void set_eflags(u32 v) { eflags_ = v; }

  u32 cr3() const { return cr3_; }
  // Loading CR3 flushes the TLB, as on the real hardware.
  void LoadCr3(u32 cr3) {
    cr3_ = cr3;
    tlb_.Flush();
  }

  Tss& tss() { return tss_; }
  const LoadedSegment& seg(SegReg s) const { return segs_[static_cast<u8>(s)]; }

  // Privilege-checked segment load (the semantics of `mov %r, %seg`).
  // On failure records the fault in *fault and returns false.
  bool LoadSegmentChecked(SegReg sr, Selector sel, Fault* fault);

  // Host-level (kernel) state setup: loads a segment register with explicit
  // descriptor-table lookup but no privilege checks, and for CS also sets
  // CPL from the selector RPL. Used when the kernel dispatches to user code,
  // extensions, or signal handlers.
  bool ForceSegment(SegReg sr, Selector sel);
  void set_cpl(u8 cpl) { cpl_ = cpl; }

  CpuContext SaveContext() const;
  void RestoreContext(const CpuContext& ctx);

  // --- Execution ------------------------------------------------------------
  // Runs until HLT, fault, host call, or the *cumulative* cycle counter
  // reaches `cycle_limit` (pass ~0ull for no limit).
  StopInfo Run(u64 cycle_limit = ~0ull);

  u64 cycles() const { return cycles_; }
  void set_cycles(u64 c) { cycles_ = c; }
  u64 instructions_retired() const { return instructions_; }
  const Tlb::Stats& tlb_stats() const { return tlb_.stats(); }
  Tlb& tlb() { return tlb_; }
  DecodeCache& decode_cache() { return dcache_; }
  const DecodeCache& decode_cache() const { return dcache_; }
  // Disables the decoded-page fetch fast path (every fetch translates all 16
  // instruction bytes and re-decodes). Exists so benches can measure the
  // pre-cache baseline; correctness is identical either way. Implies the
  // block engine is off too (blocks execute out of decoded pages).
  void set_decode_cache_enabled(bool enabled) { decode_cache_enabled_ = enabled; }
  // Disables the superblock engine: Run falls back to the PR 2
  // per-instruction fast path (decode cache + D-TLB, dispatched one
  // instruction at a time). The per-instruction path is the block engine's
  // differential oracle — registers, memory, cycle counts, TLB stats, fault
  // and interrupt streams are byte-identical either way. Env analogue:
  // PALLADIUM_NO_BLOCKS=1.
  void set_block_engine_enabled(bool enabled) { block_engine_enabled_ = enabled; }
  bool block_engine_enabled() const { return block_engine_enabled_; }

  // Block-engine observability: how often Run entered block dispatch, how
  // many instructions retired inside it, and how many taken branches chained
  // directly block-to-block without leaving the dispatch loop.
  struct BlockStats {
    u64 entries = 0;  // block dispatch activations from the outer loop
    u64 insns = 0;    // instructions retired inside block dispatch
    u64 chains = 0;   // direct block->block transfers (same-page branches)
  };
  const BlockStats& block_stats() const { return block_stats_; }

  // Disables the hot-trace translation tier: block dispatch never promotes
  // runs to micro-op traces and executes every slot through the per-opcode
  // handlers. The block engine is the trace tier's in-binary differential
  // oracle — registers, memory, cycle counts, TLB stats, fault and
  // interrupt streams are byte-identical either way. Env analogue:
  // PALLADIUM_NO_TRACE=1. Effective only while the block engine runs.
  void set_trace_engine_enabled(bool enabled) { trace_engine_enabled_ = enabled; }
  bool trace_engine_enabled() const { return trace_engine_enabled_; }

  // Trace-tier observability: promotion/elision rates, so regressions in
  // the optimizations themselves (not just end-to-end sim-MIPS) are
  // measurable.
  struct TraceStats {
    u64 promotions = 0;             // runs lowered to micro-op traces
    u64 entries = 0;                // trace-body executions begun
    u64 uop_insns = 0;              // instructions retired inside trace bodies
    u64 flag_materializations = 0;  // lazy EFLAGS computed at an exit
    u64 probes_elided = 0;          // D-TLB probes answered by a live pin
  };
  const TraceStats& trace_stats() const { return trace_stats_; }

  DTlb& dtlb() { return dtlb_; }
  const DTlb::Stats& dtlb_stats() const { return dtlb_.stats(); }
  // Disables the data-access fast path (every load/store/push/pop goes back
  // to the per-byte translate loop). The slow path is the differential
  // oracle: architectural state, memory image, cycle counts and fault
  // streams are identical either way.
  void set_dtlb_enabled(bool enabled) { dtlb_enabled_ = enabled; }
  bool dtlb_enabled() const { return dtlb_enabled_; }

  // Host-side (kernel) copies through the D-TLB: probe-only supervisor
  // access to one page's worth of current-address-space memory. Never fills,
  // never charges cycles, never faults — returns false on a miss (or when
  // the span leaves the page / the fast path is disabled) and the caller
  // falls back to its page-table walk. Writes fire the physical-memory
  // write observer exactly like PhysicalMemory::WriteBlock.
  bool DtlbHostRead(u32 linear, void* dst, u32 len);
  bool DtlbHostWrite(u32 linear, const void* src, u32 len);
  const CycleModel& cycle_model() const { return model_; }
  void set_cycle_model(const CycleModel& m) {
    model_ = m;
    RebuildCostTable();
  }

  // --- Hardware interrupts ----------------------------------------------------
  // Attaching a hub makes the CPU poll for pending IRQs at instruction-
  // retire boundaries (and only there), keyed off the cycle counter — so
  // delivery points are deterministic and identical with the decode-cache /
  // D-TLB fast paths on or off. Delivery requires EFLAGS.IF; entering an
  // interrupt gate clears IF and IRET restores it, as on the hardware.
  void set_irq_hub(IrqHub* hub) { irq_hub_ = hub; }
  IrqHub* irq_hub() const { return irq_hub_; }

  // One record per delivered hardware interrupt, for differential harnesses
  // (the "interrupt stream" analogue of the fault stream).
  struct IrqEvent {
    u8 vector = 0;
    u8 cpl = 0;      // privilege level the interrupt arrived at
    u32 eip = 0;     // EIP of the interrupted boundary
    u64 cycle = 0;   // cycle counter at delivery
    bool operator==(const IrqEvent& o) const {
      return vector == o.vector && cpl == o.cpl && eip == o.eip && cycle == o.cycle;
    }
  };
  // Enables tracing into caller-owned storage (nullptr disables).
  void set_irq_trace(std::vector<IrqEvent>* trace) { irq_trace_ = trace; }

  // --- Observability (optional, pure observers) ------------------------------
  // A flight recorder receives IRQ-delivery events (kArch class) and
  // trace-tier compile/invalidate events (kEngine class) on `track`; a cycle
  // profiler is switched to Category::kIrq at hardware-interrupt delivery.
  // Both only *read* the cycle/stat counters — attaching them cannot perturb
  // execution, so every differential mode stays byte-identical with
  // telemetry on. nullptr detaches.
  void set_recorder(obs::FlightRecorder* recorder, u32 track) {
    recorder_ = recorder;
    obs_track_ = track;
  }
  void set_profiler(obs::CycleProfile* profiler, u32 cpu_index) {
    profiler_ = profiler;
    obs_track_ = cpu_index;
  }

  // Host entry range: instruction fetches whose *linear* address lands in
  // [base, base+size) stop execution with kHostCall and
  // host_call_id = (linear - base) / kInsnSize.
  void SetHostCallRange(u32 base, u32 size) {
    host_base_ = base;
    host_size_ = size;
  }
  u32 host_call_base() const { return host_base_; }

  // Stack helpers running with the current SS:ESP and full checks; used by
  // the host kernel to build and consume frames (signal delivery, returns).
  bool Push32(u32 v, Fault* fault);
  bool Pop32(u32* v, Fault* fault);

  // Checked virtual-memory access through a segment register, as an
  // executing instruction would perform it. Exposed for the kernel model.
  bool ReadVirt(SegReg sr, u32 offset, u32 size, u32* out, Fault* fault);
  bool WriteVirt(SegReg sr, u32 offset, u32 size, u32 value, Fault* fault);

  ~Cpu();

 private:
  friend class CpuTestPeer;

  // --- Shared per-opcode execution core --------------------------------------
  // What an instruction handler reports back to its dispatch loop.
  enum class ExecStatus : u8 {
    kNext,   // sequential: EIP already advanced past the instruction
    kJump,   // near transfer retired: EIP holds the target, CS unchanged
    kFar,    // far transfer retired: CS/CPL/EFLAGS.IF may have changed
    kFault,  // ctx.fault filled; caller restores EIP and stops
    kHalt,   // HLT retired at CPL 0
  };
  struct ExecCtx {
    Fault fault;
    u32 extra_cycles = 0;  // far-transfer privilege premium
    bool taken = false;    // conditional branch taken (picks the taken cost)
  };
  // The ONE implementation of every opcode's semantics, specialized per
  // opcode at compile time. StepOne's switch and RunBlock's threaded
  // dispatch both expand to calls of these, so the per-instruction oracle
  // and the block engine cannot diverge semantically by construction.
  template <Opcode kOp>
  static ExecStatus ExecOp(Cpu& c, const DecodedInsn& d, ExecCtx& ctx);

  bool cf() const { return eflags_ & kFlagCf; }
  bool zf() const { return eflags_ & kFlagZf; }
  bool sf() const { return eflags_ & kFlagSf; }
  bool of() const { return eflags_ & kFlagOf; }
  void SetFlags(bool cf, bool zf, bool sf, bool of) {
    eflags_ = (eflags_ & ~(kFlagCf | kFlagZf | kFlagSf | kFlagOf)) | (cf ? kFlagCf : 0) |
              (zf ? kFlagZf : 0) | (sf ? kFlagSf : 0) | (of ? kFlagOf : 0);
  }
  void SetLogicFlags(u32 result) { SetFlags(false, result == 0, (result >> 31) & 1, false); }

  // One instruction. Returns false when execution must stop (*stop filled).
  bool StepOne(StopInfo* stop);

  // The superblock engine: executes decoded basic-block runs with threaded
  // dispatch and direct block->block chaining, preserving per-instruction
  // retire-boundary semantics exactly (see cpu.cc).
  enum class BlockExit : u8 {
    kNoBlock,  // could not enter block dispatch here; caller single-steps
    kYield,    // retired >= 0 instructions; re-run the outer boundary checks
    kStopped,  // *stop filled (fault / halt)
  };
  BlockExit RunBlock(u64 cycle_limit, StopInfo* stop);

  // The hot-trace tier: executes a lowered run body (see src/isa/uop.h).
  // Called from inside block dispatch once the whole run is proved below
  // the cycle/IRQ frontier; returns how the body ended.
  enum class TraceExit : u8 {
    kBody,     // body fully retired; dispatch the run's final slot
    kYield,    // decode generation changed mid-body; leave block dispatch
    kStopped,  // fault: *stop filled, EIP on the faulting instruction
  };
  TraceExit ExecTrace(DecodeCache::Page* page, Trace& t, u64 gen0, u64 until,
                      u32 run_cost_max, StopInfo* stop);

  // Address translation: linear -> physical with paging + TLB. `flags_out`
  // (optional) receives the effective PTE flags of the translation;
  // `is_fetch` marks instruction fetches so page faults carry the I/D bit.
  bool Translate(u32 linear, bool is_write, u32* phys, Fault* fault,
                 u32* flags_out = nullptr, bool is_fetch = false);

  // Data-access fast path. Translates an access wholly inside one page
  // through the D-TLB, filling it from Translate on a miss. Returns
  //   +1 hit  — *host/*phys point at the access; writes must NotifyWrite
  //    0 miss — not cacheable (disabled, partial frame): take the byte loop
  //   -1 fault — *fault filled exactly as the per-byte path would
  int DtlbTranslate(u32 linear, u32 size, bool is_write, u8** host, u32* phys, Fault* fault);

  // The per-byte access loops (page-crossing semantics, bus errors). `start`
  // lets a caller that already translated and consumed byte 0 — the D-TLB
  // fill path whose frame turned out not host-mappable — resume at byte 1,
  // keeping TLB statistics equal to a pure per-byte run. `*value` holds the
  // accumulated low bytes on entry for reads.
  bool ReadBytesSlow(u32 linear, u32 start, u32 size, u32* value, Fault* fault);
  bool WriteBytesSlow(u32 linear, u32 start, u32 size, u32 value, Fault* fault);

  // Segment-checked access path. `is_exec` marks instruction fetches.
  bool CheckSegmentAccess(const LoadedSegment& seg, u32 offset, u32 size, bool is_write,
                          bool is_stack, Fault* fault);
  bool MemRead(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32* out,
               Fault* fault);
  bool MemWrite(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32 value,
                Fault* fault);

  // Far-transfer implementations.
  bool DoLcall(const Insn& insn, Fault* fault, u32* extra_cycles);
  // `release_bytes` implements `lret $n`: parameters copied by the gate are
  // released from both the inner and the outer stack.
  bool DoLret(u32 release_bytes, Fault* fault, u32* extra_cycles);
  bool DoInt(u8 vector, bool software, Fault* fault);
  bool DoIret(Fault* fault);

  // Fetches the instruction at CS:EIP. On success *insn points at storage
  // owned by the CPU (a decode-cache slot or fetch_scratch_) that stays
  // valid for the duration of the current instruction.
  bool FetchInsn(const DecodedInsn** insn, Fault* fault);
  bool FetchFromSlot(u32 linear, const DecodedInsn** insn, Fault* fault);
  Fault FetchBusFault(u32 linear) const;

  // Rebuilds the shared retire-cost table (CycleModel::BuildCostTable) and
  // drops decoded pages whose per-slot cost annotations became stale.
  void RebuildCostTable();

  PhysicalMemory& pm_;
  DescriptorTable& gdt_;
  DescriptorTable& idt_;
  CycleModel model_;
  // The one per-opcode retire-cost table (see CycleModel::CostTable): the
  // interpreter's retire path, the decode cache's slot annotations and the
  // block pre-summer all read this instance.
  CycleModel::CostTable cost_{};
  Tlb tlb_;

  std::array<u32, kNumRegs> regs_{};
  std::array<LoadedSegment, kNumSegRegs> segs_{};
  u32 eip_ = 0;
  u32 eflags_ = 0;
  u8 cpl_ = 0;
  u32 cr3_ = 0;
  Tss tss_;

  u64 cycles_ = 0;
  u64 instructions_ = 0;
  u32 host_base_ = 0;
  u32 host_size_ = 0;

  // --- Hardware interrupt fabric (optional) ---------------------------------
  IrqHub* irq_hub_ = nullptr;
  std::vector<IrqEvent>* irq_trace_ = nullptr;

  // --- Observability (optional) ---------------------------------------------
  // Both hooks share the track/index: a CPU records onto its own vCPU track.
  obs::FlightRecorder* recorder_ = nullptr;
  obs::CycleProfile* profiler_ = nullptr;
  u32 obs_track_ = 0;

  // --- Data access fast path -------------------------------------------------
  // Host-pointer pages keyed by linear page, validated against the TLB's
  // change counter (see dtlb.h for the full invalidation contract).
  DTlb dtlb_;
  bool dtlb_enabled_ = true;

  // --- Instruction fetch fast path -----------------------------------------
  // Decoded pages keyed by physical frame, shared across address spaces.
  DecodeCache dcache_;
  bool decode_cache_enabled_ = true;
  // Superblock engine switch (see set_block_engine_enabled). Effective only
  // while the decode cache is enabled.
  bool block_engine_enabled_ = true;
  BlockStats block_stats_;
  // Hot-trace tier switch (see set_trace_engine_enabled) and counters.
  // Promotion threshold: run-head executions before lowering. High enough
  // that cold code never pays the lowering cost, low enough that any loop
  // worth measuring gets promoted almost immediately.
  static constexpr u16 kTraceHotThreshold = 16;
  bool trace_engine_enabled_ = true;
  TraceStats trace_stats_;
  // One-entry fetch TLB pinning (linear page -> decoded physical page). An
  // entry is live only while both generation tags still match; TLB flushes
  // (CR3 load, INVLPG) and decode-cache invalidations (self-modifying code)
  // each kill it in O(1) by bumping their counter.
  u32 fetch_vpn_ = 0;
  u32 fetch_flags_ = 0;
  DecodeCache::Page* fetch_page_ = nullptr;
  u64 fetch_tlb_change_ = ~0ull;
  u64 fetch_dcache_gen_ = ~0ull;
  // Slow-path decode target (unaligned / page-crossing fetches), annotated
  // exactly like a cache slot so the execution core sees one shape.
  DecodedInsn fetch_scratch_;
};

}  // namespace palladium

#endif  // SRC_HW_CPU_H_
