#include "src/hw/bare_machine.h"

#include "src/asm/assembler.h"
#include "src/hw/paging.h"

namespace palladium {

BareMachine::BareMachine(const BareMachineConfig& config)
    : machine_(Machine::Config{config.physical_memory_bytes, config.cycle_model,
                               config.num_cpus}),
      bump_next_(config.physical_memory_bytes) {
  BuildIdentityPageTables(config.user_pages);
  BuildGdt();
}

u32 BareMachine::AllocFrame() {
  bump_next_ -= kPageSize;
  machine_.pm().Fill(bump_next_, 0, kPageSize);
  return bump_next_;
}

void BareMachine::BuildIdentityPageTables(bool user_pages) {
  PhysicalMemory& pm = machine_.pm();
  const u32 cr3 = AllocFrame();
  const u32 flags = kPtePresent | kPteWrite | (user_pages ? kPteUser : 0);
  const u32 pages = pm.size() / kPageSize;
  for (u32 vpn = 0; vpn < pages; ++vpn) {
    const u32 linear = vpn << kPageShift;
    u32 pde = 0;
    pm.Read32(cr3 + PdeIndex(linear) * 4, &pde);
    if (!(pde & kPtePresent)) {
      u32 table = AllocFrame();
      pde = MakePte(table, kPtePresent | kPteWrite | kPteUser);
      pm.Write32(cr3 + PdeIndex(linear) * 4, pde);
    }
    // Skip mapping the page-table region itself as user-writable; the bump
    // region keeps supervisor-only mappings so stray user writes fault.
    const bool is_pt_area = linear >= bump_next_;
    const u32 f = is_pt_area ? (kPtePresent | kPteWrite) : flags;
    pm.Write32((pde & kPteFrameMask) + PteIndex(linear) * 4, MakePte(linear, f));
  }
  // Every vCPU boots on the shared identity tables.
  for (u32 c = 0; c < machine_.num_cpus(); ++c) machine_.cpu(c).LoadCr3(cr3);
}

void BareMachine::BuildGdt() {
  DescriptorTable& gdt = machine_.gdt();
  const u32 kFlatLimit = 0xFFFFFFFFu;
  gdt.Set(kCode0Idx, SegmentDescriptor::MakeCode(0, kFlatLimit, 0));
  gdt.Set(kData0Idx, SegmentDescriptor::MakeData(0, kFlatLimit, 0));
  gdt.Set(kCode3Idx, SegmentDescriptor::MakeCode(0, kFlatLimit, 3));
  gdt.Set(kData3Idx, SegmentDescriptor::MakeData(0, kFlatLimit, 3));
  gdt.Set(kCode1Idx, SegmentDescriptor::MakeCode(0, kFlatLimit, 1));
  gdt.Set(kData1Idx, SegmentDescriptor::MakeData(0, kFlatLimit, 1));
  gdt.Set(kCode2Idx, SegmentDescriptor::MakeCode(0, kFlatLimit, 2));
  gdt.Set(kData2Idx, SegmentDescriptor::MakeData(0, kFlatLimit, 2));
  // Inner stacks for privilege transitions: one page each at PL0..PL2 *per
  // vCPU* (concurrent privilege transitions on different cores must not
  // share a transition stack), described by flat data segments at the
  // matching DPL.
  for (u8 level = 0; level < 3; ++level) {
    gdt.Set(kTssStackBase + level, SegmentDescriptor::MakeData(0, 0xFFFFFFFFu, level));
    for (u32 c = 0; c < machine_.num_cpus(); ++c) {
      u32 frame = AllocFrame();
      if (c == 0) tss_stack_top_[level] = frame + kPageSize;
      machine_.cpu(c).tss().ss[level] =
          Selector::FromIndex(kTssStackBase + level, level).raw();
      machine_.cpu(c).tss().esp[level] = frame + kPageSize;
    }
  }
}

Selector BareMachine::CodeSelector(u8 cpl) {
  switch (cpl) {
    case 0:
      return Selector::FromIndex(kCode0Idx, 0);
    case 1:
      return Selector::FromIndex(kCode1Idx, 1);
    case 2:
      return Selector::FromIndex(kCode2Idx, 2);
    default:
      return Selector::FromIndex(kCode3Idx, 3);
  }
}

Selector BareMachine::DataSelector(u8 cpl) {
  switch (cpl) {
    case 0:
      return Selector::FromIndex(kData0Idx, 0);
    case 1:
      return Selector::FromIndex(kData1Idx, 1);
    case 2:
      return Selector::FromIndex(kData2Idx, 2);
    default:
      return Selector::FromIndex(kData3Idx, 3);
  }
}

bool BareMachine::LoadImage(const LinkedImage& image) {
  return machine_.pm().WriteBlock(image.base, image.bytes.data(),
                                  static_cast<u32>(image.bytes.size()));
}

void BareMachine::StartCpu(u32 cpu_index, u32 entry, u8 cpl, u32 stack_top) {
  Cpu& cpu = machine_.cpu(cpu_index);
  cpu.ForceSegment(SegReg::kCs, CodeSelector(cpl));
  cpu.ForceSegment(SegReg::kSs, DataSelector(cpl));
  cpu.ForceSegment(SegReg::kDs, DataSelector(cpl));
  cpu.ForceSegment(SegReg::kEs, DataSelector(cpl));
  cpu.set_cpl(cpl);
  cpu.set_eip(entry);
  cpu.set_reg(Reg::kEsp, stack_top);
}

std::optional<LinkedImage> BareMachine::LoadProgram(const std::string& source, u32 base,
                                                    std::string* diag) {
  auto img = AssembleAndLink(source, base, {}, diag);
  if (!img) return std::nullopt;
  if (!LoadImage(*img)) {
    if (diag != nullptr) *diag = "image does not fit in physical memory";
    return std::nullopt;
  }
  return img;
}

}  // namespace palladium
