// A simple bus-mastering NIC model: RX and TX descriptor rings living in
// simulated physical memory, DMA through PhysicalMemory (so every DMA write
// fires the write observer and the decode cache stays coherent), and one
// interrupt line. Frames are injected by the host harness with an explicit
// arrival cycle, which keeps the whole device a pure function of the
// simulated clock.
//
// Descriptor layout (16 bytes, little-endian):
//   word0  status — kDescOwn: owned by the NIC (RX: slot free for hardware;
//                   TX: frame ready to send); kDescDone: hardware finished
//                   (RX: frame landed; TX: frame sent)
//   word1  frame length in bytes
//   word2  physical address of this descriptor's buffer (driver-provided;
//          buffers need not be contiguous — they are ordinary frames)
//   word3  reserved
// A buffer holds at most buf_stride bytes.
#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <deque>
#include <vector>

#include "src/hw/irq.h"
#include "src/hw/physical_memory.h"
#include "src/hw/types.h"

namespace palladium {

struct NicRing {
  u32 desc_phys = 0;    // base of `count` 16-byte descriptors
  u32 count = 0;
  u32 buf_stride = 2048;  // capacity of each descriptor's buffer
};

inline constexpr u32 kDescOwn = 1;
inline constexpr u32 kDescDone = 2;
inline constexpr u32 kNicDescBytes = 16;
inline constexpr u32 kNicDescStatus = 0;
inline constexpr u32 kNicDescLen = 4;
inline constexpr u32 kNicDescBuf = 8;

class Nic : public IrqDevice {
 public:
  struct Stats {
    u64 rx_frames = 0;    // DMA'd into the ring
    u64 rx_dropped = 0;   // arrived with no free descriptor
    u64 rx_bytes = 0;
    u64 tx_frames = 0;
    u64 tx_bytes = 0;
  };

  Nic(PhysicalMemory& pm, InterruptController& pic, u32 irq) : pm_(pm), pic_(pic), irq_(irq) {}

  void ConfigureRx(const NicRing& ring) {
    rx_ = ring;
    rx_head_ = 0;
  }
  void ConfigureTx(const NicRing& ring) {
    tx_ = ring;
    tx_head_ = 0;
  }

  // Host harness: a frame arrives on the wire at `at_cycle` (clamped to be
  // non-decreasing so the arrival sequence is a valid timeline).
  void Inject(const u8* frame, u32 len, u64 at_cycle);

  u64 next_event() const override {
    return arrivals_.empty() ? kIdle : arrivals_.front().cycle;
  }
  void Advance(u64 now) override;

  // Kernel driver doorbell: transmit every ready descriptor in ring order.
  // Returns the number of frames sent; sent frames are captured in
  // tx_frames() for harness inspection ("the wire" — bounded to the most
  // recent kTxLogCap frames so soak runs don't grow host memory without
  // bound; stats() keeps the full counts).
  u32 TxKick();
  static constexpr size_t kTxLogCap = 4096;

  u32 irq() const { return irq_; }
  const Stats& stats() const { return stats_; }
  const std::deque<std::vector<u8>>& tx_frames() const { return tx_log_; }
  const NicRing& rx_ring() const { return rx_; }
  const NicRing& tx_ring() const { return tx_; }
  u32 rx_head() const { return rx_head_; }

 private:
  struct Arrival {
    u64 cycle;
    std::vector<u8> frame;
  };

  bool DmaRxFrame(const std::vector<u8>& frame);

  PhysicalMemory& pm_;
  InterruptController& pic_;
  u32 irq_;
  NicRing rx_;
  NicRing tx_;
  u32 rx_head_ = 0;
  u32 tx_head_ = 0;
  u64 last_arrival_ = 0;
  std::deque<Arrival> arrivals_;
  std::deque<std::vector<u8>> tx_log_;
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_HW_NIC_H_
