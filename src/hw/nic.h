// A bus-mastering NIC model with per-core RX/TX queue pairs: descriptor
// rings living in simulated physical memory, DMA through PhysicalMemory (so
// every DMA write fires the write observer and the decode cache stays
// coherent), hardware RSS spreading arriving frames across queues, and one
// RX + one TX-completion interrupt line per queue, each wired to its owning
// core's local PIC (MSI-X style). Frames are injected by the host harness
// with an explicit arrival cycle, which keeps the whole device a pure
// function of the simulated clock.
//
// Production mechanisms modeled here:
//  - RSS: the queue for an arriving frame is a hash of its 5-tuple,
//    computed "in hardware" at wire time (RssHash below — also the software
//    steering hash, so queue placement and flow steering agree).
//  - NAPI masking: the driver may disable a queue's RX interrupt while it
//    polls the ring; DMA during the masked window latches a deferred edge
//    that fires on re-enable, so an undrained ring can never lose its wakeup.
//  - TX completion: the doorbell (TxKick) only *schedules* per-descriptor
//    DMA; descriptors complete tx_dma_cycles() apart on the simulated clock
//    and each Advance() that retires completions raises one TX-completion
//    IRQ (completions landing together coalesce into a single edge).
//
// Descriptor layout (16 bytes, little-endian):
//   word0  status — kDescOwn: owned by the NIC (RX: slot free for hardware;
//                   TX: frame ready to send); kDescDone: hardware finished
//                   (RX: frame landed; TX: frame sent)
//   word1  frame length in bytes
//   word2  physical address of this descriptor's buffer (driver-provided;
//          buffers need not be contiguous — they are ordinary frames)
//   word3  reserved
// A buffer holds at most buf_stride bytes.
#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <deque>
#include <vector>

#include "src/hw/irq.h"
#include "src/hw/physical_memory.h"
#include "src/hw/types.h"

namespace palladium {

namespace obs {
class FlightRecorder;
}  // namespace obs

struct NicRing {
  u32 desc_phys = 0;    // base of `count` 16-byte descriptors
  u32 count = 0;
  u32 buf_stride = 2048;  // capacity of each descriptor's buffer
};

inline constexpr u32 kDescOwn = 1;
inline constexpr u32 kDescDone = 2;
inline constexpr u32 kNicDescBytes = 16;
inline constexpr u32 kNicDescStatus = 0;
inline constexpr u32 kNicDescLen = 4;
inline constexpr u32 kNicDescBuf = 8;

inline constexpr u32 kNicMaxQueues = 8;  // matches kMaxCpus

class Nic : public IrqDevice {
 public:
  struct Stats {
    u64 rx_frames = 0;    // DMA'd into a ring
    u64 rx_dropped = 0;   // arrived with no free descriptor
    u64 rx_bytes = 0;
    u64 tx_frames = 0;          // descriptor DMA completed
    u64 tx_bytes = 0;
    u64 rx_irqs_deferred = 0;   // DMA while the RX line was masked (NAPI)
    u64 tx_completion_irqs = 0; // TX-completion edges raised (coalesced)
    u64 tx_irqs_suppressed = 0; // completion batches with the TX line off
  };

  // Single-queue construction: queue 0 raises `irq` (RX) and `irq + 1`
  // (TX completion) on `pic`. Additional queues are wired with WireQueue.
  Nic(PhysicalMemory& pm, InterruptController& pic, u32 irq);

  // Multi-queue setup. SetQueueCount resets per-queue state; queue 0 keeps
  // the constructor's wiring until re-wired. Count is clamped to
  // [1, kNicMaxQueues].
  void SetQueueCount(u32 n);
  void WireQueue(u32 q, InterruptController* pic, u32 rx_irq, u32 tx_irq);

  void ConfigureRx(const NicRing& ring) { ConfigureRx(0, ring); }
  void ConfigureTx(const NicRing& ring) { ConfigureTx(0, ring); }
  void ConfigureRx(u32 q, const NicRing& ring);
  void ConfigureTx(u32 q, const NicRing& ring);

  // Host harness: a frame arrives on the wire at `at_cycle` (clamped to be
  // non-decreasing so the arrival sequence is a valid timeline). With more
  // than one queue the frame lands on queue RssHash(frame) % num_queues.
  void Inject(const u8* frame, u32 len, u64 at_cycle);

  // The hardware RSS hash: FNV-1a over the 5-tuple fields present, finished
  // with a murmur3 fmix32 avalanche. Shared with the dataplane's software
  // flow steering so queue placement and worker placement agree.
  static u32 RssHash(const u8* frame, u32 len);

  // NAPI: the driver masks a queue's RX line while polling. DMA during the
  // masked window sets a deferred edge; re-enabling with the edge pending
  // raises the line immediately (no lost wakeups on an undrained ring).
  void SetRxIrqEnabled(u32 q, bool enabled);
  bool rx_irq_enabled(u32 q) const { return queues_[q].rx_irq_enabled; }

  // TX-completion interrupt enable (a per-queue device register, as on real
  // NICs): drivers that reclaim completed descriptors in the xmit path can
  // switch the line off entirely instead of eating one dispatch per
  // completion batch. Suppressed edges are counted, not latched.
  void SetTxIrqEnabled(u32 q, bool enabled);
  bool tx_irq_enabled(u32 q) const { return queues_[q].tx_irq_enabled; }

  // RX interrupt moderation (the ITR register): with a nonzero window the
  // NIC raises at most one RX interrupt per `cycles` per queue — the first
  // DMA after a quiet period fires (almost) immediately, subsequent frames
  // ride the armed timer and are picked up by the same NAPI poll. 0 (the
  // default) interrupts on every DMA.
  void set_rx_irq_moderation(u32 cycles) { rx_irq_moderation_ = cycles; }
  u32 rx_irq_moderation() const { return rx_irq_moderation_; }

  // Whole-device view (single-hub compatibility): earliest event over every
  // queue; Advance runs them all.
  u64 next_event() const override;
  void Advance(u64 now) override;

  // Per-queue device handles for per-core IRQ hubs: attaching queue_device(q)
  // to core q's hub means core q advances (and is interrupted by) only its
  // own queue.
  IrqDevice* queue_device(u32 q) { return &queue_devices_[q]; }

  // Kernel driver doorbell for queue q's TX ring at cycle `now`: every ready
  // (kDescOwn) descriptor is scheduled for DMA, completing tx_dma_cycles()
  // apart; Advance() retires completions and raises the TX-completion IRQ.
  // Returns the number of descriptors newly scheduled.
  u32 TxKick(u32 q, u64 now);

  // Harness finalization: complete every scheduled TX descriptor now (the
  // run is over; nobody is left to advance the clock past the last DMA).
  void FlushTx();

  // Driver backpressure: when queue q's TX ring is full but completions are
  // pending, returns the cycle at which the oldest pending completion
  // retires (the driver spins on the doorbell until then). kIdle if nothing
  // is pending.
  u64 NextTxCompletion(u32 q) const;

  u32 num_queues() const { return static_cast<u32>(queues_.size()); }
  u32 irq() const { return queues_[0].rx_irq; }
  u32 tx_irq() const { return queues_[0].tx_irq; }
  u32 tx_dma_cycles() const { return tx_dma_cycles_; }
  void set_tx_dma_cycles(u32 cycles) { tx_dma_cycles_ = cycles > 0 ? cycles : 1; }

  // Observability: a pure observer — recording never touches device state or
  // the simulated clock. Queue q records on track `first_track + q` so every
  // track stays inside one core's clock domain (per-queue devices advance on
  // their owning core's clock, which is not globally monotone under SMP).
  void set_recorder(obs::FlightRecorder* recorder, u32 first_track) {
    recorder_ = recorder;
    obs_first_track_ = first_track;
  }

  const Stats& stats() const { return stats_; }
  const std::deque<std::vector<u8>>& tx_frames() const { return tx_log_; }
  const NicRing& rx_ring(u32 q = 0) const { return queues_[q].rx; }
  const NicRing& tx_ring(u32 q = 0) const { return queues_[q].tx; }
  u32 rx_head(u32 q = 0) const { return queues_[q].rx_head; }
  u64 rx_frames_on_queue(u32 q) const { return queues_[q].rx_count; }

  static constexpr size_t kTxLogCap = 4096;

 private:
  struct Arrival {
    u64 cycle;
    std::vector<u8> frame;
  };

  struct Queue {
    NicRing rx;
    NicRing tx;
    u32 rx_head = 0;  // next RX descriptor the hardware fills
    u32 tx_head = 0;  // next TX descriptor to complete
    InterruptController* pic = nullptr;
    u32 rx_irq = 0;
    u32 tx_irq = 0;
    bool rx_irq_enabled = true;
    bool rx_irq_deferred = false;
    bool tx_irq_enabled = true;
    u64 rx_irq_due = IrqDevice::kIdle;  // armed moderation timer, if any
    u64 rx_irq_gate = 0;                // earliest cycle the next IRQ may fire
    std::deque<Arrival> arrivals;
    std::deque<u64> tx_complete_at;  // scheduled completions, in ring order
    u64 tx_last_scheduled = 0;       // serializes the DMA engine across kicks
    u64 rx_count = 0;                // frames DMA'd via this queue
  };

  // Adapter exposing one queue as an IrqDevice on a per-core hub.
  class QueueDevice : public IrqDevice {
   public:
    void Bind(Nic* nic, u32 q) {
      nic_ = nic;
      q_ = q;
    }
    u64 next_event() const override { return nic_->QueueNextEvent(q_); }
    void Advance(u64 now) override { nic_->AdvanceQueue(q_, now); }
    void Poke() { NotifyHub(); }

   private:
    Nic* nic_ = nullptr;
    u32 q_ = 0;
  };

  u64 QueueNextEvent(u32 q) const;
  void AdvanceQueue(u32 q, u64 now);
  bool DmaRxFrame(Queue& queue, const std::vector<u8>& frame);
  u32 CompleteOneTx(Queue& queue);  // returns the completed frame's length

  PhysicalMemory& pm_;
  std::vector<Queue> queues_;
  std::vector<QueueDevice> queue_devices_;
  u64 last_arrival_ = 0;
  u32 tx_dma_cycles_ = 64;  // per-descriptor DMA latency
  u32 rx_irq_moderation_ = 0;  // ITR window; 0 = interrupt per DMA
  std::deque<std::vector<u8>> tx_log_;  // completion order, most recent kTxLogCap
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
  u32 obs_first_track_ = 0;
};

}  // namespace palladium

#endif  // SRC_HW_NIC_H_
