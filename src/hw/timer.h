// Programmable interval timer: raises its IRQ line every `period` cycles of
// the simulated clock. Ticks that elapse while interrupts are blocked
// coalesce into one pending edge, like a real PIT behind a masked PIC.
#ifndef SRC_HW_TIMER_H_
#define SRC_HW_TIMER_H_

#include "src/hw/irq.h"
#include "src/hw/types.h"

namespace palladium {

class IntervalTimer : public IrqDevice {
 public:
  explicit IntervalTimer(InterruptController& pic, u32 irq = 0) : pic_(pic), irq_(irq) {}

  // Arms the timer: first edge at now + period, then every period cycles.
  void Program(u64 period_cycles, u64 now) {
    period_ = period_cycles == 0 ? 1 : period_cycles;
    next_fire_ = now + period_;
    NotifyHub();
  }

  void Stop() {
    next_fire_ = kIdle;
    NotifyHub();
  }
  bool armed() const { return next_fire_ != kIdle; }
  u64 period() const { return period_; }

  u64 next_event() const override { return next_fire_; }

  void Advance(u64 now) override {
    while (next_fire_ <= now) {
      pic_.Raise(irq_);
      ++ticks_;
      next_fire_ += period_;
    }
  }

  u32 irq() const { return irq_; }
  u64 ticks() const { return ticks_; }

 private:
  InterruptController& pic_;
  u32 irq_;
  u64 period_ = 1;
  u64 next_fire_ = kIdle;
  u64 ticks_ = 0;
};

}  // namespace palladium

#endif  // SRC_HW_TIMER_H_
