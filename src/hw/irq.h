// The asynchronous half of the simulated machine: a prioritized interrupt
// controller (vector latch / mask / ack / EOI, 8259-style fixed priority),
// the device interface, and the IrqHub that the CPU polls at instruction-
// retire boundaries.
//
// Determinism contract: every device event is keyed off the CPU's *cycle
// counter*, which the decode-cache and D-TLB fast paths keep byte-identical
// to the per-byte oracle. The CPU consults the hub only between retired
// instructions, so interrupt delivery points — and therefore every
// downstream architectural effect — are identical in all four
// fast-path/oracle combinations.
#ifndef SRC_HW_IRQ_H_
#define SRC_HW_IRQ_H_

#include <array>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

class IrqHub;

// Fixed-priority interrupt controller: IRQ 0 is the highest priority. An
// IRQ line is *deliverable* when it is pending, not masked, and strictly
// higher priority than every in-service line (the classic nesting rule). In
// auto-EOI mode the in-service bit is never set, for handlers written in
// simulated code with no way to signal completion (there is no MMIO).
class InterruptController {
 public:
  static constexpr u32 kNumIrqs = 16;
  static constexpr int kNoIrq = -1;

  explicit InterruptController(u8 vector_base = 0x20) : vector_base_(vector_base) {}

  u8 vector_base() const { return vector_base_; }
  u32 VectorFor(u32 irq) const { return vector_base_ + irq; }

  // Latches the line (idempotent while already pending, like an edge that
  // arrives before the previous one was serviced: the two coalesce).
  void Raise(u32 irq);

  void SetMasked(u32 irq, bool masked);
  bool IsMasked(u32 irq) const { return (mask_ >> irq) & 1; }

  bool HasDeliverable() const { return DeliverableIrq() != kNoIrq; }

  // Claims the highest-priority deliverable IRQ: clears pending, sets
  // in-service (unless auto-EOI), returns its *vector*. kNoIrq when nothing
  // is deliverable.
  int Acknowledge();

  // Ends the highest-priority in-service interrupt.
  void Eoi();

  // Auto-EOI: Acknowledge never sets in-service (bare-machine handlers
  // written in simulated code cannot issue an EOI).
  void set_auto_eoi(bool v) { auto_eoi_ = v; }

  u16 pending() const { return pending_; }
  u16 in_service() const { return in_service_; }

  u64 raised(u32 irq) const { return raised_[irq & (kNumIrqs - 1)]; }
  u64 delivered(u32 irq) const { return delivered_[irq & (kNumIrqs - 1)]; }

  void set_hub(IrqHub* hub) { hub_ = hub; }

 private:
  int DeliverableIrq() const;

  u8 vector_base_;
  u16 pending_ = 0;
  u16 mask_ = 0;
  u16 in_service_ = 0;
  bool auto_eoi_ = false;
  std::array<u64, kNumIrqs> raised_{};
  std::array<u64, kNumIrqs> delivered_{};
  IrqHub* hub_ = nullptr;
};

// A device on the simulated interrupt fabric. Devices are pure functions of
// the cycle counter: next_event() names the next cycle at which the device
// has work, Advance(now) performs every event up to and including `now`
// (DMA, raising IRQ lines). Host-side configuration between runs is fine;
// nothing may depend on host time or call order within a cycle.
//
// A device added to an IrqHub must call NotifyHub() after any mutation that
// changes next_event() (a reprogrammed timer, an injected frame): the hub
// caches the next attention cycle, and a schedule change it never hears
// about would otherwise go undelivered forever.
class IrqDevice {
 public:
  virtual ~IrqDevice() = default;
  static constexpr u64 kIdle = ~0ull;
  virtual u64 next_event() const = 0;
  virtual void Advance(u64 now) = 0;

  void set_hub(IrqHub* hub) { hub_ = hub; }

 protected:
  inline void NotifyHub();

 private:
  IrqHub* hub_ = nullptr;
};

// Aggregates the PIC and the devices behind one cheap per-instruction probe:
// the CPU reads attention_cycle() (one load + compare) and only calls Poll
// when the counter has reached it. Host-side mutations (a raise from kernel
// code, an EOI, a reprogrammed timer) call Poke() so the next boundary
// re-evaluates.
class IrqHub {
 public:
  explicit IrqHub(InterruptController& pic) : pic_(pic) { pic_.set_hub(this); }

  void AddDevice(IrqDevice* device) {
    devices_.push_back(device);
    device->set_hub(this);
    Poke();
  }

  // Detach a device whose lifetime ends before the hub's (the NIC is owned
  // by the harness, not the kernel).
  void RemoveDevice(IrqDevice* device) {
    for (auto it = devices_.begin(); it != devices_.end(); ++it) {
      if (*it == device) {
        devices_.erase(it);
        device->set_hub(nullptr);
        break;
      }
    }
    Poke();
  }

  InterruptController& pic() { return pic_; }

  u64 attention_cycle() const { return attention_; }
  void Poke() { attention_ = 0; }

  // Advances every device to `now`, then, if delivery is allowed (the CPU
  // passes its IF flag) and the PIC has a deliverable line, acknowledges it
  // and returns the vector; otherwise recomputes attention_ and returns
  // kNoIrq. Called by the CPU at retire boundaries once cycles >= attention.
  int Poll(u64 now, bool allow_delivery);

  // Device time without delivery (the kernel's idle loop, and masked-IF
  // catch-up). Leaves attention_ primed.
  void AdvanceDevices(u64 now);

  // Earliest upcoming device event, kIdle when every device is quiescent.
  u64 NextDeviceEvent() const;

  // Same, ignoring one device — the scheduler's idle loop uses this to skip
  // the free-running interval timer (whose ticks cannot wake anybody) when
  // deciding whether a wakeup source exists at all.
  u64 NextDeviceEventExcept(const IrqDevice* skip) const;

 private:
  void Recompute(u64 now);

  InterruptController& pic_;
  std::vector<IrqDevice*> devices_;
  u64 attention_ = 0;  // re-evaluate as soon as the CPU looks
};

inline void IrqDevice::NotifyHub() {
  if (hub_ != nullptr) hub_->Poke();
}

}  // namespace palladium

#endif  // SRC_HW_IRQ_H_
