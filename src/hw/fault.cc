#include "src/hw/fault.h"

#include <sstream>

namespace palladium {

const char* FaultVectorName(FaultVector v) {
  switch (v) {
    case FaultVector::kDivideError:
      return "#DE";
    case FaultVector::kInvalidOpcode:
      return "#UD";
    case FaultVector::kDoubleFault:
      return "#DF";
    case FaultVector::kInvalidTss:
      return "#TS";
    case FaultVector::kSegmentNotPresent:
      return "#NP";
    case FaultVector::kStackFault:
      return "#SS";
    case FaultVector::kGeneralProtection:
      return "#GP";
    case FaultVector::kPageFault:
      return "#PF";
  }
  return "#??";
}

std::string FaultToString(const Fault& f) {
  std::ostringstream os;
  os << FaultVectorName(f.vector) << "(err=0x" << std::hex << f.error_code;
  if (f.vector == FaultVector::kPageFault) {
    os << ", addr=0x" << f.linear_address;
  }
  os << std::dec << ") " << f.detail;
  return os.str();
}

}  // namespace palladium
