// BareMachine: a minimal bring-up of the simulated hardware — identity-mapped
// page tables and flat 4 GB segments at each privilege level — used by unit
// tests, micro-benchmarks and the assembler's execution tests. The full
// kernel model (src/kernel) supersedes this for OS-level scenarios.
#ifndef SRC_HW_BARE_MACHINE_H_
#define SRC_HW_BARE_MACHINE_H_

#include "src/asm/object_file.h"
#include "src/hw/machine.h"

namespace palladium {

struct BareMachineConfig {
  u32 physical_memory_bytes = 16u << 20;
  bool user_pages = true;  // identity map with PTE U-bit set (PPL 1)
  CycleModel cycle_model = CycleModel::Measured();
  // vCPU count (0 = PALLADIUM_SMP env, default 1). All vCPUs share the
  // identity page tables and the GDT; each gets its own TSS inner stacks.
  u32 num_cpus = 0;
};

class BareMachine {
 public:
  using Config = BareMachineConfig;
  // Well-known GDT slots.
  static constexpr u16 kNullIdx = 0;
  static constexpr u16 kCode0Idx = 1;
  static constexpr u16 kData0Idx = 2;
  static constexpr u16 kCode3Idx = 3;
  static constexpr u16 kData3Idx = 4;
  static constexpr u16 kCode1Idx = 5;
  static constexpr u16 kData1Idx = 6;
  static constexpr u16 kCode2Idx = 7;
  static constexpr u16 kData2Idx = 8;
  static constexpr u16 kTssStackBase = 9;  // 9..11: PL0..PL2 stack segments (flat aliases)
  static constexpr u16 kFirstFreeIdx = 16;

  explicit BareMachine(const BareMachineConfig& config = BareMachineConfig{});

  Machine& machine() { return machine_; }
  Cpu& cpu() { return machine_.cpu(); }
  PhysicalMemory& pm() { return machine_.pm(); }
  DescriptorTable& gdt() { return machine_.gdt(); }
  DescriptorTable& idt() { return machine_.idt(); }

  // Copies a linked image into (identity-mapped) memory.
  bool LoadImage(const LinkedImage& image);

  // Points the CPU at `entry` with flat segments of the given privilege
  // level and the stack at `stack_top`.
  void Start(u32 entry, u8 cpl, u32 stack_top) { StartCpu(0, entry, cpl, stack_top); }
  // SMP bring-up: same, for an arbitrary vCPU (callers give each vCPU its
  // own entry point and stack; memory and page tables are shared).
  void StartCpu(u32 cpu_index, u32 entry, u8 cpl, u32 stack_top);

  StopInfo Run(u64 cycle_limit = ~0ull) { return cpu().Run(cycle_limit); }

  // Assembles, links at `base`, loads, and returns the image (nullopt +
  // *diag on failure). Convenience for tests.
  std::optional<LinkedImage> LoadProgram(const std::string& source, u32 base, std::string* diag);

  static Selector CodeSelector(u8 cpl);
  static Selector DataSelector(u8 cpl);

  // Physical bump allocator used for page tables; exposed so tests can
  // allocate scratch frames that do not collide with loaded code.
  u32 AllocFrame();

  u32 tss_stack_top(u8 level) const { return tss_stack_top_[level]; }

 private:
  void BuildIdentityPageTables(bool user_pages);
  void BuildGdt();

  Machine machine_;
  u32 bump_next_;  // grows downward from the top of physical memory
  u32 tss_stack_top_[3] = {0, 0, 0};  // vCPU 0's (compat accessor)
};

}  // namespace palladium

#endif  // SRC_HW_BARE_MACHINE_H_
