// Two-level page tables with IA-32 semantics: the page-level half of the
// paper's protection hardware. The PTE U/S bit is the paper's "PPL" (PPL 0 ==
// supervisor page, PPL 1 == user page): code at SPL 3 cannot touch PPL 0.
#ifndef SRC_HW_PAGING_H_
#define SRC_HW_PAGING_H_

#include <functional>
#include <utility>

#include "src/hw/fault.h"
#include "src/hw/physical_memory.h"
#include "src/hw/types.h"

namespace palladium {

// PTE/PDE flag bits (IA-32 layout).
inline constexpr u32 kPtePresent = 1u << 0;
inline constexpr u32 kPteWrite = 1u << 1;
inline constexpr u32 kPteUser = 1u << 2;  // 1 => PPL 1 (user), 0 => PPL 0 (supervisor)
inline constexpr u32 kPteAccessed = 1u << 5;
inline constexpr u32 kPteDirty = 1u << 6;
inline constexpr u32 kPteFlagsMask = kPageMask;
inline constexpr u32 kPteFrameMask = ~kPageMask;

inline constexpr u32 MakePte(u32 frame_addr, u32 flags) {
  return (frame_addr & kPteFrameMask) | (flags & kPteFlagsMask);
}

inline constexpr u32 PdeIndex(u32 linear) { return linear >> 22; }
inline constexpr u32 PteIndex(u32 linear) { return (linear >> 12) & 0x3FF; }

struct WalkResult {
  bool ok = false;
  u32 frame = 0;      // physical base of the 4 KB frame
  u32 flags = 0;      // effective PTE flags (W and U anded with the PDE's)
  u32 accesses = 0;   // physical memory touches performed by the walk
  Fault fault;        // valid when !ok
};

// Walks the two-level table rooted at `cr3`. `is_write` / `is_user` describe
// the access being translated; `is_user` is true only for CPL 3, matching the
// hardware rule that SPL 0–2 code accesses pages as supervisor. `is_fetch`
// marks instruction fetches so the fault's I/D bit is reported faithfully.
WalkResult WalkPageTable(const PhysicalMemory& pm, u32 cr3, u32 linear, bool is_write,
                         bool is_user, bool is_fetch = false);

// Sets the Accessed/Dirty bits the way the MMU would. Returns false if the
// mapping vanished (caller bug).
bool SetAccessedDirty(PhysicalMemory& pm, u32 cr3, u32 linear, bool dirty);

// Host-side page-table editing helpers used by the kernel model. These are
// "kernel software", not hardware, and charge no cycles themselves.
//
// An editor can carry an invalidation hook that fires with the linear
// address of every mapping it changes — the kernel wires it to the CPU's
// INVLPG analogue (Tlb::FlushPage), so no PTE edit can leave a stale entry
// in either the data TLB or the instruction-fetch fast path.
class PageTableEditor {
 public:
  using InvalidateFn = std::function<void(u32 linear)>;

  PageTableEditor(PhysicalMemory& pm, u32 cr3, InvalidateFn invalidate = nullptr)
      : pm_(pm), cr3_(cr3), invalidate_(std::move(invalidate)) {}

  // Reads the raw PTE for `linear`; returns false if no page table is present.
  bool GetPte(u32 linear, u32* out) const;

  // Writes the raw PTE for `linear`; the page table itself must exist.
  bool SetPte(u32 linear, u32 pte);

  // Maps `linear` -> `frame` with `flags`, allocating the page table from
  // `alloc_frame` (a callback returning a zeroed frame address, 0 on OOM).
  template <typename FrameAlloc>
  bool Map(u32 linear, u32 frame, u32 flags, FrameAlloc&& alloc_frame) {
    u32 pde;
    if (!pm_.Read32(cr3_ + PdeIndex(linear) * 4, &pde)) return false;
    if (!(pde & kPtePresent)) {
      u32 table = alloc_frame();
      if (table == 0) return false;
      pde = MakePte(table, kPtePresent | kPteWrite | kPteUser);
      if (!pm_.Write32(cr3_ + PdeIndex(linear) * 4, pde)) return false;
    }
    if (!pm_.Write32((pde & kPteFrameMask) + PteIndex(linear) * 4, MakePte(frame, flags))) {
      return false;
    }
    Invalidate(linear);
    return true;
  }

  bool Unmap(u32 linear);

  // Sets or clears PTE flag bits on an existing present mapping.
  bool UpdateFlags(u32 linear, u32 set_bits, u32 clear_bits);

 private:
  void Invalidate(u32 linear) {
    if (invalidate_) invalidate_(linear);
  }

  PhysicalMemory& pm_;
  u32 cr3_;
  InvalidateFn invalidate_;
};

}  // namespace palladium

#endif  // SRC_HW_PAGING_H_
