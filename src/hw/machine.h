// Machine: the assembled simulated computer — physical memory, descriptor
// tables, and one or more vCPUs. The kernel model builds on exactly this.
//
// SMP model: all vCPUs share PhysicalMemory, the GDT and the IDT (as on a
// real SMP x86 with a shared descriptor-table image); each vCPU owns its
// architectural registers, TLB, D-TLB, decode cache and fetch TLB. The
// machine tracks a "current" vCPU index — the core whose trap the host-side
// kernel is presently servicing — so host code written against the
// uniprocessor `cpu()` accessor transparently operates on the trapping core.
// Interleaving across vCPUs is the interleaver's/scheduler's job (see
// src/hw/smp.h); the Machine itself is purely the shared chassis.
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/physical_memory.h"
#include "src/hw/segment.h"
#include "src/hw/types.h"

namespace palladium {

// Upper bound on vCPUs (the interleaver and kernel fabrics size off it; the
// paper-era target is N <= 4, the cap leaves headroom).
inline constexpr u32 kMaxCpus = 8;

struct MachineConfig {
  u32 physical_memory_bytes = 64u << 20;  // 64 MB
  CycleModel cycle_model = CycleModel::Measured();
  // Number of vCPUs. 0 = read PALLADIUM_SMP from the environment (default 1),
  // so any existing harness can be re-run SMP without code changes; an
  // explicit value pins the count (tests asserting uniprocessor scheduling
  // order pass 1). Clamped to [1, kMaxCpus].
  u32 num_cpus = 0;
};

inline u32 ResolveNumCpus(u32 requested) {
  u32 n = requested;
  if (n == 0) {
    const char* env = std::getenv("PALLADIUM_SMP");
    // Garbage or negative values mean "invalid", not "maximum": atoi yields
    // <= 0 for both, which falls through to the uniprocessor default.
    const int parsed = env != nullptr ? std::atoi(env) : 1;
    n = parsed > 0 ? static_cast<u32>(parsed) : 1;
  }
  if (n == 0) n = 1;
  return n > kMaxCpus ? kMaxCpus : n;
}

class Machine {
 public:
  using Config = MachineConfig;

  explicit Machine(const Config& config = MachineConfig{})
      : pm_(config.physical_memory_bytes), gdt_(128), idt_(64) {
    const u32 n = ResolveNumCpus(config.num_cpus);
    cpus_.reserve(n);
    for (u32 i = 0; i < n; ++i) {
      cpus_.push_back(std::make_unique<Cpu>(pm_, gdt_, idt_, config.cycle_model));
    }
  }

  PhysicalMemory& pm() { return pm_; }
  DescriptorTable& gdt() { return gdt_; }
  DescriptorTable& idt() { return idt_; }

  u32 num_cpus() const { return static_cast<u32>(cpus_.size()); }

  // The current vCPU: the core whose instruction stream the host is driving
  // or whose trap it is servicing. Uniprocessor callers never touch the
  // index and keep operating on vCPU 0.
  Cpu& cpu() { return *cpus_[current_cpu_]; }
  const Cpu& cpu() const { return *cpus_[current_cpu_]; }
  Cpu& cpu(u32 index) { return *cpus_[index]; }
  const Cpu& cpu(u32 index) const { return *cpus_[index]; }

  u32 current_cpu_index() const { return current_cpu_; }
  void set_current_cpu(u32 index) {
    if (index < cpus_.size()) current_cpu_ = index;
  }

 private:
  PhysicalMemory pm_;
  DescriptorTable gdt_;
  DescriptorTable idt_;
  std::vector<std::unique_ptr<Cpu>> cpus_;  // Cpu holds references; not movable
  u32 current_cpu_ = 0;
};

}  // namespace palladium

#endif  // SRC_HW_MACHINE_H_
