// Machine: the assembled simulated computer — physical memory, descriptor
// tables, and the CPU. The kernel model builds on exactly this.
#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include "src/hw/cpu.h"
#include "src/hw/physical_memory.h"
#include "src/hw/segment.h"
#include "src/hw/types.h"

namespace palladium {

struct MachineConfig {
  u32 physical_memory_bytes = 64u << 20;  // 64 MB
  CycleModel cycle_model = CycleModel::Measured();
};

class Machine {
 public:
  using Config = MachineConfig;

  explicit Machine(const Config& config = MachineConfig{})
      : pm_(config.physical_memory_bytes),
        gdt_(128),
        idt_(64),
        cpu_(pm_, gdt_, idt_, config.cycle_model) {}

  PhysicalMemory& pm() { return pm_; }
  DescriptorTable& gdt() { return gdt_; }
  DescriptorTable& idt() { return idt_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }

 private:
  PhysicalMemory pm_;
  DescriptorTable gdt_;
  DescriptorTable idt_;
  Cpu cpu_;
};

}  // namespace palladium

#endif  // SRC_HW_MACHINE_H_
