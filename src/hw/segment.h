// Segment descriptors, selectors, descriptor tables and gates — the
// segment-level half of the paper's protection hardware (Section 3.1).
#ifndef SRC_HW_SEGMENT_H_
#define SRC_HW_SEGMENT_H_

#include <cstddef>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

enum class DescriptorType : u8 {
  kNull = 0,
  kCode,
  kData,
  kCallGate,
  kInterruptGate,
  kTaskState,
};

// A single GDT entry. `limit` is stored as the segment *size in bytes*
// (an access at offset `o` of width `w` is legal iff o + w <= limit), which
// is equivalent to IA-32's inclusive limit without the off-by-one hazards.
struct SegmentDescriptor {
  DescriptorType type = DescriptorType::kNull;
  bool present = false;
  u8 dpl = 0;

  // Code/data segments.
  u32 base = 0;
  u32 limit = 0;
  bool writable = false;  // data segments: writes allowed
  bool readable = true;   // code segments: data reads allowed
  bool conforming = false;

  // Call / interrupt gates.
  u16 gate_selector = 0;
  u32 gate_offset = 0;
  u8 gate_param_count = 0;

  bool IsCode() const { return type == DescriptorType::kCode; }
  bool IsData() const { return type == DescriptorType::kData; }
  bool IsGate() const {
    return type == DescriptorType::kCallGate || type == DescriptorType::kInterruptGate;
  }

  static SegmentDescriptor MakeCode(u32 base, u32 limit, u8 dpl, bool conforming = false);
  static SegmentDescriptor MakeData(u32 base, u32 limit, u8 dpl, bool writable = true);
  static SegmentDescriptor MakeCallGate(u16 target_selector, u32 target_offset, u8 dpl,
                                        u8 param_count = 0);
  static SegmentDescriptor MakeInterruptGate(u16 target_selector, u32 target_offset, u8 dpl);
};

// A 16-bit segment selector: [index:13][TI:1][RPL:2]. The prototype (like
// Linux) keeps everything in the GDT, so TI is always 0 here.
class Selector {
 public:
  constexpr Selector() : raw_(0) {}
  constexpr explicit Selector(u16 raw) : raw_(raw) {}
  static constexpr Selector FromIndex(u16 index, u8 rpl) {
    return Selector(static_cast<u16>((index << 3) | (rpl & 3)));
  }

  constexpr u16 raw() const { return raw_; }
  constexpr u16 index() const { return raw_ >> 3; }
  constexpr bool local() const { return (raw_ & 4) != 0; }
  constexpr u8 rpl() const { return raw_ & 3; }
  constexpr bool IsNull() const { return (raw_ & ~3u) == 0; }

  friend constexpr bool operator==(Selector a, Selector b) { return a.raw_ == b.raw_; }

 private:
  u16 raw_;
};

// The GDT (and, reused, the IDT). Entries are settable only by the kernel
// model — the analogue of "modifiable only by code running at SPL 0".
class DescriptorTable {
 public:
  explicit DescriptorTable(size_t entries = 64) : entries_(entries) {}

  size_t size() const { return entries_.size(); }

  // Returns nullptr if the index is out of range.
  const SegmentDescriptor* Get(u16 index) const {
    if (index >= entries_.size()) return nullptr;
    return &entries_[index];
  }

  void Set(u16 index, const SegmentDescriptor& d) {
    if (index >= entries_.size()) entries_.resize(index + 1);
    entries_[index] = d;
  }

  void Clear(u16 index) {
    if (index < entries_.size()) entries_[index] = SegmentDescriptor{};
  }

  // Allocates the first free (null) slot at or after `first`; returns its
  // index. Used for dynamically created extension segments and call gates.
  u16 AllocateSlot(u16 first = 1);

 private:
  std::vector<SegmentDescriptor> entries_;
};

}  // namespace palladium

#endif  // SRC_HW_SEGMENT_H_
