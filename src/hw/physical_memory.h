// Simulated physical memory: a flat byte array with bounds-checked accessors.
#ifndef SRC_HW_PHYSICAL_MEMORY_H_
#define SRC_HW_PHYSICAL_MEMORY_H_

#include <cstring>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

class PhysicalMemory {
 public:
  // Notified after every successful mutation of physical memory, with the
  // first byte address and the length. Every CPU's decode cache registers one
  // so self-modifying code is caught no matter who performs the write:
  // simulated stores from any vCPU, kernel copy-in, image loaders, device
  // DMA, or frame zeroing. With N vCPUs there are N observers (one decode
  // cache per core); a write fans out to all of them, which is exactly the
  // SMP coherence rule "a store to a physical page kills every core's
  // decoded image of it".
  class WriteObserver {
   public:
    virtual ~WriteObserver() = default;
    virtual void OnPhysicalWrite(u32 addr, u32 len) = 0;
  };

  explicit PhysicalMemory(u32 size_bytes) : bytes_(size_bytes, 0) {}

  u32 size() const { return static_cast<u32>(bytes_.size()); }

  void AddWriteObserver(WriteObserver* observer) { observers_.push_back(observer); }
  void RemoveWriteObserver(WriteObserver* observer) {
    for (auto it = observers_.begin(); it != observers_.end(); ++it) {
      if (*it == observer) {
        observers_.erase(it);
        return;
      }
    }
  }
  // The uniprocessor devirtualization hook: when exactly one observer is
  // registered the CPU's store fast path calls it directly instead of going
  // through the notify loop. nullptr whenever that shortcut is invalid.
  WriteObserver* sole_write_observer() const {
    return observers_.size() == 1 ? observers_[0] : nullptr;
  }

  bool Contains(u32 addr, u32 len) const {
    return addr < bytes_.size() && len <= bytes_.size() - addr;
  }

  // All accessors return false (and leave *out untouched / memory unmodified)
  // on an out-of-range physical address. The CPU maps that to a bus-error
  // style #GP; well-formed page tables never produce one.
  bool Read8(u32 addr, u8* out) const {
    if (!Contains(addr, 1)) return false;
    *out = bytes_[addr];
    return true;
  }
  bool Read16(u32 addr, u16* out) const {
    if (!Contains(addr, 2)) return false;
    std::memcpy(out, &bytes_[addr], 2);
    return true;
  }
  bool Read32(u32 addr, u32* out) const {
    if (!Contains(addr, 4)) return false;
    std::memcpy(out, &bytes_[addr], 4);
    return true;
  }
  bool Write8(u32 addr, u8 v) {
    if (!Contains(addr, 1)) return false;
    bytes_[addr] = v;
    Notify(addr, 1);
    return true;
  }
  bool Write16(u32 addr, u16 v) {
    if (!Contains(addr, 2)) return false;
    std::memcpy(&bytes_[addr], &v, 2);
    Notify(addr, 2);
    return true;
  }
  bool Write32(u32 addr, u32 v) {
    if (!Contains(addr, 4)) return false;
    std::memcpy(&bytes_[addr], &v, 4);
    Notify(addr, 4);
    return true;
  }

  // Host pointer to a whole page-sized frame, for translation caches that
  // copy to/from guest memory without per-byte bounds checks. Returns
  // nullptr when the frame is not entirely inside physical memory (the
  // caller must then take a bounds-checked path). Any mutation through the
  // pointer MUST be followed by NotifyWrite for the touched range, or the
  // decode cache would miss self-modifying stores.
  u8* FrameHostPtr(u32 frame) {
    return Contains(frame, kPageSize) ? bytes_.data() + frame : nullptr;
  }
  // Read-only view of all of physical memory (diff harnesses, dumps).
  const u8* HostData() const { return bytes_.data(); }

  // Fires the write observer for bytes mutated through FrameHostPtr.
  void NotifyWrite(u32 addr, u32 len) { Notify(addr, len); }

  // Bulk helpers for loaders and the kernel model (not charged cycles).
  bool ReadBlock(u32 addr, void* dst, u32 len) const {
    if (!Contains(addr, len)) return false;
    std::memcpy(dst, &bytes_[addr], len);
    return true;
  }
  bool WriteBlock(u32 addr, const void* src, u32 len) {
    if (!Contains(addr, len)) return false;
    std::memcpy(&bytes_[addr], src, len);
    Notify(addr, len);
    return true;
  }
  bool Fill(u32 addr, u8 value, u32 len) {
    if (!Contains(addr, len)) return false;
    std::memset(&bytes_[addr], value, len);
    Notify(addr, len);
    return true;
  }

 private:
  void Notify(u32 addr, u32 len) {
    for (WriteObserver* o : observers_) o->OnPhysicalWrite(addr, len);
  }

  std::vector<u8> bytes_;
  std::vector<WriteObserver*> observers_;
};

}  // namespace palladium

#endif  // SRC_HW_PHYSICAL_MEMORY_H_
