// Simulated physical memory: a flat byte array with bounds-checked accessors.
#ifndef SRC_HW_PHYSICAL_MEMORY_H_
#define SRC_HW_PHYSICAL_MEMORY_H_

#include <array>
#include <atomic>
#include <cstring>
#include <utility>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

class PhysicalMemory {
 public:
  // Notified after every successful mutation of physical memory, with the
  // first byte address and the length. Every CPU's decode cache registers one
  // so self-modifying code is caught no matter who performs the write:
  // simulated stores from any vCPU, kernel copy-in, image loaders, device
  // DMA, or frame zeroing. With N vCPUs there are N observers (one decode
  // cache per core); a write fans out to all of them, which is exactly the
  // SMP coherence rule "a store to a physical page kills every core's
  // decoded image of it".
  class WriteObserver {
   public:
    virtual ~WriteObserver() = default;
    virtual void OnPhysicalWrite(u32 addr, u32 len) = 0;
  };

  // Observer slots are a fixed atomic array rather than a vector so the
  // threaded SMP mode can *read* the fan-out list from N host threads while
  // it is structurally stable. Memory-ordering contract:
  //  - AddWriteObserver publishes the slot with a release store and then
  //    bumps observer_count_ (release), so any thread that acquire-loads the
  //    count sees fully constructed observer pointers below it.
  //  - Registration and removal are machine-setup / machine-teardown
  //    operations (Cpu constructor/destructor). They must happen while no
  //    other thread is running simulated code — threaded epochs never add or
  //    remove observers, which is also why the trace tier may cache
  //    sole_write_observer() as a loop invariant.
  static constexpr u32 kMaxObservers = 16;

  // One per host thread in threaded SMP mode. While a lane is active on a
  // thread, Notify() routes every write on that thread to the lane instead
  // of the global fan-out: the lane's *local* observer (the running vCPU's
  // own decode cache) is still served synchronously — self-modifying code on
  // the writing CPU keeps its exact uniprocessor semantics — while the
  // page-granular range is appended to the lane's log. The epoch barrier's
  // serial section replays the logs to every *sibling* observer before any
  // thread starts the next epoch, so a cross-CPU code write is observed no
  // later than the next barrier (the delivery rule threaded mode promises;
  // data-race-free workloads cannot tell the difference). Page granularity
  // is exact for decode caches, which invalidate whole pages anyway.
  struct WriteLane {
    WriteObserver* local = nullptr;
    // Page-aligned [begin, end) ranges touched this epoch, deduped against
    // the most recent range so tight loops storing to one page log once.
    std::vector<std::pair<u32, u32>> log;
    u32 last_begin = 1;
    u32 last_end = 0;

    void Reset(WriteObserver* local_observer) {
      local = local_observer;
      log.clear();
      last_begin = 1;
      last_end = 0;
    }
    void LogRange(u32 addr, u32 len) {
      const u32 begin = addr & ~(kPageSize - 1);
      const u32 end = ((addr + len - 1) & ~(kPageSize - 1)) + kPageSize;
      if (begin >= last_begin && end <= last_end) return;
      log.emplace_back(begin, end);
      last_begin = begin;
      last_end = end;
    }
  };

  explicit PhysicalMemory(u32 size_bytes) : bytes_(size_bytes, 0) {
    for (auto& slot : observers_) slot.store(nullptr, std::memory_order_relaxed);
  }

  u32 size() const { return static_cast<u32>(bytes_.size()); }

  void AddWriteObserver(WriteObserver* observer) {
    const u32 n = observer_count_.load(std::memory_order_relaxed);
    if (n >= kMaxObservers) return;  // kMaxCpus is 8; cannot happen.
    observers_[n].store(observer, std::memory_order_release);
    observer_count_.store(n + 1, std::memory_order_release);
  }
  void RemoveWriteObserver(WriteObserver* observer) {
    // Teardown-only (see the ordering contract above): compacts the array
    // while no simulated code is running on any thread.
    const u32 n = observer_count_.load(std::memory_order_relaxed);
    for (u32 i = 0; i < n; ++i) {
      if (observers_[i].load(std::memory_order_relaxed) != observer) continue;
      for (u32 j = i + 1; j < n; ++j) {
        observers_[j - 1].store(observers_[j].load(std::memory_order_relaxed),
                                std::memory_order_release);
      }
      observers_[n - 1].store(nullptr, std::memory_order_release);
      observer_count_.store(n - 1, std::memory_order_release);
      return;
    }
  }
  // The uniprocessor devirtualization hook: when exactly one observer is
  // registered the CPU's store fast path calls it directly instead of going
  // through the notify loop. nullptr whenever that shortcut is invalid.
  WriteObserver* sole_write_observer() const {
    return observer_count_.load(std::memory_order_acquire) == 1
               ? observers_[0].load(std::memory_order_acquire)
               : nullptr;
  }

  // Installs (or clears, with nullptr) the calling thread's write lane.
  // Active only while a vCPU runs inside a threaded epoch; the barrier's
  // serial section runs with no lane so scripted events and replays fan out
  // to every observer directly.
  static void SetActiveWriteLane(WriteLane* lane) { active_lane_ = lane; }

  // Replays one logged page range to every observer except `except` (the
  // lane's local observer, which already saw the writes synchronously).
  void NotifyRangeExcept(u32 begin, u32 end, WriteObserver* except) {
    const u32 n = observer_count_.load(std::memory_order_acquire);
    for (u32 i = 0; i < n; ++i) {
      WriteObserver* o = observers_[i].load(std::memory_order_acquire);
      if (o != nullptr && o != except) o->OnPhysicalWrite(begin, end - begin);
    }
  }

  bool Contains(u32 addr, u32 len) const {
    return addr < bytes_.size() && len <= bytes_.size() - addr;
  }

  // All accessors return false (and leave *out untouched / memory unmodified)
  // on an out-of-range physical address. The CPU maps that to a bus-error
  // style #GP; well-formed page tables never produce one.
  bool Read8(u32 addr, u8* out) const {
    if (!Contains(addr, 1)) return false;
    *out = bytes_[addr];
    return true;
  }
  bool Read16(u32 addr, u16* out) const {
    if (!Contains(addr, 2)) return false;
    std::memcpy(out, &bytes_[addr], 2);
    return true;
  }
  bool Read32(u32 addr, u32* out) const {
    if (!Contains(addr, 4)) return false;
    std::memcpy(out, &bytes_[addr], 4);
    return true;
  }
  bool Write8(u32 addr, u8 v) {
    if (!Contains(addr, 1)) return false;
    bytes_[addr] = v;
    Notify(addr, 1);
    return true;
  }
  bool Write16(u32 addr, u16 v) {
    if (!Contains(addr, 2)) return false;
    std::memcpy(&bytes_[addr], &v, 2);
    Notify(addr, 2);
    return true;
  }
  bool Write32(u32 addr, u32 v) {
    if (!Contains(addr, 4)) return false;
    std::memcpy(&bytes_[addr], &v, 4);
    Notify(addr, 4);
    return true;
  }

  // Host pointer to a whole page-sized frame, for translation caches that
  // copy to/from guest memory without per-byte bounds checks. Returns
  // nullptr when the frame is not entirely inside physical memory (the
  // caller must then take a bounds-checked path). Any mutation through the
  // pointer MUST be followed by NotifyWrite for the touched range, or the
  // decode cache would miss self-modifying stores.
  u8* FrameHostPtr(u32 frame) {
    return Contains(frame, kPageSize) ? bytes_.data() + frame : nullptr;
  }
  // Read-only view of all of physical memory (diff harnesses, dumps).
  const u8* HostData() const { return bytes_.data(); }

  // Fires the write observer for bytes mutated through FrameHostPtr.
  void NotifyWrite(u32 addr, u32 len) { Notify(addr, len); }

  // Bulk helpers for loaders and the kernel model (not charged cycles).
  bool ReadBlock(u32 addr, void* dst, u32 len) const {
    if (!Contains(addr, len)) return false;
    std::memcpy(dst, &bytes_[addr], len);
    return true;
  }
  bool WriteBlock(u32 addr, const void* src, u32 len) {
    if (!Contains(addr, len)) return false;
    std::memcpy(&bytes_[addr], src, len);
    Notify(addr, len);
    return true;
  }
  bool Fill(u32 addr, u8 value, u32 len) {
    if (!Contains(addr, len)) return false;
    std::memset(&bytes_[addr], value, len);
    Notify(addr, len);
    return true;
  }

 private:
  void Notify(u32 addr, u32 len) {
    WriteLane* lane = active_lane_;
    if (lane != nullptr) {
      if (lane->local != nullptr) lane->local->OnPhysicalWrite(addr, len);
      lane->LogRange(addr, len);
      return;
    }
    const u32 n = observer_count_.load(std::memory_order_acquire);
    for (u32 i = 0; i < n; ++i) {
      WriteObserver* o = observers_[i].load(std::memory_order_acquire);
      if (o != nullptr) o->OnPhysicalWrite(addr, len);
    }
  }

  std::vector<u8> bytes_;
  std::array<std::atomic<WriteObserver*>, kMaxObservers> observers_;
  std::atomic<u32> observer_count_{0};
  inline static thread_local WriteLane* active_lane_ = nullptr;
};

}  // namespace palladium

#endif  // SRC_HW_PHYSICAL_MEMORY_H_
