// Fundamental scalar types and architectural constants for the simulated
// 32-bit x86-style protection hardware.
#ifndef SRC_HW_TYPES_H_
#define SRC_HW_TYPES_H_

#include <cstdint>

namespace palladium {

using u8 = uint8_t;
using u16 = uint16_t;
using u32 = uint32_t;
using u64 = uint64_t;
using i8 = int8_t;
using i16 = int16_t;
using i32 = int32_t;
using i64 = int64_t;

// Paging geometry (identical to IA-32 with 4 KB pages).
inline constexpr u32 kPageShift = 12;
inline constexpr u32 kPageSize = 1u << kPageShift;
inline constexpr u32 kPageMask = kPageSize - 1;
inline constexpr u32 kPtesPerTable = 1024;

// Virtual address space split used by the Linux-2.0-style kernel model
// (Figure 2 of the paper): user 0..3GB, kernel 3..4GB.
inline constexpr u32 kUserLimit = 0xC0000000u;   // 3 GB
inline constexpr u32 kKernelBase = 0xC0000000u;  // 3 GB
inline constexpr u32 kKernelSpan = 0x40000000u;  // 1 GB

inline constexpr u32 PageAlignDown(u32 addr) { return addr & ~kPageMask; }
inline constexpr u32 PageAlignUp(u32 addr) { return (addr + kPageMask) & ~kPageMask; }
inline constexpr u32 PageNumber(u32 addr) { return addr >> kPageShift; }

// Segment privilege levels (SPL in the paper's terminology; ring numbers).
inline constexpr u8 kSpl0 = 0;  // kernel
inline constexpr u8 kSpl1 = 1;  // kernel extensions
inline constexpr u8 kSpl2 = 2;  // extensible (Palladium) applications
inline constexpr u8 kSpl3 = 3;  // ordinary applications and user extensions

}  // namespace palladium

#endif  // SRC_HW_TYPES_H_
