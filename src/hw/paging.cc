#include "src/hw/paging.h"

namespace palladium {

namespace {

Fault MakePageFault(u32 linear, bool present, bool is_write, bool is_user, bool is_fetch,
                    const char* detail) {
  Fault f;
  f.vector = FaultVector::kPageFault;
  f.error_code = (present ? kPfErrPresent : 0) | (is_write ? kPfErrWrite : 0) |
                 (is_user ? kPfErrUser : 0) | (is_fetch ? kPfErrFetch : 0);
  f.linear_address = linear;
  f.detail = detail;
  return f;
}

}  // namespace

WalkResult WalkPageTable(const PhysicalMemory& pm, u32 cr3, u32 linear, bool is_write,
                         bool is_user, bool is_fetch) {
  WalkResult r;
  u32 pde = 0;
  r.accesses = 1;
  if (!pm.Read32(cr3 + PdeIndex(linear) * 4, &pde)) {
    r.fault = MakePageFault(linear, false, is_write, is_user, is_fetch, "page directory out of range");
    return r;
  }
  if (!(pde & kPtePresent)) {
    r.fault = MakePageFault(linear, false, is_write, is_user, is_fetch, "PDE not present");
    return r;
  }
  u32 pte = 0;
  r.accesses = 2;
  if (!pm.Read32((pde & kPteFrameMask) + PteIndex(linear) * 4, &pte)) {
    r.fault = MakePageFault(linear, false, is_write, is_user, is_fetch, "page table out of range");
    return r;
  }
  if (!(pte & kPtePresent)) {
    r.fault = MakePageFault(linear, false, is_write, is_user, is_fetch, "PTE not present");
    return r;
  }
  // Effective permissions are the AND of PDE and PTE bits.
  u32 eff = pte & pde & (kPteWrite | kPteUser);
  if (is_user && !(eff & kPteUser)) {
    r.fault = MakePageFault(linear, true, is_write, is_user, is_fetch,
                            "SPL 3 access to PPL 0 (supervisor) page");
    return r;
  }
  // No CR0.WP: supervisor writes ignore the R/W bit (386 / Linux 2.0 era),
  // which the paper's SPL 2 application relies on for its own pages.
  if (is_user && is_write && !(eff & kPteWrite)) {
    r.fault = MakePageFault(linear, true, is_write, is_user, is_fetch, "write to read-only page");
    return r;
  }
  r.ok = true;
  r.frame = pte & kPteFrameMask;
  r.flags = (pte & ~(kPteWrite | kPteUser)) | eff;
  return r;
}

bool SetAccessedDirty(PhysicalMemory& pm, u32 cr3, u32 linear, bool dirty) {
  u32 pde = 0;
  if (!pm.Read32(cr3 + PdeIndex(linear) * 4, &pde) || !(pde & kPtePresent)) return false;
  u32 pte_addr = (pde & kPteFrameMask) + PteIndex(linear) * 4;
  u32 pte = 0;
  if (!pm.Read32(pte_addr, &pte) || !(pte & kPtePresent)) return false;
  pte |= kPteAccessed | (dirty ? kPteDirty : 0);
  return pm.Write32(pte_addr, pte);
}

bool PageTableEditor::GetPte(u32 linear, u32* out) const {
  u32 pde = 0;
  if (!pm_.Read32(cr3_ + PdeIndex(linear) * 4, &pde) || !(pde & kPtePresent)) return false;
  return pm_.Read32((pde & kPteFrameMask) + PteIndex(linear) * 4, out);
}

bool PageTableEditor::SetPte(u32 linear, u32 pte) {
  u32 pde = 0;
  if (!pm_.Read32(cr3_ + PdeIndex(linear) * 4, &pde) || !(pde & kPtePresent)) return false;
  if (!pm_.Write32((pde & kPteFrameMask) + PteIndex(linear) * 4, pte)) return false;
  Invalidate(linear);
  return true;
}

bool PageTableEditor::Unmap(u32 linear) { return SetPte(linear, 0); }

bool PageTableEditor::UpdateFlags(u32 linear, u32 set_bits, u32 clear_bits) {
  u32 pte = 0;
  if (!GetPte(linear, &pte) || !(pte & kPtePresent)) return false;
  pte = (pte | set_bits) & ~clear_bits;
  return SetPte(linear, pte);
}

}  // namespace palladium
