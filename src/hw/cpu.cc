#include "src/hw/cpu.h"

#include <cstdlib>
#include <cstring>

#include "src/hw/irq.h"
#include "src/hw/paging.h"

namespace palladium {

namespace {

Fault Gp(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kGeneralProtection;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Ss(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kStackFault;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Np(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kSegmentNotPresent;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Ud(const char* detail) {
  Fault f;
  f.vector = FaultVector::kInvalidOpcode;
  f.detail = detail;
  return f;
}

}  // namespace

Cpu::Cpu(PhysicalMemory& pm, DescriptorTable& gdt, DescriptorTable& idt, CycleModel model)
    : pm_(pm), gdt_(gdt), idt_(idt), model_(model) {
  // The decode cache must see every byte of physical memory change, whether
  // it comes from a simulated store (on any vCPU), host-side kernel code, or
  // device DMA. Each vCPU registers its own cache; writes fan out to all.
  pm_.AddWriteObserver(&dcache_);
  // Global oracle switch: PALLADIUM_NO_DTLB=1 runs every CPU on the per-byte
  // data path, so any bench or example can be diffed against the fast path
  // without code changes (outputs must be byte-identical).
  if (std::getenv("PALLADIUM_NO_DTLB") != nullptr) dtlb_enabled_ = false;
  RebuildCostTable();
}

void Cpu::RebuildCostTable() {
  for (u16 op = 0; op < static_cast<u16>(Opcode::kCount); ++op) {
    base_cost_[op] = model_.BaseCost(static_cast<Opcode>(op), /*branch_taken=*/false);
  }
  // `taken` is only ever true for conditional branches, which all share one
  // taken cost.
  taken_branch_cost_ = model_.BaseCost(Opcode::kJe, /*branch_taken=*/true);
}

Cpu::~Cpu() { pm_.RemoveWriteObserver(&dcache_); }

bool Cpu::LoadSegmentChecked(SegReg sr, Selector sel, Fault* fault) {
  LoadedSegment& target = segs_[static_cast<u8>(sr)];
  if (sel.IsNull()) {
    if (sr == SegReg::kSs || sr == SegReg::kCs) {
      *fault = Gp("null selector load into CS/SS");
      return false;
    }
    target.selector = sel;
    target.valid = false;  // later accesses through it fault
    return true;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || d->type == DescriptorType::kNull) {
    *fault = Gp("selector index out of descriptor table", sel.raw());
    return false;
  }
  if (!d->present) {
    *fault = Np("segment not present", sel.raw());
    return false;
  }
  if (sr == SegReg::kCs) {
    // Direct CS loads are not an instruction; only far transfers load CS.
    *fault = Gp("CS cannot be loaded with mov/pop");
    return false;
  }
  if (sr == SegReg::kSs) {
    if (!d->IsData() || !d->writable) {
      *fault = Gp("SS must be a writable data segment", sel.raw());
      return false;
    }
    if (sel.rpl() != cpl_ || d->dpl != cpl_) {
      *fault = Gp("SS privilege mismatch", sel.raw());
      return false;
    }
  } else {
    // DS/ES: data or readable code, DPL >= max(CPL, RPL). This is the check
    // that stops an SPL 3 extension from loading the SPL 2 application
    // segment or an SPL 1 kernel extension from loading kernel segments.
    if (!(d->IsData() || (d->IsCode() && d->readable))) {
      *fault = Gp("not a data-readable segment", sel.raw());
      return false;
    }
    u8 eff = cpl_ > sel.rpl() ? cpl_ : sel.rpl();
    if (!d->conforming && d->dpl < eff) {
      *fault = Gp("data segment DPL below max(CPL,RPL)", sel.raw());
      return false;
    }
  }
  target.selector = sel;
  target.cache = *d;
  target.valid = true;
  return true;
}

bool Cpu::ForceSegment(SegReg sr, Selector sel) {
  LoadedSegment& target = segs_[static_cast<u8>(sr)];
  if (sel.IsNull()) {
    target.selector = sel;
    target.valid = false;
    return true;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->present) return false;
  target.selector = sel;
  target.cache = *d;
  target.valid = true;
  if (sr == SegReg::kCs) cpl_ = sel.rpl();
  return true;
}

CpuContext Cpu::SaveContext() const {
  CpuContext ctx;
  ctx.regs = regs_;
  ctx.eip = eip_;
  ctx.eflags = eflags_;
  ctx.cpl = cpl_;
  ctx.segs = segs_;
  return ctx;
}

void Cpu::RestoreContext(const CpuContext& ctx) {
  regs_ = ctx.regs;
  eip_ = ctx.eip;
  eflags_ = ctx.eflags;
  cpl_ = ctx.cpl;
  segs_ = ctx.segs;
}

bool Cpu::Translate(u32 linear, bool is_write, u32* phys, Fault* fault, u32* flags_out,
                    bool is_fetch) {
  const bool is_user = cpl_ == 3;
  u32 frame = 0, flags = 0;
  if (tlb_.Lookup(linear, &frame, &flags)) {
    // Permission check from the cached entry, as the hardware does.
    if (is_user && !(flags & kPteUser)) {
      Fault f;
      f.vector = FaultVector::kPageFault;
      f.error_code = kPfErrPresent | (is_write ? kPfErrWrite : 0) | kPfErrUser |
                     (is_fetch ? kPfErrFetch : 0);
      f.linear_address = linear;
      f.detail = "SPL 3 access to PPL 0 (supervisor) page";
      *fault = f;
      return false;
    }
    if (is_user && is_write && !(flags & kPteWrite)) {
      Fault f;
      f.vector = FaultVector::kPageFault;
      f.error_code = kPfErrPresent | kPfErrWrite | kPfErrUser;
      f.linear_address = linear;
      f.detail = "write to read-only page";
      *fault = f;
      return false;
    }
    // Dirty-bit update on a TLB-hit write, as the MMU performs it: the first
    // write through a translation cached by a read sets the PTE's D bit. The
    // entry remembers known-set A/D bits so the PTE touch happens once, and
    // the D-TLB fast path applies the identical rule — page-table images are
    // byte-equal with the fast path on or off.
    if (is_write && !(flags & kPteDirty)) {
      SetAccessedDirty(pm_, cr3_, linear, /*dirty=*/true);
      tlb_.OrFlags(linear, kPteDirty);
      flags |= kPteDirty;
    }
  } else {
    WalkResult wr = WalkPageTable(pm_, cr3_, linear, is_write, is_user, is_fetch);
    cycles_ += model_.tlb_miss_penalty;
    if (!wr.ok) {
      *fault = wr.fault;
      return false;
    }
    SetAccessedDirty(pm_, cr3_, linear, is_write);
    // Record what the walk just made true of the PTE.
    wr.flags |= kPteAccessed | (is_write ? kPteDirty : 0);
    const u32 evicted = tlb_.Insert(linear, wr.frame, wr.flags);
    // A conflict eviction must propagate to the D-TLB so its entries stay a
    // subset of live TLB entries (that subset property is what makes fast-
    // path cycle counts identical to the per-byte path).
    if (evicted != Tlb::kNoVpn) dtlb_.InvalidatePage(evicted, tlb_.change_count());
    frame = wr.frame;
    flags = wr.flags;
  }
  *phys = frame | (linear & kPageMask);
  if (flags_out != nullptr) *flags_out = flags;
  return true;
}

int Cpu::DtlbTranslate(u32 linear, u32 size, bool is_write, u8** host, u32* phys, Fault* fault) {
  const u32 vpn = PageNumber(linear);
  const u32 off = linear & kPageMask;
  DTlb::Entry* e = dtlb_.Lookup(vpn, tlb_.change_count());
  if (e != nullptr) {
    // Permission checks against the live CPL, bit-for-bit the checks (and
    // faults) of Translate's TLB-hit path — a hit here implies the TLB still
    // holds this translation, so the slow path would fault from that branch.
    if (cpl_ == 3) {
      if (!(e->flags & kPteUser)) {
        tlb_.RecordFastPathHits(1);  // the per-byte path's byte-0 lookup hits, then faults
        Fault f;
        f.vector = FaultVector::kPageFault;
        f.error_code = kPfErrPresent | (is_write ? kPfErrWrite : 0) | kPfErrUser;
        f.linear_address = linear;
        f.detail = "SPL 3 access to PPL 0 (supervisor) page";
        *fault = f;
        return -1;
      }
      if (is_write && !(e->flags & kPteWrite)) {
        tlb_.RecordFastPathHits(1);
        Fault f;
        f.vector = FaultVector::kPageFault;
        f.error_code = kPfErrPresent | kPfErrWrite | kPfErrUser;
        f.linear_address = linear;
        f.detail = "write to read-only page";
        *fault = f;
        return -1;
      }
    }
    if (is_write && !(e->flags & kPteDirty)) {
      SetAccessedDirty(pm_, cr3_, linear, /*dirty=*/true);
      tlb_.OrFlags(linear, kPteDirty);
      e->flags |= kPteDirty;
    }
    // The per-byte path would have performed `size` TLB lookups, all hits.
    tlb_.RecordFastPathHits(size);
    dtlb_.CountHit();
    *host = e->host + off;
    *phys = e->frame + off;
    return 1;
  }
  dtlb_.CountMiss();
  // Fill through one architectural translation: faults, tlb_miss_penalty
  // charges, walk-side A/D updates and TLB stats land exactly as the
  // per-byte path's first byte would produce them.
  u32 p = 0, flags = 0;
  if (!Translate(linear, is_write, &p, fault, &flags)) return -1;
  u8* page = pm_.FrameHostPtr(p & ~kPageMask);
  if (page == nullptr) {
    // Frame straddles the end of memory: the caller finishes on the byte
    // loop. Hand it byte 0's translation so it is not repeated (a repeat
    // would record one extra TLB hit versus the per-byte oracle).
    *phys = p;
    return 0;
  }
  // Bytes 1..size-1 of the per-byte path would each hit the just-primed TLB.
  tlb_.RecordFastPathHits(size - 1);
  dtlb_.Fill(vpn, p & ~kPageMask, flags, page, tlb_.change_count());
  *host = page + off;
  *phys = p;
  return 1;
}

bool Cpu::DtlbHostRead(u32 linear, void* dst, u32 len) {
  if (!dtlb_enabled_ || len == 0 || (linear & kPageMask) + len > kPageSize) return false;
  DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
  if (e == nullptr) return false;
  std::memcpy(dst, e->host + (linear & kPageMask), len);
  return true;
}

bool Cpu::DtlbHostWrite(u32 linear, const void* src, u32 len) {
  if (!dtlb_enabled_ || len == 0 || (linear & kPageMask) + len > kPageSize) return false;
  DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
  if (e == nullptr) return false;
  const u32 off = linear & kPageMask;
  std::memcpy(e->host + off, src, len);
  pm_.NotifyWrite(e->frame + off, len);
  return true;
}

bool Cpu::CheckSegmentAccess(const LoadedSegment& seg, u32 offset, u32 size, bool is_write,
                             bool is_stack, Fault* fault) {
  if (!seg.valid) {
    *fault = is_stack ? Ss("access through invalid SS") : Gp("access through null segment");
    return false;
  }
  const SegmentDescriptor& d = seg.cache;
  // Limit check: `limit` is the segment size in bytes.
  if (offset > d.limit || size > d.limit - offset) {
    *fault = is_stack ? Ss("stack segment limit violation") : Gp("segment limit violation");
    return false;
  }
  if (is_write) {
    if (d.IsCode()) {
      *fault = Gp("write into code segment");
      return false;
    }
    if (!d.writable) {
      *fault = Gp("write into read-only segment");
      return false;
    }
  } else if (d.IsCode() && !d.readable) {
    *fault = Gp("read from execute-only code segment");
    return false;
  }
  return true;
}

bool Cpu::MemRead(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32* out,
                  Fault* fault) {
  if (!CheckSegmentAccess(seg, offset, size, /*is_write=*/false, is_stack, fault)) return false;
  u32 linear = seg.cache.base + offset;  // wraps mod 2^32 like the hardware
  // Fast path: an access wholly inside one page reads straight off the
  // D-TLB's host pointer. Page-straddling accesses keep the per-byte loop
  // (its partial-access and mid-access-fault semantics are the contract).
  if (dtlb_enabled_ && size != 0 && (linear & kPageMask) + size <= kPageSize) {
    // Common hit inlined here; permission faults, misses and fills take the
    // out-of-line path, which re-probes and handles every case.
    DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
    if (e != nullptr && !(cpl_ == 3 && !(e->flags & kPteUser))) {
      tlb_.RecordFastPathHits(size);
      dtlb_.CountHit();
      const u8* host = e->host + (linear & kPageMask);
      // Fixed-width copies (little-endian host, like Read32); a runtime-size
      // memcpy would cost a libc call per load.
      u32 value;
      switch (size) {
        case 1:
          value = *host;
          break;
        case 2: {
          u16 v16;
          std::memcpy(&v16, host, 2);
          value = v16;
          break;
        }
        case 4:
          std::memcpy(&value, host, 4);
          break;
        default:
          value = 0;
          std::memcpy(&value, host, size);
          break;
      }
      *out = value;
      return true;
    }
    u8* host = nullptr;
    u32 phys = 0;
    int r = DtlbTranslate(linear, size, /*is_write=*/false, &host, &phys, fault);
    if (r < 0) return false;
    if (r > 0) {
      u32 value = 0;
      std::memcpy(&value, host, size);
      *out = value;
      return true;
    }
    // r == 0: frame not host-mappable. Byte 0 was already translated by the
    // fill attempt; consume it here so the TLB statistics stay equal to the
    // per-byte oracle, then finish on the byte loop.
    u8 b = 0;
    if (!pm_.Read8(phys, &b)) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    u32 value = b;
    if (!ReadBytesSlow(linear, 1, size, &value, fault)) return false;
    *out = value;
    return true;
  }
  u32 value = 0;
  if (!ReadBytesSlow(linear, 0, size, &value, fault)) return false;
  *out = value;
  return true;
}

bool Cpu::ReadBytesSlow(u32 linear, u32 start, u32 size, u32* value, Fault* fault) {
  for (u32 i = start; i < size; ++i) {
    // Per-byte composition handles page-crossing accesses; same-page bytes
    // hit the TLB so the cost stays realistic.
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/false, &phys, fault)) return false;
    u8 b = 0;
    if (!pm_.Read8(phys, &b)) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    *value |= static_cast<u32>(b) << (8 * i);
  }
  return true;
}

bool Cpu::MemWrite(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32 value,
                   Fault* fault) {
  if (!CheckSegmentAccess(seg, offset, size, /*is_write=*/true, is_stack, fault)) return false;
  u32 linear = seg.cache.base + offset;
  if (dtlb_enabled_ && size != 0 && (linear & kPageMask) + size <= kPageSize) {
    // Inline hit path: needs write permission at the live CPL and a PTE
    // whose D bit is known set; everything else (fault, dirty update, miss,
    // fill) goes out of line and re-probes.
    DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
    if (e != nullptr && (e->flags & kPteDirty) &&
        !(cpl_ == 3 && (~e->flags & (kPteUser | kPteWrite)) != 0)) {
      tlb_.RecordFastPathHits(size);
      dtlb_.CountHit();
      const u32 off = linear & kPageMask;
      u8* host = e->host + off;
      switch (size) {
        case 1:
          *host = static_cast<u8>(value);
          break;
        case 2: {
          const u16 v16 = static_cast<u16>(value);
          std::memcpy(host, &v16, 2);
          break;
        }
        case 4:
          std::memcpy(host, &value, 4);
          break;
        default:
          std::memcpy(host, &value, size);
          break;
      }
      // The write observer must see D-TLB-path stores too, or a store into
      // a decoded code page would execute stale instructions. On a
      // uniprocessor the sole observer is this CPU's own decode cache;
      // calling it directly keeps the probe inlinable. With multiple vCPUs
      // (or an extra test observer) the store must fan out to every core's
      // decode cache through the notify loop.
      const u32 phys = e->frame + off;
      if (pm_.sole_write_observer() == &dcache_) {
        dcache_.OnPhysicalWrite(phys, size);
      } else {
        pm_.NotifyWrite(phys, size);
      }
      return true;
    }
    u8* host = nullptr;
    u32 phys = 0;
    int r = DtlbTranslate(linear, size, /*is_write=*/true, &host, &phys, fault);
    if (r < 0) return false;
    if (r > 0) {
      std::memcpy(host, &value, size);
      pm_.NotifyWrite(phys, size);
      return true;
    }
    // r == 0: consume byte 0's translation (see MemRead) and finish on the
    // byte loop.
    if (!pm_.Write8(phys, static_cast<u8>(value))) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    return WriteBytesSlow(linear, 1, size, value, fault);
  }
  return WriteBytesSlow(linear, 0, size, value, fault);
}

bool Cpu::WriteBytesSlow(u32 linear, u32 start, u32 size, u32 value, Fault* fault) {
  for (u32 i = start; i < size; ++i) {
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/true, &phys, fault)) return false;
    if (!pm_.Write8(phys, static_cast<u8>(value >> (8 * i)))) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
  }
  return true;
}

bool Cpu::ReadVirt(SegReg sr, u32 offset, u32 size, u32* out, Fault* fault) {
  return MemRead(segs_[static_cast<u8>(sr)], offset, size, sr == SegReg::kSs, out, fault);
}

bool Cpu::WriteVirt(SegReg sr, u32 offset, u32 size, u32 value, Fault* fault) {
  return MemWrite(segs_[static_cast<u8>(sr)], offset, size, sr == SegReg::kSs, value, fault);
}

bool Cpu::Push32(u32 v, Fault* fault) {
  u32 esp = reg(Reg::kEsp) - 4;
  if (!WriteVirt(SegReg::kSs, esp, 4, v, fault)) return false;
  set_reg(Reg::kEsp, esp);
  return true;
}

bool Cpu::Pop32(u32* v, Fault* fault) {
  u32 esp = reg(Reg::kEsp);
  if (!ReadVirt(SegReg::kSs, esp, 4, v, fault)) return false;
  set_reg(Reg::kEsp, esp + 4);
  return true;
}

LoadedSegment& Cpu::SegForOverride(SegOverride ov, bool base_is_stackish) {
  switch (ov) {
    case SegOverride::kCs:
      return segs_[static_cast<u8>(SegReg::kCs)];
    case SegOverride::kSs:
      return segs_[static_cast<u8>(SegReg::kSs)];
    case SegOverride::kDs:
      return segs_[static_cast<u8>(SegReg::kDs)];
    case SegOverride::kEs:
      return segs_[static_cast<u8>(SegReg::kEs)];
    case SegOverride::kNone:
      break;
  }
  return segs_[static_cast<u8>(base_is_stackish ? SegReg::kSs : SegReg::kDs)];
}

// An instruction fetch that reaches past the end of physical memory is a
// translation-layer failure, not a protection violation: report it as a page
// fault carrying the exact faulting linear address (the CR2 analogue), with
// the present bit set so the kernel's demand-paging path does not try to map
// it. The data path keeps its bus-error #GP. Like every fetch-induced page
// fault (Translate is called with is_fetch), the error code carries the
// I/D bit so handlers can tell instruction fetches from data accesses.
Fault Cpu::FetchBusFault(u32 linear) const {
  Fault f;
  f.vector = FaultVector::kPageFault;
  f.error_code = kPfErrPresent | (cpl_ == 3 ? kPfErrUser : 0) | kPfErrFetch;
  f.linear_address = linear;
  f.detail = "instruction fetch beyond physical memory";
  return f;
}

bool Cpu::FetchFromSlot(u32 linear, const Insn** insn, Fault* fault) {
  const DecodedInsn& slot = fetch_page_->slots[(linear & kPageMask) / kInsnSize];
  switch (slot.state) {
    case DecodedInsn::State::kDecoded:
      *insn = &slot.insn;
      return true;
    case DecodedInsn::State::kUndecodable:
      *fault = Ud("undecodable instruction");
      return false;
    case DecodedInsn::State::kBusError:
      *fault = FetchBusFault(linear + slot.fault_offset);
      return false;
  }
  *fault = Ud("undecodable instruction");
  return false;
}

bool Cpu::FetchInsn(const Insn** insn, Fault* fault) {
  const LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  if (!CheckSegmentAccess(cs, eip_, kInsnSize, /*is_write=*/false, /*is_stack=*/false, fault)) {
    return false;
  }
  const u32 linear = cs.cache.base + eip_;

  // Fast path: slot-aligned fetches (kInsnSize divides kPageSize, so they
  // never cross a page) execute straight out of the decoded page image.
  if (decode_cache_enabled_ && (linear & (kInsnSize - 1)) == 0) {
    const u32 vpn = PageNumber(linear);
    if (fetch_page_ != nullptr && vpn == fetch_vpn_ &&
        fetch_tlb_change_ == tlb_.change_count() &&
        fetch_dcache_gen_ == dcache_.generation() &&
        !(cpl_ == 3 && !(fetch_flags_ & kPteUser))) {
      return FetchFromSlot(linear, insn, fault);
    }
    // Refill: one translation pins the whole page. A fault here carries the
    // instruction's linear address, which is also the first byte's.
    u32 phys = 0, flags = 0;
    if (!Translate(linear, /*is_write=*/false, &phys, fault, &flags, /*is_fetch=*/true)) {
      return false;
    }
    fetch_page_ = dcache_.GetOrBuild(pm_, phys & ~kPageMask);
    fetch_vpn_ = vpn;
    fetch_flags_ = flags;
    fetch_tlb_change_ = tlb_.change_count();
    fetch_dcache_gen_ = dcache_.generation();
    return FetchFromSlot(linear, insn, fault);
  }

  // Slow path: unaligned fetch (non-16-byte-aligned CS base), possibly
  // crossing a page. Byte-at-a-time so a mid-instruction translation fault
  // reports the exact faulting address.
  u8 raw[kInsnSize];
  for (u32 i = 0; i < kInsnSize; ++i) {
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/false, &phys, fault, nullptr, /*is_fetch=*/true)) {
      return false;
    }
    if (!pm_.Read8(phys, &raw[i])) {
      *fault = FetchBusFault(linear + i);
      return false;
    }
  }
  auto decoded = Insn::Decode(raw);
  if (!decoded) {
    *fault = Ud("undecodable instruction");
    return false;
  }
  fetch_scratch_ = *decoded;
  *insn = &fetch_scratch_;
  return true;
}

bool Cpu::DoLcall(const Insn& insn, Fault* fault, u32* extra_cycles) {
  Selector sel(static_cast<u16>(insn.imm));
  const SegmentDescriptor* gate = gdt_.Get(sel.index());
  if (gate == nullptr || gate->type != DescriptorType::kCallGate) {
    *fault = Gp("lcall target is not a call gate", sel.raw());
    return false;
  }
  if (!gate->present) {
    *fault = Np("call gate not present", sel.raw());
    return false;
  }
  u8 eff = cpl_ > sel.rpl() ? cpl_ : sel.rpl();
  if (gate->dpl < eff) {
    *fault = Gp("call gate DPL below max(CPL,RPL)", sel.raw());
    return false;
  }
  Selector tsel(gate->gate_selector);
  const SegmentDescriptor* target = gdt_.Get(tsel.index());
  if (target == nullptr || !target->IsCode() || !target->present) {
    *fault = Gp("call gate target is not present code", tsel.raw());
    return false;
  }
  if (target->dpl > cpl_) {
    *fault = Gp("call gate target less privileged than caller", tsel.raw());
    return false;
  }

  const u32 old_eip = eip_;
  const Selector old_cs = segs_[static_cast<u8>(SegReg::kCs)].selector;

  if (target->dpl < cpl_ && !target->conforming) {
    // Inter-privilege call: switch to the inner stack from the TSS, then
    // push the outer SS:ESP and CS:EIP onto it.
    const u8 new_cpl = target->dpl;
    const Selector old_ss = segs_[static_cast<u8>(SegReg::kSs)].selector;
    const u32 old_esp = reg(Reg::kEsp);

    Selector new_ss(tss_.ss[new_cpl]);
    const SegmentDescriptor* ssd = gdt_.Get(new_ss.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != new_cpl) {
      Fault f;
      f.vector = FaultVector::kInvalidTss;
      f.error_code = new_ss.raw();
      f.detail = "bad inner stack segment in TSS";
      *fault = f;
      return false;
    }
    // Commit the privilege switch before pushing (pushes run at new CPL on
    // the new stack).
    cpl_ = new_cpl;
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = new_ss;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, tss_.esp[new_cpl]);

    if (!Push32(old_ss.raw(), fault) || !Push32(old_esp, fault)) return false;
    // Parameter copy (gate_param_count dwords from the outer stack).
    for (u8 i = 0; i < gate->gate_param_count; ++i) {
      u32 off = old_esp + (gate->gate_param_count - 1 - i) * 4u;
      // Read with the *old* SS descriptor via a temporary loaded segment.
      LoadedSegment old_stack;
      old_stack.selector = old_ss;
      const SegmentDescriptor* od = gdt_.Get(old_ss.index());
      if (od == nullptr) {
        *fault = Gp("outer stack segment vanished");
        return false;
      }
      old_stack.cache = *od;
      old_stack.valid = true;
      u32 word = 0;
      if (!MemRead(old_stack, off, 4, /*is_stack=*/true, &word, fault)) return false;
      if (!Push32(word, fault)) return false;
    }
    if (!Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) return false;
    // Privilege-change premium plus the hardware's per-parameter word copy
    // (~4 cycles each per the Pentium manual).
    *extra_cycles = model_.lcall_inter - model_.lcall_same + 4u * gate->gate_param_count;
  } else {
    if (!Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) return false;
  }

  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = Selector::FromIndex(tsel.index(), cpl_);
  cs.cache = *target;
  cs.valid = true;
  eip_ = gate->gate_offset;
  return true;
}

bool Cpu::DoLret(u32 release_bytes, Fault* fault, u32* extra_cycles) {
  u32 new_eip = 0, cs_raw = 0;
  if (!Pop32(&new_eip, fault) || !Pop32(&cs_raw, fault)) return false;
  set_reg(Reg::kEsp, reg(Reg::kEsp) + release_bytes);  // release inner-stack params
  Selector sel(static_cast<u16>(cs_raw));
  if (sel.IsNull()) {
    *fault = Gp("lret to null CS");
    return false;
  }
  if (sel.rpl() < cpl_) {
    *fault = Gp("lret to inner (more privileged) level", sel.raw());
    return false;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->IsCode() || !d->present) {
    *fault = Gp("lret target is not present code", sel.raw());
    return false;
  }
  if (!d->conforming && d->dpl != sel.rpl()) {
    *fault = Gp("lret target DPL/RPL mismatch", sel.raw());
    return false;
  }
  if (sel.rpl() > cpl_) {
    // Return to outer level: pop the outer SS:ESP (still from the inner
    // stack), then switch.
    u32 new_esp = 0, ss_raw = 0;
    if (!Pop32(&new_esp, fault) || !Pop32(&ss_raw, fault)) return false;
    Selector ss_sel(static_cast<u16>(ss_raw));
    const SegmentDescriptor* ssd = gdt_.Get(ss_sel.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != sel.rpl()) {
      *fault = Gp("lret outer SS invalid", ss_sel.raw());
      return false;
    }
    cpl_ = sel.rpl();
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = ss_sel;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, new_esp + release_bytes);  // release outer-stack params too
    *extra_cycles = model_.lret_inter - model_.lret_same;
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = sel;
  cs.cache = *d;
  cs.valid = true;
  eip_ = new_eip;
  return true;
}

bool Cpu::DoInt(u8 vector, bool software, Fault* fault) {
  const SegmentDescriptor* gate = idt_.Get(vector);
  if (gate == nullptr || gate->type != DescriptorType::kInterruptGate || !gate->present) {
    *fault = Gp("missing interrupt gate", static_cast<u32>(vector) << 3);
    return false;
  }
  // Software INT n must satisfy CPL <= gate DPL; this is what keeps user
  // code from invoking kernel-internal vectors directly.
  if (software && gate->dpl < cpl_) {
    *fault = Gp("software interrupt to protected vector", static_cast<u32>(vector) << 3);
    return false;
  }
  Selector tsel(gate->gate_selector);
  const SegmentDescriptor* target = gdt_.Get(tsel.index());
  if (target == nullptr || !target->IsCode() || !target->present) {
    *fault = Gp("interrupt gate target invalid", tsel.raw());
    return false;
  }
  const u32 old_eip = eip_;
  const u32 old_eflags = eflags_;
  const Selector old_cs = segs_[static_cast<u8>(SegReg::kCs)].selector;

  if (target->dpl < cpl_) {
    const u8 new_cpl = target->dpl;
    const Selector old_ss = segs_[static_cast<u8>(SegReg::kSs)].selector;
    const u32 old_esp = reg(Reg::kEsp);
    Selector new_ss(tss_.ss[new_cpl]);
    const SegmentDescriptor* ssd = gdt_.Get(new_ss.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != new_cpl) {
      Fault f;
      f.vector = FaultVector::kInvalidTss;
      f.error_code = new_ss.raw();
      f.detail = "bad inner stack segment in TSS (interrupt)";
      *fault = f;
      return false;
    }
    cpl_ = new_cpl;
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = new_ss;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, tss_.esp[new_cpl]);
    if (!Push32(old_ss.raw(), fault) || !Push32(old_esp, fault)) return false;
  }
  if (!Push32(old_eflags, fault) || !Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) {
    return false;
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = Selector::FromIndex(tsel.index(), cpl_);
  cs.cache = *target;
  cs.valid = true;
  eip_ = gate->gate_offset;
  // Interrupt-gate semantics: further hardware interrupts are blocked until
  // IRET (or an explicit host-side restore) brings the pushed flags back.
  eflags_ &= ~kFlagIf;
  return true;
}

bool Cpu::DoIret(Fault* fault) {
  u32 new_eip = 0, cs_raw = 0, new_eflags = 0;
  if (!Pop32(&new_eip, fault) || !Pop32(&cs_raw, fault) || !Pop32(&new_eflags, fault)) {
    return false;
  }
  Selector sel(static_cast<u16>(cs_raw));
  if (sel.rpl() < cpl_) {
    *fault = Gp("iret to inner level", sel.raw());
    return false;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->IsCode() || !d->present) {
    *fault = Gp("iret target is not present code", sel.raw());
    return false;
  }
  if (sel.rpl() > cpl_) {
    u32 new_esp = 0, ss_raw = 0;
    if (!Pop32(&new_esp, fault) || !Pop32(&ss_raw, fault)) return false;
    Selector ss_sel(static_cast<u16>(ss_raw));
    const SegmentDescriptor* ssd = gdt_.Get(ss_sel.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != sel.rpl()) {
      *fault = Gp("iret outer SS invalid", ss_sel.raw());
      return false;
    }
    cpl_ = sel.rpl();
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = ss_sel;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, new_esp);
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = sel;
  cs.cache = *d;
  cs.valid = true;
  eip_ = new_eip;
  eflags_ = new_eflags;
  return true;
}

StopInfo Cpu::Run(u64 cycle_limit) {
  StopInfo stop;
  for (;;) {
    if (cycles_ >= cycle_limit) {
      stop.reason = StopReason::kCycleLimit;
      return stop;
    }
    // Host-entry detection happens on the *next* fetch address so that gate
    // semantics (stack switch, frame pushes) are architecturally complete
    // before the host kernel takes over.
    const LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
    if (cs.valid && host_size_ != 0) {
      u32 linear = cs.cache.base + eip_;
      if (linear >= host_base_ && linear - host_base_ < host_size_) {
        stop.reason = StopReason::kHostCall;
        stop.host_call_id = (linear - host_base_) / kInsnSize;
        return stop;
      }
    }
    // Hardware-interrupt check, strictly at retire boundaries and keyed off
    // the cycle counter (identical fast-path or oracle), after the host-entry
    // check so a pending gate into the kernel is taken before any IRQ. The
    // common case is one load + compare.
    if (irq_hub_ != nullptr && irq_hub_->attention_cycle() <= cycles_) {
      const int vec = irq_hub_->Poll(cycles_, (eflags_ & kFlagIf) != 0);
      if (vec >= 0) {
        if (irq_trace_ != nullptr) {
          irq_trace_->push_back(IrqEvent{static_cast<u8>(vec), cpl_, eip_, cycles_});
        }
        Fault fault;
        if (!DoInt(static_cast<u8>(vec), /*software=*/false, &fault)) {
          stop.reason = StopReason::kFault;
          stop.fault = fault;
          return stop;
        }
        cycles_ += model_.int_gate;
        continue;  // the gate target may itself be a host entry
      }
    }
    if (!StepOne(&stop)) return stop;
  }
}

// The interpreter's inner loop: flatten the whole fetch/translate/access
// machinery into one body so the per-instruction cost is branches, not call
// frames. (Measured: ~25% steady-state sim-MIPS on memory-heavy workloads.)
__attribute__((flatten)) bool Cpu::StepOne(StopInfo* stop) {
  const u32 insn_eip = eip_;
  Fault fault;
  const Insn* insn_p = nullptr;
  if (!FetchInsn(&insn_p, &fault)) {
    eip_ = insn_eip;
    stop->reason = StopReason::kFault;
    stop->fault = fault;
    return false;
  }
  // The storage behind insn_p (a decode-cache slot) outlives this
  // instruction even if the instruction overwrites its own page: the cache
  // retires invalidated pages and frees them only at the next fetch.
  const Insn& insn = *insn_p;
  eip_ += kInsnSize;
  ++instructions_;

  bool taken = false;
  u32 extra_cycles = 0;
  bool ok = true;

  auto addr_of = [&](const Insn& in) {
    u32 a = static_cast<u32>(in.disp);
    if (in.r2 != kNoBaseReg) a += regs_[in.r2];
    if (in.scale != 0) a += regs_[in.r3] * in.scale;
    return a;
  };
  auto base_is_stackish = [&](const Insn& in) {
    return in.r2 != kNoBaseReg &&
           (static_cast<Reg>(in.r2) == Reg::kEsp || static_cast<Reg>(in.r2) == Reg::kEbp);
  };

  switch (insn.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHlt:
      if (cpl_ != 0) {
        ok = false;
        fault = Gp("hlt at CPL > 0");
        break;
      }
      cycles_ += model_.BaseCost(insn.opcode, false);
      stop->reason = StopReason::kHalted;
      return false;
    case Opcode::kMovRR:
      regs_[insn.r1] = regs_[insn.r2];
      break;
    case Opcode::kMovRI:
      regs_[insn.r1] = static_cast<u32>(insn.imm);
      break;
    case Opcode::kLoad: {
      LoadedSegment& seg = SegForOverride(insn.seg, base_is_stackish(insn));
      u32 v = 0;
      ok = MemRead(seg, addr_of(insn), insn.size, &seg == &segs_[1], &v, &fault);
      if (ok) regs_[insn.r1] = v;
      break;
    }
    case Opcode::kStore: {
      LoadedSegment& seg = SegForOverride(insn.seg, base_is_stackish(insn));
      ok = MemWrite(seg, addr_of(insn), insn.size, &seg == &segs_[1], regs_[insn.r1], &fault);
      break;
    }
    case Opcode::kStoreI: {
      LoadedSegment& seg = SegForOverride(insn.seg, base_is_stackish(insn));
      ok = MemWrite(seg, addr_of(insn), insn.size, &seg == &segs_[1],
                    static_cast<u32>(insn.imm), &fault);
      break;
    }
    case Opcode::kLea:
      regs_[insn.r1] = addr_of(insn);
      break;
    case Opcode::kPushR:
      ok = Push32(regs_[insn.r1], &fault);
      break;
    case Opcode::kPushI:
      ok = Push32(static_cast<u32>(insn.imm), &fault);
      break;
    case Opcode::kPopR: {
      u32 v = 0;
      ok = Pop32(&v, &fault);
      if (ok) regs_[insn.r1] = v;
      break;
    }
    case Opcode::kPushSeg: {
      if (insn.r1 >= kNumSegRegs) {
        ok = false;
        fault = Ud("bad segment register");
        break;
      }
      ok = Push32(segs_[insn.r1].selector.raw(), &fault);
      break;
    }
    case Opcode::kPopSeg: {
      if (insn.r1 >= kNumSegRegs) {
        ok = false;
        fault = Ud("bad segment register");
        break;
      }
      u32 v = 0;
      ok = Pop32(&v, &fault);
      if (ok) ok = LoadSegmentChecked(static_cast<SegReg>(insn.r1), Selector(static_cast<u16>(v)),
                                      &fault);
      break;
    }
    case Opcode::kMovSegR: {
      if (insn.r1 >= kNumSegRegs) {
        ok = false;
        fault = Ud("bad segment register");
        break;
      }
      ok = LoadSegmentChecked(static_cast<SegReg>(insn.r1),
                              Selector(static_cast<u16>(regs_[insn.r2])), &fault);
      break;
    }
    case Opcode::kMovRSeg: {
      if (insn.r2 >= kNumSegRegs) {
        ok = false;
        fault = Ud("bad segment register");
        break;
      }
      regs_[insn.r1] = segs_[insn.r2].selector.raw();
      break;
    }

    case Opcode::kAddRR:
    case Opcode::kAddRI: {
      u32 a = regs_[insn.r1];
      u32 b = insn.opcode == Opcode::kAddRR ? regs_[insn.r2] : static_cast<u32>(insn.imm);
      u32 r = a + b;
      regs_[insn.r1] = r;
      SetFlags(r < a, r == 0, (r >> 31) & 1,
               ((~(a ^ b)) & (a ^ r) & 0x80000000u) != 0);
      break;
    }
    case Opcode::kSubRR:
    case Opcode::kSubRI:
    case Opcode::kCmpRR:
    case Opcode::kCmpRI: {
      u32 a = regs_[insn.r1];
      u32 b = (insn.opcode == Opcode::kSubRR || insn.opcode == Opcode::kCmpRR)
                  ? regs_[insn.r2]
                  : static_cast<u32>(insn.imm);
      u32 r = a - b;
      if (insn.opcode == Opcode::kSubRR || insn.opcode == Opcode::kSubRI) regs_[insn.r1] = r;
      SetFlags(a < b, r == 0, (r >> 31) & 1, (((a ^ b) & (a ^ r)) & 0x80000000u) != 0);
      break;
    }
    case Opcode::kAndRR:
    case Opcode::kAndRI:
    case Opcode::kTestRR:
    case Opcode::kTestRI: {
      u32 b = (insn.opcode == Opcode::kAndRR || insn.opcode == Opcode::kTestRR)
                  ? regs_[insn.r2]
                  : static_cast<u32>(insn.imm);
      u32 r = regs_[insn.r1] & b;
      if (insn.opcode == Opcode::kAndRR || insn.opcode == Opcode::kAndRI) regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kOrRR:
    case Opcode::kOrRI: {
      u32 b = insn.opcode == Opcode::kOrRR ? regs_[insn.r2] : static_cast<u32>(insn.imm);
      u32 r = regs_[insn.r1] | b;
      regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kXorRR:
    case Opcode::kXorRI: {
      u32 b = insn.opcode == Opcode::kXorRR ? regs_[insn.r2] : static_cast<u32>(insn.imm);
      u32 r = regs_[insn.r1] ^ b;
      regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kShlRI: {
      u32 s = static_cast<u32>(insn.imm) & 31;
      u32 r = regs_[insn.r1] << s;
      regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kShrRI: {
      u32 s = static_cast<u32>(insn.imm) & 31;
      u32 r = regs_[insn.r1] >> s;
      regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kSarRI: {
      u32 s = static_cast<u32>(insn.imm) & 31;
      u32 r = static_cast<u32>(static_cast<i32>(regs_[insn.r1]) >> s);
      regs_[insn.r1] = r;
      SetLogicFlags(r);
      break;
    }
    case Opcode::kImulRR:
    case Opcode::kImulRI: {
      i64 a = static_cast<i32>(regs_[insn.r1]);
      i64 b = insn.opcode == Opcode::kImulRR ? static_cast<i32>(regs_[insn.r2]) : insn.imm;
      i64 r = a * b;
      regs_[insn.r1] = static_cast<u32>(r);
      bool overflow = r != static_cast<i32>(r);
      SetFlags(overflow, static_cast<u32>(r) == 0, (static_cast<u32>(r) >> 31) & 1, overflow);
      break;
    }
    case Opcode::kUdivRR: {
      u32 b = regs_[insn.r2];
      if (b == 0) {
        ok = false;
        Fault f;
        f.vector = FaultVector::kDivideError;
        f.detail = "division by zero";
        fault = f;
        break;
      }
      regs_[insn.r1] = regs_[insn.r1] / b;
      break;
    }
    case Opcode::kNegR: {
      u32 r = 0 - regs_[insn.r1];
      SetFlags(regs_[insn.r1] != 0, r == 0, (r >> 31) & 1, regs_[insn.r1] == 0x80000000u);
      regs_[insn.r1] = r;
      break;
    }
    case Opcode::kNotR:
      regs_[insn.r1] = ~regs_[insn.r1];
      break;
    case Opcode::kIncR: {
      u32 a = regs_[insn.r1];
      u32 r = a + 1;
      regs_[insn.r1] = r;
      SetFlags(cf(), r == 0, (r >> 31) & 1, a == 0x7FFFFFFFu);
      break;
    }
    case Opcode::kDecR: {
      u32 a = regs_[insn.r1];
      u32 r = a - 1;
      regs_[insn.r1] = r;
      SetFlags(cf(), r == 0, (r >> 31) & 1, a == 0x80000000u);
      break;
    }

    case Opcode::kJmp:
      eip_ = static_cast<u32>(insn.imm);
      break;
    case Opcode::kJmpR:
      eip_ = regs_[insn.r1];
      break;
    case Opcode::kJe: taken = zf(); goto branch;
    case Opcode::kJne: taken = !zf(); goto branch;
    case Opcode::kJb: taken = cf(); goto branch;
    case Opcode::kJae: taken = !cf(); goto branch;
    case Opcode::kJbe: taken = cf() || zf(); goto branch;
    case Opcode::kJa: taken = !cf() && !zf(); goto branch;
    case Opcode::kJl: taken = sf() != of(); goto branch;
    case Opcode::kJge: taken = sf() == of(); goto branch;
    case Opcode::kJle: taken = zf() || sf() != of(); goto branch;
    case Opcode::kJg: taken = !zf() && sf() == of(); goto branch;
    case Opcode::kJs: taken = sf(); goto branch;
    case Opcode::kJns: taken = !sf(); goto branch;
    branch:
      if (taken) eip_ = static_cast<u32>(insn.imm);
      break;

    case Opcode::kCall:
      ok = Push32(eip_, &fault);
      if (ok) eip_ = static_cast<u32>(insn.imm);
      break;
    case Opcode::kCallR:
      ok = Push32(eip_, &fault);
      if (ok) eip_ = regs_[insn.r1];
      break;
    case Opcode::kRet: {
      u32 v = 0;
      ok = Pop32(&v, &fault);
      if (ok) eip_ = v;
      break;
    }
    case Opcode::kRetN: {
      u32 v = 0;
      ok = Pop32(&v, &fault);
      if (ok) {
        eip_ = v;
        set_reg(Reg::kEsp, reg(Reg::kEsp) + static_cast<u32>(insn.imm));
      }
      break;
    }

    case Opcode::kLcall:
      ok = DoLcall(insn, &fault, &extra_cycles);
      break;
    case Opcode::kLret:
      ok = DoLret(static_cast<u32>(insn.imm), &fault, &extra_cycles);
      break;
    case Opcode::kInt:
      ok = DoInt(static_cast<u8>(insn.imm), /*software=*/true, &fault);
      break;
    case Opcode::kIret:
      ok = DoIret(&fault);
      break;

    case Opcode::kCount:
      ok = false;
      fault = Ud("invalid opcode");
      break;
  }

  if (!ok) {
    eip_ = insn_eip;  // faulting EIP points at the faulting instruction
    stop->reason = StopReason::kFault;
    stop->fault = fault;
    return false;
  }
  cycles_ +=
      (taken ? taken_branch_cost_ : base_cost_[static_cast<u16>(insn.opcode)]) + extra_cycles;
  return true;
}

}  // namespace palladium
