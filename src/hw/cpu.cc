#include "src/hw/cpu.h"

#include <cstdlib>
#include <cstring>

#include "src/hw/irq.h"
#include "src/hw/paging.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"

namespace palladium {

namespace {

Fault Gp(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kGeneralProtection;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Ss(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kStackFault;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Np(const char* detail, u32 err = 0) {
  Fault f;
  f.vector = FaultVector::kSegmentNotPresent;
  f.error_code = err;
  f.detail = detail;
  return f;
}

Fault Ud(const char* detail) {
  Fault f;
  f.vector = FaultVector::kInvalidOpcode;
  f.detail = detail;
  return f;
}

}  // namespace

// The opcode X-macro drives both dispatch paths; its order must mirror the
// enum so a dispatch index IS the opcode value.
namespace {
constexpr Opcode kOpcodeOrder[] = {
#define PALLADIUM_X(name) Opcode::name,
    PALLADIUM_FOR_EACH_OPCODE(PALLADIUM_X)
#undef PALLADIUM_X
};
constexpr bool OpcodeOrderMatches() {
  if (sizeof(kOpcodeOrder) / sizeof(kOpcodeOrder[0]) != kNumOpcodes) return false;
  for (u16 i = 0; i < kNumOpcodes; ++i) {
    if (kOpcodeOrder[i] != static_cast<Opcode>(i)) return false;
  }
  return true;
}
static_assert(OpcodeOrderMatches(),
              "PALLADIUM_FOR_EACH_OPCODE must list every opcode in enum order");
}  // namespace

Cpu::Cpu(PhysicalMemory& pm, DescriptorTable& gdt, DescriptorTable& idt, CycleModel model)
    : pm_(pm), gdt_(gdt), idt_(idt), model_(model) {
  // The decode cache must see every byte of physical memory change, whether
  // it comes from a simulated store (on any vCPU), host-side kernel code, or
  // device DMA. Each vCPU registers its own cache; writes fan out to all.
  pm_.AddWriteObserver(&dcache_);
  // Global oracle switches: PALLADIUM_NO_DTLB=1 runs every CPU on the
  // per-byte data path, PALLADIUM_NO_BLOCKS=1 on the per-instruction
  // dispatch loop — so any bench or example can be diffed against the fast
  // paths without code changes (outputs must be byte-identical).
  if (std::getenv("PALLADIUM_NO_DTLB") != nullptr) dtlb_enabled_ = false;
  if (std::getenv("PALLADIUM_NO_BLOCKS") != nullptr) block_engine_enabled_ = false;
  if (std::getenv("PALLADIUM_NO_TRACE") != nullptr) trace_engine_enabled_ = false;
  dcache_.set_cost_table(&cost_);
  RebuildCostTable();
}

void Cpu::RebuildCostTable() {
  cost_ = model_.BuildCostTable();
  // Decoded slots are annotated with per-slot costs from the previous table;
  // they must be rebuilt against the new one.
  dcache_.InvalidateAll();
}

Cpu::~Cpu() { pm_.RemoveWriteObserver(&dcache_); }

bool Cpu::LoadSegmentChecked(SegReg sr, Selector sel, Fault* fault) {
  LoadedSegment& target = segs_[static_cast<u8>(sr)];
  if (sel.IsNull()) {
    if (sr == SegReg::kSs || sr == SegReg::kCs) {
      *fault = Gp("null selector load into CS/SS");
      return false;
    }
    target.selector = sel;
    target.valid = false;  // later accesses through it fault
    return true;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || d->type == DescriptorType::kNull) {
    *fault = Gp("selector index out of descriptor table", sel.raw());
    return false;
  }
  if (!d->present) {
    *fault = Np("segment not present", sel.raw());
    return false;
  }
  if (sr == SegReg::kCs) {
    // Direct CS loads are not an instruction; only far transfers load CS.
    *fault = Gp("CS cannot be loaded with mov/pop");
    return false;
  }
  if (sr == SegReg::kSs) {
    if (!d->IsData() || !d->writable) {
      *fault = Gp("SS must be a writable data segment", sel.raw());
      return false;
    }
    if (sel.rpl() != cpl_ || d->dpl != cpl_) {
      *fault = Gp("SS privilege mismatch", sel.raw());
      return false;
    }
  } else {
    // DS/ES: data or readable code, DPL >= max(CPL, RPL). This is the check
    // that stops an SPL 3 extension from loading the SPL 2 application
    // segment or an SPL 1 kernel extension from loading kernel segments.
    if (!(d->IsData() || (d->IsCode() && d->readable))) {
      *fault = Gp("not a data-readable segment", sel.raw());
      return false;
    }
    u8 eff = cpl_ > sel.rpl() ? cpl_ : sel.rpl();
    if (!d->conforming && d->dpl < eff) {
      *fault = Gp("data segment DPL below max(CPL,RPL)", sel.raw());
      return false;
    }
  }
  target.selector = sel;
  target.cache = *d;
  target.valid = true;
  return true;
}

bool Cpu::ForceSegment(SegReg sr, Selector sel) {
  LoadedSegment& target = segs_[static_cast<u8>(sr)];
  if (sel.IsNull()) {
    target.selector = sel;
    target.valid = false;
    return true;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->present) return false;
  target.selector = sel;
  target.cache = *d;
  target.valid = true;
  if (sr == SegReg::kCs) cpl_ = sel.rpl();
  return true;
}

CpuContext Cpu::SaveContext() const {
  CpuContext ctx;
  ctx.regs = regs_;
  ctx.eip = eip_;
  ctx.eflags = eflags_;
  ctx.cpl = cpl_;
  ctx.segs = segs_;
  return ctx;
}

void Cpu::RestoreContext(const CpuContext& ctx) {
  regs_ = ctx.regs;
  eip_ = ctx.eip;
  eflags_ = ctx.eflags;
  cpl_ = ctx.cpl;
  segs_ = ctx.segs;
}

bool Cpu::Translate(u32 linear, bool is_write, u32* phys, Fault* fault, u32* flags_out,
                    bool is_fetch) {
  const bool is_user = cpl_ == 3;
  u32 frame = 0, flags = 0;
  if (tlb_.Lookup(linear, &frame, &flags)) {
    // Permission check from the cached entry, as the hardware does.
    if (is_user && !(flags & kPteUser)) {
      Fault f;
      f.vector = FaultVector::kPageFault;
      f.error_code = kPfErrPresent | (is_write ? kPfErrWrite : 0) | kPfErrUser |
                     (is_fetch ? kPfErrFetch : 0);
      f.linear_address = linear;
      f.detail = "SPL 3 access to PPL 0 (supervisor) page";
      *fault = f;
      return false;
    }
    if (is_user && is_write && !(flags & kPteWrite)) {
      Fault f;
      f.vector = FaultVector::kPageFault;
      f.error_code = kPfErrPresent | kPfErrWrite | kPfErrUser;
      f.linear_address = linear;
      f.detail = "write to read-only page";
      *fault = f;
      return false;
    }
    // Dirty-bit update on a TLB-hit write, as the MMU performs it: the first
    // write through a translation cached by a read sets the PTE's D bit. The
    // entry remembers known-set A/D bits so the PTE touch happens once, and
    // the D-TLB fast path applies the identical rule — page-table images are
    // byte-equal with the fast path on or off.
    if (is_write && !(flags & kPteDirty)) {
      SetAccessedDirty(pm_, cr3_, linear, /*dirty=*/true);
      tlb_.OrFlags(linear, kPteDirty);
      flags |= kPteDirty;
    }
  } else {
    WalkResult wr = WalkPageTable(pm_, cr3_, linear, is_write, is_user, is_fetch);
    cycles_ += model_.tlb_miss_penalty;
    if (!wr.ok) {
      *fault = wr.fault;
      return false;
    }
    SetAccessedDirty(pm_, cr3_, linear, is_write);
    // Record what the walk just made true of the PTE.
    wr.flags |= kPteAccessed | (is_write ? kPteDirty : 0);
    const u32 evicted = tlb_.Insert(linear, wr.frame, wr.flags);
    // A conflict eviction must propagate to the D-TLB so its entries stay a
    // subset of live TLB entries (that subset property is what makes fast-
    // path cycle counts identical to the per-byte path).
    if (evicted != Tlb::kNoVpn) dtlb_.InvalidatePage(evicted, tlb_.change_count());
    frame = wr.frame;
    flags = wr.flags;
  }
  *phys = frame | (linear & kPageMask);
  if (flags_out != nullptr) *flags_out = flags;
  return true;
}

int Cpu::DtlbTranslate(u32 linear, u32 size, bool is_write, u8** host, u32* phys, Fault* fault) {
  const u32 vpn = PageNumber(linear);
  const u32 off = linear & kPageMask;
  DTlb::Entry* e = dtlb_.Lookup(vpn, tlb_.change_count());
  if (e != nullptr) {
    // Permission checks against the live CPL, bit-for-bit the checks (and
    // faults) of Translate's TLB-hit path — a hit here implies the TLB still
    // holds this translation, so the slow path would fault from that branch.
    if (cpl_ == 3) {
      if (!(e->flags & kPteUser)) {
        tlb_.RecordFastPathHits(1);  // the per-byte path's byte-0 lookup hits, then faults
        Fault f;
        f.vector = FaultVector::kPageFault;
        f.error_code = kPfErrPresent | (is_write ? kPfErrWrite : 0) | kPfErrUser;
        f.linear_address = linear;
        f.detail = "SPL 3 access to PPL 0 (supervisor) page";
        *fault = f;
        return -1;
      }
      if (is_write && !(e->flags & kPteWrite)) {
        tlb_.RecordFastPathHits(1);
        Fault f;
        f.vector = FaultVector::kPageFault;
        f.error_code = kPfErrPresent | kPfErrWrite | kPfErrUser;
        f.linear_address = linear;
        f.detail = "write to read-only page";
        *fault = f;
        return -1;
      }
    }
    if (is_write && !(e->flags & kPteDirty)) {
      SetAccessedDirty(pm_, cr3_, linear, /*dirty=*/true);
      tlb_.OrFlags(linear, kPteDirty);
      e->flags |= kPteDirty;
    }
    // The per-byte path would have performed `size` TLB lookups, all hits.
    tlb_.RecordFastPathHits(size);
    dtlb_.CountHit();
    *host = e->host + off;
    *phys = e->frame + off;
    return 1;
  }
  dtlb_.CountMiss();
  // Fill through one architectural translation: faults, tlb_miss_penalty
  // charges, walk-side A/D updates and TLB stats land exactly as the
  // per-byte path's first byte would produce them.
  u32 p = 0, flags = 0;
  if (!Translate(linear, is_write, &p, fault, &flags)) return -1;
  u8* page = pm_.FrameHostPtr(p & ~kPageMask);
  if (page == nullptr) {
    // Frame straddles the end of memory: the caller finishes on the byte
    // loop. Hand it byte 0's translation so it is not repeated (a repeat
    // would record one extra TLB hit versus the per-byte oracle).
    *phys = p;
    return 0;
  }
  // Bytes 1..size-1 of the per-byte path would each hit the just-primed TLB.
  tlb_.RecordFastPathHits(size - 1);
  dtlb_.Fill(vpn, p & ~kPageMask, flags, page, tlb_.change_count());
  *host = page + off;
  *phys = p;
  return 1;
}

bool Cpu::DtlbHostRead(u32 linear, void* dst, u32 len) {
  if (!dtlb_enabled_ || len == 0 || (linear & kPageMask) + len > kPageSize) return false;
  DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
  if (e == nullptr) return false;
  std::memcpy(dst, e->host + (linear & kPageMask), len);
  return true;
}

bool Cpu::DtlbHostWrite(u32 linear, const void* src, u32 len) {
  if (!dtlb_enabled_ || len == 0 || (linear & kPageMask) + len > kPageSize) return false;
  DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
  if (e == nullptr) return false;
  const u32 off = linear & kPageMask;
  std::memcpy(e->host + off, src, len);
  pm_.NotifyWrite(e->frame + off, len);
  return true;
}

bool Cpu::CheckSegmentAccess(const LoadedSegment& seg, u32 offset, u32 size, bool is_write,
                             bool is_stack, Fault* fault) {
  if (!seg.valid) {
    *fault = is_stack ? Ss("access through invalid SS") : Gp("access through null segment");
    return false;
  }
  const SegmentDescriptor& d = seg.cache;
  // Limit check: `limit` is the segment size in bytes.
  if (offset > d.limit || size > d.limit - offset) {
    *fault = is_stack ? Ss("stack segment limit violation") : Gp("segment limit violation");
    return false;
  }
  if (is_write) {
    if (d.IsCode()) {
      *fault = Gp("write into code segment");
      return false;
    }
    if (!d.writable) {
      *fault = Gp("write into read-only segment");
      return false;
    }
  } else if (d.IsCode() && !d.readable) {
    *fault = Gp("read from execute-only code segment");
    return false;
  }
  return true;
}

bool Cpu::MemRead(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32* out,
                  Fault* fault) {
  if (!CheckSegmentAccess(seg, offset, size, /*is_write=*/false, is_stack, fault)) return false;
  u32 linear = seg.cache.base + offset;  // wraps mod 2^32 like the hardware
  // Fast path: an access wholly inside one page reads straight off the
  // D-TLB's host pointer. Page-straddling accesses keep the per-byte loop
  // (its partial-access and mid-access-fault semantics are the contract).
  if (dtlb_enabled_ && size != 0 && (linear & kPageMask) + size <= kPageSize) {
    // Common hit inlined here; permission faults, misses and fills take the
    // out-of-line path, which re-probes and handles every case.
    DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
    if (e != nullptr && !(cpl_ == 3 && !(e->flags & kPteUser))) {
      tlb_.RecordFastPathHits(size);
      dtlb_.CountHit();
      const u8* host = e->host + (linear & kPageMask);
      // Fixed-width copies (little-endian host, like Read32); a runtime-size
      // memcpy would cost a libc call per load.
      u32 value;
      switch (size) {
        case 1:
          value = *host;
          break;
        case 2: {
          u16 v16;
          std::memcpy(&v16, host, 2);
          value = v16;
          break;
        }
        case 4:
          std::memcpy(&value, host, 4);
          break;
        default:
          value = 0;
          std::memcpy(&value, host, size);
          break;
      }
      *out = value;
      return true;
    }
    u8* host = nullptr;
    u32 phys = 0;
    int r = DtlbTranslate(linear, size, /*is_write=*/false, &host, &phys, fault);
    if (r < 0) return false;
    if (r > 0) {
      u32 value = 0;
      std::memcpy(&value, host, size);
      *out = value;
      return true;
    }
    // r == 0: frame not host-mappable. Byte 0 was already translated by the
    // fill attempt; consume it here so the TLB statistics stay equal to the
    // per-byte oracle, then finish on the byte loop.
    u8 b = 0;
    if (!pm_.Read8(phys, &b)) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    u32 value = b;
    if (!ReadBytesSlow(linear, 1, size, &value, fault)) return false;
    *out = value;
    return true;
  }
  u32 value = 0;
  if (!ReadBytesSlow(linear, 0, size, &value, fault)) return false;
  *out = value;
  return true;
}

bool Cpu::ReadBytesSlow(u32 linear, u32 start, u32 size, u32* value, Fault* fault) {
  for (u32 i = start; i < size; ++i) {
    // Per-byte composition handles page-crossing accesses; same-page bytes
    // hit the TLB so the cost stays realistic.
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/false, &phys, fault)) return false;
    u8 b = 0;
    if (!pm_.Read8(phys, &b)) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    *value |= static_cast<u32>(b) << (8 * i);
  }
  return true;
}

bool Cpu::MemWrite(const LoadedSegment& seg, u32 offset, u32 size, bool is_stack, u32 value,
                   Fault* fault) {
  if (!CheckSegmentAccess(seg, offset, size, /*is_write=*/true, is_stack, fault)) return false;
  u32 linear = seg.cache.base + offset;
  if (dtlb_enabled_ && size != 0 && (linear & kPageMask) + size <= kPageSize) {
    // Inline hit path: needs write permission at the live CPL and a PTE
    // whose D bit is known set; everything else (fault, dirty update, miss,
    // fill) goes out of line and re-probes.
    DTlb::Entry* e = dtlb_.Lookup(PageNumber(linear), tlb_.change_count());
    if (e != nullptr && (e->flags & kPteDirty) &&
        !(cpl_ == 3 && (~e->flags & (kPteUser | kPteWrite)) != 0)) {
      tlb_.RecordFastPathHits(size);
      dtlb_.CountHit();
      const u32 off = linear & kPageMask;
      u8* host = e->host + off;
      switch (size) {
        case 1:
          *host = static_cast<u8>(value);
          break;
        case 2: {
          const u16 v16 = static_cast<u16>(value);
          std::memcpy(host, &v16, 2);
          break;
        }
        case 4:
          std::memcpy(host, &value, 4);
          break;
        default:
          std::memcpy(host, &value, size);
          break;
      }
      // The write observer must see D-TLB-path stores too, or a store into
      // a decoded code page would execute stale instructions. On a
      // uniprocessor the sole observer is this CPU's own decode cache;
      // calling it directly keeps the probe inlinable. With multiple vCPUs
      // (or an extra test observer) the store must fan out to every core's
      // decode cache through the notify loop.
      const u32 phys = e->frame + off;
      if (pm_.sole_write_observer() == &dcache_) {
        dcache_.OnPhysicalWrite(phys, size);
      } else {
        pm_.NotifyWrite(phys, size);
      }
      return true;
    }
    u8* host = nullptr;
    u32 phys = 0;
    int r = DtlbTranslate(linear, size, /*is_write=*/true, &host, &phys, fault);
    if (r < 0) return false;
    if (r > 0) {
      std::memcpy(host, &value, size);
      pm_.NotifyWrite(phys, size);
      return true;
    }
    // r == 0: consume byte 0's translation (see MemRead) and finish on the
    // byte loop.
    if (!pm_.Write8(phys, static_cast<u8>(value))) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
    return WriteBytesSlow(linear, 1, size, value, fault);
  }
  return WriteBytesSlow(linear, 0, size, value, fault);
}

bool Cpu::WriteBytesSlow(u32 linear, u32 start, u32 size, u32 value, Fault* fault) {
  for (u32 i = start; i < size; ++i) {
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/true, &phys, fault)) return false;
    if (!pm_.Write8(phys, static_cast<u8>(value >> (8 * i)))) {
      *fault = Gp("physical address out of range (bus error)");
      return false;
    }
  }
  return true;
}

bool Cpu::ReadVirt(SegReg sr, u32 offset, u32 size, u32* out, Fault* fault) {
  return MemRead(segs_[static_cast<u8>(sr)], offset, size, sr == SegReg::kSs, out, fault);
}

bool Cpu::WriteVirt(SegReg sr, u32 offset, u32 size, u32 value, Fault* fault) {
  return MemWrite(segs_[static_cast<u8>(sr)], offset, size, sr == SegReg::kSs, value, fault);
}

bool Cpu::Push32(u32 v, Fault* fault) {
  u32 esp = reg(Reg::kEsp) - 4;
  if (!WriteVirt(SegReg::kSs, esp, 4, v, fault)) return false;
  set_reg(Reg::kEsp, esp);
  return true;
}

bool Cpu::Pop32(u32* v, Fault* fault) {
  u32 esp = reg(Reg::kEsp);
  if (!ReadVirt(SegReg::kSs, esp, 4, v, fault)) return false;
  set_reg(Reg::kEsp, esp + 4);
  return true;
}

// An instruction fetch that reaches past the end of physical memory is a
// translation-layer failure, not a protection violation: report it as a page
// fault carrying the exact faulting linear address (the CR2 analogue), with
// the present bit set so the kernel's demand-paging path does not try to map
// it. The data path keeps its bus-error #GP. Like every fetch-induced page
// fault (Translate is called with is_fetch), the error code carries the
// I/D bit so handlers can tell instruction fetches from data accesses.
Fault Cpu::FetchBusFault(u32 linear) const {
  Fault f;
  f.vector = FaultVector::kPageFault;
  f.error_code = kPfErrPresent | (cpl_ == 3 ? kPfErrUser : 0) | kPfErrFetch;
  f.linear_address = linear;
  f.detail = "instruction fetch beyond physical memory";
  return f;
}

bool Cpu::FetchFromSlot(u32 linear, const DecodedInsn** insn, Fault* fault) {
  const DecodedInsn& slot = fetch_page_->slots[(linear & kPageMask) / kInsnSize];
  switch (slot.state) {
    case DecodedInsn::State::kDecoded:
      *insn = &slot;
      return true;
    case DecodedInsn::State::kUndecodable:
      *fault = Ud("undecodable instruction");
      return false;
    case DecodedInsn::State::kBusError:
      *fault = FetchBusFault(linear + slot.fault_offset);
      return false;
  }
  *fault = Ud("undecodable instruction");
  return false;
}

bool Cpu::FetchInsn(const DecodedInsn** insn, Fault* fault) {
  const LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  if (!CheckSegmentAccess(cs, eip_, kInsnSize, /*is_write=*/false, /*is_stack=*/false, fault)) {
    return false;
  }
  const u32 linear = cs.cache.base + eip_;

  // Fast path: slot-aligned fetches (kInsnSize divides kPageSize, so they
  // never cross a page) execute straight out of the decoded page image.
  if (decode_cache_enabled_ && (linear & (kInsnSize - 1)) == 0) {
    const u32 vpn = PageNumber(linear);
    if (fetch_page_ != nullptr && vpn == fetch_vpn_ &&
        fetch_tlb_change_ == tlb_.change_count() &&
        fetch_dcache_gen_ == dcache_.generation() &&
        !(cpl_ == 3 && !(fetch_flags_ & kPteUser))) {
      return FetchFromSlot(linear, insn, fault);
    }
    // Refill: one translation pins the whole page. A fault here carries the
    // instruction's linear address, which is also the first byte's.
    u32 phys = 0, flags = 0;
    if (!Translate(linear, /*is_write=*/false, &phys, fault, &flags, /*is_fetch=*/true)) {
      return false;
    }
    fetch_page_ = dcache_.GetOrBuild(pm_, phys & ~kPageMask);
    fetch_vpn_ = vpn;
    fetch_flags_ = flags;
    fetch_tlb_change_ = tlb_.change_count();
    fetch_dcache_gen_ = dcache_.generation();
    return FetchFromSlot(linear, insn, fault);
  }

  // Slow path: unaligned fetch (non-16-byte-aligned CS base), possibly
  // crossing a page. Byte-at-a-time so a mid-instruction translation fault
  // reports the exact faulting address.
  u8 raw[kInsnSize];
  for (u32 i = 0; i < kInsnSize; ++i) {
    u32 phys = 0;
    if (!Translate(linear + i, /*is_write=*/false, &phys, fault, nullptr, /*is_fetch=*/true)) {
      return false;
    }
    if (!pm_.Read8(phys, &raw[i])) {
      *fault = FetchBusFault(linear + i);
      return false;
    }
  }
  auto decoded = Insn::Decode(raw);
  if (!decoded) {
    *fault = Ud("undecodable instruction");
    return false;
  }
  fetch_scratch_.state = DecodedInsn::State::kDecoded;
  fetch_scratch_.insn = *decoded;
  FillExecInfo(fetch_scratch_, cost_);
  *insn = &fetch_scratch_;
  return true;
}

bool Cpu::DoLcall(const Insn& insn, Fault* fault, u32* extra_cycles) {
  Selector sel(static_cast<u16>(insn.imm));
  const SegmentDescriptor* gate = gdt_.Get(sel.index());
  if (gate == nullptr || gate->type != DescriptorType::kCallGate) {
    *fault = Gp("lcall target is not a call gate", sel.raw());
    return false;
  }
  if (!gate->present) {
    *fault = Np("call gate not present", sel.raw());
    return false;
  }
  u8 eff = cpl_ > sel.rpl() ? cpl_ : sel.rpl();
  if (gate->dpl < eff) {
    *fault = Gp("call gate DPL below max(CPL,RPL)", sel.raw());
    return false;
  }
  Selector tsel(gate->gate_selector);
  const SegmentDescriptor* target = gdt_.Get(tsel.index());
  if (target == nullptr || !target->IsCode() || !target->present) {
    *fault = Gp("call gate target is not present code", tsel.raw());
    return false;
  }
  if (target->dpl > cpl_) {
    *fault = Gp("call gate target less privileged than caller", tsel.raw());
    return false;
  }

  const u32 old_eip = eip_;
  const Selector old_cs = segs_[static_cast<u8>(SegReg::kCs)].selector;

  if (target->dpl < cpl_ && !target->conforming) {
    // Inter-privilege call: switch to the inner stack from the TSS, then
    // push the outer SS:ESP and CS:EIP onto it.
    const u8 new_cpl = target->dpl;
    const Selector old_ss = segs_[static_cast<u8>(SegReg::kSs)].selector;
    const u32 old_esp = reg(Reg::kEsp);

    Selector new_ss(tss_.ss[new_cpl]);
    const SegmentDescriptor* ssd = gdt_.Get(new_ss.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != new_cpl) {
      Fault f;
      f.vector = FaultVector::kInvalidTss;
      f.error_code = new_ss.raw();
      f.detail = "bad inner stack segment in TSS";
      *fault = f;
      return false;
    }
    // Commit the privilege switch before pushing (pushes run at new CPL on
    // the new stack).
    cpl_ = new_cpl;
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = new_ss;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, tss_.esp[new_cpl]);

    if (!Push32(old_ss.raw(), fault) || !Push32(old_esp, fault)) return false;
    // Parameter copy (gate_param_count dwords from the outer stack).
    for (u8 i = 0; i < gate->gate_param_count; ++i) {
      u32 off = old_esp + (gate->gate_param_count - 1 - i) * 4u;
      // Read with the *old* SS descriptor via a temporary loaded segment.
      LoadedSegment old_stack;
      old_stack.selector = old_ss;
      const SegmentDescriptor* od = gdt_.Get(old_ss.index());
      if (od == nullptr) {
        *fault = Gp("outer stack segment vanished");
        return false;
      }
      old_stack.cache = *od;
      old_stack.valid = true;
      u32 word = 0;
      if (!MemRead(old_stack, off, 4, /*is_stack=*/true, &word, fault)) return false;
      if (!Push32(word, fault)) return false;
    }
    if (!Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) return false;
    // Privilege-change premium plus the hardware's per-parameter word copy
    // (~4 cycles each per the Pentium manual).
    *extra_cycles = model_.lcall_inter - model_.lcall_same + 4u * gate->gate_param_count;
  } else {
    if (!Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) return false;
  }

  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = Selector::FromIndex(tsel.index(), cpl_);
  cs.cache = *target;
  cs.valid = true;
  eip_ = gate->gate_offset;
  return true;
}

bool Cpu::DoLret(u32 release_bytes, Fault* fault, u32* extra_cycles) {
  u32 new_eip = 0, cs_raw = 0;
  if (!Pop32(&new_eip, fault) || !Pop32(&cs_raw, fault)) return false;
  set_reg(Reg::kEsp, reg(Reg::kEsp) + release_bytes);  // release inner-stack params
  Selector sel(static_cast<u16>(cs_raw));
  if (sel.IsNull()) {
    *fault = Gp("lret to null CS");
    return false;
  }
  if (sel.rpl() < cpl_) {
    *fault = Gp("lret to inner (more privileged) level", sel.raw());
    return false;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->IsCode() || !d->present) {
    *fault = Gp("lret target is not present code", sel.raw());
    return false;
  }
  if (!d->conforming && d->dpl != sel.rpl()) {
    *fault = Gp("lret target DPL/RPL mismatch", sel.raw());
    return false;
  }
  if (sel.rpl() > cpl_) {
    // Return to outer level: pop the outer SS:ESP (still from the inner
    // stack), then switch.
    u32 new_esp = 0, ss_raw = 0;
    if (!Pop32(&new_esp, fault) || !Pop32(&ss_raw, fault)) return false;
    Selector ss_sel(static_cast<u16>(ss_raw));
    const SegmentDescriptor* ssd = gdt_.Get(ss_sel.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != sel.rpl()) {
      *fault = Gp("lret outer SS invalid", ss_sel.raw());
      return false;
    }
    cpl_ = sel.rpl();
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = ss_sel;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, new_esp + release_bytes);  // release outer-stack params too
    *extra_cycles = model_.lret_inter - model_.lret_same;
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = sel;
  cs.cache = *d;
  cs.valid = true;
  eip_ = new_eip;
  return true;
}

bool Cpu::DoInt(u8 vector, bool software, Fault* fault) {
  const SegmentDescriptor* gate = idt_.Get(vector);
  if (gate == nullptr || gate->type != DescriptorType::kInterruptGate || !gate->present) {
    *fault = Gp("missing interrupt gate", static_cast<u32>(vector) << 3);
    return false;
  }
  // Software INT n must satisfy CPL <= gate DPL; this is what keeps user
  // code from invoking kernel-internal vectors directly.
  if (software && gate->dpl < cpl_) {
    *fault = Gp("software interrupt to protected vector", static_cast<u32>(vector) << 3);
    return false;
  }
  Selector tsel(gate->gate_selector);
  const SegmentDescriptor* target = gdt_.Get(tsel.index());
  if (target == nullptr || !target->IsCode() || !target->present) {
    *fault = Gp("interrupt gate target invalid", tsel.raw());
    return false;
  }
  const u32 old_eip = eip_;
  const u32 old_eflags = eflags_;
  const Selector old_cs = segs_[static_cast<u8>(SegReg::kCs)].selector;

  if (target->dpl < cpl_) {
    const u8 new_cpl = target->dpl;
    const Selector old_ss = segs_[static_cast<u8>(SegReg::kSs)].selector;
    const u32 old_esp = reg(Reg::kEsp);
    Selector new_ss(tss_.ss[new_cpl]);
    const SegmentDescriptor* ssd = gdt_.Get(new_ss.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != new_cpl) {
      Fault f;
      f.vector = FaultVector::kInvalidTss;
      f.error_code = new_ss.raw();
      f.detail = "bad inner stack segment in TSS (interrupt)";
      *fault = f;
      return false;
    }
    cpl_ = new_cpl;
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = new_ss;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, tss_.esp[new_cpl]);
    if (!Push32(old_ss.raw(), fault) || !Push32(old_esp, fault)) return false;
  }
  if (!Push32(old_eflags, fault) || !Push32(old_cs.raw(), fault) || !Push32(old_eip, fault)) {
    return false;
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = Selector::FromIndex(tsel.index(), cpl_);
  cs.cache = *target;
  cs.valid = true;
  eip_ = gate->gate_offset;
  // Interrupt-gate semantics: further hardware interrupts are blocked until
  // IRET (or an explicit host-side restore) brings the pushed flags back.
  eflags_ &= ~kFlagIf;
  return true;
}

bool Cpu::DoIret(Fault* fault) {
  u32 new_eip = 0, cs_raw = 0, new_eflags = 0;
  if (!Pop32(&new_eip, fault) || !Pop32(&cs_raw, fault) || !Pop32(&new_eflags, fault)) {
    return false;
  }
  Selector sel(static_cast<u16>(cs_raw));
  if (sel.rpl() < cpl_) {
    *fault = Gp("iret to inner level", sel.raw());
    return false;
  }
  const SegmentDescriptor* d = gdt_.Get(sel.index());
  if (d == nullptr || !d->IsCode() || !d->present) {
    *fault = Gp("iret target is not present code", sel.raw());
    return false;
  }
  if (sel.rpl() > cpl_) {
    u32 new_esp = 0, ss_raw = 0;
    if (!Pop32(&new_esp, fault) || !Pop32(&ss_raw, fault)) return false;
    Selector ss_sel(static_cast<u16>(ss_raw));
    const SegmentDescriptor* ssd = gdt_.Get(ss_sel.index());
    if (ssd == nullptr || !ssd->IsData() || !ssd->writable || !ssd->present ||
        ssd->dpl != sel.rpl()) {
      *fault = Gp("iret outer SS invalid", ss_sel.raw());
      return false;
    }
    cpl_ = sel.rpl();
    LoadedSegment& ss = segs_[static_cast<u8>(SegReg::kSs)];
    ss.selector = ss_sel;
    ss.cache = *ssd;
    ss.valid = true;
    set_reg(Reg::kEsp, new_esp);
  }
  LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  cs.selector = sel;
  cs.cache = *d;
  cs.valid = true;
  eip_ = new_eip;
  eflags_ = new_eflags;
  return true;
}

StopInfo Cpu::Run(u64 cycle_limit) {
  StopInfo stop;
  for (;;) {
    if (cycles_ >= cycle_limit) {
      stop.reason = StopReason::kCycleLimit;
      return stop;
    }
    // Host-entry detection happens on the *next* fetch address so that gate
    // semantics (stack switch, frame pushes) are architecturally complete
    // before the host kernel takes over.
    const LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
    if (cs.valid && host_size_ != 0) {
      u32 linear = cs.cache.base + eip_;
      if (linear >= host_base_ && linear - host_base_ < host_size_) {
        stop.reason = StopReason::kHostCall;
        stop.host_call_id = (linear - host_base_) / kInsnSize;
        return stop;
      }
    }
    // Hardware-interrupt check, strictly at retire boundaries and keyed off
    // the cycle counter (identical fast-path or oracle), after the host-entry
    // check so a pending gate into the kernel is taken before any IRQ. The
    // common case is one load + compare.
    if (irq_hub_ != nullptr && irq_hub_->attention_cycle() <= cycles_) {
      const int vec = irq_hub_->Poll(cycles_, (eflags_ & kFlagIf) != 0);
      if (vec >= 0) {
        if (irq_trace_ != nullptr) {
          irq_trace_->push_back(IrqEvent{static_cast<u8>(vec), cpl_, eip_, cycles_});
        }
        if (recorder_ != nullptr) {
          recorder_->Record(obs_track_, cycles_, obs::EventType::kIrqDeliver,
                            obs::EventClass::kArch, static_cast<u32>(vec), cpl_);
        }
        if (profiler_ != nullptr) {
          profiler_->Set(obs_track_, cycles_, tlb_.stats().misses,
                         obs::Category::kIrq);
        }
        Fault fault;
        if (!DoInt(static_cast<u8>(vec), /*software=*/false, &fault)) {
          stop.reason = StopReason::kFault;
          stop.fault = fault;
          return stop;
        }
        cycles_ += model_.int_gate;
        continue;  // the gate target may itself be a host entry
      }
    }
    // Superblock engine: execute decoded basic-block runs until something
    // needs the outer boundary checks again. Falls back to a single
    // interpreted step where block dispatch cannot start (unaligned CS
    // base, host-entry page, fetch outside the segment limit) — or where it
    // could not run more than one instruction anyway because a pending but
    // masked IRQ pins the hub's attention cycle to "now" (every boundary
    // must poll, so block entry would be pure overhead).
    if (block_engine_enabled_ && decode_cache_enabled_ &&
        (irq_hub_ == nullptr || irq_hub_->attention_cycle() > cycles_)) {
      const BlockExit be = RunBlock(cycle_limit, &stop);
      if (be == BlockExit::kStopped) return stop;
      if (be == BlockExit::kYield) continue;
    }
    if (!StepOne(&stop)) return stop;
  }
}

namespace {

// Effective address of a memory operand: disp [+ base] [+ index*scale].
inline u32 EffectiveAddr(const std::array<u32, kNumRegs>& regs, const Insn& insn) {
  u32 a = static_cast<u32>(insn.disp);
  if (insn.r2 != kNoBaseReg) a += regs[insn.r2];
  if (insn.scale != 0) a += regs[insn.r3] * insn.scale;
  return a;
}

}  // namespace

// The one per-opcode execution core. Each instantiation is the semantics of
// exactly one opcode (the if-constexpr chain collapses at compile time), and
// both dispatch loops — StepOne's switch and RunBlock's threaded dispatch —
// expand to calls of these, so the per-instruction oracle and the block
// engine cannot diverge on what an instruction *does*; only the boundary
// machinery around the core differs, and that is what the differential fuzz
// pins down.
template <Opcode kOp>
inline Cpu::ExecStatus Cpu::ExecOp(Cpu& c, const DecodedInsn& d, ExecCtx& ctx) {
  using ES = ExecStatus;
  const Insn& insn = d.insn;
  (void)insn;
  (void)ctx;

  if constexpr (kOp == Opcode::kNop) {
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kHlt) {
    if (c.cpl_ != 0) {
      ctx.fault = Gp("hlt at CPL > 0");
      return ES::kFault;
    }
    return ES::kHalt;

  } else if constexpr (kOp == Opcode::kMovRR) {
    c.regs_[insn.r1] = c.regs_[insn.r2];
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kMovRI) {
    c.regs_[insn.r1] = static_cast<u32>(insn.imm);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kLoad) {
    u32 v = 0;
    if (!c.MemRead(c.segs_[d.seg_idx], EffectiveAddr(c.regs_, insn), insn.size, d.is_stack,
                   &v, &ctx.fault)) {
      return ES::kFault;
    }
    c.regs_[insn.r1] = v;
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kStore) {
    if (!c.MemWrite(c.segs_[d.seg_idx], EffectiveAddr(c.regs_, insn), insn.size, d.is_stack,
                    c.regs_[insn.r1], &ctx.fault)) {
      return ES::kFault;
    }
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kStoreI) {
    if (!c.MemWrite(c.segs_[d.seg_idx], EffectiveAddr(c.regs_, insn), insn.size, d.is_stack,
                    static_cast<u32>(insn.imm), &ctx.fault)) {
      return ES::kFault;
    }
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kLea) {
    c.regs_[insn.r1] = EffectiveAddr(c.regs_, insn);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kPushR) {
    return c.Push32(c.regs_[insn.r1], &ctx.fault) ? ES::kNext : ES::kFault;

  } else if constexpr (kOp == Opcode::kPushI) {
    return c.Push32(static_cast<u32>(insn.imm), &ctx.fault) ? ES::kNext : ES::kFault;

  } else if constexpr (kOp == Opcode::kPopR) {
    u32 v = 0;
    if (!c.Pop32(&v, &ctx.fault)) return ES::kFault;
    c.regs_[insn.r1] = v;
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kPushSeg) {
    if (insn.r1 >= kNumSegRegs) {
      ctx.fault = Ud("bad segment register");
      return ES::kFault;
    }
    return c.Push32(c.segs_[insn.r1].selector.raw(), &ctx.fault) ? ES::kNext : ES::kFault;

  } else if constexpr (kOp == Opcode::kPopSeg) {
    if (insn.r1 >= kNumSegRegs) {
      ctx.fault = Ud("bad segment register");
      return ES::kFault;
    }
    u32 v = 0;
    if (!c.Pop32(&v, &ctx.fault)) return ES::kFault;
    if (!c.LoadSegmentChecked(static_cast<SegReg>(insn.r1), Selector(static_cast<u16>(v)),
                              &ctx.fault)) {
      return ES::kFault;  // note: ESP stays popped, as on the hardware model
    }
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kMovSegR) {
    if (insn.r1 >= kNumSegRegs) {
      ctx.fault = Ud("bad segment register");
      return ES::kFault;
    }
    if (!c.LoadSegmentChecked(static_cast<SegReg>(insn.r1),
                              Selector(static_cast<u16>(c.regs_[insn.r2])), &ctx.fault)) {
      return ES::kFault;
    }
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kMovRSeg) {
    if (insn.r2 >= kNumSegRegs) {
      ctx.fault = Ud("bad segment register");
      return ES::kFault;
    }
    c.regs_[insn.r1] = c.segs_[insn.r2].selector.raw();
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kAddRR || kOp == Opcode::kAddRI) {
    const u32 a = c.regs_[insn.r1];
    const u32 b = kOp == Opcode::kAddRR ? c.regs_[insn.r2] : static_cast<u32>(insn.imm);
    const u32 r = a + b;
    c.regs_[insn.r1] = r;
    c.SetFlags(r < a, r == 0, (r >> 31) & 1, ((~(a ^ b)) & (a ^ r) & 0x80000000u) != 0);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kSubRR || kOp == Opcode::kSubRI ||
                       kOp == Opcode::kCmpRR || kOp == Opcode::kCmpRI) {
    const u32 a = c.regs_[insn.r1];
    const u32 b = (kOp == Opcode::kSubRR || kOp == Opcode::kCmpRR)
                      ? c.regs_[insn.r2]
                      : static_cast<u32>(insn.imm);
    const u32 r = a - b;
    if constexpr (kOp == Opcode::kSubRR || kOp == Opcode::kSubRI) c.regs_[insn.r1] = r;
    c.SetFlags(a < b, r == 0, (r >> 31) & 1, (((a ^ b) & (a ^ r)) & 0x80000000u) != 0);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kAndRR || kOp == Opcode::kAndRI ||
                       kOp == Opcode::kTestRR || kOp == Opcode::kTestRI) {
    const u32 b = (kOp == Opcode::kAndRR || kOp == Opcode::kTestRR)
                      ? c.regs_[insn.r2]
                      : static_cast<u32>(insn.imm);
    const u32 r = c.regs_[insn.r1] & b;
    if constexpr (kOp == Opcode::kAndRR || kOp == Opcode::kAndRI) c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kOrRR || kOp == Opcode::kOrRI) {
    const u32 b = kOp == Opcode::kOrRR ? c.regs_[insn.r2] : static_cast<u32>(insn.imm);
    const u32 r = c.regs_[insn.r1] | b;
    c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kXorRR || kOp == Opcode::kXorRI) {
    const u32 b = kOp == Opcode::kXorRR ? c.regs_[insn.r2] : static_cast<u32>(insn.imm);
    const u32 r = c.regs_[insn.r1] ^ b;
    c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kShlRI) {
    const u32 s = static_cast<u32>(insn.imm) & 31;
    const u32 r = c.regs_[insn.r1] << s;
    c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kShrRI) {
    const u32 s = static_cast<u32>(insn.imm) & 31;
    const u32 r = c.regs_[insn.r1] >> s;
    c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kSarRI) {
    const u32 s = static_cast<u32>(insn.imm) & 31;
    const u32 r = static_cast<u32>(static_cast<i32>(c.regs_[insn.r1]) >> s);
    c.regs_[insn.r1] = r;
    c.SetLogicFlags(r);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kImulRR || kOp == Opcode::kImulRI) {
    const i64 a = static_cast<i32>(c.regs_[insn.r1]);
    const i64 b =
        kOp == Opcode::kImulRR ? static_cast<i64>(static_cast<i32>(c.regs_[insn.r2]))
                               : static_cast<i64>(insn.imm);
    const i64 r = a * b;
    c.regs_[insn.r1] = static_cast<u32>(r);
    const bool overflow = r != static_cast<i32>(r);
    c.SetFlags(overflow, static_cast<u32>(r) == 0, (static_cast<u32>(r) >> 31) & 1, overflow);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kUdivRR) {
    const u32 b = c.regs_[insn.r2];
    if (b == 0) {
      Fault f;
      f.vector = FaultVector::kDivideError;
      f.detail = "division by zero";
      ctx.fault = f;
      return ES::kFault;
    }
    c.regs_[insn.r1] = c.regs_[insn.r1] / b;
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kNegR) {
    const u32 a = c.regs_[insn.r1];
    const u32 r = 0 - a;
    c.SetFlags(a != 0, r == 0, (r >> 31) & 1, a == 0x80000000u);
    c.regs_[insn.r1] = r;
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kNotR) {
    c.regs_[insn.r1] = ~c.regs_[insn.r1];
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kIncR) {
    const u32 a = c.regs_[insn.r1];
    const u32 r = a + 1;
    c.regs_[insn.r1] = r;
    c.SetFlags(c.cf(), r == 0, (r >> 31) & 1, a == 0x7FFFFFFFu);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kDecR) {
    const u32 a = c.regs_[insn.r1];
    const u32 r = a - 1;
    c.regs_[insn.r1] = r;
    c.SetFlags(c.cf(), r == 0, (r >> 31) & 1, a == 0x80000000u);
    return ES::kNext;

  } else if constexpr (kOp == Opcode::kJmp) {
    c.eip_ = static_cast<u32>(insn.imm);
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kJmpR) {
    c.eip_ = c.regs_[insn.r1];
    return ES::kJump;

  } else if constexpr (IsJcc(kOp)) {
    bool taken = false;
    if constexpr (kOp == Opcode::kJe) taken = c.zf();
    else if constexpr (kOp == Opcode::kJne) taken = !c.zf();
    else if constexpr (kOp == Opcode::kJb) taken = c.cf();
    else if constexpr (kOp == Opcode::kJae) taken = !c.cf();
    else if constexpr (kOp == Opcode::kJbe) taken = c.cf() || c.zf();
    else if constexpr (kOp == Opcode::kJa) taken = !c.cf() && !c.zf();
    else if constexpr (kOp == Opcode::kJl) taken = c.sf() != c.of();
    else if constexpr (kOp == Opcode::kJge) taken = c.sf() == c.of();
    else if constexpr (kOp == Opcode::kJle) taken = c.zf() || c.sf() != c.of();
    else if constexpr (kOp == Opcode::kJg) taken = !c.zf() && c.sf() == c.of();
    else if constexpr (kOp == Opcode::kJs) taken = c.sf();
    else taken = !c.sf();  // kJns
    ctx.taken = taken;
    if (!taken) return ES::kNext;
    c.eip_ = static_cast<u32>(insn.imm);
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kCall) {
    if (!c.Push32(c.eip_, &ctx.fault)) return ES::kFault;
    c.eip_ = static_cast<u32>(insn.imm);
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kCallR) {
    if (!c.Push32(c.eip_, &ctx.fault)) return ES::kFault;
    c.eip_ = c.regs_[insn.r1];
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kRet) {
    u32 v = 0;
    if (!c.Pop32(&v, &ctx.fault)) return ES::kFault;
    c.eip_ = v;
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kRetN) {
    u32 v = 0;
    if (!c.Pop32(&v, &ctx.fault)) return ES::kFault;
    c.eip_ = v;
    c.set_reg(Reg::kEsp, c.reg(Reg::kEsp) + static_cast<u32>(insn.imm));
    return ES::kJump;

  } else if constexpr (kOp == Opcode::kLcall) {
    return c.DoLcall(insn, &ctx.fault, &ctx.extra_cycles) ? ES::kFar : ES::kFault;

  } else if constexpr (kOp == Opcode::kLret) {
    return c.DoLret(static_cast<u32>(insn.imm), &ctx.fault, &ctx.extra_cycles) ? ES::kFar
                                                                               : ES::kFault;

  } else if constexpr (kOp == Opcode::kInt) {
    return c.DoInt(static_cast<u8>(insn.imm), /*software=*/true, &ctx.fault) ? ES::kFar
                                                                             : ES::kFault;

  } else /* kOp == Opcode::kIret */ {
    static_assert(kOp == Opcode::kIret, "unhandled opcode in ExecOp");
    return c.DoIret(&ctx.fault) ? ES::kFar : ES::kFault;
  }
}

// The per-instruction interpreter step: fetch, dispatch through the shared
// execution core, account cycles. This is the PR 2 fast path, kept intact as
// the block engine's in-binary oracle (PALLADIUM_NO_BLOCKS=1, bench engine
// `insn`). Flattened so the per-instruction cost is branches, not call
// frames.
__attribute__((flatten)) bool Cpu::StepOne(StopInfo* stop) {
  const u32 insn_eip = eip_;
  Fault fault;
  const DecodedInsn* dp = nullptr;
  if (!FetchInsn(&dp, &fault)) {
    eip_ = insn_eip;
    stop->reason = StopReason::kFault;
    stop->fault = fault;
    return false;
  }
  // The storage behind dp (a decode-cache slot) outlives this instruction
  // even if the instruction overwrites its own page: the cache retires
  // invalidated pages and frees them only at the next fetch.
  const DecodedInsn& d = *dp;
  eip_ += kInsnSize;
  ++instructions_;

  ExecCtx ctx;
  ExecStatus st = ExecStatus::kNext;
  switch (d.insn.opcode) {
#define PALLADIUM_X(name)                       \
  case Opcode::name:                            \
    st = ExecOp<Opcode::name>(*this, d, ctx);   \
    break;
    PALLADIUM_FOR_EACH_OPCODE(PALLADIUM_X)
#undef PALLADIUM_X
    case Opcode::kCount:
      ctx.fault = Ud("invalid opcode");
      st = ExecStatus::kFault;
      break;
  }

  if (st == ExecStatus::kFault) {
    eip_ = insn_eip;  // faulting EIP points at the faulting instruction
    stop->reason = StopReason::kFault;
    stop->fault = ctx.fault;
    return false;
  }
  if (st == ExecStatus::kHalt) {
    cycles_ += d.cost;
    stop->reason = StopReason::kHalted;
    return false;
  }
  cycles_ += (ctx.taken ? cost_.taken_branch : d.cost) + ctx.extra_cycles;
  return true;
}

// The superblock engine. Executes decoded basic-block runs out of the pinned
// decoded page with computed-goto threaded dispatch: one indirect jump per
// instruction straight to that opcode's handler, no per-instruction fetch
// machinery, no host-entry scan, and — when the block's pre-summed worst-case
// cost proves every interior retire boundary stays below the cycle-limit/IRQ
// frontier — no per-retire checks either. Retire-boundary semantics are
// preserved *exactly*:
//
//  * cycles are charged per instruction with the same table as StepOne, so
//    every boundary has the same cycle value either way;
//  * the frontier (`until` = min(cycle limit, IRQ attention)) is re-checked
//    at every boundary the pre-summed bound cannot clear, and runs always
//    end on a checked edge (run boundary, chain, yield), so IRQ delivery
//    points and SMP interleave slices land on identical boundaries;
//  * memory-touching instructions re-check the decode-cache generation at
//    retire, so a store into the *currently executing* block (or a page walk
//    setting A/D bits inside a decoded page) finishes the current
//    instruction and then forces a re-fetch — the per-instruction rule;
//  * faults restore EIP to the faulting instruction with all prior
//    instructions (and any partial far-transfer state) committed, exactly
//    like StepOne;
//  * pages overlapping the host-entry range, unaligned CS bases and
//    fetch-limit violations fall back to StepOne (kNoBlock), which owns
//    those semantics.
//
// Taken near transfers whose target is a slot-aligned address in the same
// decoded page chain directly to the target block without leaving the loop;
// everything else yields to Run's outer boundary checks. The fetch-TLB pins
// (fetch_page_/fetch_vpn_/generation tags) are shared with FetchInsn, so
// mixing block dispatch and single steps keeps one coherent view and one
// architectural Translate per (page change or invalidation) — the same
// points at which the per-instruction path translates, which is what keeps
// TLB statistics and cycle counts byte-identical between the two engines.
__attribute__((flatten)) Cpu::BlockExit Cpu::RunBlock(u64 cycle_limit, StopInfo* stop) {
  static const void* const kLabels[kNumDispatch] = {
#define PALLADIUM_X(name) &&lbl_##name,
      PALLADIUM_FOR_EACH_OPCODE(PALLADIUM_X)
#undef PALLADIUM_X
      &&lbl_undecodable,  // kDispatchUndecodable (== Opcode::kCount, never decoded)
      &&lbl_bus_error,    // kDispatchBusError
  };

  const LoadedSegment& cs = segs_[static_cast<u8>(SegReg::kCs)];
  {
    Fault precheck;
    if (!CheckSegmentAccess(cs, eip_, kInsnSize, /*is_write=*/false, /*is_stack=*/false,
                            &precheck)) {
      return BlockExit::kNoBlock;  // StepOne raises the identical fault
    }
  }
  const u32 base = cs.cache.base;
  const u32 entry_linear = base + eip_;
  if ((entry_linear & (kInsnSize - 1)) != 0) return BlockExit::kNoBlock;
  const u32 page_linear = entry_linear & ~kPageMask;
  // Pages overlapping the host-entry range run per-instruction so the outer
  // loop's host-call detection happens at every retire boundary.
  if (host_size_ != 0 &&
      static_cast<u64>(page_linear) < static_cast<u64>(host_base_) + host_size_ &&
      static_cast<u64>(host_base_) < static_cast<u64>(page_linear) + kPageSize) {
    return BlockExit::kNoBlock;
  }

  // Revalidate or refill the pinned decoded page — the same discipline, and
  // the same single architectural Translate, as FetchInsn's fast path.
  const u32 vpn = PageNumber(entry_linear);
  if (!(fetch_page_ != nullptr && vpn == fetch_vpn_ &&
        fetch_tlb_change_ == tlb_.change_count() &&
        fetch_dcache_gen_ == dcache_.generation() &&
        !(cpl_ == 3 && !(fetch_flags_ & kPteUser)))) {
    u32 phys = 0, flags = 0;
    Fault fault;
    if (!Translate(entry_linear, /*is_write=*/false, &phys, &fault, &flags,
                   /*is_fetch=*/true)) {
      stop->reason = StopReason::kFault;
      stop->fault = fault;
      return BlockExit::kStopped;
    }
    fetch_page_ = dcache_.GetOrBuild(pm_, phys & ~kPageMask);
    fetch_vpn_ = vpn;
    fetch_flags_ = flags;
    fetch_tlb_change_ = tlb_.change_count();
    fetch_dcache_gen_ = dcache_.generation();
  }

  DecodeCache::Page* const page = fetch_page_;
  const u64 gen0 = dcache_.generation();
  const u32 limit = cs.cache.limit;
  // The frontier no interior retire boundary may cross. The IRQ hub's
  // attention cycle cannot move while we are in here (devices only advance
  // inside Poll, which only the outer loop calls), and neither can
  // Tlb::change_count (CR3 loads, INVLPG and PTE edits are host-side, and
  // the host only runs between Run slices) — which is why neither is
  // re-read per instruction.
  u64 until = cycle_limit;
  if (irq_hub_ != nullptr) {
    const u64 attention = irq_hub_->attention_cycle();
    if (attention < until) until = attention;
  }
  ++block_stats_.entries;
  const u64 insns0 = instructions_;

  DecodedInsn* d = &page->slots[(entry_linear & kPageMask) / kInsnSize];
  ExecCtx ctx;
  ExecStatus st;
  u32 n;

#define PALLADIUM_BLOCK_EXIT(result)              \
  do {                                            \
    block_stats_.insns += instructions_ - insns0; \
    return (result);                              \
  } while (0)

run_start:
  // Page-end is bounded by run_len construction; the CS limit can cut a run
  // shorter (the outer fetch then raises the exact #GP at the exact slot).
  if (eip_ > limit || limit - eip_ < kInsnSize) goto yield;
  n = d->run_len;
  {
    const u32 by_limit = (limit - eip_ - kInsnSize) / kInsnSize + 1;
    if (n > by_limit) n = by_limit;
  }
  // Pre-summed bound: if the whole run provably retires below the frontier,
  // its interior boundaries need no checks; otherwise degrade to
  // one-instruction runs with a checked boundary after each — exactly the
  // per-instruction discipline.
  if (cycles_ + d->run_cost_max >= until) n = 1;
  // Hot-trace tier. Eligible only when the engine is about to execute the
  // FULL run in unchecked-interior mode (n survived both clips): that is the
  // precise condition under which the block engine itself would retire the
  // body with no interior boundary checks, so the trace executor — which has
  // none — lands every exit on the same boundaries by construction. The
  // body (all slots but the last) runs as micro-ops; the final slot then
  // dispatches through the normal per-opcode label below, keeping chain /
  // far / halt / checked-run-boundary handling in one place.
  if (trace_engine_enabled_ && n >= 2 && n == d->run_len) {
    u16 ti = d->trace;
    if (ti == kTraceNone && ++d->hot >= kTraceHotThreshold) {
      auto lowered =
          LowerRun(page->slots.data(), static_cast<u32>(d - page->slots.data()), d->run_len);
      if (lowered != nullptr && page->traces.size() < kTraceUntraceable) {
        ti = static_cast<u16>(page->traces.size());
        page->traces.push_back(std::move(lowered));
        ++trace_stats_.promotions;
        if (recorder_ != nullptr) {
          recorder_->Record(obs_track_, cycles_, obs::EventType::kTraceCompile,
                            obs::EventClass::kEngine, eip_, d->run_len);
        }
      } else {
        ti = kTraceUntraceable;
      }
      d->trace = ti;
    }
    if (ti < kTraceUntraceable) {
      const TraceExit te =
          ExecTrace(page, *page->traces[ti], gen0, until, d->run_cost_max, stop);
      if (te == TraceExit::kStopped) PALLADIUM_BLOCK_EXIT(BlockExit::kStopped);
      if (te == TraceExit::kYield) {
        // The decode generation changed mid-body: a store (local or remote)
        // invalidated the trace's page and the body exited at the boundary.
        if (recorder_ != nullptr) {
          recorder_->Record(obs_track_, cycles_, obs::EventType::kTraceInvalidate,
                            obs::EventClass::kEngine, eip_, 0);
        }
        goto yield;
      }
      d += d->run_len - 1;
      n = 1;
    }
  }
  goto *kLabels[d->dispatch];

run_boundary:
  if (cycles_ >= until) goto yield;
  if (static_cast<u32>(d - page->slots.data()) >= DecodeCache::kSlotsPerPage) {
    goto yield;  // sequential flow off the page end: refetch through the TLB
  }
  goto run_start;

chain:
  // A near transfer retired. Chain straight to the target block when the
  // target is a slot-aligned address in the same decoded page and nothing
  // was invalidated; otherwise yield so the outer loop re-translates — at
  // exactly the points the per-instruction fetch path would.
  if (cycles_ >= until) goto yield;
  if (dcache_.generation() != gen0) goto yield;
  {
    const u32 target = base + eip_;
    if ((target & (kInsnSize - 1)) != 0 || PageNumber(target) != vpn) goto yield;
    d = &page->slots[(target & kPageMask) / kInsnSize];
  }
  ++block_stats_.chains;
  goto run_start;

#define PALLADIUM_DEF_LABEL(name)                                       \
  lbl_##name : {                                                        \
    constexpr Opcode kOp = Opcode::name;                                \
    eip_ += kInsnSize;                                                  \
    ++instructions_;                                                    \
    if constexpr (IsFarTransfer(kOp)) ctx.extra_cycles = 0;             \
    st = ExecOp<kOp>(*this, *d, ctx);                                   \
    if (st == ExecStatus::kFault) goto fault_exit;                      \
    if constexpr (kOp == Opcode::kHlt) {                                \
      cycles_ += d->cost;                                               \
      stop->reason = StopReason::kHalted;                               \
      PALLADIUM_BLOCK_EXIT(BlockExit::kStopped);                        \
    } else if constexpr (IsFarTransfer(kOp)) {                          \
      cycles_ += d->cost + ctx.extra_cycles;                            \
      goto yield; /* CS/CPL/IF may have changed: outer checks decide */ \
    } else if constexpr (IsJcc(kOp)) {                                  \
      if (st == ExecStatus::kNext) { /* not taken: sequential */        \
        cycles_ += d->cost;                                             \
        ++d;                                                            \
        goto run_boundary;                                              \
      }                                                                 \
      cycles_ += cost_.taken_branch;                                    \
      goto chain;                                                       \
    } else if constexpr (IsNearJump(kOp)) {                             \
      cycles_ += d->cost;                                               \
      goto chain;                                                       \
    } else if constexpr (TouchesMemSeq(kOp)) {                          \
      cycles_ += d->cost;                                               \
      if (dcache_.generation() != gen0) {                               \
        goto yield; /* the access retired decoded code: refetch */      \
      }                                                                 \
      if (--n == 0) {                                                   \
        ++d;                                                            \
        goto run_boundary;                                              \
      }                                                                 \
      ++d;                                                              \
      goto *kLabels[d->dispatch];                                       \
    } else {                                                            \
      cycles_ += d->cost;                                               \
      if (--n == 0) {                                                   \
        ++d;                                                            \
        goto run_boundary;                                              \
      }                                                                 \
      ++d;                                                              \
      goto *kLabels[d->dispatch];                                       \
    }                                                                   \
  }

  PALLADIUM_FOR_EACH_OPCODE(PALLADIUM_DEF_LABEL)
#undef PALLADIUM_DEF_LABEL

lbl_undecodable:
  // Mirrors FetchInsn's #UD: EIP still points at the slot, nothing retired.
  stop->reason = StopReason::kFault;
  stop->fault = Ud("undecodable instruction");
  PALLADIUM_BLOCK_EXIT(BlockExit::kStopped);

lbl_bus_error:
  stop->reason = StopReason::kFault;
  stop->fault = FetchBusFault(base + eip_ + d->fault_offset);
  PALLADIUM_BLOCK_EXIT(BlockExit::kStopped);

fault_exit:
  eip_ -= kInsnSize;  // faulting EIP points at the faulting instruction
  stop->reason = StopReason::kFault;
  stop->fault = ctx.fault;
  PALLADIUM_BLOCK_EXIT(BlockExit::kStopped);

yield:
  PALLADIUM_BLOCK_EXIT(BlockExit::kYield);
#undef PALLADIUM_BLOCK_EXIT
}

namespace {

// Refreshes a memory uop's pin from the D-TLB entry the access just used (or
// left behind), so the next execution of this uop can skip the probe. Called
// only on the fallback path; Lookup here has no statistics side effects.
inline void RepinFromDtlb(TracePin& p, DTlb& dtlb, u64 tlb_change, u32 linear) {
  const u32 vpn = PageNumber(linear);
  DTlb::Entry* e = dtlb.Lookup(vpn, tlb_change);
  if (e == nullptr) {
    p.tlb_change = ~0ull;
    return;
  }
  p.tlb_change = tlb_change;
  p.dtlb_gen = dtlb.mutation_count();
  p.vpn = vpn;
  p.frame = e->frame;
  p.flags = e->flags;
  p.host = e->host;
}

}  // namespace

// The hot-trace executor: retires one lowered run body. Every architectural
// effect is identical to the block engine retiring the same slots — only the
// *work* differs:
//
//  * EFLAGS are not written per instruction; the FlagsCache records the last
//    observable producer and the flags are materialized (bit-identically,
//    see MaterializeFlags) once, at whichever exit happens: body completion,
//    a fault, or a generation yield.
//  * eip/cycles/instructions are batched: each uop carries prefix sums, so
//    an early exit reconstructs the exact per-instruction values. Dynamic
//    cycle charges (TLB-miss penalties inside fallback accesses) accrue to
//    cycles_ in place, which commutes with adding the base-cost sum.
//  * Memory uops try their pin first (the elided probe); any failed
//    validation — counter mismatch, page change, permissions, dirty bit —
//    falls back to the full MemRead/MemWrite, i.e. the oracle itself, and
//    re-pins from its D-TLB fill. TLB statistics on the pinned path are the
//    charges of the D-TLB inline hit it replaces.
//  * After every uop that can touch simulated memory the decode-cache
//    generation is re-checked, exactly where the block engine re-checks it,
//    so self-modifying stores and SMP remote invalidations exit the trace at
//    the same instruction boundary in every engine.
Cpu::TraceExit Cpu::ExecTrace(DecodeCache::Page* page, Trace& t,
                                                       u64 gen0, u64 until,
                                                       u32 run_cost_max, StopInfo* stop) {
  using ES = ExecStatus;
  using ExecFn = ES (*)(Cpu&, const DecodedInsn&, ExecCtx&);
  static const ExecFn kExecFns[kNumOpcodes] = {
#define PALLADIUM_X(name) &Cpu::ExecOp<Opcode::name>,
      PALLADIUM_FOR_EACH_OPCODE(PALLADIUM_X)
#undef PALLADIUM_X
  };
  // Threaded dispatch, one label per UopKind — the same technique as
  // RunBlock's opcode labels. Order must match the UopKind enum exactly.
  static const void* const kUopLabels[] = {
      &&u_nop,  &&u_movrr, &&u_movri, &&u_lea,  &&u_add, &&u_sub, &&u_cmp,
      &&u_and,  &&u_test,  &&u_or,    &&u_xor,  &&u_shl, &&u_shr, &&u_sar,
      &&u_imul, &&u_neg,   &&u_not,   &&u_inc,  &&u_dec, &&u_fold,
      &&u_load, &&u_store, &&u_storei, &&u_exec, &&u_jcc, &&u_cmpjcc,
  };
  static_assert(sizeof(kUopLabels) / sizeof(kUopLabels[0]) ==
                    static_cast<size_t>(UopKind::kCmpJcc) + 1,
                "kUopLabels must cover every UopKind");

  FlagsCache fc;  // Op::kEager — eflags_ is architecturally current at entry
  Fault fault;
  const u32 entry_eip = eip_;
  // Loop-invariant CPU state: CPL and the D-TLB switch can only change at
  // far transfers, which are never in a body; TLB flushes are host-side and
  // the host only runs between Run slices (same argument as RunBlock's
  // frontier).
  const bool user3 = cpl_ == 3;
  const bool dtlb_on = dtlb_enabled_;
  const u64 taken_cost = cost_.taken_branch;
  const u64 tlb_change = tlb_.change_count();
  // Everything the hot path would otherwise read-modify-write through
  // `this` — cycle and instruction counters, TLB statistics, trace counters
  // — is batched in locals the compiler can keep in registers, because the
  // fallback call-outs prevent it from doing that to the members itself.
  // `cyc`/`insns` are the executor's truth; they sync with the members only
  // around call-outs that charge dynamic cycles (walk penalties), and all
  // counters flush exactly once per exit.
  u64 cyc = cycles_;
  u64 insns = instructions_;
  const u64 insns0 = insns;
  u64 tlb_hits = 0;   // batched Tlb::RecordFastPathHits bytes
  u64 dtlb_hits = 0;  // batched DTlb::CountHit
  u64 elided = 0;
  u32 iters = 0;  // in-trace loop-backs; each is another trace entry
  // Guest stores go through u8* and may alias anything the compiler cannot
  // prove disjoint — including the pin vector's data pointer, the D-TLB
  // statistics behind mutation_count(), and the observer registration — so
  // without these register copies every memory uop re-loads them from
  // memory. All three are loop-invariant (observers cannot change mid-run;
  // the D-TLB generation only moves on our own fallback fills, after which
  // the local is refreshed).
  TracePin* const pins = t.pins.data();
  const bool sole_dcache_observer = pm_.sole_write_observer() == &dcache_;
  u64 dtlb_gen_live = dtlb_.mutation_count();
  // Per-segment fast-access windows: an access of `size` at `off` passes
  // CheckSegmentAccess iff off + size - 1 <= lim in signed 64-bit math,
  // with lim = -1 encoding "never" — validity, permissions, and the limit
  // fold into one compare. Any access outside the window takes the MemRead
  // / MemWrite fallback, which redoes the architectural check and raises
  // the exact fault. These live in locals the compiler can prove guest stores
  // never alias; kExec is the only uop that can reload a segment register,
  // so it refreshes them.
  i64 seg_rd_lim[kNumSegRegs];  // pass iff off + size - 1 <= lim (-1: never)
  i64 seg_wr_lim[kNumSegRegs];
  i64 seg_rd_end4[kNumSegRegs];  // = rd_lim - 3: last off a 4-byte read fits
  u32 seg_base[kNumSegRegs];
  const auto refresh_seg_windows = [&] {
    for (u32 s = 0; s < kNumSegRegs; ++s) {
      const LoadedSegment& sg = segs_[s];
      const SegmentDescriptor& d = sg.cache;
      const bool rd_ok = sg.valid && !(d.IsCode() && !d.readable);
      const bool wr_ok = sg.valid && !d.IsCode() && d.writable;
      seg_rd_lim[s] = rd_ok ? static_cast<i64>(d.limit) : -1;
      seg_wr_lim[s] = wr_ok ? static_cast<i64>(d.limit) : -1;
      seg_rd_end4[s] = seg_rd_lim[s] - 3;
      seg_base[s] = d.base;
    }
  };
  refresh_seg_windows();
  // Has-code bitmap, hoisted for the store fast path. A store into a page
  // with no decoded code cannot move the decode-cache generation, so the
  // probe replaces both the observer dispatch and the generation re-check
  // in the overwhelmingly common case. Values are re-read through the
  // pointer on every probe; only the pointer and size are cached (they move
  // on Populate, which only runs at instruction fetch, never mid-body).
  const u8* const has_code = dcache_.has_code_data();
  const u32 has_code_pages = dcache_.has_code_pages();

#define PALLADIUM_TRACE_SYNC_OUT() cycles_ = cyc
#define PALLADIUM_TRACE_SYNC_IN() cyc = cycles_
#define PALLADIUM_TRACE_FLUSH_STATS()                   \
  do {                                                  \
    tlb_.RecordFastPathHits(tlb_hits);                  \
    dtlb_.CountHits(dtlb_hits);                         \
    trace_stats_.probes_elided += elided;               \
    trace_stats_.entries += 1 + iters;                  \
    trace_stats_.uop_insns += instructions_ - insns0;   \
  } while (0)

  Uop* const ubegin = t.uops.data();
  Uop* const uend = ubegin + t.uops.size();
  if (__builtin_expect(!t.threaded, 0)) {
    for (Uop* x = ubegin; x != uend; ++x) {
      const void* tgt = kUopLabels[static_cast<u8>(x->kind)];
      // 4-byte memory uops — the dominant case: every push/pop and almost
      // every mov — get switch-free specializations; push/pop variants fold
      // their fixed ESP adjustment into the label itself. The generic labels
      // stay the fallback for 1/2-byte accesses, and a specialized label
      // that misses its fast-path guard re-dispatches to its generic one.
      if (x->size == 4) {
        if (x->kind == UopKind::kLoad)
          tgt = x->esp_post ? static_cast<const void*>(&&u_pop4)
                            : static_cast<const void*>(&&u_load4);
        else if (x->kind == UopKind::kStore)
          tgt = x->esp_post ? static_cast<const void*>(&&u_push4)
                            : static_cast<const void*>(&&u_store4);
        else if (x->kind == UopKind::kStoreI)
          tgt = x->esp_post ? static_cast<const void*>(&&u_pushi4)
                            : static_cast<const void*>(&&u_storei4);
      }
      x->target = tgt;
    }
    t.threaded = true;
  }
  // Loop-back guard, hoisted out of the terminator: whether the taken target
  // is this trace's own entry is static per trace, and the frontier check
  // `cyc + run_cost_max < until` folds to one compare against a precomputed
  // bound (clamped so `until < run_cost_max` can never loop). Only the
  // generation re-check stays live per iteration — it is the invalidation
  // fence and must read fresh state.
  const Uop* const ulast = uend - 1;
  const bool loop_to_entry = ulast->kind >= UopKind::kJcc &&
                             static_cast<u32>(ulast->imm) == entry_eip;
  const u64 loop_until = until > run_cost_max ? until - run_cost_max : 0;
  Uop* u = ubegin;
  u32 sval = 0;  // store value, set by u_store/u_storei for store_common
  goto *u->target;  // bodies are never empty

#define PALLADIUM_UOP_NEXT()         \
  do {                                 \
    if (++u == uend) goto body_done;   \
    goto *u->target;                   \
  } while (0)

u_nop:
  PALLADIUM_UOP_NEXT();

u_movrr:
  regs_[u->r1] = regs_[u->r2];
  PALLADIUM_UOP_NEXT();

u_movri:
  regs_[u->r1] = static_cast<u32>(u->imm);
  PALLADIUM_UOP_NEXT();

u_lea: {
  u32 a = static_cast<u32>(u->disp);
  if (u->r2 != kNoBaseReg) a += regs_[u->r2];
  if (u->scale != 0) a += regs_[u->r3] * u->scale;
  regs_[u->r1] = a;
  PALLADIUM_UOP_NEXT();
}

u_add: {
  const u32 a = regs_[u->r1];
  const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
  regs_[u->r1] = a + b;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kAdd, a, b};
  PALLADIUM_UOP_NEXT();
}

u_sub: {
  const u32 a = regs_[u->r1];
  const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
  regs_[u->r1] = a - b;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kSub, a, b};
  PALLADIUM_UOP_NEXT();
}

u_cmp:
  if (u->record) {
    fc = FlagsCache{FlagsCache::Op::kSub, regs_[u->r1],
                    u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2]};
  }
  PALLADIUM_UOP_NEXT();

u_and: {
  const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
  const u32 r = regs_[u->r1] & b;
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_test:
  if (u->record) {
    const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
    fc = FlagsCache{FlagsCache::Op::kLogic, regs_[u->r1] & b, 0};
  }
  PALLADIUM_UOP_NEXT();

u_or: {
  const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
  const u32 r = regs_[u->r1] | b;
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_xor: {
  const u32 b = u->b_imm ? static_cast<u32>(u->imm) : regs_[u->r2];
  const u32 r = regs_[u->r1] ^ b;
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_shl: {
  const u32 r = regs_[u->r1] << (static_cast<u32>(u->imm) & 31);
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_shr: {
  const u32 r = regs_[u->r1] >> (static_cast<u32>(u->imm) & 31);
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_sar: {
  const u32 r =
      static_cast<u32>(static_cast<i32>(regs_[u->r1]) >> (static_cast<u32>(u->imm) & 31));
  regs_[u->r1] = r;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kLogic, r, 0};
  PALLADIUM_UOP_NEXT();
}

u_imul: {
  const i64 a = static_cast<i32>(regs_[u->r1]);
  const i64 b = u->b_imm ? static_cast<i64>(u->imm)
                         : static_cast<i64>(static_cast<i32>(regs_[u->r2]));
  const i64 r = a * b;
  regs_[u->r1] = static_cast<u32>(r);
  if (u->record) {
    fc = FlagsCache{FlagsCache::Op::kImul, static_cast<u32>(r),
                    r != static_cast<i32>(r) ? 1u : 0u};
  }
  PALLADIUM_UOP_NEXT();
}

u_neg: {
  const u32 a = regs_[u->r1];
  regs_[u->r1] = 0 - a;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kNeg, a, 0};
  PALLADIUM_UOP_NEXT();
}

u_not:
  regs_[u->r1] = ~regs_[u->r1];
  PALLADIUM_UOP_NEXT();

u_inc: {
  const u32 a = regs_[u->r1];
  regs_[u->r1] = a + 1;
  // Capture the carried CF from the previous producer *before* overwriting
  // the cache — INC preserves CF.
  if (u->record) fc = FlagsCache{FlagsCache::Op::kInc, a, LazyCf(fc, eflags_) ? 1u : 0u};
  PALLADIUM_UOP_NEXT();
}

u_dec: {
  const u32 a = regs_[u->r1];
  regs_[u->r1] = a - 1;
  if (u->record) fc = FlagsCache{FlagsCache::Op::kDec, a, LazyCf(fc, eflags_) ? 1u : 0u};
  PALLADIUM_UOP_NEXT();
}

u_fold: {
  const u32 a = regs_[u->r1];
  regs_[u->r1] = a + static_cast<u32>(u->imm);
  // Flags as-if the chain's last op alone executed on the true intermediate
  // value (a + the pre-last delta).
  if (u->record) {
    fc = FlagsCache{u->fold_last_is_sub ? FlagsCache::Op::kSub : FlagsCache::Op::kAdd,
                    a + static_cast<u32>(u->imm2), static_cast<u32>(u->disp)};
  }
  PALLADIUM_UOP_NEXT();
}

u_load: {
  u32 off = static_cast<u32>(u->disp);
  if (u->r2 != kNoBaseReg) off += regs_[u->r2];
  if (u->scale != 0) off += regs_[u->r3] * u->scale;
  const u32 linear = seg_base[u->seg_idx] + off;
  TracePin& p = pins[u->pin];
  u32 value;
  // The segment-window compare stands in for CheckSegmentAccess on the fast
  // path; any access outside it (including through an invalid or
  // execute-only segment) falls back to MemRead, which redoes the
  // architectural check and raises the exact fault.
  if (__builtin_expect(dtlb_on && u->size != 0 &&
                           static_cast<i64>(off) + u->size - 1 <=
                               seg_rd_lim[u->seg_idx] &&
                           (linear & kPageMask) + u->size <= kPageSize &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) &&
                           !(user3 && !(p.flags & kPteUser)),
                       1)) {
    // Probe elided: a live pin IS the live D-TLB entry, so the charges are
    // exactly the inline hit's (batched; flushed at trace exit).
    tlb_hits += u->size;
    ++dtlb_hits;
    ++elided;
    const u8* host = p.host + (linear & kPageMask);
    switch (u->size) {
      case 1:
        value = *host;
        break;
      case 2: {
        u16 v16;
        std::memcpy(&v16, host, 2);
        value = v16;
        break;
      }
      case 4:
        std::memcpy(&value, host, 4);
        break;
      default:
        value = 0;
        std::memcpy(&value, host, u->size);
        break;
    }
  } else {
    value = 0;
    PALLADIUM_TRACE_SYNC_OUT();
    const bool ok =
        MemRead(segs_[u->seg_idx], off, u->size, u->is_stack, &value, &fault);
    PALLADIUM_TRACE_SYNC_IN();  // walk penalties charged before a fault too
    dtlb_gen_live = dtlb_.mutation_count();
    if (!ok) goto fault_exit;
    RepinFromDtlb(p, dtlb_, tlb_change, linear);
    // The fallback's walk can retire decoded code (A/D updates inside a
    // decoded page) — the block engine's re-check. The pinned path reads
    // host memory and nothing else, so it provably cannot move the
    // generation and skips the check.
    regs_[static_cast<u8>(Reg::kEsp)] += static_cast<u32>(static_cast<i32>(u->esp_post));
    regs_[u->r1] = value;
    if (dcache_.generation() != gen0) goto gen_exit;
    PALLADIUM_UOP_NEXT();
  }
  // POP commits its ESP move before the destination write (Pop32's order, so
  // `pop %esp` loads the memory value); plain loads add 0.
  regs_[static_cast<u8>(Reg::kEsp)] += static_cast<u32>(static_cast<i32>(u->esp_post));
  regs_[u->r1] = value;
  PALLADIUM_UOP_NEXT();
}

u_load4: {  // kLoad, size 4, no ESP adjustment — the common mov-load
  u32 off = static_cast<u32>(u->disp);
  if (u->r2 != kNoBaseReg) off += regs_[u->r2];
  if (u->scale != 0) off += regs_[u->r3] * u->scale;
  const u32 linear = seg_base[u->seg_idx] + off;
  const TracePin& p = pins[u->pin];
  if (__builtin_expect(static_cast<i64>(off) <= seg_rd_end4[u->seg_idx] &&
                           (linear & kPageMask) <= kPageSize - 4 &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) &&
                           !(user3 && !(p.flags & kPteUser)),
                       1)) {
    tlb_hits += 4;
    ++dtlb_hits;
    ++elided;
    u32 value;
    std::memcpy(&value, p.host + (linear & kPageMask), 4);
    regs_[u->r1] = value;
    PALLADIUM_UOP_NEXT();
  }
  goto u_load;  // window or pin miss: the generic path faults / refills exactly
}

u_pop4: {  // kLoad, size 4, ESP += 4 after the access
  const u32 off = regs_[u->r2];  // pop EA is SS:ESP, no disp/index
  const u32 linear = seg_base[u->seg_idx] + off;
  const TracePin& p = pins[u->pin];
  if (__builtin_expect(static_cast<i64>(off) <= seg_rd_end4[u->seg_idx] &&
                           (linear & kPageMask) <= kPageSize - 4 &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) &&
                           !(user3 && !(p.flags & kPteUser)),
                       1)) {
    tlb_hits += 4;
    ++dtlb_hits;
    ++elided;
    u32 value;
    std::memcpy(&value, p.host + (linear & kPageMask), 4);
    regs_[static_cast<u8>(Reg::kEsp)] += 4;  // before the write: pop %esp
    regs_[u->r1] = value;
    PALLADIUM_UOP_NEXT();
  }
  goto u_load;
}

u_push4:
  sval = regs_[u->r1];
  goto store4_push;
u_pushi4:
  sval = static_cast<u32>(u->imm);
store4_push: {  // kStore/kStoreI, size 4, ESP -= 4 after the access
  const u32 off = regs_[u->r2] + static_cast<u32>(u->disp);  // SS:ESP-4
  const u32 linear = seg_base[u->seg_idx] + off;
  const TracePin& p = pins[u->pin];
  if (__builtin_expect(static_cast<i64>(off) + 3 <= seg_wr_lim[u->seg_idx] &&
                           (linear & kPageMask) <= kPageSize - 4 &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) && (p.flags & kPteDirty) &&
                           !(user3 && (~p.flags & (kPteUser | kPteWrite)) != 0),
                       1)) {
    tlb_hits += 4;
    ++dtlb_hits;
    ++elided;
    const u32 poff = linear & kPageMask;
    std::memcpy(p.host + poff, &sval, 4);
    const u32 phys = p.frame + poff;
    regs_[static_cast<u8>(Reg::kEsp)] -= 4;
    if (sole_dcache_observer) {
      const u32 pfn = PageNumber(phys);
      if (__builtin_expect(pfn < has_code_pages && has_code[pfn] != 0, 0)) {
        dcache_.OnPhysicalWrite(phys, 4);
        if (dcache_.generation() != gen0) goto gen_exit;
      }
    } else {
      pm_.NotifyWrite(phys, 4);
      if (dcache_.generation() != gen0) goto gen_exit;
    }
    PALLADIUM_UOP_NEXT();
  }
  goto *kUopLabels[static_cast<u8>(u->kind)];  // generic kStore / kStoreI
}

u_store4:
  sval = regs_[u->r1];
  goto store4_plain;
u_storei4:
  sval = static_cast<u32>(u->imm);
store4_plain: {  // kStore/kStoreI, size 4, no ESP adjustment
  u32 off = static_cast<u32>(u->disp);
  if (u->r2 != kNoBaseReg) off += regs_[u->r2];
  if (u->scale != 0) off += regs_[u->r3] * u->scale;
  const u32 linear = seg_base[u->seg_idx] + off;
  const TracePin& p = pins[u->pin];
  if (__builtin_expect(static_cast<i64>(off) + 3 <= seg_wr_lim[u->seg_idx] &&
                           (linear & kPageMask) <= kPageSize - 4 &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) && (p.flags & kPteDirty) &&
                           !(user3 && (~p.flags & (kPteUser | kPteWrite)) != 0),
                       1)) {
    tlb_hits += 4;
    ++dtlb_hits;
    ++elided;
    const u32 poff = linear & kPageMask;
    std::memcpy(p.host + poff, &sval, 4);
    const u32 phys = p.frame + poff;
    if (sole_dcache_observer) {
      const u32 pfn = PageNumber(phys);
      if (__builtin_expect(pfn < has_code_pages && has_code[pfn] != 0, 0)) {
        dcache_.OnPhysicalWrite(phys, 4);
        if (dcache_.generation() != gen0) goto gen_exit;
      }
    } else {
      pm_.NotifyWrite(phys, 4);
      if (dcache_.generation() != gen0) goto gen_exit;
    }
    PALLADIUM_UOP_NEXT();
  }
  goto *kUopLabels[static_cast<u8>(u->kind)];  // generic kStore / kStoreI
}

u_store:
  sval = regs_[u->r1];
  goto store_common;
u_storei:
  sval = static_cast<u32>(u->imm);
store_common: {
  u32 off = static_cast<u32>(u->disp);
  if (u->r2 != kNoBaseReg) off += regs_[u->r2];
  if (u->scale != 0) off += regs_[u->r3] * u->scale;
  const u32 linear = seg_base[u->seg_idx] + off;
  TracePin& p = pins[u->pin];
  if (__builtin_expect(dtlb_on && u->size != 0 &&
                           static_cast<i64>(off) + u->size - 1 <=
                               seg_wr_lim[u->seg_idx] &&
                           (linear & kPageMask) + u->size <= kPageSize &&
                           p.tlb_change == tlb_change &&
                           p.dtlb_gen == dtlb_gen_live &&
                           p.vpn == PageNumber(linear) && (p.flags & kPteDirty) &&
                           !(user3 && (~p.flags & (kPteUser | kPteWrite)) != 0),
                       1)) {
    tlb_hits += u->size;
    ++dtlb_hits;
    ++elided;
    const u32 poff = linear & kPageMask;
    u8* host = p.host + poff;
    switch (u->size) {
      case 1:
        *host = static_cast<u8>(sval);
        break;
      case 2: {
        const u16 v16 = static_cast<u16>(sval);
        std::memcpy(host, &v16, 2);
        break;
      }
      case 4:
        std::memcpy(host, &sval, 4);
        break;
      default:
        std::memcpy(host, &sval, u->size);
        break;
    }
    const u32 phys = p.frame + poff;
    // Pin guarantees the access stays on one page, so a single has-code
    // probe decides whether the write could retire decoded code; a clear
    // byte proves the generation cannot have moved.
    if (sole_dcache_observer) {
      const u32 pfn = PageNumber(phys);
      if (__builtin_expect(pfn < has_code_pages && has_code[pfn] != 0, 0)) {
        dcache_.OnPhysicalWrite(phys, u->size);
        regs_[static_cast<u8>(Reg::kEsp)] +=
            static_cast<u32>(static_cast<i32>(u->esp_post));
        if (dcache_.generation() != gen0) goto gen_exit;
        PALLADIUM_UOP_NEXT();
      }
    } else {
      pm_.NotifyWrite(phys, u->size);
      regs_[static_cast<u8>(Reg::kEsp)] +=
          static_cast<u32>(static_cast<i32>(u->esp_post));
      if (dcache_.generation() != gen0) goto gen_exit;
      PALLADIUM_UOP_NEXT();
    }
    regs_[static_cast<u8>(Reg::kEsp)] +=
        static_cast<u32>(static_cast<i32>(u->esp_post));
    PALLADIUM_UOP_NEXT();
  } else {
    PALLADIUM_TRACE_SYNC_OUT();
    const bool ok =
        MemWrite(segs_[u->seg_idx], off, u->size, u->is_stack, sval, &fault);
    PALLADIUM_TRACE_SYNC_IN();
    dtlb_gen_live = dtlb_.mutation_count();
    if (!ok) goto fault_exit;
    RepinFromDtlb(p, dtlb_, tlb_change, linear);
    regs_[static_cast<u8>(Reg::kEsp)] +=
        static_cast<u32>(static_cast<i32>(u->esp_post));
    if (dcache_.generation() != gen0) goto gen_exit;
    PALLADIUM_UOP_NEXT();
  }
}

u_exec: {
  // Segment moves, udiv: the shared per-opcode core. None of these write
  // flags or read EIP, so the lazy cache and the batched EIP stay coherent
  // across them.
  const DecodedInsn& d = page->slots[u->slot];
  ExecCtx ctx;
  PALLADIUM_TRACE_SYNC_OUT();
  const ES st = kExecFns[d.dispatch](*this, d, ctx);
  PALLADIUM_TRACE_SYNC_IN();
  dtlb_gen_live = dtlb_.mutation_count();
  refresh_seg_windows();  // segment moves live here
  if (st == ES::kFault) {
    fault = ctx.fault;
    goto fault_exit;
  }
  if (dcache_.generation() != gen0) goto gen_exit;
  PALLADIUM_UOP_NEXT();
}

u_jcc: {
  // The run's conditional terminator, evaluated against the lazy cache one
  // flag at a time. When taken straight back to this run's own entry — the
  // hot-loop backward edge — and the next full iteration provably retires
  // below the frontier (the same run_cost_max bound run_start re-checks)
  // with nothing invalidated (the same generation re-check `chain` does),
  // the executor loops in place and the flags stay lazy across the
  // iteration. Every other outcome exits with exact architectural state at
  // precisely the boundary where the block engine would next run its own
  // checks, so yielding to the outer loop is equivalent by construction.
  bool taken;
  switch (u->r1) {
    case 0: taken = LazyZf(fc, eflags_); break;                                // je
    case 1: taken = !LazyZf(fc, eflags_); break;                               // jne
    case 2: taken = LazyCf(fc, eflags_); break;                                // jb
    case 3: taken = !LazyCf(fc, eflags_); break;                               // jae
    case 4: taken = LazyCf(fc, eflags_) || LazyZf(fc, eflags_); break;         // jbe
    case 5: taken = !LazyCf(fc, eflags_) && !LazyZf(fc, eflags_); break;       // ja
    case 6: taken = LazySf(fc, eflags_) != LazyOf(fc, eflags_); break;         // jl
    case 7: taken = LazySf(fc, eflags_) == LazyOf(fc, eflags_); break;         // jge
    case 8:                                                                    // jle
      taken = LazyZf(fc, eflags_) || LazySf(fc, eflags_) != LazyOf(fc, eflags_);
      break;
    case 9:                                                                    // jg
      taken = !LazyZf(fc, eflags_) && LazySf(fc, eflags_) == LazyOf(fc, eflags_);
      break;
    case 10: taken = LazySf(fc, eflags_); break;                               // js
    default: taken = !LazySf(fc, eflags_); break;                              // jns
  }
  insns += u->insn_before + 1;
  if (taken) {
    cyc += u->cost_before + taken_cost;
    if (__builtin_expect(loop_to_entry && cyc < loop_until &&
                             dcache_.generation() == gen0,
                         1)) {
      ++iters;
      u = ubegin;
      goto *u->target;
    }
    eip_ = static_cast<u32>(u->imm);
  } else {
    cyc += u->cost_before + u->cost;
    eip_ = entry_eip + (u->insn_before + 1) * kInsnSize;
  }
  cycles_ = cyc;
  instructions_ = insns;
  PALLADIUM_TRACE_FLUSH_STATS();
  if (fc.op != FlagsCache::Op::kEager) {
    eflags_ = MaterializeFlags(fc, eflags_);
    ++trace_stats_.flag_materializations;
  }
  return TraceExit::kYield;
}

u_cmpjcc: {
  // Fused compare-and-branch terminator. The condition evaluates directly
  // from the compare operands via the standard sub-flag identities (jb is
  // unsigned a < b, jl is signed a < b, js is the sign of a - b, ...), which
  // are exactly what ExecOp's per-flag reads of a cmp's EFLAGS compute. The
  // operands still enter the flags cache so every exit materializes the
  // compare's architectural flags.
  const u32 a = regs_[u->r1];
  const u32 b = u->b_imm ? static_cast<u32>(u->imm2) : regs_[u->r2];
  fc = FlagsCache{FlagsCache::Op::kSub, a, b};
  bool taken;
  switch (u->r3) {
    case 0: taken = a == b; break;                                        // je
    case 1: taken = a != b; break;                                        // jne
    case 2: taken = a < b; break;                                         // jb
    case 3: taken = a >= b; break;                                        // jae
    case 4: taken = a <= b; break;                                        // jbe
    case 5: taken = a > b; break;                                         // ja
    case 6: taken = static_cast<i32>(a) < static_cast<i32>(b); break;     // jl
    case 7: taken = static_cast<i32>(a) >= static_cast<i32>(b); break;    // jge
    case 8: taken = static_cast<i32>(a) <= static_cast<i32>(b); break;    // jle
    case 9: taken = static_cast<i32>(a) > static_cast<i32>(b); break;     // jg
    case 10: taken = ((a - b) >> 31) != 0; break;                         // js
    default: taken = ((a - b) >> 31) == 0; break;                         // jns
  }
  insns += u->insn_before + 2;
  if (taken) {
    cyc += u->cost_before + u->cost + taken_cost;
    if (__builtin_expect(loop_to_entry && cyc < loop_until &&
                             dcache_.generation() == gen0,
                         1)) {
      ++iters;
      u = ubegin;
      goto *u->target;
    }
    eip_ = static_cast<u32>(u->imm);
  } else {
    cyc += u->cost_before + u->cost + u->cost2;
    eip_ = entry_eip + (u->insn_before + 2) * kInsnSize;
  }
  cycles_ = cyc;
  instructions_ = insns;
  PALLADIUM_TRACE_FLUSH_STATS();
  eflags_ = MaterializeFlags(fc, eflags_);
  ++trace_stats_.flag_materializations;
  return TraceExit::kYield;
}
#undef PALLADIUM_UOP_NEXT

body_done:
  // Body complete: commit the batched retire state; the caller dispatches
  // the run's final slot through the block engine's own handler.
  cycles_ = cyc + t.body_cost;
  instructions_ = insns + t.body_insns;
  eip_ = entry_eip + t.body_insns * kInsnSize;
  PALLADIUM_TRACE_FLUSH_STATS();
  if (fc.op != FlagsCache::Op::kEager) {
    eflags_ = MaterializeFlags(fc, eflags_);
    ++trace_stats_.flag_materializations;
  }
  return TraceExit::kBody;

fault_exit:
  // The faulting instruction charges no base cost but DOES count in
  // instructions_ — the block engine and StepOne both increment the counter
  // before dispatching and never roll it back on a fault. Its dynamic
  // charges (walk penalties before the fault) were synced back into `cyc`
  // by the call-out wrappers — both exactly as the block engine's fault
  // path.
  cycles_ = cyc + u->cost_before;
  instructions_ = insns + u->insn_before + 1;
  eip_ = entry_eip + u->insn_before * kInsnSize;
  PALLADIUM_TRACE_FLUSH_STATS();
  if (fc.op != FlagsCache::Op::kEager) {
    eflags_ = MaterializeFlags(fc, eflags_);
    ++trace_stats_.flag_materializations;
  }
  stop->reason = StopReason::kFault;
  stop->fault = fault;
  return TraceExit::kStopped;

gen_exit:
  // The access retired decoded code: the current uop completes (cost and
  // span included), then the trace yields for a re-fetch — the same
  // boundary at which the block engine yields.
  cycles_ = cyc + u->cost_before + u->cost;
  instructions_ = insns + u->insn_before + u->span;
  eip_ = entry_eip + (u->insn_before + u->span) * kInsnSize;
  PALLADIUM_TRACE_FLUSH_STATS();
  if (fc.op != FlagsCache::Op::kEager) {
    eflags_ = MaterializeFlags(fc, eflags_);
    ++trace_stats_.flag_materializations;
  }
  return TraceExit::kYield;
#undef PALLADIUM_TRACE_SYNC_OUT
#undef PALLADIUM_TRACE_SYNC_IN
#undef PALLADIUM_TRACE_FLUSH_STATS
}

}  // namespace palladium
