#include "src/hw/smp.h"

#include <algorithm>

namespace palladium {

SmpInterleaver::SmpInterleaver(Machine& machine)
    : machine_(machine), parked_(machine.num_cpus(), false) {}

void SmpInterleaver::AddEvent(u64 cycle, EventFn fn) {
  events_.push_back(Event{cycle, next_seq_++, std::move(fn), false});
  std::stable_sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
  });
}

u64 SmpInterleaver::Frontier() const {
  u64 frontier = ~0ull;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (!parked_[c]) frontier = std::min(frontier, machine_.cpu(c).cycles());
  }
  return frontier;
}

void SmpInterleaver::Run(u64 cycle_limit, const StopHandler& on_stop) {
  const u32 n = machine_.num_cpus();
  for (;;) {
    // Pick the frontier vCPU: minimum counter, lowest index on ties.
    u32 c = n;
    u64 min_cycles = ~0ull;
    u64 second = ~0ull;
    for (u32 i = 0; i < n; ++i) {
      if (parked_[i]) continue;
      const u64 cy = machine_.cpu(i).cycles();
      if (c == n || cy < min_cycles) {
        second = min_cycles;
        min_cycles = cy;
        c = i;
      } else {
        second = std::min(second, cy);
      }
    }
    if (c == n) return;  // everyone parked
    if (min_cycles >= cycle_limit) return;

    machine_.set_current_cpu(c);

    // Fire due host-side events at the frontier, before any further retire.
    u64 next_event = ~0ull;
    for (Event& e : events_) {
      if (e.fired) continue;
      if (e.cycle <= min_cycles) {
        e.fired = true;
        e.fn();
      } else {
        next_event = e.cycle;
        break;
      }
    }

    // Run the frontier vCPU only until it stops being the minimum (or hits
    // the global limit / the next scripted event). `+1` guarantees at least
    // one retired instruction on exact ties, keeping the round-robin strict.
    u64 stop_at = cycle_limit;
    if (second != ~0ull) stop_at = std::min(stop_at, second + 1);
    if (next_event != ~0ull) stop_at = std::min(stop_at, next_event);
    if (stop_at <= min_cycles) stop_at = min_cycles + 1;

    StopInfo stop = machine_.cpu(c).Run(stop_at);
    if (stop.reason == StopReason::kCycleLimit) continue;  // slice boundary
    if (!on_stop(c, stop)) parked_[c] = true;
  }
}

}  // namespace palladium
