#include "src/hw/smp.h"

#include <algorithm>
#include <cstdlib>

namespace palladium {

SmpInterleaver::SmpInterleaver(Machine& machine)
    : machine_(machine), parked_(machine.num_cpus(), false) {}

void SmpInterleaver::AddEvent(u64 cycle, EventFn fn) {
  events_.push_back(Event{cycle, next_seq_++, std::move(fn), false});
  std::stable_sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
  });
}

u64 SmpInterleaver::Frontier() const {
  u64 frontier = ~0ull;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (!parked_[c]) frontier = std::min(frontier, machine_.cpu(c).cycles());
  }
  return frontier;
}

void SmpInterleaver::Run(u64 cycle_limit, const StopHandler& on_stop) {
  const u32 n = machine_.num_cpus();
  for (;;) {
    // Pick the frontier vCPU: minimum counter, lowest index on ties.
    u32 c = n;
    u64 min_cycles = ~0ull;
    u64 second = ~0ull;
    for (u32 i = 0; i < n; ++i) {
      if (parked_[i]) continue;
      const u64 cy = machine_.cpu(i).cycles();
      if (c == n || cy < min_cycles) {
        second = min_cycles;
        min_cycles = cy;
        c = i;
      } else {
        second = std::min(second, cy);
      }
    }
    if (c == n) return;  // everyone parked
    if (min_cycles >= cycle_limit) return;

    machine_.set_current_cpu(c);

    // Fire due host-side events at the frontier, before any further retire.
    u64 next_event = ~0ull;
    for (Event& e : events_) {
      if (e.fired) continue;
      if (e.cycle <= min_cycles) {
        e.fired = true;
        e.fn();
      } else {
        next_event = e.cycle;
        break;
      }
    }

    // Run the frontier vCPU only until it stops being the minimum (or hits
    // the global limit / the next scripted event). `+1` guarantees at least
    // one retired instruction on exact ties, keeping the round-robin strict.
    u64 stop_at = cycle_limit;
    if (second != ~0ull) stop_at = std::min(stop_at, second + 1);
    if (next_event != ~0ull) stop_at = std::min(stop_at, next_event);
    if (stop_at <= min_cycles) stop_at = min_cycles + 1;

    StopInfo stop = machine_.cpu(c).Run(stop_at);
    if (stop.reason == StopReason::kCycleLimit) continue;  // slice boundary
    if (!on_stop(c, stop)) parked_[c] = true;
  }
}

bool HostThreadsEnabled() {
  const char* v = std::getenv("PALLADIUM_HOST_THREADS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool EpochBarrier::Arrive() {
  const u64 phase = phase_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    return true;  // last arriver: caller runs the serial work, then Release()
  }
  // Bounded spin first: barrier turnaround is the hot path of threaded mode,
  // and the serial window is typically shorter than a CV wakeup.
  for (int spin = 0; spin < 16384; ++spin) {
    if (phase_.load(std::memory_order_acquire) != phase) return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return phase_.load(std::memory_order_acquire) != phase; });
  return false;
}

void EpochBarrier::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  // The release store on phase_ publishes the arrival reset (and all serial-
  // window writes) to every thread that acquire-loads the new phase.
  arrived_.store(0, std::memory_order_relaxed);
  phase_.fetch_add(1, std::memory_order_release);
  cv_.notify_all();
}

ThreadedSmp::ThreadedSmp(Machine& machine, u64 epoch_cycles)
    : machine_(machine),
      epoch_cycles_(epoch_cycles),
      barrier_(machine.num_cpus()),
      parked_(machine.num_cpus()),
      lanes_(machine.num_cpus()),
      remote_(machine.num_cpus()) {
  if (epoch_cycles_ == 0) {
    epoch_cycles_ = kDefaultEpochCycles;
    if (const char* v = std::getenv("PALLADIUM_EPOCH_CYCLES")) {
      const u64 parsed = std::strtoull(v, nullptr, 10);
      if (parsed > 0) epoch_cycles_ = parsed;
    }
  }
}

void ThreadedSmp::AddEvent(u64 cycle, EventFn fn) {
  events_.push_back(Event{cycle, next_seq_++, std::move(fn), false});
  std::stable_sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
  });
}

void ThreadedSmp::StageRemoteWork(u32 target, RemoteFn fn) {
  std::lock_guard<std::mutex> lock(remote_mu_);
  remote_[target].push_back(std::move(fn));
}

u64 ThreadedSmp::Frontier() const {
  u64 frontier = ~0ull;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (!parked(c)) frontier = std::min(frontier, machine_.cpu(c).cycles());
  }
  return frontier;
}

void ThreadedSmp::SerialBarrierWork(u64 cycle_limit) {
  const u32 n = machine_.num_cpus();
  PhysicalMemory& pm = machine_.pm();

  // (1) Replay deferred cross-CPU invalidations, in vCPU index order so the
  // replay order is deterministic. Each lane's local observer already saw
  // its writes synchronously; siblings observe them here, i.e. no later
  // than the next barrier.
  for (u32 c = 0; c < n; ++c) {
    PhysicalMemory::WriteLane& lane = lanes_[c];
    for (const auto& range : lane.log) {
      pm.NotifyRangeExcept(range.first, range.second, lane.local);
    }
    lane.log.clear();
    lane.last_begin = 1;
    lane.last_end = 0;
  }

  // (2) Drain staged remote work: FIFO per target, targets in index order.
  {
    std::vector<std::vector<RemoteFn>> staged(n);
    {
      std::lock_guard<std::mutex> lock(remote_mu_);
      staged.swap(remote_);
      remote_.resize(n);
    }
    for (u32 c = 0; c < n; ++c) {
      for (RemoteFn& fn : staged[c]) fn(machine_.cpu(c));
    }
  }

  // (3) Fire due scripted events with exactly the interleaver's rules, then
  // pick the next barrier. Every live vCPU sits at its first retire
  // boundary >= the frontier — the same machine state the interleaver has
  // when its frontier first reaches that cycle — so firing here is
  // byte-equivalent for data-race-free workloads.
  for (;;) {
    u64 frontier = ~0ull;
    u32 argmin = n;
    for (u32 c = 0; c < n; ++c) {
      if (parked(c)) continue;
      const u64 cy = machine_.cpu(c).cycles();
      if (argmin == n || cy < frontier) {
        frontier = cy;
        argmin = c;
      }
    }
    if (argmin == n || frontier >= cycle_limit) {
      // The interleaver returns before firing events once the frontier
      // reaches the limit (an event below the limit stays unfired when
      // every vCPU overshoots past it); replicate that exactly.
      done_.store(true, std::memory_order_release);
      return;
    }
    u64 next_event = ~0ull;
    bool fired = false;
    for (Event& e : events_) {
      if (e.fired) continue;
      if (e.cycle <= frontier) {
        if (!fired) machine_.set_current_cpu(argmin);
        e.fired = true;
        fired = true;
        e.fn();
      } else {
        next_event = e.cycle;
        break;
      }
    }
    if (fired) continue;  // events may Park/Unpark: recompute the frontier

    if (hook_) hook_(next_barrier_.load(std::memory_order_relaxed));

    // Never schedule a barrier past an unfired event: a thread must not run
    // beyond the cycle where the interleaver would have fired it.
    u64 next = std::min(cycle_limit, (frontier / epoch_cycles_ + 1) * epoch_cycles_);
    if (next_event != ~0ull) next = std::min(next, next_event);
    next_barrier_.store(next, std::memory_order_relaxed);
    return;
  }
}

void ThreadedSmp::WorkerLoop(u32 cpu_index, const StopHandler& on_stop) {
  Cpu& cpu = machine_.cpu(cpu_index);
  PhysicalMemory::WriteLane& lane = lanes_[cpu_index];
  for (;;) {
    if (done_.load(std::memory_order_acquire)) return;
    const u64 target = next_barrier_.load(std::memory_order_acquire);
    if (!parked(cpu_index)) {
      // Route this thread's writes through its lane: the vCPU's own decode
      // cache keeps exact synchronous self-modifying-code semantics, while
      // sibling invalidations are deferred to the barrier replay.
      lane.Reset(&cpu.decode_cache());
      PhysicalMemory::SetActiveWriteLane(&lane);
      while (cpu.cycles() < target) {
        const StopInfo stop = cpu.Run(target);
        if (stop.reason == StopReason::kCycleLimit) break;  // epoch boundary
        if (!on_stop(cpu_index, stop)) {
          Park(cpu_index);
          break;
        }
      }
      PhysicalMemory::SetActiveWriteLane(nullptr);
    }
    if (barrier_.Arrive()) {
      SerialBarrierWork(cycle_limit_);
      barrier_.Release();
    }
  }
}

void ThreadedSmp::Run(u64 cycle_limit, const StopHandler& on_stop) {
  cycle_limit_ = cycle_limit;
  done_.store(false, std::memory_order_relaxed);
  // Fire events already due at the starting frontier and pick the first
  // barrier — the same "events before any retire" rule as the interleaver.
  SerialBarrierWork(cycle_limit);
  if (done_.load(std::memory_order_relaxed)) return;

  const u32 n = machine_.num_cpus();
  std::vector<std::thread> threads;
  threads.reserve(n > 0 ? n - 1 : 0);
  for (u32 c = 1; c < n; ++c) {
    threads.emplace_back([this, c, &on_stop] { WorkerLoop(c, on_stop); });
  }
  WorkerLoop(0, on_stop);  // the calling thread drives vCPU 0
  for (std::thread& t : threads) t.join();
}

void RunSmp(Machine& machine, u64 cycle_limit,
            const SmpInterleaver::StopHandler& on_stop) {
  if (HostThreadsEnabled() && machine.num_cpus() > 1) {
    ThreadedSmp threaded(machine);
    threaded.Run(cycle_limit, on_stop);
  } else {
    SmpInterleaver interleaver(machine);
    interleaver.Run(cycle_limit, on_stop);
  }
}

}  // namespace palladium
