#include "src/hw/nic.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace palladium {

namespace {
// Frame field offsets (duplicated from src/net/packet.h to keep the hw layer
// free of net-layer includes; static_asserts in dataplane.cc pin them).
constexpr u32 kNicOffIpProto = 23;
constexpr u32 kNicOffIpSrc = 26;
constexpr u32 kNicOffSrcPort = 34;
}  // namespace

Nic::Nic(PhysicalMemory& pm, InterruptController& pic, u32 irq) : pm_(pm) {
  queues_.resize(1);
  queue_devices_.resize(kNicMaxQueues);
  for (u32 q = 0; q < kNicMaxQueues; ++q) queue_devices_[q].Bind(this, q);
  queues_[0].pic = &pic;
  queues_[0].rx_irq = irq;
  queues_[0].tx_irq = irq + 1;
}

void Nic::SetQueueCount(u32 n) {
  n = std::max(1u, std::min(n, kNicMaxQueues));
  const Queue wiring0 = queues_[0];
  queues_.assign(n, Queue{});
  // Queue 0 keeps its wiring; fresh queues inherit it until WireQueue.
  for (Queue& q : queues_) {
    q.pic = wiring0.pic;
    q.rx_irq = wiring0.rx_irq;
    q.tx_irq = wiring0.tx_irq;
  }
}

void Nic::WireQueue(u32 q, InterruptController* pic, u32 rx_irq, u32 tx_irq) {
  if (q >= queues_.size()) return;
  queues_[q].pic = pic;
  queues_[q].rx_irq = rx_irq;
  queues_[q].tx_irq = tx_irq;
}

void Nic::ConfigureRx(u32 q, const NicRing& ring) {
  if (q >= queues_.size()) return;
  queues_[q].rx = ring;
  queues_[q].rx_head = 0;
}

void Nic::ConfigureTx(u32 q, const NicRing& ring) {
  if (q >= queues_.size()) return;
  queues_[q].tx = ring;
  queues_[q].tx_head = 0;
  queues_[q].tx_complete_at.clear();
  queues_[q].tx_last_scheduled = 0;
}

u32 Nic::RssHash(const u8* frame, u32 len) {
  u32 h = 2166136261u;
  auto mix = [&h, frame](u32 off, u32 n) {
    for (u32 i = 0; i < n; ++i) {
      h ^= frame[off + i];
      h *= 16777619u;
    }
  };
  if (len >= kNicOffIpSrc + 8) mix(kNicOffIpSrc, 8);  // src + dst ip
  if (len > kNicOffIpProto) mix(kNicOffIpProto, 1);
  if (len >= kNicOffSrcPort + 4) mix(kNicOffSrcPort, 4);  // both ports
  // fmix32 avalanche: adjacent tuples (client n, port 1024+n) must not
  // collapse onto the same residue class mod small queue/worker counts.
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

void Nic::Inject(const u8* frame, u32 len, u64 at_cycle) {
  if (at_cycle < last_arrival_) at_cycle = last_arrival_;
  last_arrival_ = at_cycle;
  const u32 q =
      queues_.size() > 1 ? RssHash(frame, len) % static_cast<u32>(queues_.size()) : 0;
  Arrival a;
  a.cycle = at_cycle;
  a.frame.assign(frame, frame + len);
  queues_[q].arrivals.push_back(std::move(a));
  // Both hub attachments must see the new arrival: the whole-device view
  // (single-hub harnesses) and the per-queue device on the owning core.
  NotifyHub();
  queue_devices_[q].Poke();
}

bool Nic::DmaRxFrame(Queue& queue, const std::vector<u8>& frame) {
  if (queue.rx.count == 0) return false;
  const u32 desc = queue.rx.desc_phys + queue.rx_head * kNicDescBytes;
  u32 status = 0, buf = 0;
  if (!pm_.Read32(desc + kNicDescStatus, &status) || status != kDescOwn) return false;
  if (!pm_.Read32(desc + kNicDescBuf, &buf)) return false;
  const u32 len = std::min<u32>(static_cast<u32>(frame.size()), queue.rx.buf_stride);
  if (!pm_.WriteBlock(buf, frame.data(), len)) return false;
  pm_.Write32(desc + kNicDescLen, len);
  pm_.Write32(desc + kNicDescStatus, kDescDone);
  queue.rx_head = (queue.rx_head + 1) % queue.rx.count;
  ++stats_.rx_frames;
  ++queue.rx_count;
  stats_.rx_bytes += len;
  return true;
}

u32 Nic::CompleteOneTx(Queue& queue) {
  const u32 desc = queue.tx.desc_phys + queue.tx_head * kNicDescBytes;
  u32 status = 0, len = 0, buf = 0;
  u32 sent = 0;
  if (pm_.Read32(desc + kNicDescStatus, &status) && status == kDescOwn) {
    pm_.Read32(desc + kNicDescLen, &len);
    pm_.Read32(desc + kNicDescBuf, &buf);
    len = std::min(len, queue.tx.buf_stride);
    std::vector<u8> frame(len);
    if (pm_.ReadBlock(buf, frame.data(), len)) {
      tx_log_.push_back(std::move(frame));
      if (tx_log_.size() > kTxLogCap) tx_log_.pop_front();
      ++stats_.tx_frames;
      stats_.tx_bytes += len;
      sent = len;
    }
    pm_.Write32(desc + kNicDescStatus, kDescDone);
  }
  // A descriptor reclaimed (or misprogrammed) under a scheduled completion
  // still advances the engine; the schedule entry is consumed either way.
  queue.tx_head = queue.tx.count > 0 ? (queue.tx_head + 1) % queue.tx.count : 0;
  return sent;
}

u64 Nic::QueueNextEvent(u32 q) const {
  const Queue& queue = queues_[q];
  u64 next = kIdle;
  if (!queue.arrivals.empty()) next = queue.arrivals.front().cycle;
  if (!queue.tx_complete_at.empty()) next = std::min(next, queue.tx_complete_at.front());
  if (queue.rx_irq_due != kIdle) next = std::min(next, queue.rx_irq_due);
  return next;
}

void Nic::AdvanceQueue(u32 q, u64 now) {
  Queue& queue = queues_[q];
  while (!queue.arrivals.empty() && queue.arrivals.front().cycle <= now) {
    const u64 at = queue.arrivals.front().cycle;
    // Oversize frames never land truncated-but-"complete": the wire drops
    // them (no jumbo support), the same as a ring with no free descriptor.
    if (queue.arrivals.front().frame.size() > queue.rx.buf_stride) {
      ++stats_.rx_dropped;
    } else if (DmaRxFrame(queue, queue.arrivals.front().frame)) {
      if (recorder_ != nullptr) {
        recorder_->Record(obs_first_track_ + q, at, obs::EventType::kFrameDma,
                          obs::EventClass::kArch, q,
                          static_cast<u32>(queue.arrivals.front().frame.size()));
      }
      if (queue.rx_irq_enabled) {
        if (rx_irq_moderation_ == 0) {
          if (queue.pic != nullptr) queue.pic->Raise(queue.rx_irq);
          if (recorder_ != nullptr) {
            recorder_->Record(obs_first_track_ + q, at, obs::EventType::kIrqRaise,
                              obs::EventClass::kArch, queue.rx_irq, q);
          }
        } else if (queue.rx_irq_due == kIdle) {
          // ITR: arm the moderation timer — the first DMA after a quiet
          // period fires as soon as the gate allows; frames landing while
          // the timer is armed share the one interrupt.
          queue.rx_irq_due = std::max(at, queue.rx_irq_gate);
        }
      } else {
        // NAPI masked window: latch the edge for re-enable time.
        queue.rx_irq_deferred = true;
        ++stats_.rx_irqs_deferred;
      }
    } else {
      // No free descriptor (or a misconfigured ring): the wire does not
      // wait — the frame is dropped, silently from the driver's view.
      ++stats_.rx_dropped;
    }
    queue.arrivals.pop_front();
  }
  if (queue.rx_irq_due != kIdle && queue.rx_irq_due <= now) {
    if (queue.rx_irq_enabled && queue.pic != nullptr) {
      queue.pic->Raise(queue.rx_irq);
      if (recorder_ != nullptr) {
        recorder_->Record(obs_first_track_ + q, queue.rx_irq_due,
                          obs::EventType::kIrqRaise, obs::EventClass::kArch,
                          queue.rx_irq, q);
      }
    }
    queue.rx_irq_gate = queue.rx_irq_due + rx_irq_moderation_;
    queue.rx_irq_due = kIdle;
  }
  bool completed = false;
  while (!queue.tx_complete_at.empty() && queue.tx_complete_at.front() <= now) {
    const u64 at = queue.tx_complete_at.front();
    const u32 sent = CompleteOneTx(queue);
    if (recorder_ != nullptr) {
      recorder_->Record(obs_first_track_ + q, at, obs::EventType::kFrameTx,
                        obs::EventClass::kArch, q, sent);
    }
    queue.tx_complete_at.pop_front();
    completed = true;
  }
  if (completed) {
    if (queue.tx_irq_enabled) {
      // One coalesced TX-completion edge per Advance that retired work.
      if (queue.pic != nullptr) queue.pic->Raise(queue.tx_irq);
      ++stats_.tx_completion_irqs;
      if (recorder_ != nullptr) {
        recorder_->Record(obs_first_track_ + q, now, obs::EventType::kIrqRaise,
                          obs::EventClass::kArch, queue.tx_irq, q);
      }
    } else {
      ++stats_.tx_irqs_suppressed;
    }
  }
}

u64 Nic::next_event() const {
  u64 next = kIdle;
  for (u32 q = 0; q < queues_.size(); ++q) next = std::min(next, QueueNextEvent(q));
  return next;
}

void Nic::Advance(u64 now) {
  for (u32 q = 0; q < queues_.size(); ++q) AdvanceQueue(q, now);
}

void Nic::SetRxIrqEnabled(u32 q, bool enabled) {
  if (q >= queues_.size()) return;
  Queue& queue = queues_[q];
  queue.rx_irq_enabled = enabled;
  if (enabled && queue.rx_irq_deferred) {
    queue.rx_irq_deferred = false;
    // The deferred edge only matters if work is still sitting in the ring:
    // a poll loop that already drained the masked-window DMAs must not eat
    // a spurious interrupt. The hardware knows — it scans its own ring for
    // descriptors it completed (kDescDone) that the driver has not yet
    // returned (kDescOwn).
    bool undrained = false;
    for (u32 i = 0; i < queue.rx.count; ++i) {
      u32 status = 0;
      if (pm_.Read32(queue.rx.desc_phys + i * kNicDescBytes + kNicDescStatus, &status) &&
          status == kDescDone) {
        undrained = true;
        break;
      }
    }
    if (undrained && queue.pic != nullptr) queue.pic->Raise(queue.rx_irq);
  }
}

void Nic::SetTxIrqEnabled(u32 q, bool enabled) {
  if (q >= queues_.size()) return;
  queues_[q].tx_irq_enabled = enabled;
}

u32 Nic::TxKick(u32 q, u64 now) {
  if (q >= queues_.size()) return 0;
  Queue& queue = queues_[q];
  if (queue.tx.count == 0) return 0;
  // Ready descriptors not yet scheduled start after the pending window.
  u32 scanned = static_cast<u32>(queue.tx_complete_at.size());
  u32 accepted = 0;
  u64 at = std::max(now, queue.tx_last_scheduled);
  while (scanned < queue.tx.count) {
    const u32 idx = (queue.tx_head + scanned) % queue.tx.count;
    const u32 desc = queue.tx.desc_phys + idx * kNicDescBytes;
    u32 status = 0;
    if (!pm_.Read32(desc + kNicDescStatus, &status) || status != kDescOwn) break;
    at += tx_dma_cycles_;
    queue.tx_complete_at.push_back(at);
    queue.tx_last_scheduled = at;
    ++scanned;
    ++accepted;
  }
  if (accepted > 0) {
    NotifyHub();
    queue_devices_[q].Poke();
  }
  return accepted;
}

u64 Nic::NextTxCompletion(u32 q) const {
  if (q >= queues_.size() || queues_[q].tx_complete_at.empty()) return kIdle;
  return queues_[q].tx_complete_at.front();
}

void Nic::FlushTx() {
  for (Queue& queue : queues_) {
    while (!queue.tx_complete_at.empty()) {
      CompleteOneTx(queue);
      queue.tx_complete_at.pop_front();
    }
  }
}

}  // namespace palladium
