#include "src/hw/nic.h"

#include <algorithm>

namespace palladium {

void Nic::Inject(const u8* frame, u32 len, u64 at_cycle) {
  if (at_cycle < last_arrival_) at_cycle = last_arrival_;
  last_arrival_ = at_cycle;
  Arrival a;
  a.cycle = at_cycle;
  a.frame.assign(frame, frame + len);
  arrivals_.push_back(std::move(a));
  NotifyHub();  // the hub's cached attention cycle must see the new arrival
}

bool Nic::DmaRxFrame(const std::vector<u8>& frame) {
  if (rx_.count == 0) return false;
  const u32 desc = rx_.desc_phys + rx_head_ * kNicDescBytes;
  u32 status = 0, buf = 0;
  if (!pm_.Read32(desc + kNicDescStatus, &status) || status != kDescOwn) return false;
  if (!pm_.Read32(desc + kNicDescBuf, &buf)) return false;
  const u32 len = std::min<u32>(static_cast<u32>(frame.size()), rx_.buf_stride);
  if (!pm_.WriteBlock(buf, frame.data(), len)) return false;
  pm_.Write32(desc + kNicDescLen, len);
  pm_.Write32(desc + kNicDescStatus, kDescDone);
  rx_head_ = (rx_head_ + 1) % rx_.count;
  ++stats_.rx_frames;
  stats_.rx_bytes += len;
  return true;
}

void Nic::Advance(u64 now) {
  while (!arrivals_.empty() && arrivals_.front().cycle <= now) {
    // Oversize frames never land truncated-but-"complete": the wire drops
    // them (no jumbo support), the same as a ring with no free descriptor.
    if (arrivals_.front().frame.size() > rx_.buf_stride) {
      ++stats_.rx_dropped;
    } else if (DmaRxFrame(arrivals_.front().frame)) {
      pic_.Raise(irq_);
    } else {
      // No free descriptor (or a misconfigured ring): the wire does not
      // wait — the frame is dropped, silently from the driver's view.
      ++stats_.rx_dropped;
    }
    arrivals_.pop_front();
  }
}

u32 Nic::TxKick() {
  u32 sent = 0;
  if (tx_.count == 0) return 0;
  for (u32 i = 0; i < tx_.count; ++i) {
    const u32 desc = tx_.desc_phys + tx_head_ * kNicDescBytes;
    u32 status = 0, len = 0, buf = 0;
    if (!pm_.Read32(desc + kNicDescStatus, &status) || status != kDescOwn) break;
    pm_.Read32(desc + kNicDescLen, &len);
    pm_.Read32(desc + kNicDescBuf, &buf);
    len = std::min(len, tx_.buf_stride);
    std::vector<u8> frame(len);
    if (!pm_.ReadBlock(buf, frame.data(), len)) break;
    tx_log_.push_back(std::move(frame));
    if (tx_log_.size() > kTxLogCap) tx_log_.pop_front();
    pm_.Write32(desc + kNicDescStatus, kDescDone);
    tx_head_ = (tx_head_ + 1) % tx_.count;
    ++stats_.tx_frames;
    stats_.tx_bytes += len;
    ++sent;
  }
  return sent;
}

}  // namespace palladium
