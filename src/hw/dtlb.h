// Software D-TLB: the data-path analogue of the decoded-page fetch TLB. A
// small direct-mapped cache from linear page number to a validated host
// pointer into PhysicalMemory, so the common load/store/push/pop executes as
// one probe plus a memcpy instead of a page-table translation per byte.
//
// Correctness contract (the differential fuzz in cpu_property_test.cc pins
// this down against the per-byte oracle path):
//  - An entry is live only while Tlb::change_count() still equals the value
//    captured at fill time, so every invalidation source — CR3 load, INVLPG
//    analogue (Tlb::FlushPage), kernel PTE edits through the editor hook —
//    kills the whole D-TLB in O(1), exactly like the fetch fast path.
//  - Fills go through Cpu::Translate only, and conflict evictions in the
//    hardware TLB (Tlb::Insert replacing a live entry) evict the matching
//    D-TLB set, so a D-TLB hit implies the hardware TLB still holds the
//    same translation: cycle charges (tlb_miss_penalty) and fault behaviour
//    are identical to the slow path by construction.
//  - Permission bits (PTE U/W) are stored per entry and re-checked against
//    the *live* CPL on every probe; segment limits are checked by the caller
//    before the probe. CPL transitions and segment reloads therefore need no
//    explicit invalidation: the next probe revalidates.
//  - kPteDirty in `flags` means "the PTE's D bit is known set". A write hit
//    without it performs the architectural dirty-bit update first (the same
//    rule Cpu::Translate applies on TLB-hit writes), so the page-table image
//    is byte-identical with the fast path on or off.
#ifndef SRC_HW_DTLB_H_
#define SRC_HW_DTLB_H_

#include <array>

#include "src/hw/types.h"

namespace palladium {

class DTlb {
 public:
  // Matches Tlb::kEntries so a hardware-TLB conflict eviction maps to
  // exactly one D-TLB set.
  static constexpr u32 kEntries = 64;

  struct Entry {
    u64 tlb_change = ~0ull;  // live iff == Tlb::change_count() (~0 = never)
    u32 vpn = 0;             // linear page number
    u32 frame = 0;           // physical frame base
    u32 flags = 0;           // effective PTE flags + known-set A/D bits
    u8* host = nullptr;      // host pointer to the frame's first byte
  };

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 fills = 0;
    u64 evictions = 0;  // entries killed by hardware-TLB conflict evictions
  };

  // Returns the live entry for `vpn` or nullptr. `change_count` is the
  // current Tlb::change_count(); any invalidation since fill time misses.
  Entry* Lookup(u32 vpn, u64 change_count) {
    Entry& e = entries_[vpn % kEntries];
    if (e.tlb_change == change_count && e.vpn == vpn && e.host != nullptr) return &e;
    return nullptr;
  }

  void Fill(u32 vpn, u32 frame, u32 flags, u8* host, u64 change_count) {
    entries_[vpn % kEntries] = Entry{change_count, vpn, frame, flags, host};
    ++stats_.fills;
  }

  // Kills the entry for `vpn` if present. Wired to hardware-TLB conflict
  // evictions (same geometry, so the victim lives in the same set here).
  // `change_count` is the current Tlb::change_count(): kills of already-
  // stale entries are not counted as evictions.
  void InvalidatePage(u32 vpn, u64 change_count) {
    Entry& e = entries_[vpn % kEntries];
    if (e.vpn == vpn && e.host != nullptr) {
      if (e.tlb_change == change_count) ++stats_.evictions;
      e.tlb_change = ~0ull;
      e.host = nullptr;
    }
  }

  void CountHit() { ++stats_.hits; }
  // Batched variant for the trace executor, which accumulates pinned-path
  // hits in a register and flushes once per trace exit.
  void CountHits(u64 n) { stats_.hits += n; }
  void CountMiss() { ++stats_.misses; }

  // Monotone counter bumped by anything that can kill or replace a live
  // entry from within the D-TLB itself: fills (conflict replacement) and
  // hardware-TLB-driven evictions. Together with Tlb::change_count() (which
  // covers every mapping change) this lets the trace tier's translation
  // pins prove "the entry I copied is still the live entry for this set"
  // with one compare instead of a probe.
  u64 mutation_count() const { return stats_.fills + stats_.evictions; }

  const Stats& stats() const { return stats_; }

 private:
  std::array<Entry, kEntries> entries_{};
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_HW_DTLB_H_
