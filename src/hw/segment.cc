#include "src/hw/segment.h"

namespace palladium {

SegmentDescriptor SegmentDescriptor::MakeCode(u32 base, u32 limit, u8 dpl, bool conforming) {
  SegmentDescriptor d;
  d.type = DescriptorType::kCode;
  d.present = true;
  d.base = base;
  d.limit = limit;
  d.dpl = dpl;
  d.readable = true;
  d.conforming = conforming;
  return d;
}

SegmentDescriptor SegmentDescriptor::MakeData(u32 base, u32 limit, u8 dpl, bool writable) {
  SegmentDescriptor d;
  d.type = DescriptorType::kData;
  d.present = true;
  d.base = base;
  d.limit = limit;
  d.dpl = dpl;
  d.writable = writable;
  return d;
}

SegmentDescriptor SegmentDescriptor::MakeCallGate(u16 target_selector, u32 target_offset, u8 dpl,
                                                  u8 param_count) {
  SegmentDescriptor d;
  d.type = DescriptorType::kCallGate;
  d.present = true;
  d.dpl = dpl;
  d.gate_selector = target_selector;
  d.gate_offset = target_offset;
  d.gate_param_count = param_count;
  return d;
}

SegmentDescriptor SegmentDescriptor::MakeInterruptGate(u16 target_selector, u32 target_offset,
                                                       u8 dpl) {
  SegmentDescriptor d;
  d.type = DescriptorType::kInterruptGate;
  d.present = true;
  d.dpl = dpl;
  d.gate_selector = target_selector;
  d.gate_offset = target_offset;
  return d;
}

u16 DescriptorTable::AllocateSlot(u16 first) {
  for (u16 i = first; i < entries_.size(); ++i) {
    if (entries_[i].type == DescriptorType::kNull) return i;
  }
  u16 index = static_cast<u16>(entries_.size());
  entries_.resize(entries_.size() + 1);
  return index;
}

}  // namespace palladium
