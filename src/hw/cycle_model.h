// The cycle-accounting model. Every simulated instruction charges a cost from
// this table; privilege-crossing far transfers charge the large costs that
// dominate the paper's Table 1. Two presets exist:
//
//  * Measured():      calibrated so the Figure-6 trampoline sequences cost what
//                     the paper *measured* on a Pentium 200 (142-cycle protected
//                     call, 12-cycle segment-register load, ...).
//  * TheoryPentium(): per-instruction costs from the Pentium architecture
//                     manual, used for Table 1's "Hardware" column.
//
// The difference between the two is the paper's "data/control pipeline
// hazards" remark.
#ifndef SRC_HW_CYCLE_MODEL_H_
#define SRC_HW_CYCLE_MODEL_H_

#include <array>

#include "src/isa/insn.h"
#include "src/hw/types.h"

namespace palladium {

struct CycleModel {
  // Simple register ops.
  u32 alu = 1;
  u32 mov = 1;
  u32 lea = 1;
  u32 imul = 10;  // Pentium IMUL latency
  u32 udiv = 25;

  // Memory traffic.
  u32 load = 2;
  u32 store = 3;
  u32 push_reg = 1;
  u32 push_imm = 3;
  u32 pop_reg = 2;
  u32 tlb_miss_penalty = 9;  // two-level walk on a miss

  // Near control transfer.
  u32 jmp = 1;
  u32 jcc_not_taken = 1;
  u32 jcc_taken = 3;
  u32 call_near = 3;
  u32 ret_near = 3;

  // Segment-register loads. The paper measures 12 cycles where the manual
  // claims 2–3 (Section 5.1, cross-segment reference cost).
  u32 seg_load = 12;

  // Far transfers. The privilege-crossing variants are the expensive ones:
  // stack switch, descriptor checks, shadow-register reloads.
  u32 lcall_same = 13;
  u32 lcall_inter = 72;  // call gate with privilege change (+TSS stack switch)
  u32 lret_same = 10;
  u32 lret_inter = 31;   // far return to outer (less privileged) level
  u32 int_gate = 71;     // software interrupt through an interrupt gate
  u32 iret_inter = 36;

  // Cost of one instruction, excluding TLB-miss penalties and the
  // privilege-change premium for far transfers (the CPU adds those).
  // Constexpr and header-inline: this switch is the ONE opcode -> cost
  // mapping in the repo; everything else (the CPU's retire path, the decode
  // cache's block pre-summer) consumes the table built from it below.
  constexpr u32 BaseCost(Opcode op, bool branch_taken) const {
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHlt:
        return 1;
      case Opcode::kMovRR:
      case Opcode::kMovRI:
      case Opcode::kMovRSeg:
        return mov;
      case Opcode::kLea:
        return lea;
      case Opcode::kLoad:
        return load;
      case Opcode::kStore:
      case Opcode::kStoreI:
        return store;
      case Opcode::kPushR:
      case Opcode::kPushSeg:
        return push_reg;
      case Opcode::kPushI:
        return push_imm;
      case Opcode::kPopR:
        return pop_reg;
      case Opcode::kPopSeg:
      case Opcode::kMovSegR:
        return seg_load;
      case Opcode::kAddRR: case Opcode::kAddRI:
      case Opcode::kSubRR: case Opcode::kSubRI:
      case Opcode::kAndRR: case Opcode::kAndRI:
      case Opcode::kOrRR: case Opcode::kOrRI:
      case Opcode::kXorRR: case Opcode::kXorRI:
      case Opcode::kShlRI: case Opcode::kShrRI: case Opcode::kSarRI:
      case Opcode::kCmpRR: case Opcode::kCmpRI:
      case Opcode::kTestRR: case Opcode::kTestRI:
      case Opcode::kNegR: case Opcode::kNotR:
      case Opcode::kIncR: case Opcode::kDecR:
        return alu;
      case Opcode::kImulRR:
      case Opcode::kImulRI:
        return imul;
      case Opcode::kUdivRR:
        return udiv;
      case Opcode::kJmp:
      case Opcode::kJmpR:
        return jmp;
      case Opcode::kJe: case Opcode::kJne: case Opcode::kJb: case Opcode::kJae:
      case Opcode::kJbe: case Opcode::kJa: case Opcode::kJl: case Opcode::kJge:
      case Opcode::kJle: case Opcode::kJg: case Opcode::kJs: case Opcode::kJns:
        return branch_taken ? jcc_taken : jcc_not_taken;
      case Opcode::kCall:
      case Opcode::kCallR:
        return call_near;
      case Opcode::kRet:
      case Opcode::kRetN:
        return ret_near;
      // Far transfers: return the same-privilege cost; the CPU adds the
      // inter-privilege premium when a privilege change actually happens.
      case Opcode::kLcall:
        return lcall_same;
      case Opcode::kLret:
        return lret_same;
      case Opcode::kInt:
        return int_gate;
      case Opcode::kIret:
        return iret_inter;
      case Opcode::kCount:
        break;
    }
    return 1;
  }

  // The precomputed retire-cost table: one array load per retired
  // instruction instead of a switch. Built once per model (CPU construction,
  // set_cycle_model) and shared by the per-instruction path, the decoded-slot
  // cost annotations, and the superblock pre-summer — the single successor to
  // the per-opcode copy the CPU used to keep privately.
  struct CostTable {
    std::array<u32, kNumOpcodes> base{};
    u32 taken_branch = 0;    // conditional branches share one taken cost
    // Upper bound on cycles a memory-touching instruction can add beyond its
    // base cost: an access spans at most two pages, so at most two TLB-miss
    // walk penalties. Used by the pre-summer to prove a whole block retires
    // before the cycle/IRQ frontier.
    u32 mem_extra_bound = 0;
  };
  constexpr CostTable BuildCostTable() const {
    CostTable t;
    for (u16 op = 0; op < kNumOpcodes; ++op) {
      t.base[op] = BaseCost(static_cast<Opcode>(op), /*branch_taken=*/false);
    }
    t.taken_branch = BaseCost(Opcode::kJe, /*branch_taken=*/true);
    t.mem_extra_bound = 2 * tlb_miss_penalty;
    return t;
  }

  static CycleModel Measured();
  static CycleModel TheoryPentium();
};

}  // namespace palladium

#endif  // SRC_HW_CYCLE_MODEL_H_
