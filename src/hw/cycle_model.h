// The cycle-accounting model. Every simulated instruction charges a cost from
// this table; privilege-crossing far transfers charge the large costs that
// dominate the paper's Table 1. Two presets exist:
//
//  * Measured():      calibrated so the Figure-6 trampoline sequences cost what
//                     the paper *measured* on a Pentium 200 (142-cycle protected
//                     call, 12-cycle segment-register load, ...).
//  * TheoryPentium(): per-instruction costs from the Pentium architecture
//                     manual, used for Table 1's "Hardware" column.
//
// The difference between the two is the paper's "data/control pipeline
// hazards" remark.
#ifndef SRC_HW_CYCLE_MODEL_H_
#define SRC_HW_CYCLE_MODEL_H_

#include "src/isa/insn.h"
#include "src/hw/types.h"

namespace palladium {

struct CycleModel {
  // Simple register ops.
  u32 alu = 1;
  u32 mov = 1;
  u32 lea = 1;

  // Memory traffic.
  u32 load = 2;
  u32 store = 3;
  u32 push_reg = 1;
  u32 push_imm = 3;
  u32 pop_reg = 2;
  u32 tlb_miss_penalty = 9;  // two-level walk on a miss

  // Near control transfer.
  u32 jmp = 1;
  u32 jcc_not_taken = 1;
  u32 jcc_taken = 3;
  u32 call_near = 3;
  u32 ret_near = 3;

  // Segment-register loads. The paper measures 12 cycles where the manual
  // claims 2–3 (Section 5.1, cross-segment reference cost).
  u32 seg_load = 12;

  // Far transfers. The privilege-crossing variants are the expensive ones:
  // stack switch, descriptor checks, shadow-register reloads.
  u32 lcall_same = 13;
  u32 lcall_inter = 72;  // call gate with privilege change (+TSS stack switch)
  u32 lret_same = 10;
  u32 lret_inter = 31;   // far return to outer (less privileged) level
  u32 int_gate = 71;     // software interrupt through an interrupt gate
  u32 iret_inter = 36;

  // Cost of one instruction, excluding TLB-miss penalties and the
  // privilege-change premium for far transfers (the CPU adds those).
  u32 BaseCost(Opcode op, bool branch_taken) const;

  static CycleModel Measured();
  static CycleModel TheoryPentium();
};

}  // namespace palladium

#endif  // SRC_HW_CYCLE_MODEL_H_
