// SMP execution harnesses: the deterministic min-cycle interleaver (the
// oracle, and the CI default) and the host-parallel threaded mode.
//
// SmpInterleaver model: each vCPU carries its own cycle counter; the
// interleaver always steps the vCPU with the *smallest* counter (ties broken
// by lowest index) and lets it run only until it is no longer the minimum.
// Because Cpu::Run honours its cycle limit strictly at instruction-retire
// boundaries — the superblock engine bounds its quanta the same way: basic-
// block runs end early at the cycle-limit frontier, so a slice never
// overshoots by more than the one instruction the per-instruction path would
// also retire — the resulting schedule is a deterministic retire-boundary
// interleave: a pure function of program + initial state, independent of
// host timing, and — because the block-engine, decode-cache and D-TLB fast
// paths keep per-CPU cycle counters byte-identical to the per-byte oracle —
// identical in every fast-path/oracle combination. That is what makes SMP
// runs differential-testable with the same oracle discipline as the
// uniprocessor (tests/cpu_property_test.cc, tests/smp_test.cc).
//
// Host-side events (scripted PTE edits with cross-CPU shootdown, fault
// injection, ...) register against a *global* cycle threshold and fire the
// first time the frontier — the minimum counter over live vCPUs — reaches
// it, again a deterministic point.
//
// ThreadedSmp model: one host thread per vCPU. Each thread runs its vCPU
// freely up to the next *epoch barrier* cycle, then all threads rendezvous;
// the last arriver performs the serial barrier work (replay deferred
// cross-CPU invalidations, drain staged remote work, fire due scripted
// events with exactly the interleaver's ordering rules, pick the next
// barrier) and releases the epoch. The barrier schedule is chosen so that no
// thread ever runs past an unfired event: the next barrier is
// min(next epoch-grid point, next unfired event cycle, cycle limit), and a
// vCPU stopping at barrier B sits at its first retire boundary >= B — which
// is precisely the state the interleaver has when its frontier first reaches
// B. Hence for *data-race-free* workloads (no two vCPUs touch the same
// bytes within an epoch, except via the staged cross-CPU channels) the
// threaded mode reaches byte-identical final state, cycle counters and
// event streams. Racy workloads get whatever the host memory system gives
// them — the interleaver remains the oracle for those, which is why it
// stays the default: threaded mode is opt-in via PALLADIUM_HOST_THREADS=1
// (or the --host-threads flag on the benches).
//
// The kernel's Scheduler implements this same min-cycle discipline itself
// (it needs scheduling decisions interleaved with the stepping); these
// classes are the bare-machine harnesses used by fuzzers, tests and benches.
#ifndef SRC_HW_SMP_H_
#define SRC_HW_SMP_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/hw/machine.h"

namespace palladium {

class SmpInterleaver {
 public:
  // Return value of the stop handler: keep stepping this vCPU or park it.
  // A parked vCPU no longer advances and no longer holds back the frontier.
  using StopHandler = std::function<bool(u32 cpu_index, const StopInfo& stop)>;
  using EventFn = std::function<void()>;

  explicit SmpInterleaver(Machine& machine);

  // Registers a host-side action fired once, when the frontier first
  // reaches `cycle`. Events fire in cycle order (ties: registration order),
  // with the machine's current vCPU set to the frontier vCPU.
  void AddEvent(u64 cycle, EventFn fn);

  void Park(u32 cpu_index) { parked_[cpu_index] = true; }
  void Unpark(u32 cpu_index) { parked_[cpu_index] = false; }
  bool parked(u32 cpu_index) const { return parked_[cpu_index]; }

  // Runs until every vCPU is parked or every live vCPU's counter has
  // reached `cycle_limit`. `on_stop` is invoked for every CPU stop that is
  // not the interleaver's own slice boundary (faults, HLT, host calls).
  void Run(u64 cycle_limit, const StopHandler& on_stop);

  // Frontier: smallest cycle counter over live vCPUs (~0 when all parked).
  u64 Frontier() const;

 private:
  struct Event {
    u64 cycle;
    u64 seq;  // registration order for stable tie-break
    EventFn fn;
    bool fired = false;
  };

  Machine& machine_;
  std::vector<bool> parked_;
  std::vector<Event> events_;
  u64 next_seq_ = 0;
};

// True when PALLADIUM_HOST_THREADS is set to anything but "0": the opt-in
// switch for the threaded SMP fast path. The interleaver stays the default.
bool HostThreadsEnabled();

// Sense-reversing rendezvous for one epoch generation. C++17 has no
// std::barrier, and epochs are a few thousand *simulated* cycles (tens of
// microseconds of host work), so the wait is a bounded spin on the phase
// counter before falling back to a condition variable — a pure CV barrier
// would eat most of the parallel speedup in wakeup latency.
class EpochBarrier {
 public:
  explicit EpochBarrier(u32 parties) : parties_(parties) {}

  // Returns true to exactly one caller per phase — the last arriver, which
  // must perform the serial work and then call Release(). All other callers
  // block until Release() opens the next phase.
  bool Arrive();

  // Opens the next phase. Resets the arrival count *before* publishing the
  // phase bump (both under the mutex), so a fast thread re-arriving for the
  // next epoch cannot observe a stale count.
  void Release();

 private:
  const u32 parties_;
  std::atomic<u32> arrived_{0};
  std::atomic<u64> phase_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

// Host-parallel SMP: one host thread per vCPU, epoch-barrier synchronized.
// API mirrors SmpInterleaver so differential harnesses can drive either.
//
// Threading contract:
//  - `on_stop` runs on the stopping vCPU's own thread, concurrently with
//    other vCPUs' handlers. It must only touch state owned by that vCPU
//    (index it explicitly; never use Machine::cpu() / current_cpu here).
//  - Scripted events and the barrier hook run in the quiesced serial window
//    with every vCPU parked at a retire boundary; they may touch anything,
//    including Park/Unpark and Machine::set_current_cpu.
//  - AddEvent is setup-time (before Run) or event-time (from an event fn);
//    calling it from on_stop would race the serial scheduler.
//  - StageRemoteWork may be called from any thread (it is the mid-epoch
//    cross-CPU channel); the staged fn runs against the *target* vCPU in
//    the serial window of the next barrier — "delivered no later than the
//    next barrier on every sibling".
class ThreadedSmp {
 public:
  using StopHandler = SmpInterleaver::StopHandler;
  using EventFn = SmpInterleaver::EventFn;
  using RemoteFn = std::function<void(Cpu&)>;
  using BarrierHook = std::function<void(u64 barrier_cycle)>;

  // "A few thousand simulated cycles": long enough to amortize the barrier
  // (a handful of microseconds) over tens of microseconds of simulation,
  // short enough that cross-CPU delivery latency stays bounded and IRQ-rich
  // workloads don't starve. Overridable per-instance and via
  // PALLADIUM_EPOCH_CYCLES for experiments.
  static constexpr u64 kDefaultEpochCycles = 4096;

  explicit ThreadedSmp(Machine& machine, u64 epoch_cycles = 0);

  void AddEvent(u64 cycle, EventFn fn);
  void Park(u32 cpu_index) { parked_[cpu_index].store(true, std::memory_order_relaxed); }
  void Unpark(u32 cpu_index) { parked_[cpu_index].store(false, std::memory_order_relaxed); }
  bool parked(u32 cpu_index) const {
    return parked_[cpu_index].load(std::memory_order_relaxed);
  }

  // Queues `fn` to run against vCPU `target` in the next barrier's serial
  // window. Thread-safe. Drained in target-index order, FIFO per target.
  void StageRemoteWork(u32 target, RemoteFn fn);

  // Invoked in the serial window of every barrier (after replay/drain/event
  // firing) with the barrier's cycle. Used by the differential fuzz to
  // sample per-epoch cycle counters.
  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }

  u64 epoch_cycles() const { return epoch_cycles_; }

  // Runs until every vCPU is parked or every live vCPU's counter has
  // reached `cycle_limit`. Spawns num_cpus-1 host threads (the calling
  // thread drives vCPU 0) and joins them before returning.
  void Run(u64 cycle_limit, const StopHandler& on_stop);

  u64 Frontier() const;

 private:
  struct Event {
    u64 cycle;
    u64 seq;
    EventFn fn;
    bool fired = false;
  };

  void WorkerLoop(u32 cpu_index, const StopHandler& on_stop);
  // Last arriver only: replay write-lane logs to sibling observers, drain
  // staged remote work, fire due events with the interleaver's rules, pick
  // the next barrier cycle or declare the run done.
  void SerialBarrierWork(u64 cycle_limit);

  Machine& machine_;
  u64 epoch_cycles_;
  EpochBarrier barrier_;
  std::vector<std::atomic<bool>> parked_;
  std::vector<PhysicalMemory::WriteLane> lanes_;
  std::vector<Event> events_;
  u64 next_seq_ = 0;
  std::atomic<u64> next_barrier_{0};
  std::atomic<bool> done_{false};
  u64 cycle_limit_ = 0;
  std::mutex remote_mu_;
  std::vector<std::vector<RemoteFn>> remote_;
  BarrierHook hook_;
};

// Dispatches to ThreadedSmp when PALLADIUM_HOST_THREADS is set (and the
// machine has more than one vCPU), to the oracle interleaver otherwise.
// Convenience for harnesses that only need the common Run/park surface.
void RunSmp(Machine& machine, u64 cycle_limit,
            const SmpInterleaver::StopHandler& on_stop);

}  // namespace palladium

#endif  // SRC_HW_SMP_H_
