// SMP interleaver: deterministic execution of N vCPUs over one shared
// Machine.
//
// Model: each vCPU carries its own cycle counter; the interleaver always
// steps the vCPU with the *smallest* counter (ties broken by lowest index)
// and lets it run only until it is no longer the minimum. Because Cpu::Run
// honours its cycle limit strictly at instruction-retire boundaries — the
// superblock engine bounds its quanta the same way: basic-block runs end
// early at the cycle-limit frontier, so a slice never overshoots by more
// than the one instruction the per-instruction path would also retire — the
// resulting schedule is a deterministic retire-boundary interleave: a pure
// function of program + initial state, independent of host timing, and —
// because the block-engine, decode-cache and D-TLB fast paths keep per-CPU
// cycle counters byte-identical to the per-byte oracle — identical in every
// fast-path/oracle combination. That is what makes SMP runs
// differential-testable with the same oracle discipline as the uniprocessor
// (tests/cpu_property_test.cc, tests/smp_test.cc).
//
// Host-side events (scripted PTE edits with cross-CPU shootdown, fault
// injection, ...) register against a *global* cycle threshold and fire the
// first time the frontier — the minimum counter over live vCPUs — reaches
// it, again a deterministic point.
//
// The kernel's Scheduler implements this same min-cycle discipline itself
// (it needs scheduling decisions interleaved with the stepping); this class
// is the bare-machine harness used by fuzzers, tests and benches.
#ifndef SRC_HW_SMP_H_
#define SRC_HW_SMP_H_

#include <functional>
#include <vector>

#include "src/hw/machine.h"

namespace palladium {

class SmpInterleaver {
 public:
  // Return value of the stop handler: keep stepping this vCPU or park it.
  // A parked vCPU no longer advances and no longer holds back the frontier.
  using StopHandler = std::function<bool(u32 cpu_index, const StopInfo& stop)>;
  using EventFn = std::function<void()>;

  explicit SmpInterleaver(Machine& machine);

  // Registers a host-side action fired once, when the frontier first
  // reaches `cycle`. Events fire in cycle order (ties: registration order),
  // with the machine's current vCPU set to the frontier vCPU.
  void AddEvent(u64 cycle, EventFn fn);

  void Park(u32 cpu_index) { parked_[cpu_index] = true; }
  void Unpark(u32 cpu_index) { parked_[cpu_index] = false; }
  bool parked(u32 cpu_index) const { return parked_[cpu_index]; }

  // Runs until every vCPU is parked or every live vCPU's counter has
  // reached `cycle_limit`. `on_stop` is invoked for every CPU stop that is
  // not the interleaver's own slice boundary (faults, HLT, host calls).
  void Run(u64 cycle_limit, const StopHandler& on_stop);

  // Frontier: smallest cycle counter over live vCPUs (~0 when all parked).
  u64 Frontier() const;

 private:
  struct Event {
    u64 cycle;
    u64 seq;  // registration order for stable tie-break
    EventFn fn;
    bool fired = false;
  };

  Machine& machine_;
  std::vector<bool> parked_;
  std::vector<Event> events_;
  u64 next_seq_ = 0;
};

}  // namespace palladium

#endif  // SRC_HW_SMP_H_
