// Processor fault (exception) records. Faults abort the current instruction
// and surface to the host-level kernel model, which plays the role of the
// fault handlers in the paper's modified Linux kernel.
#ifndef SRC_HW_FAULT_H_
#define SRC_HW_FAULT_H_

#include <string>

#include "src/hw/types.h"

namespace palladium {

enum class FaultVector : u8 {
  kDivideError = 0,
  kInvalidOpcode = 6,
  kDoubleFault = 8,
  kInvalidTss = 10,
  kSegmentNotPresent = 11,
  kStackFault = 12,
  kGeneralProtection = 13,
  kPageFault = 14,
};

// Page-fault error code bits (IA-32 layout).
inline constexpr u32 kPfErrPresent = 1u << 0;  // 0: not-present page, 1: protection
inline constexpr u32 kPfErrWrite = 1u << 1;    // access was a write
inline constexpr u32 kPfErrUser = 1u << 2;     // access originated at CPL 3
inline constexpr u32 kPfErrFetch = 1u << 4;    // instruction fetch (the I/D bit)

struct Fault {
  FaultVector vector = FaultVector::kGeneralProtection;
  u32 error_code = 0;
  // For page faults, the faulting linear address (the CR2 analogue).
  u32 linear_address = 0;
  // Human-readable detail for diagnostics and tests.
  const char* detail = "";
};

const char* FaultVectorName(FaultVector v);

std::string FaultToString(const Fault& f);

}  // namespace palladium

#endif  // SRC_HW_FAULT_H_
