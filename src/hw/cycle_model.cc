#include "src/hw/cycle_model.h"

namespace palladium {

u32 CycleModel::BaseCost(Opcode op, bool branch_taken) const {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHlt:
      return 1;
    case Opcode::kMovRR:
    case Opcode::kMovRI:
    case Opcode::kMovRSeg:
      return mov;
    case Opcode::kLea:
      return lea;
    case Opcode::kLoad:
      return load;
    case Opcode::kStore:
    case Opcode::kStoreI:
      return store;
    case Opcode::kPushR:
    case Opcode::kPushSeg:
      return push_reg;
    case Opcode::kPushI:
      return push_imm;
    case Opcode::kPopR:
      return pop_reg;
    case Opcode::kPopSeg:
    case Opcode::kMovSegR:
      return seg_load;
    case Opcode::kAddRR: case Opcode::kAddRI:
    case Opcode::kSubRR: case Opcode::kSubRI:
    case Opcode::kAndRR: case Opcode::kAndRI:
    case Opcode::kOrRR: case Opcode::kOrRI:
    case Opcode::kXorRR: case Opcode::kXorRI:
    case Opcode::kShlRI: case Opcode::kShrRI: case Opcode::kSarRI:
    case Opcode::kCmpRR: case Opcode::kCmpRI:
    case Opcode::kTestRR: case Opcode::kTestRI:
    case Opcode::kNegR: case Opcode::kNotR:
    case Opcode::kIncR: case Opcode::kDecR:
      return alu;
    case Opcode::kImulRR:
    case Opcode::kImulRI:
      return 10;  // Pentium IMUL latency
    case Opcode::kUdivRR:
      return 25;
    case Opcode::kJmp:
    case Opcode::kJmpR:
      return jmp;
    case Opcode::kJe: case Opcode::kJne: case Opcode::kJb: case Opcode::kJae:
    case Opcode::kJbe: case Opcode::kJa: case Opcode::kJl: case Opcode::kJge:
    case Opcode::kJle: case Opcode::kJg: case Opcode::kJs: case Opcode::kJns:
      return branch_taken ? jcc_taken : jcc_not_taken;
    case Opcode::kCall:
    case Opcode::kCallR:
      return call_near;
    case Opcode::kRet:
    case Opcode::kRetN:
      return ret_near;
    // Far transfers: return the same-privilege cost; the CPU adds the
    // inter-privilege premium when a privilege change actually happens.
    case Opcode::kLcall:
      return lcall_same;
    case Opcode::kLret:
      return lret_same;
    case Opcode::kInt:
      return int_gate;
    case Opcode::kIret:
      return iret_inter;
    case Opcode::kCount:
      break;
  }
  return 1;
}

CycleModel CycleModel::Measured() { return CycleModel{}; }

CycleModel CycleModel::TheoryPentium() {
  CycleModel m;
  m.alu = 1;
  m.mov = 1;
  m.load = 1;
  m.store = 1;
  m.push_reg = 1;
  m.push_imm = 1;
  m.pop_reg = 1;
  m.call_near = 1;
  m.ret_near = 2;
  m.seg_load = 3;     // the manual's 2–3 cycle claim
  m.lcall_same = 4;
  m.lcall_inter = 42; // manual: call gate, more privilege, no parameters
  m.lret_same = 4;
  m.lret_inter = 23;  // manual: far return, different privilege
  m.int_gate = 59;
  m.iret_inter = 27;
  m.tlb_miss_penalty = 9;
  return m;
}

}  // namespace palladium
