#include "src/hw/cycle_model.h"

namespace palladium {

CycleModel CycleModel::Measured() { return CycleModel{}; }

CycleModel CycleModel::TheoryPentium() {
  CycleModel m;
  m.alu = 1;
  m.mov = 1;
  m.load = 1;
  m.store = 1;
  m.push_reg = 1;
  m.push_imm = 1;
  m.pop_reg = 1;
  m.call_near = 1;
  m.ret_near = 2;
  m.seg_load = 3;     // the manual's 2–3 cycle claim
  m.lcall_same = 4;
  m.lcall_inter = 42; // manual: call gate, more privilege, no parameters
  m.lret_same = 4;
  m.lret_inter = 23;  // manual: far return, different privilege
  m.int_gate = 59;
  m.iret_inter = 27;
  m.tlb_miss_penalty = 9;
  return m;
}

}  // namespace palladium
