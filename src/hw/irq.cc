#include "src/hw/irq.h"

namespace palladium {

void InterruptController::Raise(u32 irq) {
  irq &= kNumIrqs - 1;
  pending_ |= static_cast<u16>(1u << irq);
  ++raised_[irq];
  if (hub_ != nullptr) hub_->Poke();
}

void InterruptController::SetMasked(u32 irq, bool masked) {
  irq &= kNumIrqs - 1;
  if (masked) {
    mask_ |= static_cast<u16>(1u << irq);
  } else {
    mask_ &= static_cast<u16>(~(1u << irq));
  }
  if (hub_ != nullptr) hub_->Poke();
}

int InterruptController::DeliverableIrq() const {
  const u16 candidates = pending_ & static_cast<u16>(~mask_);
  if (candidates == 0) return kNoIrq;
  const int irq = __builtin_ctz(candidates);
  // Nesting rule: only lines strictly higher priority (lower number) than
  // every in-service line may interrupt.
  if (in_service_ != 0 && irq >= __builtin_ctz(in_service_)) return kNoIrq;
  return irq;
}

int InterruptController::Acknowledge() {
  const int irq = DeliverableIrq();
  if (irq == kNoIrq) return kNoIrq;
  pending_ &= static_cast<u16>(~(1u << irq));
  if (!auto_eoi_) in_service_ |= static_cast<u16>(1u << irq);
  ++delivered_[irq];
  if (hub_ != nullptr) hub_->Poke();
  return static_cast<int>(VectorFor(static_cast<u32>(irq)));
}

void InterruptController::Eoi() {
  if (in_service_ == 0) return;
  in_service_ &= static_cast<u16>(in_service_ - 1);  // clear lowest set bit
  if (hub_ != nullptr) hub_->Poke();
}

int IrqHub::Poll(u64 now, bool allow_delivery) {
  AdvanceDevices(now);
  if (allow_delivery) {
    const int vec = pic_.Acknowledge();
    if (vec >= 0) {
      Recompute(now);
      return vec;
    }
  }
  Recompute(now);
  return InterruptController::kNoIrq;
}

void IrqHub::AdvanceDevices(u64 now) {
  for (IrqDevice* d : devices_) {
    if (d->next_event() <= now) d->Advance(now);
  }
}

u64 IrqHub::NextDeviceEvent() const { return NextDeviceEventExcept(nullptr); }

u64 IrqHub::NextDeviceEventExcept(const IrqDevice* skip) const {
  u64 next = IrqDevice::kIdle;
  for (const IrqDevice* d : devices_) {
    if (d == skip) continue;
    const u64 e = d->next_event();
    if (e < next) next = e;
  }
  return next;
}

void IrqHub::Recompute(u64 now) {
  // A deliverable-but-blocked line (IF clear, or priority-masked by an
  // in-service handler) keeps attention at `now`: the CPU must re-ask at
  // every boundary until it can take the interrupt.
  if (pic_.HasDeliverable()) {
    attention_ = now;
    return;
  }
  attention_ = NextDeviceEvent();
}

}  // namespace palladium
